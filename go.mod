module mie

go 1.22
