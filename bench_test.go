package mie

// The benchmark harness: one Benchmark per table and figure of the paper's
// evaluation (run the full paper-style reports with cmd/mie-bench), plus
// micro-benchmarks for the primitives that dominate each figure. Figure
// benchmarks use the Quick experiment scale so `go test -bench=.` completes
// in minutes; key shape numbers are attached via b.ReportMetric.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"mie/internal/audio"
	"mie/internal/cluster"
	"mie/internal/crypto"
	"mie/internal/dataset"
	"mie/internal/device"
	"mie/internal/dpe"
	"mie/internal/experiments"
	"mie/internal/imaging"
	"mie/internal/index"
	"mie/internal/paillier"
	"mie/internal/text"
	"mie/internal/vec"
)

// --- Table I: complexity/scaling ------------------------------------------

func BenchmarkTable1_Scaling(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table1Empirical(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.IndexedRatio, "indexed-search-growth")
		b.ReportMetric(s.LinearRatio, "linear-search-growth")
	}
}

// --- Table II: DPE distance preservation ----------------------------------

func BenchmarkTable2_DPEDistances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].D03, "dense-de-at-dp0.3")
		b.ReportMetric(rows[0].D10, "dense-de-at-dp1.0")
	}
}

// --- Figures 2/3: update performance --------------------------------------

func benchUpdate(b *testing.B, profile device.Profile) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.UpdateExperiment(profile, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mie, hom float64
		for _, r := range rows {
			if r.N != cfg.Sizes[len(cfg.Sizes)-1] {
				continue
			}
			switch r.Scheme {
			case experiments.SchemeMIE:
				mie = r.Total.Seconds()
			case experiments.SchemeHomMSSE:
				hom = r.Total.Seconds()
			}
		}
		b.ReportMetric(mie, "mie-total-s")
		if mie > 0 {
			b.ReportMetric(hom/mie, "hommsse-over-mie")
		}
	}
}

func BenchmarkFig2_UpdateMobile(b *testing.B)  { benchUpdate(b, device.Mobile) }
func BenchmarkFig3_UpdateDesktop(b *testing.B) { benchUpdate(b, device.Desktop) }

// --- Figure 4: concurrent multi-user updates ------------------------------

func BenchmarkFig4_MultiUser(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MultiUserExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Device == device.Mobile.Name {
				b.ReportMetric(r.Total.Seconds(), "mobile-total-s")
			}
		}
	}
}

// --- Figure 5: search performance ------------------------------------------

func BenchmarkFig5_Search(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SearchExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mie, hom float64
		for _, r := range rows {
			if r.Device != device.Desktop.Name {
				continue
			}
			switch r.Scheme {
			case experiments.SchemeMIE:
				mie = r.Total.Seconds()
			case experiments.SchemeHomMSSE:
				hom = r.Total.Seconds()
			}
		}
		b.ReportMetric(mie*1000, "mie-desktop-ms")
		if mie > 0 {
			b.ReportMetric(hom/mie, "hommsse-over-mie")
		}
	}
}

// --- Figure 6: mobile energy ------------------------------------------------

func BenchmarkFig6_Energy(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.UpdateExperiment(device.Mobile, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.N != cfg.Sizes[len(cfg.Sizes)-1] {
				continue
			}
			switch r.Scheme {
			case experiments.SchemeMIE:
				b.ReportMetric(r.EnergyAddMAh, "mie-add-mAh")
			case experiments.SchemeHomMSSE:
				b.ReportMetric(r.EnergyAddMAh, "hommsse-add-mAh")
				b.ReportMetric(r.EnergyTrainMAh, "hommsse-train-mAh")
			}
		}
	}
}

// --- Table III: retrieval precision ----------------------------------------

func BenchmarkTable3_MAP(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PrecisionExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.System {
			case experiments.SchemePlain:
				b.ReportMetric(r.MAP*100, "plaintext-mAP")
			case experiments.SchemeMIE:
				b.ReportMetric(r.MAP*100, "mie-mAP")
			}
		}
	}
}

// --- Micro-benchmarks: the primitives behind the figures -------------------

func benchKey() crypto.Key {
	var k crypto.Key
	k[0] = 1
	return k
}

func BenchmarkDenseDPEEncode(b *testing.B) {
	d, err := dpe.NewDense(benchKey(), dpe.DenseParams{InDim: 64, OutDim: 512, Threshold: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	p := make([]float64, 64)
	for i := range p {
		p[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Encode(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseDPEEncode(b *testing.B) {
	s := dpe.NewSparse(benchKey())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Encode("keyword")
	}
}

func BenchmarkHammingDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := vec.NewBitVec(512), vec.NewBitVec(512)
	for i := 0; i < 512; i++ {
		x.Set(i, rng.Intn(2) == 1)
		y.Set(i, rng.Intn(2) == 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.Hamming(x, y)
	}
}

func BenchmarkFeatureExtractImage(b *testing.B) {
	img := dataset.TopicImage(64, 0, 1)
	pyr := imaging.PyramidParams{Scales: []int{16, 32, 64}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.Extract(img, pyr)
	}
}

func BenchmarkFeatureExtractAudio(b *testing.B) {
	clip, err := audio.Tone(0.5, []float64{440, 880, 1320}, []float64{1, 0.5, 0.25}, 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		audio.Extract(clip)
	}
}

func BenchmarkFeatureExtractText(b *testing.B) {
	const doc = "the quick brown foxes were jumping over several lazy dogs while photographers captured running animals"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text.Extract(doc)
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	ix, err := index.New(index.Options{})
	if err != nil {
		b.Fatal(err)
	}
	terms := map[index.Term]uint64{"a": 1, "b": 2, "c": 3, "d": 1, "e": 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Add(index.DocID(fmt.Sprintf("d%d", i)), terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexSearch(b *testing.B) {
	ix, err := index.New(index.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		terms := make(map[index.Term]uint64)
		for j := 0; j < 8; j++ {
			terms[index.Term(fmt.Sprintf("t%d", rng.Intn(1000)))] = uint64(1 + rng.Intn(5))
		}
		if err := ix.Add(index.DocID(fmt.Sprintf("d%d", i)), terms); err != nil {
			b.Fatal(err)
		}
	}
	query := map[index.Term]uint64{"t1": 1, "t2": 2, "t3": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(query, 20)
	}
}

func BenchmarkKMeansEuclidean(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	points := make([][]float64, 500)
	for i := range points {
		points[i] = make([]float64, 16)
		for j := range points[i] {
			points[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, 10, cluster.Options{Seed: 5, MaxIter: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansHamming(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	points := make([]vec.BitVec, 500)
	for i := range points {
		points[i] = vec.NewBitVec(512)
		for j := 0; j < 512; j++ {
			points[i].Set(j, rng.Intn(2) == 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.HammingKMeans(points, 10, cluster.Options{Seed: 7, MaxIter: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

var benchPaillier *paillier.PrivateKey

func paillierKey(b *testing.B) *paillier.PrivateKey {
	b.Helper()
	if benchPaillier == nil {
		sk, err := paillier.GenerateKey(nil, 1024)
		if err != nil {
			b.Fatal(err)
		}
		benchPaillier = sk
	}
	return benchPaillier
}

func BenchmarkPaillierEncrypt(b *testing.B) {
	sk := paillierKey(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.EncryptUint64(nil, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaillierAdd(b *testing.B) {
	sk := paillierKey(b)
	c1, err := sk.EncryptUint64(nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := sk.EncryptUint64(nil, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Add(c1, c2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAESCTREncrypt4KiB(b *testing.B) {
	c := crypto.NewCipher(benchKey())
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encrypt(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end per-operation benches ---------------------------------------

func benchMIEStack(b *testing.B, n int) (*Client, Repository) {
	b.Helper()
	ctx := context.Background()
	key := RepositoryKey{Master: benchKey()}
	client, err := NewClient(ClientConfig{
		Key:     key,
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 512, Threshold: 0.5},
		Pyramid: imaging.PyramidParams{Scales: []int{16, 32}},
	})
	if err != nil {
		b.Fatal(err)
	}
	repo, err := Open(ctx, Options{
		Client: client,
		RepoID: "bench",
		Create: true,
		Repo: RepositoryOptions{
			Vocab: cluster.VocabParams{
				Words:   50,
				Tree:    cluster.TreeParams{Branch: 4, Height: 2, Seed: 1},
				Seed:    1,
				MaxIter: 10,
			},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	dk := DataKey(benchKey())
	for _, obj := range dataset.Flickr(dataset.FlickrParams{N: n, ImageSize: 48, Seed: 1}) {
		if err := repo.Add(ctx, obj, dk); err != nil {
			b.Fatal(err)
		}
	}
	if err := repo.Train(ctx); err != nil {
		b.Fatal(err)
	}
	return client, repo
}

func BenchmarkMIEUpdateEndToEnd(b *testing.B) {
	_, repo := benchMIEStack(b, 50)
	objs := dataset.Flickr(dataset.FlickrParams{N: 1, ImageSize: 48, Seed: 9})
	dk := DataKey(benchKey())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs[0].ID = fmt.Sprintf("new-%d", i)
		if err := repo.Add(context.Background(), objs[0], dk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMIESearchEndToEnd(b *testing.B) {
	_, repo := benchMIEStack(b, 100)
	query := dataset.Flickr(dataset.FlickrParams{N: 1, ImageSize: 48, Seed: 10})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Search(context.Background(), query, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §V-A: leakage-abuse attack -------------------------------------------

func BenchmarkAttack_Recovery(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AttackExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RecoveryRate*100, "recovery-at-10pct")
		b.ReportMetric(rows[len(rows)-1].RecoveryRate*100, "recovery-at-100pct")
	}
}
