package mie

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"mie/internal/cluster"
	"mie/internal/dpe"
	"mie/internal/imaging"
)

func testPhoto(t *testing.T, seed int64) *Image {
	t.Helper()
	img, err := NewImage(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = rng.Float64()
	}
	return img
}

func smallClientConfig(key RepositoryKey) ClientConfig {
	return ClientConfig{
		Key:     key,
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 256, Threshold: 0.5},
		Pyramid: imaging.PyramidParams{Scales: []int{16}},
	}
}

func smallRepoOptions() RepositoryOptions {
	return RepositoryOptions{Vocab: cluster.VocabParams{
		Words:   20,
		Tree:    cluster.TreeParams{Branch: 3, Height: 2, Seed: 1},
		Seed:    1,
		MaxIter: 10,
	}}
}

func testClientKey(t *testing.T) *Client {
	t.Helper()
	key, err := NewRepositoryKey()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(smallClientConfig(key))
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// memService opens an in-memory Service via the unified constructor.
func memService(t *testing.T) *Service {
	t.Helper()
	svc, _, err := OpenService(ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestLocalRepositoryLifecycle(t *testing.T) {
	ctx := context.Background()
	client := testClientKey(t)
	svc := memService(t)
	repo, err := Open(ctx, Options{
		Service: svc,
		Client:  client,
		RepoID:  "r1",
		Create:  true,
		Repo:    smallRepoOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{
		"d1": "solar panels renewable energy installation",
		"d2": "wind turbines renewable power grid",
		"d3": "chocolate cake recipe dessert baking",
	}
	for id, text := range docs {
		if err := repo.Add(ctx, &Object{ID: id, Owner: "u", Text: text, Image: testPhoto(t, int64(len(id)))}, dk); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Train(ctx); err != nil {
		t.Fatal(err)
	}
	hits, err := repo.Search(ctx, &Object{ID: "q", Text: "renewable energy"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	for _, h := range hits {
		if h.ObjectID == "d3" {
			t.Error("irrelevant doc ranked in top 2")
		}
	}
	ct, owner, err := repo.Get(ctx, hits[0].ObjectID)
	if err != nil {
		t.Fatal(err)
	}
	if owner != "u" {
		t.Errorf("owner = %q", owner)
	}
	obj, err := DecryptObject(ct, dk)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Text != docs[hits[0].ObjectID] {
		t.Error("decrypted text mismatch")
	}
	if err := repo.Remove(ctx, hits[0].ObjectID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := repo.Get(ctx, hits[0].ObjectID); err == nil {
		t.Error("removed object still present")
	}
	// Close on a local repository is a no-op.
	if err := repo.Close(); err != nil {
		t.Errorf("local close: %v", err)
	}
}

func TestOpenReusesExistingRepository(t *testing.T) {
	ctx := context.Background()
	client := testClientKey(t)
	svc := memService(t)
	a, err := Open(ctx, Options{Service: svc, Client: client, RepoID: "shared", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(ctx, &Object{ID: "x", Text: "hello world content"}, dk); err != nil {
		t.Fatal(err)
	}
	// A second create with identical options reuses the repository without
	// the conflict sentinel; the handle must see the same data.
	b, err := Open(ctx, Options{Service: svc, Client: client, RepoID: "shared", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Get(ctx, "x"); err != nil {
		t.Errorf("second handle can't see object: %v", err)
	}
	// A non-create open works too.
	c, err := Open(ctx, Options{Service: svc, Client: client, RepoID: "shared"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(ctx, "x"); err != nil {
		t.Errorf("non-create handle can't see object: %v", err)
	}
}

func TestRemoteRepositoryOverTCP(t *testing.T) {
	ctx := context.Background()
	svc := memService(t)
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	client := testClientKey(t)
	repo, err := Open(ctx, Options{
		Addr:   srv.Addr(),
		Client: client,
		RepoID: "remote",
		Create: true,
		Repo:   smallRepoOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := repo.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	for i, text := range []string{"alpha document one", "beta document two", "gamma note three"} {
		if err := repo.Add(ctx, &Object{ID: string(rune('a' + i)), Owner: "me", Text: text}, dk); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Train(ctx); err != nil {
		t.Fatal(err)
	}
	hits, err := repo.Search(ctx, &Object{ID: "q", Text: "beta"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ObjectID != "b" {
		t.Errorf("hits = %+v", hits)
	}
	if err := repo.Remove(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := repo.Get(ctx, "b"); err == nil || !strings.Contains(err.Error(), "unknown object") {
		t.Errorf("get removed: err = %v", err)
	}
}

func TestOpenRemoteCreateConflict(t *testing.T) {
	ctx := context.Background()
	svc := memService(t)
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := testClientKey(t)
	r1, err := Open(ctx, Options{Addr: srv.Addr(), Client: client, RepoID: "dup", Create: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r1.Close() })
	// A remote create collision reports the sentinel but still hands back a
	// usable handle.
	r2, err := Open(ctx, Options{Addr: srv.Addr(), Client: client, RepoID: "dup", Create: true})
	if !errors.Is(err, ErrRepositoryExists) {
		t.Errorf("duplicate create err = %v, want ErrRepositoryExists", err)
	}
	if r2 != nil {
		t.Cleanup(func() { _ = r2.Close() })
	}
	// Without Create the open succeeds cleanly.
	r3, err := Open(ctx, Options{Addr: srv.Addr(), Client: client, RepoID: "dup"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r3.Close() })
}
