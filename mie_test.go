package mie

import (
	"math/rand"
	"strings"
	"testing"

	"mie/internal/cluster"
	"mie/internal/dpe"
	"mie/internal/imaging"
)

func testPhoto(t *testing.T, seed int64) *Image {
	t.Helper()
	img, err := NewImage(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = rng.Float64()
	}
	return img
}

func smallClientConfig(key RepositoryKey) ClientConfig {
	return ClientConfig{
		Key:     key,
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 256, Threshold: 0.5},
		Pyramid: imaging.PyramidParams{Scales: []int{16}},
	}
}

func smallRepoOptions() RepositoryOptions {
	return RepositoryOptions{Vocab: cluster.VocabParams{
		Words:   20,
		Tree:    cluster.TreeParams{Branch: 3, Height: 2, Seed: 1},
		Seed:    1,
		MaxIter: 10,
	}}
}

// TestLocalRepositoryLifecycle and the other OpenLocal/OpenRemote tests
// below deliberately exercise the deprecated context-free shims: they are
// the compatibility pins that keep the legacy contract honest until the
// shims are removed. All other callers have migrated to Open.
func TestLocalRepositoryLifecycle(t *testing.T) {
	key, err := NewRepositoryKey()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(smallClientConfig(key))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	repo, err := OpenLocal(svc, client, "r1", smallRepoOptions())
	if err != nil {
		t.Fatal(err)
	}
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{
		"d1": "solar panels renewable energy installation",
		"d2": "wind turbines renewable power grid",
		"d3": "chocolate cake recipe dessert baking",
	}
	for id, text := range docs {
		if err := repo.Add(&Object{ID: id, Owner: "u", Text: text, Image: testPhoto(t, int64(len(id)))}, dk); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Train(); err != nil {
		t.Fatal(err)
	}
	hits, err := repo.Search(&Object{ID: "q", Text: "renewable energy"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	for _, h := range hits {
		if h.ObjectID == "d3" {
			t.Error("irrelevant doc ranked in top 2")
		}
	}
	ct, owner, err := repo.Get(hits[0].ObjectID)
	if err != nil {
		t.Fatal(err)
	}
	if owner != "u" {
		t.Errorf("owner = %q", owner)
	}
	obj, err := DecryptObject(ct, dk)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Text != docs[hits[0].ObjectID] {
		t.Error("decrypted text mismatch")
	}
	if err := repo.Remove(hits[0].ObjectID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := repo.Get(hits[0].ObjectID); err == nil {
		t.Error("removed object still present")
	}
	// Close on a local repository is a no-op.
	if err := Close(repo); err != nil {
		t.Errorf("local close: %v", err)
	}
}

func TestOpenLocalReusesExistingRepository(t *testing.T) {
	key, err := NewRepositoryKey()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(smallClientConfig(key))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	a, err := OpenLocal(svc, client, "shared", smallRepoOptions())
	if err != nil {
		t.Fatal(err)
	}
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Add(&Object{ID: "x", Text: "hello world content"}, dk); err != nil {
		t.Fatal(err)
	}
	// Second open must see the same repository.
	b, err := OpenLocal(svc, client, "shared", smallRepoOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Get("x"); err != nil {
		t.Errorf("second handle can't see object: %v", err)
	}
}

func TestRemoteRepositoryOverTCP(t *testing.T) {
	svc := NewService()
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	key, err := NewRepositoryKey()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(smallClientConfig(key))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := OpenRemote(srv.Addr(), client, "remote", RemoteOptions{Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := Close(repo); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	for i, text := range []string{"alpha document one", "beta document two", "gamma note three"} {
		if err := repo.Add(&Object{ID: string(rune('a' + i)), Owner: "me", Text: text}, dk); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Train(); err != nil {
		t.Fatal(err)
	}
	hits, err := repo.Search(&Object{ID: "q", Text: "beta"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ObjectID != "b" {
		t.Errorf("hits = %+v", hits)
	}
	if err := repo.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := repo.Get("b"); err == nil || !strings.Contains(err.Error(), "unknown object") {
		t.Errorf("get removed: err = %v", err)
	}
}

func TestOpenRemoteCreateConflict(t *testing.T) {
	svc := NewService()
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	key, err := NewRepositoryKey()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(smallClientConfig(key))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := OpenRemote(srv.Addr(), client, "dup", RemoteOptions{Create: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = Close(r1) })
	if _, err := OpenRemote(srv.Addr(), client, "dup", RemoteOptions{Create: true}); err == nil {
		t.Error("expected error creating duplicate repository")
	}
	// Without Create the open succeeds.
	r2, err := OpenRemote(srv.Addr(), client, "dup", RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = Close(r2) })
}
