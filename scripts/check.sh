#!/usr/bin/env bash
# Pre-PR gate: formatting, vet, build, and the full test suite under the
# race detector (the concurrent metrics registry and server counters must be
# race-clean). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
# The commands must also vet clean under the static-networking build tag
# used for fully static deploy builds.
go vet -tags netgo ./cmd/...
go build ./...
go test -race ./...

echo "check.sh: all gates passed"
