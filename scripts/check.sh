#!/usr/bin/env bash
# Pre-PR gate: formatting, vet, build, and the full test suite under the
# race detector (the concurrent metrics registry and server counters must be
# race-clean). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
# The commands must also vet clean under the static-networking build tag
# used for fully static deploy builds.
go vet -tags netgo ./cmd/...
go build ./...
# -shuffle surfaces inter-test ordering dependencies; -cover prints a
# per-package coverage summary so coverage regressions are visible in CI
# logs.
# The goroutine-leak sentinel (internal/leakcheck) must stay wired into the
# connection-lifecycle tests; a silent drop would let Close-path leaks pass.
for pkg in internal/server internal/client internal/replica internal/router; do
    if ! grep -q "leakcheck.Check" "$pkg"/*_test.go; then
        echo "check.sh: $pkg tests no longer use the leakcheck sentinel" >&2
        exit 1
    fi
done

# Layering gate first and by name: the segmented-index refactor depends on
# core/index/cluster staying free of transport imports (and index/cluster
# free of upward imports), and the scale-out tier on replica/router never
# reaching into the server. The full suite runs these too, but a fast,
# explicit failure here names the broken boundary instead of burying it.
go test -run 'TestEngineLayersDoNotImportTransport|TestIndexAndClusterDoNotImportCore|TestReplicationTierImportBoundaries' ./internal/core

go test -race -shuffle=on -cover ./...

# Incremental-training smoke (~seconds at quick scale, well under its 30 s
# budget): retrain-after-churn must keep resolving through the incremental
# path, not silently fall back to full rebuilds. INCSMOKE=0 skips.
INCSMOKE="${INCSMOKE:-1}"
if [ "$INCSMOKE" != "0" ]; then
    inc_out=$(go run ./cmd/mie-bench -scale quick -experiment none -obs-out "" \
        -incremental -incremental-out "")
    echo "$inc_out"
    if ! echo "$inc_out" | grep -q "mode=incremental"; then
        echo "check.sh: incremental smoke did not take the incremental train path" >&2
        exit 1
    fi
fi

# Approximate-dense-search smoke (~seconds at quick scale): the multi-probe
# LSH candidate path must keep recall@10 >= 0.9 at its best operating point
# — a recall regression here means probe enumeration or the re-rank sweep
# broke even though the parity tests (which use exhaustive budgets) still
# pass. ANNSMOKE=0 skips.
ANNSMOKE="${ANNSMOKE:-1}"
if [ "$ANNSMOKE" != "0" ]; then
    ann_out=$(go run ./cmd/mie-bench -scale quick -experiment none -obs-out "" \
        -ann -ann-out "")
    echo "$ann_out"
    recall=$(echo "$ann_out" | sed -n 's/^ann: best recall@10 \([0-9.]*\).*/\1/p')
    if [ -z "$recall" ]; then
        echo "check.sh: ANN smoke produced no summary line" >&2
        exit 1
    fi
    if ! awk -v r="$recall" 'BEGIN { exit !(r >= 0.9) }'; then
        echo "check.sh: ANN smoke recall@10 $recall below the 0.9 floor" >&2
        exit 1
    fi
fi

# Multi-tenancy smoke (~seconds at quick scale): 500 repositories churned
# through lazy activation and LRU eviction under a 16 MiB budget. Every
# acknowledged write must survive the churn, and the resident accounting
# must never overshoot the budget by more than 10% (transiently, while the
# eviction pass catches up). TENANCYSMOKE=0 skips.
TENANCYSMOKE="${TENANCYSMOKE:-1}"
if [ "$TENANCYSMOKE" != "0" ]; then
    ten_out=$(go run ./cmd/mie-bench -scale quick -experiment none -obs-out "" \
        -tenancy -tenancy-out "")
    echo "$ten_out"
    ten_sum=$(echo "$ten_out" | sed -n 's/^tenancy: //p')
    if [ -z "$ten_sum" ]; then
        echo "check.sh: tenancy smoke produced no summary line" >&2
        exit 1
    fi
    lost=$(echo "$ten_sum" | sed -n 's/.*lost_acks=\([0-9]*\).*/\1/p')
    over=$(echo "$ten_sum" | sed -n 's/.*max_over_budget=\([0-9.]*\).*/\1/p')
    if [ "$lost" != "0" ]; then
        echo "check.sh: tenancy smoke lost $lost acknowledged writes" >&2
        exit 1
    fi
    if ! awk -v o="$over" 'BEGIN { exit !(o <= 0.10) }'; then
        echo "check.sh: tenancy smoke overshot the memory budget by $over (> 10%)" >&2
        exit 1
    fi
fi

# Cluster smoke (~seconds at quick scale): a 2-node WAL-shipping cluster
# behind the consistent-hash router, with a leader kill and restart in the
# middle of an acknowledged-write ledger. Zero acknowledged writes may be
# lost and leader/follower search results must be identical after catch-up.
# CLUSTERSMOKE=0 skips.
CLUSTERSMOKE="${CLUSTERSMOKE:-1}"
if [ "$CLUSTERSMOKE" != "0" ]; then
    cluster_out=$(go run ./cmd/mie-bench -scale quick -experiment none -obs-out "" \
        -cluster -cluster-out "")
    echo "$cluster_out"
    cluster_sum=$(echo "$cluster_out" | sed -n 's/^cluster: //p')
    if [ -z "$cluster_sum" ]; then
        echo "check.sh: cluster smoke produced no summary line" >&2
        exit 1
    fi
    cl_lost=$(echo "$cluster_sum" | sed -n 's/.*lost_acks=\([0-9]*\).*/\1/p')
    cl_parity=$(echo "$cluster_sum" | sed -n 's/.*parity=\([a-zA-Z]*\).*/\1/p')
    cl_kills=$(echo "$cluster_sum" | sed -n 's/.*leader_kills=\([0-9]*\).*/\1/p')
    if [ "$cl_lost" != "0" ]; then
        echo "check.sh: cluster smoke lost $cl_lost acknowledged writes across a leader kill" >&2
        exit 1
    fi
    if [ "$cl_parity" != "ok" ]; then
        echo "check.sh: cluster smoke leader/follower search parity broken" >&2
        exit 1
    fi
    if [ "$cl_kills" = "0" ]; then
        echo "check.sh: cluster smoke never killed the leader — the failover phase did not run" >&2
        exit 1
    fi
fi

# Fuzz smoke over the decoders that face untrusted or crash-damaged input:
# wire frames arriving off the network and WAL bytes read back after a
# crash must fail cleanly, never panic. FUZZTIME=0 skips (corpus-only
# replay already ran as part of go test above).
FUZZTIME="${FUZZTIME:-30s}"
if [ "$FUZZTIME" != "0" ]; then
    go test -run='^$' -fuzz=FuzzReadFrame -fuzztime="$FUZZTIME" ./internal/wire
    go test -run='^$' -fuzz=FuzzEnvelopeDecode -fuzztime="$FUZZTIME" ./internal/wire
    go test -run='^$' -fuzz=FuzzReplRecordDecode -fuzztime="$FUZZTIME" ./internal/wire
    go test -run='^$' -fuzz=FuzzWALReplay -fuzztime="$FUZZTIME" ./internal/wal
fi

echo "check.sh: all gates passed"
