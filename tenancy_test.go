package mie

// Tests for the multi-tenant API surface: typed wire error codes surfacing
// through the public package, the quota sentinel and retry-after accessor,
// and the connection-ownership contract of the remote-create sentinel path.

import (
	"context"
	"errors"
	"testing"

	"mie/internal/core"
	"mie/internal/leakcheck"
)

// TestRemoteTypedErrorCodes drives real over-the-wire failures and asserts
// they match the core sentinels via errors.Is — no message-text matching
// anywhere.
func TestRemoteTypedErrorCodes(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	svc, _, err := OpenService(ServiceOptions{Quotas: Quotas{MaxObjects: 1}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	c := newTestClient(t)

	repo, err := Open(ctx, Options{Addr: srv.Addr(), Client: c, RepoID: "q", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = repo.Close() })
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(ctx, &Object{ID: "a", Owner: "alice", Text: "first fits"}, dk); err != nil {
		t.Fatal(err)
	}

	// Over quota: the remote error must match ErrOverQuota and carry a
	// machine-readable retry hint (zero: capacity, not congestion).
	err = repo.Add(ctx, &Object{ID: "b", Owner: "alice", Text: "second rejected"}, dk)
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-quota add: err = %v, want ErrOverQuota", err)
	}
	if d, ok := RetryAfter(err); !ok || d != 0 {
		t.Errorf("RetryAfter = (%v, %v), want (0, true) for a capacity rejection", d, ok)
	}

	// Unknown repository: typed, not text-matched.
	ghost, err := Open(ctx, Options{Addr: srv.Addr(), Client: c, RepoID: "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ghost.Close() })
	if err := ghost.Add(ctx, &Object{ID: "x", Owner: "o", Text: "t"}, dk); !errors.Is(err, core.ErrRepoNotFound) {
		t.Errorf("add to unknown repo: err = %v, want core.ErrRepoNotFound", err)
	}

	// Unknown object: typed through GetResp's code field.
	if _, _, err := repo.Get(ctx, "never-stored"); !errors.Is(err, core.ErrUnknownObject) {
		t.Errorf("get of unknown object: err = %v, want core.ErrUnknownObject", err)
	}

	// Errors that carry no quota rejection yield ok=false.
	if _, ok := RetryAfter(errors.New("opaque")); ok {
		t.Error("RetryAfter claimed an opaque error was a quota rejection")
	}
	if _, ok := RetryAfter(nil); ok {
		t.Error("RetryAfter claimed nil was a quota rejection")
	}
}

// TestLocalQuotaSentinel exercises the same sentinel embedded: the engine's
// *core.QuotaError surfaces through the public accessor unchanged.
func TestLocalQuotaSentinel(t *testing.T) {
	ctx := context.Background()
	svc, _, err := OpenService(ServiceOptions{Quotas: Quotas{MaxObjects: 1}})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := Open(ctx, Options{Service: svc, Client: newTestClient(t), RepoID: "lq", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = repo.Close() }()
	dk, err := NewDataKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add(ctx, &Object{ID: "a", Owner: "u", Text: "fits"}, dk); err != nil {
		t.Fatal(err)
	}
	err = repo.Add(ctx, &Object{ID: "b", Owner: "u", Text: "rejected"}, dk)
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("embedded over-quota: err = %v, want ErrOverQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "u" {
		t.Errorf("embedded rejection = %+v, want *QuotaError for tenant u", qe)
	}
	if d, ok := RetryAfter(err); !ok || d != 0 {
		t.Errorf("RetryAfter = (%v, %v), want (0, true)", d, ok)
	}
}

// TestOpenRemoteSentinelOwnsConnection is the regression test for the
// create-collision path: the handle returned alongside ErrRepositoryExists
// owns a live connection, and closing it (even twice) releases every
// resource — no goroutine survives the test.
func TestOpenRemoteSentinelOwnsConnection(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	svc := memService(t)
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	c := newTestClient(t)
	first, err := Open(ctx, Options{Addr: srv.Addr(), Client: c, RepoID: "dup", Create: true, Repo: smallRepoOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		h, err := Open(ctx, Options{Addr: srv.Addr(), Client: c, RepoID: "dup", Create: true, Repo: smallRepoOptions()})
		if !errors.Is(err, ErrRepositoryExists) {
			t.Fatalf("round %d: err = %v, want ErrRepositoryExists", i, err)
		}
		if h == nil {
			t.Fatal("sentinel path returned no handle")
		}
		if err := h.Close(); err != nil {
			t.Fatalf("round %d close: %v", i, err)
		}
		if err := h.Close(); err != nil {
			t.Fatalf("round %d second close: %v", i, err)
		}
	}
	// Leakcheck's cleanup asserts that the per-connection goroutines of all
	// sentinel-path handles actually terminated.
}
