// Package mie is the public API of the MIE framework — Multimodal Indexable
// Encryption (Ferreira, Leitão, Domingos; DSN 2017): encrypted storage and
// ranked multimodal search of text+image data on untrusted servers, with the
// heavy training and indexing computations outsourced to the server over
// Distance Preserving Encodings.
//
// A minimal embedded (in-process) session:
//
//	key, _ := mie.NewRepositoryKey()
//	client, _ := mie.NewClient(mie.ClientConfig{Key: key})
//	svc := mie.NewService()
//	repo, _ := mie.OpenLocal(svc, client, "photos", mie.RepositoryOptions{})
//	dataKey, _ := mie.NewDataKey()
//	_ = repo.Add(&mie.Object{ID: "p1", Text: "beach sunset", Image: img}, dataKey)
//	_ = repo.Train()
//	hits, _ := repo.Search(&mie.Object{ID: "q", Text: "sunset"}, 10)
//
// The same Repository interface works against a remote server started with
// cmd/mie-server by replacing OpenLocal with OpenRemote.
package mie

import (
	"fmt"

	"mie/internal/audio"
	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/imaging"
	"mie/internal/server"
	"mie/internal/wire"
)

// Re-exported core types; see the internal packages for full documentation.
type (
	// Object is a multimodal data object (any subset of text, image, audio).
	Object = core.Object
	// Client is the trusted client-side component: feature extraction, DPE
	// encoding and object encryption.
	Client = core.Client
	// ClientConfig configures a Client.
	ClientConfig = core.ClientConfig
	// RepositoryKey is the secret shared among a repository's users.
	RepositoryKey = core.RepositoryKey
	// RepositoryOptions tunes the server-side engine.
	RepositoryOptions = core.RepositoryOptions
	// SearchHit is one ranked search result.
	SearchHit = core.SearchHit
	// Service hosts repositories in process.
	Service = core.Service
	// DataKey encrypts a single object (fine-grained access control).
	DataKey = crypto.Key
	// Meter attributes client cost to the paper's sub-operation categories.
	Meter = device.Meter
	// Image is a grayscale image, one of the dense modalities of an Object.
	Image = imaging.Image
	// Clip is a mono audio clip, the third modality of an Object.
	Clip = audio.Clip
)

// NewImage allocates a zero grayscale image of the given dimensions.
func NewImage(w, h int) (*Image, error) { return imaging.NewImage(w, h) }

// NewClip wraps mono PCM samples (nominally 16 kHz, [-1,1]) as an audio clip.
func NewClip(samples []float64) *Clip { return audio.NewClip(samples) }

// NewRepositoryKey draws a fresh repository key rk_R to be shared with
// authorized users out of band.
func NewRepositoryKey() (RepositoryKey, error) { return core.NewRepositoryKey() }

// NewDataKey draws a fresh per-object data key dk_p.
func NewDataKey() (DataKey, error) { return crypto.NewRandomKey() }

// NewClient builds the client-side component for one repository.
func NewClient(cfg ClientConfig) (*Client, error) { return core.NewClient(cfg) }

// NewService creates an in-process MIE server component.
func NewService() *Service { return core.NewService() }

// DecryptObject recovers a plaintext object from a hit's ciphertext using
// its data key.
func DecryptObject(ciphertext []byte, dataKey DataKey) (*Object, error) {
	return core.DecryptObject(ciphertext, dataKey)
}

// Repository is the user-facing handle for one shared repository: Add,
// Remove, Train, Search, Get — the five operations of the scheme plus reads
// — independent of whether the server runs in process or across the network.
type Repository interface {
	// Add uploads (or replaces) an object encrypted under dataKey.
	Add(obj *Object, dataKey DataKey) error
	// Remove deletes an object by id.
	Remove(objectID string) error
	// Train asks the server to run training and build the indexes.
	Train() error
	// Search returns the top-k objects most similar to the query object.
	Search(query *Object, k int) ([]SearchHit, error)
	// Get fetches one stored ciphertext and its owner id.
	Get(objectID string) (ciphertext []byte, owner string, err error)
}

// localRepo binds a Client to an in-process core.Repository.
type localRepo struct {
	client *Client
	repo   *core.Repository
}

var _ Repository = (*localRepo)(nil)

// OpenLocal creates (or reuses) a repository on an in-process Service and
// returns a handle bound to the given client.
func OpenLocal(svc *Service, c *Client, repoID string, opts RepositoryOptions) (Repository, error) {
	repo, err := svc.CreateRepository(repoID, opts)
	if err != nil {
		if repo, err = svc.Repository(repoID); err != nil {
			return nil, err
		}
	}
	return &localRepo{client: c, repo: repo}, nil
}

func (l *localRepo) Add(obj *Object, dataKey DataKey) error {
	up, err := l.client.PrepareUpdate(obj, dataKey)
	if err != nil {
		return err
	}
	return l.repo.Update(up)
}

func (l *localRepo) Remove(objectID string) error {
	l.repo.Remove(objectID)
	return nil
}

func (l *localRepo) Train() error { return l.repo.Train() }

func (l *localRepo) Search(query *Object, k int) ([]SearchHit, error) {
	q, err := l.client.PrepareQuery(query, k)
	if err != nil {
		return nil, err
	}
	return l.repo.Search(q)
}

func (l *localRepo) Get(objectID string) ([]byte, string, error) {
	return l.repo.Get(objectID)
}

// remoteRepo binds a Client to a network connection.
type remoteRepo struct {
	client *Client
	conn   *client.Conn
	repoID string
}

var _ Repository = (*remoteRepo)(nil)

// RemoteOptions configures OpenRemote.
type RemoteOptions struct {
	// Create requests repository creation; set it on first open.
	Create bool
	// Repo holds engine parameters used when Create is set.
	Repo RepositoryOptions
	// Meter, when non-nil, accounts network transfer costs.
	Meter *Meter
}

// OpenRemote dials an MIE server and returns a repository handle.
func OpenRemote(addr string, c *Client, repoID string, opts RemoteOptions) (Repository, error) {
	conn, err := client.Dial(addr, opts.Meter)
	if err != nil {
		return nil, err
	}
	if opts.Create {
		wireOpts := wire.RepoOptions{
			VocabWords:        opts.Repo.Vocab.Words,
			VocabMaxIter:      opts.Repo.Vocab.MaxIter,
			TreeBranch:        opts.Repo.Vocab.Tree.Branch,
			TreeHeight:        opts.Repo.Vocab.Tree.Height,
			TreeSeed:          opts.Repo.Vocab.Seed,
			TrainingSampleCap: opts.Repo.TrainingSampleCap,
			FusionCandidates:  opts.Repo.FusionCandidates,
		}
		if err := conn.CreateRepository(repoID, wireOpts); err != nil {
			if cerr := conn.Close(); cerr != nil {
				return nil, fmt.Errorf("%v (close: %w)", err, cerr)
			}
			return nil, err
		}
	}
	return &remoteRepo{client: c, conn: conn, repoID: repoID}, nil
}

func (r *remoteRepo) Add(obj *Object, dataKey DataKey) error {
	up, err := r.client.PrepareUpdate(obj, dataKey)
	if err != nil {
		return err
	}
	return r.conn.Update(r.repoID, up)
}

func (r *remoteRepo) Remove(objectID string) error {
	return r.conn.Remove(r.repoID, objectID)
}

func (r *remoteRepo) Train() error { return r.conn.Train(r.repoID) }

func (r *remoteRepo) Search(query *Object, k int) ([]SearchHit, error) {
	q, err := r.client.PrepareQuery(query, k)
	if err != nil {
		return nil, err
	}
	return r.conn.Search(r.repoID, q)
}

func (r *remoteRepo) Get(objectID string) ([]byte, string, error) {
	return r.conn.Get(r.repoID, objectID)
}

// Close releases a remote repository's connection; local handles ignore it.
func Close(r Repository) error {
	if rr, ok := r.(*remoteRepo); ok {
		return rr.conn.Close()
	}
	return nil
}

// Serve starts an MIE server on addr backed by svc and returns it; callers
// own its lifecycle. The returned server's Addr reports the bound address
// (useful with ":0").
func Serve(addr string, svc *Service) (*server.Server, error) {
	return server.New(addr, svc, nil)
}

// SaveService snapshots every hosted repository into dir (one file each,
// replaced atomically); LoadService restores them. Together they give an
// embedded deployment the same durability cmd/mie-server's -data-dir flag
// provides.
func SaveService(svc *Service, dir string) error { return core.SaveService(svc, dir) }

// LoadService restores a Service from a snapshot directory written by
// SaveService. A fresh (nonexistent) directory yields an empty service.
func LoadService(dir string) (*Service, error) { return core.LoadService(dir, nil) }
