// Package mie is the public API of the MIE framework — Multimodal Indexable
// Encryption (Ferreira, Leitão, Domingos; DSN 2017): encrypted storage and
// ranked multimodal search of text+image data on untrusted servers, with the
// heavy training and indexing computations outsourced to the server over
// Distance Preserving Encodings.
//
// A minimal embedded (in-process) session:
//
//	ctx := context.Background()
//	key, _ := mie.NewRepositoryKey()
//	client, _ := mie.NewClient(mie.ClientConfig{Key: key})
//	repo, _ := mie.Open(ctx, mie.Options{
//		Client: client,
//		RepoID: "photos",
//		Create: true,
//	})
//	defer repo.Close()
//	dataKey, _ := mie.NewDataKey()
//	_ = repo.Add(ctx, &mie.Object{ID: "p1", Text: "beach sunset", Image: img}, dataKey)
//	_ = repo.Train(ctx)
//	hits, _ := repo.Search(ctx, &mie.Object{ID: "q", Text: "sunset"}, 10)
//
// The same Repository interface works against a remote server started with
// cmd/mie-server by setting Options.Addr; the connection then speaks the
// multiplexed wire protocol v2, so concurrent calls share one TCP
// connection, context deadlines ride to the server, and canceling a context
// aborts the in-flight request on both ends. Training can also run as an
// asynchronous server-side job via TrainAsync — the mobile client may
// disconnect while the cloud trains.
package mie

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"time"

	"mie/internal/audio"
	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/imaging"
	"mie/internal/obs"
	"mie/internal/server"
	"mie/internal/wire"
)

// Re-exported core types; see the internal packages for full documentation.
type (
	// Object is a multimodal data object (any subset of text, image, audio).
	Object = core.Object
	// Client is the trusted client-side component: feature extraction, DPE
	// encoding and object encryption.
	Client = core.Client
	// ClientConfig configures a Client.
	ClientConfig = core.ClientConfig
	// RepositoryKey is the secret shared among a repository's users.
	RepositoryKey = core.RepositoryKey
	// RepositoryOptions tunes the server-side engine.
	RepositoryOptions = core.RepositoryOptions
	// SearchHit is one ranked search result.
	SearchHit = core.SearchHit
	// Service hosts repositories in process.
	Service = core.Service
	// ServiceOptions configures OpenService: durable directory, sync
	// policy, lazy activation, memory budget and tenant quotas.
	ServiceOptions = core.ServiceOptions
	// RecoveryReport summarizes what OpenService recovered from disk.
	RecoveryReport = core.RecoveryReport
	// Quotas bounds one tenant's resident objects/bytes and in-flight
	// requests; the zero value means unlimited.
	Quotas = core.Quotas
	// QuotaError is the typed rejection carrying tenant, resource and a
	// retry-after hint; it unwraps to ErrOverQuota.
	QuotaError = core.QuotaError
	// LifecycleStats is a point-in-time view of repository activation
	// state (see Service.Lifecycle).
	LifecycleStats = core.LifecycleStats
	// DataKey encrypts a single object (fine-grained access control).
	DataKey = crypto.Key
	// Meter attributes client cost to the paper's sub-operation categories.
	Meter = device.Meter
	// Image is a grayscale image, one of the dense modalities of an Object.
	Image = imaging.Image
	// Clip is a mono audio clip, the third modality of an Object.
	Clip = audio.Clip
	// TrainState is the lifecycle state of an asynchronous training job.
	TrainState = core.TrainJobState
	// TrainStatus is a point-in-time view of one training job.
	TrainStatus = core.TrainJobStatus
	// Trace is a completed request trace: a span tree recorded on one side
	// (client or server) of an operation. See TraceFetcher.
	Trace = obs.Trace
)

// TraceFetcher is implemented by remote Repository handles. It retrieves the
// server-side half of a distributed trace by id — the span tree the server
// kept for a sampled (or slow/errored) request this handle made. Render it,
// together with any client-side fragment, via obs.RenderTraceTree.
type TraceFetcher interface {
	FetchTrace(ctx context.Context, traceID uint64) (*Trace, error)
}

// Training job states.
const (
	TrainRunning = core.TrainRunning
	TrainDone    = core.TrainDone
	TrainFailed  = core.TrainFailed
)

// ErrRepositoryExists reports that Open was asked to create a repository
// that already exists. Open still returns a valid handle to the existing
// repository alongside it, so callers for whom reuse is acceptable opt in
// explicitly:
//
//	repo, err := mie.Open(ctx, opts)
//	if err != nil && !errors.Is(err, mie.ErrRepositoryExists) {
//		return err
//	}
//
// For embedded deployments the error is returned only when the requested
// RepositoryOptions differ from the ones the repository was created with —
// re-running creation with identical parameters is harmless. A remote
// server cannot be asked for its parameters, so there any create collision
// reports the sentinel.
var ErrRepositoryExists = errors.New("mie: repository already exists")

// ErrOverQuota reports that the server rejected a request because the
// caller's tenant exceeded an admission quota (objects, bytes or in-flight
// requests). Both embedded and remote errors match it with errors.Is; use
// RetryAfter to extract the server's backoff hint.
var ErrOverQuota = core.ErrOverQuota

// RetryAfter extracts the server's backoff hint from a quota rejection.
// A zero duration with ok=true means the rejection is not transient: the
// tenant must free capacity (remove objects) rather than retry. ok=false
// means err carries no quota rejection at all.
func RetryAfter(err error) (d time.Duration, ok bool) {
	var qe *core.QuotaError
	if errors.As(err, &qe) {
		return qe.RetryAfter, true
	}
	var re *client.RemoteError
	if errors.As(err, &re) && errors.Is(re, core.ErrOverQuota) {
		return re.RetryAfter, true
	}
	return 0, false
}

// NewImage allocates a zero grayscale image of the given dimensions.
func NewImage(w, h int) (*Image, error) { return imaging.NewImage(w, h) }

// NewClip wraps mono PCM samples (nominally 16 kHz, [-1,1]) as an audio clip.
func NewClip(samples []float64) *Clip { return audio.NewClip(samples) }

// NewRepositoryKey draws a fresh repository key rk_R to be shared with
// authorized users out of band.
func NewRepositoryKey() (RepositoryKey, error) { return core.NewRepositoryKey() }

// NewDataKey draws a fresh per-object data key dk_p.
func NewDataKey() (DataKey, error) { return crypto.NewRandomKey() }

// NewClient builds the client-side component for one repository.
func NewClient(cfg ClientConfig) (*Client, error) { return core.NewClient(cfg) }

// OpenService opens an in-process MIE server component. The zero
// ServiceOptions value yields a purely in-memory service (the old
// NewService behavior); setting Dir makes it durable (snapshot + WAL per
// repository, the old LoadService behavior), and on a durable service
// LazyActivation, MemoryBudget and Quotas unlock the multi-tenant
// lifecycle: repositories start cold, activate on first use, and are
// evicted back to disk under memory pressure. The report describes what
// was recovered from Dir (nil for in-memory services).
func OpenService(opts ServiceOptions) (*Service, *RecoveryReport, error) {
	return core.OpenService(opts)
}

// DecryptObject recovers a plaintext object from a hit's ciphertext using
// its data key.
func DecryptObject(ciphertext []byte, dataKey DataKey) (*Object, error) {
	return core.DecryptObject(ciphertext, dataKey)
}

// Repository is the user-facing handle for one shared repository: Add,
// Remove, Train, Search, Get — the five operations of the scheme plus reads
// — independent of whether the server runs in process or across the
// network. Every call takes a context; deadlines and cancellation propagate
// to the server over the wire protocol's deadline and Cancel frames.
type Repository interface {
	// Add uploads (or replaces) an object encrypted under dataKey.
	Add(ctx context.Context, obj *Object, dataKey DataKey) error
	// Remove deletes an object by id.
	Remove(ctx context.Context, objectID string) error
	// Train asks the server to run training and build the indexes, and
	// waits for completion. Concurrent Train calls join the same run.
	Train(ctx context.Context) error
	// TrainAsync launches training as a server-side background job and
	// returns its handle immediately. The job belongs to the repository,
	// not the caller: it keeps running if the caller disconnects.
	TrainAsync(ctx context.Context) (*TrainJob, error)
	// Search returns the top-k objects most similar to the query object.
	Search(ctx context.Context, query *Object, k int) ([]SearchHit, error)
	// Get fetches one stored ciphertext and its owner id.
	Get(ctx context.Context, objectID string) (ciphertext []byte, owner string, err error)
	// Close releases the handle's resources (the connection, for remote
	// repositories). The repository itself lives on.
	Close() error
}

// TrainJob is a handle to an asynchronous training job.
type TrainJob struct {
	id     uint64
	status func(ctx context.Context, wait bool) (TrainStatus, error)
}

// ID returns the server-assigned job identifier.
func (j *TrainJob) ID() uint64 { return j.id }

// Status polls the job without blocking.
func (j *TrainJob) Status(ctx context.Context) (TrainStatus, error) {
	return j.status(ctx, false)
}

// Wait blocks until the job finishes or ctx expires; on expiry it returns
// the job's latest status alongside ctx's error.
func (j *TrainJob) Wait(ctx context.Context) (TrainStatus, error) {
	return j.status(ctx, true)
}

// Options selects and configures the deployment a Repository handle talks
// to. Client and RepoID are always required; Addr switches between the
// embedded engine (empty) and a remote mie-server (host:port).
type Options struct {
	// Addr is the address of a remote mie-server. Empty means embedded:
	// the repository lives in this process, hosted on Service.
	Addr string
	// Service hosts embedded repositories. Nil creates a private Service,
	// which is convenient for one-repository programs; share one Service
	// across Opens to host several repositories together. Ignored when
	// Addr is set.
	Service *Service
	// Client prepares encodings and encryption on the trusted side.
	Client *Client
	// RepoID names the repository.
	RepoID string
	// Create asks for the repository to be created. If it already exists,
	// Open returns a handle to the existing repository together with
	// ErrRepositoryExists (see the sentinel's documentation).
	Create bool
	// Repo holds the engine parameters used when Create is set.
	Repo RepositoryOptions
	// Meter, when non-nil, accounts network transfer costs (remote only).
	Meter *Meter
	// Token is a bearer authorization token minted by the repository
	// owner's authority (remote only).
	Token string
}

// Open returns a Repository handle for the deployment described by opts:
// the embedded/remote split is an Options field, not an API fork.
func Open(ctx context.Context, opts Options) (Repository, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Client == nil {
		return nil, errors.New("mie: Open needs a Client")
	}
	if opts.RepoID == "" {
		return nil, errors.New("mie: Open needs a RepoID")
	}
	if opts.Addr == "" {
		return openLocal(opts)
	}
	return openRemote(ctx, opts)
}

func openLocal(opts Options) (Repository, error) {
	svc := opts.Service
	if svc == nil {
		var err error
		if svc, _, err = core.OpenService(core.ServiceOptions{}); err != nil {
			return nil, err
		}
	}
	existed := false
	if opts.Create {
		if _, err := svc.CreateRepository(opts.RepoID, opts.Repo); err != nil {
			if !errors.Is(err, core.ErrRepoExists) {
				return nil, err
			}
			existed = true
		}
	}
	// The handle holds an activation pin for its lifetime: on a lazy
	// service the repository cannot be evicted out from under an open
	// embedded handle. Close releases the pin.
	repo, release, err := svc.Acquire(opts.RepoID)
	if err != nil {
		return nil, err
	}
	h := &localRepo{client: opts.Client, repo: repo, release: release}
	if existed && !reflect.DeepEqual(repo.Options(), opts.Repo.WithDefaults()) {
		return h, fmt.Errorf("mie: repository %q exists with different options: %w",
			opts.RepoID, ErrRepositoryExists)
	}
	return h, nil
}

func openRemote(ctx context.Context, opts Options) (Repository, error) {
	conn, err := client.Dial(opts.Addr, opts.Meter)
	if err != nil {
		return nil, err
	}
	if opts.Token != "" {
		conn.SetToken(opts.Token)
	}
	r := &remoteRepo{client: opts.Client, conn: conn, repoID: opts.RepoID}
	if opts.Create {
		if err := conn.CreateRepository(ctx, opts.RepoID, wire.FromCore(opts.Repo)); err != nil {
			// The server classifies the collision with a typed wire code
			// (client.RemoteError unwraps to core.ErrRepoExists), so the
			// match is on the code, never on message text. On this path the
			// returned handle owns the live connection: callers that accept
			// the sentinel must Close the handle exactly as on success
			// (Close is idempotent).
			if errors.Is(err, core.ErrRepoExists) {
				return r, fmt.Errorf("mie: repository %q exists on %s: %w",
					opts.RepoID, opts.Addr, ErrRepositoryExists)
			}
			if cerr := conn.Close(); cerr != nil {
				return nil, fmt.Errorf("%v (close: %w)", err, cerr)
			}
			return nil, err
		}
	}
	return r, nil
}

// localRepo binds a Client to an in-process core.Repository. It holds an
// activation pin (see core.Service.Acquire) released by Close.
type localRepo struct {
	client  *Client
	repo    *core.Repository
	release func()
}

var _ Repository = (*localRepo)(nil)

func (l *localRepo) Add(ctx context.Context, obj *Object, dataKey DataKey) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	up, err := l.client.PrepareUpdateContext(ctx, obj, dataKey)
	if err != nil {
		return err
	}
	return l.repo.UpdateContext(ctx, up)
}

func (l *localRepo) Remove(ctx context.Context, objectID string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.repo.RemoveContext(ctx, objectID)
}

func (l *localRepo) Train(ctx context.Context) error {
	job, err := l.TrainAsync(ctx)
	if err != nil {
		return err
	}
	return waitTrained(ctx, job)
}

func (l *localRepo) TrainAsync(ctx context.Context) (*TrainJob, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	id := l.repo.TrainStart()
	return &TrainJob{id: id, status: func(ctx context.Context, wait bool) (TrainStatus, error) {
		if wait {
			return l.repo.TrainWait(ctx, id)
		}
		return l.repo.TrainJob(id)
	}}, nil
}

func (l *localRepo) Search(ctx context.Context, query *Object, k int) ([]SearchHit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := l.client.PrepareQueryContext(ctx, query, k)
	if err != nil {
		return nil, err
	}
	return l.repo.SearchContext(ctx, q)
}

func (l *localRepo) Get(ctx context.Context, objectID string) ([]byte, string, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	return l.repo.GetContext(ctx, objectID)
}

// Close releases the handle's activation pin so a lazy service may evict
// the repository again. Idempotent (the pin release is once-only).
func (l *localRepo) Close() error {
	if l.release != nil {
		l.release()
	}
	return nil
}

// remoteRepo binds a Client to a network connection.
type remoteRepo struct {
	client *Client
	conn   *client.Conn
	repoID string
}

var _ Repository = (*remoteRepo)(nil)

func (r *remoteRepo) Add(ctx context.Context, obj *Object, dataKey DataKey) error {
	up, err := r.client.PrepareUpdateContext(ctx, obj, dataKey)
	if err != nil {
		return err
	}
	return r.conn.Update(ctx, r.repoID, up)
}

func (r *remoteRepo) Remove(ctx context.Context, objectID string) error {
	return r.conn.Remove(ctx, r.repoID, objectID)
}

func (r *remoteRepo) Train(ctx context.Context) error {
	job, err := r.TrainAsync(ctx)
	if err != nil {
		return err
	}
	return waitTrained(ctx, job)
}

func (r *remoteRepo) TrainAsync(ctx context.Context) (*TrainJob, error) {
	st, err := r.conn.TrainStart(ctx, r.repoID)
	if err != nil {
		return nil, err
	}
	return &TrainJob{id: st.JobID, status: func(ctx context.Context, wait bool) (TrainStatus, error) {
		for {
			var wst wire.TrainJobStatus
			var err error
			if wait {
				wst, err = r.conn.TrainWait(ctx, r.repoID, st.JobID)
			} else {
				wst, err = r.conn.TrainStatus(ctx, r.repoID, st.JobID)
			}
			if err != nil {
				return TrainStatus{}, err
			}
			got := TrainStatus{
				JobID: wst.JobID,
				State: TrainState(wst.State),
				Err:   wst.Err,
				Epoch: wst.Epoch,
			}
			if !wait || got.State != TrainRunning {
				return got, nil
			}
			// The server answered "still running" because the request
			// deadline lapsed server-side; keep waiting until our context
			// gives up.
			if err := ctx.Err(); err != nil {
				return got, err
			}
		}
	}}, nil
}

func (r *remoteRepo) Search(ctx context.Context, query *Object, k int) ([]SearchHit, error) {
	q, err := r.client.PrepareQueryContext(ctx, query, k)
	if err != nil {
		return nil, err
	}
	return r.conn.Search(ctx, r.repoID, q)
}

func (r *remoteRepo) Get(ctx context.Context, objectID string) ([]byte, string, error) {
	return r.conn.Get(ctx, r.repoID, objectID)
}

func (r *remoteRepo) Close() error { return r.conn.Close() }

// FetchTrace implements TraceFetcher: it asks the server for the span tree it
// kept under traceID. Use a fresh context so the fetch does not extend the
// trace being fetched.
func (r *remoteRepo) FetchTrace(ctx context.Context, traceID uint64) (*Trace, error) {
	return r.conn.FetchTrace(ctx, traceID)
}

var _ TraceFetcher = (*remoteRepo)(nil)

// waitTrained blocks on a train job and folds its outcome into an error.
func waitTrained(ctx context.Context, job *TrainJob) error {
	st, err := job.Wait(ctx)
	if err != nil {
		return err
	}
	if st.State == TrainFailed {
		return errors.New(st.Err)
	}
	return nil
}

// Serve starts an MIE server on addr backed by svc and returns it; callers
// own its lifecycle. The returned server's Addr reports the bound address
// (useful with ":0").
func Serve(addr string, svc *Service) (*server.Server, error) {
	return server.New(addr, svc, nil)
}

// SaveService snapshots every hosted repository into dir (one file each,
// written via fsync+rename and pruned of dropped repositories) and rotates
// each repository's write-ahead log; OpenService(ServiceOptions{Dir: dir})
// restores them. Together they give an embedded deployment the same crash
// safety cmd/mie-server's -data-dir flag provides.
func SaveService(svc *Service, dir string) error { return core.SaveService(svc, dir) }
