package mie_test

import (
	"context"
	"fmt"
	"log"

	"mie"
)

// ExampleOpen shows the embedded (in-process) end-to-end flow: create a
// repository, add encrypted objects, outsource training, search, decrypt.
func ExampleOpen() {
	ctx := context.Background()
	key, err := mie.NewRepositoryKey()
	if err != nil {
		log.Fatal(err)
	}
	client, err := mie.NewClient(mie.ClientConfig{Key: key})
	if err != nil {
		log.Fatal(err)
	}
	repo, err := mie.Open(ctx, mie.Options{Client: client, RepoID: "notes", Create: true})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	dataKey, err := mie.NewDataKey()
	if err != nil {
		log.Fatal(err)
	}
	docs := []struct{ id, text string }{
		{"go-talk", "concurrency patterns in go channels goroutines"},
		{"crypto-notes", "paillier homomorphic encryption additively"},
		{"trip-plan", "lisbon porto train schedule tickets"},
	}
	for _, d := range docs {
		if err := repo.Add(ctx, &mie.Object{ID: d.id, Owner: "me", Text: d.text}, dataKey); err != nil {
			log.Fatal(err)
		}
	}
	if err := repo.Train(ctx); err != nil {
		log.Fatal(err)
	}
	hits, err := repo.Search(ctx, &mie.Object{ID: "q", Text: "homomorphic encryption"}, 1)
	if err != nil {
		log.Fatal(err)
	}
	obj, err := mie.DecryptObject(hits[0].Ciphertext, dataKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hits[0].ObjectID)
	fmt.Println(obj.Text)
	// Output:
	// crypto-notes
	// paillier homomorphic encryption additively
}

// ExampleRepository_Remove shows dynamic deletion: removed objects leave the
// index immediately, with no client-side bookkeeping.
func ExampleRepository_Remove() {
	ctx := context.Background()
	key, err := mie.NewRepositoryKey()
	if err != nil {
		log.Fatal(err)
	}
	client, err := mie.NewClient(mie.ClientConfig{Key: key})
	if err != nil {
		log.Fatal(err)
	}
	repo, err := mie.Open(ctx, mie.Options{Client: client, RepoID: "r", Create: true})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	dataKey, err := mie.NewDataKey()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []struct{ id, text string }{
		{"keep", "quarterly report finances"},
		{"drop", "quarterly report drafts obsolete"},
		{"other", "unrelated meeting minutes"},
	} {
		if err := repo.Add(ctx, &mie.Object{ID: d.id, Owner: "me", Text: d.text}, dataKey); err != nil {
			log.Fatal(err)
		}
	}
	if err := repo.Train(ctx); err != nil {
		log.Fatal(err)
	}
	if err := repo.Remove(ctx, "drop"); err != nil {
		log.Fatal(err)
	}
	hits, err := repo.Search(ctx, &mie.Object{ID: "q", Text: "quarterly report"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Println(h.ObjectID)
	}
	// Output:
	// keep
}
