// Voicenotes: the third modality in action — encrypted voice memos with
// text annotations, searched by humming/audio example and by keyword, over
// the same DPE machinery the paper builds for images.
//
//	go run ./examples/voicenotes
//
// Each memo is an Object carrying an audio clip (here synthesized tones
// standing in for recordings) plus transcript-style tags. The cloud trains
// an *audio* codebook from the encodings — it never hears a sample.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"mie"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	key, err := mie.NewRepositoryKey()
	if err != nil {
		return err
	}
	client, err := mie.NewClient(mie.ClientConfig{Key: key})
	if err != nil {
		return err
	}
	ctx := context.Background()
	repo, err := mie.Open(ctx, mie.Options{Client: client, RepoID: "voice-memos", Create: true})
	if err != nil {
		return err
	}
	defer repo.Close()
	dataKey, err := mie.NewDataKey()
	if err != nil {
		return err
	}

	// Three "speakers", three memos each. Recording stands in for a memo:
	// shared spectral character per speaker, unique noise per take.
	type memo struct {
		id, tags string
		speaker  int
		take     int64
	}
	memos := []memo{
		{"ana-groceries", "groceries shopping list milk bread", 0, 1},
		{"ana-meeting", "meeting reminder project deadline", 0, 2},
		{"ana-birthday", "birthday gift idea for mom", 0, 3},
		{"rui-workout", "workout plan monday gym legs", 1, 1},
		{"rui-recipe", "recipe idea pasta garlic tomato", 1, 2},
		{"rui-travel", "travel checklist passport tickets", 1, 3},
		{"eva-song", "song idea chorus melody draft", 2, 1},
		{"eva-lecture", "lecture notes distributed systems consensus", 2, 2},
		{"eva-podcast", "podcast episode ideas encryption privacy", 2, 3},
	}
	for _, m := range memos {
		obj := &mie.Object{
			ID:    m.id,
			Owner: m.id[:3],
			Text:  m.tags,
			Audio: recording(m.speaker, m.take),
		}
		if err := repo.Add(ctx, obj, dataKey); err != nil {
			return fmt.Errorf("add %s: %w", m.id, err)
		}
	}
	fmt.Printf("uploaded %d encrypted voice memos (server sees only encodings)\n", len(memos))

	if err := repo.Train(ctx); err != nil {
		return err
	}
	fmt.Println("cloud trained the audio codebook from Dense-DPE encodings")

	// Query 1: by audio example — a new take from speaker 1 ("rui").
	hits, err := repo.Search(ctx, &mie.Object{ID: "q1", Audio: recording(1, 99)}, 3)
	if err != nil {
		return err
	}
	fmt.Println("\nquery-by-audio (a new clip of rui's voice):")
	for i, h := range hits {
		fmt.Printf("  %d. %-16s score=%.4f\n", i+1, h.ObjectID, h.Score)
	}

	// Query 2: multimodal — keyword plus audio example.
	hits, err = repo.Search(ctx, &mie.Object{
		ID:    "q2",
		Text:  "recipe pasta",
		Audio: recording(1, 123),
	}, 3)
	if err != nil {
		return err
	}
	fmt.Println("\nmultimodal query ('recipe pasta' + rui's voice):")
	for i, h := range hits {
		fmt.Printf("  %d. %-16s score=%.4f\n", i+1, h.ObjectID, h.Score)
	}
	if len(hits) > 0 {
		obj, err := mie.DecryptObject(hits[0].Ciphertext, dataKey)
		if err != nil {
			return err
		}
		fmt.Printf("\ndecrypted top memo %q: tags=%q, %.2fs of audio\n",
			obj.ID, obj.Text, obj.Audio.Duration())
	}
	return nil
}

// recording synthesizes a memo: speaker-specific harmonic stack plus
// take-specific phase/noise. Stands in for real microphone input.
func recording(speaker int, take int64) *mie.Clip {
	const rate = 16000
	const dur = 0.12
	fundamentals := []float64{180, 320, 520}
	f0 := fundamentals[speaker%len(fundamentals)]
	n := int(dur * rate)
	samples := make([]float64, n)
	seed := take*2654435761 + int64(speaker)
	noise := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(uint64(seed)>>11)/float64(1<<53)*2 - 1
	}
	for i := range samples {
		t := float64(i) / rate
		v := math.Sin(2*math.Pi*f0*t) +
			0.5*math.Sin(2*math.Pi*2*f0*t) +
			0.25*math.Sin(2*math.Pi*3.5*f0*t)
		samples[i] = v + 0.1*noise()
	}
	return mie.NewClip(samples)
}
