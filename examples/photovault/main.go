// Photovault: a cloud photo app over a real MIE server — the motivating
// scenario of the paper's introduction (iCloud/Google Photos without
// trusting the provider).
//
//	go run ./examples/photovault
//
// It starts a TCP mie-server in process, then two users with the shared
// repository key connect independently: Alice uploads her tagged photo
// library; Bob (a family member) searches it by example and fetches a photo
// — everything crossing the socket is encrypted or encoded.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mie"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	// The cloud: knows no keys, sees no plaintext.
	svc, _, err := mie.OpenService(mie.ServiceOptions{})
	if err != nil {
		return err
	}
	srv, err := mie.Serve("127.0.0.1:0", svc)
	if err != nil {
		return err
	}
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("server close: %v", err)
		}
	}()
	fmt.Println("cloud server listening on", srv.Addr())

	// The family shares one repository key (distributed out of band, e.g.
	// via a key-sharing protocol over public-key authentication).
	repoKey, err := mie.NewRepositoryKey()
	if err != nil {
		return err
	}
	familyAlbumKey, err := mie.NewDataKey()
	if err != nil {
		return err
	}

	// --- Alice: creates the repository and uploads her library ----------
	alice, err := mie.NewClient(mie.ClientConfig{Key: repoKey})
	if err != nil {
		return err
	}
	aliceRepo, err := mie.Open(ctx, mie.Options{Addr: srv.Addr(), Client: alice, RepoID: "family-photos", Create: true})
	if err != nil {
		return err
	}
	defer func() { _ = aliceRepo.Close() }()

	type photo struct {
		id, tags string
		scene    int64
	}
	library := []photo{
		{"summer-beach-01", "beach sand holiday kids sunny", 10},
		{"summer-beach-02", "beach waves ocean sunset", 10},
		{"birthday-party", "party cake family celebration candles", 20},
		{"ski-trip-01", "mountain snow ski winter family", 30},
		{"ski-trip-02", "mountain snow sled kids winter", 30},
		{"grandma-garden", "garden flowers spring grandma", 40},
	}
	for _, p := range library {
		obj := &mie.Object{
			ID:    p.id,
			Owner: "alice",
			Text:  p.tags,
			Image: scenePhoto(p.scene, p.id),
		}
		if err := aliceRepo.Add(ctx, obj, familyAlbumKey); err != nil {
			return fmt.Errorf("alice add %s: %w", p.id, err)
		}
	}
	fmt.Printf("alice uploaded %d encrypted photos\n", len(library))

	// Training runs in the cloud — Alice's phone does nothing.
	if err := aliceRepo.Train(ctx); err != nil {
		return err
	}
	fmt.Println("cloud trained + indexed the album")

	// --- Bob: searches with his own connection ----------------------------
	bob, err := mie.NewClient(mie.ClientConfig{Key: repoKey})
	if err != nil {
		return err
	}
	bobRepo, err := mie.Open(ctx, mie.Options{Addr: srv.Addr(), Client: bob, RepoID: "family-photos"})
	if err != nil {
		return err
	}
	defer func() { _ = bobRepo.Close() }()

	// Bob remembers a snowy day and has one photo from the same trip.
	query := &mie.Object{
		ID:    "bob-query",
		Text:  "snow winter",
		Image: scenePhoto(30, "bobs-own-shot"),
	}
	hits, err := bobRepo.Search(ctx, query, 3)
	if err != nil {
		return err
	}
	fmt.Println("\nbob's results for 'snow winter' + his ski photo:")
	for i, h := range hits {
		fmt.Printf("  %d. %-18s score=%.4f owner=%s\n", i+1, h.ObjectID, h.Score, h.Owner)
	}
	if len(hits) == 0 {
		return fmt.Errorf("no results")
	}

	// Bob holds the album data key (family sharing), so he can decrypt.
	obj, err := mie.DecryptObject(hits[0].Ciphertext, familyAlbumKey)
	if err != nil {
		return err
	}
	fmt.Printf("\nbob decrypted %q — tags: %q\n", obj.ID, obj.Text)

	// Bob also adds his own photo to the shared album: multi-writer, no
	// coordination, no client-side state.
	add := &mie.Object{
		ID:    "bob-ski-03",
		Owner: "bob",
		Text:  "mountain snow snowboard winter",
		Image: scenePhoto(30, "bob-ski-03"),
	}
	if err := bobRepo.Add(ctx, add, familyAlbumKey); err != nil {
		return err
	}
	fmt.Println("bob added his own photo to the shared album")

	// It is immediately searchable (dynamic index, no retraining needed).
	hits, err = aliceRepo.Search(ctx, &mie.Object{ID: "q2", Text: "snowboard"}, 1)
	if err != nil {
		return err
	}
	if len(hits) > 0 {
		fmt.Printf("alice immediately finds it: %s\n", hits[0].ObjectID)
	}
	return nil
}

// scenePhoto renders a deterministic procedural "photo" of a scene; photos
// of the same scene are visually similar, which is what content-based
// search keys on.
func scenePhoto(scene int64, salt string) *mie.Image {
	img, err := mie.NewImage(64, 64)
	if err != nil {
		panic(err) // impossible: fixed valid dimensions
	}
	base := rand.New(rand.NewSource(scene))
	var saltSeed int64
	for _, c := range salt {
		saltSeed = saltSeed*31 + int64(c)
	}
	noise := rand.New(rand.NewSource(saltSeed))
	// Scene-specific soft blocks plus per-shot noise.
	blocks := make([]float64, 16)
	for i := range blocks {
		blocks[i] = base.Float64()
	}
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := blocks[(y/16)*4+(x/16)]
			v = 0.8*v + 0.2*noise.Float64()
			img.Set(x, y, v)
		}
	}
	return img
}
