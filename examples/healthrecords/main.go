// Healthrecords: the Personal Health Records use case of paper §III-C.
//
//	go run ./examples/healthrecords
//
// Patients outsource PHRs (consultation notes + a medical scan) to a
// cloud-backed repository shared by a medical specialty's doctors. The
// repository key lets doctors *search* the encrypted records; each record's
// full content stays under the patient's own data key, which the patient
// releases per request — fine-grained access control on top of searchable
// encryption.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mie"
)

type patient struct {
	name    string
	dataKey mie.DataKey
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The cardiology alliance shares one repository key among its doctors.
	repoKey, err := mie.NewRepositoryKey()
	if err != nil {
		return err
	}
	doctor, err := mie.NewClient(mie.ClientConfig{Key: repoKey})
	if err != nil {
		return err
	}
	ctx := context.Background()
	repo, err := mie.Open(ctx, mie.Options{Client: doctor, RepoID: "cardiology-phr", Create: true})
	if err != nil {
		return err
	}
	defer repo.Close()

	// Each patient holds their own data key.
	patients := map[string]*patient{}
	newPatient := func(name string) (*patient, error) {
		dk, err := mie.NewDataKey()
		if err != nil {
			return nil, err
		}
		p := &patient{name: name, dataKey: dk}
		patients[name] = p
		return p, nil
	}

	records := []struct {
		patient string
		id      string
		notes   string
		scan    int64
	}{
		{"ana", "phr-ana-2016-03", "patient reports chest pain arrhythmia palpitations; ecg shows atrial fibrillation; prescribed anticoagulant", 1},
		{"bruno", "phr-bruno-2016-04", "routine checkup; mild hypertension; recommended exercise and diet; blood pressure monitoring", 2},
		{"carla", "phr-carla-2016-05", "post-operative follow-up after valve replacement; recovery normal; echocardiogram stable", 3},
		{"ana", "phr-ana-2016-06", "follow-up arrhythmia episode; adjusted medication dosage; holter monitor ordered", 1},
		{"diogo", "phr-diogo-2016-06", "chest pain under exertion; stress test positive; angiography scheduled; suspected coronary disease", 4},
	}
	for _, r := range records {
		p, ok := patients[r.patient]
		if !ok {
			if p, err = newPatient(r.patient); err != nil {
				return err
			}
		}
		obj := &mie.Object{
			ID:    r.id,
			Owner: r.patient,
			Text:  r.notes,
			Image: medicalScan(r.scan, r.id),
		}
		if err := repo.Add(ctx, obj, p.dataKey); err != nil {
			return fmt.Errorf("upload %s: %w", r.id, err)
		}
		fmt.Printf("uploaded %-20s (owner %s; encrypted under the patient's key)\n", r.id, r.patient)
	}
	if err := repo.Train(ctx); err != nil {
		return err
	}
	fmt.Println("cloud indexed the records (training over encodings only)")

	// A doctor researching arrhythmia treatments searches the shared
	// repository: the query reveals only deterministic tokens.
	hits, err := repo.Search(ctx, &mie.Object{ID: "q", Text: "arrhythmia palpitations medication"}, 3)
	if err != nil {
		return err
	}
	fmt.Println("\ndoctor's search for similar arrhythmia cases:")
	for i, h := range hits {
		fmt.Printf("  %d. %-20s score=%.4f patient=%s\n", i+1, h.ObjectID, h.Score, h.Owner)
	}
	if len(hits) == 0 {
		return fmt.Errorf("no results")
	}
	top := hits[0]

	// Without the patient's data key the record stays opaque.
	wrongKey, err := mie.NewDataKey()
	if err != nil {
		return err
	}
	if obj, err := mie.DecryptObject(top.Ciphertext, wrongKey); err == nil && obj.ID == top.ObjectID {
		return fmt.Errorf("record decrypted without the patient's key")
	}
	fmt.Printf("\nwithout %s's data key the record is unreadable ✓\n", top.Owner)

	// The metadata names the owner, so the doctor requests the key from the
	// patient (asynchronously, out of band) and reads the record.
	owner := patients[top.Owner]
	obj, err := mie.DecryptObject(top.Ciphertext, owner.dataKey)
	if err != nil {
		return err
	}
	fmt.Printf("after %s grants access:\n  %s: %q\n", owner.name, obj.ID, obj.Text)
	return nil
}

// medicalScan renders a synthetic grayscale scan; scans of the same patient
// condition (seed) look alike.
func medicalScan(condition int64, salt string) *mie.Image {
	img, err := mie.NewImage(64, 64)
	if err != nil {
		panic(err) // impossible: fixed valid dimensions
	}
	base := rand.New(rand.NewSource(condition * 77))
	var saltSeed int64
	for _, c := range salt {
		saltSeed = saltSeed*31 + int64(c)
	}
	noise := rand.New(rand.NewSource(saltSeed))
	cx, cy := 20+base.Float64()*24, 20+base.Float64()*24
	rx, ry := 6+base.Float64()*10, 6+base.Float64()*10
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			v := 0.2
			if dx*dx+dy*dy < 1 {
				v = 0.8
			}
			v += 0.1 * noise.Float64()
			img.Set(x, y, v)
		}
	}
	return img
}
