// Quickstart: the smallest end-to-end MIE session, fully in process.
//
//	go run ./examples/quickstart
//
// It creates a repository, uploads a handful of multimodal objects (tagged
// photos), outsources training to the (in-process) cloud, runs a multimodal
// search and decrypts the top hit.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mie"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	// 1. The repository creator generates rk_R and shares it with trusted
	//    users out of band.
	repoKey, err := mie.NewRepositoryKey()
	if err != nil {
		return err
	}
	client, err := mie.NewClient(mie.ClientConfig{Key: repoKey})
	if err != nil {
		return err
	}

	// 2. An in-process cloud service (set Options.Addr to talk to a real
	//    mie-server over TCP instead).
	repo, err := mie.Open(ctx, mie.Options{
		Client: client,
		RepoID: "vacation",
		Create: true,
	})
	if err != nil {
		return err
	}
	defer repo.Close()

	// 3. Upload multimodal objects, each under its own data key.
	dataKey, err := mie.NewDataKey()
	if err != nil {
		return err
	}
	albums := []struct {
		id, tags string
		seed     int64
	}{
		{"lisbon-beach", "beach sand ocean waves sunny portugal", 1},
		{"alps-hike", "mountain snow hiking trail peaks", 2},
		{"tokyo-night", "city skyline night lights neon", 3},
		{"algarve-surf", "beach surf waves ocean summer", 4},
		{"dolomites", "mountain climbing alpine summit", 5},
	}
	for _, a := range albums {
		obj := &mie.Object{
			ID:    a.id,
			Owner: "alice",
			Text:  a.tags,
			Image: syntheticPhoto(a.seed),
		}
		if err := repo.Add(ctx, obj, dataKey); err != nil {
			return fmt.Errorf("add %s: %w", a.id, err)
		}
		fmt.Printf("uploaded %-14s (encrypted; server sees only tokens and encodings)\n", a.id)
	}

	// 4. Training and indexing run on the server, over the encodings — the
	//    client pays nothing (the headline result of the paper).
	if err := repo.Train(ctx); err != nil {
		return err
	}
	fmt.Println("cloud trained the visual codebook and indexed everything")

	// 5. Query by example: a multimodal object with tags and a photo.
	query := &mie.Object{
		ID:    "query",
		Text:  "ocean beach waves",
		Image: syntheticPhoto(1),
	}
	hits, err := repo.Search(ctx, query, 3)
	if err != nil {
		return err
	}
	fmt.Println("\ntop results for 'ocean beach waves' + example photo:")
	for i, h := range hits {
		fmt.Printf("  %d. %-14s score=%.4f\n", i+1, h.ObjectID, h.Score)
	}

	// 6. Decrypt the best hit with its data key.
	if len(hits) > 0 {
		obj, err := mie.DecryptObject(hits[0].Ciphertext, dataKey)
		if err != nil {
			return err
		}
		fmt.Printf("\ndecrypted winner: id=%s tags=%q\n", obj.ID, obj.Text)
	}
	return nil
}

// syntheticPhoto stands in for a camera image: a seeded procedural texture.
func syntheticPhoto(seed int64) *mie.Image {
	img, err := mie.NewImage(64, 64)
	if err != nil {
		panic(err) // impossible: fixed valid dimensions
	}
	rng := rand.New(rand.NewSource(seed))
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := 0.5 + 0.4*rng.Float64()
			if (x/8+y/8)%2 == int(seed)%2 {
				v *= 0.6
			}
			img.Set(x, y, v)
		}
	}
	return img
}
