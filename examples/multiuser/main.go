// Multiuser: the Figure 4 scenario — several writers push objects into one
// shared repository concurrently over real TCP connections, with zero
// client-side coordination (MIE clients are stateless, so there is no
// counter dictionary to lock, unlike the SSE baselines).
//
//	go run ./examples/multiuser
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"mie"
)

const (
	writers       = 4
	docsPerWriter = 25
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	svc, _, err := mie.OpenService(mie.ServiceOptions{})
	if err != nil {
		return err
	}
	srv, err := mie.Serve("127.0.0.1:0", svc)
	if err != nil {
		return err
	}
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("server close: %v", err)
		}
	}()

	repoKey, err := mie.NewRepositoryKey()
	if err != nil {
		return err
	}
	dataKey, err := mie.NewDataKey()
	if err != nil {
		return err
	}

	// Bootstrap the repository once.
	boot, err := mie.NewClient(mie.ClientConfig{Key: repoKey})
	if err != nil {
		return err
	}
	bootRepo, err := mie.Open(ctx, mie.Options{Addr: srv.Addr(), Client: boot, RepoID: "team-docs", Create: true})
	if err != nil {
		return err
	}
	defer func() { _ = bootRepo.Close() }()

	topics := []string{
		"quarterly budget finance report numbers",
		"product roadmap design features launch",
		"incident postmortem outage database recovery",
		"hiring interview candidates engineering team",
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = runWriter(srv.Addr(), repoKey, dataKey, w, topics[w%len(topics)])
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return fmt.Errorf("writer %d: %w", w, err)
		}
	}
	fmt.Printf("%d writers uploaded %d objects concurrently in %v\n",
		writers, writers*docsPerWriter, time.Since(start).Round(time.Millisecond))

	// Any user can search everything, immediately.
	hits, err := bootRepo.Search(ctx, &mie.Object{ID: "q", Text: "incident outage recovery"}, 5)
	if err != nil {
		return err
	}
	fmt.Println("\nsearch for 'incident outage recovery':")
	for i, h := range hits {
		fmt.Printf("  %d. %-22s score=%.4f owner=%s\n", i+1, h.ObjectID, h.Score, h.Owner)
	}
	total := 0
	for _, t := range topics {
		hs, err := bootRepo.Search(ctx, &mie.Object{ID: "q", Text: t}, writers*docsPerWriter)
		if err != nil {
			return err
		}
		total += len(hs)
	}
	fmt.Printf("\nobjects reachable through topic queries: %d\n", total)
	return nil
}

func runWriter(addr string, repoKey mie.RepositoryKey, dataKey mie.DataKey, id int, topic string) error {
	ctx := context.Background()
	// Each writer is an independent device: own client, own connection.
	c, err := mie.NewClient(mie.ClientConfig{Key: repoKey})
	if err != nil {
		return err
	}
	repo, err := mie.Open(ctx, mie.Options{Addr: addr, Client: c, RepoID: "team-docs"})
	if err != nil {
		return err
	}
	defer func() { _ = repo.Close() }()
	rng := rand.New(rand.NewSource(int64(id)))
	words := []string{"meeting", "draft", "final", "review", "notes", "summary", "action", "plan"}
	for i := 0; i < docsPerWriter; i++ {
		obj := &mie.Object{
			ID:    fmt.Sprintf("writer%d-doc%02d", id, i),
			Owner: fmt.Sprintf("writer%d", id),
			Text:  fmt.Sprintf("%s %s %s", topic, words[rng.Intn(len(words))], words[rng.Intn(len(words))]),
		}
		if err := repo.Add(ctx, obj, dataKey); err != nil {
			return err
		}
	}
	return nil
}
