package experiments

import (
	"fmt"
	"time"

	"mie/internal/dataset"
	"mie/internal/device"
)

// UpdateRow is one bar group of Figures 2/3 (and the energy columns of
// Figure 6): the cost of initializing a repository and uploading N
// multimodal objects on one device with one scheme, broken into the paper's
// sub-operations.
type UpdateRow struct {
	Scheme string
	N      int

	Encrypt time.Duration
	Network time.Duration
	Index   time.Duration
	Train   time.Duration
	Total   time.Duration

	// EnergyAddMAh is the battery drain of the add-N phase (everything but
	// Train); EnergyTrainMAh isolates the training drain — the two bar
	// families of Figure 6. BatteryExceeded marks the Hom-MSSE shutdowns.
	EnergyAddMAh    float64
	EnergyTrainMAh  float64
	BatteryExceeded bool
}

// UpdateExperiment reproduces Figure 2 (mobile) or Figure 3 (desktop): for
// each scheme and corpus size, upload the corpus and (for the baselines)
// train, measuring per-category client cost on the given device profile.
func UpdateExperiment(profile device.Profile, cfg Config) ([]UpdateRow, error) {
	var rows []UpdateRow
	for _, scheme := range Schemes() {
		for _, n := range cfg.Sizes {
			row, err := runUpdate(scheme, profile, cfg, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s n=%d: %w", scheme, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runUpdate(scheme string, profile device.Profile, cfg Config, n int) (UpdateRow, error) {
	corpus := dataset.Flickr(dataset.FlickrParams{
		N:         n,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	meter := device.NewMeter(profile)
	repoID := fmt.Sprintf("upd-%s-%d", scheme, n)

	switch scheme {
	case SchemeMIE:
		stack, err := newMIE(cfg, meter, repoID)
		if err != nil {
			return UpdateRow{}, err
		}
		for _, obj := range corpus {
			if err := stack.add(obj); err != nil {
				return UpdateRow{}, err
			}
		}
		// Training runs in the cloud: zero client cost, the whole point of
		// the MIE design (the missing Train bar in Figures 2/3).
		if err := stack.repo.Train(); err != nil {
			return UpdateRow{}, err
		}

	case SchemeMSSE:
		stack, err := newMSSE(cfg, meter, repoID)
		if err != nil {
			return UpdateRow{}, err
		}
		for _, obj := range corpus {
			if err := stack.client.Update(stack.server, stack.repoID, toMSSEDoc(obj), dataKey()); err != nil {
				return UpdateRow{}, err
			}
		}
		if err := stack.client.Train(stack.server, stack.repoID); err != nil {
			return UpdateRow{}, err
		}

	case SchemeHomMSSE:
		stack, err := newHomMSSE(cfg, meter, repoID)
		if err != nil {
			return UpdateRow{}, err
		}
		for _, obj := range corpus {
			if err := stack.client.Update(stack.server, stack.repoID, toHomDoc(obj), dataKey()); err != nil {
				return UpdateRow{}, err
			}
		}
		if err := stack.client.Train(stack.server, stack.repoID); err != nil {
			return UpdateRow{}, err
		}

	default:
		return UpdateRow{}, fmt.Errorf("unknown scheme %q", scheme)
	}

	row := UpdateRow{
		Scheme:  scheme,
		N:       n,
		Encrypt: meter.Time(device.Encrypt),
		Network: meter.Time(device.Network),
		Index:   meter.Time(device.Index),
		Train:   meter.Time(device.Train),
		Total:   meter.Total(),
	}
	row.EnergyTrainMAh = meter.CategoryEnergyMAh(device.Train)
	row.EnergyAddMAh = meter.EnergyMAh() - row.EnergyTrainMAh
	row.BatteryExceeded = meter.ExceedsBattery()
	return row, nil
}
