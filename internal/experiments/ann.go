package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"mie/internal/ann"
	"mie/internal/core"
	"mie/internal/dataset"
	"mie/internal/vec"
)

// ANNSweepRow is one (tables, bits, probes) point of the recall-vs-speedup
// sweep: the multi-probe LSH candidate path versus the exact linear popcount
// scan over the same corpus and queries.
type ANNSweepRow struct {
	Tables int `json:"tables"`
	Bits   int `json:"bits"`
	Probes int `json:"probes"`
	// Recall10 is |ANN top-10 ∩ exact top-10| / 10, averaged over queries.
	Recall10 float64 `json:"recall_at_10"`
	// CandidateFraction is the mean fraction of the corpus the probe
	// sequence surfaced for exact re-ranking — the sublinearity measure.
	CandidateFraction float64 `json:"candidate_fraction"`
	ExactUsPerQuery   float64 `json:"exact_us_per_query"`
	ANNUsPerQuery     float64 `json:"ann_us_per_query"`
	// Speedup is ExactUsPerQuery / ANNUsPerQuery.
	Speedup float64 `json:"speedup"`
	// BuildMs is the one-time cost of hashing the corpus into the tables.
	BuildMs float64 `json:"build_ms"`
}

// ANNReport is the BENCH_ann.json document: the standalone candidate-index
// sweep on a clustered synthetic corpus, plus an end-to-end check that
// routing the fused retrieval pipeline through the ANN path costs almost no
// precision on the Holidays benchmark.
type ANNReport struct {
	// Corpus/Queries/CodeBits shape the synthetic sweep workload.
	Corpus   int `json:"corpus"`
	Queries  int `json:"queries"`
	CodeBits int `json:"code_bits"`
	// Sweep holds every (tables, bits, probes) point measured.
	Sweep []ANNSweepRow `json:"sweep"`
	// Best is the fastest row that still reaches recall@10 >= 0.9 (or, if
	// none does, the highest-recall row).
	Best ANNSweepRow `json:"best"`
	// FusedCorpus is the Holidays object count of the pipeline comparison;
	// FusedTables/FusedBits/FusedProbes are the recall-biased parameters it
	// ran with (real near-duplicate encodings carry more bit noise than the
	// synthetic sweep corpus, so the pipeline probes wider than Best).
	FusedCorpus int `json:"fused_corpus"`
	FusedTables int `json:"fused_tables"`
	FusedBits   int `json:"fused_bits"`
	FusedProbes int `json:"fused_probes"`
	// MAPExact/MAPANN score the same Holidays queries through two untrained
	// repositories differing only in dense-search routing: exact linear
	// scan versus the candidate index.
	MAPExact float64 `json:"map_exact"`
	MAPANN   float64 `json:"map_ann"`
	MAPDelta float64 `json:"map_delta"`
	// FusedExactMs/FusedANNMs are mean per-query search latencies of the
	// two pipelines (informational: the fused corpus is small at default
	// scale, so the asymptotic win shows in the sweep, not here).
	FusedExactMs float64 `json:"fused_exact_ms"`
	FusedANNMs   float64 `json:"fused_ann_ms"`
}

// annSweepGrid is the (tables, bits, probes) lattice of the sweep: enough
// spread to show the recall/speed trade (few wide tables vs many narrow
// ones, single-bucket vs multi-probe) without hours of runtime.
var annSweepGrid = []struct{ tables, bits, probes int }{
	{4, 12, 1},
	{4, 12, 8},
	{8, 12, 1},
	{8, 12, 8},
	{8, 16, 1},
	{8, 16, 8},
	{8, 16, 16},
	{16, 16, 1},
	{16, 16, 16},
}

const (
	annCodeBits    = 256
	annClusterSize = 16
	annFlipBits    = 10 // ~4% of annCodeBits: realistic near-duplicate noise
	annTopK        = 10
)

// ANNExperiment measures the tentpole claim of the multi-probe LSH path:
// candidate generation plus batched popcount re-ranking answers dense
// nearest-neighbor queries several times faster than the exact linear scan
// while keeping recall@10 at or above 0.9.
//
// The sweep corpus is synthetic but adversarially shaped for recall
// accounting: codes come in clusters of 16 around random centers with ~4%
// bit noise, and each query perturbs a member, so its exact top-10 lies
// inside one cluster and any candidate miss is visible. The fused-pipeline
// half then replays the Holidays benchmark through two real repositories —
// one exact, one ANN-routed — and reports the mAP delta.
func ANNExperiment(cfg Config) (*ANNReport, error) {
	n := cfg.ANNCorpus
	if n < 2*annClusterSize {
		return nil, fmt.Errorf("experiments: ANN corpus %d too small (need >= %d)", n, 2*annClusterSize)
	}
	nq := cfg.ANNQueries
	if nq < 1 {
		return nil, fmt.Errorf("experiments: ANN query count %d too small", nq)
	}
	report := &ANNReport{Corpus: n, Queries: nq, CodeBits: annCodeBits}

	codes, queries := annSyntheticCorpus(n, nq, cfg.Seed)

	// Exact baseline: full popcount scan, top-10 by (distance, slot).
	exact := make([][]int, nq)
	t0 := time.Now()
	for i, q := range queries {
		exact[i] = annExactTopK(q, codes, annTopK)
	}
	exactUs := us(time.Since(t0)) / float64(nq)

	for _, p := range annSweepGrid {
		row, err := annSweepPoint(cfg, codes, queries, exact, p.tables, p.bits, p.probes)
		if err != nil {
			return nil, err
		}
		row.ExactUsPerQuery = exactUs
		if row.ANNUsPerQuery > 0 {
			row.Speedup = exactUs / row.ANNUsPerQuery
		}
		report.Sweep = append(report.Sweep, row)
	}
	report.Best = annBestRow(report.Sweep)

	if err := annFusedComparison(cfg, report); err != nil {
		return nil, err
	}
	return report, nil
}

// annSyntheticCorpus builds the clustered code set and its query batch. All
// randomness flows from seed, so the sweep is reproducible run to run.
func annSyntheticCorpus(n, nq int, seed int64) (codes, queries []vec.BitVec) {
	r := rand.New(rand.NewSource(seed))
	clusters := n / annClusterSize
	centers := make([]vec.BitVec, clusters)
	for c := range centers {
		centers[c] = annRandomCode(r)
	}
	codes = make([]vec.BitVec, 0, n)
	for len(codes) < n {
		codes = append(codes, annPerturb(r, centers[len(codes)/annClusterSize%clusters]))
	}
	queries = make([]vec.BitVec, nq)
	for i := range queries {
		// Spread queries across clusters; each perturbs a live member, so
		// its nearest neighbors are that member's cluster.
		member := codes[(i*clusters%clusters)*annClusterSize+i%annClusterSize]
		queries[i] = annPerturb(r, member)
	}
	return codes, queries
}

func annRandomCode(r *rand.Rand) vec.BitVec {
	code := vec.NewBitVec(annCodeBits)
	for i := 0; i < annCodeBits; i++ {
		if r.Intn(2) == 1 {
			code.Set(i, true)
		}
	}
	return code
}

func annPerturb(r *rand.Rand, base vec.BitVec) vec.BitVec {
	code := vec.NewBitVec(annCodeBits)
	for i := 0; i < annCodeBits; i++ {
		code.Set(i, base.Get(i))
	}
	for f := 0; f < annFlipBits; f++ {
		i := r.Intn(annCodeBits)
		code.Set(i, !code.Get(i))
	}
	return code
}

// annExactTopK is the oracle: scan every code, keep the k nearest by
// (distance asc, slot asc) — the same tie order the candidate path uses.
func annExactTopK(q vec.BitVec, codes []vec.BitVec, k int) []int {
	type hit struct{ dist, slot int }
	top := make([]hit, 0, k+1)
	for slot, c := range codes {
		d := vec.Hamming(q, c)
		if len(top) == k && (d > top[k-1].dist || (d == top[k-1].dist && slot > top[k-1].slot)) {
			continue
		}
		top = append(top, hit{d, slot})
		for i := len(top) - 1; i > 0 && (top[i].dist < top[i-1].dist || (top[i].dist == top[i-1].dist && top[i].slot < top[i-1].slot)); i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
		if len(top) > k {
			top = top[:k]
		}
	}
	out := make([]int, len(top))
	for i, h := range top {
		out[i] = h.slot
	}
	return out
}

// annSweepPoint builds one candidate index and measures it against the
// exact oracle rankings.
func annSweepPoint(cfg Config, codes, queries []vec.BitVec, exact [][]int, tables, bits, probes int) (ANNSweepRow, error) {
	row := ANNSweepRow{Tables: tables, Bits: bits, Probes: probes}
	ix := ann.New(ann.Options{Tables: tables, Bits: bits, Probes: probes, Seed: cfg.Seed})
	t0 := time.Now()
	for slot, c := range codes {
		if err := ix.AddAll(strconv.Itoa(slot), []vec.BitVec{c}); err != nil {
			return row, fmt.Errorf("ann build (L=%d K=%d): %w", tables, bits, err)
		}
	}
	row.BuildMs = ms(time.Since(t0))

	var hits, candidates int
	t0 = time.Now()
	for i, q := range queries {
		cands, stats := ix.Probe(q)
		candidates += stats.Candidates
		got := annRerankTopK(cands, annTopK)
		want := make(map[int]bool, len(exact[i]))
		for _, slot := range exact[i] {
			want[slot] = true
		}
		for _, slot := range got {
			if want[slot] {
				hits++
			}
		}
	}
	row.ANNUsPerQuery = us(time.Since(t0)) / float64(len(queries))
	row.Recall10 = float64(hits) / float64(len(queries)*annTopK)
	row.CandidateFraction = float64(candidates) / float64(len(queries)*len(codes))
	return row, nil
}

// annRerankTopK selects the k nearest candidates by (distance asc, slot
// asc); Probe already computed every exact distance during the batched
// popcount pass.
func annRerankTopK(cands []ann.Candidate, k int) []int {
	sorted := append([]ann.Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dist != sorted[j].Dist {
			return sorted[i].Dist < sorted[j].Dist
		}
		return sorted[i].Slot < sorted[j].Slot
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	out := make([]int, len(sorted))
	for i, c := range sorted {
		out[i] = c.Slot
	}
	return out
}

// annBestRow picks the operating point the report headlines: fastest among
// rows meeting the 0.9 recall floor, else the highest-recall row.
func annBestRow(sweep []ANNSweepRow) ANNSweepRow {
	best := sweep[0]
	qualified := false
	for _, row := range sweep {
		if row.Recall10 >= 0.9 {
			if !qualified || row.Speedup > best.Speedup {
				best, qualified = row, true
			}
		} else if !qualified && row.Recall10 > best.Recall10 {
			best = row
		}
	}
	return best
}

// Fused-pipeline LSH parameters. Dense encodings of genuinely similar
// photos disagree on far more bits than the sweep's synthetic 4% noise, so
// the pipeline comparison runs a recall-biased point: shorter keys and a
// wide probe budget. Still sublinear — 32 of 4096 buckets per table.
const (
	annFusedTables = 8
	annFusedBits   = 12
	annFusedProbes = 32
)

// annFusedComparison replays the Holidays benchmark through two untrained
// repositories — exact dense scans versus ANN-routed ones — and records the
// mAP delta. Untrained is the regime where the dense engines answer by
// linear scan, i.e. exactly the path the candidate index replaces.
func annFusedComparison(cfg Config, report *ANNReport) error {
	set := dataset.Holidays(dataset.HolidaysParams{
		Groups:    cfg.HolidayGroups,
		PerGroup:  cfg.HolidayPerGroup,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	annStack, err := newMIERepo(cfg, nil, "ann-fused", core.RepositoryOptions{
		Vocab: cfg.vocab(),
		ANN: core.ANNOptions{
			Tables:    annFusedTables,
			Bits:      annFusedBits,
			Probes:    annFusedProbes,
			MinCorpus: 1,
			Seed:      cfg.Seed,
		},
	})
	if err != nil {
		return err
	}
	exactStack, err := newMIERepo(cfg, nil, "ann-exact", core.RepositoryOptions{
		Vocab: cfg.vocab(),
		ANN:   core.ANNOptions{Disable: true},
	})
	if err != nil {
		return err
	}
	for _, s := range []*mieStack{annStack, exactStack} {
		for _, obj := range set.Objects {
			if err := s.add(obj); err != nil {
				return err
			}
		}
	}
	report.FusedCorpus = annStack.repo.Size()
	report.FusedTables = annFusedTables
	report.FusedBits = annFusedBits
	report.FusedProbes = annFusedProbes
	truths := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		truths[i] = q.Relevant
	}
	k := report.FusedCorpus
	t0 := time.Now()
	if report.MAPANN, err = holidaysMAP(annStack, set, truths, k); err != nil {
		return err
	}
	report.FusedANNMs = ms(time.Since(t0)) / float64(len(set.Queries))
	t0 = time.Now()
	if report.MAPExact, err = holidaysMAP(exactStack, set, truths, k); err != nil {
		return err
	}
	report.FusedExactMs = ms(time.Since(t0)) / float64(len(set.Queries))
	report.MAPDelta = report.MAPANN - report.MAPExact
	if report.MAPDelta < 0 {
		report.MAPDelta = -report.MAPDelta
	}
	return nil
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteANNReport renders the report for stdout. The "ann: best ..." summary
// line is parsed by the check.sh ANN smoke; keep its shape stable.
func WriteANNReport(w io.Writer, r *ANNReport) {
	fmt.Fprintf(w, "Approximate dense search: multi-probe LSH vs exact popcount scan (%d codes x %d bits, %d queries)\n",
		r.Corpus, r.CodeBits, r.Queries)
	fmt.Fprintf(w, "  %-7s %-5s %-7s %-11s %-11s %-11s %-9s %-9s\n",
		"tables", "bits", "probes", "recall@10", "cand-frac", "exact(us)", "ann(us)", "speedup")
	for _, row := range r.Sweep {
		fmt.Fprintf(w, "  %-7d %-5d %-7d %-11.3f %-11.4f %-11.1f %-9.1f %-9s\n",
			row.Tables, row.Bits, row.Probes, row.Recall10, row.CandidateFraction,
			row.ExactUsPerQuery, row.ANNUsPerQuery, fmt.Sprintf("%.1fx", row.Speedup))
	}
	fmt.Fprintf(w, "  fused pipeline (Holidays, %d objects, untrained, L=%d K=%d probes=%d): mAP exact %.4f, ANN %.4f (delta %.4f); %.2f ms vs %.2f ms per query\n",
		r.FusedCorpus, r.FusedTables, r.FusedBits, r.FusedProbes,
		r.MAPExact, r.MAPANN, r.MAPDelta, r.FusedExactMs, r.FusedANNMs)
	fmt.Fprintf(w, "ann: best recall@10 %.3f at %.1fx speedup (L=%d K=%d probes=%d); fused mAP delta %.4f\n",
		r.Best.Recall10, r.Best.Speedup, r.Best.Tables, r.Best.Bits, r.Best.Probes, r.MAPDelta)
}
