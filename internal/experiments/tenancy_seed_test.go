package experiments

import (
	"strings"
	"testing"
)

// TestTenancySeedThreaded: the tenancy report must pin the dataset seed it
// was generated from — both in the JSON document and in the summary line
// scripts/check.sh parses — so a published BENCH_tenancy.json names its
// exact workload.
func TestTenancySeedThreaded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a (small) tenancy experiment")
	}
	cfg := Quick()
	cfg.TenancyRepos = 24
	cfg.Seed = 42

	report, err := TenancyExperiment(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if report.Seed != cfg.Seed {
		t.Fatalf("report seed %d, want the configured %d", report.Seed, cfg.Seed)
	}
	var sb strings.Builder
	WriteTenancyReport(&sb, report)
	if !strings.Contains(sb.String(), "tenancy: seed=42 ") {
		t.Fatalf("summary line does not carry the seed:\n%s", sb.String())
	}
}
