package experiments

import (
	"fmt"
	"math/rand"

	"mie/internal/dpe"
	"mie/internal/vec"
)

// Table2Row is one row of Table II: the encoded distance a DPE scheme
// reports for pairs of feature vectors at controlled plaintext distances —
// dp ∈ {0, 0.3, 0.7, 1.0} — plus the distance between an encoding and its
// own (binarized) plaintext, which demonstrates that encodings look
// unrelated to the vectors that produced them.
type Table2Row struct {
	Scheme    string
	Threshold float64
	// PFV is the encoding-vs-plaintext distance (≈0.5 for Dense-DPE: an
	// encoding carries no visible trace of its plaintext).
	PFV float64
	// D0, D03, D07, D10 are encoded distances at plaintext distance
	// 0, 0.3, 0.7 and 1.0 respectively.
	D0, D03, D07, D10 float64
}

// Table2 reproduces Table II. Values are averaged over trials; the expected
// shape is D0 = 0, D03 ≈ 0.3 (preserved, below threshold), and D07/D10
// pinned near the saturation plateau (hidden, above threshold).
func Table2(seed int64) ([]Table2Row, error) {
	const (
		dim    = 64
		out    = 2048
		trials = 50
	)
	var master [32]byte
	master[0] = byte(seed)
	dense, err := dpe.NewDense(master, dpe.DenseParams{InDim: dim, OutDim: out, Threshold: 0.5})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	avgAt := func(dp float64) (float64, error) {
		var sum float64
		for i := 0; i < trials; i++ {
			p1, p2 := vectorPair(rng, dim, dp)
			e1, err := dense.Encode(p1)
			if err != nil {
				return 0, err
			}
			e2, err := dense.Encode(p2)
			if err != nil {
				return 0, err
			}
			// Table II reports raw normalized Hamming distances.
			d, err := dense.RawNormHamming(e1, e2)
			if err != nil {
				return 0, err
			}
			sum += d
		}
		return sum / trials, nil
	}

	denseRow := Table2Row{Scheme: "Dense-DPE", Threshold: 0.5}
	if denseRow.D0, err = avgAt(0); err != nil {
		return nil, err
	}
	if denseRow.D03, err = avgAt(0.3); err != nil {
		return nil, err
	}
	if denseRow.D07, err = avgAt(0.7); err != nil {
		return nil, err
	}
	if denseRow.D10, err = avgAt(1.0); err != nil {
		return nil, err
	}
	// Encoding vs binarized plaintext: quantize the plaintext's components
	// to bits and compare with the encoding — the "P-FV" column.
	var pfvSum float64
	for i := 0; i < trials; i++ {
		p, _ := vectorPair(rng, dim, 0)
		e, err := dense.Encode(p)
		if err != nil {
			return nil, err
		}
		pb := vec.NewBitVec(out)
		for j := 0; j < out; j++ {
			pb.Set(j, p[j%dim] > 0)
		}
		pfvSum += vec.NormHamming(e, pb)
	}
	denseRow.PFV = pfvSum / trials

	sparse := dpe.NewSparse(master)
	w := "keyword"
	sparseRow := Table2Row{
		Scheme:    "Sparse-DPE",
		Threshold: 0,
		PFV:       1, // a token never equals its keyword
		D0:        sparse.Distance(sparse.Encode(w), sparse.Encode(w)),
		D03:       sparse.Distance(sparse.Encode(w), sparse.Encode(w+"x")),
		D07:       sparse.Distance(sparse.Encode(w), sparse.Encode("other")),
		D10:       sparse.Distance(sparse.Encode(w), sparse.Encode("unrelated")),
	}
	return []Table2Row{denseRow, sparseRow}, nil
}

// vectorPair returns two vectors at exactly Euclidean distance d, inside
// the unit-diameter ball Dense-DPE expects.
func vectorPair(rng *rand.Rand, dim int, d float64) (p1, p2 []float64) {
	p1 = make([]float64, dim)
	dir := make([]float64, dim)
	for i := range p1 {
		p1[i] = rng.NormFloat64()
		dir[i] = rng.NormFloat64()
	}
	vec.Normalize(p1)
	vec.Scale(p1, 0.5)
	vec.Normalize(dir)
	p2 = vec.Clone(p1)
	for i := range p2 {
		p2[i] += dir[i] * d
	}
	return p1, p2
}

// String renders a row as the paper prints it.
func (r Table2Row) String() string {
	return fmt.Sprintf("%-11s (t=%.1f)  P-FV=%.4f  dp=0: %.4f  dp=0.3: %.4f  dp=0.7: %.4f  dp=1.0: %.4f",
		r.Scheme, r.Threshold, r.PFV, r.D0, r.D03, r.D07, r.D10)
}
