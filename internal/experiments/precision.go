package experiments

import (
	"fmt"
	"strconv"

	"mie/internal/cluster"
	"mie/internal/dataset"
	"mie/internal/eval"
	"mie/internal/imaging"
	"mie/internal/index"
)

// PrecisionRow is one column of Table III: the mean average precision a
// retrieval system achieves on the Holidays-style benchmark.
type PrecisionRow struct {
	System string
	MAP    float64
}

// PrecisionExperiment reproduces Table III: retrieval precision of
// plaintext BOVW retrieval vs the three encrypted schemes on the same
// image-only near-duplicate benchmark. The paper's finding — encryption
// does not meaningfully hurt precision — shows up as all four numbers
// being within a point or two of each other.
func PrecisionExperiment(cfg Config) ([]PrecisionRow, error) {
	set := dataset.Holidays(dataset.HolidaysParams{
		Groups:    cfg.HolidayGroups,
		PerGroup:  cfg.HolidayPerGroup,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	k := len(set.Objects)
	truths := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		truths[i] = q.Relevant
	}

	var rows []PrecisionRow

	// Plaintext reference: Euclidean BOVW over raw descriptors.
	plainRanks, err := plaintextRankings(cfg, set, k)
	if err != nil {
		return nil, fmt.Errorf("experiments: plaintext precision: %w", err)
	}
	m, err := eval.MeanAveragePrecision(plainRanks, truths)
	if err != nil {
		return nil, err
	}
	rows = append(rows, PrecisionRow{System: SchemePlain, MAP: m})

	// MSSE.
	msseStack, err := newMSSE(cfg, nil, "prec-msse")
	if err != nil {
		return nil, err
	}
	for _, obj := range set.Objects {
		if err := msseStack.client.Update(msseStack.server, msseStack.repoID, toMSSEDoc(obj), dataKey()); err != nil {
			return nil, err
		}
	}
	if err := msseStack.client.Train(msseStack.server, msseStack.repoID); err != nil {
		return nil, err
	}
	msseRanks := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		hits, err := msseStack.client.Search(msseStack.server, msseStack.repoID, toMSSEDoc(q.Query), k)
		if err != nil {
			return nil, err
		}
		ids := make([]string, len(hits))
		for j, h := range hits {
			ids[j] = h.Doc
		}
		msseRanks[i] = ids
	}
	if m, err = eval.MeanAveragePrecision(msseRanks, truths); err != nil {
		return nil, err
	}
	rows = append(rows, PrecisionRow{System: SchemeMSSE, MAP: m})

	// Hom-MSSE.
	homStack, err := newHomMSSE(cfg, nil, "prec-hom")
	if err != nil {
		return nil, err
	}
	for _, obj := range set.Objects {
		if err := homStack.client.Update(homStack.server, homStack.repoID, toHomDoc(obj), dataKey()); err != nil {
			return nil, err
		}
	}
	if err := homStack.client.Train(homStack.server, homStack.repoID); err != nil {
		return nil, err
	}
	homRanks := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		hits, err := homStack.client.Search(homStack.server, homStack.repoID, toHomDoc(q.Query), k)
		if err != nil {
			return nil, err
		}
		ids := make([]string, len(hits))
		for j, h := range hits {
			ids[j] = h.Doc
		}
		homRanks[i] = ids
	}
	if m, err = eval.MeanAveragePrecision(homRanks, truths); err != nil {
		return nil, err
	}
	rows = append(rows, PrecisionRow{System: SchemeHomMSSE, MAP: m})

	// MIE.
	mieStack, err := newMIE(cfg, nil, "prec-mie")
	if err != nil {
		return nil, err
	}
	for _, obj := range set.Objects {
		if err := mieStack.add(obj); err != nil {
			return nil, err
		}
	}
	if err := mieStack.repo.Train(); err != nil {
		return nil, err
	}
	mieRanks := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		query, err := mieStack.client.PrepareQuery(q.Query, k)
		if err != nil {
			return nil, err
		}
		hits, err := mieStack.repo.Search(query)
		if err != nil {
			return nil, err
		}
		ids := make([]string, len(hits))
		for j, h := range hits {
			ids[j] = h.ObjectID
		}
		mieRanks[i] = ids
	}
	if m, err = eval.MeanAveragePrecision(mieRanks, truths); err != nil {
		return nil, err
	}
	rows = append(rows, PrecisionRow{System: SchemeMIE, MAP: m})

	return rows, nil
}

// plaintextRankings implements the unencrypted reference system: Euclidean
// vocabulary tree over raw descriptors, TF-IDF inverted index.
func plaintextRankings(cfg Config, set *dataset.HolidaysSet, k int) ([][]string, error) {
	pyr := cfg.pyramid()
	descs := make(map[string][][]float64, len(set.Objects))
	var sample [][]float64
	for _, obj := range set.Objects { // corpus order is already deterministic
		d := imaging.Extract(obj.Image, pyr)
		descs[obj.ID] = d
		sample = append(sample, d...)
	}
	euclid := func(ps [][]float64, kk int, seed int64) ([][]float64, []int, error) {
		res, err := cluster.KMeans(ps, kk, cluster.Options{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return res.Centroids, res.Assignments, nil
	}
	dist := func(a, b []float64) float64 {
		var sum float64
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return sum
	}
	tree, err := cluster.TrainVocabulary(sample, cfg.vocab(), euclid, dist)
	if err != nil {
		return nil, err
	}
	ix, err := index.New(index.Options{})
	if err != nil {
		return nil, err
	}
	for id, d := range descs {
		hist := tree.QuantizeAll(d)
		terms := make(map[index.Term]uint64, len(hist))
		for w, f := range hist {
			terms[index.Term("vw:"+strconv.Itoa(w))] = f
		}
		if err := ix.Add(index.DocID(id), terms); err != nil {
			return nil, err
		}
	}
	ranks := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		hist := tree.QuantizeAll(imaging.Extract(q.Query.Image, pyr))
		terms := make(map[index.Term]uint64, len(hist))
		for w, f := range hist {
			terms[index.Term("vw:"+strconv.Itoa(w))] = f
		}
		res := ix.Search(terms, k)
		ids := make([]string, len(res))
		for j, r := range res {
			ids[j] = string(r.Doc)
		}
		ranks[i] = ids
	}
	return ranks, nil
}
