package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/dataset"
	"mie/internal/device"
	"mie/internal/dpe"
	"mie/internal/imaging"
	"mie/internal/server"
	"mie/internal/wire"
)

// MultiUserRow is one client's bar of Figure 4: per-category cost when two
// clients — one mobile, one desktop — concurrently upload MultiUserSize
// objects each into one shared MIE repository over real TCP connections.
type MultiUserRow struct {
	Device  string
	N       int
	Encrypt time.Duration
	Network time.Duration
	Index   time.Duration
	Total   time.Duration
}

// MultiUserExperiment reproduces Figure 4. Only MIE runs it: the baselines
// would serialize on shared counter state (MSSE) or need key distribution
// round trips (both), which is exactly the point the figure makes.
func MultiUserExperiment(cfg Config) ([]MultiUserRow, error) {
	svc, _, err := core.OpenService(core.ServiceOptions{})
	if err != nil {
		return nil, err
	}
	srv, err := server.New("127.0.0.1:0", svc, nil)
	if err != nil {
		return nil, err
	}
	defer func() { _ = srv.Close() }() // experiment result does not depend on teardown

	// Shared repository, created once.
	bootstrap, err := client.Dial(srv.Addr(), nil)
	if err != nil {
		return nil, err
	}
	if err := bootstrap.CreateRepository(context.Background(), "fig4", wireOpts(cfg)); err != nil {
		return nil, err
	}
	if err := bootstrap.Close(); err != nil {
		return nil, err
	}

	profiles := []device.Profile{device.Mobile, device.Desktop}
	rows := make([]MultiUserRow, len(profiles))
	errs := make([]error, len(profiles))
	var wg sync.WaitGroup
	for i, p := range profiles {
		wg.Add(1)
		go func(i int, p device.Profile) {
			defer wg.Done()
			rows[i], errs[i] = runMultiUserClient(cfg, srv.Addr(), p, i)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func runMultiUserClient(cfg Config, addr string, p device.Profile, id int) (MultiUserRow, error) {
	meter := device.NewMeter(p)
	cc, err := core.NewClient(core.ClientConfig{
		Key:     core.RepositoryKey{Master: masterKey(1)},
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 512, Threshold: 0.5},
		Pyramid: cfg.pyramid(),
		Meter:   meter,
	})
	if err != nil {
		return MultiUserRow{}, err
	}
	conn, err := client.Dial(addr, meter)
	if err != nil {
		return MultiUserRow{}, err
	}
	defer func() { _ = conn.Close() }() // measurement already captured

	corpus := dataset.Flickr(dataset.FlickrParams{
		N:         cfg.MultiUserSize,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed + int64(id)*7919,
		Owner:     p.Name,
	})
	for _, obj := range corpus {
		obj.ID = fmt.Sprintf("%s-%s", p.Name, obj.ID)
		up, err := cc.PrepareUpdate(obj, dataKey())
		if err != nil {
			return MultiUserRow{}, err
		}
		if err := conn.Update(context.Background(), "fig4", up); err != nil {
			return MultiUserRow{}, err
		}
	}
	return MultiUserRow{
		Device:  p.Name,
		N:       cfg.MultiUserSize,
		Encrypt: meter.Time(device.Encrypt),
		Network: meter.Time(device.Network),
		Index:   meter.Time(device.Index),
		Total:   meter.Total(),
	}, nil
}

func wireOpts(cfg Config) wire.RepoOptions {
	return wire.RepoOptions{
		VocabWords:   cfg.Words,
		VocabMaxIter: cfg.TrainIters,
		TreeBranch:   cfg.TreeBranch,
		TreeHeight:   cfg.TreeHeight,
		TreeSeed:     cfg.Seed,
	}
}
