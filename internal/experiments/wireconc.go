package experiments

// Wire-transport concurrency comparison: the same search workload pushed
// through the three client transports — the v1 lockstep protocol on one
// shared connection, the v2 pipelined mux on one shared connection, and
// one v2 connection per client — over real TCP with the paper's WAN link
// simulated in between. It quantifies the claim behind wire protocol v2:
// a single multiplexed connection should match connection-per-client
// throughput and beat lockstep by at least the in-flight factor once the
// link has latency to hide.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/dataset"
	"mie/internal/dpe"
	"mie/internal/imaging"
	"mie/internal/server"
)

// Wire transport modes, the values of WireLevel.Mode.
const (
	ModeLockstep      = "v1-lockstep-single-conn"
	ModeMux           = "v2-mux-single-conn"
	ModeConnPerClient = "v2-conn-per-client"
)

// WireLevel is one (transport, clients) cell of the comparison.
type WireLevel struct {
	Mode          string  `json:"mode"`
	Clients       int     `json:"clients"`
	Searches      int     `json:"searches"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// WireReport is the wire section of BENCH_concurrency.json.
type WireReport struct {
	// SimulatedRTTMs is the round-trip time the latency relay injects
	// between client and server, standing in for the paper's client<->EC2
	// link (§VII reports 52.16 ms; the bench default is smaller to keep
	// the lockstep rows affordable).
	SimulatedRTTMs float64     `json:"simulated_rtt_ms"`
	Levels         []WireLevel `json:"levels"`
	// MuxOverLockstep is the v2-mux / v1-lockstep throughput ratio at the
	// highest client level — the headline number for the protocol change.
	MuxOverLockstep float64 `json:"mux_over_lockstep"`
}

// wireRTT is the simulated round trip injected by the relay. Large enough
// that transport behavior (serialized vs pipelined round trips) dominates
// scheduling noise, small enough that the 16-client lockstep row stays
// cheap. The paper's measured RTT is 52.16 ms; ratios are what matter here.
const wireRTT = 6 * time.Millisecond

// WireConcurrencyExperiment builds one trained repository behind a real
// TCP server, then measures search throughput through a latency-injecting
// relay for each transport mode at each client level.
func WireConcurrencyExperiment(cfg Config, levels []int) (*WireReport, error) {
	const perClient = 25
	ctx := context.Background()

	svc, _, err := core.OpenService(core.ServiceOptions{})
	if err != nil {
		return nil, err
	}
	srv, err := server.New("127.0.0.1:0", svc, nil)
	if err != nil {
		return nil, err
	}
	defer func() { _ = srv.Close() }() // result does not depend on teardown

	cc, err := core.NewClient(core.ClientConfig{
		Key:     core.RepositoryKey{Master: masterKey(1)},
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 512, Threshold: 0.5},
		Pyramid: cfg.pyramid(),
	})
	if err != nil {
		return nil, err
	}

	// Setup (create, upload, train) goes straight to the server — only the
	// measured searches pay the simulated WAN.
	const repoID = "wireconc"
	bootstrap, err := client.Dial(srv.Addr(), nil)
	if err != nil {
		return nil, err
	}
	if err := bootstrap.CreateRepository(ctx, repoID, wireOpts(cfg)); err != nil {
		return nil, err
	}
	corpus := dataset.Flickr(dataset.FlickrParams{
		N:         cfg.SearchRepoSize,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	for _, obj := range corpus {
		up, err := cc.PrepareUpdate(obj, dataKey())
		if err != nil {
			return nil, err
		}
		if err := bootstrap.Update(ctx, repoID, up); err != nil {
			return nil, err
		}
	}
	if err := bootstrap.Train(ctx, repoID); err != nil {
		return nil, err
	}
	if err := bootstrap.Close(); err != nil {
		return nil, err
	}

	queryObjs := dataset.Flickr(dataset.FlickrParams{
		N:         8,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed + 999,
	})
	queries := make([]*core.Query, len(queryObjs))
	for i, obj := range queryObjs {
		if queries[i], err = cc.PrepareQuery(obj, cfg.K); err != nil {
			return nil, err
		}
	}

	relay, err := newLatencyRelay(srv.Addr(), wireRTT/2)
	if err != nil {
		return nil, err
	}
	defer relay.Close()

	report := &WireReport{SimulatedRTTMs: ms(wireRTT)}
	for _, n := range levels {
		for _, mode := range []string{ModeLockstep, ModeMux, ModeConnPerClient} {
			lv, err := wireLevel(mode, relay.Addr(), repoID, queries, n, perClient)
			if err != nil {
				return nil, fmt.Errorf("%s @%d clients: %w", mode, n, err)
			}
			report.Levels = append(report.Levels, lv)
		}
	}
	if n := len(levels); n > 0 {
		top := levels[n-1]
		var lockstep, mux float64
		for _, lv := range report.Levels {
			if lv.Clients != top {
				continue
			}
			switch lv.Mode {
			case ModeLockstep:
				lockstep = lv.ThroughputQPS
			case ModeMux:
				mux = lv.ThroughputQPS
			}
		}
		if lockstep > 0 {
			report.MuxOverLockstep = mux / lockstep
		}
	}
	return report, nil
}

// wireLevel runs n clients, perClient searches each, through one transport
// mode. Lockstep and mux share a single connection; conn-per-client dials
// one per worker.
func wireLevel(mode, addr, repoID string, queries []*core.Query, n, perClient int) (WireLevel, error) {
	ctx := context.Background()
	var shared *client.Conn
	var err error
	switch mode {
	case ModeLockstep:
		shared, err = client.Dial(addr, nil, client.WithLockstep())
	case ModeMux:
		shared, err = client.Dial(addr, nil)
	}
	if err != nil {
		return WireLevel{}, err
	}
	if shared != nil {
		defer func() { _ = shared.Close() }()
	}

	conns := make([]*client.Conn, n)
	for c := range conns {
		if shared != nil {
			conns[c] = shared
			continue
		}
		if conns[c], err = client.Dial(addr, nil); err != nil {
			return WireLevel{}, err
		}
		defer func(c *client.Conn) { _ = c.Close() }(conns[c])
	}

	durations := make([][]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c+i)%len(queries)]
				t0 := time.Now()
				if _, err := conns[c].Search(ctx, repoID, q); err != nil {
					errs[c] = err
					return
				}
				durations[c] = append(durations[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return WireLevel{}, err
		}
	}
	var all []time.Duration
	for _, ds := range durations {
		all = append(all, ds...)
	}
	return WireLevel{
		Mode:          mode,
		Clients:       n,
		Searches:      len(all),
		ThroughputQPS: float64(len(all)) / wall.Seconds(),
		P50Ms:         percentileMs(all, 0.50),
		P95Ms:         percentileMs(all, 0.95),
		P99Ms:         percentileMs(all, 0.99),
	}, nil
}
