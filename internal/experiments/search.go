package experiments

import (
	"time"

	"mie/internal/core"
	"mie/internal/dataset"
	"mie/internal/device"
)

// SearchRow is one bar group of Figure 5: the end-to-end latency of one
// multimodal query on a trained repository of SearchRepoSize objects, per
// scheme and device.
type SearchRow struct {
	Scheme string
	Device string

	Encrypt time.Duration
	Network time.Duration
	Index   time.Duration
	Total   time.Duration
}

// SearchExperiment reproduces Figure 5. Each scheme's repository is built
// and trained once; the measured phase is the query alone, averaged over
// `queries` runs (the paper reports single-query latency).
func SearchExperiment(cfg Config) ([]SearchRow, error) {
	const queries = 5
	corpus := dataset.Flickr(dataset.FlickrParams{
		N:         cfg.SearchRepoSize,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	queryObj := dataset.Flickr(dataset.FlickrParams{
		N:         1,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed + 999,
	})[0]

	var rows []SearchRow
	profiles := []device.Profile{device.Desktop, device.Mobile}

	// MIE ----------------------------------------------------------------
	mieBuild, err := newMIE(cfg, nil, "srch-mie")
	if err != nil {
		return nil, err
	}
	for _, obj := range corpus {
		if err := mieBuild.add(obj); err != nil {
			return nil, err
		}
	}
	if err := mieBuild.repo.Train(); err != nil {
		return nil, err
	}
	for _, p := range profiles {
		meter := device.NewMeter(p)
		// A meter-bound client shares the repository key, so it produces
		// identical trapdoors; only cost attribution differs.
		stack, err := newMIE(cfg, meter, "srch-mie-client")
		if err != nil {
			return nil, err
		}
		for i := 0; i < queries; i++ {
			q, err := stack.client.PrepareQuery(queryObj, cfg.K)
			if err != nil {
				return nil, err
			}
			meter.AddTransfer(device.Network, estimateQueryBytes(q), 0)
			start := time.Now()
			hits, err := mieBuild.repo.Search(q)
			if err != nil {
				return nil, err
			}
			meter.AddServerTime(device.Network, time.Since(start))
			var down int64
			for _, h := range hits {
				down += int64(len(h.Ciphertext))
			}
			meter.AddTransfer(device.Network, 0, down)
		}
		rows = append(rows, searchRow(SchemeMIE, p, meter, queries))
	}

	// MSSE ----------------------------------------------------------------
	msseBuild, err := newMSSE(cfg, nil, "srch-msse")
	if err != nil {
		return nil, err
	}
	for _, obj := range corpus {
		if err := msseBuild.client.Update(msseBuild.server, msseBuild.repoID, toMSSEDoc(obj), dataKey()); err != nil {
			return nil, err
		}
	}
	if err := msseBuild.client.Train(msseBuild.server, msseBuild.repoID); err != nil {
		return nil, err
	}
	for _, p := range profiles {
		meter := device.NewMeter(p)
		qc, err := newMSSE(cfg, meter, "srch-msse-q-"+p.Name)
		if err != nil {
			return nil, err
		}
		qc.client.SetCodebook(msseBuild.client.Codebook())
		for i := 0; i < queries; i++ {
			if _, err := qc.client.Search(msseBuild.server, msseBuild.repoID, toMSSEDoc(queryObj), cfg.K); err != nil {
				return nil, err
			}
		}
		rows = append(rows, searchRow(SchemeMSSE, p, meter, queries))
	}

	// Hom-MSSE --------------------------------------------------------------
	homBuild, err := newHomMSSE(cfg, nil, "srch-hom")
	if err != nil {
		return nil, err
	}
	for _, obj := range corpus {
		if err := homBuild.client.Update(homBuild.server, homBuild.repoID, toHomDoc(obj), dataKey()); err != nil {
			return nil, err
		}
	}
	if err := homBuild.client.Train(homBuild.server, homBuild.repoID); err != nil {
		return nil, err
	}
	for _, p := range profiles {
		meter := device.NewMeter(p)
		// Reuse the builder's keys (a fresh stack would have a new Paillier
		// pair and could not read the repository).
		qc := homQueryClient(cfg, meter, homBuild)
		for i := 0; i < queries; i++ {
			if _, err := qc.Search(homBuild.server, homBuild.repoID, toHomDoc(queryObj), cfg.K); err != nil {
				return nil, err
			}
		}
		rows = append(rows, searchRow(SchemeHomMSSE, p, meter, queries))
	}
	return rows, nil
}

func searchRow(scheme string, p device.Profile, meter *device.Meter, queries int) SearchRow {
	div := func(d time.Duration) time.Duration { return d / time.Duration(queries) }
	return SearchRow{
		Scheme:  scheme,
		Device:  p.Name,
		Encrypt: div(meter.Time(device.Encrypt)),
		Network: div(meter.Time(device.Network)),
		Index:   div(meter.Time(device.Index)),
		Total:   div(meter.Total()),
	}
}

// mieSearchOnce is shared with Table 1's empirical scaling check.
func mieSearchOnce(stack *mieStack, query *core.Object, k int) (time.Duration, error) {
	q, err := stack.client.PrepareQuery(query, k)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := stack.repo.Search(q); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
