package experiments

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"time"

	"mie/internal/wire"
)

// chaosRelay is a TCP forwarder with fault and capacity injection — the
// userspace stand-in for `tc netem` plus a saturable NIC that the cluster
// harness uses to make distributed failure modes deterministic:
//
//   - SetDelay adds a fixed one-way latency to every delivery (both
//     directions), while deep burst queues keep reads from stalling behind
//     delivery so pipelined traffic overlaps round trips like on a real
//     long-haul link.
//   - Partition drops every live connection and refuses new ones until
//     healed — a clean network partition at a frame boundary.
//   - SetTarget repoints the relay at a new backend address (clients keep
//     the relay's stable address across a leader restart, exactly like a
//     VIP); live connections to the old target are dropped.
//   - SetFrameInterval paces client→server request frames through a relay-
//     wide token clock — at most one frame per interval across all
//     connections — modelling a node's finite request capacity so read
//     scale-out is measurable in-process.
//
// The zero-delay, never-partitioned relay is byte-transparent; the
// wire-concurrency experiment's latency relay is this type with only
// SetDelay in play.
type chaosRelay struct {
	ln net.Listener
	wg sync.WaitGroup

	mu          sync.Mutex
	target      string
	delay       time.Duration
	frameEvery  time.Duration
	partitioned bool
	conns       map[net.Conn]struct{}

	paceMu   sync.Mutex
	nextSlot time.Time
}

func newChaosRelay(target string, delay time.Duration) (*chaosRelay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &chaosRelay{ln: ln, target: target, delay: delay, conns: make(map[net.Conn]struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// newLatencyRelay is the wire-concurrency experiment's view of the relay: a
// fixed one-way delay and nothing else.
func newLatencyRelay(target string, delay time.Duration) (*chaosRelay, error) {
	return newChaosRelay(target, delay)
}

func (r *chaosRelay) Addr() string { return r.ln.Addr().String() }

func (r *chaosRelay) Close() {
	_ = r.ln.Close()
	r.dropConns()
	r.wg.Wait()
}

// SetTarget repoints the relay (the stable "VIP" address) at a new backend
// and drops live connections so clients redial through to it.
func (r *chaosRelay) SetTarget(addr string) {
	r.mu.Lock()
	r.target = addr
	r.mu.Unlock()
	r.dropConns()
}

// Partition isolates the relay's backend: live connections are dropped and
// new ones refused until Partition(false) heals it.
func (r *chaosRelay) Partition(on bool) {
	r.mu.Lock()
	r.partitioned = on
	r.mu.Unlock()
	if on {
		r.dropConns()
	}
}

// SetDelay changes the one-way delivery delay for subsequent bursts.
func (r *chaosRelay) SetDelay(d time.Duration) {
	r.mu.Lock()
	r.delay = d
	r.mu.Unlock()
}

// SetFrameInterval paces client→server frames to at most one per d across
// all connections (0 disables pacing).
func (r *chaosRelay) SetFrameInterval(d time.Duration) {
	r.mu.Lock()
	r.frameEvery = d
	r.mu.Unlock()
}

func (r *chaosRelay) getDelay() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.delay
}

func (r *chaosRelay) getFrameEvery() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frameEvery
}

func (r *chaosRelay) register(c net.Conn) {
	r.mu.Lock()
	r.conns[c] = struct{}{}
	r.mu.Unlock()
}

func (r *chaosRelay) unregister(c net.Conn) {
	r.mu.Lock()
	delete(r.conns, c)
	r.mu.Unlock()
}

func (r *chaosRelay) dropConns() {
	r.mu.Lock()
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

func (r *chaosRelay) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.mu.Lock()
		refused := r.partitioned
		target := r.target
		r.mu.Unlock()
		if refused {
			_ = conn.Close()
			continue
		}
		upstream, err := net.Dial("tcp", target)
		if err != nil {
			_ = conn.Close()
			continue
		}
		r.register(conn)
		r.register(upstream)
		r.wg.Add(2)
		go r.pipe(upstream, conn, true)  // client -> server: frame-aware, paced
		go r.pipe(conn, upstream, false) // server -> client: raw bursts
	}
}

type relayBurst struct {
	due  time.Time
	data []byte
}

// pipe copies src to dst, delivering each burst its one-way delay after it
// was read. A reader goroutine timestamps bursts into a deep queue so
// reading never stalls behind delivery. On the client→server direction the
// reader parses whole wire frames so pacing and partitions land exactly on
// frame boundaries.
func (r *chaosRelay) pipe(dst, src net.Conn, frames bool) {
	defer r.wg.Done()
	ch := make(chan relayBurst, 4096)
	if frames {
		go r.readFrames(src, ch)
	} else {
		go r.readBursts(src, ch)
	}
	for b := range ch {
		if frames {
			if every := r.getFrameEvery(); every > 0 {
				r.paceMu.Lock()
				slot := time.Now()
				if r.nextSlot.After(slot) {
					slot = r.nextSlot
				}
				r.nextSlot = slot.Add(every)
				r.paceMu.Unlock()
				if slot.After(b.due) {
					b.due = slot
				}
			}
		}
		if d := time.Until(b.due); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(b.data); err != nil {
			break
		}
	}
	// Half-close so the peer sees EOF once the source side is done; full
	// close tears down the paired pipe's reader too, which is fine after
	// the workload completes.
	_ = dst.Close()
	_ = src.Close()
	r.unregister(dst)
	r.unregister(src)
	for range ch { // drain so the reader goroutine exits
	}
}

func (r *chaosRelay) readBursts(src net.Conn, ch chan<- relayBurst) {
	defer close(ch)
	buf := make([]byte, 64<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			ch <- relayBurst{due: time.Now().Add(r.getDelay()), data: data}
		}
		if err != nil {
			return
		}
	}
}

// readFrames reads whole length-prefixed wire frames, one burst per frame.
// A stream that stops looking like wire frames ends the pipe (the relay
// only ever carries wire traffic).
func (r *chaosRelay) readFrames(src net.Conn, ch chan<- relayBurst) {
	defer close(ch)
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(src, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > wire.MaxFrameSize {
			return
		}
		data := make([]byte, 4+size)
		copy(data, hdr[:])
		if _, err := io.ReadFull(src, data[4:]); err != nil {
			return
		}
		ch <- relayBurst{due: time.Now().Add(r.getDelay()), data: data}
	}
}
