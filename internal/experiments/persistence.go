package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"mie/internal/core"
	"mie/internal/dataset"
	"mie/internal/obs"
	"mie/internal/wal"
)

// PersistenceRow is one sync policy's row of BENCH_persistence.json: the
// cost of write-ahead logging N acknowledged updates under that fsync
// discipline.
type PersistenceRow struct {
	SyncPolicy    string  `json:"sync_policy"`
	Updates       int     `json:"updates"`
	WallMs        float64 `json:"wall_ms"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	P50UpdateMs   float64 `json:"p50_update_ms"`
	P95UpdateMs   float64 `json:"p95_update_ms"`
	WALBytes      int64   `json:"wal_bytes"`
	WALMBPerSec   float64 `json:"wal_mb_per_sec"`
	Fsyncs        int64   `json:"fsyncs"`
}

// PersistenceReport is the full document mie-bench -persistence writes:
// append throughput per sync policy, plus the cost of the snapshot that
// rotates the log and of a cold-start recovery replay.
type PersistenceReport struct {
	Rows []PersistenceRow `json:"rows"`
	// SnapshotMs is one SaveService over the benchmark repository (write,
	// fsync, rename, rotate the WAL).
	SnapshotMs float64 `json:"snapshot_ms"`
	// RecoveryMs is a cold LoadService: snapshot load + WAL replay of the
	// post-snapshot updates.
	RecoveryMs      float64 `json:"recovery_ms"`
	ReplayedRecords int     `json:"replayed_records"`
}

// PersistenceExperiment measures the durability subsystem: the same update
// stream is logged under each WAL sync policy (always / interval / never)
// into its own data directory under dir, then the always-synced directory
// is snapshotted and cold-recovered.
func PersistenceExperiment(cfg Config, dir string) (*PersistenceReport, error) {
	corpus := dataset.Flickr(dataset.FlickrParams{
		N:         cfg.SearchRepoSize,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	stack, err := newMIE(cfg, nil, "persist-src")
	if err != nil {
		return nil, err
	}
	ups := make([]*core.Update, len(corpus))
	for i, obj := range corpus {
		if ups[i], err = stack.client.PrepareUpdate(obj, dataKey()); err != nil {
			return nil, err
		}
	}

	bytesC := obs.Default().Counter("wal_bytes")
	fsyncC := obs.Default().Counter("wal_fsyncs")
	report := &PersistenceReport{}
	var alwaysDir string
	var alwaysSvc *core.Service
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		sub := filepath.Join(dir, "wal-"+policy.String())
		svc, _, err := core.OpenService(core.ServiceOptions{Dir: sub, Sync: policy})
		if err != nil {
			return nil, err
		}
		repo, err := svc.CreateRepository("persist", core.RepositoryOptions{Vocab: cfg.vocab()})
		if err != nil {
			return nil, err
		}
		bytes0, fsync0 := bytesC.Value(), fsyncC.Value()
		durations := make([]time.Duration, len(ups))
		start := time.Now()
		for i, up := range ups {
			t0 := time.Now()
			if err := repo.Update(up); err != nil {
				return nil, fmt.Errorf("update under %s: %w", policy, err)
			}
			durations[i] = time.Since(t0)
		}
		wall := time.Since(start)
		walBytes := bytesC.Value() - bytes0
		report.Rows = append(report.Rows, PersistenceRow{
			SyncPolicy:    policy.String(),
			Updates:       len(ups),
			WallMs:        ms(wall),
			UpdatesPerSec: float64(len(ups)) / wall.Seconds(),
			P50UpdateMs:   percentileMs(durations, 0.50),
			P95UpdateMs:   percentileMs(durations, 0.95),
			WALBytes:      walBytes,
			WALMBPerSec:   float64(walBytes) / 1e6 / wall.Seconds(),
			Fsyncs:        fsyncC.Value() - fsync0,
		})
		if policy == wal.SyncAlways {
			alwaysDir, alwaysSvc = sub, svc
		} else if err := svc.Close(); err != nil {
			return nil, err
		}
	}

	// Snapshot cost: fold the always-synced log into a snapshot.
	t0 := time.Now()
	if err := core.SaveService(alwaysSvc, alwaysDir); err != nil {
		return nil, err
	}
	report.SnapshotMs = ms(time.Since(t0))
	// Re-apply half the stream so recovery has a log to replay on top of
	// the snapshot, then cold-start.
	repo, err := alwaysSvc.Repository("persist")
	if err != nil {
		return nil, err
	}
	for _, up := range ups[:len(ups)/2] {
		if err := repo.Update(up); err != nil {
			return nil, err
		}
	}
	if err := alwaysSvc.Close(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	svc, rec, err := core.OpenService(core.ServiceOptions{Dir: alwaysDir})
	if err != nil {
		return nil, err
	}
	report.RecoveryMs = ms(time.Since(t0))
	report.ReplayedRecords = rec.ReplayedRecords
	return report, svc.Close()
}

// WritePersistenceReport renders the report for stdout.
func WritePersistenceReport(w io.Writer, r *PersistenceReport) {
	fmt.Fprintln(w, "Durability: write-ahead log append throughput by sync policy")
	fmt.Fprintf(w, "  %-10s %-8s %-12s %-9s %-9s %-10s %-9s\n",
		"policy", "updates", "updates/s", "p50(ms)", "p95(ms)", "MB/s", "fsyncs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-10s %-8d %-12.1f %-9.3f %-9.3f %-10.2f %-9d\n",
			row.SyncPolicy, row.Updates, row.UpdatesPerSec, row.P50UpdateMs, row.P95UpdateMs, row.WALMBPerSec, row.Fsyncs)
	}
	fmt.Fprintf(w, "  snapshot (rotates WAL): %.1f ms; cold recovery: %.1f ms replaying %d records\n",
		r.SnapshotMs, r.RecoveryMs, r.ReplayedRecords)
}
