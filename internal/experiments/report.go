package experiments

import (
	"fmt"
	"io"
	"time"
)

// seconds renders a duration as the figures do (seconds, 3 decimals).
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// WriteUpdateReport prints Figure 2/3 rows as a table.
func WriteUpdateReport(w io.Writer, title string, rows []UpdateRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-9s %6s %12s %12s %12s %12s %12s\n",
		"Scheme", "N", "Encrypt(s)", "Network(s)", "Index(s)", "Train(s)", "Total(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %6d %12s %12s %12s %12s %12s\n",
			r.Scheme, r.N, seconds(r.Encrypt), seconds(r.Network),
			seconds(r.Index), seconds(r.Train), seconds(r.Total))
	}
}

// WriteEnergyReport prints Figure 6 rows (battery drain per scheme/size).
func WriteEnergyReport(w io.Writer, rows []UpdateRow, batteryMAh float64) {
	fmt.Fprintf(w, "== Figure 6: mobile energy consumption (battery %.0f mAh) ==\n", batteryMAh)
	fmt.Fprintf(w, "%-9s %6s %14s %14s %10s\n", "Scheme", "N", "Add(mAh)", "Train(mAh)", "Shutdown")
	for _, r := range rows {
		shutdown := ""
		if r.BatteryExceeded {
			shutdown = "DEVICE DEAD"
		}
		fmt.Fprintf(w, "%-9s %6d %14.1f %14.1f %10s\n",
			r.Scheme, r.N, r.EnergyAddMAh, r.EnergyTrainMAh, shutdown)
	}
}

// WriteSearchReport prints Figure 5 rows.
func WriteSearchReport(w io.Writer, rows []SearchRow) {
	fmt.Fprintln(w, "== Figure 5: search performance ==")
	fmt.Fprintf(w, "%-9s %-16s %12s %12s %12s %12s\n",
		"Scheme", "Device", "Encrypt(s)", "Network(s)", "Index(s)", "Total(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %-16s %12s %12s %12s %12s\n",
			r.Scheme, r.Device, seconds(r.Encrypt), seconds(r.Network),
			seconds(r.Index), seconds(r.Total))
	}
}

// WriteMultiUserReport prints Figure 4 rows.
func WriteMultiUserReport(w io.Writer, rows []MultiUserRow) {
	fmt.Fprintln(w, "== Figure 4: concurrent multi-user update (MIE) ==")
	fmt.Fprintf(w, "%-16s %6s %12s %12s %12s %12s\n",
		"Device", "N", "Encrypt(s)", "Network(s)", "Index(s)", "Total(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %6d %12s %12s %12s %12s\n",
			r.Device, r.N, seconds(r.Encrypt), seconds(r.Network),
			seconds(r.Index), seconds(r.Total))
	}
}

// WritePrecisionReport prints Table III rows.
func WritePrecisionReport(w io.Writer, rows []PrecisionRow) {
	fmt.Fprintln(w, "== Table III: retrieval precision (Holidays-style benchmark) ==")
	fmt.Fprintf(w, "%-10s %10s\n", "System", "mAP(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10.3f\n", r.System, r.MAP*100)
	}
}

// WriteTable1Report prints the analytical table plus the empirical scaling
// check.
func WriteTable1Report(w io.Writer, rows []Table1Row, scaling *Table1Scaling) {
	fmt.Fprintln(w, "== Table I: scheme overview ==")
	fmt.Fprintf(w, "%-9s %-8s %-8s %-8s %-11s %-22s %-18s\n",
		"Scheme", "Search", "Update", "Client", "Query", "SearchLeakage", "UpdateLeakage")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %-8s %-8s %-8s %-11s %-22s %-18s\n",
			r.Scheme, r.SearchTime, r.UpdateTime, r.ClientStorage,
			r.QueryType, r.SearchLeakage, r.UpdateLeakage)
	}
	if scaling == nil {
		return
	}
	fmt.Fprintf(w, "\nEmpirical check (MIE, repo %d -> %d objects):\n", scaling.SmallN, scaling.LargeN)
	fmt.Fprintf(w, "  indexed search: %v -> %v (x%.2f growth)\n",
		scaling.IndexedSearchSmall, scaling.IndexedSearchLarge, scaling.IndexedRatio)
	fmt.Fprintf(w, "  linear search:  %v -> %v (x%.2f growth)\n",
		scaling.LinearSearchSmall, scaling.LinearSearchLarge, scaling.LinearRatio)
	fmt.Fprintf(w, "  index vs scan at N=%d: %.1fx faster (the O(m/n) payoff)\n",
		scaling.LargeN, scaling.SpeedupLarge)
	fmt.Fprintf(w, "  update:         %v -> %v (x%.2f; size-independent)\n",
		scaling.UpdateSmall, scaling.UpdateLarge, scaling.UpdateRatio)
}

// WriteTable2Report prints Table II rows.
func WriteTable2Report(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "== Table II: DPE encoded distances ==")
	for _, r := range rows {
		fmt.Fprintln(w, "  "+r.String())
	}
}
