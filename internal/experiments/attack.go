package experiments

import (
	"fmt"
	"io"

	"mie/internal/attack"
	"mie/internal/core"
	"mie/internal/dataset"
	"mie/internal/dpe"
	"mie/internal/text"
)

// AttackRow is one point of the §V-A security experiment: keyword recovery
// achieved by the frequency-signature leakage-abuse adversary at a given
// fraction of known documents.
type AttackRow struct {
	KnownFraction float64
	RecoveryRate  float64
	Recovered     int
	Vocabulary    int
}

// AttackExperiment runs the passive leakage-abuse attack of internal/attack
// against a real MIE repository built from a large-vocabulary text corpus,
// sweeping the adversary's document knowledge. The paper's claim (§V-A),
// citing Cash et al., is that passive attacks demand near-total document
// knowledge (~95% known documents for ~58% query recovery); the measured
// curve here lands on the same shape — recovery grows slowly and substantial
// recovery requires knowing most of the corpus.
func AttackExperiment(cfg Config) ([]AttackRow, error) {
	corpus := dataset.SyntheticText(dataset.SyntheticTextParams{
		N:    cfg.SearchRepoSize * 5,
		Seed: cfg.Seed,
	})
	// Text-only repository: the attack targets the sparse (keyword) leakage.
	client, err := core.NewClient(core.ClientConfig{
		Key: core.RepositoryKey{Master: masterKey(1)},
	})
	if err != nil {
		return nil, err
	}
	repo, err := core.NewRepository("attack-target", core.RepositoryOptions{
		Modalities: []core.Modality{core.ModalityText},
	})
	if err != nil {
		return nil, err
	}
	sparse := dpe.NewSparse(mieSparseKey())
	truth := make(map[string]dpe.Token)
	plaintexts := make([]attack.KnownDoc, 0, len(corpus))
	for _, obj := range corpus {
		up, err := client.PrepareUpdate(obj, dataKey())
		if err != nil {
			return nil, err
		}
		if err := repo.Update(up); err != nil {
			return nil, err
		}
		hist := text.Extract(obj.Text)
		kw := make(map[string]uint64, len(hist))
		for _, term := range hist {
			kw[term.Word] = term.Freq
			truth[term.Word] = sparse.Encode(term.Word)
		}
		plaintexts = append(plaintexts, attack.KnownDoc{DocID: obj.ID, Keywords: kw})
	}
	observations := repo.Leakage().UpdateObservations()

	var rows []AttackRow
	for _, frac := range []float64{0.10, 0.25, 0.50, 0.75, 0.95, 1.0} {
		n := int(frac * float64(len(plaintexts)))
		rec := attack.RecoverKeywords(observations, plaintexts[:n])
		rate, correct, total := attack.Evaluate(rec, truth)
		rows = append(rows, AttackRow{
			KnownFraction: frac,
			RecoveryRate:  rate,
			Recovered:     correct,
			Vocabulary:    total,
		})
	}
	return rows, nil
}

// WriteAttackReport prints the attack sweep.
func WriteAttackReport(w io.Writer, rows []AttackRow) {
	fmt.Fprintln(w, "== §V-A: passive leakage-abuse attack (document-knowledge adversary) ==")
	fmt.Fprintf(w, "%-18s %14s %12s\n", "Known documents", "Recovery(%)", "Keywords")
	for _, r := range rows {
		fmt.Fprintf(w, "%17.0f%% %14.2f %7d/%d\n",
			r.KnownFraction*100, r.RecoveryRate*100, r.Recovered, r.Vocabulary)
	}
}
