package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationEncodingSize(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	cfg := Quick()
	rows, err := AblationEncodingSize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger encodings must not be dramatically worse than small ones; and
	// the largest should be at least as good as the smallest (less noise).
	if rows[3].MAP+0.05 < rows[0].MAP {
		t.Errorf("M=4096 mAP %v much worse than M=128 mAP %v", rows[3].MAP, rows[0].MAP)
	}
	var buf bytes.Buffer
	WriteAblationReport(&buf, "encoding size", rows)
	if !strings.Contains(buf.String(), "M=2048") {
		t.Error("report missing M=2048 row")
	}
}

func TestAblationThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	cfg := Quick()
	rows, err := AblationThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MAP < 0 || r.MAP > 1 {
			t.Errorf("%s: mAP %v out of range", r.Setting, r.MAP)
		}
	}
}

func TestAblationTrainingSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	cfg := Quick()
	rows, err := AblationTrainingSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The Hamming/encoded pipeline should be within a reasonable band of
	// the plaintext pipeline (the Table III claim).
	if rows[1].MAP < rows[0].MAP-0.25 {
		t.Errorf("encoded-space mAP %v far below plaintext %v", rows[1].MAP, rows[0].MAP)
	}
}

func TestAblationChampionSize(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	cfg := Quick()
	rows, err := AblationChampionSize(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Precision against the unbounded reference must be monotone-ish in R
	// and reach 1.0 once R covers the corpus.
	last := rows[len(rows)-1]
	if last.MAP < 0.99 {
		t.Errorf("R=200 precision vs reference = %v, want ~1", last.MAP)
	}
}

func TestAblationFusion(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation")
	}
	cfg := Quick()
	rows, err := AblationFusion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MAP < 0 || r.MAP > 1 {
			t.Errorf("%s: score %v out of range", r.Setting, r.MAP)
		}
	}
}
