package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mie/internal/core"
	"mie/internal/dpe"
	"mie/internal/imaging"
	"mie/internal/wal"
)

// tenancyMemoryBudget is the resident-bytes cap the benchmark service runs
// under. At the per-repository floor (64 KiB) plus a few text objects it
// holds a couple hundred repositories resident — a small fraction of the
// hosted count, so most of the churn exercises the cold-activation path.
const tenancyMemoryBudget = int64(16 << 20)

// FairnessRow is one pass of the hot-tenant fairness phase: a saturating
// tenant hammers the service from many goroutines while a light tenant
// issues sequential requests, with per-tenant in-flight admission either off
// or capped.
type FairnessRow struct {
	// InflightQuota is Quotas.MaxInflight for the pass (0 = admission off).
	InflightQuota int   `json:"inflight_quota"`
	HotWorkers    int   `json:"hot_workers"`
	HotOps        int   `json:"hot_ops"`
	HotRejections int64 `json:"hot_rejections"`
	// HotOpsPerSec counts only admitted, completed hot operations.
	HotOpsPerSec float64 `json:"hot_ops_per_sec"`
	LightOps     int     `json:"light_ops"`
	LightP50Ms   float64 `json:"light_p50_ms"`
	LightP95Ms   float64 `json:"light_p95_ms"`
	LightP99Ms   float64 `json:"light_p99_ms"`
}

// TenancyReport is the BENCH_tenancy.json document: what it costs to host
// TenancyRepos repositories on one service with lazy activation and a
// memory budget a fraction of the total footprint.
type TenancyReport struct {
	// Seed is the dataset seed the run was generated from, recorded so a
	// published report pins the exact workload it measured.
	Seed              int64 `json:"seed"`
	Repos             int   `json:"repos"`
	SeedObjects       int   `json:"seed_objects"`
	MemoryBudgetBytes int64 `json:"memory_budget_bytes"`
	// SeedMs creates and populates every repository (under the same budget,
	// so seeding itself churns through eviction).
	SeedMs float64 `json:"seed_ms"`

	// Churn phase: random repository touches against the cold fleet.
	ChurnOps        int `json:"churn_ops"`
	ColdActivations int `json:"cold_activations"`
	WarmHits        int `json:"warm_hits"`
	// Cold-activation latency (Acquire on a cold repository: snapshot load
	// plus WAL replay, single-flight).
	ActivationP50Ms float64 `json:"activation_p50_ms"`
	ActivationP95Ms float64 `json:"activation_p95_ms"`
	ActivationP99Ms float64 `json:"activation_p99_ms"`
	// Warm Acquire latency (resident repository, pin only).
	WarmP50Ms float64 `json:"warm_p50_ms"`
	WarmP95Ms float64 `json:"warm_p95_ms"`

	// Steady-state footprint: the service's own resident accounting at the
	// end of the churn, the worst sample seen during it, and how far the
	// accounting ever overshot the budget (transient, while the eviction
	// pass caught up).
	SteadyResidentBytes   int64   `json:"steady_resident_bytes"`
	MaxResidentBytes      int64   `json:"max_resident_bytes"`
	MaxOverBudgetFraction float64 `json:"max_over_budget_fraction"`
	// HeapAllocBytes is runtime.ReadMemStats after a forced GC at the end
	// of the churn — the process-level check on the accounting.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	Activations    uint64 `json:"activations"`
	Evictions      uint64 `json:"evictions"`

	// Durability through churn: every acknowledged write (seed and churn)
	// is read back after the fleet has been evicted and reactivated under
	// it. LostAcks must be zero.
	AckedWrites int `json:"acked_writes"`
	LostAcks    int `json:"lost_acks"`

	Fairness []FairnessRow `json:"fairness"`
}

// tenancyClient builds the text-only MIE client the benchmark uploads
// through; image parameters are irrelevant but the client requires them.
func tenancyClient(cfg Config) (*core.Client, error) {
	return core.NewClient(core.ClientConfig{
		Key:     core.RepositoryKey{Master: masterKey(1)},
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 2048, Threshold: 0.5},
		Pyramid: cfg.pyramid(),
	})
}

func tenancyRepoID(i int) string { return fmt.Sprintf("tenant-repo-%05d", i) }

// TenancyExperiment measures the multi-tenant lifecycle at scale: it seeds
// cfg.TenancyRepos small repositories into dir, reopens the service with
// lazy activation under a memory budget far below the fleet's total
// footprint, churns random repositories through activation and eviction
// while measuring cold-start latency and resident accounting, verifies no
// acknowledged write was lost, and finally runs the hot-tenant fairness
// comparison with per-tenant in-flight admission off and on.
func TenancyExperiment(cfg Config, dir string) (*TenancyReport, error) {
	n := cfg.TenancyRepos
	if n <= 0 {
		return nil, errors.New("experiments: TenancyRepos must be positive")
	}
	client, err := tenancyClient(cfg)
	if err != nil {
		return nil, err
	}
	report := &TenancyReport{Seed: cfg.Seed, Repos: n, MemoryBudgetBytes: tenancyMemoryBudget}
	ropts := core.RepositoryOptions{Vocab: cfg.vocab()}

	// acked maps repository id -> object ids whose writes were acknowledged;
	// the read-back sweep at the end must find every one of them.
	acked := make(map[string][]string, n)

	// Seed: create every repository with two text objects, under the same
	// budget the churn will run under (SyncNever: the service is closed
	// cleanly, not crashed, so page-cache durability suffices and the WAL
	// fsync cost does not drown the lifecycle numbers).
	svc, _, err := core.OpenService(core.ServiceOptions{
		Dir:          dir,
		Sync:         wal.SyncNever,
		MemoryBudget: tenancyMemoryBudget,
	})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		id := tenancyRepoID(i)
		if _, err := svc.CreateRepository(id, ropts); err != nil {
			return nil, err
		}
		// Pin for the seed writes: under the budget the fresh repository may
		// otherwise be evicted between creation and its first update.
		repo, release, err := svc.Acquire(id)
		if err != nil {
			return nil, err
		}
		for j := 0; j < 2; j++ {
			objID := fmt.Sprintf("seed-%d", j)
			up, err := client.PrepareUpdate(&core.Object{
				ID:    objID,
				Owner: fmt.Sprintf("tenant-%d", i%16),
				Text:  fmt.Sprintf("seed document %d of repository %d", j, i),
			}, dataKey())
			if err != nil {
				release()
				return nil, err
			}
			if err := repo.Update(up); err != nil {
				release()
				return nil, fmt.Errorf("seed %s/%s: %w", id, objID, err)
			}
			acked[id] = append(acked[id], objID)
			report.SeedObjects++
		}
		release()
	}
	report.SeedMs = ms(time.Since(t0))
	if err := svc.Close(); err != nil {
		return nil, err
	}

	// Reopen lazy: the whole fleet starts cold and activates on first touch.
	svc, rec, err := core.OpenService(core.ServiceOptions{
		Dir:            dir,
		Sync:           wal.SyncNever,
		MemoryBudget:   tenancyMemoryBudget,
		LazyActivation: true,
	})
	if err != nil {
		return nil, err
	}
	if rec.ColdRepositories != n {
		return nil, fmt.Errorf("experiments: lazy open discovered %d cold repositories, want %d", rec.ColdRepositories, n)
	}

	// Churn: 2N random touches, half against a small hot set so warm hits
	// happen despite the budget, 20% of them acknowledged writes.
	churn := 2 * n
	hotSet := n / 20
	if hotSet < 1 {
		hotSet = 1
	}
	if hotSet > 64 {
		hotSet = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 71))
	var coldDur, warmDur []time.Duration
	base := svc.Lifecycle()
	activations := base.Activations
	for op := 0; op < churn; op++ {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			i = rng.Intn(hotSet)
		}
		id := tenancyRepoID(i)
		t0 := time.Now()
		repo, release, err := svc.Acquire(id)
		acq := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("churn acquire %s: %w", id, err)
		}
		if op%5 == 0 {
			objID := fmt.Sprintf("churn-%d", op)
			up, err := client.PrepareUpdate(&core.Object{
				ID:    objID,
				Owner: fmt.Sprintf("tenant-%d", i%16),
				Text:  fmt.Sprintf("churn write %d into repository %d", op, i),
			}, dataKey())
			if err == nil {
				err = repo.Update(up)
			}
			if err != nil {
				release()
				return nil, fmt.Errorf("churn write %s/%s: %w", id, objID, err)
			}
			acked[id] = append(acked[id], objID)
		} else if _, _, err := repo.Get(acked[id][0]); err != nil {
			release()
			return nil, fmt.Errorf("churn read %s: %w", id, err)
		}
		release()
		st := svc.Lifecycle()
		if st.Activations > activations {
			coldDur = append(coldDur, acq)
		} else {
			warmDur = append(warmDur, acq)
		}
		activations = st.Activations
		if st.ResidentBytes > report.MaxResidentBytes {
			report.MaxResidentBytes = st.ResidentBytes
		}
	}
	report.ChurnOps = churn
	report.ColdActivations = len(coldDur)
	report.WarmHits = len(warmDur)
	report.ActivationP50Ms = percentileMs(coldDur, 0.50)
	report.ActivationP95Ms = percentileMs(coldDur, 0.95)
	report.ActivationP99Ms = percentileMs(coldDur, 0.99)
	report.WarmP50Ms = percentileMs(warmDur, 0.50)
	report.WarmP95Ms = percentileMs(warmDur, 0.95)
	if over := report.MaxResidentBytes - tenancyMemoryBudget; over > 0 {
		report.MaxOverBudgetFraction = float64(over) / float64(tenancyMemoryBudget)
	}
	end := svc.Lifecycle()
	report.SteadyResidentBytes = end.ResidentBytes
	report.Activations = end.Activations - base.Activations
	report.Evictions = end.Evictions
	runtime.GC()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	report.HeapAllocBytes = mem.HeapAlloc

	// Read back every acknowledged write through the lifecycle that churned
	// beneath it.
	for id, objs := range acked {
		repo, release, err := svc.Acquire(id)
		if err != nil {
			report.LostAcks += len(objs)
			report.AckedWrites += len(objs)
			continue
		}
		for _, objID := range objs {
			report.AckedWrites++
			if _, _, err := repo.Get(objID); err != nil {
				report.LostAcks++
			}
		}
		release()
	}
	if err := svc.Close(); err != nil {
		return nil, err
	}

	// Fairness: one saturating tenant vs one light tenant, admission off
	// then capped. The light tenant's tail latency is the number that the
	// in-flight quota exists to protect.
	for _, quota := range []int{0, 2} {
		row, err := tenancyFairness(cfg, client, dir, n, quota)
		if err != nil {
			return nil, err
		}
		report.Fairness = append(report.Fairness, *row)
	}
	return report, nil
}

// tenancyFairness reopens the seeded fleet and races a hot tenant — a bulk
// uploader writing from many goroutines — against a light tenant issuing
// sequential reads, both going through the same admission path the server
// uses. inflightQuota 0 runs with admission disabled.
func tenancyFairness(cfg Config, client *core.Client, dir string, n, inflightQuota int) (*FairnessRow, error) {
	const hotWorkers = 8
	hotOpsPerWorker := n / hotWorkers
	if hotOpsPerWorker > 150 {
		hotOpsPerWorker = 150
	}
	if hotOpsPerWorker < 25 {
		hotOpsPerWorker = 25
	}
	lightOps := hotOpsPerWorker

	svc, _, err := core.OpenService(core.ServiceOptions{
		Dir:            dir,
		Sync:           wal.SyncNever,
		MemoryBudget:   tenancyMemoryBudget,
		LazyActivation: true,
		Quotas:         core.Quotas{MaxInflight: inflightQuota},
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = svc.Close() }()
	gov := svc.Tenants()

	// touch is one admitted request: reserve the tenant's in-flight slot
	// (retrying per the server's hint on rejection), acquire a random
	// repository and perform the tenant's operation against it — a write for
	// the hot bulk uploader, a read of the seed object for the light tenant.
	touch := func(tenant string, write *core.Update, rng *rand.Rand, rejections *atomic.Int64) error {
		var release func()
		for {
			var err error
			if release, err = gov.Admit(tenant); err == nil {
				break
			}
			var qe *core.QuotaError
			if !errors.As(err, &qe) {
				return err
			}
			if rejections != nil {
				rejections.Add(1)
			}
			time.Sleep(qe.RetryAfter)
		}
		defer release()
		id := tenancyRepoID(rng.Intn(n))
		repo, done, err := svc.Acquire(id)
		if err != nil {
			return fmt.Errorf("fairness acquire %s: %w", id, err)
		}
		defer done()
		if write != nil {
			if err := repo.Update(write); err != nil {
				return fmt.Errorf("fairness write %s: %w", id, err)
			}
		} else if _, _, err := repo.Get("seed-0"); err != nil {
			return fmt.Errorf("fairness read %s: %w", id, err)
		}
		return nil
	}

	row := &FairnessRow{
		InflightQuota: inflightQuota,
		HotWorkers:    hotWorkers,
		HotOps:        hotWorkers * hotOpsPerWorker,
		LightOps:      lightOps,
	}
	var rejections atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, hotWorkers)
	hotStart := time.Now()
	for w := 0; w < hotWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+w)))
			for op := 0; op < hotOpsPerWorker; op++ {
				// The upload is prepared client-side, outside the admitted
				// window — only the server-side work holds the slot.
				up, err := client.PrepareUpdate(&core.Object{
					ID:    fmt.Sprintf("hot-%d-%d-%d", inflightQuota, w, op),
					Owner: "hot",
					Text:  fmt.Sprintf("bulk upload %d from worker %d", op, w),
				}, dataKey())
				if err == nil {
					err = touch("hot", up, rng, &rejections)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	lightRng := rand.New(rand.NewSource(cfg.Seed + 2000))
	lightDur := make([]time.Duration, 0, lightOps)
	var lightErr error
	for op := 0; op < lightOps; op++ {
		t0 := time.Now()
		if lightErr = touch("light", nil, lightRng, nil); lightErr != nil {
			break
		}
		lightDur = append(lightDur, time.Since(t0))
	}
	wg.Wait()
	hotWall := time.Since(hotStart)
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	if lightErr != nil {
		return nil, lightErr
	}
	row.HotRejections = rejections.Load()
	row.HotOpsPerSec = float64(row.HotOps) / hotWall.Seconds()
	row.LightP50Ms = percentileMs(lightDur, 0.50)
	row.LightP95Ms = percentileMs(lightDur, 0.95)
	row.LightP99Ms = percentileMs(lightDur, 0.99)
	return row, nil
}

// WriteTenancyReport renders the report for stdout.
func WriteTenancyReport(w io.Writer, r *TenancyReport) {
	fmt.Fprintf(w, "Multi-tenancy: %d repositories, %d MiB memory budget, lazy activation\n",
		r.Repos, r.MemoryBudgetBytes>>20)
	fmt.Fprintf(w, "  seed: %d objects in %.0f ms\n", r.SeedObjects, r.SeedMs)
	fmt.Fprintf(w, "  churn: %d ops -> %d cold activations, %d warm hits; %d evictions\n",
		r.ChurnOps, r.ColdActivations, r.WarmHits, r.Evictions)
	fmt.Fprintf(w, "  cold activation p50/p95/p99: %.3f / %.3f / %.3f ms; warm acquire p50/p95: %.3f / %.3f ms\n",
		r.ActivationP50Ms, r.ActivationP95Ms, r.ActivationP99Ms, r.WarmP50Ms, r.WarmP95Ms)
	fmt.Fprintf(w, "  resident: steady %.1f MiB, max %.1f MiB (over budget by %.1f%% at worst); heap after GC %.1f MiB\n",
		float64(r.SteadyResidentBytes)/(1<<20), float64(r.MaxResidentBytes)/(1<<20),
		100*r.MaxOverBudgetFraction, float64(r.HeapAllocBytes)/(1<<20))
	fmt.Fprintf(w, "  durability: %d acked writes, %d lost\n", r.AckedWrites, r.LostAcks)
	for _, f := range r.Fairness {
		quota := "off"
		if f.InflightQuota > 0 {
			quota = fmt.Sprintf("%d", f.InflightQuota)
		}
		fmt.Fprintf(w, "  fairness (inflight quota %s): hot %d workers %.1f ops/s (%d rejections); light p50/p95/p99 %.3f / %.3f / %.3f ms\n",
			quota, f.HotWorkers, f.HotOpsPerSec, f.HotRejections, f.LightP50Ms, f.LightP95Ms, f.LightP99Ms)
	}
	// Machine-parsable summary for scripts/check.sh's tenancy smoke gate.
	fmt.Fprintf(w, "tenancy: seed=%d repos=%d lost_acks=%d max_over_budget=%.4f activation_p99_ms=%.3f\n",
		r.Seed, r.Repos, r.LostAcks, r.MaxOverBudgetFraction, r.ActivationP99Ms)
}
