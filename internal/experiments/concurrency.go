package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"mie/internal/core"
	"mie/internal/dataset"
)

// ConcurrencyLevel is one row of the BENCH_concurrency.json report: N
// concurrent search clients hammering one trained repository.
type ConcurrencyLevel struct {
	Clients       int     `json:"clients"`
	Searches      int     `json:"searches"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// TrainOverlap reports search behavior while a Train runs on the same
// repository — the non-blocking claim of the epoch-swapped engine, measured
// rather than asserted. Searches counts only searches that completed
// strictly inside the training window.
type TrainOverlap struct {
	Clients      int     `json:"clients"`
	TrainMs      float64 `json:"train_ms"`
	Searches     int     `json:"searches_during_train"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxSearchMs  float64 `json:"max_search_ms"`
	TrainByMaxMs float64 `json:"train_over_max_search"`
}

// ConcurrencyReport is the full document mie-bench -parallel writes.
type ConcurrencyReport struct {
	RepoSize int                `json:"repo_size"`
	K        int                `json:"k"`
	Levels   []ConcurrencyLevel `json:"levels"`
	Overlap  TrainOverlap       `json:"train_overlap"`
	// Wire holds the transport comparison (lockstep vs mux vs
	// conn-per-client over TCP); filled by mie-bench -single-conn.
	Wire *WireReport `json:"wire,omitempty"`
}

// ConcurrencyExperiment builds one trained MIE repository and measures
// search throughput and tail latency at each client level, then search
// latency while an overlapping (re)Train is in flight.
func ConcurrencyExperiment(cfg Config, levels []int) (*ConcurrencyReport, error) {
	const perClient = 25
	corpus := dataset.Flickr(dataset.FlickrParams{
		N:         cfg.SearchRepoSize,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	stack, err := newMIE(cfg, nil, "conc-mie")
	if err != nil {
		return nil, err
	}
	for _, obj := range corpus {
		if err := stack.add(obj); err != nil {
			return nil, err
		}
	}
	if err := stack.repo.Train(); err != nil {
		return nil, err
	}

	// A small pool of distinct trapdoors so concurrent clients do not all
	// replay one query (and one index access pattern).
	queryObjs := dataset.Flickr(dataset.FlickrParams{
		N:         8,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed + 999,
	})
	queries := make([]*core.Query, len(queryObjs))
	for i, obj := range queryObjs {
		if queries[i], err = stack.client.PrepareQuery(obj, cfg.K); err != nil {
			return nil, err
		}
	}

	report := &ConcurrencyReport{RepoSize: cfg.SearchRepoSize, K: cfg.K}
	for _, n := range levels {
		lv, err := concurrencyLevel(stack.repo, queries, n, perClient)
		if err != nil {
			return nil, err
		}
		report.Levels = append(report.Levels, lv)
	}

	overlap, err := trainOverlap(stack.repo, queries, 4)
	if err != nil {
		return nil, err
	}
	report.Overlap = overlap
	return report, nil
}

// concurrencyLevel runs n clients, perClient searches each, against repo.
func concurrencyLevel(repo *core.Repository, queries []*core.Query, n, perClient int) (ConcurrencyLevel, error) {
	durations := make([][]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c+i)%len(queries)]
				t0 := time.Now()
				if _, err := repo.Search(q); err != nil {
					errs[c] = err
					return
				}
				durations[c] = append(durations[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ConcurrencyLevel{}, err
		}
	}
	var all []time.Duration
	for _, ds := range durations {
		all = append(all, ds...)
	}
	return ConcurrencyLevel{
		Clients:       n,
		Searches:      len(all),
		ThroughputQPS: float64(len(all)) / wall.Seconds(),
		P50Ms:         percentileMs(all, 0.50),
		P95Ms:         percentileMs(all, 0.95),
		P99Ms:         percentileMs(all, 0.99),
	}, nil
}

// trainOverlap retrains the repository while n clients search continuously,
// keeping only the searches that completed inside the training window.
func trainOverlap(repo *core.Repository, queries []*core.Query, n int) (TrainOverlap, error) {
	stop := make(chan struct{})
	durations := make([][]time.Duration, n)
	errs := make([]error, n)
	var ready, wg sync.WaitGroup
	ready.Add(n)
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Warm-up (uncounted) search, so every client is provably in
			// its loop before the training window opens.
			if _, err := repo.Search(queries[c%len(queries)]); err != nil {
				errs[c] = err
				ready.Done()
				return
			}
			ready.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(c+i)%len(queries)]
				t0 := time.Now()
				if _, err := repo.Search(q); err != nil {
					errs[c] = err
					return
				}
				durations[c] = append(durations[c], time.Since(t0))
			}
		}(c)
	}
	ready.Wait()
	t0 := time.Now()
	trainErr := repo.Train()
	trainDur := time.Since(t0)
	close(stop)
	wg.Wait()
	if trainErr != nil {
		return TrainOverlap{}, trainErr
	}
	for _, err := range errs {
		if err != nil {
			return TrainOverlap{}, err
		}
	}
	var all []time.Duration
	var max time.Duration
	for _, ds := range durations {
		for _, d := range ds {
			all = append(all, d)
			if d > max {
				max = d
			}
		}
	}
	ov := TrainOverlap{
		Clients:     n,
		TrainMs:     ms(trainDur),
		Searches:    len(all),
		P50Ms:       percentileMs(all, 0.50),
		P95Ms:       percentileMs(all, 0.95),
		P99Ms:       percentileMs(all, 0.99),
		MaxSearchMs: ms(max),
	}
	if max > 0 {
		ov.TrainByMaxMs = trainDur.Seconds() / max.Seconds()
	}
	return ov, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// percentileMs returns the q-th percentile of ds in milliseconds (nearest
// rank); 0 for an empty slice.
func percentileMs(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return ms(sorted[idx])
}

// WriteConcurrencyReport renders the report for stdout, mirroring the
// structure of the JSON document.
func WriteConcurrencyReport(w io.Writer, r *ConcurrencyReport) {
	fmt.Fprintf(w, "Concurrent search (repo=%d objects, k=%d)\n", r.RepoSize, r.K)
	fmt.Fprintf(w, "  %-8s %-9s %-12s %-9s %-9s %-9s\n", "clients", "searches", "qps", "p50(ms)", "p95(ms)", "p99(ms)")
	for _, lv := range r.Levels {
		fmt.Fprintf(w, "  %-8d %-9d %-12.1f %-9.3f %-9.3f %-9.3f\n",
			lv.Clients, lv.Searches, lv.ThroughputQPS, lv.P50Ms, lv.P95Ms, lv.P99Ms)
	}
	o := r.Overlap
	fmt.Fprintf(w, "  during Train (%.1f ms, %d clients): %d searches completed, p50=%.3f ms p95=%.3f ms p99=%.3f ms max=%.3f ms\n",
		o.TrainMs, o.Clients, o.Searches, o.P50Ms, o.P95Ms, o.P99Ms, o.MaxSearchMs)
	if r.Wire == nil {
		return
	}
	fmt.Fprintf(w, "\nWire transports over TCP (simulated RTT %.1f ms)\n", r.Wire.SimulatedRTTMs)
	fmt.Fprintf(w, "  %-26s %-8s %-12s %-9s %-9s %-9s\n", "mode", "clients", "qps", "p50(ms)", "p95(ms)", "p99(ms)")
	for _, lv := range r.Wire.Levels {
		fmt.Fprintf(w, "  %-26s %-8d %-12.1f %-9.3f %-9.3f %-9.3f\n",
			lv.Mode, lv.Clients, lv.ThroughputQPS, lv.P50Ms, lv.P95Ms, lv.P99Ms)
	}
	fmt.Fprintf(w, "  v2 mux / v1 lockstep throughput at the top level: %.2fx\n", r.Wire.MuxOverLockstep)
}
