package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/obs"
	"mie/internal/replica"
	"mie/internal/router"
	"mie/internal/server"
	"mie/internal/wal"
)

// clusterFrameInterval is the per-node request pacing during the read-
// scaling phase: every node relay delivers at most one request frame per
// interval, modelling a node's finite capacity (~500 qps) so adding
// replicas measurably adds aggregate throughput inside one process.
const clusterFrameInterval = 2 * time.Millisecond

// clusterNode is one member of the in-process cluster: its own durable
// service and wire server, fronted by a fault-injecting relay that plays
// the role of the node's network interface.
type clusterNode struct {
	name string
	dir  string
	svc  *core.Service
	srv  *server.Server
	// relay is the node's stable client-facing address; for the leader it
	// is also the replication/forwarding VIP, which is what lets a
	// restarted leader come back under the same address.
	relay *chaosRelay
	// link, on followers, is the replication path to the leader VIP —
	// partitionable per follower.
	link *chaosRelay
	fol  *replica.Follower
	fwd  *replica.Forwarder
}

// Cluster is an in-process replicated MIE deployment: node 0 is the leader
// (service + replication hub), the rest are followers replicating from it
// and forwarding mutations to it, and a consistent-hash router fronts them
// all. Every network path runs through a chaosRelay, so latency, capacity,
// partitions and leader crashes are injected deterministically at frame
// boundaries.
type Cluster struct {
	baseDir string
	sync    wal.SyncPolicy
	reg     *obs.Registry
	nodes   []*clusterNode
	hub     *replica.Hub
	rt      *router.Router
}

// StartCluster boots an n-node cluster under baseDir (one subdirectory per
// node) with the given WAL sync policy on every node.
func StartCluster(baseDir string, n int, sync wal.SyncPolicy) (*Cluster, error) {
	if n < 1 {
		return nil, errors.New("experiments: cluster needs at least one node")
	}
	c := &Cluster{baseDir: baseDir, sync: sync, reg: obs.NewRegistry()}
	fail := func(err error) (*Cluster, error) {
		_ = c.Close()
		return nil, err
	}

	// Leader.
	leaderDir := filepath.Join(baseDir, "node-0")
	svc, _, err := core.OpenService(core.ServiceOptions{Dir: leaderDir, Sync: sync})
	if err != nil {
		return fail(err)
	}
	c.hub = replica.NewHub(svc, c.reg)
	srv, err := server.New("127.0.0.1:0", svc, nil,
		server.WithReplication(c.hub),
		server.WithNodeStatus(func() server.NodeStatus {
			return server.NodeStatus{Role: "leader", CaughtUp: true}
		}))
	if err != nil {
		_ = svc.Close()
		return fail(err)
	}
	relay0, err := newChaosRelay(srv.Addr(), 0)
	if err != nil {
		_ = srv.Close()
		_ = svc.Close()
		return fail(err)
	}
	c.nodes = append(c.nodes, &clusterNode{name: "node-0", dir: leaderDir, svc: svc, srv: srv, relay: relay0})

	// Followers.
	for i := 1; i < n; i++ {
		node, err := c.startFollower(i)
		if err != nil {
			return fail(err)
		}
		c.nodes = append(c.nodes, node)
	}

	// Router over the node relays.
	rcfg := router.Config{Leader: "node-0", Registry: c.reg}
	for _, node := range c.nodes {
		rcfg.Nodes = append(rcfg.Nodes, router.Node{Name: node.name, Addr: node.relay.Addr()})
	}
	rt, err := router.Start(rcfg)
	if err != nil {
		return fail(err)
	}
	c.rt = rt
	return c, nil
}

func (c *Cluster) startFollower(i int) (*clusterNode, error) {
	name := fmt.Sprintf("node-%d", i)
	dir := filepath.Join(c.baseDir, name)
	svc, _, err := core.OpenService(core.ServiceOptions{Dir: dir, Sync: c.sync})
	if err != nil {
		return nil, err
	}
	link, err := newChaosRelay(c.nodes[0].relay.Addr(), 0)
	if err != nil {
		_ = svc.Close()
		return nil, err
	}
	fol, err := replica.StartFollower(svc, link.Addr(), c.reg, nil)
	if err != nil {
		link.Close()
		_ = svc.Close()
		return nil, err
	}
	fwd := replica.NewForwarder(c.nodes[0].relay.Addr())
	srv, err := server.New("127.0.0.1:0", svc, nil,
		server.WithForwarder(fwd),
		server.WithNodeStatus(func() server.NodeStatus {
			st := fol.Status()
			return server.NodeStatus{Role: "follower", CaughtUp: st.CaughtUp, LagNanos: st.LagNanos}
		}))
	if err != nil {
		fol.Close()
		_ = fwd.Close()
		link.Close()
		_ = svc.Close()
		return nil, err
	}
	relay, err := newChaosRelay(srv.Addr(), 0)
	if err != nil {
		_ = srv.Close()
		fol.Close()
		_ = fwd.Close()
		link.Close()
		_ = svc.Close()
		return nil, err
	}
	return &clusterNode{name: name, dir: dir, svc: svc, srv: srv, relay: relay, link: link, fol: fol, fwd: fwd}, nil
}

// RouterAddr is the client-facing address of the routing tier.
func (c *Cluster) RouterAddr() string { return c.rt.Addr() }

// NodeAddr is node i's direct (relay) address.
func (c *Cluster) NodeAddr(i int) string { return c.nodes[i].relay.Addr() }

// NodeService exposes node i's service for white-box assertions.
func (c *Cluster) NodeService(i int) *core.Service { return c.nodes[i].svc }

// Follower exposes node i's replication client (nil for the leader).
func (c *Cluster) Follower(i int) *replica.Follower { return c.nodes[i].fol }

// Hub exposes the leader's replication hub.
func (c *Cluster) Hub() *replica.Hub { return c.hub }

// Ring exposes the router's placement ring.
func (c *Cluster) Ring() *router.Ring { return c.rt.Ring() }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// SetFrameInterval paces every node's client-facing request path (0
// disables pacing).
func (c *Cluster) SetFrameInterval(d time.Duration) {
	for _, node := range c.nodes {
		node.relay.SetFrameInterval(d)
	}
}

// PartitionFollower cuts (or heals) follower i's replication link to the
// leader. Its client-facing address stays reachable: a partitioned
// follower keeps serving whatever it has, exactly like a real split.
func (c *Cluster) PartitionFollower(i int, on bool) {
	if c.nodes[i].link != nil {
		c.nodes[i].link.Partition(on)
	}
}

// KillLeader stops the leader's server and service without any graceful
// handoff. Followers and the router see connection failures; acknowledged
// writes are whatever the leader's WAL policy made durable.
func (c *Cluster) KillLeader() {
	leader := c.nodes[0]
	_ = leader.srv.Close()
	_ = leader.svc.Close()
	leader.srv, leader.svc, c.hub = nil, nil, nil
}

// RestartLeader reopens the leader from its data directory — recovering
// state from snapshots plus WAL replay — and repoints the stable leader
// VIP at the new incarnation. Followers resubscribe through their standing
// reconnect loops; the fresh hub's generations force them through snapshot
// re-sync, which is exactly the protocol's crash-recovery path.
func (c *Cluster) RestartLeader() error {
	leader := c.nodes[0]
	svc, _, err := core.OpenService(core.ServiceOptions{Dir: leader.dir, Sync: c.sync})
	if err != nil {
		return err
	}
	hub := replica.NewHub(svc, c.reg)
	srv, err := server.New("127.0.0.1:0", svc, nil,
		server.WithReplication(hub),
		server.WithNodeStatus(func() server.NodeStatus {
			return server.NodeStatus{Role: "leader", CaughtUp: true}
		}))
	if err != nil {
		_ = svc.Close()
		return err
	}
	leader.svc, leader.srv, c.hub = svc, srv, hub
	leader.relay.SetTarget(srv.Addr())
	return nil
}

// WaitCaughtUp blocks until every follower's cursor matches the leader's
// head for the catalog and each given repository, or the timeout expires.
func (c *Cluster) WaitCaughtUp(repoIDs []string, timeout time.Duration) error {
	streams := append([]string{replica.CatalogStream}, repoIDs...)
	deadline := time.Now().Add(timeout)
	for {
		behind := ""
		for _, node := range c.nodes[1:] {
			for _, id := range streams {
				if node.fol.Cursor(id) != c.hub.Head(id) {
					behind = fmt.Sprintf("%s on %q: follower %+v, leader %+v", node.name, id, node.fol.Cursor(id), c.hub.Head(id))
					break
				}
			}
			if behind != "" {
				break
			}
		}
		if behind == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("experiments: cluster not caught up after %v: %s", timeout, behind)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close tears the cluster down: router, then every node.
func (c *Cluster) Close() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if c.rt != nil {
		keep(c.rt.Close())
	}
	for _, node := range c.nodes {
		if node.relay != nil {
			node.relay.Close()
		}
		if node.fol != nil {
			node.fol.Close()
		}
		if node.fwd != nil {
			keep(node.fwd.Close())
		}
		if node.link != nil {
			node.link.Close()
		}
		if node.srv != nil {
			keep(node.srv.Close())
		}
		if node.svc != nil {
			keep(node.svc.Close())
		}
	}
	return first
}

// ClusterScalePoint is the read-throughput measurement at one cluster size.
type ClusterScalePoint struct {
	Nodes         int     `json:"nodes"`
	Repos         int     `json:"repos"`
	Workers       int     `json:"workers"`
	Searches      int     `json:"searches"`
	ThroughputQPS float64 `json:"throughput_qps"`
	// ScaleVsOne is this point's throughput relative to the 1-node point.
	ScaleVsOne float64 `json:"scale_vs_one"`
}

// ClusterReport is the BENCH_cluster.json document: read scale-out,
// replication lag, and zero-loss failover on the in-process cluster.
type ClusterReport struct {
	Seed           int64               `json:"seed"`
	Repos          int                 `json:"repos"`
	ObjectsPerRepo int                 `json:"objects_per_repo"`
	Scale          []ClusterScalePoint `json:"scale"`
	ScaleAt2       float64             `json:"scale_at_2"`
	ScaleAt4       float64             `json:"scale_at_4"`

	// Replication lag over a write burst, measured at the follower from
	// record timestamp to local apply.
	LagWrites int     `json:"lag_writes"`
	LagP50Ms  float64 `json:"lag_p50_ms"`
	LagP99Ms  float64 `json:"lag_p99_ms"`

	// Failover: sequential acknowledged writes through the router with a
	// leader kill and restart in the middle. Every acknowledged write must
	// be readable on the restarted leader and on a caught-up follower.
	AckedWrites    int  `json:"acked_writes"`
	DeniedWrites   int  `json:"denied_writes"`
	LeaderKills    int  `json:"leader_kills"`
	LostAcksLeader int  `json:"lost_acks_leader"`
	LostAcks       int  `json:"lost_acks"`
	SearchParity   bool `json:"search_parity"`
}

// clusterRepoIDs picks repo names whose ring placement spreads evenly
// across all nodes, so every cluster size has every node serving reads
// (random names can leave a node empty, which would understate scaling).
func clusterRepoIDs(ring *router.Ring, nodes, repos int) []string {
	perNode := repos / nodes
	extra := repos % nodes
	count := make(map[string]int, nodes)
	want := func(node string) int {
		w := perNode
		if extra > 0 && node == ring.Nodes()[0] {
			w += extra
		}
		return w
	}
	var out []string
	for i := 0; len(out) < repos && i < repos*1000; i++ {
		id := fmt.Sprintf("shard-repo-%04d", i)
		home := ring.Prefer(id)[0]
		if count[home] < want(home) {
			count[home]++
			out = append(out, id)
		}
	}
	return out
}

// clusterSeed populates repos through the router (mutations land on the
// leader) with small text objects and returns per-repo queries.
func clusterSeed(cfg Config, conn *client.Conn, repoIDs []string, objects int) (map[string][]string, []*core.Query, error) {
	ctx := context.Background()
	cc, err := tenancyClient(cfg)
	if err != nil {
		return nil, nil, err
	}
	acked := make(map[string][]string, len(repoIDs))
	var queries []*core.Query
	ropts := wireOpts(cfg)
	for r, repoID := range repoIDs {
		if err := conn.CreateRepository(ctx, repoID, ropts); err != nil {
			return nil, nil, fmt.Errorf("create %s: %w", repoID, err)
		}
		for j := 0; j < objects; j++ {
			obj := &core.Object{
				ID:    fmt.Sprintf("obj-%d", j),
				Owner: fmt.Sprintf("tenant-%d", r%8),
				Text:  fmt.Sprintf("shard %d document %d about topic-%d and topic-%d", r, j, j%7, (j+3)%7),
			}
			up, err := cc.PrepareUpdate(obj, dataKey())
			if err != nil {
				return nil, nil, err
			}
			if err := conn.Update(ctx, repoID, up); err != nil {
				return nil, nil, fmt.Errorf("seed %s/%s: %w", repoID, obj.ID, err)
			}
			acked[repoID] = append(acked[repoID], obj.ID)
			if j == 0 {
				q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: obj.Text}, cfg.K)
				if err != nil {
					return nil, nil, err
				}
				queries = append(queries, q)
			}
		}
	}
	return acked, queries, nil
}

// clusterScalePoint measures aggregate search throughput through the
// router at one cluster size, with every node's request path paced to the
// same per-node capacity.
func clusterScalePoint(cfg Config, dir string, nodes int, window time.Duration) (ClusterScalePoint, error) {
	pt := ClusterScalePoint{Nodes: nodes}
	cl, err := StartCluster(dir, nodes, wal.SyncNever)
	if err != nil {
		return pt, err
	}
	defer func() { _ = cl.Close() }()

	repoIDs := clusterRepoIDs(cl.Ring(), nodes, cfg.ClusterRepos)
	pt.Repos = len(repoIDs)
	conn, err := client.Dial(cl.RouterAddr(), nil)
	if err != nil {
		return pt, err
	}
	defer func() { _ = conn.Close() }()
	_, queries, err := clusterSeed(cfg, conn, repoIDs, cfg.ClusterObjects)
	if err != nil {
		return pt, err
	}
	if err := cl.WaitCaughtUp(repoIDs, 30*time.Second); err != nil {
		return pt, err
	}

	cl.SetFrameInterval(clusterFrameInterval)
	workers := 8 * nodes
	pt.Workers = workers
	counts := make([]int, workers)
	errs := make([]error, workers)
	conns := make([]*client.Conn, workers)
	for w := range conns {
		if conns[w], err = client.Dial(cl.RouterAddr(), nil); err != nil {
			return pt, err
		}
		defer func(c *client.Conn) { _ = c.Close() }(conns[w])
	}
	ctx := context.Background()
	stop := time.Now().Add(window)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- w }()
			for i := 0; time.Now().Before(stop); i++ {
				r := (w + i) % len(repoIDs)
				if _, err := conns[w].Search(ctx, repoIDs[r], queries[r]); err != nil {
					errs[w] = err
					return
				}
				counts[w]++
			}
		}(w)
	}
	start := time.Now()
	for w := 0; w < workers; w++ {
		<-done
	}
	wall := time.Since(start) // ≈ window; measured for honesty
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return pt, fmt.Errorf("scale@%d worker %d: %w", nodes, w, errs[w])
		}
		pt.Searches += counts[w]
	}
	pt.ThroughputQPS = float64(pt.Searches) / wall.Seconds()
	return pt, nil
}

// ClusterExperiment drives the full cluster benchmark: read scaling at
// each configured size, replication lag under a write burst, and the
// failover phase (leader kill + restart under a sequential writer) with
// its zero-acknowledged-loss and leader/follower search-parity checks.
func ClusterExperiment(cfg Config, dir string) (*ClusterReport, error) {
	if len(cfg.ClusterNodes) == 0 || cfg.ClusterRepos <= 0 {
		return nil, errors.New("experiments: ClusterNodes and ClusterRepos must be set")
	}
	report := &ClusterReport{
		Seed:           cfg.Seed,
		Repos:          cfg.ClusterRepos,
		ObjectsPerRepo: cfg.ClusterObjects,
	}
	window := time.Duration(cfg.ClusterReadMillis) * time.Millisecond

	// Phase 1: read scaling.
	for _, n := range cfg.ClusterNodes {
		ptDir := filepath.Join(dir, fmt.Sprintf("scale-%d", n))
		pt, err := clusterScalePoint(cfg, ptDir, n, window)
		if err != nil {
			return nil, fmt.Errorf("scale@%d: %w", n, err)
		}
		_ = os.RemoveAll(ptDir)
		if base := report.Scale; len(base) > 0 && base[0].ThroughputQPS > 0 {
			pt.ScaleVsOne = pt.ThroughputQPS / base[0].ThroughputQPS
		} else if len(report.Scale) == 0 {
			pt.ScaleVsOne = 1
		}
		report.Scale = append(report.Scale, pt)
		switch pt.Nodes {
		case 2:
			report.ScaleAt2 = pt.ScaleVsOne
		case 4:
			report.ScaleAt4 = pt.ScaleVsOne
		}
	}

	// Phase 2 + 3: replication lag, then failover, on one 2-node cluster
	// with full durability (the failover guarantee is a WAL guarantee).
	if err := clusterFailoverPhase(cfg, filepath.Join(dir, "failover"), report); err != nil {
		return nil, err
	}
	return report, nil
}

// clusterFailoverPhase runs the lag burst and the leader-kill ledger check
// on a 2-node SyncAlways cluster.
func clusterFailoverPhase(cfg Config, dir string, report *ClusterReport) (err error) {
	ctx := context.Background()
	cl, err := StartCluster(dir, 2, wal.SyncAlways)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cl.Close(); err == nil {
			err = cerr
		}
	}()
	cc, err := tenancyClient(cfg)
	if err != nil {
		return err
	}
	conn, err := client.Dial(cl.RouterAddr(), nil)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	const repoID = "failover-repo"
	if err := conn.CreateRepository(ctx, repoID, wireOpts(cfg)); err != nil {
		return err
	}

	// Lag burst: sequential writes while the follower replicates live.
	writes := cfg.ClusterWrites
	for i := 0; i < writes; i++ {
		up, err := cc.PrepareUpdate(&core.Object{
			ID:    fmt.Sprintf("burst-%04d", i),
			Owner: "tenant-0",
			Text:  fmt.Sprintf("burst document %d", i),
		}, dataKey())
		if err != nil {
			return err
		}
		if err := conn.Update(ctx, repoID, up); err != nil {
			return fmt.Errorf("burst write %d: %w", i, err)
		}
	}
	if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
		return err
	}
	fol := cl.Follower(1)
	report.LagWrites = writes
	report.LagP50Ms = ms(fol.LagQuantile(0.50))
	report.LagP99Ms = ms(fol.LagQuantile(0.99))

	// Failover ledger: every write retries until acknowledged; the leader
	// dies after the first third and comes back under the same VIP. An
	// acknowledged write that later cannot be read back is a lost ack.
	var acked []string
	killAt := writes / 3
	deadline := time.Now().Add(2 * time.Minute)
	for i := 0; i < writes; i++ {
		objID := fmt.Sprintf("failover-%04d", i)
		up, err := cc.PrepareUpdate(&core.Object{
			ID:    objID,
			Owner: "tenant-0",
			Text:  fmt.Sprintf("failover document %d survives the crash", i),
		}, dataKey())
		if err != nil {
			return err
		}
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("failover writer stalled at %s after %d denials", objID, report.DeniedWrites)
			}
			if err := conn.Update(ctx, repoID, up); err == nil {
				acked = append(acked, objID)
				break
			}
			report.DeniedWrites++
			time.Sleep(25 * time.Millisecond)
		}
		if i == killAt {
			cl.KillLeader()
			report.LeaderKills++
			if err := cl.RestartLeader(); err != nil {
				return fmt.Errorf("restart leader: %w", err)
			}
		}
	}
	report.AckedWrites = len(acked)
	if err := cl.WaitCaughtUp([]string{repoID}, 60*time.Second); err != nil {
		return err
	}

	// Read every acknowledged id back from both nodes directly.
	leaderConn, err := client.Dial(cl.NodeAddr(0), nil)
	if err != nil {
		return err
	}
	defer func() { _ = leaderConn.Close() }()
	folConn, err := client.Dial(cl.NodeAddr(1), nil)
	if err != nil {
		return err
	}
	defer func() { _ = folConn.Close() }()
	for _, objID := range acked {
		if _, _, err := leaderConn.Get(ctx, repoID, objID); err != nil {
			report.LostAcksLeader++
			report.LostAcks++
			continue
		}
		if _, _, err := folConn.Get(ctx, repoID, objID); err != nil {
			report.LostAcks++
		}
	}

	// Search parity: the same query must return the same ranked ids from
	// the leader and the caught-up follower.
	q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "failover document survives the crash"}, cfg.K)
	if err != nil {
		return err
	}
	leaderHits, err := leaderConn.Search(ctx, repoID, q)
	if err != nil {
		return fmt.Errorf("parity search on leader: %w", err)
	}
	folHits, err := folConn.Search(ctx, repoID, q)
	if err != nil {
		return fmt.Errorf("parity search on follower: %w", err)
	}
	report.SearchParity = reflect.DeepEqual(leaderHits, folHits)
	return nil
}

// WriteClusterReport renders the human-readable report plus the
// machine-parsable summary line scripts/check.sh greps.
func WriteClusterReport(w io.Writer, r *ClusterReport) {
	fmt.Fprintf(w, "Cluster: %d repositories x %d objects, WAL-shipping replication behind a consistent-hash router\n",
		r.Repos, r.ObjectsPerRepo)
	for _, pt := range r.Scale {
		fmt.Fprintf(w, "  read scale @%d node(s): %d searches by %d workers -> %.0f qps (%.2fx vs 1 node)\n",
			pt.Nodes, pt.Searches, pt.Workers, pt.ThroughputQPS, pt.ScaleVsOne)
	}
	fmt.Fprintf(w, "  replication lag over %d writes: p50 %.3f ms, p99 %.3f ms\n",
		r.LagWrites, r.LagP50Ms, r.LagP99Ms)
	fmt.Fprintf(w, "  failover: %d acked writes across %d leader kill(s), %d denied during downtime, %d lost (leader %d)\n",
		r.AckedWrites, r.LeaderKills, r.DeniedWrites, r.LostAcks, r.LostAcksLeader)
	parity := "ok"
	if !r.SearchParity {
		parity = "MISMATCH"
	}
	fmt.Fprintf(w, "  leader/follower search parity: %s\n", parity)
	// Machine-parsable summary for scripts/check.sh's cluster smoke gate.
	fmt.Fprintf(w,
		"cluster: seed=%d nodes=%d scale2=%.2f scale4=%.2f lag_p50_ms=%.3f lag_p99_ms=%.3f acked=%d lost_acks=%d leader_kills=%d parity=%s\n",
		r.Seed, maxClusterNodes(r), r.ScaleAt2, r.ScaleAt4,
		r.LagP50Ms, r.LagP99Ms, r.AckedWrites, r.LostAcks,
		r.LeaderKills, parity)
}

func maxClusterNodes(report *ClusterReport) int {
	n := 0
	for _, pt := range report.Scale {
		if pt.Nodes > n {
			n = pt.Nodes
		}
	}
	return n
}
