package experiments

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/dataset"
	"mie/internal/dpe"
	"mie/internal/eval"
	"mie/internal/fusion"
	"mie/internal/imaging"
	"mie/internal/index"
)

// The ablations quantify the design choices DESIGN.md calls out:
//
//  1. Dense-DPE output size M — encoding noise vs retrieval precision
//     (the paper: precision holds "as long as encoded features are at
//     least as large as their plaintext versions").
//  2. Dense-DPE threshold t — the security/utility dial of Definition 1.
//  3. Server-side Hamming k-means over encodings vs client-side Euclidean
//     k-means over plaintexts (what outsourcing training costs in mAP).
//  4. Champion posting-list size R — memory bound vs precision/latency.
//  5. Rank-fusion method — LogISR (the paper's choice) vs ISR vs RRF.

// AblationRow is one measured configuration of one ablation.
type AblationRow struct {
	Ablation string
	Setting  string
	MAP      float64
	Latency  time.Duration
}

// mieMAPWithParams builds a MIE pipeline with explicit DPE params over the
// Holidays benchmark and returns its mAP.
func mieMAPWithParams(cfg Config, set *dataset.HolidaysSet, dense dpe.DenseParams, repoID string) (float64, error) {
	client, err := core.NewClient(core.ClientConfig{
		Key:     core.RepositoryKey{Master: masterKey(1)},
		Dense:   dense,
		Pyramid: cfg.pyramid(),
	})
	if err != nil {
		return 0, err
	}
	repo, err := core.NewRepository(repoID, core.RepositoryOptions{Vocab: cfg.vocab()})
	if err != nil {
		return 0, err
	}
	for _, obj := range set.Objects {
		up, err := client.PrepareUpdate(obj, dataKey())
		if err != nil {
			return 0, err
		}
		if err := repo.Update(up); err != nil {
			return 0, err
		}
	}
	if err := repo.Train(); err != nil {
		return 0, err
	}
	k := len(set.Objects)
	ranks := make([][]string, len(set.Queries))
	truths := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		truths[i] = q.Relevant
		query, err := client.PrepareQuery(q.Query, k)
		if err != nil {
			return 0, err
		}
		hits, err := repo.Search(query)
		if err != nil {
			return 0, err
		}
		ids := make([]string, len(hits))
		for j, h := range hits {
			ids[j] = h.ObjectID
		}
		ranks[i] = ids
	}
	return eval.MeanAveragePrecision(ranks, truths)
}

// AblationEncodingSize sweeps Dense-DPE's output size M.
func AblationEncodingSize(cfg Config) ([]AblationRow, error) {
	set := dataset.Holidays(dataset.HolidaysParams{
		Groups: cfg.HolidayGroups, PerGroup: cfg.HolidayPerGroup,
		ImageSize: cfg.ImageSize, Seed: cfg.Seed,
	})
	var rows []AblationRow
	for _, m := range []int{128, 512, 2048, 4096} {
		start := time.Now()
		mAP, err := mieMAPWithParams(cfg, set,
			dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: m, Threshold: 0.5},
			fmt.Sprintf("abl-m-%d", m))
		if err != nil {
			return nil, fmt.Errorf("ablation M=%d: %w", m, err)
		}
		rows = append(rows, AblationRow{
			Ablation: "encoding-size",
			Setting:  fmt.Sprintf("M=%d bits", m),
			MAP:      mAP,
			Latency:  time.Since(start),
		})
	}
	return rows, nil
}

// AblationThreshold sweeps Dense-DPE's distance threshold t: small t leaks
// less (distances hidden sooner) but erases the structure clustering needs.
func AblationThreshold(cfg Config) ([]AblationRow, error) {
	set := dataset.Holidays(dataset.HolidaysParams{
		Groups: cfg.HolidayGroups, PerGroup: cfg.HolidayPerGroup,
		ImageSize: cfg.ImageSize, Seed: cfg.Seed,
	})
	var rows []AblationRow
	for _, t := range []float64{0.2, 0.35, 0.5, 0.7, 1.0} {
		mAP, err := mieMAPWithParams(cfg, set,
			dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 2048, Threshold: t},
			fmt.Sprintf("abl-t-%v", t))
		if err != nil {
			return nil, fmt.Errorf("ablation t=%v: %w", t, err)
		}
		rows = append(rows, AblationRow{
			Ablation: "threshold",
			Setting:  fmt.Sprintf("t=%.2f", t),
			MAP:      mAP,
		})
	}
	return rows, nil
}

// AblationTrainingSpace compares MIE's server-side Hamming k-means over
// encodings against the plaintext Euclidean pipeline on identical data —
// the retrieval price of outsourcing training.
func AblationTrainingSpace(cfg Config) ([]AblationRow, error) {
	set := dataset.Holidays(dataset.HolidaysParams{
		Groups: cfg.HolidayGroups, PerGroup: cfg.HolidayPerGroup,
		ImageSize: cfg.ImageSize, Seed: cfg.Seed,
	})
	k := len(set.Objects)
	truths := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		truths[i] = q.Relevant
	}
	plainRanks, err := plaintextRankings(cfg, set, k)
	if err != nil {
		return nil, err
	}
	plainMAP, err := eval.MeanAveragePrecision(plainRanks, truths)
	if err != nil {
		return nil, err
	}
	hamMAP, err := mieMAPWithParams(cfg, set,
		dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 2048, Threshold: 0.5},
		"abl-space-hamming")
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Ablation: "training-space", Setting: "Euclidean on plaintexts (client-side)", MAP: plainMAP},
		{Ablation: "training-space", Setting: "Hamming on DPE encodings (cloud-side)", MAP: hamMAP},
	}, nil
}

// AblationChampionSize sweeps the champion posting-list bound R on a text
// corpus, measuring precision@10 against the unbounded index and the query
// latency.
func AblationChampionSize(cfg Config, spillDir string) ([]AblationRow, error) {
	corpus := dataset.Flickr(dataset.FlickrParams{N: cfg.SearchRepoSize * 2, ImageSize: cfg.ImageSize, Seed: cfg.Seed})
	sparse := dpe.NewSparse(crypto.DeriveKey(masterKey(1), "abl"))
	docs := make(map[index.DocID]map[index.Term]uint64, len(corpus))
	for _, obj := range corpus {
		terms := make(map[index.Term]uint64)
		for tok, f := range tokenize(sparse, obj.Text) {
			terms[tok] = f
		}
		docs[index.DocID(obj.ID)] = terms
	}
	query := tokenize(sparse, "beach ocean holiday sunny travel photo")

	// Reference: unbounded index.
	ref, err := index.New(index.Options{})
	if err != nil {
		return nil, err
	}
	for id, terms := range docs {
		if err := ref.Add(id, terms); err != nil {
			return nil, err
		}
	}
	refTop := ref.Search(query, 10)
	refIDs := make([]string, len(refTop))
	for i, r := range refTop {
		refIDs[i] = string(r.Doc)
	}

	var rows []AblationRow
	for _, champ := range []int{5, 20, 50, 200} {
		ix, err := index.New(index.Options{ChampionSize: champ, SpillDir: fmt.Sprintf("%s/champ-%d", spillDir, champ)})
		if err != nil {
			return nil, err
		}
		for id, terms := range docs {
			if err := ix.Add(id, terms); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		top := ix.Search(query, 10)
		lat := time.Since(start)
		got := make([]string, len(top))
		for i, r := range top {
			got[i] = string(r.Doc)
		}
		rows = append(rows, AblationRow{
			Ablation: "champion-size",
			Setting:  "R=" + strconv.Itoa(champ),
			MAP:      eval.PrecisionAtK(got, refIDs, 10),
			Latency:  lat,
		})
		if err := ix.Close(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func tokenize(sparse *dpe.Sparse, s string) map[index.Term]uint64 {
	out := make(map[index.Term]uint64)
	for _, w := range splitWords(s) {
		out[index.Term(sparse.Encode(w).String())]++
	}
	return out
}

func splitWords(s string) []string {
	var out []string
	word := ""
	for _, r := range s {
		if r == ' ' {
			if word != "" {
				out = append(out, word)
			}
			word = ""
			continue
		}
		word += string(r)
	}
	if word != "" {
		out = append(out, word)
	}
	return out
}

// AblationFusion compares the three fusion formulas on the multimodal
// Flickr corpus: same per-modality rankings, different merge.
func AblationFusion(cfg Config) ([]AblationRow, error) {
	stack, err := newMIE(cfg, nil, "abl-fusion")
	if err != nil {
		return nil, err
	}
	corpus := dataset.Flickr(dataset.FlickrParams{N: cfg.SearchRepoSize, ImageSize: cfg.ImageSize, Seed: cfg.Seed})
	for _, obj := range corpus {
		if err := stack.add(obj); err != nil {
			return nil, err
		}
	}
	if err := stack.repo.Train(); err != nil {
		return nil, err
	}
	// Relevance proxy: objects of the query's topic (same generator class).
	queryTopic := 0
	var relevant []string
	for i, obj := range corpus {
		if i%8 == queryTopic {
			relevant = append(relevant, obj.ID)
		}
	}
	queryObj := dataset.Flickr(dataset.FlickrParams{N: 1, ImageSize: cfg.ImageSize, Seed: cfg.Seed + 31})[0]
	q, err := stack.client.PrepareQuery(queryObj, cfg.SearchRepoSize)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, m := range []struct {
		name   string
		method fusion.Method
	}{
		{"LogISR (paper)", fusion.LogISR},
		{"ISR", fusion.ISR},
		{"RRF", fusion.RRF},
	} {
		hits, err := stack.repo.SearchWithFusion(q, m.method)
		if err != nil {
			return nil, err
		}
		ids := make([]string, len(hits))
		for i, h := range hits {
			ids[i] = h.ObjectID
		}
		rows = append(rows, AblationRow{
			Ablation: "fusion",
			Setting:  m.name,
			MAP:      eval.AveragePrecision(ids, relevant),
		})
	}
	return rows, nil
}

// WriteAblationReport prints ablation rows.
func WriteAblationReport(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "== Ablation: %s ==\n", title)
	for _, r := range rows {
		if r.Latency > 0 {
			fmt.Fprintf(w, "  %-40s quality=%.4f latency=%v\n", r.Setting, r.MAP, r.Latency.Round(time.Microsecond))
		} else {
			fmt.Fprintf(w, "  %-40s quality=%.4f\n", r.Setting, r.MAP)
		}
	}
}
