package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestIncrementalExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	cfg := Quick()
	report, err := IncrementalExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Mode != "incremental" {
		t.Errorf("second train resolved as %q, want incremental (drift %.4f/%.4f)",
			report.Mode, report.DriftMeanShift, report.DriftReassigned)
	}
	if report.DeltaDocs != report.ChurnDocs {
		t.Errorf("delta docs = %d, want churn size %d", report.DeltaDocs, report.ChurnDocs)
	}
	if report.Speedup <= 1 {
		t.Errorf("incremental retrain not faster: speedup %.2fx (full %.1f ms, incremental %.1f ms)",
			report.Speedup, report.FullRetrainMs, report.IncrementalRetrainMs)
	}
	// The headline precision claim: incremental training costs at most a
	// couple mAP points vs the rebuild (quick scale is noisy, allow 5).
	if report.MAPDelta > 0.05 {
		t.Errorf("mAP diverged: full %.4f vs incremental %.4f", report.MAPFullRebuild, report.MAPIncremental)
	}
	// Compaction must not change what search returns.
	if d := report.MAPCompacted - report.MAPIncremental; d > 1e-9 || d < -1e-9 {
		t.Errorf("compaction changed mAP: %.6f -> %.6f", report.MAPIncremental, report.MAPCompacted)
	}
	if report.SealedSegments < 1 {
		t.Errorf("no sealed segments after retrain: %+v", report)
	}

	var buf bytes.Buffer
	WriteIncrementalReport(&buf, report)
	for _, want := range []string{"speedup", "mAP", "compaction"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report text missing %q:\n%s", want, buf.String())
		}
	}
}
