package experiments

import (
	"fmt"
	"time"

	"mie/internal/dataset"
)

// Table1Row is one row of Table I: a scheme's asymptotic profile. The
// analytical columns restate the paper's analysis; the empirical columns
// are measured by Table1 to confirm the shape on this implementation.
type Table1Row struct {
	Scheme        string
	SearchTime    string
	UpdateTime    string
	ClientStorage string
	QueryType     string
	SearchLeakage string
	UpdateLeakage string
}

// Table1Static returns the analytical rows for the three implemented
// schemes (the literature rows of the full table are commentary, not code).
func Table1Static() []Table1Row {
	return []Table1Row{
		{
			Scheme:        SchemeMSSE,
			SearchTime:    "O(m/n)",
			UpdateTime:    "O(m/n)",
			ClientStorage: "O(n)",
			QueryType:     "Multimodal",
			SearchLeakage: "ID(w), ID(d), freq(w)",
			UpdateLeakage: "-",
		},
		{
			Scheme:        SchemeHomMSSE,
			SearchTime:    "O(m/n)",
			UpdateTime:    "O(m/n)",
			ClientStorage: "O(n)",
			QueryType:     "Multimodal",
			SearchLeakage: "ID(w), ID(d)",
			UpdateLeakage: "-",
		},
		{
			Scheme:        SchemeMIE,
			SearchTime:    "O(m/n)",
			UpdateTime:    "O(m/n)",
			ClientStorage: "O(1)",
			QueryType:     "Multimodal",
			SearchLeakage: "ID(w), ID(d)",
			UpdateLeakage: "ID(w), freq(w)",
		},
	}
}

// Table1Scaling holds the empirical check: per-operation latency at two
// repository sizes. Sub-linear (indexed) search should stay roughly flat
// when the repository doubles; a linear scan should roughly double.
type Table1Scaling struct {
	SmallN, LargeN            int
	IndexedSearchSmall        time.Duration
	IndexedSearchLarge        time.Duration
	LinearSearchSmall         time.Duration
	LinearSearchLarge         time.Duration
	UpdateSmall, UpdateLarge  time.Duration
	IndexedRatio, LinearRatio float64
	UpdateRatio               float64
	// SpeedupLarge is linear/indexed search time at the larger repository —
	// the concrete payoff of the O(m/n) index over the O(|F|) scan.
	SpeedupLarge float64
}

// Table1Empirical measures MIE's per-operation scaling, demonstrating the
// O(m/n) search column: trained (indexed) search cost grows far slower than
// repository size, while the untrained linear fallback grows linearly.
func Table1Empirical(cfg Config) (*Table1Scaling, error) {
	small := cfg.SearchRepoSize
	large := small * 2
	query := dataset.Flickr(dataset.FlickrParams{N: 1, ImageSize: cfg.ImageSize, Seed: cfg.Seed + 50})[0]

	const reps = 20
	measure := func(n int, train bool) (search, update time.Duration, err error) {
		stack, err := newMIE(cfg, nil, fmt.Sprintf("t1-%d-%v", n, train))
		if err != nil {
			return 0, 0, err
		}
		corpus := dataset.Flickr(dataset.FlickrParams{N: n, ImageSize: cfg.ImageSize, Seed: cfg.Seed})
		for _, obj := range corpus {
			if err := stack.add(obj); err != nil {
				return 0, 0, err
			}
		}
		if train {
			if err := stack.repo.Train(); err != nil {
				return 0, 0, err
			}
		}
		for i := 0; i < reps; i++ {
			d, err := mieSearchOnce(stack, query, cfg.K)
			if err != nil {
				return 0, 0, err
			}
			search += d
		}
		search /= reps
		// One more update, timed end to end (server side included).
		extra := dataset.Flickr(dataset.FlickrParams{N: 1, ImageSize: cfg.ImageSize, Seed: cfg.Seed + 99})[0]
		extra.ID = fmt.Sprintf("extra-%d", n)
		start := time.Now()
		if err := stack.add(extra); err != nil {
			return 0, 0, err
		}
		update = time.Since(start)
		return search, update, nil
	}

	out := &Table1Scaling{SmallN: small, LargeN: large}
	var err error
	if out.IndexedSearchSmall, out.UpdateSmall, err = measure(small, true); err != nil {
		return nil, err
	}
	if out.IndexedSearchLarge, out.UpdateLarge, err = measure(large, true); err != nil {
		return nil, err
	}
	if out.LinearSearchSmall, _, err = measure(small, false); err != nil {
		return nil, err
	}
	if out.LinearSearchLarge, _, err = measure(large, false); err != nil {
		return nil, err
	}
	out.IndexedRatio = ratio(out.IndexedSearchLarge, out.IndexedSearchSmall)
	out.LinearRatio = ratio(out.LinearSearchLarge, out.LinearSearchSmall)
	out.UpdateRatio = ratio(out.UpdateLarge, out.UpdateSmall)
	out.SpeedupLarge = ratio(out.LinearSearchLarge, out.IndexedSearchLarge)
	return out, nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
