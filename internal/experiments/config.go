// Package experiments reproduces every table and figure of the paper's
// evaluation (§VII). Each experiment is a pure function from a Config to
// structured result rows, so the same code drives cmd/mie-bench, the
// testing.B benchmarks in the repository root, and EXPERIMENTS.md.
//
// The paper ran on a Nexus 7, a MacBook Pro and an EC2 m3.large; this
// reproduction runs all computation on one machine and maps measured work
// onto those devices through internal/device profiles. Absolute numbers
// therefore differ from the paper; the comparisons the figures make —
// which scheme wins, by how much, where the crossovers are — are preserved.
// The default Config scales the workloads down ~10x so the full suite runs
// in minutes; PaperScale restores the published sizes.
package experiments

import (
	"mie/internal/cluster"
	"mie/internal/imaging"
)

// Config parameterizes all experiments.
type Config struct {
	// Sizes is the corpus-size sweep of Figures 2, 3 and 6 (paper:
	// 1000, 2000, 3000).
	Sizes []int
	// SearchRepoSize is the repository size for Figure 5 (paper: 1000).
	SearchRepoSize int
	// MultiUserSize is the per-client upload count for Figure 4 (paper:
	// 1000 each).
	MultiUserSize int
	// HolidayGroups and HolidayPerGroup shape the Table III benchmark
	// (real Holidays: 500 groups, 1491 photos, ~3 per group).
	HolidayGroups   int
	HolidayPerGroup int
	// ImageSize is the synthetic photo side length.
	ImageSize int
	// Scales is the dense-pyramid scale set.
	Scales []int
	// Words is the visual vocabulary size selected by the flat k-means
	// training step (paper: 1000).
	Words int
	// TrainIters caps the flat k-means iterations (0 = library default).
	TrainIters int
	// TreeBranch/TreeHeight shape the lookup tree built over the words
	// (paper: 10 and 3).
	TreeBranch int
	TreeHeight int
	// PaillierBits sizes the Hom-MSSE keys (paper-equivalent: 1024).
	PaillierBits int
	// K is the top-k of search experiments (paper: 20).
	K int
	// ANNCorpus and ANNQueries size the approximate-dense-search sweep
	// (mie-bench -ann): how many synthetic codes the candidate index holds
	// and how many queries score each (tables, bits, probes) point.
	ANNCorpus  int
	ANNQueries int
	// TenancyRepos is how many repositories the multi-tenancy benchmark
	// (mie-bench -tenancy) hosts on one lazily-activating service.
	TenancyRepos int
	// ClusterNodes is the cluster-size sweep of the read-scaling phase of
	// the replication benchmark (mie-bench -cluster).
	ClusterNodes []int
	// ClusterRepos and ClusterObjects shape the replicated corpus: how
	// many repositories spread across the ring and how many text objects
	// each holds.
	ClusterRepos   int
	ClusterObjects int
	// ClusterWrites sizes the replication-lag burst and the failover
	// ledger (writes acknowledged across a leader kill and restart).
	ClusterWrites int
	// ClusterReadMillis is the wall-clock window of each read-scaling
	// measurement.
	ClusterReadMillis int
	// Seed drives all dataset generation.
	Seed int64
}

// Default returns the scaled-down configuration (~10x smaller than the
// paper) used by `go test -bench` and `mie-bench` without flags.
func Default() Config {
	return Config{
		Sizes:             []int{100, 200, 300},
		SearchRepoSize:    100,
		MultiUserSize:     100,
		HolidayGroups:     30,
		HolidayPerGroup:   3,
		ImageSize:         48,
		Scales:            []int{16, 32},
		Words:             200,
		TrainIters:        15,
		TreeBranch:        4,
		TreeHeight:        3,
		PaillierBits:      512,
		K:                 10,
		ANNCorpus:         10000,
		ANNQueries:        200,
		TenancyRepos:      10000,
		ClusterNodes:      []int{1, 2, 4},
		ClusterRepos:      8,
		ClusterObjects:    10,
		ClusterWrites:     120,
		ClusterReadMillis: 1500,
		Seed:              1,
	}
}

// PaperScale returns the published workload sizes. Expect long runtimes:
// Hom-MSSE at 3000 objects is the experiment that drained a tablet battery.
func PaperScale() Config {
	return Config{
		Sizes:             []int{1000, 2000, 3000},
		SearchRepoSize:    1000,
		MultiUserSize:     1000,
		HolidayGroups:     500,
		HolidayPerGroup:   3,
		ImageSize:         128,
		Scales:            []int{16, 32, 64},
		Words:             1000,
		TrainIters:        25,
		TreeBranch:        10,
		TreeHeight:        3,
		PaillierBits:      1024,
		K:                 20,
		ANNCorpus:         100000,
		ANNQueries:        500,
		TenancyRepos:      100000,
		ClusterNodes:      []int{1, 2, 4},
		ClusterRepos:      16,
		ClusterObjects:    20,
		ClusterWrites:     300,
		ClusterReadMillis: 3000,
		Seed:              1,
	}
}

// PaperSample returns the paper's *parameters* (image size, vocabulary,
// 1024-bit Paillier) on a 100-object sample: per-object costs match the
// published workload, so figures extrapolate linearly to the 1000-3000
// sweeps without the multi-hour runtime.
func PaperSample() Config {
	cfg := PaperScale()
	cfg.Sizes = []int{100}
	cfg.SearchRepoSize = 100
	cfg.MultiUserSize = 100
	cfg.HolidayGroups = 50
	cfg.ANNCorpus = 10000
	cfg.ANNQueries = 200
	cfg.TenancyRepos = 10000
	cfg.ClusterRepos = 8
	cfg.ClusterObjects = 10
	cfg.ClusterWrites = 120
	cfg.ClusterReadMillis = 1500
	return cfg
}

// Quick returns a minimal configuration for smoke tests.
func Quick() Config {
	return Config{
		Sizes:             []int{20, 40},
		SearchRepoSize:    20,
		MultiUserSize:     10,
		HolidayGroups:     8,
		HolidayPerGroup:   3,
		ImageSize:         32,
		Scales:            []int{16},
		Words:             40,
		TrainIters:        10,
		TreeBranch:        3,
		TreeHeight:        2,
		PaillierBits:      512,
		K:                 5,
		ANNCorpus:         2000,
		ANNQueries:        50,
		TenancyRepos:      500,
		ClusterNodes:      []int{1, 2},
		ClusterRepos:      4,
		ClusterObjects:    6,
		ClusterWrites:     40,
		ClusterReadMillis: 700,
		Seed:              1,
	}
}

func (c Config) pyramid() imaging.PyramidParams {
	return imaging.PyramidParams{Scales: c.Scales}
}

func (c Config) tree() cluster.TreeParams {
	return cluster.TreeParams{Branch: c.TreeBranch, Height: c.TreeHeight, Seed: c.Seed}
}

func (c Config) vocab() cluster.VocabParams {
	return cluster.VocabParams{
		Words:   c.Words,
		Tree:    c.tree(),
		Seed:    c.Seed,
		MaxIter: c.TrainIters,
	}
}
