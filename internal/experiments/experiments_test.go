package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mie/internal/device"
)

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	dense := rows[0]
	if dense.D0 != 0 {
		t.Errorf("Dense D0 = %v, want 0", dense.D0)
	}
	if dense.D03 < 0.2 || dense.D03 > 0.4 {
		t.Errorf("Dense D03 = %v, want ~0.3 (preserved)", dense.D03)
	}
	if dense.D07 < 0.4 || dense.D07 > 0.65 {
		t.Errorf("Dense D07 = %v, want saturated near 0.5", dense.D07)
	}
	if dense.D10 < 0.4 || dense.D10 > 0.65 {
		t.Errorf("Dense D10 = %v, want saturated near 0.5", dense.D10)
	}
	if dense.PFV < 0.35 || dense.PFV > 0.65 {
		t.Errorf("Dense PFV = %v, want ~0.5 (encoding unrelated to plaintext)", dense.PFV)
	}
	sparse := rows[1]
	if sparse.D0 != 0 || sparse.D03 != 1 || sparse.D07 != 1 || sparse.D10 != 1 {
		t.Errorf("Sparse row wrong: %+v", sparse)
	}
}

func TestUpdateExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	cfg := Quick()
	rows, err := UpdateExperiment(device.Desktop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Schemes())*len(cfg.Sizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	byScheme := make(map[string]UpdateRow)
	for _, r := range rows {
		if r.N == cfg.Sizes[len(cfg.Sizes)-1] {
			byScheme[r.Scheme] = r
		}
	}
	// The paper's headline: MIE pays no client-side training and its total
	// beats Hom-MSSE by a wide margin.
	if byScheme[SchemeMIE].Train != 0 {
		t.Errorf("MIE Train = %v, want 0 (outsourced)", byScheme[SchemeMIE].Train)
	}
	if byScheme[SchemeMSSE].Train == 0 {
		t.Error("MSSE must pay client-side training")
	}
	if byScheme[SchemeHomMSSE].Total <= byScheme[SchemeMIE].Total {
		t.Errorf("Hom-MSSE total (%v) should exceed MIE total (%v)",
			byScheme[SchemeHomMSSE].Total, byScheme[SchemeMIE].Total)
	}
	var buf bytes.Buffer
	WriteUpdateReport(&buf, "Figure 3 (desktop)", rows)
	if !strings.Contains(buf.String(), "MIE") {
		t.Error("report missing MIE row")
	}
}

func TestSearchExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	cfg := Quick()
	rows, err := SearchExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 schemes x 2 devices)", len(rows))
	}
	byKey := make(map[string]SearchRow)
	for _, r := range rows {
		byKey[r.Scheme+"/"+r.Device] = r
	}
	// Mobile must be slower than desktop for every scheme.
	for _, s := range Schemes() {
		d := byKey[s+"/"+device.Desktop.Name]
		m := byKey[s+"/"+device.Mobile.Name]
		if m.Total <= d.Total {
			t.Errorf("%s: mobile total (%v) should exceed desktop (%v)", s, m.Total, d.Total)
		}
	}
	var buf bytes.Buffer
	WriteSearchReport(&buf, rows)
	if !strings.Contains(buf.String(), "Hom-MSSE") {
		t.Error("report missing Hom-MSSE")
	}
}

func TestMultiUserExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	cfg := Quick()
	rows, err := MultiUserExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total == 0 {
			t.Errorf("%s total = 0", r.Device)
		}
		if r.N != cfg.MultiUserSize {
			t.Errorf("%s N = %d", r.Device, r.N)
		}
	}
	var buf bytes.Buffer
	WriteMultiUserReport(&buf, rows)
	if !strings.Contains(buf.String(), "mobile") {
		t.Error("report missing mobile row")
	}
}

func TestPrecisionExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	cfg := Quick()
	rows, err := PrecisionExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 systems", len(rows))
	}
	maps := make(map[string]float64)
	for _, r := range rows {
		if r.MAP <= 0 || r.MAP > 1 {
			t.Errorf("%s mAP = %v out of range", r.System, r.MAP)
		}
		maps[r.System] = r.MAP
	}
	// Table III's claim: encryption does not meaningfully hurt precision.
	// On the tiny Quick benchmark allow a generous band.
	if maps[SchemeMIE] < maps[SchemePlain]-0.25 {
		t.Errorf("MIE mAP %v far below plaintext %v", maps[SchemeMIE], maps[SchemePlain])
	}
	var buf bytes.Buffer
	WritePrecisionReport(&buf, rows)
	if !strings.Contains(buf.String(), "Plaintext") {
		t.Error("report missing plaintext row")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1Static()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2].Scheme != SchemeMIE || rows[2].ClientStorage != "O(1)" {
		t.Errorf("MIE row wrong: %+v", rows[2])
	}
	if testing.Short() {
		t.Skip("slow scaling measurement")
	}
	cfg := Quick()
	scaling, err := Table1Empirical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scaling.IndexedSearchSmall <= 0 || scaling.LinearSearchLarge <= 0 {
		t.Error("non-positive timings")
	}
	var buf bytes.Buffer
	WriteTable1Report(&buf, rows, scaling)
	if !strings.Contains(buf.String(), "Empirical check") {
		t.Error("report missing scaling section")
	}
}

func TestEnergyReportMarksShutdown(t *testing.T) {
	rows := []UpdateRow{
		{Scheme: SchemeMIE, N: 1000, EnergyAddMAh: 100},
		{Scheme: SchemeHomMSSE, N: 3000, EnergyAddMAh: 4000, BatteryExceeded: true},
	}
	var buf bytes.Buffer
	WriteEnergyReport(&buf, rows, 3448)
	if !strings.Contains(buf.String(), "DEVICE DEAD") {
		t.Error("shutdown marker missing")
	}
}

func TestAttackExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	cfg := Quick()
	rows, err := AttackExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone non-decreasing recovery, and the cliff shape: modest
	// knowledge recovers little, full knowledge much more.
	for i := 1; i < len(rows); i++ {
		if rows[i].RecoveryRate+1e-9 < rows[i-1].RecoveryRate {
			t.Errorf("recovery not monotone at %v: %v < %v",
				rows[i].KnownFraction, rows[i].RecoveryRate, rows[i-1].RecoveryRate)
		}
	}
	if rows[0].RecoveryRate > 0.3 {
		t.Errorf("10%% knowledge recovered %v — attack too strong", rows[0].RecoveryRate)
	}
	if rows[len(rows)-1].RecoveryRate <= rows[0].RecoveryRate {
		t.Error("full knowledge should beat 10% knowledge")
	}
	var buf bytes.Buffer
	WriteAttackReport(&buf, rows)
	if !strings.Contains(buf.String(), "leakage-abuse") {
		t.Error("report header missing")
	}
}

func TestConcurrencyExperimentShape(t *testing.T) {
	report, err := ConcurrencyExperiment(Quick(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(report.Levels))
	}
	for _, lv := range report.Levels {
		if lv.Searches == 0 || lv.ThroughputQPS <= 0 {
			t.Errorf("level %d: empty measurements: %+v", lv.Clients, lv)
		}
		if lv.P50Ms <= 0 || lv.P99Ms < lv.P50Ms {
			t.Errorf("level %d: implausible percentiles: %+v", lv.Clients, lv)
		}
	}
	if report.Overlap.TrainMs <= 0 {
		t.Errorf("overlap train duration missing: %+v", report.Overlap)
	}
	var buf strings.Builder
	WriteConcurrencyReport(&buf, report)
	if !strings.Contains(buf.String(), "Concurrent search") {
		t.Error("report header missing")
	}
}

func TestWireConcurrencyExperimentShape(t *testing.T) {
	report, err := WireConcurrencyExperiment(Quick(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Levels) != 3 {
		t.Fatalf("levels = %d, want one per transport mode", len(report.Levels))
	}
	seen := map[string]WireLevel{}
	for _, lv := range report.Levels {
		if lv.Clients != 2 || lv.Searches == 0 || lv.ThroughputQPS <= 0 {
			t.Errorf("%s: empty measurements: %+v", lv.Mode, lv)
		}
		seen[lv.Mode] = lv
	}
	for _, mode := range []string{ModeLockstep, ModeMux, ModeConnPerClient} {
		if _, ok := seen[mode]; !ok {
			t.Errorf("mode %s missing from report", mode)
		}
	}
	// With 2 clients pipelining over a link with real RTT the mux must
	// already beat lockstep; the full >=2x-at-16 claim is recorded by
	// mie-bench -single-conn in BENCH_concurrency.json.
	if report.MuxOverLockstep <= 1 {
		t.Errorf("mux/lockstep = %.2f, want > 1", report.MuxOverLockstep)
	}
	var buf strings.Builder
	WriteConcurrencyReport(&buf, &ConcurrencyReport{Wire: report})
	if !strings.Contains(buf.String(), "Wire transports") {
		t.Error("wire section missing from report text")
	}
}

func TestPersistenceExperimentShape(t *testing.T) {
	report, err := PersistenceExperiment(Quick(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 3 {
		t.Fatalf("rows = %d, want one per sync policy", len(report.Rows))
	}
	seen := map[string]PersistenceRow{}
	for _, row := range report.Rows {
		if row.Updates == 0 || row.UpdatesPerSec <= 0 || row.WALBytes <= 0 {
			t.Errorf("%s: empty measurements: %+v", row.SyncPolicy, row)
		}
		seen[row.SyncPolicy] = row
	}
	for _, policy := range []string{"always", "interval", "never"} {
		if _, ok := seen[policy]; !ok {
			t.Errorf("policy %s missing from report", policy)
		}
	}
	// "always" fsyncs once per update; "never" not at all during appends.
	if a := seen["always"]; a.Fsyncs < int64(a.Updates) {
		t.Errorf("always: %d fsyncs for %d updates", a.Fsyncs, a.Updates)
	}
	if n := seen["never"]; n.Fsyncs != 0 {
		t.Errorf("never: %d fsyncs during appends, want 0", n.Fsyncs)
	}
	if report.SnapshotMs <= 0 || report.RecoveryMs <= 0 {
		t.Errorf("snapshot/recovery timings missing: %+v", report)
	}
	if report.ReplayedRecords == 0 {
		t.Error("recovery replayed no records")
	}
	var buf strings.Builder
	WritePersistenceReport(&buf, report)
	if !strings.Contains(buf.String(), "write-ahead log") {
		t.Error("report header missing")
	}
}
