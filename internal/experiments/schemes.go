package experiments

import (
	"fmt"

	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/dpe"
	"mie/internal/hommsse"
	"mie/internal/imaging"
	"mie/internal/msse"
)

// Scheme names as they appear in the figures.
const (
	SchemeMSSE    = "MSSE"
	SchemeHomMSSE = "Hom-MSSE"
	SchemeMIE     = "MIE"
	SchemePlain   = "Plaintext"
)

// Schemes lists the comparison order of the figures.
func Schemes() []string { return []string{SchemeMSSE, SchemeHomMSSE, SchemeMIE} }

func masterKey(b byte) crypto.Key {
	var k crypto.Key
	for i := range k {
		k[i] = b
	}
	return k
}

func dataKey() crypto.Key { return masterKey(0xD7) }

// mieStack bundles an in-process MIE deployment.
type mieStack struct {
	client *core.Client
	repo   *core.Repository
	meter  *device.Meter
}

func newMIE(cfg Config, meter *device.Meter, repoID string) (*mieStack, error) {
	return newMIERepo(cfg, meter, repoID, core.RepositoryOptions{Vocab: cfg.vocab()})
}

// newMIERepo is newMIE with explicit repository options — the incremental
// experiment needs two stacks that differ only in IncrementalOptions.
func newMIERepo(cfg Config, meter *device.Meter, repoID string, ropts core.RepositoryOptions) (*mieStack, error) {
	// OutDim 2048 keeps encodings at least as large as the plaintext
	// descriptors (64 float32s), the condition §VII-D gives for Dense-DPE
	// not to hurt retrieval precision.
	client, err := core.NewClient(core.ClientConfig{
		Key:     core.RepositoryKey{Master: masterKey(1)},
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 2048, Threshold: 0.5},
		Pyramid: cfg.pyramid(),
		Meter:   meter,
	})
	if err != nil {
		return nil, err
	}
	repo, err := core.NewRepository(repoID, ropts)
	if err != nil {
		return nil, err
	}
	return &mieStack{client: client, repo: repo, meter: meter}, nil
}

// estimateUpdateBytes approximates the wire size of a MIE update payload
// (ciphertext + tokens + packed encodings + framing) without paying for a
// second gob encode on the hot path.
func estimateUpdateBytes(up *core.Update) int64 {
	n := int64(len(up.Ciphertext)) + 64
	n += int64(len(up.TextTokens)) * (32 + 8)
	for _, e := range up.ImageEncodings {
		n += int64((e.Len()+63)/64*8) + 8
	}
	return n
}

// estimateQueryBytes approximates a MIE query payload size.
func estimateQueryBytes(q *core.Query) int64 {
	n := int64(64)
	n += int64(len(q.TextTokens)) * (32 + 8)
	for _, e := range q.ImageEncodings {
		n += int64((e.Len()+63)/64*8) + 8
	}
	return n
}

// add uploads one object through the MIE pipeline, accounting transfer cost.
func (m *mieStack) add(obj *core.Object) error {
	up, err := m.client.PrepareUpdate(obj, dataKey())
	if err != nil {
		return fmt.Errorf("mie update %s: %w", obj.ID, err)
	}
	if m.meter != nil {
		m.meter.AddTransfer(device.Network, estimateUpdateBytes(up), 0)
	}
	return m.repo.Update(up)
}

// msseStack bundles an in-process MSSE deployment.
type msseStack struct {
	client *msse.Client
	server *msse.Server
	repoID string
}

func newMSSE(cfg Config, meter *device.Meter, repoID string) (*msseStack, error) {
	s := msse.NewServer()
	if err := s.CreateRepository(repoID); err != nil {
		return nil, err
	}
	c := msse.NewClient(msse.ClientConfig{
		Keys:    msse.NewKeys(masterKey(2)),
		Pyramid: cfg.pyramid(),
		Vocab:   cfg.vocab(),
		Meter:   meter,
	})
	return &msseStack{client: c, server: s, repoID: repoID}, nil
}

// homStack bundles an in-process Hom-MSSE deployment.
type homStack struct {
	client *hommsse.Client
	server *hommsse.Server
	repoID string
	keys   hommsse.Keys
}

// homKeys caches the Paillier pair per modulus size: key generation is the
// single most expensive setup step and the experiments only need key
// *usage* costs, which are independent of which particular pair is used.
var homKeys = map[int]hommsse.Keys{}

func newHomMSSE(cfg Config, meter *device.Meter, repoID string) (*homStack, error) {
	keys, ok := homKeys[cfg.PaillierBits]
	if !ok {
		var err error
		keys, err = hommsse.NewKeys(masterKey(3), cfg.PaillierBits)
		if err != nil {
			return nil, err
		}
		homKeys[cfg.PaillierBits] = keys
	}
	s := hommsse.NewServer()
	if err := s.CreateRepository(repoID, &keys.Hom.PublicKey); err != nil {
		return nil, err
	}
	c := hommsse.NewClient(hommsse.ClientConfig{
		Keys:    keys,
		Pyramid: cfg.pyramid(),
		Vocab:   cfg.vocab(),
		Padding: 0.6,
		Meter:   meter,
	})
	return &homStack{client: c, server: s, repoID: repoID, keys: keys}, nil
}

// homQueryClient builds a second Hom-MSSE client sharing the build stack's
// keys and codebook but metering onto a different device profile.
func homQueryClient(cfg Config, meter *device.Meter, build *homStack) *hommsse.Client {
	c := hommsse.NewClient(hommsse.ClientConfig{
		Keys:    build.keys,
		Pyramid: cfg.pyramid(),
		Vocab:   cfg.vocab(),
		Padding: 0.6,
		Meter:   meter,
	})
	c.SetCodebook(build.client.Codebook())
	return c
}

// toMSSEDoc converts a core object into the baseline's document type.
func toMSSEDoc(o *core.Object) *msse.Doc {
	return &msse.Doc{ID: o.ID, Owner: o.Owner, Text: o.Text, Image: o.Image}
}

// toHomDoc converts a core object into the Hom-MSSE document type.
func toHomDoc(o *core.Object) *hommsse.Doc {
	return &hommsse.Doc{ID: o.ID, Owner: o.Owner, Text: o.Text, Image: o.Image}
}

// mieSparseKey re-derives the Sparse-DPE key of the experiments' MIE client
// (the experimenter's ground-truth oracle for the attack experiment).
func mieSparseKey() crypto.Key {
	return crypto.DeriveKey(masterKey(1), "rk2")
}
