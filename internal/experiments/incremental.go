package experiments

import (
	"fmt"
	"io"
	"time"

	"mie/internal/core"
	"mie/internal/dataset"
	"mie/internal/eval"
)

// IncrementalReport is the BENCH_incremental.json document: the cost of
// retraining after a small churn under the incremental train/index pipeline
// versus the pre-segmentation behavior (full re-cluster + index rebuild),
// plus proof that the shortcut does not cost retrieval precision.
type IncrementalReport struct {
	// Corpus is the object count at retrain time (base set + churn
	// additions).
	Corpus int `json:"corpus"`
	// ChurnDocs is how many objects changed between the two trains
	// (fresh uploads + re-uploads of existing ids).
	ChurnDocs     int     `json:"churn_docs"`
	ChurnFraction float64 `json:"churn_fraction"`
	// InitialTrainMs is the first Train over the base corpus — always a
	// full build, identical for both pipelines.
	InitialTrainMs float64 `json:"initial_train_ms"`
	// FullRetrainMs is the second Train with IncrementalOptions.Disable
	// set: re-cluster everything, rebuild every index.
	FullRetrainMs float64 `json:"full_retrain_ms"`
	// IncrementalRetrainMs is the same churn retrained through the
	// incremental path: warm-started codebook refinement over the delta,
	// delta docs re-indexed into the carried segmented indexes.
	IncrementalRetrainMs float64 `json:"incremental_retrain_ms"`
	// Speedup is FullRetrainMs / IncrementalRetrainMs.
	Speedup float64 `json:"speedup"`
	// Mode is how the incremental repository's second Train resolved
	// ("incremental", or "full" if the drift guard fired).
	Mode      string `json:"incremental_mode"`
	DeltaDocs int    `json:"delta_docs"`
	// Drift of the warm-started refinement (see cluster.DriftReport).
	DriftMeanShift  float64 `json:"drift_mean_shift"`
	DriftReassigned float64 `json:"drift_reassigned_fraction"`
	// MAP on the Holidays queries after the retrain, per pipeline; the
	// paper-level claim is that these stay within a couple of points.
	MAPFullRebuild float64 `json:"map_full_rebuild"`
	MAPIncremental float64 `json:"map_incremental"`
	MAPDelta       float64 `json:"map_delta"`
	// Segment layout of the incremental repository after the retrain
	// (summed over modalities), before compaction.
	SealedSegments int `json:"sealed_segments"`
	MemtableDocs   int `json:"memtable_docs"`
	DeadDocs       int `json:"dead_docs"`
	// CompactMs is one synchronous full compaction of the incremental
	// repository; MAPCompacted re-runs the queries afterwards (must match
	// MAPIncremental — compaction only drops garbage).
	CompactMs    float64 `json:"compact_ms"`
	MAPCompacted float64 `json:"map_compacted"`
}

// IncrementalExperiment measures the tentpole claim of the segmented-index
// refactor: after a ~10% churn, Train should cost a small delta pass, not a
// full rebuild. Two identical repositories ingest the same Holidays corpus
// and the same churn; one retrains incrementally, the other is forced
// through the legacy full path, and both answer the same queries.
func IncrementalExperiment(cfg Config) (*IncrementalReport, error) {
	set := dataset.Holidays(dataset.HolidaysParams{
		Groups:    cfg.HolidayGroups,
		PerGroup:  cfg.HolidayPerGroup,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	// Churn: ~10% of the corpus, half fresh scenes (drawn from a disjoint
	// Holidays sample so they are in-distribution), half re-uploads of
	// existing objects (the "user edited a photo's envelope" case).
	churn := len(set.Objects) / 10
	if churn < 2 {
		churn = 2
	}
	additions := churn / 2
	replacements := churn - additions
	// Each extra group contributes PerGroup-1 corpus objects (the query is
	// held out of Objects by the Holidays protocol).
	perGroup := cfg.HolidayPerGroup
	if perGroup < 2 {
		perGroup = 3
	}
	extra := dataset.Holidays(dataset.HolidaysParams{
		Groups:    (additions + perGroup - 2) / (perGroup - 1),
		PerGroup:  perGroup,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed + 101,
	})
	if len(extra.Objects) < additions {
		return nil, fmt.Errorf("experiments: churn sample too small: %d < %d", len(extra.Objects), additions)
	}

	inc, err := newMIERepo(cfg, nil, "inc-train", core.RepositoryOptions{Vocab: cfg.vocab()})
	if err != nil {
		return nil, err
	}
	full, err := newMIERepo(cfg, nil, "inc-rebuild", core.RepositoryOptions{
		Vocab:       cfg.vocab(),
		Incremental: core.IncrementalOptions{Disable: true},
	})
	if err != nil {
		return nil, err
	}
	stacks := []*mieStack{inc, full}

	report := &IncrementalReport{ChurnDocs: churn}
	for _, s := range stacks {
		for _, obj := range set.Objects {
			if err := s.add(obj); err != nil {
				return nil, err
			}
		}
		t0 := time.Now()
		if err := s.repo.Train(); err != nil {
			return nil, err
		}
		if s == inc {
			report.InitialTrainMs = ms(time.Since(t0))
		}
	}

	// Apply the identical churn to both repositories.
	for _, s := range stacks {
		for i := 0; i < additions; i++ {
			obj := *extra.Objects[i]
			obj.ID = fmt.Sprintf("churn-%d", i)
			if err := s.add(&obj); err != nil {
				return nil, err
			}
		}
		for i := 0; i < replacements; i++ {
			j := (i * len(set.Objects)) / replacements
			if err := s.add(set.Objects[j]); err != nil {
				return nil, err
			}
		}
	}
	report.Corpus = inc.repo.Size()
	report.ChurnFraction = float64(churn) / float64(report.Corpus)

	t0 := time.Now()
	if err := inc.repo.Train(); err != nil {
		return nil, err
	}
	report.IncrementalRetrainMs = ms(time.Since(t0))
	if info := inc.repo.LastTrain(); info != nil {
		report.Mode = info.Mode
		report.DeltaDocs = info.DeltaDocs
		report.DriftMeanShift = info.Drift.MeanShift
		report.DriftReassigned = info.Drift.ReassignedFraction
	}
	t0 = time.Now()
	if err := full.repo.Train(); err != nil {
		return nil, err
	}
	report.FullRetrainMs = ms(time.Since(t0))
	if report.IncrementalRetrainMs > 0 {
		report.Speedup = report.FullRetrainMs / report.IncrementalRetrainMs
	}
	for _, s := range inc.repo.IndexStats() {
		report.SealedSegments += s.SealedSegments
		report.MemtableDocs += s.MemtableDocs
		report.DeadDocs += s.DeadDocs
	}

	truths := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		truths[i] = q.Relevant
	}
	k := report.Corpus
	if report.MAPIncremental, err = holidaysMAP(inc, set, truths, k); err != nil {
		return nil, err
	}
	if report.MAPFullRebuild, err = holidaysMAP(full, set, truths, k); err != nil {
		return nil, err
	}
	report.MAPDelta = report.MAPIncremental - report.MAPFullRebuild
	if report.MAPDelta < 0 {
		report.MAPDelta = -report.MAPDelta
	}

	t0 = time.Now()
	if err := inc.repo.CompactNow(); err != nil {
		return nil, err
	}
	report.CompactMs = ms(time.Since(t0))
	if report.MAPCompacted, err = holidaysMAP(inc, set, truths, k); err != nil {
		return nil, err
	}
	return report, nil
}

// holidaysMAP runs the benchmark's queries against one MIE stack and scores
// the rankings.
func holidaysMAP(s *mieStack, set *dataset.HolidaysSet, truths [][]string, k int) (float64, error) {
	ranks := make([][]string, len(set.Queries))
	for i, q := range set.Queries {
		query, err := s.client.PrepareQuery(q.Query, k)
		if err != nil {
			return 0, err
		}
		hits, err := s.repo.Search(query)
		if err != nil {
			return 0, err
		}
		ids := make([]string, len(hits))
		for j, h := range hits {
			ids[j] = h.ObjectID
		}
		ranks[i] = ids
	}
	return eval.MeanAveragePrecision(ranks, truths)
}

// WriteIncrementalReport renders the report for stdout.
func WriteIncrementalReport(w io.Writer, r *IncrementalReport) {
	fmt.Fprintln(w, "Incremental training: retrain cost after churn vs full rebuild")
	fmt.Fprintf(w, "  corpus %d, churn %d docs (%.1f%%); initial full train %.1f ms\n",
		r.Corpus, r.ChurnDocs, 100*r.ChurnFraction, r.InitialTrainMs)
	fmt.Fprintf(w, "  retrain: full rebuild %.1f ms, incremental %.1f ms -> %.1fx speedup (mode=%s, delta=%d docs)\n",
		r.FullRetrainMs, r.IncrementalRetrainMs, r.Speedup, r.Mode, r.DeltaDocs)
	fmt.Fprintf(w, "  drift: mean centroid shift %.4f, reassigned fraction %.4f\n",
		r.DriftMeanShift, r.DriftReassigned)
	fmt.Fprintf(w, "  mAP: full rebuild %.4f, incremental %.4f (delta %.4f); after compaction %.4f\n",
		r.MAPFullRebuild, r.MAPIncremental, r.MAPDelta, r.MAPCompacted)
	fmt.Fprintf(w, "  segments before compaction: %d sealed, %d memtable docs, %d dead; compaction %.1f ms\n",
		r.SealedSegments, r.MemtableDocs, r.DeadDocs, r.CompactMs)
}
