package experiments

// Tracing-overhead benchmark: the same search workload pushed over real TCP
// with request tracing disabled, then head-sampled at 0%, 1% and 100%. It
// answers the question every always-on tracing design must: what does the
// instrumentation cost on the requests that are NOT kept (the sampling
// branch, envelope fields, context plumbing) and on the ones that are (span
// recording, ring insertion)? The deployment target is <5% p95 overhead at
// the default 1% sampling.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/dataset"
	"mie/internal/dpe"
	"mie/internal/imaging"
	"mie/internal/obs"
	"mie/internal/server"
)

// TraceLevel is the measured cost of one sampling configuration.
type TraceLevel struct {
	// SampleRate is the head-sampling probability; -1 marks the untraced
	// baseline (tracing fully disabled, no sampler consulted).
	SampleRate    float64 `json:"sample_rate"`
	Searches      int     `json:"searches"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// OverheadP95Pct is this level's p95 latency relative to the untraced
	// baseline, in percent (0 for the baseline row itself).
	OverheadP95Pct float64 `json:"overhead_p95_pct"`
	// TracesKept counts server-side traces retained during the level.
	TracesKept int64 `json:"traces_kept"`
}

// TraceOverheadReport is the trace_overhead section of BENCH_obs.json.
type TraceOverheadReport struct {
	Clients   int          `json:"clients"`
	PerClient int          `json:"searches_per_client"`
	Baseline  TraceLevel   `json:"baseline"`
	Levels    []TraceLevel `json:"levels"`
}

// TraceOverheadExperiment builds one trained repository behind a TCP server
// whose handlers run the full tracing path, then measures search latency
// untraced and at each sampling rate. Loopback TCP, no simulated WAN: a real
// link's RTT would hide the overhead this experiment exists to expose.
func TraceOverheadExperiment(cfg Config, clients, perClient int) (*TraceOverheadReport, error) {
	ctx := context.Background()
	reg := obs.Default()
	tracer := obs.NewTracer(reg, 1024)
	tracer.SetSlowThreshold(0) // isolate head sampling; no tail capture

	svc, _, err := core.OpenService(core.ServiceOptions{})
	if err != nil {
		return nil, err
	}
	srv, err := server.New("127.0.0.1:0", svc, nil, server.WithTracer(tracer))
	if err != nil {
		return nil, err
	}
	defer func() { _ = srv.Close() }()

	cc, err := core.NewClient(core.ClientConfig{
		Key:     core.RepositoryKey{Master: masterKey(7)},
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 512, Threshold: 0.5},
		Pyramid: cfg.pyramid(),
	})
	if err != nil {
		return nil, err
	}

	const repoID = "traceoverhead"
	bootstrap, err := client.Dial(srv.Addr(), nil)
	if err != nil {
		return nil, err
	}
	if err := bootstrap.CreateRepository(ctx, repoID, wireOpts(cfg)); err != nil {
		return nil, err
	}
	corpus := dataset.Flickr(dataset.FlickrParams{
		N:         cfg.SearchRepoSize,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed,
	})
	for _, obj := range corpus {
		up, err := cc.PrepareUpdate(obj, dataKey())
		if err != nil {
			return nil, err
		}
		if err := bootstrap.Update(ctx, repoID, up); err != nil {
			return nil, err
		}
	}
	if err := bootstrap.Train(ctx, repoID); err != nil {
		return nil, err
	}
	if err := bootstrap.Close(); err != nil {
		return nil, err
	}

	queryObjs := dataset.Flickr(dataset.FlickrParams{
		N:         8,
		ImageSize: cfg.ImageSize,
		Seed:      cfg.Seed + 999,
	})
	queries := make([]*core.Query, len(queryObjs))
	for i, obj := range queryObjs {
		if queries[i], err = cc.PrepareQuery(obj, cfg.K); err != nil {
			return nil, err
		}
	}

	kept := func() int64 {
		var n int64
		for _, reason := range []string{"sampled", "error", "slow"} {
			n += reg.Counter(obs.L("traces_kept_total", "reason", reason)).Value()
		}
		return n
	}

	// Each configuration runs three times and keeps the repetition with the
	// lowest p95: sub-millisecond loopback latencies are dominated by
	// scheduler and GC noise, and the minimum is the standard robust
	// estimator for "what does this code path cost when the machine is not
	// in the way".
	const reps = 3
	run := func(rate float64) (TraceLevel, error) {
		tracer.SetSampleRate(rate)
		var best TraceLevel
		for rep := 0; rep < reps; rep++ {
			keptBefore := kept()
			durs, wall, err := traceWorkload(srv.Addr(), repoID, tracer, queries, clients, perClient)
			if err != nil {
				return TraceLevel{}, err
			}
			lv := TraceLevel{
				SampleRate:    rate,
				Searches:      len(durs),
				ThroughputQPS: float64(len(durs)) / wall.Seconds(),
				P50Ms:         percentileMs(durs, 0.50),
				P95Ms:         percentileMs(durs, 0.95),
				P99Ms:         percentileMs(durs, 0.99),
				TracesKept:    kept() - keptBefore,
			}
			if rep == 0 || lv.P95Ms < best.P95Ms {
				best = lv
			}
		}
		return best, nil
	}

	// Warm the connection pool, engine caches and scheduler before measuring.
	tracer.SetSampleRate(0)
	if _, _, err := traceWorkload(srv.Addr(), repoID, tracer, queries, clients, 10); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}

	report := &TraceOverheadReport{Clients: clients, PerClient: perClient}
	base, err := run(0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	base.SampleRate = -1
	report.Baseline = base
	for _, rate := range []float64{0, 0.01, 1.0} {
		lv, err := run(rate)
		if err != nil {
			return nil, fmt.Errorf("sample rate %g: %w", rate, err)
		}
		if base.P95Ms > 0 {
			lv.OverheadP95Pct = (lv.P95Ms - base.P95Ms) / base.P95Ms * 100
		}
		report.Levels = append(report.Levels, lv)
	}
	return report, nil
}

// traceWorkload runs clients×perClient searches through one traced mux
// connection per client and returns the individual latencies and wall time.
func traceWorkload(addr, repoID string, tracer *obs.Tracer, queries []*core.Query, clients, perClient int) ([]time.Duration, time.Duration, error) {
	ctx := context.Background()
	conns := make([]*client.Conn, clients)
	var err error
	for c := range conns {
		if conns[c], err = client.Dial(addr, nil, client.WithTracer(tracer)); err != nil {
			return nil, 0, err
		}
		defer func(c *client.Conn) { _ = c.Close() }(conns[c])
	}
	durations := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c+i)%len(queries)]
				t0 := time.Now()
				if _, err := conns[c].Search(ctx, repoID, q); err != nil {
					errs[c] = err
					return
				}
				durations[c] = append(durations[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	var all []time.Duration
	for _, ds := range durations {
		all = append(all, ds...)
	}
	return all, wall, nil
}

// WriteTraceReport prints the tracing-overhead comparison in the bench's
// report layout.
func WriteTraceReport(w io.Writer, r *TraceOverheadReport) {
	fmt.Fprintf(w, "Tracing overhead (loopback TCP, %d clients x %d searches)\n", r.Clients, r.PerClient)
	fmt.Fprintf(w, "  %-10s %-9s %-12s %-9s %-9s %-9s %-10s %-6s\n",
		"sampling", "searches", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "p95 ovh", "kept")
	row := func(name string, lv TraceLevel) {
		fmt.Fprintf(w, "  %-10s %-9d %-12.1f %-9.3f %-9.3f %-9.3f %-10s %-6d\n",
			name, lv.Searches, lv.ThroughputQPS, lv.P50Ms, lv.P95Ms, lv.P99Ms,
			fmt.Sprintf("%+.1f%%", lv.OverheadP95Pct), lv.TracesKept)
	}
	row("untraced", r.Baseline)
	for _, lv := range r.Levels {
		row(fmt.Sprintf("%g%%", lv.SampleRate*100), lv)
	}
}
