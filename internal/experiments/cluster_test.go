package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/leakcheck"
	"mie/internal/wal"
	"mie/internal/wal/walfault"
)

// clusterTestConfig keeps cluster tests fast: tiny corpus, quick-scale
// engine parameters.
func clusterTestConfig() Config {
	cfg := Quick()
	cfg.ClusterRepos = 2
	cfg.ClusterObjects = 3
	return cfg
}

// startTestCluster boots an n-node cluster rooted in the test's temp dir.
func startTestCluster(t *testing.T, n int, sync wal.SyncPolicy) *Cluster {
	t.Helper()
	cl, err := StartCluster(t.TempDir(), n, sync)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

// ledger drives retry-until-acked writes through a connection and remembers
// exactly which object ids were acknowledged — the in-memory oracle the
// replayed cluster state must equal.
type ledger struct {
	cfg    Config
	cc     *core.Client
	conn   *client.Conn
	repoID string
	acked  []string
	denied int
}

func newLedger(t *testing.T, cfg Config, conn *client.Conn, repoID string) *ledger {
	t.Helper()
	cc, err := tenancyClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &ledger{cfg: cfg, cc: cc, conn: conn, repoID: repoID}
}

// write retries objID until the cluster acknowledges it.
func (l *ledger) write(t *testing.T, objID, text string) {
	t.Helper()
	up, err := l.cc.PrepareUpdate(&core.Object{ID: objID, Owner: "tenant-0", Text: text}, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if err := l.conn.Update(context.Background(), l.repoID, up); err == nil {
			l.acked = append(l.acked, objID)
			return
		}
		l.denied++
		if time.Now().After(deadline) {
			t.Fatalf("write %s never acknowledged after %d denials", objID, l.denied)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// verifyLedger checks that node i's state equals the oracle: every
// acknowledged id readable, a never-written id absent.
func verifyLedger(t *testing.T, cl *Cluster, node int, l *ledger, label string) {
	t.Helper()
	conn, err := client.Dial(cl.NodeAddr(node), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	ctx := context.Background()
	for _, objID := range l.acked {
		if _, _, err := conn.Get(ctx, l.repoID, objID); err != nil {
			t.Errorf("%s: node %d lost acknowledged write %s: %v", label, node, objID, err)
		}
	}
	if _, _, err := conn.Get(ctx, l.repoID, "never-written"); err == nil {
		t.Errorf("%s: node %d resurrected an unacknowledged object", label, node)
	}
}

// searchParity asserts both nodes return identical ranked hits.
func searchParity(t *testing.T, cl *Cluster, l *ledger, text, label string) {
	t.Helper()
	q, err := l.cc.PrepareQuery(&core.Object{ID: "q", Text: text}, l.cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var hits [][]core.SearchHit
	for node := 0; node < cl.Nodes(); node++ {
		conn, err := client.Dial(cl.NodeAddr(node), nil)
		if err != nil {
			t.Fatal(err)
		}
		h, err := conn.Search(ctx, l.repoID, q)
		_ = conn.Close()
		if err != nil {
			t.Fatalf("%s: search on node %d: %v", label, node, err)
		}
		hits = append(hits, h)
	}
	for node := 1; node < len(hits); node++ {
		if !reflect.DeepEqual(hits[0], hits[node]) {
			t.Errorf("%s: search parity broken between node 0 and node %d: %v vs %v", label, node, hits[0], hits[node])
		}
	}
}

// TestClusterKillMatrixEveryBoundary is the headline fault matrix: a leader
// kill + restart at every record boundary of a write sequence. At each kill
// point the replayed cluster — restarted leader plus caught-up follower —
// must equal the in-memory oracle of acknowledged writes exactly: nothing
// acknowledged lost, nothing unacknowledged resurrected, identical search
// rankings on both nodes.
func TestClusterKillMatrixEveryBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster kill matrix boots one cluster per boundary")
	}
	leakcheck.Check(t)
	cfg := clusterTestConfig()
	const writes = 5
	for kill := 0; kill <= writes; kill++ {
		t.Run(fmt.Sprintf("kill@%d", kill), func(t *testing.T) {
			cl := startTestCluster(t, 2, wal.SyncAlways)
			conn, err := client.Dial(cl.RouterAddr(), nil)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = conn.Close() }()
			const repoID = "kill-matrix"
			if err := conn.CreateRepository(context.Background(), repoID, wireOpts(cfg)); err != nil {
				t.Fatal(err)
			}
			l := newLedger(t, cfg, conn, repoID)
			for i := 0; i < writes; i++ {
				if i == kill {
					cl.KillLeader()
					if err := cl.RestartLeader(); err != nil {
						t.Fatal(err)
					}
				}
				l.write(t, fmt.Sprintf("obj-%02d", i), fmt.Sprintf("kill matrix document %d", i))
			}
			if kill == writes {
				cl.KillLeader()
				if err := cl.RestartLeader(); err != nil {
					t.Fatal(err)
				}
			}
			if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("kill@%d", kill)
			verifyLedger(t, cl, 0, l, label)
			verifyLedger(t, cl, 1, l, label)
			searchParity(t, cl, l, "kill matrix document", label)
		})
	}
}

// TestClusterTornLeaderWALTail crashes the leader's WAL mid-record with a
// scripted walfault disk: the torn write's ack is withheld, and after the
// leader restarts from its truncated log, neither node may hold the torn
// record — the oracle contract under a real torn write, not just a clean
// kill.
func TestClusterTornLeaderWALTail(t *testing.T) {
	if testing.Short() {
		t.Skip("torn-tail test boots two clusters")
	}
	leakcheck.Check(t)
	cfg := clusterTestConfig()
	const repoID = "torn-tail"
	const writes = 4
	walName := repoID + ".wal" // core's walFileName for a plain id

	// Clean run: learn the durable WAL size after each write, so the torn
	// run can crash strictly inside the final record.
	disk := walfault.NewDisk()
	core.SetWALFileOpenerForTest(func(p string) (wal.File, error) { return disk.Open(p) })
	defer core.SetWALFileOpenerForTest(nil)

	var sizes []int64
	func() {
		cl := startTestCluster(t, 2, wal.SyncAlways)
		conn, err := client.Dial(cl.RouterAddr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = conn.Close() }()
		if err := conn.CreateRepository(context.Background(), repoID, wireOpts(cfg)); err != nil {
			t.Fatal(err)
		}
		l := newLedger(t, cfg, conn, repoID)
		walPath := filepath.Join(cl.nodes[0].dir, walName)
		for i := 0; i < writes; i++ {
			l.write(t, fmt.Sprintf("obj-%02d", i), fmt.Sprintf("torn tail document %d", i))
			f := disk.File(walPath)
			if f == nil {
				t.Fatalf("leader WAL %s not on the fault disk", walPath)
			}
			sizes = append(sizes, int64(len(f.Durable())))
		}
	}()
	if len(sizes) < writes || sizes[writes-1] <= sizes[writes-2] {
		t.Fatalf("clean run produced no growing WAL: %v", sizes)
	}

	// Torn run: crash one byte short of the final record's end.
	disk2 := walfault.NewDisk()
	core.SetWALFileOpenerForTest(func(p string) (wal.File, error) { return disk2.Open(p) })
	cl := startTestCluster(t, 2, wal.SyncAlways)
	disk2.Script(filepath.Join(cl.nodes[0].dir, walName), walfault.Script{CrashAtByte: sizes[writes-1] - 1})
	conn, err := client.Dial(cl.RouterAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.CreateRepository(context.Background(), repoID, wireOpts(cfg)); err != nil {
		t.Fatal(err)
	}
	l := newLedger(t, cfg, conn, repoID)
	for i := 0; i < writes-1; i++ {
		l.write(t, fmt.Sprintf("obj-%02d", i), fmt.Sprintf("torn tail document %d", i))
	}
	// The final write tears mid-record: the ack must be withheld.
	lastID := fmt.Sprintf("obj-%02d", writes-1)
	up, err := l.cc.PrepareUpdate(&core.Object{ID: lastID, Owner: "tenant-0", Text: fmt.Sprintf("torn tail document %d", writes-1)}, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Update(context.Background(), repoID, up); err == nil {
		t.Fatal("write acknowledged although its WAL record tore mid-byte")
	}

	// Reboot the leader from the truncated log; the follower re-syncs.
	cl.KillLeader()
	if err := cl.RestartLeader(); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyLedger(t, cl, 0, l, "torn-tail")
	verifyLedger(t, cl, 1, l, "torn-tail")
	for node := 0; node < 2; node++ {
		c2, err := client.Dial(cl.NodeAddr(node), nil)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = c2.Get(context.Background(), repoID, lastID)
		_ = c2.Close()
		if err == nil {
			t.Errorf("node %d resurrected the torn, unacknowledged record %s", node, lastID)
		}
	}
	searchParity(t, cl, l, "torn tail document", "torn-tail")
}

// TestClusterPartitionHealResume: a partitioned follower keeps serving its
// stale state, then heals, resumes from its cursor, and converges on
// everything written during the split.
func TestClusterPartitionHealResume(t *testing.T) {
	if testing.Short() {
		t.Skip("partition test boots a cluster")
	}
	leakcheck.Check(t)
	cfg := clusterTestConfig()
	cl := startTestCluster(t, 2, wal.SyncNever)
	conn, err := client.Dial(cl.RouterAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	const repoID = "split-brain"
	if err := conn.CreateRepository(context.Background(), repoID, wireOpts(cfg)); err != nil {
		t.Fatal(err)
	}
	l := newLedger(t, cfg, conn, repoID)
	for i := 0; i < 3; i++ {
		l.write(t, fmt.Sprintf("pre-%02d", i), fmt.Sprintf("pre-partition document %d", i))
	}
	if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	cl.PartitionFollower(1, true)
	for i := 0; i < 3; i++ {
		l.write(t, fmt.Sprintf("mid-%02d", i), fmt.Sprintf("mid-partition document %d", i))
	}
	// The partitioned follower still serves its pre-partition state.
	folConn, err := client.Dial(cl.NodeAddr(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := folConn.Get(context.Background(), repoID, "pre-00"); err != nil {
		t.Fatalf("partitioned follower dropped pre-partition state: %v", err)
	}
	if _, _, err := folConn.Get(context.Background(), repoID, "mid-00"); err == nil {
		t.Fatal("partitioned follower somehow received a mid-partition write")
	}
	_ = folConn.Close()
	applied := cl.Follower(1).Cursor(repoID)

	cl.PartitionFollower(1, false)
	if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	healed := cl.Follower(1).Cursor(repoID)
	if healed.Gen != applied.Gen || healed.Seq <= applied.Seq {
		t.Fatalf("heal did not resume the same generation: %+v -> %+v", applied, healed)
	}
	verifyLedger(t, cl, 1, l, "healed")
	searchParity(t, cl, l, "partition document", "healed")
}

// TestClusterSearchDuringReplayStress hammers searches on the follower
// while a writer streams mutations through the router — the -race asset for
// the apply-while-serving path. Stale reads are fine; errors are not.
func TestClusterSearchDuringReplayStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test boots a cluster")
	}
	leakcheck.Check(t)
	cfg := clusterTestConfig()
	cl := startTestCluster(t, 2, wal.SyncNever)
	conn, err := client.Dial(cl.RouterAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	const repoID = "replay-stress"
	if err := conn.CreateRepository(context.Background(), repoID, wireOpts(cfg)); err != nil {
		t.Fatal(err)
	}
	l := newLedger(t, cfg, conn, repoID)
	l.write(t, "base", "stress base document")
	if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	q, err := l.cc.PrepareQuery(&core.Object{ID: "q", Text: "stress document"}, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 4
	stop := make(chan struct{})
	errC := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fc, err := client.Dial(cl.NodeAddr(1), nil)
			if err != nil {
				errC <- err
				return
			}
			defer func() { _ = fc.Close() }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := fc.Search(context.Background(), repoID, q); err != nil {
					errC <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		l.write(t, fmt.Sprintf("obj-%03d", i), fmt.Sprintf("stress document %d", i))
	}
	if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errC:
		t.Fatalf("search on follower during replay failed: %v", err)
	default:
	}
	verifyLedger(t, cl, 1, l, "stress")
	searchParity(t, cl, l, "stress document", "stress")
}

// TestClusterRouterFailoverToFollower: with the leader dead and not
// restarted, reads routed through the router must still be served by the
// caught-up follower.
func TestClusterRouterFailoverToFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("failover test boots a cluster")
	}
	leakcheck.Check(t)
	cfg := clusterTestConfig()
	cl := startTestCluster(t, 2, wal.SyncNever)
	conn, err := client.Dial(cl.RouterAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	const repoID = "leaderless-reads"
	if err := conn.CreateRepository(context.Background(), repoID, wireOpts(cfg)); err != nil {
		t.Fatal(err)
	}
	l := newLedger(t, cfg, conn, repoID)
	for i := 0; i < 3; i++ {
		l.write(t, fmt.Sprintf("obj-%02d", i), fmt.Sprintf("leaderless document %d", i))
	}
	if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	cl.KillLeader()

	// Reads keep working through the router; mutations are denied, not hung.
	q, err := l.cc.PrepareQuery(&core.Object{ID: "q", Text: "leaderless document"}, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	readConn, err := client.Dial(cl.RouterAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = readConn.Close() }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err = readConn.Search(context.Background(), repoID, q); err == nil {
			break
		}
		// The router may need a health-probe cycle to mark the leader dead.
		if time.Now().After(deadline) {
			t.Fatalf("leaderless search never succeeded: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	up, err := l.cc.PrepareUpdate(&core.Object{ID: "rejected", Owner: "tenant-0", Text: "no leader"}, dataKey())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := readConn.Update(ctx, repoID, up); err == nil {
		t.Fatal("mutation acknowledged with the leader dead")
	}
	if err := cl.RestartLeader(); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitCaughtUp([]string{repoID}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	verifyLedger(t, cl, 0, l, "restarted")
	verifyLedger(t, cl, 1, l, "restarted")
}

// TestClusterScaleSmoke: the scale-point harness end to end at minimal size
// — the cheap guard that keeps mie-bench -cluster runnable.
func TestClusterScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke boots two clusters")
	}
	leakcheck.Check(t)
	cfg := clusterTestConfig()
	for _, n := range []int{1, 2} {
		pt, err := clusterScalePoint(cfg, filepath.Join(t.TempDir(), fmt.Sprintf("scale-%d", n)), n, 150*time.Millisecond)
		if err != nil {
			t.Fatalf("scale@%d: %v", n, err)
		}
		if pt.Searches == 0 || pt.ThroughputQPS <= 0 {
			t.Fatalf("scale@%d measured nothing: %+v", n, pt)
		}
	}
}
