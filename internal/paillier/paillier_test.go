package paillier

import (
	"errors"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKeyOnce shares one keypair across tests; key generation dominates
// test time otherwise.
var (
	keyOnce sync.Once
	testSK  *PrivateKey
	keyErr  error
)

func key(t *testing.T) *PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		testSK, keyErr = GenerateKey(nil, 512)
	})
	if keyErr != nil {
		t.Fatal(keyErr)
	}
	return testSK
}

func TestGenerateKeyValidation(t *testing.T) {
	if _, err := GenerateKey(nil, 64); err == nil {
		t.Error("expected error for tiny key")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := key(t)
	for _, v := range []uint64{0, 1, 42, 1 << 32, ^uint64(0)} {
		c, err := sk.EncryptUint64(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.DecryptUint64(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestEncryptRange(t *testing.T) {
	sk := key(t)
	if _, err := sk.Encrypt(nil, big.NewInt(-1)); !errors.Is(err, ErrMessageRange) {
		t.Errorf("err = %v, want ErrMessageRange", err)
	}
	if _, err := sk.Encrypt(nil, sk.N); !errors.Is(err, ErrMessageRange) {
		t.Errorf("m = n: err = %v, want ErrMessageRange", err)
	}
}

func TestProbabilisticEncryption(t *testing.T) {
	sk := key(t)
	a, err := sk.EncryptUint64(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sk.EncryptUint64(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) == 0 {
		t.Error("two encryptions of the same plaintext are identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := key(t)
	ca, err := sk.EncryptUint64(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := sk.EncryptUint64(nil, 23)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sk.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptUint64(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got != 123 {
		t.Errorf("D(E(100)+E(23)) = %d, want 123", got)
	}
}

func TestHomomorphicAddProperty(t *testing.T) {
	sk := key(t)
	f := func(a, b uint32) bool {
		ca, err := sk.EncryptUint64(nil, uint64(a))
		if err != nil {
			return false
		}
		cb, err := sk.EncryptUint64(nil, uint64(b))
		if err != nil {
			return false
		}
		sum, err := sk.Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := sk.DecryptUint64(sum)
		return err == nil && got == uint64(a)+uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHomomorphicScalarMul(t *testing.T) {
	sk := key(t)
	c, err := sk.EncryptUint64(nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := sk.ScalarMul(c, big.NewInt(11))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptUint64(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Errorf("D(E(9)^11) = %d, want 99", got)
	}
}

func TestScalarMulZero(t *testing.T) {
	sk := key(t)
	c, err := sk.EncryptUint64(nil, 12345)
	if err != nil {
		t.Fatal(err)
	}
	z, err := sk.ScalarMul(c, big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptUint64(z)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("k=0: got %d, want 0", got)
	}
}

func TestAddPlain(t *testing.T) {
	sk := key(t)
	c, err := sk.EncryptUint64(nil, 40)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.AddPlain(c, big.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptUint64(c2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("AddPlain: got %d, want 42", got)
	}
}

func TestHomomorphicTFIDFShape(t *testing.T) {
	// The exact Hom-MSSE server computation: accumulate Σ E(tf)^(w) where w
	// is a public integer weight, then the client decrypts the total.
	sk := key(t)
	tfs := []uint64{3, 1, 4}
	weights := []int64{100, 200, 50}
	var acc *big.Int
	for i, tf := range tfs {
		c, err := sk.EncryptUint64(nil, tf)
		if err != nil {
			t.Fatal(err)
		}
		term, err := sk.ScalarMul(c, big.NewInt(weights[i]))
		if err != nil {
			t.Fatal(err)
		}
		if acc == nil {
			acc = term
			continue
		}
		if acc, err = sk.Add(acc, term); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sk.DecryptUint64(acc)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(3*100 + 1*200 + 4*50)
	if got != want {
		t.Errorf("homomorphic score = %d, want %d", got, want)
	}
}

func TestCiphertextValidation(t *testing.T) {
	sk := key(t)
	bad := []*big.Int{nil, big.NewInt(0), big.NewInt(-5), new(big.Int).Set(sk.N2)}
	good, err := sk.EncryptUint64(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range bad {
		if _, err := sk.Decrypt(c); !errors.Is(err, ErrCiphertextRange) {
			t.Errorf("Decrypt(%v): err = %v, want ErrCiphertextRange", c, err)
		}
		if _, err := sk.Add(good, c); !errors.Is(err, ErrCiphertextRange) {
			t.Errorf("Add(good,%v): err = %v, want ErrCiphertextRange", c, err)
		}
		if _, err := sk.ScalarMul(c, big.NewInt(2)); !errors.Is(err, ErrCiphertextRange) {
			t.Errorf("ScalarMul(%v): err = %v, want ErrCiphertextRange", c, err)
		}
	}
}

func TestDecryptUint64Overflow(t *testing.T) {
	sk := key(t)
	big65 := new(big.Int).Lsh(big.NewInt(1), 65)
	c, err := sk.Encrypt(nil, big65)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.DecryptUint64(c); err == nil {
		t.Error("expected overflow error for 2^65")
	}
}
