// Package paillier implements the Paillier public-key cryptosystem
// (Paillier, EUROCRYPT'99): an additively homomorphic IND-CPA encryption
// scheme. The Hom-MSSE baseline (paper Appendix) encrypts keyword counters
// and frequencies under Paillier so the cloud can increment counters and
// accumulate TF-IDF scores without learning their values:
//
//	D(E(a) · E(b) mod n²)   = a + b mod n
//	D(E(a)^k mod n²)        = k·a mod n
//
// The implementation uses the simplified variant g = n+1, for which
// L(g^λ mod n²) = λ and encryption is E(m,r) = (1+m·n)·rⁿ mod n².
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Common errors.
var (
	// ErrMessageRange is returned when a plaintext is negative or >= n.
	ErrMessageRange = errors.New("paillier: message out of range")
	// ErrCiphertextRange is returned when a ciphertext is out of Z*_{n²}.
	ErrCiphertextRange = errors.New("paillier: ciphertext out of range")
)

var one = big.NewInt(1)

// PublicKey holds n and the cached n² needed for all homomorphic operations.
type PublicKey struct {
	N  *big.Int
	N2 *big.Int // n²
}

// PrivateKey adds the decryption trapdoor λ = lcm(p-1, q-1) and
// μ = λ⁻¹ mod n.
type PrivateKey struct {
	PublicKey

	Lambda *big.Int
	Mu     *big.Int
}

// GenerateKey creates a key pair with an n of the given bit length. For the
// benchmark harness 1024-bit keys reproduce the paper's cost profile; tests
// may use shorter keys for speed (minimum 128 bits).
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("paillier: key size %d too small (min 128)", bits)
	}
	if random == nil {
		random = rand.Reader
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate p: %w", err)
		}
		q, err := rand.Prime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), new(big.Int).GCD(nil, nil, pm1, qm1))
		mu := new(big.Int).ModInverse(lambda, n)
		if mu == nil {
			continue // gcd(λ, n) != 1; re-draw primes
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: new(big.Int).Mul(n, n)},
			Lambda:    lambda,
			Mu:        mu,
		}, nil
	}
}

// Encrypt encrypts m (0 <= m < n) with fresh randomness:
// c = (1 + m·n) · rⁿ mod n².
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, ErrMessageRange
	}
	if random == nil {
		random = rand.Reader
	}
	r, err := pk.randomUnit(random)
	if err != nil {
		return nil, err
	}
	// (1 + m·n) mod n²
	c := new(big.Int).Mul(m, pk.N)
	c.Add(c, one)
	c.Mod(c, pk.N2)
	// · rⁿ mod n²
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c.Mul(c, rn)
	c.Mod(c, pk.N2)
	return c, nil
}

// EncryptUint64 is a convenience wrapper for small counters/frequencies.
func (pk *PublicKey) EncryptUint64(random io.Reader, v uint64) (*big.Int, error) {
	return pk.Encrypt(random, new(big.Int).SetUint64(v))
}

// randomUnit draws r uniform in [1, n) with gcd(r, n) = 1.
func (pk *PublicKey) randomUnit(random io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: draw randomizer: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Add returns the ciphertext of a+b given ciphertexts of a and b:
// c = c1·c2 mod n².
func (pk *PublicKey) Add(c1, c2 *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(c1); err != nil {
		return nil, err
	}
	if err := pk.checkCiphertext(c2); err != nil {
		return nil, err
	}
	out := new(big.Int).Mul(c1, c2)
	out.Mod(out, pk.N2)
	return out, nil
}

// AddPlain returns the ciphertext of a+m given a ciphertext of a and a
// plaintext m: c · (1+m·n) mod n². Cheaper than Add when one operand is
// public (e.g. the server incrementing a counter by a known padding of 0/1
// would instead use Add on an encrypted increment; AddPlain serves public
// corpus-wide constants).
func (pk *PublicKey) AddPlain(c *big.Int, m *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(c); err != nil {
		return nil, err
	}
	mm := new(big.Int).Mod(m, pk.N)
	t := new(big.Int).Mul(mm, pk.N)
	t.Add(t, one)
	t.Mod(t, pk.N2)
	t.Mul(t, c)
	t.Mod(t, pk.N2)
	return t, nil
}

// ScalarMul returns the ciphertext of k·a given a ciphertext of a:
// c^k mod n². Negative k is reduced mod n (two's-complement semantics in
// Z_n).
func (pk *PublicKey) ScalarMul(c *big.Int, k *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(c); err != nil {
		return nil, err
	}
	kk := new(big.Int).Mod(k, pk.N)
	return new(big.Int).Exp(c, kk, pk.N2), nil
}

func (pk *PublicKey) checkCiphertext(c *big.Int) error {
	if c == nil || c.Sign() <= 0 || c.Cmp(pk.N2) >= 0 {
		return ErrCiphertextRange
	}
	return nil
}

// Decrypt recovers m from c: m = L(c^λ mod n²) · μ mod n, with
// L(x) = (x-1)/n.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if err := sk.checkCiphertext(c); err != nil {
		return nil, err
	}
	x := new(big.Int).Exp(c, sk.Lambda, sk.N2)
	x.Sub(x, one)
	x.Div(x, sk.N)
	x.Mul(x, sk.Mu)
	x.Mod(x, sk.N)
	return x, nil
}

// DecryptUint64 decrypts and narrows to uint64, failing loudly on overflow
// rather than silently truncating a counter.
func (sk *PrivateKey) DecryptUint64(c *big.Int) (uint64, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return 0, err
	}
	if !m.IsUint64() {
		return 0, fmt.Errorf("paillier: plaintext %s exceeds uint64", m.String())
	}
	return m.Uint64(), nil
}
