// Package imaging is the dense-media feature-extraction substrate. The
// paper's prototype uses OpenCV's SURF descriptors over a Dense Pyramid
// detector; this package reimplements the same pipeline shape in pure Go:
//
//   - grayscale images and integral images for O(1) box sums,
//   - a dense pyramid keypoint grid (fixed sampling at several scales,
//     exactly what "Dense Pyramid feature detection" means),
//   - a 64-dimensional SURF-style descriptor built from Haar wavelet
//     responses aggregated over a 4x4 grid of subregions
//     (Σdx, Σ|dx|, Σdy, Σ|dy| per subregion).
//
// Descriptors are unit-normalized and then scaled by DescriptorScale so
// that pairwise Euclidean distances lie in [0,1] — Dense-DPE's plaintext
// domain — with the distances that matter for matching falling below the
// prototype's threshold t = 0.5.
package imaging

import (
	"encoding/binary"
	"fmt"
	"math"

	"mie/internal/vec"
)

// DescriptorDim is the dimensionality of extracted descriptors (as SURF-64).
const DescriptorDim = 64

// DescriptorScale is the radius descriptors are normalized to. 0.3 puts the
// typical distance between unrelated descriptors (~DescriptorScale*sqrt(2))
// just under the Dense-DPE threshold of 0.5, so the encoded distances the
// cloud clusters on retain the full matching structure.
const DescriptorScale = 0.3

// Image is a grayscale image with float intensities, typically in [0,1].
type Image struct {
	W, H int
	Pix  []float64 // row-major, len W*H
}

// NewImage allocates a zero image.
func NewImage(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imaging: invalid dimensions %dx%d", w, h)
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}, nil
}

// At returns the intensity at (x, y). Out-of-bounds reads clamp to the edge,
// which keeps Haar responses well-defined at image borders.
func (im *Image) At(x, y int) float64 {
	if x < 0 {
		x = 0
	} else if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes intensity v at (x, y). Out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// GobEncode serializes the image with 8-bit pixel depth — the precision of
// real photographs — so encrypted objects on the wire cost one byte per
// pixel instead of a float64.
func (im *Image) GobEncode() ([]byte, error) {
	out := make([]byte, 8+len(im.Pix))
	binary.BigEndian.PutUint32(out[:4], uint32(im.W))
	binary.BigEndian.PutUint32(out[4:8], uint32(im.H))
	for i, v := range im.Pix {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[8+i] = byte(math.Round(v * 255))
	}
	return out, nil
}

// GobDecode reverses GobEncode.
func (im *Image) GobDecode(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("imaging: image gob data too short (%d bytes)", len(data))
	}
	w := int(binary.BigEndian.Uint32(data[:4]))
	h := int(binary.BigEndian.Uint32(data[4:8]))
	if w <= 0 || h <= 0 || len(data) != 8+w*h {
		return fmt.Errorf("imaging: image gob data inconsistent (%dx%d, %d bytes)", w, h, len(data))
	}
	im.W, im.H = w, h
	im.Pix = make([]float64, w*h)
	for i := range im.Pix {
		im.Pix[i] = float64(data[8+i]) / 255
	}
	return nil
}

// Integral is a summed-area table over an Image: Sum queries any axis-
// aligned rectangle in O(1), the trick SURF uses to make Haar responses
// scale-independent in cost.
type Integral struct {
	w, h int
	sum  []float64 // (w+1) x (h+1)
}

// NewIntegral builds the summed-area table of im.
func NewIntegral(im *Image) *Integral {
	w, h := im.W, im.H
	ii := &Integral{w: w, h: h, sum: make([]float64, (w+1)*(h+1))}
	stride := w + 1
	for y := 1; y <= h; y++ {
		var rowSum float64
		for x := 1; x <= w; x++ {
			rowSum += im.Pix[(y-1)*w+(x-1)]
			ii.sum[y*stride+x] = ii.sum[(y-1)*stride+x] + rowSum
		}
	}
	return ii
}

// Sum returns the sum of intensities over the half-open rectangle
// [x0,x1) x [y0,y1). Coordinates are clamped to the image.
func (ii *Integral) Sum(x0, y0, x1, y1 int) float64 {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0 = clamp(x0, 0, ii.w)
	x1 = clamp(x1, 0, ii.w)
	y0 = clamp(y0, 0, ii.h)
	y1 = clamp(y1, 0, ii.h)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	stride := ii.w + 1
	return ii.sum[y1*stride+x1] - ii.sum[y0*stride+x1] - ii.sum[y1*stride+x0] + ii.sum[y0*stride+x0]
}

// haarX is the horizontal Haar wavelet response at (x, y) with half-size s:
// right box minus left box.
func (ii *Integral) haarX(x, y, s int) float64 {
	return ii.Sum(x, y-s, x+s, y+s) - ii.Sum(x-s, y-s, x, y+s)
}

// haarY is the vertical Haar wavelet response: bottom box minus top box.
func (ii *Integral) haarY(x, y, s int) float64 {
	return ii.Sum(x-s, y, x+s, y+s) - ii.Sum(x-s, y-s, x+s, y)
}

// Keypoint is a dense-pyramid sample location with its patch size.
type Keypoint struct {
	X, Y int
	Size int // patch side length in pixels
}

// PyramidParams controls the dense pyramid detector.
type PyramidParams struct {
	// Scales lists the patch sizes sampled; defaults to {16, 32, 64}.
	Scales []int
	// StrideDiv divides the patch size to obtain the sampling stride
	// (stride = size/StrideDiv); defaults to 2 (50% overlap).
	StrideDiv int
}

func (p *PyramidParams) setDefaults() {
	if len(p.Scales) == 0 {
		p.Scales = []int{16, 32, 64}
	}
	if p.StrideDiv <= 0 {
		p.StrideDiv = 2
	}
}

// DensePyramid returns the dense grid of keypoints over a WxH image at each
// configured scale, mirroring OpenCV's DenseFeatureDetector with a pyramid.
func DensePyramid(w, h int, params PyramidParams) []Keypoint {
	params.setDefaults()
	var kps []Keypoint
	for _, size := range params.Scales {
		if size > w || size > h {
			continue
		}
		stride := size / params.StrideDiv
		if stride < 1 {
			stride = 1
		}
		for y := size / 2; y+size/2 <= h; y += stride {
			for x := size / 2; x+size/2 <= w; x += stride {
				kps = append(kps, Keypoint{X: x, Y: y, Size: size})
			}
		}
	}
	return kps
}

// Descriptor computes the 64-dimensional SURF-style descriptor for a
// keypoint: the patch is divided into a 4x4 grid of subregions, and each
// subregion contributes (Σdx, Σ|dx|, Σdy, Σ|dy|) over a 2x2 grid of Haar
// sample points. The vector is unit-normalized then scaled by
// DescriptorScale, placing all pairwise distances in [0, 2*DescriptorScale]
// and the similar-patch distances below Dense-DPE's t = 0.5 threshold.
func Descriptor(ii *Integral, kp Keypoint) []float64 {
	d := make([]float64, DescriptorDim)
	sub := kp.Size / 4
	if sub < 1 {
		sub = 1
	}
	haarHalf := sub / 2
	if haarHalf < 1 {
		haarHalf = 1
	}
	x0 := kp.X - kp.Size/2
	y0 := kp.Y - kp.Size/2
	idx := 0
	for sy := 0; sy < 4; sy++ {
		for sx := 0; sx < 4; sx++ {
			var sdx, sadx, sdy, sady float64
			// 2x2 Haar sample points inside the subregion.
			for py := 0; py < 2; py++ {
				for px := 0; px < 2; px++ {
					cx := x0 + sx*sub + (2*px+1)*sub/4
					cy := y0 + sy*sub + (2*py+1)*sub/4
					dx := ii.haarX(cx, cy, haarHalf)
					dy := ii.haarY(cx, cy, haarHalf)
					sdx += dx
					sadx += math.Abs(dx)
					sdy += dy
					sady += math.Abs(dy)
				}
			}
			d[idx] = sdx
			d[idx+1] = sadx
			d[idx+2] = sdy
			d[idx+3] = sady
			idx += 4
		}
	}
	// Guard against amplifying floating-point residue on (near-)flat
	// patches: responses there are numerically tiny but nonzero, and
	// normalizing them would manufacture a spurious unit direction.
	if vec.Norm(d) < 1e-9*float64(kp.Size*kp.Size) {
		return make([]float64, DescriptorDim)
	}
	vec.Normalize(d)
	vec.Scale(d, DescriptorScale)
	return d
}

// Extract runs the full dense-media client pipeline on an image: dense
// pyramid detection followed by descriptor computation at every keypoint.
// This is the image-side analogue of text.Extract.
func Extract(im *Image, params PyramidParams) [][]float64 {
	ii := NewIntegral(im)
	kps := DensePyramid(im.W, im.H, params)
	out := make([][]float64, 0, len(kps))
	for _, kp := range kps {
		out = append(out, Descriptor(ii, kp))
	}
	return out
}
