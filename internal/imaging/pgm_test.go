package imaging

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	src := noiseImage(t, 13, 9, 21)
	var buf bytes.Buffer
	if err := WritePGM(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 13 || got.H != 9 {
		t.Fatalf("dims %dx%d", got.W, got.H)
	}
	for i := range src.Pix {
		if math.Abs(got.Pix[i]-src.Pix[i]) > 1.0/255+1e-9 {
			t.Fatalf("pixel %d: %v vs %v", i, got.Pix[i], src.Pix[i])
		}
	}
}

func TestReadPGMAscii(t *testing.T) {
	const p2 = `P2
# a comment line
3 2
255
0 128 255
64 32 16
`
	im, err := ReadPGM(strings.NewReader(p2))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 3 || im.H != 2 {
		t.Fatalf("dims %dx%d", im.W, im.H)
	}
	if math.Abs(im.At(1, 0)-128.0/255) > 1e-9 {
		t.Errorf("pixel (1,0) = %v", im.At(1, 0))
	}
	if im.At(2, 0) != 1 {
		t.Errorf("pixel (2,0) = %v, want 1", im.At(2, 0))
	}
}

func TestReadPGMErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{name: "wrong magic", data: "P6\n2 2\n255\nxxxx"},
		{name: "empty", data: ""},
		{name: "garbage header", data: "P5\nnope 2\n255\n"},
		{name: "maxval too big", data: "P5\n2 2\n65535\n"},
		{name: "zero width", data: "P5\n0 2\n255\n"},
		{name: "truncated pixels", data: "P5\n4 4\n255\nxy"},
		{name: "ascii pixel out of range", data: "P2\n1 1\n100\n101\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadPGM(strings.NewReader(tt.data)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPGMFeedsPipeline(t *testing.T) {
	src := noiseImage(t, 32, 32, 22)
	var buf bytes.Buffer
	if err := WritePGM(&buf, src); err != nil {
		t.Fatal(err)
	}
	im, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	descs := Extract(im, PyramidParams{Scales: []int{16}})
	if len(descs) == 0 {
		t.Fatal("no descriptors from PGM-decoded image")
	}
}
