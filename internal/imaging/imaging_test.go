package imaging

import (
	"math"
	"math/rand"
	"testing"

	"mie/internal/vec"
)

func mustImage(t *testing.T, w, h int) *Image {
	t.Helper()
	im, err := NewImage(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func noiseImage(t *testing.T, w, h int, seed int64) *Image {
	t.Helper()
	im := mustImage(t, w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

func TestNewImageValidation(t *testing.T) {
	if _, err := NewImage(0, 10); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := NewImage(10, -1); err == nil {
		t.Error("expected error for negative height")
	}
}

func TestImageAtClamping(t *testing.T) {
	im := mustImage(t, 4, 4)
	im.Set(0, 0, 1)
	im.Set(3, 3, 2)
	if im.At(-5, -5) != 1 {
		t.Errorf("At(-5,-5) = %v, want clamped to (0,0)=1", im.At(-5, -5))
	}
	if im.At(10, 10) != 2 {
		t.Errorf("At(10,10) = %v, want clamped to (3,3)=2", im.At(10, 10))
	}
	im.Set(-1, 0, 99) // must be ignored, not panic
	im.Set(4, 0, 99)
	if im.At(0, 0) != 1 {
		t.Error("out-of-bounds Set corrupted the image")
	}
}

func TestIntegralAgainstBruteForce(t *testing.T) {
	im := noiseImage(t, 17, 13, 1)
	ii := NewIntegral(im)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		x0, x1 := rng.Intn(18), rng.Intn(18)
		y0, y1 := rng.Intn(14), rng.Intn(14)
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		var want float64
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				want += im.Pix[y*im.W+x]
			}
		}
		got := ii.Sum(x0, y0, x1, y1)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Sum(%d,%d,%d,%d) = %v, want %v", x0, y0, x1, y1, got, want)
		}
	}
}

func TestIntegralClampsAndEmpty(t *testing.T) {
	im := noiseImage(t, 8, 8, 3)
	ii := NewIntegral(im)
	if got := ii.Sum(5, 5, 5, 7); got != 0 {
		t.Errorf("empty rect sum = %v, want 0", got)
	}
	if got := ii.Sum(3, 3, 1, 7); got != 0 {
		t.Errorf("inverted rect sum = %v, want 0", got)
	}
	full := ii.Sum(0, 0, 8, 8)
	clamped := ii.Sum(-10, -10, 100, 100)
	if math.Abs(full-clamped) > 1e-12 {
		t.Errorf("clamped sum %v != full sum %v", clamped, full)
	}
}

func TestDensePyramidCoverage(t *testing.T) {
	kps := DensePyramid(128, 128, PyramidParams{})
	if len(kps) == 0 {
		t.Fatal("no keypoints on a 128x128 image")
	}
	sizes := make(map[int]int)
	for _, kp := range kps {
		sizes[kp.Size]++
		if kp.X-kp.Size/2 < 0 || kp.X+kp.Size/2 > 128 || kp.Y-kp.Size/2 < 0 || kp.Y+kp.Size/2 > 128 {
			t.Errorf("keypoint %+v patch exceeds image", kp)
		}
	}
	for _, s := range []int{16, 32, 64} {
		if sizes[s] == 0 {
			t.Errorf("no keypoints at default scale %d (got %v)", s, sizes)
		}
	}
}

func TestDensePyramidSmallImage(t *testing.T) {
	// Scales larger than the image must be skipped, not panic.
	kps := DensePyramid(20, 20, PyramidParams{})
	for _, kp := range kps {
		if kp.Size > 20 {
			t.Errorf("keypoint with size %d on a 20x20 image", kp.Size)
		}
	}
}

func TestDescriptorShapeAndScale(t *testing.T) {
	im := noiseImage(t, 64, 64, 4)
	ii := NewIntegral(im)
	d := Descriptor(ii, Keypoint{X: 32, Y: 32, Size: 32})
	if len(d) != DescriptorDim {
		t.Fatalf("descriptor has %d dims, want %d", len(d), DescriptorDim)
	}
	if n := vec.Norm(d); math.Abs(n-DescriptorScale) > 1e-9 {
		t.Errorf("descriptor norm = %v, want %v", n, DescriptorScale)
	}
}

func TestDescriptorFlatPatchIsZero(t *testing.T) {
	im := mustImage(t, 64, 64)
	for i := range im.Pix {
		im.Pix[i] = 0.7
	}
	ii := NewIntegral(im)
	d := Descriptor(ii, Keypoint{X: 32, Y: 32, Size: 32})
	if vec.Norm(d) != 0 {
		t.Errorf("flat patch descriptor norm = %v, want 0", vec.Norm(d))
	}
}

func TestDescriptorDistinguishesOrientation(t *testing.T) {
	// A vertical edge should produce strong |dx| relative to |dy|, and a
	// horizontal edge the opposite.
	vertical := mustImage(t, 64, 64)
	horizontal := mustImage(t, 64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if x >= 32 {
				vertical.Set(x, y, 1)
			}
			if y >= 32 {
				horizontal.Set(x, y, 1)
			}
		}
	}
	kp := Keypoint{X: 32, Y: 32, Size: 32}
	dv := Descriptor(NewIntegral(vertical), kp)
	dh := Descriptor(NewIntegral(horizontal), kp)
	sumAbs := func(d []float64, offset int) float64 {
		var s float64
		for i := offset; i < len(d); i += 4 {
			s += d[i]
		}
		return s
	}
	if sumAbs(dv, 1) <= sumAbs(dv, 3) {
		t.Errorf("vertical edge: |dx|=%v should exceed |dy|=%v", sumAbs(dv, 1), sumAbs(dv, 3))
	}
	if sumAbs(dh, 3) <= sumAbs(dh, 1) {
		t.Errorf("horizontal edge: |dy|=%v should exceed |dx|=%v", sumAbs(dh, 3), sumAbs(dh, 1))
	}
	if vec.Euclidean(dv, dh) < 0.1 {
		t.Error("orthogonal edges produced nearly identical descriptors")
	}
}

func TestDescriptorDistancesBounded(t *testing.T) {
	im1 := noiseImage(t, 64, 64, 5)
	im2 := noiseImage(t, 64, 64, 6)
	d1 := Extract(im1, PyramidParams{})
	d2 := Extract(im2, PyramidParams{})
	for i := range d1 {
		if d := vec.Euclidean(d1[i], d2[i]); d > 1+1e-9 {
			t.Fatalf("descriptor distance %v exceeds 1", d)
		}
	}
}

func TestExtractSimilarImagesCloserThanDissimilar(t *testing.T) {
	base := noiseImage(t, 64, 64, 7)
	// Slightly perturbed copy.
	near := mustImage(t, 64, 64)
	copy(near.Pix, base.Pix)
	rng := rand.New(rand.NewSource(8))
	for i := range near.Pix {
		near.Pix[i] += rng.NormFloat64() * 0.02
	}
	far := noiseImage(t, 64, 64, 9)

	db := Extract(base, PyramidParams{})
	dn := Extract(near, PyramidParams{})
	df := Extract(far, PyramidParams{})
	var sumNear, sumFar float64
	for i := range db {
		sumNear += vec.Euclidean(db[i], dn[i])
		sumFar += vec.Euclidean(db[i], df[i])
	}
	if sumNear >= sumFar {
		t.Errorf("perturbed image (%v) should be closer than unrelated image (%v)", sumNear, sumFar)
	}
}

func TestExtractCount(t *testing.T) {
	im := noiseImage(t, 64, 64, 10)
	kps := DensePyramid(64, 64, PyramidParams{})
	feats := Extract(im, PyramidParams{})
	if len(feats) != len(kps) {
		t.Errorf("Extract returned %d descriptors for %d keypoints", len(feats), len(kps))
	}
}

func TestImageGobRoundTrip(t *testing.T) {
	src := noiseImage(t, 9, 7, 11)
	data, err := src.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var dst Image
	if err := dst.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if dst.W != 9 || dst.H != 7 {
		t.Fatalf("dims %dx%d", dst.W, dst.H)
	}
	for i := range src.Pix {
		if math.Abs(dst.Pix[i]-src.Pix[i]) > 1.0/255+1e-9 {
			t.Fatalf("pixel %d: %v vs %v (8-bit quantization bound exceeded)", i, dst.Pix[i], src.Pix[i])
		}
	}
}

func TestImageGobDecodeValidation(t *testing.T) {
	var im Image
	if err := im.GobDecode([]byte{1, 2}); err == nil {
		t.Error("expected error for short data")
	}
	if err := im.GobDecode(make([]byte, 8)); err == nil {
		t.Error("expected error for zero dimensions")
	}
	bad := make([]byte, 8+3)
	bad[3] = 2 // W=2
	bad[7] = 2 // H=2 -> needs 4 pixels, only 3 present
	if err := im.GobDecode(bad); err == nil {
		t.Error("expected error for inconsistent pixel count")
	}
}
