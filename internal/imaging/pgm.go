package imaging

import (
	"bufio"
	"fmt"
	"io"
)

// ReadPGM decodes a Netpbm grayscale image (binary "P5" or ASCII "P2",
// 8-bit), the simplest interchange format for getting real photographs into
// the pipeline (e.g. `convert photo.jpg photo.pgm`). Intensities are scaled
// to [0,1].
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, fmt.Errorf("imaging: read PGM magic: %w", err)
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("imaging: not a PGM file (magic %q)", magic)
	}
	w, err := pgmInt(br)
	if err != nil {
		return nil, fmt.Errorf("imaging: PGM width: %w", err)
	}
	h, err := pgmInt(br)
	if err != nil {
		return nil, fmt.Errorf("imaging: PGM height: %w", err)
	}
	maxVal, err := pgmInt(br)
	if err != nil {
		return nil, fmt.Errorf("imaging: PGM maxval: %w", err)
	}
	if maxVal <= 0 || maxVal > 255 {
		return nil, fmt.Errorf("imaging: unsupported PGM maxval %d (8-bit only)", maxVal)
	}
	im, err := NewImage(w, h)
	if err != nil {
		return nil, fmt.Errorf("imaging: PGM dimensions: %w", err)
	}
	scale := 1 / float64(maxVal)
	if magic == "P5" {
		buf := make([]byte, w*h)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("imaging: PGM pixel data: %w", err)
		}
		for i, b := range buf {
			im.Pix[i] = float64(b) * scale
		}
		return im, nil
	}
	for i := 0; i < w*h; i++ {
		v, err := pgmInt(br)
		if err != nil {
			return nil, fmt.Errorf("imaging: PGM ascii pixel %d: %w", i, err)
		}
		if v < 0 || v > maxVal {
			return nil, fmt.Errorf("imaging: PGM pixel %d value %d out of range", i, v)
		}
		im.Pix[i] = float64(v) * scale
	}
	return im, nil
}

// WritePGM encodes the image as binary PGM (P5, 8-bit).
func WritePGM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("imaging: write PGM header: %w", err)
	}
	buf := make([]byte, len(im.Pix))
	for i, v := range im.Pix {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		buf[i] = byte(v*255 + 0.5)
	}
	if _, err := bw.Write(buf); err != nil {
		return fmt.Errorf("imaging: write PGM pixels: %w", err)
	}
	return bw.Flush()
}

// pgmToken reads the next whitespace-delimited token, skipping '#' comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pgmInt(br *bufio.Reader) (int, error) {
	tok, err := pgmToken(br)
	if err != nil {
		return 0, err
	}
	var v int
	if _, err := fmt.Sscanf(tok, "%d", &v); err != nil {
		return 0, fmt.Errorf("bad integer %q", tok)
	}
	return v, nil
}
