package text

import (
	"testing"
	"testing/quick"
)

func TestStemKnownVocabulary(t *testing.T) {
	// Reference pairs from Porter's original paper and its sample vocabulary.
	tests := []struct{ in, want string }{
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		{"happy", "happi"},
		{"sky", "sky"},
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"hesitanci", "hesit"},
		{"digitizer", "digit"},
		{"conformabli", "conform"},
		{"radicalli", "radic"},
		{"differentli", "differ"},
		{"vileli", "vile"},
		{"analogousli", "analog"},
		{"vietnamization", "vietnam"},
		{"predication", "predic"},
		{"operator", "oper"},
		{"feudalism", "feudal"},
		{"decisiveness", "decis"},
		{"hopefulness", "hope"},
		{"callousness", "callous"},
		{"formaliti", "formal"},
		{"sensitiviti", "sensit"},
		{"sensibiliti", "sensibl"},
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electriciti", "electr"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"gyroscopic", "gyroscop"},
		{"adjustable", "adjust"},
		{"defensible", "defens"},
		{"irritant", "irrit"},
		{"replacement", "replac"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		{"homologou", "homolog"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"angulariti", "angular"},
		{"homologous", "homolog"},
		{"effective", "effect"},
		{"bowdlerize", "bowdler"},
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "at", "is"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem usually yields the same stem for typical vocabulary;
	// verify on a realistic word list (full idempotence is not a Porter
	// guarantee, so we pin a representative set).
	words := []string{
		"running", "clouds", "encryption", "searching", "indexes",
		"mobile", "devices", "photos", "federated", "training",
	}
	for _, w := range words {
		s1 := Stem(w)
		s2 := Stem(s1)
		if s1 != s2 {
			t.Errorf("Stem not stable for %q: %q -> %q", w, s1, s2)
		}
	}
}

func TestStemNeverGrows(t *testing.T) {
	f := func(raw string) bool {
		// restrict to lowercase ascii letters as the pipeline guarantees
		w := make([]byte, 0, len(raw))
		for _, c := range []byte(raw) {
			if c >= 'a' && c <= 'z' {
				w = append(w, c)
			}
		}
		word := string(w)
		return len(Stem(word)) <= len(word)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{name: "simple", in: "Hello World", want: []string{"hello", "world"}},
		{name: "punctuation", in: "cloud-based, secure! search?", want: []string{"cloud", "based", "secure", "search"}},
		{name: "digits kept", in: "room 42 floor2", want: []string{"room", "42", "floor2"}},
		{name: "single runes dropped", in: "a b c word", want: []string{"word"}},
		{name: "empty", in: "", want: nil},
		{name: "unicode letters", in: "Lisboa é linda", want: []string{"lisboa", "linda"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Tokenize(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("token %d = %q, want %q", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("the") || !IsStopWord("and") {
		t.Error("common stop words not detected")
	}
	if IsStopWord("encryption") {
		t.Error("content word flagged as stop word")
	}
}

func TestExtract(t *testing.T) {
	h := Extract("The clouds are cloudy; a cloud searches the clouded cloud.")
	// All variants should stem to "cloud"-ish stems; stop words removed.
	if len(h) == 0 {
		t.Fatal("empty histogram")
	}
	var total uint64
	for _, term := range h {
		if IsStopWord(term.Word) {
			t.Errorf("stop word %q survived extraction", term.Word)
		}
		total += term.Freq
	}
	if h.TotalFreq() != total {
		t.Errorf("TotalFreq = %d, want %d", h.TotalFreq(), total)
	}
	// "cloud" appears via clouds/cloud/clouded/cloud -> freq >= 4
	var cloudFreq uint64
	for _, term := range h {
		if term.Word == "cloud" {
			cloudFreq = term.Freq
		}
	}
	if cloudFreq < 4 {
		t.Errorf("cloud stem freq = %d, want >= 4 (histogram: %v)", cloudFreq, h)
	}
}

func TestExtractDeterministicOrder(t *testing.T) {
	a := Extract("zebra apple mango apple zebra banana")
	b := Extract("banana zebra apple mango zebra apple")
	if len(a) != len(b) {
		t.Fatalf("histograms differ in size: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("term %d: %v vs %v (order must be deterministic)", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Word >= a[i].Word {
			t.Errorf("histogram not sorted at %d: %q >= %q", i, a[i-1].Word, a[i].Word)
		}
	}
}

func TestTFIDF(t *testing.T) {
	if got := TFIDF(0, 100, 10); got != 0 {
		t.Errorf("tf=0 should score 0, got %v", got)
	}
	if got := TFIDF(5, 0, 10); got != 0 {
		t.Errorf("empty corpus should score 0, got %v", got)
	}
	if got := TFIDF(5, 100, 0); got != 0 {
		t.Errorf("df=0 should score 0, got %v", got)
	}
	rare := TFIDF(3, 1000, 2)
	common := TFIDF(3, 1000, 900)
	if rare <= common {
		t.Errorf("rare term (%v) should outscore common term (%v)", rare, common)
	}
	// term in every document has idf log(1) = 0
	if got := TFIDF(3, 100, 100); got != 0 {
		t.Errorf("ubiquitous term should score 0, got %v", got)
	}
	// df > N (possible transiently under concurrent updates) must not go negative
	if got := TFIDF(3, 100, 200); got < 0 {
		t.Errorf("score must be clamped at 0, got %v", got)
	}
}

func TestBM25(t *testing.T) {
	if got := BM25(0, 100, 10, 50, 50, 0, 0); got != 0 {
		t.Errorf("tf=0 should score 0, got %v", got)
	}
	low := BM25(1, 1000, 10, 100, 100, 0, 0)
	high := BM25(10, 1000, 10, 100, 100, 0, 0)
	if high <= low {
		t.Errorf("higher tf should not lower BM25: %v vs %v", high, low)
	}
	// saturation: tf 100 vs tf 10 gain should be < tf 10 vs tf 1 gain
	vhigh := BM25(100, 1000, 10, 100, 100, 0, 0)
	if vhigh-high >= high-low {
		t.Errorf("BM25 must saturate: deltas %v vs %v", vhigh-high, high-low)
	}
}
