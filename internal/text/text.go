// Package text implements the sparse-media feature extraction pipeline MIE
// clients run before Sparse-DPE encoding (paper §VI): tokenization,
// stop-word removal, Porter stemming, and keyword-frequency histogram
// extraction. It also carries the TF-IDF weighting helpers used by the
// ranking layer.
package text

import (
	"math"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// stopWords is the standard small English stop list; these carry no ranking
// signal and are dropped before indexing, as in the paper's prototype.
var stopWords = map[string]struct{}{
	"a": {}, "about": {}, "above": {}, "after": {}, "again": {}, "against": {},
	"all": {}, "am": {}, "an": {}, "and": {}, "any": {}, "are": {}, "as": {},
	"at": {}, "be": {}, "because": {}, "been": {}, "before": {}, "being": {},
	"below": {}, "between": {}, "both": {}, "but": {}, "by": {}, "can": {},
	"did": {}, "do": {}, "does": {}, "doing": {}, "down": {}, "during": {},
	"each": {}, "few": {}, "for": {}, "from": {}, "further": {}, "had": {},
	"has": {}, "have": {}, "having": {}, "he": {}, "her": {}, "here": {},
	"hers": {}, "him": {}, "his": {}, "how": {}, "i": {}, "if": {}, "in": {},
	"into": {}, "is": {}, "it": {}, "its": {}, "just": {}, "me": {},
	"more": {}, "most": {}, "my": {}, "no": {}, "nor": {}, "not": {},
	"now": {}, "of": {}, "off": {}, "on": {}, "once": {}, "only": {},
	"or": {}, "other": {}, "our": {}, "ours": {}, "out": {}, "over": {},
	"own": {}, "same": {}, "she": {}, "should": {}, "so": {}, "some": {},
	"such": {}, "than": {}, "that": {}, "the": {}, "their": {}, "theirs": {},
	"them": {}, "then": {}, "there": {}, "these": {}, "they": {}, "this": {},
	"those": {}, "through": {}, "to": {}, "too": {}, "under": {}, "until": {},
	"up": {}, "very": {}, "was": {}, "we": {}, "were": {}, "what": {},
	"when": {}, "where": {}, "which": {}, "while": {}, "who": {}, "whom": {},
	"why": {}, "will": {}, "with": {}, "you": {}, "your": {}, "yours": {},
}

// IsStopWord reports whether the lowercase word is on the stop list.
func IsStopWord(w string) bool {
	_, ok := stopWords[w]
	return ok
}

// Tokenize splits raw text into lowercase alphanumeric tokens. Everything
// that is not a letter or digit separates tokens; tokens shorter than two
// runes are dropped.
func Tokenize(raw string) []string {
	var tokens []string
	fields := strings.FieldsFunc(raw, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	for _, f := range fields {
		f = strings.ToLower(f)
		if utf8.RuneCountInString(f) < 2 {
			continue
		}
		tokens = append(tokens, f)
	}
	return tokens
}

// Term is a stemmed keyword with its in-document frequency.
type Term struct {
	Word string
	Freq uint64
}

// Histogram is the sparse feature-vector representation of a text document:
// its distinct stemmed keywords and their frequencies, sorted by word for
// deterministic iteration.
type Histogram []Term

// Extract runs the full client-side text pipeline: tokenize, drop stop
// words, stem, and count. The result is what gets Sparse-DPE encoded.
func Extract(raw string) Histogram {
	counts := make(map[string]uint64)
	for _, tok := range Tokenize(raw) {
		if IsStopWord(tok) {
			continue
		}
		stem := Stem(tok)
		if len(stem) < 2 {
			continue
		}
		counts[stem]++
	}
	h := make(Histogram, 0, len(counts))
	for w, c := range counts {
		h = append(h, Term{Word: w, Freq: c})
	}
	sort.Slice(h, func(i, j int) bool { return h[i].Word < h[j].Word })
	return h
}

// TotalFreq returns the sum of term frequencies (document length in
// keywords).
func (h Histogram) TotalFreq() uint64 {
	var n uint64
	for _, t := range h {
		n += t.Freq
	}
	return n
}

// TFIDF computes the classic term weight used by both MIE and the MSSE
// baselines for ranked retrieval: tf * log(N/df), with tf the raw term
// frequency, N the corpus size and df the number of documents containing
// the term. df == 0 or N == 0 yields 0.
func TFIDF(tf uint64, docCount, docFreq int) float64 {
	if tf == 0 || docFreq <= 0 || docCount <= 0 {
		return 0
	}
	idf := math.Log(float64(docCount) / float64(docFreq))
	if idf < 0 {
		idf = 0
	}
	return float64(tf) * idf
}

// BM25 is an alternative weighting function (paper: "more complex functions
// could be used without loss of generality, e.g. BM25"). k1 and b take their
// customary defaults when zero.
func BM25(tf uint64, docCount, docFreq int, docLen, avgDocLen float64, k1, b float64) float64 {
	if tf == 0 || docFreq <= 0 || docCount <= 0 {
		return 0
	}
	if k1 == 0 {
		k1 = 1.2
	}
	if b == 0 {
		b = 0.75
	}
	if avgDocLen <= 0 {
		avgDocLen = 1
	}
	idf := math.Log(1 + (float64(docCount)-float64(docFreq)+0.5)/(float64(docFreq)+0.5))
	tff := float64(tf)
	return idf * (tff * (k1 + 1)) / (tff + k1*(1-b+b*docLen/avgDocLen))
}
