package text

// Porter stemming algorithm (M.F. Porter, 1980), implemented from the
// original paper's step descriptions. The paper's MIE prototype performs
// "standard keyword stemming" client-side before Sparse-DPE encoding; this
// is that component.

// isConsonant reports whether w[i] is a consonant in Porter's sense:
// a letter other than a/e/i/o/u, and 'y' is a consonant only when preceded
// by a vowel... precisely, 'y' is a vowel iff the preceding letter is a
// consonant.
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC sequences in w[:end], where the word
// is viewed as [C](VC)^m[V].
func measure(w []byte, end int) int {
	n := 0
	i := 0
	// skip initial consonants
	for i < end && isConsonant(w, i) {
		i++
	}
	for {
		// skip vowels
		for i < end && !isConsonant(w, i) {
			i++
		}
		if i >= end {
			return n
		}
		// skip consonants
		for i < end && isConsonant(w, i) {
			i++
		}
		n++
		if i >= end {
			return n
		}
	}
}

// hasVowel reports whether w[:end] contains a vowel.
func hasVowel(w []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether w[:end] ends with a doubled consonant.
func endsDoubleConsonant(w []byte, end int) bool {
	if end < 2 {
		return false
	}
	return w[end-1] == w[end-2] && isConsonant(w, end-1)
}

// endsCVC reports *o: w[:end] ends consonant-vowel-consonant where the final
// consonant is not w, x, or y.
func endsCVC(w []byte, end int) bool {
	if end < 3 {
		return false
	}
	if !isConsonant(w, end-3) || isConsonant(w, end-2) || !isConsonant(w, end-1) {
		return false
	}
	switch w[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, end int, s string) bool {
	if end < len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if w[end-len(s)+i] != s[i] {
			return false
		}
	}
	return true
}

// Stem applies the Porter algorithm to a lowercase ASCII word and returns
// its stem. Words of length <= 2 are returned unchanged, per the original
// algorithm.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	end := len(w)

	// Step 1a.
	switch {
	case hasSuffix(w, end, "sses"):
		end -= 2
	case hasSuffix(w, end, "ies"):
		end -= 2
	case hasSuffix(w, end, "ss"):
		// no change
	case hasSuffix(w, end, "s"):
		end--
	}

	// Step 1b.
	if hasSuffix(w, end, "eed") {
		if measure(w, end-3) > 0 {
			end--
		}
	} else {
		applied := false
		if hasSuffix(w, end, "ed") && hasVowel(w, end-2) {
			end -= 2
			applied = true
		} else if hasSuffix(w, end, "ing") && hasVowel(w, end-3) {
			end -= 3
			applied = true
		}
		if applied {
			switch {
			case hasSuffix(w, end, "at"), hasSuffix(w, end, "bl"), hasSuffix(w, end, "iz"):
				w = append(w[:end], 'e')
				end++
			case endsDoubleConsonant(w, end) && w[end-1] != 'l' && w[end-1] != 's' && w[end-1] != 'z':
				end--
			case measure(w, end) == 1 && endsCVC(w, end):
				w = append(w[:end], 'e')
				end++
			}
		}
	}

	// Step 1c.
	if hasSuffix(w, end, "y") && hasVowel(w, end-1) {
		w[end-1] = 'i'
	}

	// replaceSuffix replaces suffix s with r when measure of the stem > m.
	replaceSuffix := func(s, r string, m int) bool {
		if !hasSuffix(w, end, s) {
			return false
		}
		stemEnd := end - len(s)
		if measure(w, stemEnd) <= m {
			return true // suffix matched but condition failed: stop scanning
		}
		w = append(w[:stemEnd], r...)
		end = stemEnd + len(r)
		return true
	}

	// Step 2 (m > 0 replacements, keyed by penultimate letter in the paper;
	// a linear scan is fine at these sizes).
	step2 := []struct{ s, r string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
		{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
		{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
		{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
	}
	for _, p := range step2 {
		if replaceSuffix(p.s, p.r, 0) {
			break
		}
	}

	// Step 3.
	step3 := []struct{ s, r string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
		{"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, p := range step3 {
		if replaceSuffix(p.s, p.r, 0) {
			break
		}
	}

	// Step 4 (m > 1 deletions). ION has the extra (*S or *T) condition.
	step4 := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
	}
	for _, s := range step4 {
		if !hasSuffix(w, end, s) {
			continue
		}
		stemEnd := end - len(s)
		if s == "ion" && !(stemEnd > 0 && (w[stemEnd-1] == 's' || w[stemEnd-1] == 't')) {
			break
		}
		if measure(w, stemEnd) > 1 {
			end = stemEnd
		}
		break
	}

	// Step 5a.
	if hasSuffix(w, end, "e") {
		m := measure(w, end-1)
		if m > 1 || (m == 1 && !endsCVC(w, end-1)) {
			end--
		}
	}
	// Step 5b.
	if measure(w, end) > 1 && endsDoubleConsonant(w, end) && w[end-1] == 'l' {
		end--
	}

	return string(w[:end])
}
