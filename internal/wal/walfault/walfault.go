// Package walfault is a deterministic fault-injection harness for the
// write-ahead log: an in-memory implementation of wal.File whose operations
// can be scripted to fail, short-write, or crash — simulating power loss —
// at an exact operation count or byte offset.
//
// The harness distinguishes the file's *logical* content (what the process
// has written) from its *durable* content (what would survive a power cut).
// A crash freezes the durable image: for a byte-offset crash, exactly the
// first CrashAtByte bytes of the file survive — the torn-tail scenario the
// log's recovery reader must truncate cleanly; for an operation-count crash
// (or a manual Crash call), only bytes covered by the last Sync survive.
// After a crash every operation fails with ErrCrashed, and reopening the
// path through a Disk yields a fresh file seeded with the durable image,
// exactly like remounting the disk after the machine comes back.
package walfault

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Injected fault errors.
var (
	// ErrInjected is returned by operations the Script marks as failing.
	ErrInjected = errors.New("walfault: injected fault")
	// ErrCrashed is returned by every operation after the file crashed.
	ErrCrashed = errors.New("walfault: file crashed (power loss)")
)

// Script schedules faults deterministically. Counters are 1-based ("the
// Nth call"); zero disables a fault. At most one fault triggers per
// operation, checked in the field order below.
type Script struct {
	// FailWriteAt fails the Nth Write outright: no bytes are written.
	FailWriteAt int
	// ShortWriteAt makes the Nth Write persist only half its bytes, then
	// return ErrInjected — a disk-full or signal-interrupted write.
	ShortWriteAt int
	// FailSyncAt fails the Nth Sync; the durable watermark does not move.
	FailSyncAt int
	// CrashAtOp crashes the file at the Nth Write before any of its bytes
	// land: everything unsynced is lost.
	CrashAtOp int
	// CrashAtByte crashes the file the moment its logical size would
	// exceed this offset: the write stops exactly there and the durable
	// image is the first CrashAtByte bytes. This is the knob the
	// crash-matrix tests sweep across every byte of a record.
	CrashAtByte int64
}

// File is an in-memory wal.File with scripted faults.
type File struct {
	mu      sync.Mutex
	script  Script
	data    []byte
	pos     int64
	synced  int64 // durable watermark: data[:synced] survives an op crash
	writes  int
	syncs   int
	crashed bool
	durable []byte // frozen at crash time
}

// New creates an empty scripted file.
func New(script Script) *File { return &File{script: script} }

// Reopen creates a fault-free file seeded with data — the disk as the next
// boot sees it. The seed counts as durable.
func Reopen(data []byte) *File {
	f := &File{data: append([]byte(nil), data...)}
	f.synced = int64(len(f.data))
	return f
}

// Crash simulates a power cut between operations: unsynced bytes are lost
// and every later operation fails with ErrCrashed.
func (f *File) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crash(f.synced)
}

// crash freezes the durable image at the first durableLen bytes. Callers
// hold f.mu.
func (f *File) crash(durableLen int64) {
	if f.crashed {
		return
	}
	f.crashed = true
	if durableLen > int64(len(f.data)) {
		durableLen = int64(len(f.data))
	}
	f.durable = append([]byte(nil), f.data[:durableLen]...)
}

// Crashed reports whether the file has crashed.
func (f *File) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Durable returns the bytes that survive: the frozen image after a crash,
// or (clean shutdown) everything written.
func (f *File) Durable() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return append([]byte(nil), f.durable...)
	}
	return append([]byte(nil), f.data...)
}

// Write appends/overwrites at the current offset, subject to the script.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	f.writes++
	switch {
	case f.script.FailWriteAt == f.writes:
		return 0, ErrInjected
	case f.script.ShortWriteAt == f.writes:
		n := len(p) / 2
		f.commit(p[:n])
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, n, len(p))
	case f.script.CrashAtOp == f.writes:
		f.crash(f.synced)
		return 0, ErrCrashed
	}
	if f.script.CrashAtByte > 0 && f.pos+int64(len(p)) > f.script.CrashAtByte {
		n := 0
		if f.script.CrashAtByte > f.pos {
			n = int(f.script.CrashAtByte - f.pos)
		}
		f.commit(p[:n])
		f.crash(f.script.CrashAtByte)
		return n, ErrCrashed
	}
	f.commit(p)
	return len(p), nil
}

// commit lands n bytes at the current offset. Callers hold f.mu.
func (f *File) commit(p []byte) {
	end := f.pos + int64(len(p))
	if end > int64(len(f.data)) {
		f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
	}
	copy(f.data[f.pos:end], p)
	f.pos = end
}

// Sync advances the durable watermark, subject to the script.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if f.script.FailSyncAt == f.syncs {
		return ErrInjected
	}
	f.synced = int64(len(f.data))
	return nil
}

// Read reads from the current offset.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	if f.pos >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

// Seek repositions the offset.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.data))
	default:
		return 0, fmt.Errorf("walfault: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, errors.New("walfault: negative offset")
	}
	f.pos = base + offset
	return f.pos, nil
}

// Truncate cuts the file to size (growing is not supported).
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
	}
	if f.synced > size {
		f.synced = size
	}
	return nil
}

// Close is a no-op so recovery can always release a crashed file.
func (f *File) Close() error { return nil }

// Disk is an in-memory collection of scripted files keyed by path; plug its
// Open method into wal.Options.OpenFile to run a whole service's logs
// against scripted faults. Reopening a crashed path yields a fresh file
// seeded with the crashed file's durable image — the post-reboot disk.
type Disk struct {
	mu      sync.Mutex
	files   map[string]*File
	scripts map[string]Script
}

// NewDisk creates an empty disk.
func NewDisk() *Disk {
	return &Disk{files: make(map[string]*File), scripts: make(map[string]Script)}
}

// Script installs the fault script applied when path is next created (it
// does not retroactively affect an already-open file).
func (d *Disk) Script(path string, s Script) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.scripts[path] = s
}

// Open returns the file at path, creating it (with its script) on first
// use, or reincarnating it from its durable image if it crashed. *File
// satisfies wal.File, so `func(p string) (wal.File, error) { return
// d.Open(p) }` plugs straight into wal.Options.OpenFile.
func (d *Disk) Open(path string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path]
	switch {
	case !ok:
		f = New(d.scripts[path])
	case f.Crashed():
		f = Reopen(f.Durable())
	default:
		// Same incarnation: rewind so the opener sees the whole file.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
	}
	d.files[path] = f
	return f, nil
}

// File returns the current incarnation of path, or nil.
func (d *Disk) File(path string) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.files[path]
}
