// Package wal is an append-only write-ahead log for repository mutations:
// length-prefixed, CRC32-checksummed records with a configurable sync policy
// and a recovery reader that tolerates torn tails.
//
// The log is the durability half of the server's snapshot+WAL persistence:
// every acknowledged mutation is appended (and, under SyncAlways, fsynced)
// before the caller acknowledges it, and a periodic snapshot rotates the log
// back to empty. After a crash, recovery replays the snapshot and then every
// complete record of the log; a partial record at the tail — the signature
// of dying mid-write — is silently truncated, never an error. A record that
// fails its checksum, or whose length prefix runs past the end of the file,
// ends recovery at the last byte of the preceding record: the log's valid
// prefix is exactly what the process had written completely.
//
// The package is stdlib-only and deals in opaque []byte records; callers
// own the payload encoding. All file I/O goes through the File interface so
// fault-injection tests (internal/wal/walfault) can script failures, short
// writes and power cuts at exact byte offsets.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// logMagic identifies a WAL file; it is written when the log is created and
// verified on every open.
const logMagic = "MIEWAL1\n"

// HeaderSize is the length of the file header (the magic string).
const HeaderSize = len(logMagic)

// recHeaderSize is the per-record header: uint32 payload length plus uint32
// CRC32 (IEEE) of the payload, both big-endian.
const recHeaderSize = 8

// MaxRecordSize bounds a single record's payload. A length prefix beyond it
// is treated as corruption (recovery truncates there) and Append rejects it,
// so a flipped bit in a length field can never make recovery attempt a
// multi-gigabyte allocation.
const MaxRecordSize = 1 << 28

// Common errors.
var (
	// ErrNotWAL is returned when opening a file whose header is present but
	// not a WAL magic — the caller is pointing the log at someone else's
	// data, which must never be silently clobbered.
	ErrNotWAL = errors.New("wal: not a write-ahead log")
	// ErrRecordTooLarge is returned by Append for payloads over
	// MaxRecordSize (or empty payloads, which the format reserves).
	ErrRecordTooLarge = errors.New("wal: record size out of range")
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Append returns: an acknowledged append
	// survives kill -9 and power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most every Options.SyncInterval (a background
	// flusher covers idle periods), bounding the loss window to the
	// interval.
	SyncInterval
	// SyncNever issues no explicit fsyncs between rotations; durability
	// rides on the OS page cache (process crashes lose nothing, power loss
	// may lose everything since the last snapshot).
	SyncNever
)

// ParseSyncPolicy maps the flag spellings "always", "interval" and "never"
// to their policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// File is the slice of *os.File the log needs. Production logs sit on real
// files; fault-injection tests substitute scripted in-memory files.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Observer receives low-level log events; implementations must be cheap and
// concurrency-safe. It exists so the metrics layer can count appends and
// fsyncs without coupling this package to the metrics registry.
type Observer interface {
	// Appended reports one record of n encoded bytes (header included)
	// reaching the file.
	Appended(n int)
	// Synced reports one fsync issued.
	Synced()
}

// Options configures a log.
type Options struct {
	// Sync is the append durability policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval; 0 means 100ms.
	SyncInterval time.Duration
	// OpenFile overrides how the backing file is opened (fault-injection
	// tests); nil means os.OpenFile with O_RDWR|O_CREATE.
	OpenFile func(path string) (File, error)
	// Observer, when non-nil, is notified of appends and fsyncs.
	Observer Observer
}

// Recovery summarizes what Open found in an existing log.
type Recovery struct {
	// Records is the number of complete records recovered.
	Records int
	// ValidBytes is the length of the log's valid prefix (header included);
	// the file is truncated to it.
	ValidBytes int64
	// DroppedBytes is how much torn or corrupt tail was discarded.
	DroppedBytes int64
}

// Log is an append-only record log. All methods are safe for concurrent
// use; appends are serialized internally.
type Log struct {
	path string
	obs  Observer

	mu       sync.Mutex
	f        File
	size     int64 // end offset of the valid log
	dirty    bool  // bytes appended since the last fsync
	err      error // sticky: set when the log can no longer guarantee its contract
	policy   SyncPolicy
	interval time.Duration
	lastSync time.Time

	stopFlush chan struct{}
	flushDone chan struct{}
}

// nopObserver backs nil Options.Observer.
type nopObserver struct{}

func (nopObserver) Appended(int) {}
func (nopObserver) Synced()      {}

// Open opens (or creates) the log at path and recovers its contents: replay
// is called once per complete record in append order (nil skips them), the
// file is truncated after the last complete record, and the returned log
// appends from there. A missing or shorter-than-header file is a fresh log;
// a present header that is not the WAL magic is ErrNotWAL. An error from
// replay aborts the open and is returned verbatim (wrapped).
func Open(path string, opts Options, replay func(rec []byte) error) (*Log, Recovery, error) {
	openFile := opts.OpenFile
	if openFile == nil {
		openFile = func(p string) (File, error) {
			return os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
		}
	}
	f, err := openFile(path)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil {
		_, err = f.Seek(0, io.SeekStart)
	}
	if err != nil {
		_ = f.Close()
		return nil, Recovery{}, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	rec, err := ReadLog(bufio.NewReader(io.LimitReader(f, size)), replay)
	if err != nil {
		_ = f.Close()
		return nil, Recovery{}, fmt.Errorf("wal: recover %s: %w", path, err)
	}
	rec.DroppedBytes = size - rec.ValidBytes

	l := &Log{
		path:     path,
		obs:      opts.Observer,
		f:        f,
		policy:   opts.Sync,
		interval: opts.SyncInterval,
		lastSync: time.Now(),
	}
	if l.obs == nil {
		l.obs = nopObserver{}
	}
	if l.interval <= 0 {
		l.interval = 100 * time.Millisecond
	}
	if rec.ValidBytes < int64(HeaderSize) {
		// Fresh log (or a creation torn mid-header): write the header.
		if err := l.initHeader(); err != nil {
			_ = f.Close()
			return nil, Recovery{}, err
		}
		rec.ValidBytes = int64(HeaderSize)
		rec.DroppedBytes = size // everything pre-existing was torn header
	} else if rec.ValidBytes < size {
		// Torn or corrupt tail: cut it off so appends continue from the
		// last complete record.
		if err := f.Truncate(rec.ValidBytes); err != nil {
			_ = f.Close()
			return nil, Recovery{}, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, Recovery{}, fmt.Errorf("wal: sync %s: %w", path, err)
		}
		l.obs.Synced()
	}
	if _, err := f.Seek(rec.ValidBytes, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, Recovery{}, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	l.size = rec.ValidBytes
	if l.policy == SyncInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, rec, nil
}

// initHeader (re)writes the magic at the start of an empty log.
func (l *Log) initHeader() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: init %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: init %s: %w", l.path, err)
	}
	if _, err := io.WriteString(l.f, logMagic); err != nil {
		return fmt.Errorf("wal: init %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: init %s: %w", l.path, err)
	}
	l.obs.Synced()
	return nil
}

// ReadLog scans one complete log image (header plus records) from r,
// calling fn (if non-nil) for each complete record in order. It stops —
// without error — at the first torn or corrupt record: ValidBytes reports
// the prefix up to the last complete record, which is where recovery
// truncates. DroppedBytes counts only bytes consumed past the valid prefix;
// Open replaces it with the exact file remainder. The only errors are
// ErrNotWAL (full header present, wrong magic) and an error returned by fn.
func ReadLog(r io.Reader, fn func(rec []byte) error) (Recovery, error) {
	var rec Recovery
	header := make([]byte, HeaderSize)
	n, err := io.ReadFull(r, header)
	if err != nil {
		// Shorter than a header: a log truncated mid-creation, i.e. empty.
		rec.DroppedBytes = int64(n)
		return rec, nil
	}
	if string(header) != logMagic {
		return rec, ErrNotWAL
	}
	rec.ValidBytes = int64(HeaderSize)
	var hdr [recHeaderSize]byte
	for {
		n, err := io.ReadFull(r, hdr[:])
		if err != nil {
			rec.DroppedBytes += int64(n)
			return rec, nil // torn mid-header
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordSize {
			rec.DroppedBytes += recHeaderSize
			return rec, nil // corrupt length prefix
		}
		payload := make([]byte, length)
		n, err = io.ReadFull(r, payload)
		if err != nil {
			rec.DroppedBytes += recHeaderSize + int64(n)
			return rec, nil // torn mid-payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			rec.DroppedBytes += recHeaderSize + int64(length)
			return rec, nil // corrupt payload
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return rec, err
			}
		}
		rec.Records++
		rec.ValidBytes += recHeaderSize + int64(length)
	}
}

// EncodeRecord returns the on-disk form of one record: length prefix, CRC32
// and payload. Exposed for tests and fuzzing; Append uses it internally.
func EncodeRecord(payload []byte) []byte {
	buf := make([]byte, recHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderSize:], payload)
	return buf
}

// Append writes one record and applies the sync policy; when it returns nil
// under SyncAlways, the record is on stable storage. A failed or short
// write is repaired by truncating the file back to the previous record so
// the log stays appendable; if the repair — or any fsync — fails, the log
// can no longer tell what is durable and poisons itself: every later Append
// returns the sticky error until a successful Reset.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(payload))
	}
	buf := EncodeRecord(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	n, err := l.f.Write(buf)
	if err != nil || n < len(buf) {
		if err == nil {
			err = io.ErrShortWrite
		}
		// Cut the partial record back out so the next append starts on a
		// record boundary; a crash before the repair persists leaves a torn
		// tail, which recovery truncates the same way.
		if terr := l.truncateTo(l.size); terr != nil {
			l.err = fmt.Errorf("wal: unrepairable after failed append: %w", terr)
		}
		return fmt.Errorf("wal: append to %s: %w", l.path, err)
	}
	l.size += int64(len(buf))
	l.dirty = true
	l.obs.Appended(len(buf))
	switch l.policy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.interval {
			return l.syncLocked()
		}
	}
	return nil
}

// truncateTo cuts the file to size and repositions the write offset.
func (l *Log) truncateTo(size int64) error {
	if err := l.f.Truncate(size); err != nil {
		return err
	}
	_, err := l.f.Seek(size, io.SeekStart)
	return err
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

// syncLocked fsyncs if dirty. An fsync failure leaves the durable state
// unknowable (the kernel may have dropped the dirty pages), so it poisons
// the log rather than let a later "successful" append imply the earlier
// record is durable too.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync %s: %w", l.path, err)
		return l.err
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.obs.Synced()
	return nil
}

// flushLoop is the SyncInterval background flusher: it bounds the loss
// window even when appends stop arriving.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	ticker := time.NewTicker(l.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.mu.Lock()
			if l.err == nil {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.stopFlush:
			return
		}
	}
}

// Reset rotates the log: every record is dropped (the caller has persisted
// their effects elsewhere, e.g. in a snapshot) and the file shrinks back to
// its header. A successful Reset also clears a poisoned log — the snapshot
// the caller just wrote supersedes whatever durability was in doubt.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.truncateTo(int64(HeaderSize)); err != nil {
		l.err = fmt.Errorf("wal: reset %s: %w", l.path, err)
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: reset %s: %w", l.path, err)
		return l.err
	}
	l.obs.Synced()
	l.size = int64(HeaderSize)
	l.dirty = false
	l.lastSync = time.Now()
	l.err = nil
	return nil
}

// Size returns the current end offset of the log (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close flushes (best effort) and closes the backing file. The log is
// unusable afterwards.
func (l *Log) Close() error {
	if l.stopFlush != nil {
		close(l.stopFlush)
		<-l.flushDone
		l.stopFlush = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	if l.err == nil && l.policy != SyncNever {
		firstErr = l.syncLocked()
	}
	if err := l.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if l.err == nil {
		l.err = errors.New("wal: log closed")
	}
	return firstErr
}
