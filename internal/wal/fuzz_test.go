package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the recovery reader. The decoder
// sits on the crash-recovery path, so it must never panic, never attempt an
// allocation driven by a corrupt length prefix, and must hand back a valid
// prefix that is a fixed point: re-scanning exactly the valid prefix yields
// the same records with nothing dropped — the property the torn-tail
// truncation in Open relies on.
func FuzzWALReplay(f *testing.F) {
	// A clean two-record log.
	var clean bytes.Buffer
	clean.WriteString(logMagic)
	clean.Write(EncodeRecord([]byte("hello wal")))
	clean.Write(EncodeRecord([]byte("second record")))
	f.Add(clean.Bytes())
	// Truncated tail: the second record cut mid-payload.
	f.Add(clean.Bytes()[:clean.Len()-5])
	// Flipped CRC byte in the first record.
	flipped := append([]byte(nil), clean.Bytes()...)
	flipped[HeaderSize+5] ^= 0xff
	f.Add(flipped)
	// Oversize length prefix after one good record.
	var oversize bytes.Buffer
	oversize.WriteString(logMagic)
	oversize.Write(EncodeRecord([]byte("ok")))
	var hdr [recHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], 0xffffffff)
	oversize.Write(hdr[:])
	f.Add(oversize.Bytes())
	// Bare header, empty input, wrong magic.
	f.Add([]byte(logMagic))
	f.Add([]byte{})
	f.Add([]byte("NOTAWAL!rest of the file"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs [][]byte
		rec, err := ReadLog(bytes.NewReader(data), func(r []byte) error {
			recs = append(recs, append([]byte(nil), r...))
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrNotWAL) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if rec.ValidBytes > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input %d", rec.ValidBytes, len(data))
		}
		if rec.Records != len(recs) {
			t.Fatalf("Records = %d but fn saw %d", rec.Records, len(recs))
		}
		if rec.ValidBytes == 0 && rec.Records > 0 {
			t.Fatal("records recovered from an empty valid prefix")
		}
		if rec.ValidBytes == 0 {
			return
		}
		// Fixed point: the valid prefix re-scans to the same records.
		var again [][]byte
		rec2, err := ReadLog(bytes.NewReader(data[:rec.ValidBytes]), func(r []byte) error {
			again = append(again, append([]byte(nil), r...))
			return nil
		})
		if err != nil {
			t.Fatalf("valid prefix failed to re-scan: %v", err)
		}
		if rec2.Records != rec.Records || rec2.ValidBytes != rec.ValidBytes || rec2.DroppedBytes != 0 {
			t.Fatalf("re-scan of valid prefix: %+v, want %+v with 0 dropped", rec2, rec)
		}
		for i := range recs {
			if !bytes.Equal(recs[i], again[i]) {
				t.Fatalf("record %d changed between scans", i)
			}
		}
	})
}
