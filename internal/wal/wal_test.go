package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mie/internal/wal/walfault"
)

// collect returns a replay fn appending copies of each record to out.
func collect(out *[][]byte) func([]byte) error {
	return func(rec []byte) error {
		*out = append(*out, append([]byte(nil), rec...))
		return nil
	}
}

func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i%7))))
	}
	return recs
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, rec, err := Open(path, Options{Sync: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 || rec.ValidBytes != int64(HeaderSize) {
		t.Fatalf("fresh log recovery = %+v", rec)
	}
	want := testRecords(10)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	l2, rec2, err := Open(path, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Records != len(want) || rec2.DroppedBytes != 0 {
		t.Errorf("recovery = %+v, want %d records, 0 dropped", rec2, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The reopened log keeps appending from the recovered tail.
	if err := l2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got = nil
	l3, rec3, err := Open(path, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rec3.Records != len(want)+1 || string(got[len(got)-1]) != "after-reopen" {
		t.Errorf("after reopen append: recovery = %+v, last = %q", rec3, got[len(got)-1])
	}
}

// appendRaw tacks raw bytes onto the log file out-of-band, simulating the
// torn tail a crash mid-write leaves behind.
func appendRaw(t *testing.T, path string, raw []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailEveryByteOffset(t *testing.T) {
	// Build a clean 3-record log image, then for every truncation point
	// inside the final record verify recovery lands exactly on record 2 —
	// the wal-level half of the crash matrix.
	recs := testRecords(3)
	var img bytes.Buffer
	img.WriteString(logMagic)
	for _, r := range recs[:2] {
		img.Write(EncodeRecord(r))
	}
	prefixLen := img.Len()
	img.Write(EncodeRecord(recs[2]))
	for cut := prefixLen; cut < img.Len(); cut++ {
		path := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(path, img.Bytes()[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		l, rec, err := Open(path, Options{}, collect(&got))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if rec.Records != 2 || len(got) != 2 {
			t.Fatalf("cut at %d: recovered %d records, want 2", cut, rec.Records)
		}
		if rec.ValidBytes != int64(prefixLen) {
			t.Errorf("cut at %d: valid bytes %d, want %d", cut, rec.ValidBytes, prefixLen)
		}
		if want := int64(cut - prefixLen); rec.DroppedBytes != want {
			t.Errorf("cut at %d: dropped %d, want %d", cut, rec.DroppedBytes, want)
		}
		// The torn fragment must be gone: appends and re-recovery stay clean.
		if err := l.Append([]byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		var again [][]byte
		l2, rec2, err := Open(path, Options{}, collect(&again))
		if err != nil || rec2.Records != 3 || string(again[2]) != "fresh" {
			t.Fatalf("cut at %d: post-truncate log corrupt: %+v %v", cut, rec2, err)
		}
		_ = l2.Close()
	}
}

func TestCorruptCRCTruncatesAtRecordStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.wal")
	l, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(3) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore2 := l.Size() // end of the log
	_ = l.Close()
	// Flip one payload byte of the final record.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0x40
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	l2, rec, err := Open(path, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Records != 2 {
		t.Errorf("recovered %d records past a CRC flip, want 2", rec.Records)
	}
	if rec.ValidBytes >= sizeBefore2 {
		t.Errorf("corrupt record not dropped: valid %d", rec.ValidBytes)
	}
}

func TestOversizeLengthPrefixTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "len.wal")
	l, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	// A record header claiming a payload far beyond MaxRecordSize must stop
	// recovery without attempting the allocation.
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], 0xfffffff0)
	appendRaw(t, path, hdr[:])
	var got [][]byte
	l2, rec, err := Open(path, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Records != 1 || string(got[0]) != "good" {
		t.Errorf("recovery = %+v, want the one good record", rec)
	}
}

func TestRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign")
	if err := os.WriteFile(path, []byte("definitely not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}, nil); !errors.Is(err, ErrNotWAL) {
		t.Errorf("err = %v, want ErrNotWAL", err)
	}
}

func TestResetRotates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.wal")
	l, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, r := range testRecords(5) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != int64(HeaderSize) {
		t.Errorf("size after reset = %d", l.Size())
	}
	if err := l.Append([]byte("post-rotate")); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	if _, err := l.f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if rec, err := ReadLog(l.f, collect(&got)); err != nil || rec.Records != 1 {
		t.Fatalf("after rotate: %+v %v, want exactly the post-rotate record", rec, err)
	}
}

func TestAppendRejectsOutOfRangeRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sz.wal")
	l, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("empty: err = %v", err)
	}
}

// diskOpen adapts a walfault disk to Options.OpenFile.
func diskOpen(disk *walfault.Disk) func(string) (File, error) {
	return func(p string) (File, error) { return disk.Open(p) }
}

// faultLog opens a log over a scripted walfault disk.
func faultLog(t *testing.T, disk *walfault.Disk, path string, opts Options) *Log {
	t.Helper()
	opts.OpenFile = diskOpen(disk)
	l, _, err := Open(path, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestShortWriteIsRepaired(t *testing.T) {
	disk := walfault.NewDisk()
	// Write 1 is the header; record appends start at write 2. Fail the
	// second record halfway.
	disk.Script("log", walfault.Script{ShortWriteAt: 3})
	l := faultLog(t, disk, "log", Options{Sync: SyncAlways})
	if err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("two")); err == nil {
		t.Fatal("short write not surfaced")
	}
	// The log repaired itself: the next append succeeds and recovery sees
	// records one and three only.
	if err := l.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	_, rec, err := Open("log", Options{OpenFile: diskOpen(disk)}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 2 || string(got[0]) != "one" || string(got[1]) != "three" {
		t.Errorf("recovered %q, want [one three]", got)
	}
}

func TestFailedWriteIsRepaired(t *testing.T) {
	disk := walfault.NewDisk()
	disk.Script("log", walfault.Script{FailWriteAt: 2})
	l := faultLog(t, disk, "log", Options{Sync: SyncAlways})
	if err := l.Append([]byte("one")); !errors.Is(err, walfault.ErrInjected) {
		t.Fatalf("err = %v, want injected write failure", err)
	}
	if err := l.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	_, rec, err := Open("log", Options{OpenFile: diskOpen(disk)}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 1 || string(got[0]) != "two" {
		t.Errorf("recovered %q, want [two]", got)
	}
}

func TestSyncFailurePoisonsUntilReset(t *testing.T) {
	disk := walfault.NewDisk()
	// Sync 1 covers the header; the first record append issues sync 2.
	disk.Script("log", walfault.Script{FailSyncAt: 2})
	l := faultLog(t, disk, "log", Options{Sync: SyncAlways})
	if err := l.Append([]byte("one")); !errors.Is(err, walfault.ErrInjected) {
		t.Fatalf("err = %v, want injected sync failure", err)
	}
	// After a failed fsync the durable state is unknowable: the log must
	// refuse further appends rather than imply durability it cannot have.
	if err := l.Append([]byte("two")); err == nil {
		t.Fatal("append after failed fsync must fail")
	}
	// A rotation supersedes the doubt and revives the log.
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	_, rec, err := Open("log", Options{OpenFile: diskOpen(disk)}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 1 || string(got[0]) != "three" {
		t.Errorf("recovered %q, want [three]", got)
	}
}

func TestCrashDropsUnsyncedUnderSyncNever(t *testing.T) {
	disk := walfault.NewDisk()
	l := faultLog(t, disk, "log", Options{Sync: SyncNever})
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("synced-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append([]byte(fmt.Sprintf("lost-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	disk.File("log").Crash()

	var got [][]byte
	_, rec, err := Open("log", Options{OpenFile: diskOpen(disk)}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 3 {
		t.Fatalf("recovered %d records, want the 3 synced ones (got %q)", rec.Records, got)
	}
	for i, r := range got {
		if want := fmt.Sprintf("synced-%d", i); string(r) != want {
			t.Errorf("record %d = %q, want %q", i, r, want)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestObserverCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.wal")
	var o countingObserver
	l, _, err := Open(path, Options{Sync: SyncAlways, Observer: &o}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, r := range testRecords(4) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if o.appends != 4 {
		t.Errorf("appends = %d, want 4", o.appends)
	}
	// Header init + one fsync per append under SyncAlways.
	if o.syncs != 5 {
		t.Errorf("syncs = %d, want 5", o.syncs)
	}
	if o.bytes <= 0 {
		t.Errorf("bytes = %d", o.bytes)
	}
}

type countingObserver struct {
	appends, syncs, bytes int
}

func (o *countingObserver) Appended(n int) { o.appends++; o.bytes += n }
func (o *countingObserver) Synced()        { o.syncs++ }
