// Package ann implements sublinear approximate nearest-neighbor candidate
// generation in Hamming space: multi-probe bit-sampling LSH over packed
// binary codes (the output domain of Dense-DPE), followed by an exact
// re-rank that scores every candidate against the query with whole-word
// popcounts straight out of a flat []uint64 code block.
//
// The structure is L hash tables, each hashing a code by K sampled bit
// positions. A lookup probes the query's own bucket first, then buckets
// whose keys differ in the lowest-confidence hash bits (Lv et al.'s
// multi-probe idea adapted to binary codes): a sampled bit whose corpus
// distribution is balanced near p=0.5 carries the least locality signal and
// is the most likely to have flipped between near neighbors, so flip masks
// are enumerated in increasing order of total imbalance weight. With a probe
// budget of 2^K every bucket of every table is reachable and the candidate
// set provably covers all live codes — the exhaustive setting the parity
// tests pin against the exact linear scan.
//
// Candidates are deduplicated across tables and probes with a visited
// bitmap, then scored in one ascending sweep over the flat code block —
// sequential memory order, vec.HammingWords per candidate, no per-bit access
// and no BitVec materialization.
package ann

import (
	"container/heap"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync"

	"mie/internal/vec"
)

// Options tunes an Index. Zero values take the defaults.
type Options struct {
	// Tables is L, the number of independent hash tables; 0 means 8.
	Tables int
	// Bits is K, the number of sampled bit positions per table (capped at
	// the code length); 0 means 16.
	Bits int
	// Probes is the per-table bucket-probe budget, including the query's own
	// bucket (capped at 2^K, where every bucket is reachable); 0 means 12.
	Probes int
	// Seed drives the per-table bit sampling; 0 means 1.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.Tables <= 0 {
		o.Tables = 8
	}
	if o.Bits <= 0 {
		o.Bits = 16
	}
	if o.Probes <= 0 {
		o.Probes = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Candidate is one live code surfaced by a probe, already exactly scored.
type Candidate struct {
	// Slot is the code's position in the flat block (stable until Compact).
	Slot int
	// Key is the owner the code was added under.
	Key string
	// Dist is the exact Hamming distance between the code and the query.
	Dist int
}

// ProbeStats counts the work one Probe performed.
type ProbeStats struct {
	// Probes is the number of bucket lookups across all tables.
	Probes int
	// Candidates is the number of distinct live codes scored.
	Candidates int
}

// Stats is a point-in-time summary of an Index.
type Stats struct {
	// Live and Dead count codes; Dead are tombstoned slots awaiting Compact.
	Live, Dead int
	// Bits is the code length in bits (0 until the first insert).
	Bits int
	// Tables is L.
	Tables int
}

// table is one of the L hash tables: K sampled bit positions, the buckets
// they induce, and per-bit ones-counts over the live codes (the confidence
// signal the probe sequence orders flips by).
type table struct {
	bits    []int
	ones    []int
	buckets map[uint64][]int32
	masks   []uint64 // cached probe sequence; rebuilt when masksDirty
}

// Index is a multi-probe LSH index over fixed-length binary codes. Multiple
// codes may share one key (an object contributes every encoding of one
// modality); Add replaces, Remove tombstones, Compact reclaims. All methods
// are safe for concurrent use: Probe takes a read lock, mutators a write
// lock.
type Index struct {
	mu   sync.RWMutex
	opts Options

	nbits    int // code length; fixed by the first insert
	wordsPer int // words per code

	codes []uint64 // flat block, wordsPer words per slot
	keys  []string // slot -> owning key
	live  []bool   // slot -> not tombstoned
	slots map[string][]int32

	liveCount  int
	deadCount  int
	tables     []*table
	masksDirty bool
	disabled   bool
}

// New creates an empty index. The code length is fixed by the first insert.
func New(opts Options) *Index {
	opts.setDefaults()
	return &Index{opts: opts, slots: make(map[string][]int32)}
}

// initLocked fixes the code length and samples each table's bit positions.
// Sampling is seeded, so two indexes built with the same options over codes
// of the same length choose identical positions — the determinism snapshot
// restore relies on.
func (ix *Index) initLocked(nbits int) {
	ix.nbits = nbits
	ix.wordsPer = (nbits + 63) / 64
	k := ix.opts.Bits
	if k > nbits {
		k = nbits
	}
	ix.tables = make([]*table, ix.opts.Tables)
	for t := range ix.tables {
		rng := rand.New(rand.NewSource(ix.opts.Seed + int64(t)*7919))
		perm := rng.Perm(nbits)
		ix.tables[t] = &table{
			bits:    perm[:k],
			ones:    make([]int, k),
			buckets: make(map[uint64][]int32),
		}
	}
	ix.masksDirty = true
}

// hashWords computes a table's K-bit bucket key for one packed code.
func hashWords(w []uint64, bitPos []int) uint64 {
	var h uint64
	for j, b := range bitPos {
		h |= (w[b>>6] >> (uint(b) & 63) & 1) << uint(j)
	}
	return h
}

// AddAll replaces key's codes with the given set: any previous codes are
// tombstoned, then each new code is inserted. An empty set is a plain
// remove. All codes in an index must share one length; a mismatch returns
// an error with the index unchanged beyond the removal.
func (ix *Index) AddAll(key string, codes []vec.BitVec) error {
	if key == "" {
		return errors.New("ann: empty key")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.disabled {
		return nil
	}
	ix.removeLocked(key)
	for _, c := range codes {
		if c.Len() == 0 {
			return errors.New("ann: zero-length code")
		}
		if ix.nbits == 0 {
			ix.initLocked(c.Len())
		}
		if c.Len() != ix.nbits {
			return fmt.Errorf("ann: code length %d != index code length %d", c.Len(), ix.nbits)
		}
		ix.addWordsLocked(key, c.Words())
	}
	return nil
}

// addWordsLocked appends one code to the flat block and every table.
func (ix *Index) addWordsLocked(key string, w []uint64) {
	slot := int32(len(ix.keys))
	ix.codes = append(ix.codes, w...)
	ix.keys = append(ix.keys, key)
	ix.live = append(ix.live, true)
	ix.liveCount++
	ix.slots[key] = append(ix.slots[key], slot)
	for _, t := range ix.tables {
		h := hashWords(w, t.bits)
		t.buckets[h] = append(t.buckets[h], slot)
		for j, b := range t.bits {
			if w[b>>6]>>(uint(b)&63)&1 == 1 {
				t.ones[j]++
			}
		}
	}
	ix.masksDirty = true
}

// Remove tombstones every code stored under key. Unknown keys are a no-op.
// Bucket entries are left in place (skipped by probes) until Compact, the
// same tombstone discipline the segmented inverted index uses.
func (ix *Index) Remove(key string) {
	ix.mu.Lock()
	ix.removeLocked(key)
	ix.mu.Unlock()
}

func (ix *Index) removeLocked(key string) {
	for _, slot := range ix.slots[key] {
		if !ix.live[slot] {
			continue
		}
		ix.live[slot] = false
		ix.liveCount--
		ix.deadCount++
		w := ix.codes[int(slot)*ix.wordsPer : (int(slot)+1)*ix.wordsPer]
		for _, t := range ix.tables {
			for j, b := range t.bits {
				if w[b>>6]>>(uint(b)&63)&1 == 1 {
					t.ones[j]--
				}
			}
		}
	}
	delete(ix.slots, key)
	ix.masksDirty = true
}

// Compact rebuilds the flat block and every table without the tombstoned
// slots, in surviving-slot order. A no-op when nothing is dead.
func (ix *Index) Compact() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.deadCount == 0 {
		return
	}
	oldCodes, oldKeys, oldLive, wp := ix.codes, ix.keys, ix.live, ix.wordsPer
	ix.codes = make([]uint64, 0, ix.liveCount*wp)
	ix.keys = make([]string, 0, ix.liveCount)
	ix.live = ix.live[:0]
	ix.slots = make(map[string][]int32)
	ix.liveCount, ix.deadCount = 0, 0
	for _, t := range ix.tables {
		t.buckets = make(map[uint64][]int32)
		for j := range t.ones {
			t.ones[j] = 0
		}
	}
	for slot, key := range oldKeys {
		if !oldLive[slot] {
			continue
		}
		ix.addWordsLocked(key, oldCodes[slot*wp:(slot+1)*wp])
	}
	ix.masksDirty = true
}

// Disable empties the index and rejects all further inserts; probes return
// nothing and Live reports zero, so callers routing by corpus size fall back
// to their exact path. Used when a corpus turns out not to be ANN-indexable
// (heterogeneous code lengths).
func (ix *Index) Disable() {
	ix.mu.Lock()
	ix.disabled = true
	ix.codes, ix.keys, ix.live, ix.tables = nil, nil, nil, nil
	ix.slots = make(map[string][]int32)
	ix.liveCount, ix.deadCount, ix.nbits = 0, 0, 0
	ix.mu.Unlock()
}

// Live returns the number of live (non-tombstoned) codes.
func (ix *Index) Live() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveCount
}

// CodeBits returns the code length in bits (0 until the first insert).
func (ix *Index) CodeBits() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.nbits
}

// DeadFraction returns the tombstoned share of all slots, the signal
// callers compact on.
func (ix *Index) DeadFraction() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	total := ix.liveCount + ix.deadCount
	if total == 0 {
		return 0
	}
	return float64(ix.deadCount) / float64(total)
}

// IndexStats returns a point-in-time summary.
func (ix *Index) IndexStats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return Stats{Live: ix.liveCount, Dead: ix.deadCount, Bits: ix.nbits, Tables: len(ix.tables)}
}

// Probe returns the live candidates for one query code, deduplicated across
// tables and probes and exactly scored, in ascending slot order (the flat
// block's memory order). Queries of the wrong length, and probes of an empty
// or disabled index, return nil.
func (ix *Index) Probe(code vec.BitVec) ([]Candidate, ProbeStats) {
	ix.mu.RLock()
	if ix.masksDirty {
		// The probe sequences are stale (codes changed since the last probe);
		// upgrade to the write lock to rebuild them, then downgrade. A racing
		// mutator may re-dirty the masks before the read lock is reacquired —
		// that only costs probe-order quality on this lookup, never
		// correctness, and the next probe rebuilds again.
		ix.mu.RUnlock()
		ix.mu.Lock()
		if ix.masksDirty {
			ix.refreshMasksLocked()
		}
		ix.mu.Unlock()
		ix.mu.RLock()
	}
	defer ix.mu.RUnlock()
	var st ProbeStats
	if ix.liveCount == 0 || code.Len() != ix.nbits {
		return nil, st
	}
	qw := code.Words()
	visited := make([]uint64, (len(ix.keys)+63)/64)
	for _, t := range ix.tables {
		h := hashWords(qw, t.bits)
		for _, m := range t.masks {
			st.Probes++
			for _, slot := range t.buckets[h^m] {
				if ix.live[slot] {
					visited[slot>>6] |= 1 << (uint(slot) & 63)
				}
			}
		}
	}
	// Re-rank: one ascending sweep over the visited slots, scoring each
	// candidate's flat code block with whole-word popcounts.
	wp := ix.wordsPer
	var out []Candidate
	for wi, wv := range visited {
		for wv != 0 {
			b := bits.TrailingZeros64(wv)
			wv &^= 1 << uint(b)
			slot := wi*64 + b
			d := vec.HammingWords(qw, ix.codes[slot*wp:(slot+1)*wp])
			out = append(out, Candidate{Slot: slot, Key: ix.keys[slot], Dist: d})
		}
	}
	st.Candidates = len(out)
	return out, st
}

// refreshMasksLocked rebuilds every table's probe-mask sequence from the
// current per-bit balance statistics.
func (ix *Index) refreshMasksLocked() {
	for _, t := range ix.tables {
		t.masks = probeMasks(t, ix.liveCount, ix.opts.Probes)
	}
	ix.masksDirty = false
}

// maskNode is one step of the best-first flip-set enumeration: set is a
// bitmask over the *sorted* bit indices, last the highest sorted index in
// the set, weight the set's total imbalance.
type maskNode struct {
	weight float64
	last   int
	set    uint64
}

type maskHeap []maskNode

func (h maskHeap) Len() int { return len(h) }
func (h maskHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].set < h[j].set // deterministic tie-break
}
func (h maskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maskHeap) Push(x interface{}) { *h = append(*h, x.(maskNode)) }
func (h *maskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// probeMasks computes one table's probe sequence: the zero mask (the query's
// own bucket) followed by flip masks in nondecreasing order of total
// imbalance weight. Each sampled bit's weight is |p(bit=1) - 0.5| over the
// live corpus — a balanced bit splits near neighbors across buckets most
// often and is flipped first. Enumeration is the classic shift/expand
// best-first walk over subsets of the weight-sorted bits, which yields every
// non-empty subset exactly once; the budget caps it, and a budget of 2^K
// yields all of them.
func probeMasks(t *table, liveCount, probes int) []uint64 {
	k := len(t.bits)
	maxMasks := probes
	if k < 31 && maxMasks > 1<<uint(k) {
		maxMasks = 1 << uint(k)
	}
	masks := make([]uint64, 0, maxMasks)
	masks = append(masks, 0)
	if maxMasks <= 1 || k == 0 {
		return masks
	}
	w := make([]float64, k)
	for j := range w {
		p := 0.5
		if liveCount > 0 {
			p = float64(t.ones[j]) / float64(liveCount)
		}
		if p < 0.5 {
			w[j] = 0.5 - p
		} else {
			w[j] = p - 0.5
		}
	}
	ord := make([]int, k)
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return w[ord[a]] < w[ord[b]] })
	ws := make([]float64, k)
	for i, j := range ord {
		ws[i] = w[j]
	}
	h := &maskHeap{{weight: ws[0], last: 0, set: 1}}
	heap.Init(h)
	for len(masks) < maxMasks && h.Len() > 0 {
		nd := heap.Pop(h).(maskNode)
		var m uint64
		for s := nd.set; s != 0; {
			i := bits.TrailingZeros64(s)
			s &^= 1 << uint(i)
			m |= 1 << uint(ord[i])
		}
		masks = append(masks, m)
		if nd.last+1 < k {
			// Shift: move the highest flipped bit one position up.
			heap.Push(h, maskNode{
				weight: nd.weight - ws[nd.last] + ws[nd.last+1],
				last:   nd.last + 1,
				set:    nd.set&^(1<<uint(nd.last)) | 1<<uint(nd.last+1),
			})
			// Expand: also flip the next position.
			heap.Push(h, maskNode{
				weight: nd.weight + ws[nd.last+1],
				last:   nd.last + 1,
				set:    nd.set | 1<<uint(nd.last+1),
			})
		}
	}
	return masks
}
