package ann

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mie/internal/vec"
)

// randCode draws a random nbits-bit code.
func randCode(rng *rand.Rand, nbits int) vec.BitVec {
	b := vec.NewBitVec(nbits)
	for i := 0; i < nbits; i++ {
		if rng.Intn(2) == 1 {
			b.Set(i, true)
		}
	}
	return b
}

// flip returns a copy of c with each bit flipped with probability p.
func flip(rng *rand.Rand, c vec.BitVec, p float64) vec.BitVec {
	out := c.Clone()
	for i := 0; i < c.Len(); i++ {
		if rng.Float64() < p {
			out.Set(i, !out.Get(i))
		}
	}
	return out
}

// exhaustive returns options whose probe budget reaches every bucket.
func exhaustive(tables, bits int) Options {
	return Options{Tables: tables, Bits: bits, Probes: 1 << uint(bits), Seed: 1}
}

// TestExhaustiveProbeCoversCorpus: with a 2^K probe budget every live code
// must come back as a candidate, with its exact Hamming distance, in
// ascending slot order.
func TestExhaustiveProbeCoversCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, nbits = 200, 128
	ix := New(exhaustive(2, 6))
	codes := make([]vec.BitVec, n)
	for i := range codes {
		codes[i] = randCode(rng, nbits)
		if err := ix.AddAll(fmt.Sprintf("k%03d", i), []vec.BitVec{codes[i]}); err != nil {
			t.Fatal(err)
		}
	}
	q := randCode(rng, nbits)
	cands, st := ix.Probe(q)
	if len(cands) != n {
		t.Fatalf("exhaustive probe returned %d candidates, want %d", len(cands), n)
	}
	if st.Candidates != n {
		t.Errorf("stats.Candidates = %d, want %d", st.Candidates, n)
	}
	if st.Probes != 2*(1<<6) {
		t.Errorf("stats.Probes = %d, want %d", st.Probes, 2*(1<<6))
	}
	for i, c := range cands {
		if i > 0 && cands[i-1].Slot >= c.Slot {
			t.Fatalf("candidates not in ascending slot order at %d", i)
		}
		if want := vec.Hamming(q, codes[c.Slot]); c.Dist != want {
			t.Errorf("candidate %s dist = %d, want %d", c.Key, c.Dist, want)
		}
	}
}

// TestMultiProbeRecall: with a modest probe budget, near-duplicates of
// corpus codes must be found with high recall while touching a fraction of
// the corpus.
func TestMultiProbeRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, nbits = 2000, 256
	ix := New(Options{Tables: 8, Bits: 12, Probes: 13, Seed: 1})
	codes := make([]vec.BitVec, n)
	for i := range codes {
		codes[i] = randCode(rng, nbits)
		if err := ix.AddAll(fmt.Sprintf("k%04d", i), []vec.BitVec{codes[i]}); err != nil {
			t.Fatal(err)
		}
	}
	found, candTotal := 0, 0
	const queries = 100
	for qi := 0; qi < queries; qi++ {
		target := rng.Intn(n)
		q := flip(rng, codes[target], 0.04)
		cands, _ := ix.Probe(q)
		candTotal += len(cands)
		for _, c := range cands {
			if c.Slot == target {
				found++
				break
			}
		}
	}
	if recall := float64(found) / queries; recall < 0.9 {
		t.Errorf("near-duplicate recall %.2f < 0.9", recall)
	}
	if frac := float64(candTotal) / (queries * n); frac > 0.5 {
		t.Errorf("candidate fraction %.2f — probing degenerated to a scan", frac)
	}
}

// TestRemoveAndReplace: removed keys never surface; AddAll replaces.
func TestRemoveAndReplace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := New(exhaustive(2, 4))
	a, b := randCode(rng, 64), randCode(rng, 64)
	if err := ix.AddAll("a", []vec.BitVec{a, flip(rng, a, 0.1)}); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddAll("b", []vec.BitVec{b}); err != nil {
		t.Fatal(err)
	}
	if got := ix.Live(); got != 3 {
		t.Fatalf("Live = %d, want 3", got)
	}
	// Replace a's two codes with one.
	if err := ix.AddAll("a", []vec.BitVec{a}); err != nil {
		t.Fatal(err)
	}
	if got := ix.Live(); got != 2 {
		t.Fatalf("Live after replace = %d, want 2", got)
	}
	ix.Remove("b")
	cands, _ := ix.Probe(a)
	if len(cands) != 1 || cands[0].Key != "a" || cands[0].Dist != 0 {
		t.Fatalf("candidates after remove = %+v", cands)
	}
	if df := ix.DeadFraction(); df <= 0 {
		t.Errorf("DeadFraction = %v, want > 0", df)
	}
	// Compact must preserve probe results and reclaim tombstones.
	ix.Compact()
	if df := ix.DeadFraction(); df != 0 {
		t.Errorf("DeadFraction after Compact = %v", df)
	}
	cands, _ = ix.Probe(a)
	if len(cands) != 1 || cands[0].Key != "a" || cands[0].Dist != 0 {
		t.Fatalf("candidates after compact = %+v", cands)
	}
	// An empty AddAll is a remove.
	if err := ix.AddAll("a", nil); err != nil {
		t.Fatal(err)
	}
	if got := ix.Live(); got != 0 {
		t.Fatalf("Live after empty AddAll = %d, want 0", got)
	}
}

func TestAddAllErrors(t *testing.T) {
	ix := New(Options{})
	if err := ix.AddAll("", []vec.BitVec{vec.NewBitVec(64)}); err == nil {
		t.Error("expected error for empty key")
	}
	if err := ix.AddAll("x", []vec.BitVec{{}}); err == nil {
		t.Error("expected error for zero-length code")
	}
	if err := ix.AddAll("x", []vec.BitVec{vec.NewBitVec(64)}); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddAll("y", []vec.BitVec{vec.NewBitVec(128)}); err == nil {
		t.Error("expected error for mismatched code length")
	}
	// The mismatch must not leave y's partial state behind.
	if got := ix.Live(); got != 1 {
		t.Errorf("Live after mismatch = %d, want 1", got)
	}
}

func TestDisable(t *testing.T) {
	ix := New(Options{})
	if err := ix.AddAll("x", []vec.BitVec{vec.NewBitVec(64)}); err != nil {
		t.Fatal(err)
	}
	ix.Disable()
	if got := ix.Live(); got != 0 {
		t.Errorf("Live after Disable = %d", got)
	}
	if err := ix.AddAll("y", []vec.BitVec{vec.NewBitVec(64)}); err != nil {
		t.Fatalf("AddAll on disabled index: %v", err)
	}
	if cands, _ := ix.Probe(vec.NewBitVec(64)); cands != nil {
		t.Errorf("Probe on disabled index = %+v", cands)
	}
}

// TestProbeMaskEnumeration: the sequence starts at the query's own bucket,
// enumerates every subset exactly once under an exhaustive budget, and is
// nondecreasing in total flip weight.
func TestProbeMaskEnumeration(t *testing.T) {
	tb := &table{
		bits: []int{3, 17, 42, 63, 80},
		// p = 0.9, 0.5, 0.2, 0.65, 0.05 over 100 live codes.
		ones: []int{90, 50, 20, 65, 5},
	}
	const k = 5
	masks := probeMasks(tb, 100, 1<<k)
	if len(masks) != 1<<k {
		t.Fatalf("mask count = %d, want %d", len(masks), 1<<k)
	}
	if masks[0] != 0 {
		t.Fatalf("first mask = %x, want 0 (the exact bucket)", masks[0])
	}
	seen := map[uint64]bool{}
	weight := func(m uint64) float64 {
		var s float64
		for j := 0; j < k; j++ {
			if m>>uint(j)&1 == 1 {
				p := float64(tb.ones[j]) / 100
				if p < 0.5 {
					s += 0.5 - p
				} else {
					s += p - 0.5
				}
			}
		}
		return s
	}
	prev := -1.0
	for _, m := range masks {
		if seen[m] {
			t.Fatalf("mask %x enumerated twice", m)
		}
		seen[m] = true
		if w := weight(m); w < prev-1e-12 {
			t.Fatalf("mask weights not nondecreasing: %v after %v", w, prev)
		} else {
			prev = w
		}
	}
	// The most balanced bit (index 1, p=0.5) must be the first flip.
	if masks[1] != 1<<1 {
		t.Errorf("first flip mask = %x, want %x (the most balanced bit)", masks[1], uint64(1<<1))
	}
	// A truncated budget is a prefix of the exhaustive sequence.
	short := probeMasks(tb, 100, 7)
	for i, m := range short {
		if masks[i] != m {
			t.Errorf("budgeted sequence diverges at %d: %x != %x", i, m, masks[i])
		}
	}
}

// TestDeterministicBuild: two indexes fed the same corpus in the same order
// return identical probe results.
func TestDeterministicBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	opts := Options{Tables: 4, Bits: 8, Probes: 9, Seed: 5}
	a, b := New(opts), New(opts)
	var codes []vec.BitVec
	for i := 0; i < 300; i++ {
		codes = append(codes, randCode(rng, 96))
	}
	for i, c := range codes {
		key := fmt.Sprintf("k%03d", i)
		if err := a.AddAll(key, []vec.BitVec{c}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddAll(key, []vec.BitVec{c}); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 20; qi++ {
		q := flip(rng, codes[rng.Intn(len(codes))], 0.05)
		ca, _ := a.Probe(q)
		cb, _ := b.Probe(q)
		if len(ca) != len(cb) {
			t.Fatalf("candidate counts differ: %d != %d", len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("candidate %d differs: %+v != %+v", i, ca[i], cb[i])
			}
		}
	}
}

// TestConcurrentProbeAndMutate drives probes against a mutating index under
// the race detector.
func TestConcurrentProbeAndMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ix := New(Options{Tables: 4, Bits: 8, Probes: 9, Seed: 1})
	var codes []vec.BitVec
	for i := 0; i < 200; i++ {
		c := randCode(rng, 64)
		codes = append(codes, c)
		if err := ix.AddAll(fmt.Sprintf("k%03d", i), []vec.BitVec{c}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		mrng := rand.New(rand.NewSource(22))
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("k%03d", mrng.Intn(200))
			switch mrng.Intn(3) {
			case 0:
				ix.Remove(key)
			case 1:
				_ = ix.AddAll(key, []vec.BitVec{randCode(mrng, 64)})
			default:
				ix.Compact()
			}
		}
	}()
	qrng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		cands, _ := ix.Probe(randCode(qrng, 64))
		if !sort.SliceIsSorted(cands, func(a, b int) bool { return cands[a].Slot < cands[b].Slot }) {
			t.Fatal("candidates out of slot order")
		}
	}
	<-done
}
