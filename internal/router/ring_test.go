package router

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministic: the ring is a pure function of its membership — two
// routers built from the same node list agree on every placement, which is
// what lets clients hit any router instance.
func TestRingDeterministic(t *testing.T) {
	nodes := []string{"node-0", "node-1", "node-2"}
	a := NewRing(nodes, 0)
	b := NewRing(nodes, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("repo-%04d", i)
		pa, pb := a.Prefer(key), b.Prefer(key)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("placement of %q diverged: %v vs %v", key, pa, pb)
		}
		if len(pa) != len(nodes) {
			t.Fatalf("Prefer(%q) returned %d nodes, want all %d", key, len(pa), len(nodes))
		}
		seen := map[string]bool{}
		for _, n := range pa {
			if seen[n] {
				t.Fatalf("Prefer(%q) repeats node %q", key, n)
			}
			seen[n] = true
		}
	}
}

// TestRingDistribution: virtual nodes keep first-choice load roughly even —
// no node may own a wildly outsized share of keys.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"node-0", "node-1", "node-2", "node-3"}
	r := NewRing(nodes, 0)
	count := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		count[r.Prefer(fmt.Sprintf("repo-%05d", i))[0]]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if c := count[n]; c < fair/3 || c > fair*3 {
			t.Fatalf("node %q owns %d of %d keys (fair share %d): distribution too skewed: %v", n, c, keys, fair, count)
		}
	}
}

// TestRingMinimalRemap: removing one node only remaps the keys that node
// owned; every other key keeps its first choice — the consistent-hashing
// property that makes membership changes cheap.
func TestRingMinimalRemap(t *testing.T) {
	full := NewRing([]string{"node-0", "node-1", "node-2"}, 0)
	shrunk := NewRing([]string{"node-0", "node-1"}, 0)
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("repo-%04d", i)
		before := full.Prefer(key)[0]
		after := shrunk.Prefer(key)[0]
		if before == "node-2" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s although its node survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no key was homed on the removed node; distribution test is vacuous")
	}
}
