package router

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mie/internal/client"
	"mie/internal/obs"
	"mie/internal/wire"
)

// Health-probe cadence and down-node retry backoff bounds.
const (
	defaultHealthInterval = 500 * time.Millisecond
	probeBackoffMin       = 25 * time.Millisecond
	probeBackoffMax       = time.Second
	probeTimeout          = 2 * time.Second
)

// Node is one cluster member in the router's explicit membership list.
type Node struct {
	Name string
	Addr string
}

// Config configures a Router.
type Config struct {
	// Nodes is the explicit cluster membership. The first entry is the
	// leader unless Leader names another member.
	Nodes []Node
	// Leader is the name of the leader node (mutations and training are
	// always routed to it). Defaults to Nodes[0].
	Leader string
	// VNodes is the number of ring points per node (default 64).
	VNodes int
	// HealthInterval is the per-node probe cadence (default 500ms).
	HealthInterval time.Duration
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Registry receives router metrics (default obs.Default()).
	Registry *obs.Registry
	// Logger, when set, receives routing warnings.
	Logger *obs.Logger
}

// backend is the router's view of one node: a pooled connection plus the
// last probed health state.
type backend struct {
	name string
	addr string
	conn *client.Conn

	healthy  atomic.Bool
	caughtUp atomic.Bool
	isLeader bool
}

// eligible reports whether reads may be routed to this backend: it answers
// probes and (for followers) has replicated everything it has received.
func (b *backend) eligible() bool {
	return b.healthy.Load() && (b.isLeader || b.caughtUp.Load())
}

// Router accepts wire connections and relays each request to the right
// node: mutations and training to the leader, reads to the repository's
// ring-preferred node with failover along the ring. It speaks protocol v2
// to its backends and both v1 (lockstep) and v2 (multiplexed) to clients.
type Router struct {
	cfg      Config
	ring     *Ring
	ln       net.Listener
	leader   *backend
	backends map[string]*backend
	reg      *obs.Registry

	routedC   *obs.Counter
	failoverC *obs.Counter
	errorsC   *obs.Counter

	dialMu sync.Mutex

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Start launches a router over cfg's membership. Every node is probed once
// synchronously so routing decisions are informed from the first request.
func Start(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("router: no nodes configured")
	}
	if cfg.Leader == "" {
		cfg.Leader = cfg.Nodes[0].Name
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = defaultHealthInterval
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	names := make([]string, 0, len(cfg.Nodes))
	backends := make(map[string]*backend, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n.Name == "" || n.Addr == "" {
			return nil, fmt.Errorf("router: node %+v needs name and addr", n)
		}
		if backends[n.Name] != nil {
			return nil, fmt.Errorf("router: duplicate node name %q", n.Name)
		}
		backends[n.Name] = &backend{name: n.Name, addr: n.Addr, isLeader: n.Name == cfg.Leader}
		names = append(names, n.Name)
	}
	leader := backends[cfg.Leader]
	if leader == nil {
		return nil, fmt.Errorf("router: leader %q is not a member", cfg.Leader)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("router: listen: %w", err)
	}
	r := &Router{
		cfg:       cfg,
		ring:      NewRing(names, cfg.VNodes),
		ln:        ln,
		leader:    leader,
		backends:  backends,
		reg:       reg,
		routedC:   reg.Counter("router_requests_total"),
		failoverC: reg.Counter("router_failovers_total"),
		errorsC:   reg.Counter("router_errors_total"),
		done:      make(chan struct{}),
	}
	for _, b := range backends {
		r.probe(b)
		r.wg.Add(1)
		go r.healthLoop(b)
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the router's client-facing listen address.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// Ring exposes the placement ring (the cluster harness uses it to pick
// repository names that spread across all nodes).
func (r *Router) Ring() *Ring { return r.ring }

// Close stops accepting, tears down backend connections and waits for the
// background loops.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		close(r.done)
		_ = r.ln.Close()
	})
	r.wg.Wait()
	for _, b := range r.backends {
		if b.conn != nil {
			_ = b.conn.Close()
		}
	}
	return nil
}

func (r *Router) closed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// probe refreshes one backend's health from a hello handshake.
func (r *Router) probe(b *backend) bool {
	hr, err := client.Hello(b.addr, probeTimeout)
	if err != nil {
		b.healthy.Store(false)
		return false
	}
	b.healthy.Store(true)
	b.caughtUp.Store(hr.CaughtUp)
	return true
}

// healthLoop probes one backend forever: at the configured cadence while it
// is up, with capped backoff while it is down so recovery is noticed fast
// without hammering a dead address.
func (r *Router) healthLoop(b *backend) {
	defer r.wg.Done()
	backoff := probeBackoffMin
	for {
		wait := r.cfg.HealthInterval
		if !b.healthy.Load() {
			wait = backoff
			if backoff *= 2; backoff > probeBackoffMax {
				backoff = probeBackoffMax
			}
		} else {
			backoff = probeBackoffMin
		}
		select {
		case <-time.After(wait):
		case <-r.done:
			return
		}
		r.probe(b)
	}
}

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	backoff := 5 * time.Millisecond
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			if r.closed() {
				return
			}
			select {
			case <-time.After(backoff):
			case <-r.done:
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 5 * time.Millisecond
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

// connState is one client connection's relay state: the write path (shared
// by concurrent relays) and the in-flight map for Cancel.
type connState struct {
	conn net.Conn
	wmu  sync.Mutex

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
}

func (cs *connState) write(env *wire.Envelope) error {
	cs.wmu.Lock()
	defer cs.wmu.Unlock()
	_, err := wire.WriteEnvelope(cs.conn, env)
	return err
}

func (cs *connState) writeError(id uint64, msg string) error {
	env, err := wire.NewEnvelope(wire.KindError, "", id, 0, wire.Ack{Err: msg})
	if err != nil {
		return err
	}
	return cs.write(env)
}

func (cs *connState) track(id uint64, cancel context.CancelFunc) {
	if id == 0 {
		return
	}
	cs.mu.Lock()
	cs.inflight[id] = cancel
	cs.mu.Unlock()
}

func (cs *connState) untrack(id uint64) {
	if id == 0 {
		return
	}
	cs.mu.Lock()
	delete(cs.inflight, id)
	cs.mu.Unlock()
}

func (cs *connState) cancel(id uint64) {
	cs.mu.Lock()
	fn := cs.inflight[id]
	cs.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (r *Router) serveConn(conn net.Conn) {
	defer r.wg.Done()
	defer func() { _ = conn.Close() }()
	// Tear the socket down on Close so the read loop unblocks.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-r.done:
			_ = conn.Close()
		case <-stop:
		}
	}()
	cs := &connState{conn: conn, inflight: make(map[uint64]context.CancelFunc)}
	var relays sync.WaitGroup
	defer relays.Wait()
	for {
		env, _, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch env.Kind {
		case wire.KindHello:
			hello, err := wire.NewEnvelope(wire.KindHelloResp, "", env.ID, 0, wire.HelloResp{Version: wire.ProtocolV2, Role: "router", CaughtUp: true})
			if err != nil || cs.write(hello) != nil {
				return
			}
		case wire.KindCancel:
			var req wire.CancelReq
			if env.Decode(&req) == nil {
				cs.cancel(req.ID)
			}
		case wire.KindReplAck:
			// Acks are node-to-node; through a router they have no target.
		case wire.KindReplSubscribe:
			_ = cs.writeError(env.ID, "router: replication streams must connect to a node directly")
		default:
			if env.ID == 0 {
				// v1 lockstep: answer before reading the next request.
				r.relay(cs, env)
				continue
			}
			relays.Add(1)
			go func(env *wire.Envelope) {
				defer relays.Done()
				r.relay(cs, env)
			}(env)
		}
	}
}

// mutates reports whether a request kind must be answered by the leader:
// everything that writes state or touches the leader-resident training job
// table. Mirrors the follower-side forwarding set.
func mutates(kind string) bool {
	switch kind {
	case wire.KindCreateRepo, wire.KindTrain, wire.KindTrainStart,
		wire.KindTrainStatus, wire.KindTrainWait, wire.KindUpdate,
		wire.KindRemove:
		return true
	}
	return false
}

// readTargets returns the candidate backends for a read, in preference
// order: the repository's ring walk when a repo id is present, otherwise
// just the leader.
func (r *Router) readTargets(env *wire.Envelope) []*backend {
	var p struct{ RepoID string }
	if err := env.Decode(&p); err != nil || p.RepoID == "" {
		return []*backend{r.leader}
	}
	prefer := r.ring.Prefer(p.RepoID)
	out := make([]*backend, 0, len(prefer))
	for _, name := range prefer {
		out = append(out, r.backends[name])
	}
	return out
}

// relay routes one request to its node and writes the node's response back
// under the origin ID. Reads fail over along the ring: a transport error
// marks the backend unhealthy and the next eligible candidate is tried.
func (r *Router) relay(cs *connState, env *wire.Envelope) {
	r.routedC.Inc()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if env.TimeoutNanos > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(env.TimeoutNanos))
		defer cancel()
	}
	cs.track(env.ID, cancel)
	defer cs.untrack(env.ID)

	if mutates(env.Kind) {
		idempotent := env.Kind == wire.KindTrainStatus || env.Kind == wire.KindTrainWait
		r.relayTo(ctx, cs, env, []*backend{r.leader}, idempotent)
		return
	}
	r.relayTo(ctx, cs, env, r.readTargets(env), true)
}

// relayTo tries candidates in order, preferring eligible ones, and relays
// the first response. Ineligible backends are still tried as a last resort:
// a stale health bit must not turn a servable request into an error.
func (r *Router) relayTo(ctx context.Context, cs *connState, env *wire.Envelope, candidates []*backend, idempotent bool) {
	ordered := make([]*backend, 0, len(candidates))
	for _, b := range candidates {
		if b.eligible() {
			ordered = append(ordered, b)
		}
	}
	for _, b := range candidates {
		if !b.eligible() {
			ordered = append(ordered, b)
		}
	}
	var lastErr error
	for i, b := range ordered {
		if i > 0 {
			r.failoverC.Inc()
		}
		resp, err := r.forward(ctx, b, env, idempotent)
		if err == nil {
			resp.ID = env.ID
			if werr := cs.write(resp); werr != nil && r.cfg.Logger != nil {
				r.cfg.Logger.Warn("router: response relay failed", "err", werr.Error())
			}
			return
		}
		lastErr = err
		b.healthy.Store(false)
		if !idempotent {
			break // a mutation may have executed; never blind-retry
		}
	}
	r.errorsC.Inc()
	msg := "router: no reachable node"
	if lastErr != nil {
		msg = "router: " + lastErr.Error()
	}
	if err := cs.writeError(env.ID, msg); err != nil && r.cfg.Logger != nil {
		r.cfg.Logger.Warn("router: error relay failed", "err", err.Error())
	}
}

// forward sends env to one backend over its pooled connection, dialing it
// lazily on first use. The caller's ctx carries both the request deadline
// and Cancel-frame cancellation.
func (r *Router) forward(ctx context.Context, b *backend, env *wire.Envelope, idempotent bool) (*wire.Envelope, error) {
	conn, err := r.backendConn(b)
	if err != nil {
		return nil, err
	}
	return conn.Forward(ctx, env, idempotent)
}

func (r *Router) backendConn(b *backend) (*client.Conn, error) {
	// Dial under the connState-independent router lock: reuse the pooled
	// conn across all client connections.
	r.dialMu.Lock()
	defer r.dialMu.Unlock()
	if b.conn != nil {
		return b.conn, nil
	}
	c, err := client.Dial(b.addr, nil, client.WithObservability(r.reg))
	if err != nil {
		return nil, err
	}
	b.conn = c
	return c, nil
}
