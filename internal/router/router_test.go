package router

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"mie/internal/client"
	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/leakcheck"
	"mie/internal/obs"
	"mie/internal/server"
	"mie/internal/wire"
)

func routerTestKey(b byte) crypto.Key {
	var k crypto.Key
	for i := range k {
		k[i] = b
	}
	return k
}

// TestRouterRoutesAndFailsOver: a two-member ring where one member is dead.
// Every request — including reads homed on the dead node — must be served by
// the surviving leader; the router must identify itself in the handshake and
// refuse replication subscriptions.
func TestRouterRoutesAndFailsOver(t *testing.T) {
	leakcheck.Check(t)
	svc, _, err := core.OpenService(core.ServiceOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	srv, err := server.New("127.0.0.1:0", svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	// A dead member: a listener that is closed immediately, so its address
	// is allocated but refuses connections.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	_ = deadLn.Close()

	rt, err := Start(Config{
		Nodes:          []Node{{Name: "live", Addr: srv.Addr()}, {Name: "dead", Addr: deadAddr}},
		Leader:         "live",
		HealthInterval: 50 * time.Millisecond,
		Registry:       obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rt.Close() }()

	hr, err := client.Hello(rt.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Role != "router" || hr.Version != wire.ProtocolV2 {
		t.Fatalf("handshake %+v, want router speaking v2", hr)
	}

	// Pick one repo homed on each member so both routing paths run.
	repoFor := func(node string) string {
		for i := 0; i < 10000; i++ {
			id := fmt.Sprintf("repo-%04d", i)
			if rt.Ring().Prefer(id)[0] == node {
				return id
			}
		}
		t.Fatalf("no repo id homed on %q", node)
		return ""
	}
	repos := []string{repoFor("live"), repoFor("dead")}

	cc, err := core.NewClient(core.ClientConfig{Key: core.RepositoryKey{Master: routerTestKey(1)}})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(rt.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	ctx := context.Background()
	for _, repoID := range repos {
		if err := conn.CreateRepository(ctx, repoID, wire.RepoOptions{}); err != nil {
			t.Fatalf("create %s: %v", repoID, err)
		}
		up, err := cc.PrepareUpdate(&core.Object{ID: "o", Owner: "u", Text: "routed document"}, routerTestKey(9))
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Update(ctx, repoID, up); err != nil {
			t.Fatalf("update %s: %v", repoID, err)
		}
		q, err := cc.PrepareQuery(&core.Object{ID: "q", Text: "routed document"}, 5)
		if err != nil {
			t.Fatal(err)
		}
		hits, err := conn.Search(ctx, repoID, q)
		if err != nil {
			t.Fatalf("search %s: %v", repoID, err)
		}
		if len(hits) != 1 || hits[0].ObjectID != "o" {
			t.Fatalf("search %s returned %v, want [o]", repoID, hits)
		}
		if _, _, err := conn.Get(ctx, repoID, "o"); err != nil {
			t.Fatalf("get %s: %v", repoID, err)
		}
	}

	// Replication streams must go to a node directly, never through the
	// router's request multiplexing.
	raw, err := net.Dial("tcp", rt.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	env, err := wire.NewEnvelope(wire.KindReplSubscribe, "", 1, 0, wire.ReplSubscribeReq{RepoID: repos[0]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.WriteEnvelope(raw, env); err != nil {
		t.Fatal(err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, _, err := wire.ReadFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindError {
		t.Fatalf("repl-subscribe through router answered %q, want error", resp.Kind)
	}
}
