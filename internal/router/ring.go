// Package router is a thin stateless routing tier for a replicated MIE
// cluster: it places repositories on nodes by consistent hashing (virtual
// nodes over an explicit membership list — no gossip, no coordination),
// relays wire frames to the chosen node, and fails reads over to the next
// healthy caught-up replica on the ring when a node is down. Mutations and
// training always go to the leader.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over named nodes. Each node owns VNodes
// pseudo-random points on a 32-bit circle; a key is served by the node
// owning the first point at or after the key's hash, and its failover
// preference is the order in which further distinct nodes appear walking
// the circle. Placement depends only on (membership, vnodes), so every
// router instance computes identical preferences without coordination.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint32
	node string
}

// NewRing builds a ring with vnodes points per node (64 if vnodes <= 0).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash32(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's membership.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Prefer returns every node in preference order for key: the owner first,
// then each further distinct node in ring-walk order. Reads fail over along
// this order; since it is stable per key, each repository has a sticky home
// node and a deterministic failover chain.
func (r *Ring) Prefer(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash32(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return h.Sum32()
}
