package attack

import (
	"fmt"
	"testing"

	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/dpe"
	"mie/internal/text"
)

// buildCorpus runs real MIE updates over a text corpus and returns the
// server's observations plus the ground-truth keyword->token mapping.
func buildCorpus(t *testing.T, docs map[string]string) ([]core.UpdateObservation, map[string]dpe.Token, map[string]map[string]uint64) {
	t.Helper()
	var master crypto.Key
	master[0] = 7
	client, err := core.NewClient(core.ClientConfig{Key: core.RepositoryKey{Master: master}})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := core.NewRepository("attacked", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sparse := dpe.NewSparse(crypto.DeriveKey(master, "rk2"))
	truth := make(map[string]dpe.Token)
	plaintexts := make(map[string]map[string]uint64, len(docs))
	var dk crypto.Key
	dk[0] = 9
	for id, body := range docs {
		obj := &core.Object{ID: id, Owner: "u", Text: body}
		up, err := client.PrepareUpdate(obj, dk)
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Update(up); err != nil {
			t.Fatal(err)
		}
		hist := text.Extract(body)
		kw := make(map[string]uint64, len(hist))
		for _, term := range hist {
			kw[term.Word] = term.Freq
			truth[term.Word] = sparse.Encode(term.Word)
		}
		plaintexts[id] = kw
	}
	return repo.Leakage().UpdateObservations(), truth, plaintexts
}

func TestFullKnowledgeRecoversUniqueSignatures(t *testing.T) {
	docs := map[string]string{
		"d1": "apple banana banana cherry",
		"d2": "apple cherry cherry cherry dragonfruit",
		"d3": "banana dragonfruit elderberry",
	}
	obs, truth, plain := buildCorpus(t, docs)
	var known []KnownDoc
	for id, kw := range plain {
		known = append(known, KnownDoc{DocID: id, Keywords: kw})
	}
	rec := RecoverKeywords(obs, known)
	rate, correct, total := Evaluate(rec, truth)
	// Every keyword here has a distinct frequency signature across the three
	// docs, so full document knowledge recovers everything.
	if rate != 1 {
		t.Errorf("full-knowledge recovery = %v (%d/%d): %+v", rate, correct, total, rec.CandidateCounts)
	}
	// And every committed mapping must be correct (no false positives).
	for w, tok := range rec.Mapping {
		if truth[w] != tok {
			t.Errorf("wrong mapping for %q", w)
		}
	}
}

func TestAmbiguousSignaturesStayUnresolved(t *testing.T) {
	// "alpha" and "beta" co-occur with identical frequencies everywhere: no
	// frequency analysis can split them; the attack must not guess.
	docs := map[string]string{
		"d1": "alpha beta gamma",
		"d2": "alpha beta",
	}
	obs, truth, plain := buildCorpus(t, docs)
	var known []KnownDoc
	for id, kw := range plain {
		known = append(known, KnownDoc{DocID: id, Keywords: kw})
	}
	rec := RecoverKeywords(obs, known)
	if _, ok := rec.Mapping["alpha"]; ok {
		t.Error("attack committed to an ambiguous keyword")
	}
	if rec.CandidateCounts["alpha"] != 2 {
		t.Errorf("alpha candidates = %d, want 2", rec.CandidateCounts["alpha"])
	}
	if tok, ok := rec.Mapping["gamma"]; !ok || truth["gamma"] != tok {
		t.Error("unique keyword gamma not recovered")
	}
	_, correct, _ := Evaluate(rec, truth)
	if correct != 1 {
		t.Errorf("correct = %d, want 1 (only gamma)", correct)
	}
}

func TestPartialKnowledgeRecoversLess(t *testing.T) {
	docs := make(map[string]string, 40)
	for i := 0; i < 40; i++ {
		// unique appears twice, special once: distinct frequency signatures,
		// so full document knowledge can resolve them.
		docs[fmt.Sprintf("d%02d", i)] = fmt.Sprintf(
			"common filler words everywhere unique%02d unique%02d special%02d rare%02d", i, i, i, i%7)
	}
	obs, truth, plain := buildCorpus(t, docs)
	recoverAt := func(n int) float64 {
		var known []KnownDoc
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("d%02d", i)
			known = append(known, KnownDoc{DocID: id, Keywords: plain[id]})
		}
		rec := RecoverKeywords(obs, known)
		rate, _, _ := Evaluate(rec, truth)
		return rate
	}
	low := recoverAt(4)   // 10% knowledge
	high := recoverAt(40) // 100% knowledge
	if low >= high {
		t.Errorf("recovery should grow with knowledge: %v vs %v", low, high)
	}
	if low > 0.25 {
		t.Errorf("10%% knowledge recovered %v of the vocabulary — too strong", low)
	}
	if high < 0.5 {
		t.Errorf("full knowledge recovered only %v", high)
	}
}

func TestNoKnowledgeNoRecovery(t *testing.T) {
	docs := map[string]string{"d1": "alpha beta gamma"}
	obs, truth, _ := buildCorpus(t, docs)
	rec := RecoverKeywords(obs, nil)
	rate, _, _ := Evaluate(rec, truth)
	if rate != 0 || len(rec.Mapping) != 0 {
		t.Errorf("adversary with no background knowledge recovered %v", rate)
	}
}

func TestEvaluateEmptyTruth(t *testing.T) {
	rate, correct, total := Evaluate(&Recovery{Mapping: map[string]dpe.Token{}}, nil)
	if rate != 0 || correct != 0 || total != 0 {
		t.Errorf("empty evaluation: %v %d %d", rate, correct, total)
	}
}
