// Package attack makes the paper's security discussion (§V-A) executable:
// it implements the passive leakage-abuse adversary — an honest-but-curious
// server holding partial *document knowledge* — against MIE's update
// leakage, and measures keyword-recovery rates as a function of how much of
// the corpus the adversary already knows.
//
// The paper's point, quantified by Cash et al.'s leakage-abuse analysis, is
// that such attacks demand almost complete document knowledge: ~95% known
// documents for ~58% query recovery, dropping toward 0% at 75%. The
// experiment in internal/experiments reproduces that cliff on this
// implementation: recovery stays negligible until the adversary knows close
// to everything.
//
// Attack model. For each update the server observed ID(d) plus the token
// ids and frequencies (MIE's update leakage). For documents the adversary
// *knows in plaintext*, it can line up each document's keyword-frequency
// multiset against the observed token-frequency multiset: a keyword can map
// to a token only if their frequency signatures agree on every known
// document (including absence). A keyword is recovered when exactly one
// token matches its signature.
package attack

import (
	"mie/internal/core"
	"mie/internal/dpe"
)

// KnownDoc is one plaintext document in the adversary's background
// knowledge: its id and its keyword-frequency histogram (post-stemming, the
// same representation the client indexed).
type KnownDoc struct {
	DocID    string
	Keywords map[string]uint64
}

// Recovery is the attack outcome.
type Recovery struct {
	// Mapping holds the keyword -> token assignments the adversary committed
	// to (unique signature matches only).
	Mapping map[string]dpe.Token
	// CandidateCounts records, per keyword, how many tokens remained
	// plausible; keywords with count 1 are in Mapping.
	CandidateCounts map[string]int
}

// RecoverKeywords runs the frequency-signature attack: observations are the
// server's update leakage log, known the adversary's plaintext documents.
func RecoverKeywords(observations []core.UpdateObservation, known []KnownDoc) *Recovery {
	// Index observations of known docs (latest update wins, as on the
	// server).
	obsByDoc := make(map[string]map[dpe.Token]uint64, len(observations))
	for _, o := range observations {
		obsByDoc[o.ObjectID] = o.Tokens
	}
	// Signature = the frequency vector over the adversary's known docs.
	type sig string
	sigOf := func(freqs []uint64) sig {
		b := make([]byte, 0, len(freqs)*3)
		for _, f := range freqs {
			for f >= 255 {
				b = append(b, 255)
				f -= 255
			}
			b = append(b, byte(f), 0xFF)
		}
		return sig(b)
	}

	// Token signatures over known docs — only tokens that appear in at
	// least one known doc are attackable.
	tokenSigs := make(map[dpe.Token][]uint64)
	for i, kd := range known {
		for tok, f := range obsByDoc[kd.DocID] {
			v, ok := tokenSigs[tok]
			if !ok {
				v = make([]uint64, len(known))
			}
			v[i] = f
			tokenSigs[tok] = v
		}
	}
	bySig := make(map[sig][]dpe.Token, len(tokenSigs))
	for tok, v := range tokenSigs {
		s := sigOf(v)
		bySig[s] = append(bySig[s], tok)
	}

	// Keyword signatures over the same docs.
	keywordSigs := make(map[string][]uint64)
	for i, kd := range known {
		for w, f := range kd.Keywords {
			v, ok := keywordSigs[w]
			if !ok {
				v = make([]uint64, len(known))
			}
			v[i] = f
			keywordSigs[w] = v
		}
	}

	rec := &Recovery{
		Mapping:         make(map[string]dpe.Token),
		CandidateCounts: make(map[string]int),
	}
	for w, v := range keywordSigs {
		cands := bySig[sigOf(v)]
		rec.CandidateCounts[w] = len(cands)
		if len(cands) == 1 {
			rec.Mapping[w] = cands[0]
		}
	}
	return rec
}

// Evaluate scores a recovery against the true keyword->token mapping over
// the full corpus vocabulary: the fraction of all distinct corpus keywords
// the adversary correctly resolved (the query-recovery rate of §V-A).
func Evaluate(rec *Recovery, truth map[string]dpe.Token) (rate float64, correct, total int) {
	total = len(truth)
	if total == 0 {
		return 0, 0, 0
	}
	for w, tok := range rec.Mapping {
		if truth[w] == tok {
			correct++
		}
	}
	return float64(correct) / float64(total), correct, total
}
