package wire

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"mie/internal/core"
)

func TestEnvelopeCarriesIDAndTimeout(t *testing.T) {
	env, err := NewEnvelope(KindSearch, "tok", 42, 1500*time.Millisecond, SearchReq{RepoID: "r", Query: core.Query{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteEnvelope(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Auth != "tok" || got.Kind != KindSearch {
		t.Errorf("envelope metadata lost: %+v", got)
	}
	d, ok := got.Timeout()
	if !ok || d != 1500*time.Millisecond {
		t.Errorf("timeout = %v (%v)", d, ok)
	}
	var req SearchReq
	if err := got.Decode(&req); err != nil {
		t.Fatal(err)
	}
	if req.RepoID != "r" || req.Query.K != 3 {
		t.Errorf("payload lost: %+v", req)
	}
}

func TestV1EnvelopeReadsAsIDZero(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, KindTrain, TrainReq{RepoID: "r"}); err != nil {
		t.Fatal(err)
	}
	env, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if env.ID != 0 {
		t.Errorf("v1 frame decoded with ID %d", env.ID)
	}
	if _, ok := env.Timeout(); ok {
		t.Error("v1 frame decoded with a deadline")
	}
}

// v1Envelope is the envelope struct as it existed before protocol v2 (no ID,
// no deadline). Cross-version compatibility rests on gob tolerating the
// field difference in both directions; this test pins that property.
type v1Envelope struct {
	Kind string
	Auth string
	Data []byte
}

func TestCrossVersionEnvelopeCompatibility(t *testing.T) {
	// v2 writer -> v1 reader: the extra fields are ignored.
	env, err := NewEnvelope(KindSearch, "a", 7, time.Second, SearchReq{RepoID: "x", Query: core.Query{K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := gob.NewEncoder(&frame).Encode(*env); err != nil {
		t.Fatal(err)
	}
	var v1 v1Envelope
	if err := gob.NewDecoder(bytes.NewReader(frame.Bytes())).Decode(&v1); err != nil {
		t.Fatalf("v1 peer cannot decode v2 envelope: %v", err)
	}
	if v1.Kind != KindSearch || v1.Auth != "a" || len(v1.Data) == 0 {
		t.Errorf("v1 view of v2 envelope: %+v", v1)
	}

	// v1 writer -> v2 reader: missing fields zero out, which marks lockstep.
	frame.Reset()
	if err := gob.NewEncoder(&frame).Encode(v1Envelope{Kind: KindGet, Auth: "b", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	var v2 Envelope
	if err := gob.NewDecoder(bytes.NewReader(frame.Bytes())).Decode(&v2); err != nil {
		t.Fatalf("v2 peer cannot decode v1 envelope: %v", err)
	}
	if v2.ID != 0 || v2.TimeoutNanos != 0 || v2.Kind != KindGet {
		t.Errorf("v2 view of v1 envelope: %+v", v2)
	}
}

func TestRepoOptionsFromCoreRoundTrip(t *testing.T) {
	w := RepoOptions{VocabWords: 500, VocabMaxIter: 7, TreeBranch: 4, TreeHeight: 2, TreeSeed: 9, TrainingSampleCap: 100, FusionCandidates: 30}
	if got := FromCore(w.ToCore()); got != w {
		t.Errorf("FromCore(ToCore(w)) = %+v, want %+v", got, w)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	env, err := NewEnvelope(KindHello, "", 1, 0, Hello{MaxVersion: ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteEnvelope(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var hello Hello
	if err := got.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.MaxVersion != ProtocolV2 {
		t.Errorf("MaxVersion = %d", hello.MaxVersion)
	}
}
