package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"testing"

	"mie/internal/core"
)

// legacyEnvelope is the pre-tracing Envelope layout, as an old peer would
// gob-encode it: no TraceID/SpanID/TraceSampled fields. Gob matches struct
// fields by name and silently skips both missing and unknown ones, which is
// the property the trace fields' interop story rests on — this test pins it.
type legacyEnvelope struct {
	Kind         string
	Auth         string
	ID           uint64
	TimeoutNanos int64
	Data         []byte
}

// writeLegacyFrame frames a legacyEnvelope exactly as WriteEnvelope does:
// 4-byte big-endian length, then the gob-encoded envelope.
func writeLegacyFrame(t *testing.T, w *bytes.Buffer, env legacyEnvelope) {
	t.Helper()
	var frame bytes.Buffer
	if err := gob.NewEncoder(&frame).Encode(env); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(frame.Len()))
	w.Write(hdr[:])
	w.Write(frame.Bytes())
}

func TestV1PeerEnvelopeWithoutTraceFields(t *testing.T) {
	// Old peer -> new reader: a frame encoded without trace fields decodes
	// cleanly and reads as untraced (all trace fields zero).
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(SearchReq{RepoID: "r1", Query: core.Query{K: 3}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writeLegacyFrame(t, &buf, legacyEnvelope{Kind: KindSearch, ID: 7, Data: body.Bytes()})

	env, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("new reader rejected v1-peer frame: %v", err)
	}
	if env.Kind != KindSearch || env.ID != 7 {
		t.Errorf("envelope = kind %q id %d", env.Kind, env.ID)
	}
	if env.TraceID != 0 || env.SpanID != 0 || env.TraceSampled {
		t.Errorf("trace fields not zero: %+v", env)
	}
	var req SearchReq
	if err := env.Decode(&req); err != nil {
		t.Fatal(err)
	}
	if req.RepoID != "r1" || req.Query.K != 3 {
		t.Errorf("payload = %+v", req)
	}
}

func TestV1PeerDecodesTracedEnvelope(t *testing.T) {
	// New writer -> old reader: a frame carrying trace fields still decodes
	// into the legacy layout; gob drops the fields the old struct lacks.
	env, err := NewEnvelope(KindSearch, "tok", 9, 0, SearchReq{RepoID: "r2", Query: core.Query{K: 4}})
	if err != nil {
		t.Fatal(err)
	}
	env.TraceID = 0xdead
	env.SpanID = 0xbeef
	env.TraceSampled = true
	var buf bytes.Buffer
	if _, err := WriteEnvelope(&buf, env); err != nil {
		t.Fatal(err)
	}

	var hdr [4]byte
	copy(hdr[:], buf.Next(4))
	size := binary.BigEndian.Uint32(hdr[:])
	var legacy legacyEnvelope
	if err := gob.NewDecoder(bytes.NewReader(buf.Next(int(size)))).Decode(&legacy); err != nil {
		t.Fatalf("v1 peer rejected traced envelope: %v", err)
	}
	if legacy.Kind != KindSearch || legacy.Auth != "tok" || legacy.ID != 9 {
		t.Errorf("legacy envelope = %+v", legacy)
	}
	var req SearchReq
	if err := gob.NewDecoder(bytes.NewReader(legacy.Data)).Decode(&req); err != nil {
		t.Fatal(err)
	}
	if req.RepoID != "r2" || req.Query.K != 4 {
		t.Errorf("payload = %+v", req)
	}
}
