package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"mie/internal/core"
	"mie/internal/dpe"
	"mie/internal/vec"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := SearchReq{RepoID: "r1", Query: core.Query{K: 5}}
	n, err := WriteFrame(&buf, KindSearch, req)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	env, rn, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rn != n {
		t.Errorf("read %d bytes, wrote %d", rn, n)
	}
	if env.Kind != KindSearch {
		t.Errorf("kind = %s", env.Kind)
	}
	var got SearchReq
	if err := env.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.RepoID != "r1" || got.Query.K != 5 {
		t.Errorf("decoded %+v", got)
	}
}

func TestFrameCarriesEncodings(t *testing.T) {
	bv := vec.NewBitVec(130)
	bv.Set(0, true)
	bv.Set(129, true)
	tok := dpe.Token{1, 2, 3}
	up := UpdateReq{
		RepoID: "r",
		Update: core.Update{
			ObjectID:       "o1",
			TextTokens:     map[dpe.Token]uint64{tok: 7},
			ImageEncodings: []vec.BitVec{bv},
		},
	}
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, KindUpdate, up); err != nil {
		t.Fatal(err)
	}
	env, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got UpdateReq
	if err := env.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Update.TextTokens[tok] != 7 {
		t.Error("token map lost in transit")
	}
	if len(got.Update.ImageEncodings) != 1 || !got.Update.ImageEncodings[0].Equal(bv) {
		t.Error("bit vector lost in transit")
	}
}

func TestReadFrameEOF(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
	// Partial header also surfaces as EOF (clean-shutdown semantics).
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); !errors.Is(err, io.EOF) {
		t.Errorf("partial header err = %v, want io.EOF", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, KindAck, Ack{}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error for truncated body")
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameGarbageBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 8)
	buf.Write(hdr[:])
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("expected decode error for garbage body")
	}
}

func TestRepoOptionsToCore(t *testing.T) {
	opts := RepoOptions{VocabWords: 500, VocabMaxIter: 7, TreeBranch: 4, TreeHeight: 2, TreeSeed: 9, TrainingSampleCap: 100, FusionCandidates: 30}
	c := opts.ToCore()
	if c.Vocab.Words != 500 || c.Vocab.MaxIter != 7 || c.Vocab.Seed != 9 {
		t.Errorf("vocab params lost: %+v", c.Vocab)
	}
	if c.Vocab.Tree.Branch != 4 || c.Vocab.Tree.Height != 2 || c.Vocab.Tree.Seed != 9 {
		t.Errorf("tree params lost: %+v", c.Vocab.Tree)
	}
	if c.TrainingSampleCap != 100 || c.FusionCandidates != 30 {
		t.Errorf("caps lost: %+v", c)
	}
}

func TestDecodeWrongType(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, KindAck, Ack{Err: "x"}); err != nil {
		t.Fatal(err)
	}
	env, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var wrong SearchResp
	// gob is forgiving across struct shapes with shared field names; what
	// must not happen is a panic. Decoding into a fully mismatched type
	// (different field types) errors.
	var n int
	if err := env.Decode(&n); err == nil {
		t.Error("expected error decoding struct into int")
	}
	_ = wrong
}
