package wire

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"testing"
	"time"

	"mie/internal/core"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame decoder. The
// decoder sits directly on the network in front of untrusted peers, so it
// must never panic and must classify every failure as exactly one of: clean
// EOF, oversized frame, malformed envelope, or a generic read error — the
// classification serveConn's counters depend on.
//
// Run the long version with:
//
//	go test -run='^$' -fuzz=FuzzReadFrame -fuzztime=30s ./internal/wire
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: well-formed frames of every request/response kind plus a
	// few interesting corruptions (see also testdata/fuzz/FuzzReadFrame).
	seed := func(kind string, payload interface{}) {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, kind, payload); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(KindSearch, SearchReq{RepoID: "r", Query: core.Query{K: 10}})
	seed(KindAck, Ack{Err: "boom"})
	seed(KindGetResp, GetResp{Ciphertext: []byte{1, 2, 3}, Owner: "me"})
	seed(KindCancel, CancelReq{ID: 99})
	seed(KindHello, Hello{MaxVersion: ProtocolV2})
	seed(KindTrainWait, TrainJobReq{RepoID: "r", JobID: 7})
	var v2 bytes.Buffer
	env, err := NewEnvelope(KindSearch, "token", 123, 5*time.Second, SearchReq{RepoID: "x"})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := WriteEnvelope(&v2, env); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 8, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		env, n, err := ReadFrame(r)
		if err != nil {
			if env != nil {
				t.Errorf("non-nil envelope alongside error %v", err)
			}
			// Every error must fall into exactly one classification bucket.
			switch {
			case errors.Is(err, io.EOF):
				if IsMalformed(err) {
					t.Errorf("EOF classified as malformed: %v", err)
				}
			case IsMalformed(err):
			default:
				// Generic read error: only truncation can cause it on an
				// in-memory reader.
				if r.Len() == 0 && len(data) >= 4 {
					// ReadFull hit the end mid-body: expected.
					break
				}
			}
			return
		}
		if n < 4 || n > len(data) {
			t.Errorf("reported size %d outside [4, %d]", n, len(data))
		}
		// A successfully decoded envelope must survive re-encoding, and its
		// payload decode must not panic regardless of content.
		var buf bytes.Buffer
		if _, werr := WriteEnvelope(&buf, env); werr != nil {
			t.Errorf("re-encode of decoded envelope failed: %v", werr)
		}
		var ack Ack
		_ = env.Decode(&ack)
		var sr SearchReq
		_ = env.Decode(&sr)
	})
}

// FuzzReplRecordDecode targets the replication batch decoder: a
// KindReplRecords envelope whose Data bytes are controlled by whatever sits
// between leader and follower. The decoder must never panic, Verify must
// agree exactly with a CRC recomputation (classifying every mismatch as
// ErrReplCRC), and a verified record must re-seal to the identical checksum.
//
// Run the long version with:
//
//	go test -run='^$' -fuzz=FuzzReplRecordDecode -fuzztime=30s ./internal/wire
func FuzzReplRecordDecode(f *testing.F) {
	seed := func(batch ReplRecords) {
		env, err := NewEnvelope(KindReplRecords, "", 7, 0, batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(env.Data)
	}
	seed(ReplRecords{RepoID: "r", Records: []ReplRecord{
		NewReplRecord(1, 1, ReplMutation, 42, []byte("wal record bytes")),
		NewReplRecord(1, 2, ReplSnapshot, 43, []byte("snapshot image")),
	}})
	corrupt := NewReplRecord(9, 3, ReplCreate, 0, []byte("catalog event"))
	corrupt.CRC ^= 0xffffffff
	seed(ReplRecords{RepoID: "", Records: []ReplRecord{corrupt}})
	seed(ReplRecords{Err: "repository gone", Code: ErrCodeRepoNotFound, RepoID: "x"})
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})

	f.Fuzz(func(t *testing.T, data []byte) {
		env := &Envelope{Kind: KindReplRecords, Data: data}
		var batch ReplRecords
		if err := env.Decode(&batch); err != nil {
			return // malformed gob: rejected before any record is seen
		}
		for i := range batch.Records {
			rec := &batch.Records[i]
			err := rec.Verify()
			valid := crc32.ChecksumIEEE(rec.Payload) == rec.CRC
			if valid != (err == nil) {
				t.Errorf("record %d: Verify err=%v disagrees with recomputed CRC validity %v", i, err, valid)
			}
			if err != nil && !errors.Is(err, ErrReplCRC) {
				t.Errorf("record %d: Verify returned %v, want ErrReplCRC", i, err)
			}
			if err == nil {
				if re := NewReplRecord(rec.Gen, rec.Seq, rec.Kind, rec.UnixNano, rec.Payload); re.CRC != rec.CRC {
					t.Errorf("record %d: re-seal changed CRC %08x -> %08x", i, rec.CRC, re.CRC)
				}
			}
		}
	})
}

// FuzzEnvelopeDecode targets the second decode stage: a valid envelope
// whose Data bytes are attacker-controlled.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add("search", []byte{})
	f.Add("ack", []byte{0xde, 0xad})
	var body bytes.Buffer
	if _, err := WriteFrame(&body, KindSearch, SearchReq{RepoID: "q"}); err != nil {
		f.Fatal(err)
	}
	f.Add(KindSearch, body.Bytes())

	f.Fuzz(func(t *testing.T, kind string, data []byte) {
		env := &Envelope{Kind: kind, Data: data}
		var ack Ack
		_ = env.Decode(&ack)
		var sr SearchReq
		_ = env.Decode(&sr)
		var tj TrainJobResp
		_ = env.Decode(&tj)
	})
}
