// Package wire is the framing layer of the MIE network protocol: length-
// prefixed frames carrying gob-encoded envelopes, one request/response pair
// per operation. All client-server traffic of Figure 1 flows through it
// (in deployment, inside a TLS tunnel; transport security is orthogonal to
// the scheme and stdlib crypto/tls wraps net.Conn directly).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"mie/internal/core"
)

// MaxFrameSize bounds a single frame; oversized frames indicate a corrupt
// or malicious peer and abort the connection rather than exhausting memory.
const MaxFrameSize = 256 << 20

// Frame-level errors.
var (
	// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrMalformed is wrapped around envelope decode failures: bytes arrived
	// but are not a valid frame. Distinguishes a corrupt or hostile peer from
	// a clean disconnect (io.EOF) or a transport failure.
	ErrMalformed = errors.New("wire: malformed frame")
)

// IsMalformed reports whether err indicates a peer speaking the protocol
// incorrectly (oversized or undecodable frames) rather than a transport
// error or clean shutdown.
func IsMalformed(err error) bool {
	return errors.Is(err, ErrMalformed) || errors.Is(err, ErrFrameTooLarge)
}

// Message kinds.
const (
	KindCreateRepo = "create-repo"
	KindTrain      = "train"
	KindUpdate     = "update"
	KindRemove     = "remove"
	KindSearch     = "search"
	KindGet        = "get"
	KindAck        = "ack"
	KindSearchResp = "search-resp"
	KindGetResp    = "get-resp"
	KindError      = "error"
)

// Envelope is one protocol message: a kind tag, an optional bearer
// authorization token (see internal/auth), and the gob encoding of the
// kind's payload struct.
type Envelope struct {
	Kind string
	Auth string
	Data []byte
}

// Request payloads.
type (
	// CreateRepoReq creates a repository with the given engine parameters.
	CreateRepoReq struct {
		RepoID string
		Opts   RepoOptions
	}
	// RepoOptions is the serializable subset of core.RepositoryOptions.
	RepoOptions struct {
		VocabWords        int
		VocabMaxIter      int
		TreeBranch        int
		TreeHeight        int
		TreeSeed          int64
		TrainingSampleCap int
		FusionCandidates  int
	}
	// TrainReq triggers server-side training.
	TrainReq struct {
		RepoID string
	}
	// UpdateReq uploads an encrypted object and its encodings.
	UpdateReq struct {
		RepoID string
		Update core.Update
	}
	// RemoveReq deletes an object.
	RemoveReq struct {
		RepoID   string
		ObjectID string
	}
	// SearchReq runs a multimodal query.
	SearchReq struct {
		RepoID string
		Query  core.Query
	}
	// GetReq fetches one stored ciphertext.
	GetReq struct {
		RepoID   string
		ObjectID string
	}
)

// Response payloads.
type (
	// Ack acknowledges a mutation; Err is empty on success.
	Ack struct {
		Err string
	}
	// SearchResp carries ranked hits.
	SearchResp struct {
		Err  string
		Hits []core.SearchHit
	}
	// GetResp carries one ciphertext and its owner id.
	GetResp struct {
		Err        string
		Ciphertext []byte
		Owner      string
	}
)

// ToCore converts wire options into engine options.
func (o RepoOptions) ToCore() core.RepositoryOptions {
	opts := core.RepositoryOptions{
		TrainingSampleCap: o.TrainingSampleCap,
		FusionCandidates:  o.FusionCandidates,
	}
	opts.Vocab.Words = o.VocabWords
	opts.Vocab.MaxIter = o.VocabMaxIter
	opts.Vocab.Seed = o.TreeSeed
	opts.Vocab.Tree.Branch = o.TreeBranch
	opts.Vocab.Tree.Height = o.TreeHeight
	opts.Vocab.Tree.Seed = o.TreeSeed
	return opts
}

// WriteFrame gob-encodes payload into an envelope of the given kind and
// writes it as one length-prefixed frame. It returns the number of bytes
// written so callers can account transfer costs.
func WriteFrame(w io.Writer, kind string, payload interface{}) (int, error) {
	return WriteFrameAuth(w, kind, "", payload)
}

// WriteFrameAuth is WriteFrame with a bearer authorization token attached.
func WriteFrameAuth(w io.Writer, kind, authToken string, payload interface{}) (int, error) {
	var body bytes.Buffer
	if payload != nil {
		if err := gob.NewEncoder(&body).Encode(payload); err != nil {
			return 0, fmt.Errorf("wire: encode %s payload: %w", kind, err)
		}
	}
	var frame bytes.Buffer
	if err := gob.NewEncoder(&frame).Encode(Envelope{Kind: kind, Auth: authToken, Data: body.Bytes()}); err != nil {
		return 0, fmt.Errorf("wire: encode %s envelope: %w", kind, err)
	}
	if frame.Len() > MaxFrameSize {
		return 0, ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(frame.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: write %s header: %w", kind, err)
	}
	n, err := w.Write(frame.Bytes())
	if err != nil {
		return 0, fmt.Errorf("wire: write %s frame: %w", kind, err)
	}
	return 4 + n, nil
}

// ReadFrame reads one envelope. It returns the envelope, its size on the
// wire, and any error (io.EOF on clean shutdown).
func ReadFrame(r io.Reader) (*Envelope, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wire: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		return nil, 0, ErrFrameTooLarge
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, fmt.Errorf("wire: read frame body: %w", err)
	}
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&env); err != nil {
		return nil, 0, fmt.Errorf("%w: decode envelope: %v", ErrMalformed, err)
	}
	return &env, 4 + int(size), nil
}

// Decode unpacks the envelope payload into v.
func (e *Envelope) Decode(v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", e.Kind, err)
	}
	return nil
}
