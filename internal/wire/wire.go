// Package wire is the framing layer of the MIE network protocol: length-
// prefixed frames carrying gob-encoded envelopes. All client-server traffic
// of Figure 1 flows through it (in deployment, inside a TLS tunnel;
// transport security is orthogonal to the scheme and stdlib crypto/tls
// wraps net.Conn directly).
//
// # Protocol versions
//
// Version 1 is lockstep: one request per connection at a time, the response
// written before the next request is read, with Envelope.ID zero. Version 2
// multiplexes: every request carries a nonzero ID, responses echo the ID of
// the request they answer, and may arrive in any order; requests may carry a
// deadline (a relative time budget, immune to clock skew) and may be
// abandoned early with a Cancel frame naming the in-flight ID.
//
// The two versions share one frame and envelope format. Gob tolerates both
// unknown and missing struct fields, so a v1 peer decodes v2 envelopes
// (ignoring ID and TimeoutNanos) and a v2 peer decodes v1 envelopes (seeing
// ID zero, which *is* the v1 marker). A v2 client announces itself with a
// Hello frame; a v2 server answers HelloResp, while a v1 server answers
// KindError ("unknown kind"), telling the client to fall back to lockstep.
// A v1 client never sends Hello and never sets IDs, so a v2 server serves
// it in lockstep without any negotiation.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"mie/internal/auth"
	"mie/internal/core"
)

// Protocol versions negotiated by Hello/HelloResp.
const (
	// ProtocolV1 is the lockstep protocol: ID-less envelopes, one request
	// in flight per connection.
	ProtocolV1 = 1
	// ProtocolV2 is the multiplexed protocol: per-request IDs, deadlines,
	// cancellation and asynchronous training jobs.
	ProtocolV2 = 2
)

// MaxFrameSize bounds a single frame; oversized frames indicate a corrupt
// or malicious peer and abort the connection rather than exhausting memory.
const MaxFrameSize = 256 << 20

// Frame-level errors.
var (
	// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrMalformed is wrapped around envelope decode failures: bytes arrived
	// but are not a valid frame. Distinguishes a corrupt or hostile peer from
	// a clean disconnect (io.EOF) or a transport failure.
	ErrMalformed = errors.New("wire: malformed frame")
)

// IsMalformed reports whether err indicates a peer speaking the protocol
// incorrectly (oversized or undecodable frames) rather than a transport
// error or clean shutdown.
func IsMalformed(err error) bool {
	return errors.Is(err, ErrMalformed) || errors.Is(err, ErrFrameTooLarge)
}

// Message kinds.
const (
	KindCreateRepo = "create-repo"
	KindTrain      = "train"
	KindUpdate     = "update"
	KindRemove     = "remove"
	KindSearch     = "search"
	KindGet        = "get"
	KindAck        = "ack"
	KindSearchResp = "search-resp"
	KindGetResp    = "get-resp"
	KindError      = "error"

	// v2 kinds.

	// KindHello opens version negotiation; a v2 server answers
	// KindHelloResp, a v1 server answers KindError.
	KindHello     = "hello"
	KindHelloResp = "hello-resp"
	// KindCancel abandons an in-flight request by ID. It is fire-and-forget:
	// the server never responds to it (the canceled request's response, if
	// any, is dropped by the client's demux).
	KindCancel = "cancel"
	// KindTrainStart launches an asynchronous server-side training job and
	// returns its handle immediately; KindTrainStatus polls it and
	// KindTrainWait blocks (bounded by the request deadline) until the job
	// finishes. All three answer with KindTrainJobResp.
	KindTrainStart   = "train-start"
	KindTrainStatus  = "train-status"
	KindTrainWait    = "train-wait"
	KindTrainJobResp = "train-job-resp"
	// KindTraceGet fetches the server-side span tree of a completed traced
	// request by TraceID (mie-client -trace); answered with KindTraceResp.
	KindTraceGet  = "trace-get"
	KindTraceResp = "trace-resp"
)

// Envelope is one protocol message: a kind tag, an optional bearer
// authorization token (see internal/auth), v2 multiplexing metadata and the
// gob encoding of the kind's payload struct.
type Envelope struct {
	Kind string
	Auth string
	// ID correlates a response with its request on a multiplexed (v2)
	// connection. Zero means v1 lockstep framing.
	ID uint64
	// TimeoutNanos is the remaining time budget of the request at send time
	// (relative, so peers need not share a clock); 0 means no deadline.
	// The server derives the request's context.Context deadline from it.
	TimeoutNanos int64
	// TraceID and SpanID propagate the caller's distributed-tracing context:
	// the trace this request belongs to and the client span the server-side
	// spans should parent under. Zero means untraced. TraceSampled carries
	// the client's head-sampling decision so both sides keep the same
	// traces. Gob tolerates missing fields, so v1 peers (which never set
	// these) interoperate unchanged.
	TraceID      uint64
	SpanID       uint64
	TraceSampled bool
	Data         []byte
}

// Timeout returns the request's remaining time budget, if any.
func (e *Envelope) Timeout() (time.Duration, bool) {
	if e.TimeoutNanos <= 0 {
		return 0, false
	}
	return time.Duration(e.TimeoutNanos), true
}

// Request payloads.
type (
	// Hello announces a v2-capable client.
	Hello struct {
		// MaxVersion is the highest protocol version the client speaks.
		MaxVersion int
	}
	// CancelReq abandons the in-flight request with the given ID.
	CancelReq struct {
		ID uint64
	}
	// CreateRepoReq creates a repository with the given engine parameters.
	CreateRepoReq struct {
		RepoID string
		Opts   RepoOptions
	}
	// RepoOptions is the serializable subset of core.RepositoryOptions.
	RepoOptions struct {
		VocabWords        int
		VocabMaxIter      int
		TreeBranch        int
		TreeHeight        int
		TreeSeed          int64
		TrainingSampleCap int
		FusionCandidates  int
	}
	// TrainReq triggers server-side training: synchronously for KindTrain
	// (v1) and asynchronously for KindTrainStart (v2).
	TrainReq struct {
		RepoID string
	}
	// TrainJobReq addresses one training job (KindTrainStatus/KindTrainWait).
	TrainJobReq struct {
		RepoID string
		JobID  uint64
	}
	// UpdateReq uploads an encrypted object and its encodings.
	UpdateReq struct {
		RepoID string
		Update core.Update
	}
	// RemoveReq deletes an object.
	RemoveReq struct {
		RepoID   string
		ObjectID string
	}
	// SearchReq runs a multimodal query.
	SearchReq struct {
		RepoID string
		Query  core.Query
	}
	// GetReq fetches one stored ciphertext.
	GetReq struct {
		RepoID   string
		ObjectID string
	}
	// TraceGetReq fetches the server-side trace of a completed request.
	TraceGetReq struct {
		TraceID uint64
	}
)

// Error codes carried by response frames alongside the human-readable Err
// string, so clients match on a stable code instead of message text. Gob
// tolerates missing fields, so a v1 (or older) peer that never sets a code
// yields ErrCodeUnspecified and everything still interoperates.
const (
	// ErrCodeUnspecified is the zero value: an error with no machine-
	// readable classification (or a frame from a peer predating codes).
	ErrCodeUnspecified = 0
	// ErrCodeExists: the repository already exists (core.ErrRepoExists).
	ErrCodeExists = 1
	// ErrCodeRepoNotFound: unknown repository (core.ErrRepoNotFound).
	ErrCodeRepoNotFound = 2
	// ErrCodeOverQuota: the tenant exceeded an admission quota
	// (core.ErrOverQuota); the response carries a retry-after hint.
	ErrCodeOverQuota = 3
	// ErrCodeUnauthorized: the bearer token was rejected.
	ErrCodeUnauthorized = 4
	// ErrCodeUnknownObject: unknown object id (core.ErrUnknownObject).
	ErrCodeUnknownObject = 5
	// ErrCodeUnknownJob: unknown training job (core.ErrUnknownJob).
	ErrCodeUnknownJob = 6
)

// ErrCode classifies an engine/auth error into its wire code and, for quota
// rejections, extracts the server's retry-after hint. Servers call it when
// building any error-carrying response.
func ErrCode(err error) (code int, retryAfter time.Duration) {
	switch {
	case err == nil:
		return ErrCodeUnspecified, 0
	case errors.Is(err, core.ErrRepoExists):
		return ErrCodeExists, 0
	case errors.Is(err, core.ErrRepoNotFound):
		return ErrCodeRepoNotFound, 0
	case errors.Is(err, core.ErrOverQuota):
		var qe *core.QuotaError
		if errors.As(err, &qe) {
			return ErrCodeOverQuota, qe.RetryAfter
		}
		return ErrCodeOverQuota, 0
	case errors.Is(err, auth.ErrMalformed), errors.Is(err, auth.ErrBadMAC),
		errors.Is(err, auth.ErrExpired), errors.Is(err, auth.ErrWrongRepo),
		errors.Is(err, auth.ErrRevoked):
		return ErrCodeUnauthorized, 0
	case errors.Is(err, core.ErrUnknownObject):
		return ErrCodeUnknownObject, 0
	case errors.Is(err, core.ErrUnknownJob):
		return ErrCodeUnknownJob, 0
	}
	return ErrCodeUnspecified, 0
}

// Sentinel maps a wire error code back to the engine sentinel it encodes
// (nil for codes without one), so client-side errors unwrap to the same
// values errors.Is matches against locally.
func Sentinel(code int) error {
	switch code {
	case ErrCodeExists:
		return core.ErrRepoExists
	case ErrCodeRepoNotFound:
		return core.ErrRepoNotFound
	case ErrCodeOverQuota:
		return core.ErrOverQuota
	case ErrCodeUnknownObject:
		return core.ErrUnknownObject
	case ErrCodeUnknownJob:
		return core.ErrUnknownJob
	}
	return nil
}

// Response payloads.
type (
	// HelloResp answers a Hello with the version the server selected.
	// The remaining fields describe the node's replication role — the
	// router's health probe reads them to prefer caught-up replicas. Gob
	// tolerates missing fields, so peers predating replication see a
	// zero Role and everything interoperates.
	HelloResp struct {
		Version int
		// Role is "leader", "follower" or empty (replication not enabled).
		Role string
		// CaughtUp reports whether a follower is connected to its leader
		// with no received-but-unapplied records (always true on a leader).
		CaughtUp bool
		// LagNanos is the follower's last observed replication lag.
		LagNanos int64
	}
	// Ack acknowledges a mutation; Err is empty on success. Code classifies
	// the error (ErrCode* constants) and RetryAfterNanos, when positive,
	// hints when a rejected request may be retried — both zero on frames
	// from peers predating typed errors.
	Ack struct {
		Err             string
		Code            int
		RetryAfterNanos int64
	}
	// SearchResp carries ranked hits.
	SearchResp struct {
		Err             string
		Code            int
		RetryAfterNanos int64
		Hits            []core.SearchHit
	}
	// GetResp carries one ciphertext and its owner id.
	GetResp struct {
		Err             string
		Code            int
		RetryAfterNanos int64
		Ciphertext      []byte
		Owner           string
	}
	// TrainJobStatus mirrors core.TrainJobStatus on the wire.
	TrainJobStatus struct {
		JobID uint64
		State string
		Err   string
		Epoch uint64
	}
	// TrainJobResp answers the train-job kinds; Err reports request-level
	// failures (unknown repository/job), Job.Err a failed training run.
	TrainJobResp struct {
		Err             string
		Code            int
		RetryAfterNanos int64
		Job             TrainJobStatus
	}
	// TraceSpan is one span of a server-side trace on the wire.
	TraceSpan struct {
		SpanID        uint64
		ParentID      uint64
		Name          string
		StartUnixNano int64
		DurationNanos int64
		Err           string
	}
	// TraceResp answers KindTraceGet. Err is set when the trace is unknown
	// (never kept, or already evicted from the server's ring).
	TraceResp struct {
		Err           string
		TraceID       uint64
		Root          string
		StartUnixNano int64
		DurationNanos int64
		Reason        string
		Spans         []TraceSpan
	}
)

// ToCore converts wire options into engine options.
func (o RepoOptions) ToCore() core.RepositoryOptions {
	opts := core.RepositoryOptions{
		TrainingSampleCap: o.TrainingSampleCap,
		FusionCandidates:  o.FusionCandidates,
	}
	opts.Vocab.Words = o.VocabWords
	opts.Vocab.MaxIter = o.VocabMaxIter
	opts.Vocab.Seed = o.TreeSeed
	opts.Vocab.Tree.Branch = o.TreeBranch
	opts.Vocab.Tree.Height = o.TreeHeight
	opts.Vocab.Tree.Seed = o.TreeSeed
	return opts
}

// FromCore converts engine options into their wire representation.
func FromCore(opts core.RepositoryOptions) RepoOptions {
	return RepoOptions{
		VocabWords:        opts.Vocab.Words,
		VocabMaxIter:      opts.Vocab.MaxIter,
		TreeBranch:        opts.Vocab.Tree.Branch,
		TreeHeight:        opts.Vocab.Tree.Height,
		TreeSeed:          opts.Vocab.Seed,
		TrainingSampleCap: opts.TrainingSampleCap,
		FusionCandidates:  opts.FusionCandidates,
	}
}

// NewEnvelope gob-encodes payload into an envelope carrying the given v2
// metadata. A zero id and timeout produce a v1-compatible envelope.
func NewEnvelope(kind, authToken string, id uint64, timeout time.Duration, payload interface{}) (*Envelope, error) {
	var body bytes.Buffer
	if payload != nil {
		if err := gob.NewEncoder(&body).Encode(payload); err != nil {
			return nil, fmt.Errorf("wire: encode %s payload: %w", kind, err)
		}
	}
	return &Envelope{
		Kind:         kind,
		Auth:         authToken,
		ID:           id,
		TimeoutNanos: int64(timeout),
		Data:         body.Bytes(),
	}, nil
}

// WriteEnvelope writes env as one length-prefixed frame and returns the
// number of bytes written so callers can account transfer costs.
func WriteEnvelope(w io.Writer, env *Envelope) (int, error) {
	var frame bytes.Buffer
	if err := gob.NewEncoder(&frame).Encode(*env); err != nil {
		return 0, fmt.Errorf("wire: encode %s envelope: %w", env.Kind, err)
	}
	if frame.Len() > MaxFrameSize {
		return 0, ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(frame.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: write %s header: %w", env.Kind, err)
	}
	n, err := w.Write(frame.Bytes())
	if err != nil {
		return 0, fmt.Errorf("wire: write %s frame: %w", env.Kind, err)
	}
	return 4 + n, nil
}

// WriteFrame gob-encodes payload into a v1 (ID-less) envelope of the given
// kind and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, kind string, payload interface{}) (int, error) {
	return WriteFrameAuth(w, kind, "", payload)
}

// WriteFrameAuth is WriteFrame with a bearer authorization token attached.
func WriteFrameAuth(w io.Writer, kind, authToken string, payload interface{}) (int, error) {
	env, err := NewEnvelope(kind, authToken, 0, 0, payload)
	if err != nil {
		return 0, err
	}
	return WriteEnvelope(w, env)
}

// ReadFrame reads one envelope. It returns the envelope, its size on the
// wire, and any error (io.EOF on clean shutdown).
func ReadFrame(r io.Reader) (*Envelope, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wire: read header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrameSize {
		return nil, 0, ErrFrameTooLarge
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, fmt.Errorf("wire: read frame body: %w", err)
	}
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&env); err != nil {
		return nil, 0, fmt.Errorf("%w: decode envelope: %v", ErrMalformed, err)
	}
	return &env, 4 + int(size), nil
}

// Decode unpacks the envelope payload into v.
func (e *Envelope) Decode(v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", e.Kind, err)
	}
	return nil
}
