package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Replication kinds (v2-only: repl-subscribe requires a nonzero envelope ID
// because records stream back as many frames echoing it).
const (
	// KindReplSubscribe opens a replication stream for one repository (or
	// the catalog stream when RepoID is empty). The server answers with a
	// sequence of KindReplRecords frames echoing the subscribe ID, ending
	// only when the connection drops or a terminal error frame is sent.
	KindReplSubscribe = "repl-subscribe"
	// KindReplRecords carries a batch of replication records (or a terminal
	// error) for one stream.
	KindReplRecords = "repl-records"
	// KindReplAck reports the follower's durable cursor back to the leader.
	// Like KindCancel it is fire-and-forget: the leader never responds, it
	// only updates its lag accounting and trim watermark.
	KindReplAck = "repl-ack"
)

// Replication record kinds: what a ReplRecord payload contains.
const (
	// ReplMutation: one acknowledged WAL record (the engine's own encoding;
	// followers apply it through the same path crash recovery uses).
	ReplMutation = 1
	// ReplSnapshot: a full repository snapshot image. Sent when the
	// follower's cursor cannot be served from the in-memory stream buffer
	// (new follower, trimmed history, or a generation change after a train
	// install). The record's (Gen, Seq) is the exact cursor of the cut: the
	// image contains every mutation below it and none at or above it.
	ReplSnapshot = 2
	// ReplCreate: a catalog-stream record announcing a repository; Payload
	// is a gob ReplCatalogEvent.
	ReplCreate = 3
	// ReplDrop: a catalog-stream record announcing a repository drop.
	ReplDrop = 4
)

// ReplSubscribeReq opens one replication stream. Gen/Seq resume a previous
// stream: the leader replays records from that cursor if its buffer still
// holds them and falls back to a snapshot transfer otherwise. A zero cursor
// always yields a snapshot (or, for the catalog, a full listing).
type ReplSubscribeReq struct {
	// RepoID names the repository stream; empty subscribes to the catalog
	// stream (repository create/drop events, replayed as a full listing
	// first so a fresh follower discovers the fleet).
	RepoID string
	Gen    uint64
	Seq    uint64
}

// ReplRecord is one element of a replication stream. Records of one
// generation are contiguous and strictly ordered by Seq; a generation change
// (train install or leader restart with a trimmed buffer) always begins with
// a ReplSnapshot record carrying the new cursor.
type ReplRecord struct {
	Gen  uint64
	Seq  uint64
	Kind int
	// UnixNano is the leader's clock when the record entered the stream;
	// followers subtract it from their own clock to measure replication lag.
	UnixNano int64
	// CRC is crc32.ChecksumIEEE(Payload), checked by the follower before
	// apply so a corrupt hop (or buggy relay) can never reach the index.
	CRC     uint32
	Payload []byte
}

// ErrReplCRC reports a replication record whose payload does not match its
// checksum.
var ErrReplCRC = errors.New("wire: replication record CRC mismatch")

// NewReplRecord seals payload into a record with its checksum computed.
func NewReplRecord(gen, seq uint64, kind int, unixNano int64, payload []byte) ReplRecord {
	return ReplRecord{
		Gen:      gen,
		Seq:      seq,
		Kind:     kind,
		UnixNano: unixNano,
		CRC:      crc32.ChecksumIEEE(payload),
		Payload:  payload,
	}
}

// Verify checks the record's payload against its checksum.
func (r *ReplRecord) Verify() error {
	if got := crc32.ChecksumIEEE(r.Payload); got != r.CRC {
		return fmt.Errorf("%w: gen %d seq %d: got %08x want %08x", ErrReplCRC, r.Gen, r.Seq, got, r.CRC)
	}
	return nil
}

// ReplRecords is one KindReplRecords frame: a batch of records for one
// stream, or a terminal error ending the subscription.
type ReplRecords struct {
	Err     string
	Code    int
	RepoID  string
	Records []ReplRecord
}

// ReplAck is the follower's applied cursor for one stream (fire-and-forget).
type ReplAck struct {
	RepoID string
	Gen    uint64
	Seq    uint64
}

// ReplCatalogEvent is the payload of catalog-stream records: which
// repository appeared (ReplCreate, with its engine options so the follower
// can mirror it) or disappeared (ReplDrop).
type ReplCatalogEvent struct {
	RepoID string
	Opts   RepoOptions
}
