package wire

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mie/internal/auth"
	"mie/internal/core"
)

func TestErrCodeClassification(t *testing.T) {
	cases := []struct {
		err   error
		code  int
		retry time.Duration
	}{
		{nil, ErrCodeUnspecified, 0},
		{errors.New("opaque"), ErrCodeUnspecified, 0},
		{core.ErrRepoExists, ErrCodeExists, 0},
		{fmt.Errorf("wrapped: %w", core.ErrRepoExists), ErrCodeExists, 0},
		{core.ErrRepoNotFound, ErrCodeRepoNotFound, 0},
		{core.ErrOverQuota, ErrCodeOverQuota, 0},
		{&core.QuotaError{Tenant: "t", Resource: "inflight", RetryAfter: 50 * time.Millisecond}, ErrCodeOverQuota, 50 * time.Millisecond},
		{auth.ErrBadMAC, ErrCodeUnauthorized, 0},
		{auth.ErrExpired, ErrCodeUnauthorized, 0},
		{core.ErrUnknownObject, ErrCodeUnknownObject, 0},
		{core.ErrUnknownJob, ErrCodeUnknownJob, 0},
	}
	for _, c := range cases {
		code, retry := ErrCode(c.err)
		if code != c.code || retry != c.retry {
			t.Errorf("ErrCode(%v) = (%d, %v), want (%d, %v)", c.err, code, retry, c.code, c.retry)
		}
	}
}

func TestSentinelRoundTrip(t *testing.T) {
	// Every sentinel-backed code maps back to an error the original matches
	// with errors.Is, so client-side unwrapping mirrors server-side intent.
	for _, err := range []error{
		core.ErrRepoExists,
		core.ErrRepoNotFound,
		core.ErrOverQuota,
		core.ErrUnknownObject,
		core.ErrUnknownJob,
	} {
		code, _ := ErrCode(err)
		if s := Sentinel(code); !errors.Is(err, s) {
			t.Errorf("Sentinel(%d) = %v does not match source %v", code, s, err)
		}
	}
	if Sentinel(ErrCodeUnspecified) != nil {
		t.Error("Sentinel(Unspecified) should be nil")
	}
	if Sentinel(999) != nil {
		t.Error("Sentinel of unknown code should be nil")
	}
}

// TestAckCodeGobTolerance proves the v1 interop story: a response encoded by
// a peer that predates error codes (no Code/RetryAfterNanos fields) decodes
// into the current Ack with the zero code, and vice versa a coded Ack
// decodes into a legacy struct without error.
func TestAckCodeGobTolerance(t *testing.T) {
	type legacyAck struct {
		Err string
	}
	env, err := NewEnvelope(KindAck, "", 1, 0, legacyAck{Err: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	var ack Ack
	if err := env.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err != "boom" || ack.Code != ErrCodeUnspecified || ack.RetryAfterNanos != 0 {
		t.Errorf("legacy frame decoded to %+v, want Err=boom with zero code", ack)
	}

	env2, err := NewEnvelope(KindAck, "", 2, 0, Ack{Err: "quota", Code: ErrCodeOverQuota, RetryAfterNanos: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	var old legacyAck
	if err := env2.Decode(&old); err != nil {
		t.Fatalf("coded frame does not decode into legacy struct: %v", err)
	}
	if old.Err != "quota" {
		t.Errorf("legacy decode of coded frame = %+v", old)
	}
}
