// Package leakcheck is a stdlib-only goroutine-leak sentinel for tests.
// Server connections, the client mux transport and async train jobs all
// spawn goroutines whose lifecycles are supposed to end with Close; a test
// that passes while leaving goroutines behind hides exactly the bugs those
// lifecycles exist to prevent. Call Check at the top of a test:
//
//	func TestServerClose(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
//
// At cleanup time the sentinel waits for the process goroutine count to
// return to its starting level and fails the test with a full stack dump if
// it does not. Counts, not goroutine identities, keep it dependency-free;
// the retry loop absorbs goroutines that are mid-exit when the test ends.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// grace is how long Check waits for stragglers to exit before declaring a
// leak. Closing a server tears down connection goroutines asynchronously,
// so a freshly passed test legitimately has a few mid-exit.
const grace = 2 * time.Second

// Check snapshots the goroutine count and registers a cleanup that fails
// the test if the count has not returned to the baseline after the test
// body (and all inner cleanups) finish. Register it first so its cleanup
// runs last, after the test's own Close/shutdown cleanups.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines still running, started with %d; stacks:\n%s", n, base, buf)
	})
}
