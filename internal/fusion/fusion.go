// Package fusion merges per-modality ranked result lists into one multimodal
// ranking. The paper uses the unsupervised logarithmic inverse square rank
// (ISR) family of Mourão et al.: each hit contributes 1/rank², and documents
// found by several modalities get a logarithmic frequency boost. Rank-based
// fusion needs no score normalization across modalities, which is why it
// works unchanged over encrypted indexes.
package fusion

import (
	"math"

	"mie/internal/index"
)

// Method selects the fusion formula.
type Method int

const (
	// LogISR is logarithmic inverse square rank fusion (the paper's choice):
	// score(d) = log(1 + hits(d)) * Σ_modality 1/rank(d)².
	LogISR Method = iota + 1
	// ISR is plain inverse square rank: score(d) = Σ 1/rank(d)².
	ISR
	// RRF is reciprocal rank fusion with the customary k=60 damping,
	// provided as an ablation alternative.
	RRF
)

// Fuse merges the per-modality ranked lists (each sorted descending by its
// own score) and returns the top k documents under the fused score. Ranks
// are 1-based. Empty lists contribute nothing.
func Fuse(method Method, lists [][]index.Result, k int) []index.Result {
	if k <= 0 {
		return nil
	}
	sums := make(map[index.DocID]float64)
	hits := make(map[index.DocID]int)
	for _, list := range lists {
		for i, r := range list {
			rank := float64(i + 1)
			var c float64
			switch method {
			case RRF:
				c = 1 / (60 + rank)
			default: // ISR and LogISR share the inverse-square kernel
				c = 1 / (rank * rank)
			}
			sums[r.Doc] += c
			hits[r.Doc]++
		}
	}
	fused := make(map[index.DocID]float64, len(sums))
	for doc, s := range sums {
		if method == LogISR {
			s *= math.Log(1 + float64(hits[doc]))
		}
		fused[doc] = s
	}
	out := make([]index.Result, 0, len(fused))
	for doc, s := range fused {
		out = append(out, index.Result{Doc: doc, Score: s})
	}
	index.SortResults(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}
