package fusion

import (
	"fmt"
	"testing"
	"testing/quick"

	"mie/internal/index"
)

func list(docs ...index.DocID) []index.Result {
	out := make([]index.Result, len(docs))
	for i, d := range docs {
		out[i] = index.Result{Doc: d, Score: float64(len(docs) - i)}
	}
	return out
}

func TestFuseEmpty(t *testing.T) {
	if got := Fuse(LogISR, nil, 5); len(got) != 0 {
		t.Errorf("fusing nothing returned %v", got)
	}
	if got := Fuse(LogISR, [][]index.Result{list("a")}, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestFuseSingleModalityPreservesOrder(t *testing.T) {
	in := list("a", "b", "c")
	got := Fuse(LogISR, [][]index.Result{in}, 3)
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for i, want := range []index.DocID{"a", "b", "c"} {
		if got[i].Doc != want {
			t.Errorf("pos %d = %s, want %s", i, got[i].Doc, want)
		}
	}
}

func TestFuseMultimodalAgreementWins(t *testing.T) {
	// "both" is rank 1 in text and rank 2 in images; the other docs top one
	// modality each. Cross-modality agreement should put "both" first:
	// (1 + 1/4)·log(3) beats 1·log(2).
	textList := list("both", "t2", "t3")
	imageList := list("v1", "both", "v3")
	got := Fuse(LogISR, [][]index.Result{textList, imageList}, 5)
	if got[0].Doc != "both" {
		t.Errorf("top = %s, want both (cross-modality agreement boost): %v", got[0].Doc, got)
	}
}

func TestFuseISRNoBoost(t *testing.T) {
	// Under plain ISR the agreement doc at ranks (2,2) scores 2/4 = 0.5 <
	// 1.0 of the rank-1 singletons.
	textList := list("t1", "both")
	imageList := list("v1", "both")
	got := Fuse(ISR, [][]index.Result{textList, imageList}, 5)
	if got[0].Doc == "both" {
		t.Errorf("plain ISR should not boost agreement above rank-1 hits: %v", got)
	}
}

func TestFuseTopKTruncation(t *testing.T) {
	got := Fuse(LogISR, [][]index.Result{list("a", "b", "c", "d", "e")}, 2)
	if len(got) != 2 {
		t.Errorf("got %d results, want 2", len(got))
	}
}

func TestFuseRanksDescending(t *testing.T) {
	got := Fuse(RRF, [][]index.Result{list("a", "b", "c"), list("c", "a")}, 10)
	for i := 1; i < len(got); i++ {
		if got[i-1].Score < got[i].Score {
			t.Errorf("scores not descending at %d: %v", i, got)
		}
	}
}

func TestFuseDeterministicTies(t *testing.T) {
	a := Fuse(LogISR, [][]index.Result{list("x", "y"), list("y", "x")}, 2)
	b := Fuse(LogISR, [][]index.Result{list("x", "y"), list("y", "x")}, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("fusion not deterministic: %v vs %v", a, b)
		}
	}
}

func TestFuseBoundsProperty(t *testing.T) {
	f := func(sizes [3]uint8, k uint8) bool {
		var lists [][]index.Result
		distinct := map[index.DocID]struct{}{}
		for li, sz := range sizes {
			n := int(sz % 20)
			var l []index.Result
			for i := 0; i < n; i++ {
				d := index.DocID(fmt.Sprintf("d%d-%d", li, i%7))
				l = append(l, index.Result{Doc: d, Score: float64(n - i)})
				distinct[d] = struct{}{}
			}
			lists = append(lists, l)
		}
		kk := int(k%10) + 1
		out := Fuse(LogISR, lists, kk)
		if len(out) > kk || len(out) > len(distinct) {
			return false
		}
		seen := map[index.DocID]struct{}{}
		for i, r := range out {
			if _, dup := seen[r.Doc]; dup {
				return false // no duplicate docs in fused output
			}
			seen[r.Doc] = struct{}{}
			if i > 0 && out[i-1].Score < r.Score {
				return false // descending
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
