package core

import (
	"testing"

	"mie/internal/obs"
)

// TestLeakageSummaryCounts drives updates, repeated searches and gets
// through a repository and checks the aggregate leakage profile — the
// quantities Table I says MIE reveals, counted.
func TestLeakageSummaryCounts(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("leakrepo", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })

	add := func(id, text string) {
		t.Helper()
		up, err := c.PrepareUpdate(&Object{ID: id, Text: text}, testDataKey(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	// "beach" appears in both objects (mass 3 total), "sunset" and "storm"
	// once each: 3 distinct token ids, token mass 5.
	add("o1", "beach beach sunset")
	add("o2", "beach storm")

	search := func(text string) []SearchHit {
		t.Helper()
		q, err := c.PrepareQuery(&Object{ID: "q", Text: text}, 5)
		if err != nil {
			t.Fatal(err)
		}
		hits, err := r.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		return hits
	}
	hits1 := search("beach")  // first sighting of the beach token
	hits2 := search("beach")  // repeat: the server links the two queries
	hits3 := search("sunset") // second distinct search token

	sum := r.leak.Summary()
	if sum.Updates != 2 || sum.Searches != 3 {
		t.Errorf("ops = %d updates %d searches", sum.Updates, sum.Searches)
	}
	if sum.DistinctUpdateTokens != 3 {
		t.Errorf("distinct update tokens = %d, want 3", sum.DistinctUpdateTokens)
	}
	if sum.UpdateTokenMass != 5 {
		t.Errorf("update token mass = %d, want 5", sum.UpdateTokenMass)
	}
	if sum.DistinctSearchTokens != 2 {
		t.Errorf("distinct search tokens = %d, want 2", sum.DistinctSearchTokens)
	}
	if sum.SearchTokenRepeats != 1 {
		t.Errorf("search token repeats = %d, want 1", sum.SearchTokenRepeats)
	}
	// Every returned hit reveals ID(d); a Get reveals it again.
	wantReveals := uint64(len(hits1) + len(hits2) + len(hits3))
	if _, _, err := r.Get("o1"); err != nil {
		t.Fatal(err)
	}
	wantReveals++
	sum = r.leak.Summary()
	if sum.AccessReveals != wantReveals {
		t.Errorf("access reveals = %d, want %d", sum.AccessReveals, wantReveals)
	}
	if sum.DistinctObjectsAccessed < 1 || sum.DistinctObjectsAccessed > 2 {
		t.Errorf("distinct objects accessed = %d", sum.DistinctObjectsAccessed)
	}

	// The same quantities must be visible as metrics for /metrics scrapes.
	reg := obs.Default()
	if got := reg.Counter(obs.L("repo_leak_search_repeats_total", "repo", "leakrepo")).Value(); got != 1 {
		t.Errorf("repo_leak_search_repeats_total = %d, want 1", got)
	}
	if got := reg.Counter(obs.L("repo_leak_update_token_mass_total", "repo", "leakrepo")).Value(); got != 5 {
		t.Errorf("repo_leak_update_token_mass_total = %d, want 5", got)
	}
	if got := reg.Gauge(obs.L("repo_leak_distinct_search_tokens", "repo", "leakrepo")).Value(); got != 2 {
		t.Errorf("repo_leak_distinct_search_tokens = %d, want 2", got)
	}
	if got := reg.Counter(obs.L("repo_leak_access_reveals_total", "repo", "leakrepo")).Value(); got != int64(wantReveals) {
		t.Errorf("repo_leak_access_reveals_total = %d, want %d", got, wantReveals)
	}

	// And through the service aggregation used by /debug/leakage.
	svc := openMem(t)
	t.Cleanup(func() { _ = svc.Close() })
	r2, err := svc.CreateRepository("svc-repo", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.PrepareUpdate(&Object{ID: "x", Text: "hello"}, testDataKey(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Update(up); err != nil {
		t.Fatal(err)
	}
	sums := svc.LeakageSummaries()
	if got := sums["svc-repo"]; got.Updates != 1 || got.DistinctUpdateTokens != 1 {
		t.Errorf("service summary = %+v", got)
	}
}
