package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"mie/internal/index"
)

// gateTrain installs trainInstallHook so a Train call parks off-lock right
// before installing the new epoch. It returns a channel that closes when
// training reaches the gate, and a release function.
func gateTrain(t *testing.T) (reached chan struct{}, release func()) {
	t.Helper()
	reached = make(chan struct{})
	blocked := make(chan struct{})
	var reachOnce sync.Once
	trainInstallHook = func() {
		reachOnce.Do(func() { close(reached) })
		<-blocked // released once; later Train calls pass straight through
	}
	t.Cleanup(func() { trainInstallHook = nil })
	var once sync.Once
	return reached, func() { once.Do(func() { close(blocked) }) }
}

// textUpdate fabricates a deterministic text-only update through the real
// client pipeline. freq controls the term frequency of the single keyword
// "oceanwave", so ranked scores are distinct and exactly reproducible.
func textUpdate(t *testing.T, c *Client, id string, freq int) *Update {
	t.Helper()
	obj := &Object{
		ID:    id,
		Owner: "stress",
		Text:  strings.TrimSpace(strings.Repeat("oceanwave ", freq)),
	}
	up, err := c.PrepareUpdate(obj, testDataKey(9))
	if err != nil {
		t.Fatal(err)
	}
	return up
}

// TestSearchAndWritesProceedWhileTrainInFlight holds a retrain at its
// install point and proves that Search, Get, Update and Remove all complete
// while training is provably still running — the epoch-swap design's core
// claim. The old engine kept one write lock across k-means plus a full
// reindex, which stalled every one of these calls.
func TestSearchAndWritesProceedWhileTrainInFlight(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("nonblock", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 4, 3)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}

	reached, release := gateTrain(t)
	defer release()
	trainDone := make(chan error, 1)
	go func() { trainDone <- r.Train() }()
	<-reached // training is now in flight, parked before the epoch swap

	// A search issued mid-training must return (served by the old epoch)
	// before training finishes.
	q, err := c.PrepareQuery(&Object{ID: "q", Text: "beach sand ocean"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatalf("mid-train search: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("mid-train search returned no hits")
	}
	select {
	case <-trainDone:
		t.Fatal("training finished before the gate was released")
	default:
	}

	// Writes also proceed: an update lands in the old epoch's index and is
	// immediately searchable mid-training.
	up := textUpdate(t, c, "midtrain-1", 3)
	if err := r.Update(up); err != nil {
		t.Fatalf("mid-train update: %v", err)
	}
	qNew, err := c.PrepareQuery(&Object{ID: "q2", Text: "oceanwave"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits, err = r.Search(qNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ObjectID != "midtrain-1" {
		t.Fatalf("mid-train update not searchable mid-training: %+v", hits)
	}
	if _, _, err := r.Get("midtrain-1"); err != nil {
		t.Fatalf("mid-train get: %v", err)
	}
	r.Remove("midtrain-1")
	if _, _, err := r.Get("midtrain-1"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("mid-train remove not visible: err=%v", err)
	}

	release()
	if err := <-trainDone; err != nil {
		t.Fatalf("train: %v", err)
	}
	if !r.IsTrained() {
		t.Fatal("not trained after release")
	}
	// The changelog replay must have carried the mid-train update AND its
	// removal into the new epoch: the object stays gone.
	hits, err = r.Search(qNew)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("removed mid-train object resurfaced after swap: %+v", hits)
	}
}

// TestTrainReplayMatchesSequentialOracle runs concurrent Update/Remove/
// Search traffic against a repository while Train is provably in flight,
// then checks the post-train index state against a sequential oracle: a
// fresh repository given the same final object set, trained, and queried
// identically. Run under -race this is also the data-race workout for the
// store/changelog/epoch-swap machinery.
func TestTrainReplayMatchesSequentialOracle(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("stress", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	// Base corpus (with images, so the codebook path trains too).
	fillRepo(t, c, r, 3, 3)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}

	// Pre-build every writer's script sequentially (PrepareUpdate involves
	// no repository state, and t.Fatal must not fire inside goroutines);
	// the goroutines below only apply them. Each writer owns a disjoint id
	// range, so the final object set is deterministic regardless of
	// interleaving.
	const writers = 4
	const perWriter = 6
	type step struct {
		id      string
		up      *Update // nil means Remove
		isFinal bool    // this step determines the id's final state
	}
	scripts := make([][]step, writers)
	final := map[string]*Update{}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := fmt.Sprintf("st-%d-%d", w, i)
			first := textUpdate(t, c, id, (w*perWriter+i)%5+1)
			switch i % 3 {
			case 0: // insert then overwrite with a different frequency
				second := textUpdate(t, c, id, (w+i)%4+2)
				scripts[w] = append(scripts[w], step{id: id, up: first}, step{id: id, up: second, isFinal: true})
				final[id] = second
			case 1: // insert then remove again
				scripts[w] = append(scripts[w], step{id: id, up: first}, step{id: id, isFinal: true})
			default: // keep the first version
				scripts[w] = append(scripts[w], step{id: id, up: first, isFinal: true})
				final[id] = first
			}
		}
	}
	searchQ, err := c.PrepareQuery(&Object{ID: "sq", Text: "oceanwave beach"}, 5)
	if err != nil {
		t.Fatal(err)
	}

	reached, release := gateTrain(t)
	trainDone := make(chan error, 1)
	go func() { trainDone <- r.Train() }()
	<-reached

	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(script []step) {
			defer writerWg.Done()
			for _, s := range script {
				if s.up == nil {
					r.Remove(s.id)
				} else if err := r.Update(s.up); err != nil {
					t.Errorf("update %s: %v", s.id, err)
					return
				}
			}
		}(scripts[w])
	}
	// Concurrent searchers run until the writers drain: results are
	// epoch-dependent mid-swap, so only errors and races count here.
	stop := make(chan struct{})
	var searchWg sync.WaitGroup
	for s := 0; s < 2; s++ {
		searchWg.Add(1)
		go func() {
			defer searchWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Search(searchQ); err != nil {
					t.Errorf("concurrent search: %v", err)
					return
				}
			}
		}()
	}
	// Writers finish while Train is still parked at the gate: every one of
	// their writes lands in the changelog and must survive the replay.
	writerWg.Wait()
	close(stop)
	searchWg.Wait()
	select {
	case <-trainDone:
		t.Fatal("training finished while gate was held")
	default:
	}
	release()
	if err := <-trainDone; err != nil {
		t.Fatalf("train: %v", err)
	}

	// Oracle: same base corpus + the same final writer objects, applied
	// sequentially, then trained.
	oracle, err := NewRepository("oracle", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, oracle, 3, 3)
	for id, up := range final {
		if err := oracle.Update(up); err != nil {
			t.Fatalf("oracle update %s: %v", id, err)
		}
	}
	if err := oracle.Train(); err != nil {
		t.Fatal(err)
	}

	// A single-term ranked query gives exactly reproducible TF-IDF scores;
	// post-replay results must match the oracle hit for hit.
	q, err := c.PrepareQuery(&Object{ID: "oq", Text: "oceanwave"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("post-train hits = %d, oracle = %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ObjectID != want[i].ObjectID {
			t.Fatalf("hit %d: got %s, oracle %s", i, got[i].ObjectID, want[i].ObjectID)
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("hit %d (%s): score %g, oracle %g", i, got[i].ObjectID, got[i].Score, want[i].Score)
		}
	}
	if r.Size() != oracle.Size() {
		t.Fatalf("size %d, oracle %d", r.Size(), oracle.Size())
	}
}

// TestUpdateRollbackOnIndexError injects an index failure for one modality
// mid-update and asserts atomicity: the object insert is rolled back, the
// earlier modality's postings are unwound, and a prior version (when one
// exists) is fully reinstated.
func TestUpdateRollbackOnIndexError(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("rollback", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 3, 3)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}

	// A transient failure: the first image-index insert fails, later ones
	// (including the rollback's best-effort reinstate of the previous
	// version) succeed.
	boom := errors.New("injected image index failure")
	failImageOnce := func() func(Modality) error {
		fired := false
		return func(m Modality) error {
			if m == ModalityImage && !fired {
				fired = true
				return boom
			}
			return nil
		}
	}
	updateIndexHook = failImageOnce()
	t.Cleanup(func() { updateIndexHook = nil })

	// Fresh object: the failed update must leave no trace — not in the
	// store, no text postings either.
	obj := testObject(1, 99)
	obj.ID = "atomic-new"
	up, err := c.PrepareUpdate(obj, testDataKey(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); !errors.Is(err, boom) {
		t.Fatalf("update err = %v, want injected failure", err)
	}
	if _, _, err := r.Get("atomic-new"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("failed update left object stored: err=%v", err)
	}
	updateIndexHook = nil
	q, err := c.PrepareQuery(&Object{ID: "q", Text: obj.Text}, 50)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.ObjectID == "atomic-new" {
			t.Fatal("failed update left text postings behind")
		}
	}

	// Replacement: the failed update must reinstate the previous version.
	victim := "obj-c0-0"
	before, err := r.Search(q0(t, c, 0))
	if err != nil {
		t.Fatal(err)
	}
	updateIndexHook = failImageOnce()
	repl := testObject(0, 0) // same ID as victim, fresh content
	repl.Text = "totally different replacement text"
	upRepl, err := c.PrepareUpdate(repl, testDataKey(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(upRepl); !errors.Is(err, boom) {
		t.Fatalf("replace err = %v, want injected failure", err)
	}
	updateIndexHook = nil
	if _, _, err := r.Get(victim); err != nil {
		t.Fatalf("previous version not reinstated: %v", err)
	}
	after, err := r.Search(q0(t, c, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("search after failed replace: %d hits, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i].ObjectID != before[i].ObjectID {
			t.Fatalf("hit %d changed after failed replace: %s vs %s", i, after[i].ObjectID, before[i].ObjectID)
		}
	}
}

// q0 builds the standing class-0 text query.
func q0(t *testing.T, c *Client, class int) *Query {
	t.Helper()
	q, err := c.PrepareQuery(&Object{ID: "q0", Text: testObject(class, 0).Text}, 10)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestSearchDropsStaleHitsWithoutRecordingAccess asserts the access-pattern
// fix: a fused result whose object raced a remove (still present in a
// not-yet-retired index) is dropped AND not counted in the ID(d) access
// leakage — only hits actually returned are recorded.
func TestSearchDropsStaleHitsWithoutRecordingAccess(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("stale", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 3, 3) // 3 classes, so class terms have non-zero IDF
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	// Simulate the race window: the object vanishes from the store while
	// its postings are still in the serving epoch's index (exactly what a
	// search sees between an index lookup and hit collection).
	victim := "obj-c0-0"
	if _, ok := r.objects.Delete(victim); !ok {
		t.Fatalf("victim %s not stored", victim)
	}
	st := r.state.Load()
	found := false
	for _, idx := range st.indexes {
		if idx != nil && idx.Has(index.DocID(victim)) {
			found = true
		}
	}
	if !found {
		t.Fatal("test setup: victim postings should still be indexed")
	}
	q := q0(t, c, 0)
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.ObjectID == victim {
			t.Fatal("stale hit returned")
		}
	}
	if got := r.Leakage().AccessCount(victim); got != 0 {
		t.Fatalf("dropped hit recorded %d accesses, want 0", got)
	}
	// Returned hits ARE recorded.
	if len(hits) == 0 {
		t.Fatal("expected surviving hits")
	}
	if got := r.Leakage().AccessCount(hits[0].ObjectID); got == 0 {
		t.Fatal("returned hit not recorded in access pattern")
	}
}
