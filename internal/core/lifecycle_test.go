package core

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mie/internal/wal"
	"mie/internal/wal/walfault"
)

// openMem opens an in-memory service via the unified constructor.
func openMem(t testing.TB) *Service {
	t.Helper()
	svc, _, err := OpenService(ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// ownedUpdate prepares a small text-only update owned by owner.
func ownedUpdate(t *testing.T, c *Client, id, owner, text string, key byte) *Update {
	t.Helper()
	up, err := c.PrepareUpdate(&Object{ID: id, Owner: owner, Text: text}, testDataKey(key))
	if err != nil {
		t.Fatal(err)
	}
	return up
}

func TestOpenServiceValidation(t *testing.T) {
	if _, _, err := OpenService(ServiceOptions{MemoryBudget: 1 << 20}); err == nil {
		t.Error("in-memory service with a memory budget should be rejected")
	}
	if _, _, err := OpenService(ServiceOptions{LazyActivation: true}); err == nil {
		t.Error("in-memory service with lazy activation should be rejected")
	}
	if _, _, err := OpenService(ServiceOptions{Dir: t.TempDir(), MemoryBudget: -1}); err == nil {
		t.Error("negative memory budget should be rejected")
	}
}

func TestLazyActivationSingleFlight(t *testing.T) {
	dir := t.TempDir()
	c := testClient(t)
	{
		svc, _, err := OpenService(ServiceOptions{Dir: dir, Sync: wal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		repo, err := svc.CreateRepository("lazy", RepositoryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Update(ownedUpdate(t, c, "o1", "u", "cold start content", 1)); err != nil {
			t.Fatal(err)
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}

	svc, report, err := OpenService(ServiceOptions{Dir: dir, Sync: wal.SyncNever, LazyActivation: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	if report.ColdRepositories != 1 {
		t.Fatalf("ColdRepositories = %d, want 1", report.ColdRepositories)
	}
	if st := svc.Lifecycle(); st.Active != 0 || st.Repositories != 1 {
		t.Fatalf("before touch: %+v, want 1 repository, 0 active", st)
	}

	// A herd of concurrent acquirers must trigger exactly one activation and
	// all observe the same engine instance.
	const herd = 16
	var wg sync.WaitGroup
	repos := make([]*Repository, herd)
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			repo, release, err := svc.Acquire("lazy")
			if err != nil {
				errs[i] = err
				return
			}
			defer release()
			repos[i] = repo
			if _, _, err := repo.Get("o1"); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("acquirer %d: %v", i, errs[i])
		}
		if repos[i] != repos[0] {
			t.Fatalf("acquirer %d saw a different engine instance", i)
		}
	}
	if st := svc.Lifecycle(); st.Activations != 1 || st.Active != 1 {
		t.Errorf("after herd: activations = %d, active = %d; want 1, 1", st.Activations, st.Active)
	}
}

func TestMemoryBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	c := testClient(t)
	// Each repository costs at least repoBaseBytes resident; a budget of
	// ~1.5x that forces every second activation to evict the previous one.
	svc, _, err := OpenService(ServiceOptions{
		Dir:          dir,
		Sync:         wal.SyncNever,
		MemoryBudget: repoBaseBytes + repoBaseBytes/2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()

	ids := []string{"r0", "r1", "r2"}
	for i, id := range ids {
		repo, err := svc.CreateRepository(id, RepositoryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Update(ownedUpdate(t, c, "obj", "u", "budget pressure "+id, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch each repository once more; the budget admits one resident
	// repository at a time, so every touch beyond the first reactivates.
	for _, id := range ids {
		repo, release, err := svc.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := repo.Get("obj"); err != nil {
			t.Errorf("%s after churn: %v", id, err)
		}
		release()
	}
	st := svc.Lifecycle()
	if st.Evictions == 0 {
		t.Errorf("evictions = 0, want > 0 under budget %d with stats %+v", svc.MemoryBudget(), st)
	}
	if st.ResidentBytes > svc.MemoryBudget() {
		t.Errorf("resident %d exceeds budget %d after quiescence", st.ResidentBytes, svc.MemoryBudget())
	}
	if st.Active > 1 {
		t.Errorf("active = %d, want <= 1 under this budget", st.Active)
	}
}

func TestEvictRepositoryAndReactivate(t *testing.T) {
	dir := t.TempDir()
	c := testClient(t)
	svc, _, err := OpenService(ServiceOptions{Dir: dir, Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	repo, err := svc.CreateRepository("cycle", RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Update(ownedUpdate(t, c, "a", "u", "survives eviction", 1)); err != nil {
		t.Fatal(err)
	}

	// A pinned repository refuses eviction.
	pinned, release, err := svc.Acquire("cycle")
	if err != nil {
		t.Fatal(err)
	}
	if pinned != repo {
		t.Fatal("Acquire returned a different engine while resident")
	}
	if err := svc.EvictRepository("cycle"); err == nil {
		t.Error("evicting a pinned repository should fail")
	}
	release()

	if err := svc.EvictRepository("cycle"); err != nil {
		t.Fatal(err)
	}
	if st := svc.Lifecycle(); st.Active != 0 || st.Evictions != 1 {
		t.Fatalf("after evict: %+v, want 0 active, 1 eviction", st)
	}
	// Evicting a cold repository is a no-op.
	if err := svc.EvictRepository("cycle"); err != nil {
		t.Fatalf("evicting cold repository: %v", err)
	}
	if err := svc.EvictRepository("nope"); !errors.Is(err, ErrRepoNotFound) {
		t.Errorf("evicting unknown repository: err = %v, want ErrRepoNotFound", err)
	}

	back, release2, err := svc.Acquire("cycle")
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if back == repo {
		t.Error("reactivation returned the evicted engine instance")
	}
	if _, _, err := back.Get("a"); err != nil {
		t.Errorf("object lost across evict/reactivate: %v", err)
	}
	if st := svc.Lifecycle(); st.Activations != 1 {
		t.Errorf("activations = %d, want 1 (the reactivation)", st.Activations)
	}
}

func TestTenantObjectAndByteQuotas(t *testing.T) {
	c := testClient(t)
	svc, _, err := OpenService(ServiceOptions{Quotas: Quotas{MaxObjects: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	repo, err := svc.CreateRepository("q", RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("o%d", i)
		if err := repo.Update(ownedUpdate(t, c, id, "alice", "within quota "+id, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	err = repo.Update(ownedUpdate(t, c, "o2", "alice", "over quota", 3))
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("third insert: err = %v, want ErrOverQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("err %v does not carry *QuotaError", err)
	}
	if qe.Tenant != "alice" || qe.Resource != "objects" || qe.RetryAfter != 0 {
		t.Errorf("rejection = %+v, want tenant alice, resource objects, no retry hint", qe)
	}
	// A rejected update leaves no trace.
	if _, _, err := repo.Get("o2"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("rejected object is visible: err = %v", err)
	}
	if u := svc.Tenants().Usage("alice"); u.Objects != 2 {
		t.Errorf("usage after rejection = %+v, want 2 objects", u)
	}
	// Replacing an existing object is not growth and stays admitted; another
	// tenant is unaffected; freeing capacity re-admits.
	if err := repo.Update(ownedUpdate(t, c, "o1", "alice", "replaced in place", 4)); err != nil {
		t.Errorf("replace at quota: %v", err)
	}
	if err := repo.Update(ownedUpdate(t, c, "b0", "bob", "other tenant", 5)); err != nil {
		t.Errorf("second tenant blocked by first tenant's quota: %v", err)
	}
	if err := repo.Remove("o0"); err != nil {
		t.Fatal(err)
	}
	if err := repo.Update(ownedUpdate(t, c, "o2", "alice", "fits after remove", 6)); err != nil {
		t.Errorf("insert after freeing capacity: %v", err)
	}
}

func TestTenantInflightQuota(t *testing.T) {
	svc, _, err := OpenService(ServiceOptions{Quotas: Quotas{MaxInflight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	gov := svc.Tenants()
	rel1, err := gov.Admit("carol")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := gov.Admit("carol")
	if err != nil {
		t.Fatal(err)
	}
	_, err = gov.Admit("carol")
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("third admit: err = %v, want ErrOverQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "inflight" || qe.RetryAfter != inflightRetryAfter {
		t.Errorf("rejection = %+v, want inflight with retry-after %v", qe, inflightRetryAfter)
	}
	if _, err := gov.Admit("dave"); err != nil {
		t.Errorf("other tenant rejected: %v", err)
	}
	rel1()
	rel1() // idempotent
	if _, err := gov.Admit("carol"); err != nil {
		t.Errorf("admit after release: %v", err)
	}
	rel2()
}

func TestQuotaCreditsOnEviction(t *testing.T) {
	dir := t.TempDir()
	c := testClient(t)
	svc, _, err := OpenService(ServiceOptions{Dir: dir, Sync: wal.SyncNever, Quotas: Quotas{MaxObjects: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	repo, err := svc.CreateRepository("resident", RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("o%d", i)
		if err := repo.Update(ownedUpdate(t, c, id, "erin", "resident footprint "+id, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if u := svc.Tenants().Usage("erin"); u.Objects != 3 {
		t.Fatalf("usage = %+v, want 3 objects", u)
	}
	if err := svc.EvictRepository("resident"); err != nil {
		t.Fatal(err)
	}
	// Quotas bound the resident footprint: eviction credits it back.
	if u := svc.Tenants().Usage("erin"); u.Objects != 0 || u.Bytes != 0 {
		t.Errorf("usage after eviction = %+v, want zero", u)
	}
	back, release, err := svc.Acquire("resident")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if u := svc.Tenants().Usage("erin"); u.Objects != 3 {
		t.Errorf("usage after reactivation = %+v, want 3 objects (recounted)", u)
	}
	if err := back.Update(ownedUpdate(t, c, "o3", "erin", "one more fits", 9)); err != nil {
		t.Errorf("insert within quota after reactivation: %v", err)
	}
}

// TestLifecycleChurnRace races Update/Get/Search traffic against forced
// eviction and reactivation, then compares the surviving state against an
// always-resident oracle. Run with -race this exercises the pin/evict
// synchronization; the oracle comparison catches lost acknowledged writes.
func TestLifecycleChurnRace(t *testing.T) {
	dir := t.TempDir()
	c := testClient(t)
	svc, _, err := OpenService(ServiceOptions{
		Dir:          dir,
		Sync:         wal.SyncNever,
		MemoryBudget: 2 * repoBaseBytes, // keeps the evictor busy on 3 repos
	})
	if err != nil {
		t.Fatal(err)
	}
	repoIDs := []string{"w0", "w1", "w2"}
	for _, id := range repoIDs {
		if _, err := svc.CreateRepository(id, RepositoryOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	// The oracle holds every acknowledged update, keyed repo/object.
	var oracleMu sync.Mutex
	oracle := make(map[string]string) // "repo/obj" -> text

	const (
		workers   = 4
		opsPerWkr = 60
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 977))
			for op := 0; op < opsPerWkr; op++ {
				repoID := repoIDs[rng.Intn(len(repoIDs))]
				objID := fmt.Sprintf("w%d-o%d", w, rng.Intn(8)) // worker-private id space
				repo, release, err := svc.Acquire(repoID)
				if err != nil {
					errCh <- fmt.Errorf("worker %d acquire %s: %w", w, repoID, err)
					return
				}
				switch rng.Intn(3) {
				case 0, 1:
					text := fmt.Sprintf("worker %d op %d payload", w, op)
					up, err := c.PrepareUpdate(&Object{ID: objID, Owner: "u", Text: text}, testDataKey(byte(w+1)))
					if err == nil {
						err = repo.Update(up)
					}
					if err != nil {
						release()
						errCh <- fmt.Errorf("worker %d update: %w", w, err)
						return
					}
					oracleMu.Lock()
					oracle[repoID+"/"+objID] = text
					oracleMu.Unlock()
				case 2:
					_, _, err := repo.Get(objID)
					if err != nil && !errors.Is(err, ErrUnknownObject) {
						release()
						errCh <- fmt.Errorf("worker %d get: %w", w, err)
						return
					}
				}
				release()
			}
		}(w)
	}
	// The churn goroutine forces evictions concurrently with the traffic.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := repoIDs[rng.Intn(len(repoIDs))]
			if err := svc.EvictRepository(id); err != nil && !strings.Contains(err.Error(), "pinned") {
				errCh <- fmt.Errorf("evict %s: %w", id, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	<-churnDone
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Every acknowledged write must be present with its last value — across
	// however many evict/reactivate cycles its repository went through.
	for key, want := range oracle {
		parts := strings.SplitN(key, "/", 2)
		repo, release, err := svc.Acquire(parts[0])
		if err != nil {
			t.Fatal(err)
		}
		ct, _, err := repo.Get(parts[1])
		release()
		if err != nil {
			t.Errorf("acknowledged object %s lost: %v", key, err)
			continue
		}
		obj, err := DecryptObject(ct, testDataKey(byte(parts[1][1]-'0'+1)))
		if err != nil {
			t.Errorf("decrypt %s: %v", key, err)
			continue
		}
		if obj.Text != want {
			t.Errorf("object %s: text %q, want %q", key, obj.Text, want)
		}
	}
	if st := svc.Lifecycle(); st.Evictions == 0 {
		t.Logf("note: churn produced no evictions (stats %+v)", st)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionAfterWALCrash simulates a power-style WAL failure underneath a
// live repository and then evicts it: the close fails, the eviction still
// completes, and reactivation restores every previously acknowledged
// mutation from the durable image.
func TestEvictionAfterWALCrash(t *testing.T) {
	dir := t.TempDir()
	disk := walfault.NewDisk()
	walFileOpener = func(p string) (wal.File, error) { return disk.Open(p) }
	t.Cleanup(func() { walFileOpener = nil })

	c := testClient(t)
	svc, _, err := OpenService(ServiceOptions{Dir: dir}) // SyncAlways
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	repo, err := svc.CreateRepository("cm", RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	texts := map[string]string{
		"a": "alpha acknowledged before the crash",
		"b": "beta acknowledged before the crash",
	}
	keys := map[string]byte{"a": 1, "b": 2}
	for id, text := range texts {
		if err := repo.Update(ownedUpdate(t, c, id, "u", text, keys[id])); err != nil {
			t.Fatal(err)
		}
	}

	// Power cut on the WAL device: the log file freezes at its durable
	// prefix and every later operation on it fails.
	disk.File(filepath.Join(dir, walFileName("cm"))).Crash()

	// Eviction must proceed despite the failing close — the on-disk image
	// already holds everything that was acknowledged.
	if err := svc.EvictRepository("cm"); err != nil {
		t.Fatalf("evict with crashed WAL: %v", err)
	}
	if st := svc.Lifecycle(); st.Active != 0 {
		t.Fatalf("repository still active after eviction: %+v", st)
	}

	// Reactivation reopens the reincarnated WAL (its durable image) and
	// must replay both acknowledged mutations.
	back, release, err := svc.Acquire("cm")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	for id, want := range texts {
		ct, _, err := back.Get(id)
		if err != nil {
			t.Errorf("acknowledged object %s lost across crash+eviction: %v", id, err)
			continue
		}
		obj, err := DecryptObject(ct, testDataKey(keys[id]))
		if err != nil {
			t.Errorf("decrypt %s: %v", id, err)
			continue
		}
		if obj.Text != want {
			t.Errorf("object %s: text %q, want %q", id, obj.Text, want)
		}
	}
}

func TestRepoIDFromStemRoundTrip(t *testing.T) {
	ids := []string{
		"plain",
		"CAPS-and_under0",
		"beta/with:odd chars",
		"spaces  doubled",
		"unicode-café-日本語",
		"%literal%percent",
		"trailing%",
	}
	for _, id := range ids {
		stem := repoFileStem(id)
		got, err := repoIDFromStem(stem)
		if err != nil {
			t.Errorf("id %q (stem %q): %v", id, stem, err)
			continue
		}
		if got != id {
			t.Errorf("id %q: round-tripped to %q via stem %q", id, got, stem)
		}
	}
	// Astral runes produce genuinely ambiguous stems (%1f600 is both U+1F600
	// and U+1F60 followed by a literal '0'); the inverse may pick either, but
	// whatever it picks must re-escape to the same stem, so the files still
	// resolve and the snapshot-id check catches any mismatch at load time.
	stem := repoFileStem("emoji-😀")
	got, err := repoIDFromStem(stem)
	if err != nil {
		t.Fatalf("astral stem %q: %v", stem, err)
	}
	if repoFileStem(got) != stem {
		t.Errorf("astral stem %q: decoded id %q does not re-escape to it", stem, got)
	}
	for _, bad := range []string{"%12", "%zzzz", "%"} {
		if _, err := repoIDFromStem(bad); err == nil {
			t.Errorf("stem %q: expected parse error", bad)
		}
	}
}
