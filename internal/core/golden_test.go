package core

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate golden snapshot fixtures in testdata/")

// TestGoldenSnapshotCompatibility pins the snapshot format: testdata holds a
// trained repository snapshot written by an earlier build plus the ranked
// ids a fixed query returned against it. Today's LoadRepository must restore
// that exact repository — same object count, trained state, and ranking —
// or a format/determinism break has slipped in. Regenerate deliberately with
//
//	go test ./internal/core -run GoldenSnapshot -update
type goldenExpect struct {
	Objects    int      `json:"objects"`
	VocabWords int      `json:"vocab_words"`
	RankedIDs  []string `json:"ranked_ids"`
}

// buildSegmentedGoldenRepo shapes a repository through the incremental
// pipeline: full train, churn, incremental retrain, more churn — so its
// snapshot carries multiple sealed segments, a live memtable and tombstones.
func buildSegmentedGoldenRepo(t *testing.T) (*Client, *Repository) {
	t.Helper()
	c, r := buildTrainedRepo(t, "golden-seg")
	for i := 0; i < 4; i++ {
		up, err := c.PrepareUpdate(testObject(1, 200+i), testDataKey(6))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Remove("obj-c0-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if got := r.LastTrain().Mode; got != "incremental" {
		t.Fatalf("golden fixture retrain mode = %q, want incremental", got)
	}
	up, err := c.PrepareUpdate(testObject(2, 300), testDataKey(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("obj-c2-0"); err != nil {
		t.Fatal(err)
	}
	return c, r
}

// TestGoldenSegmentedSnapshotCompatibility pins the segmented snapshot
// layout (the IndexSegments field): testdata holds a snapshot written after
// an incremental train, and today's LoadRepository must restore the exact
// segment structure and ranking. The companion TestGoldenSnapshotCompatibility
// fixture predates segmentation, so it keeps the legacy rebuild path honest.
func TestGoldenSegmentedSnapshotCompatibility(t *testing.T) {
	snapPath := filepath.Join("testdata", "golden-segmented.snap")
	expectPath := filepath.Join("testdata", "golden-segmented.json")
	c := testClient(t)
	query := testObject(1, 77)

	if *updateGolden {
		_, r := buildSegmentedGoldenRepo(t)
		f, err := os.Create(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Snapshot(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		exp := goldenExpect{
			Objects:    r.Size(),
			VocabWords: r.VocabularySize(),
			RankedIDs:  searchIDs(t, c, r, query, 6),
		}
		blob, err := json.MarshalIndent(exp, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(expectPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s and %s", snapPath, expectPath)
	}

	blob, err := os.ReadFile(expectPath)
	if err != nil {
		t.Fatalf("read golden expectations (run with -update to regenerate): %v", err)
	}
	var want goldenExpect
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("open golden snapshot (run with -update to regenerate): %v", err)
	}
	defer func() { _ = f.Close() }()
	r, err := LoadRepository(f, nil)
	if err != nil {
		t.Fatalf("golden segmented snapshot no longer loads: %v", err)
	}
	if !r.IsTrained() {
		t.Fatal("golden segmented snapshot restored untrained")
	}
	if r.Size() != want.Objects {
		t.Errorf("restored %d objects, want %d", r.Size(), want.Objects)
	}
	if r.VocabularySize() != want.VocabWords {
		t.Errorf("restored %d vocab words, want %d", r.VocabularySize(), want.VocabWords)
	}
	// The fixture was written with sealed segments; restoring must keep the
	// segmented layout rather than collapsing into a monolithic rebuild.
	segmented := false
	for _, s := range r.IndexStats() {
		if s.SealedSegments > 1 || (s.SealedSegments >= 1 && s.MemtableDocs > 0) {
			segmented = true
		}
	}
	if !segmented {
		t.Error("restored repository shows no segment structure")
	}
	got := searchIDs(t, c, r, query, 6)
	if len(got) != len(want.RankedIDs) {
		t.Fatalf("search returned %v, want %v", got, want.RankedIDs)
	}
	for i := range got {
		if got[i] != want.RankedIDs[i] {
			t.Fatalf("rank %d: %s, want %s (full: %v vs %v)", i, got[i], want.RankedIDs[i], got, want.RankedIDs)
		}
	}
}

func TestGoldenSnapshotCompatibility(t *testing.T) {
	snapPath := filepath.Join("testdata", "golden-repo.snap")
	expectPath := filepath.Join("testdata", "golden-search.json")
	c := testClient(t)
	query := testObject(1, 77)

	if *updateGolden {
		_, r := buildTrainedRepo(t, "golden")
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Snapshot(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		exp := goldenExpect{
			Objects:    r.Size(),
			VocabWords: r.VocabularySize(),
			RankedIDs:  searchIDs(t, c, r, query, 6),
		}
		blob, err := json.MarshalIndent(exp, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(expectPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s and %s", snapPath, expectPath)
	}

	blob, err := os.ReadFile(expectPath)
	if err != nil {
		t.Fatalf("read golden expectations (run with -update to regenerate): %v", err)
	}
	var want goldenExpect
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("open golden snapshot (run with -update to regenerate): %v", err)
	}
	defer func() { _ = f.Close() }()
	r, err := LoadRepository(f, nil)
	if err != nil {
		t.Fatalf("golden snapshot no longer loads: %v", err)
	}
	if !r.IsTrained() {
		t.Fatal("golden snapshot restored untrained")
	}
	if r.Size() != want.Objects {
		t.Errorf("restored %d objects, want %d", r.Size(), want.Objects)
	}
	if r.VocabularySize() != want.VocabWords {
		t.Errorf("restored %d vocab words, want %d", r.VocabularySize(), want.VocabWords)
	}
	got := searchIDs(t, c, r, query, 6)
	if len(got) != len(want.RankedIDs) {
		t.Fatalf("search returned %v, want %v", got, want.RankedIDs)
	}
	for i := range got {
		if got[i] != want.RankedIDs[i] {
			t.Fatalf("rank %d: %s, want %s (full: %v vs %v)", i, got[i], want.RankedIDs[i], got, want.RankedIDs)
		}
	}
}
