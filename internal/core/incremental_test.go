package core

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
)

// textOnlyIncrementalOptions is a text-only repository with a tiny memtable,
// so modest churn exercises auto-seal, multiple segments and compaction.
func textOnlyIncrementalOptions() RepositoryOptions {
	opts := smallRepoOptions("")
	opts.Modalities = []Modality{ModalityText}
	opts.Incremental.MemtableCap = 4
	opts.Incremental.CompactSegments = 3
	return opts
}

func TestFirstTrainIsFullRebuild(t *testing.T) {
	_, r := buildTrainedRepo(t, "inc-first")
	info := r.LastTrain()
	if info == nil {
		t.Fatal("LastTrain nil after Train")
	}
	if info.Mode != "full" {
		t.Errorf("first train mode = %q, want full", info.Mode)
	}
	if info.DriftFallback {
		t.Error("first train cannot be a drift fallback")
	}
}

// TestIncrementalTrainOnChurn is the tentpole's core behavior: on a trained
// repository, Train resolves incrementally — only the churned objects are
// re-indexed, the epoch advances, and search reflects every change.
func TestIncrementalTrainOnChurn(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("inc-churn", textOnlyIncrementalOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := r.Update(textUpdate(t, c, fmt.Sprintf("base-%d", i), i%4+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	// Churn: one new object, one replace, one remove.
	up, err := c.PrepareUpdate(&Object{ID: "fresh", Owner: "u", Text: "zanzibar spice market"}, testDataKey(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); err != nil {
		t.Fatal(err)
	}
	repl, err := c.PrepareUpdate(&Object{ID: "base-0", Owner: "u", Text: "quetzal rainforest"}, testDataKey(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(repl); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("base-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	info := r.LastTrain()
	if info == nil || info.Mode != "incremental" {
		t.Fatalf("LastTrain = %+v, want incremental", info)
	}
	if info.DeltaDocs != 3 {
		t.Errorf("DeltaDocs = %d, want 3 (fresh, base-0, base-1)", info.DeltaDocs)
	}
	if info.Epoch != 2 {
		t.Errorf("Epoch = %d, want 2", info.Epoch)
	}
	// All three changes are searchable facts.
	if got := searchIDs(t, c, r, &Object{ID: "q1", Text: "zanzibar"}, 3); len(got) == 0 || got[0] != "fresh" {
		t.Errorf("new object not found after incremental train: %v", got)
	}
	if got := searchIDs(t, c, r, &Object{ID: "q2", Text: "quetzal"}, 3); len(got) == 0 || got[0] != "base-0" {
		t.Errorf("replaced content not found: %v", got)
	}
	for _, id := range searchIDs(t, c, r, &Object{ID: "q3", Text: "oceanwave"}, 50) {
		if id == "base-1" {
			t.Error("removed object still ranked after incremental train")
		}
	}
	// A second Train with no churn is still incremental (pure seal+compact).
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if info := r.LastTrain(); info.Mode != "incremental" || info.DeltaDocs != 0 {
		t.Errorf("no-churn train = %+v, want incremental with 0 delta", info)
	}
}

// TestIncrementalMatchesFullRebuildRanking is the parity half of the
// acceptance bar: for sparse (vocabulary-free) content, the incremental path
// must rank exactly like a full rebuild of the same final corpus.
func TestIncrementalMatchesFullRebuildRanking(t *testing.T) {
	c := testClient(t)
	inc, err := NewRepository("parity-inc", textOnlyIncrementalOptions())
	if err != nil {
		t.Fatal(err)
	}
	fullOpts := textOnlyIncrementalOptions()
	fullOpts.Incremental.Disable = true
	full, err := NewRepository("parity-full", fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(f func(*Repository) error) {
		t.Helper()
		if err := f(inc); err != nil {
			t.Fatal(err)
		}
		if err := f(full); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		up := textUpdate(t, c, fmt.Sprintf("doc-%02d", i), i%6+1)
		apply(func(r *Repository) error { return r.Update(up) })
	}
	apply((*Repository).Train)
	// 25% churn: replacements, removals, inserts — then retrain both.
	for i := 0; i < 4; i++ {
		up := textUpdate(t, c, fmt.Sprintf("doc-%02d", i), (i+3)%6+1)
		apply(func(r *Repository) error { return r.Update(up) })
	}
	apply(func(r *Repository) error { return r.Remove("doc-10") })
	for i := 16; i < 20; i++ {
		up := textUpdate(t, c, fmt.Sprintf("doc-%02d", i), i%6+1)
		apply(func(r *Repository) error { return r.Update(up) })
	}
	apply((*Repository).Train)
	if got := inc.LastTrain().Mode; got != "incremental" {
		t.Fatalf("incremental repo trained in mode %q", got)
	}
	if got := full.LastTrain().Mode; got != "full" {
		t.Fatalf("disabled repo trained in mode %q", got)
	}

	q, err := c.PrepareQuery(&Object{ID: "q", Text: "oceanwave"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("incremental returned %d hits, full rebuild %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ObjectID != want[i].ObjectID {
			t.Fatalf("rank %d: incremental %s, full %s", i, got[i].ObjectID, want[i].ObjectID)
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("rank %d (%s): score %g vs %g", i, got[i].ObjectID, got[i].Score, want[i].Score)
		}
	}
	// Compacting the segmented index must not change the ranking either.
	if err := inc.CompactNow(); err != nil {
		t.Fatal(err)
	}
	after, err := inc.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range after {
		if after[i].ObjectID != want[i].ObjectID || math.Abs(after[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("rank %d changed after compaction: %+v vs %+v", i, after[i], want[i])
		}
	}
}

func TestIncrementalDisabledForcesFull(t *testing.T) {
	c := testClient(t)
	opts := textOnlyIncrementalOptions()
	opts.Incremental.Disable = true
	r, err := NewRepository("inc-disabled", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(textUpdate(t, c, "a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(textUpdate(t, c, "b", 3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if info := r.LastTrain(); info.Mode != "full" || info.DriftFallback {
		t.Errorf("disabled retrain = %+v, want plain full", info)
	}
}

// TestDriftFallbackForcesFullRebuild: churn from a distribution the codebook
// has never seen, with a hair-trigger drift threshold, must reject the
// refined vocabulary and push the run through the full re-cluster.
func TestDriftFallbackForcesFullRebuild(t *testing.T) {
	c := testClient(t)
	opts := smallRepoOptions("")
	opts.Incremental.DriftThreshold = 1e-9
	opts.Incremental.ReassignThreshold = -1 // isolate the mean-shift check
	r, err := NewRepository("inc-drift", opts)
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 4, 2) // classes 0 and 1 shape the codebook
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	// Out-of-distribution churn: a third class the vocabulary never saw.
	for i := 0; i < 10; i++ {
		up, err := c.PrepareUpdate(testObject(7, i), testDataKey(5))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	info := r.LastTrain()
	if info == nil || info.Mode != "full" || !info.DriftFallback {
		t.Fatalf("LastTrain = %+v, want full with DriftFallback", info)
	}
	if info.Drift.MeanShift <= 0 {
		t.Errorf("drift fallback recorded MeanShift %v, want > 0", info.Drift.MeanShift)
	}
	// The fallback rebuilt for real: new-class content is searchable.
	if got := searchIDs(t, c, r, testObject(7, 99), 4); len(got) == 0 {
		t.Error("post-fallback search found nothing for the new class")
	}
}

// TestNewModalityFallsBackToFull: data arriving for a modality that has no
// codebook cannot be refined — Train must detect it and full-train.
func TestNewModalityFallsBackToFull(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("inc-newmod", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.PrepareUpdate(&Object{ID: "t1", Owner: "u", Text: "text only corpus"}, testDataKey(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if r.VocabularySize() != 0 {
		t.Fatalf("unexpected vocabulary %d", r.VocabularySize())
	}
	fillRepo(t, c, r, 3, 2) // images arrive
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if info := r.LastTrain(); info.Mode != "full" {
		t.Errorf("train after first images = %q, want full", info.Mode)
	}
	if r.VocabularySize() == 0 {
		t.Error("fallback did not build the image codebook")
	}
}

// TestIncrementalSnapshotRoundTrip pins that a repository shaped by
// incremental training — refined vocabulary, multiple sealed segments, a
// non-empty memtable, tombstones — survives Snapshot/LoadRepository with its
// exact segment structure and ranking.
func TestIncrementalSnapshotRoundTrip(t *testing.T) {
	c, r := buildTrainedRepo(t, "inc-snap")
	// Churn and retrain incrementally, then churn again so the memtable and
	// tombstone state are both non-trivial at snapshot time.
	for i := 0; i < 5; i++ {
		up, err := c.PrepareUpdate(testObject(1, 100+i), testDataKey(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Remove("obj-c0-0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if got := r.LastTrain().Mode; got != "incremental" {
		t.Fatalf("retrain mode = %q, want incremental", got)
	}
	if err := r.Update(textUpdate(t, c, "tail-1", 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("obj-c2-1"); err != nil {
		t.Fatal(err)
	}

	query := testObject(1, 77)
	before := searchIDs(t, c, r, query, 6)
	statsBefore := r.IndexStats()

	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRepository(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.IsTrained() {
		t.Fatal("restored repository lost trained state")
	}
	if restored.Size() != r.Size() {
		t.Fatalf("restored %d objects, want %d", restored.Size(), r.Size())
	}
	after := searchIDs(t, c, restored, query, 6)
	if len(before) != len(after) {
		t.Fatalf("result counts differ: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("rank %d: %s != %s (restore must preserve segmented ranking)", i, after[i], before[i])
		}
	}
	// The segment structure itself round-trips (live docs per modality; the
	// dead-posting count may shrink since only live postings are serialized).
	statsAfter := restored.IndexStats()
	for mod, sb := range statsBefore {
		sa := statsAfter[mod]
		if sa.LiveDocs != sb.LiveDocs {
			t.Errorf("%s: restored %d live docs, want %d", mod, sa.LiveDocs, sb.LiveDocs)
		}
		if sb.SealedSegments > 0 && sa.SealedSegments == 0 {
			t.Errorf("%s: segmented layout collapsed on restore (%+v -> %+v)", mod, sb, sa)
		}
	}
	// The restored repository keeps working incrementally.
	if err := restored.Update(textUpdate(t, c, "post-restore", 3)); err != nil {
		t.Fatal(err)
	}
	if err := restored.Train(); err != nil {
		t.Fatal(err)
	}
	if got := restored.LastTrain().Mode; got != "incremental" {
		t.Errorf("post-restore train mode = %q, want incremental", got)
	}
}

// TestCompactionMergesSegmentsAndDropsGarbage: repeated churn+train cycles
// accumulate sealed segments and tombstones; compaction folds them into one
// segment with zero dead postings, without changing a single ranking.
func TestCompactionMergesSegmentsAndDropsGarbage(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("inc-compact", textOnlyIncrementalOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := r.Update(textUpdate(t, c, fmt.Sprintf("d-%d", i), i%5+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("d-%d", (round*4+i)%8)
			if err := r.Update(textUpdate(t, c, id, (round+i)%5+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Train(); err != nil {
			t.Fatal(err)
		}
		if got := r.LastTrain().Mode; got != "incremental" {
			t.Fatalf("round %d mode = %q", round, got)
		}
	}
	q, err := c.PrepareQuery(&Object{ID: "q", Text: "oceanwave"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	before, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CompactNow(); err != nil {
		t.Fatal(err)
	}
	stats := r.IndexStats()
	for mod, s := range stats {
		if s.SealedSegments > 1 {
			t.Errorf("%s: %d sealed segments after CompactNow, want <= 1", mod, s.SealedSegments)
		}
		if s.DeadDocs != 0 {
			t.Errorf("%s: %d dead docs after CompactNow, want 0", mod, s.DeadDocs)
		}
	}
	after, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("hit count changed across compaction: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].ObjectID != after[i].ObjectID || math.Abs(before[i].Score-after[i].Score) > 1e-9 {
			t.Fatalf("rank %d changed across compaction: %+v vs %+v", i, before[i], after[i])
		}
	}
}

// TestConcurrentSearchUpdateDuringCompaction is the -race workout for the
// segment machinery behind a live repository: a background compaction is
// provably in flight (held at its start hook) while writers churn objects
// and searchers query; after release, the final state must match a
// sequential oracle exactly.
func TestConcurrentSearchUpdateDuringCompaction(t *testing.T) {
	c := testClient(t)
	opts := textOnlyIncrementalOptions()
	opts.Incremental.MemtableCap = 8
	r, err := NewRepository("compact-stress", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := r.Update(textUpdate(t, c, fmt.Sprintf("base-%d", i), i%5+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	gate := make(chan struct{})
	var startOnce, releaseOnce sync.Once
	compactStartHook = func() {
		startOnce.Do(func() { close(started) })
		<-gate
	}
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	t.Cleanup(func() {
		release()
		compactStartHook = nil
	})

	// Writer scripts: disjoint id ranges, deterministic final state.
	const writers = 4
	const perWriter = 12
	type step struct {
		id string
		up *Update // nil means Remove
	}
	scripts := make([][]step, writers)
	final := map[string]*Update{}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := fmt.Sprintf("cw-%d-%d", w, i)
			up := textUpdate(t, c, id, (w+i)%5+1)
			if i%3 == 2 { // insert then remove
				scripts[w] = append(scripts[w], step{id: id, up: up}, step{id: id})
			} else {
				scripts[w] = append(scripts[w], step{id: id, up: up})
				final[id] = up
			}
		}
	}
	searchQ, err := c.PrepareQuery(&Object{ID: "sq", Text: "oceanwave"}, 10)
	if err != nil {
		t.Fatal(err)
	}

	var writerWg, searchWg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 2; s++ {
		searchWg.Add(1)
		go func() {
			defer searchWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Search(searchQ); err != nil {
					t.Errorf("concurrent search: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(script []step) {
			defer writerWg.Done()
			for _, s := range script {
				if s.up == nil {
					if err := r.Remove(s.id); err != nil {
						t.Errorf("remove %s: %v", s.id, err)
						return
					}
				} else if err := r.Update(s.up); err != nil {
					t.Errorf("update %s: %v", s.id, err)
					return
				}
			}
		}(scripts[w])
	}
	// The tiny memtable guarantees seals during the churn; the first seal
	// fires the compactor, which parks at the hook with traffic still live.
	<-started
	writerWg.Wait()
	release()
	close(stop)
	searchWg.Wait()
	// Fold everything down deterministically, then compare to the oracle.
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if err := r.CompactNow(); err != nil {
		t.Fatal(err)
	}

	oracle, err := NewRepository("compact-oracle", textOnlyIncrementalOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := oracle.Update(textUpdate(t, c, fmt.Sprintf("base-%d", i), i%5+1)); err != nil {
			t.Fatal(err)
		}
	}
	for id, up := range final {
		if err := oracle.Update(up); err != nil {
			t.Fatalf("oracle update %s: %v", id, err)
		}
	}
	if err := oracle.Train(); err != nil {
		t.Fatal(err)
	}
	q, err := c.PrepareQuery(&Object{ID: "oq", Text: "oceanwave"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("hits = %d, oracle = %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ObjectID != want[i].ObjectID {
			t.Fatalf("hit %d: got %s, oracle %s", i, got[i].ObjectID, want[i].ObjectID)
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("hit %d (%s): score %g, oracle %g", i, got[i].ObjectID, got[i].Score, want[i].Score)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
