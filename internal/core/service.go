package core

import (
	"errors"
	"fmt"
	"sync"

	"mie/internal/obs"
)

// Service errors.
var (
	// ErrRepoExists is returned when creating a repository whose id is taken.
	ErrRepoExists = errors.New("core: repository already exists")
	// ErrRepoNotFound is returned for operations on unknown repositories.
	ErrRepoNotFound = errors.New("core: repository not found")
)

// Service is the MIE server component "as a service": it hosts many
// independent repositories, each shared by its own set of authorized users
// (Figure 1). It is the object cmd/mie-server exposes over the network.
type Service struct {
	mu        sync.RWMutex
	repos     map[string]*Repository
	repoGauge *obs.Gauge
	// durable (nil for in-memory services) is the snapshot+WAL persistence
	// configuration installed by LoadService.
	durable *durability
}

// NewService creates an empty service.
func NewService() *Service {
	return &Service{
		repos:     make(map[string]*Repository),
		repoGauge: obs.Default().Gauge("service_repositories"),
	}
}

// CreateRepository initializes a new repository (Algorithm 5's cloud half).
// On a durable service the repository is durable from birth: its write-ahead
// log is opened and an initial snapshot written before the create is
// acknowledged, so a crash at any later point can restore it.
func (s *Service) CreateRepository(id string, opts RepositoryOptions) (*Repository, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.repos[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrRepoExists, id)
	}
	r, err := NewRepository(id, opts)
	if err != nil {
		return nil, err
	}
	if s.durable != nil {
		if err := s.durable.initRepo(r); err != nil {
			_ = r.Close()
			return nil, err
		}
	}
	s.repos[id] = r
	s.repoGauge.Set(int64(len(s.repos)))
	return r, nil
}

// Repository returns the engine for a repository id.
func (s *Service) Repository(id string) (*Repository, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrRepoNotFound, id)
	}
	return r, nil
}

// Repositories lists hosted repository ids.
func (s *Service) Repositories() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.repos))
	for id := range s.repos {
		out = append(out, id)
	}
	return out
}

// LeakageSummaries returns the per-repository leakage profiles, keyed by
// repository id — the payload of the server's /debug/leakage endpoint.
func (s *Service) LeakageSummaries() map[string]LeakageSummary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]LeakageSummary, len(s.repos))
	for id, r := range s.repos {
		out[id] = r.leak.Summary()
	}
	return out
}

// DropRepository removes a repository and releases its resources. On a
// durable service its on-disk snapshot and log are deleted too — snapshot
// first, so a crash mid-drop can at worst leave an orphaned log (pruned on
// the next load), never a snapshot that would resurrect the repository.
func (s *Service) DropRepository(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.repos[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrRepoNotFound, id)
	}
	delete(s.repos, id)
	s.repoGauge.Set(int64(len(s.repos)))
	err := r.Close()
	if s.durable != nil {
		if derr := s.durable.removeRepoFiles(id); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// Close releases every hosted repository.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for id, r := range s.repos {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("close %s: %w", id, err)
		}
	}
	s.repos = make(map[string]*Repository)
	s.repoGauge.Set(0)
	return firstErr
}
