package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mie/internal/obs"
)

// Service errors.
var (
	// ErrRepoExists is returned when creating a repository whose id is taken.
	ErrRepoExists = errors.New("core: repository already exists")
	// ErrRepoNotFound is returned for operations on unknown repositories.
	ErrRepoNotFound = errors.New("core: repository not found")
)

// Service is the MIE server component "as a service": it hosts many
// independent repositories, each shared by its own set of authorized users
// (Figure 1). It is the object cmd/mie-server exposes over the network.
//
// A service knows every repository in its catalog but need not hold them
// all in memory: on a durable service opened with LazyActivation,
// repositories start cold (snapshot + WAL on disk only), are activated on
// first Acquire, and are evicted back to cold — least recently used first —
// whenever the resident footprint exceeds MemoryBudget. Construction goes
// through OpenService.
type Service struct {
	// mu guards the entry catalog.
	mu      sync.RWMutex
	entries map[string]*repoEntry

	// durable (nil for in-memory services) is the snapshot+WAL persistence
	// configuration.
	durable *durability
	// lazy defers loading discovered repositories until first touch.
	lazy bool
	// budget is the resident-bytes cap (0 = unlimited).
	budget int64
	// repoOpts overrides load-time engine knobs of restored repositories.
	repoOpts *RepositoryOptions
	// gov is the per-tenant admission governor (nil = no quotas).
	gov *TenantGovernor
	// tap (nil unless replication is enabled; set before the service serves
	// requests) observes the catalog and every repository's durable
	// mutation stream. See ReplicationTap.
	tap ReplicationTap

	// clock is the logical LRU clock; every Acquire stamps its entry.
	clock atomic.Uint64
	// evictMu single-flights eviction passes.
	evictMu sync.Mutex
	// activeMu guards active, the resident subset of entries — kept
	// separately so eviction scans cost O(active), not O(catalog).
	activeMu sync.Mutex
	active   map[*repoEntry]struct{}

	activations atomic.Uint64
	evictions   atomic.Uint64

	repoGauge    *obs.Gauge
	activeGauge  *obs.Gauge
	activationsC *obs.Counter
	evictionsC   *obs.Counter
	evictErrorsC *obs.Counter
	activationH  *obs.Histogram
}

// newServiceShell builds an empty service with its metric handles; the
// OpenService paths fill in persistence, budget and quotas.
func newServiceShell() *Service {
	reg := obs.Default()
	return &Service{
		entries:      make(map[string]*repoEntry),
		active:       make(map[*repoEntry]struct{}),
		repoGauge:    reg.Gauge("service_repositories"),
		activeGauge:  reg.Gauge("repo_active"),
		activationsC: reg.Counter("repo_activations_total"),
		evictionsC:   reg.Counter("repo_evictions_total"),
		evictErrorsC: reg.Counter("repo_eviction_errors_total"),
		activationH:  reg.Histogram("repo_activation_seconds"),
	}
}

// CreateRepository initializes a new repository (Algorithm 5's cloud half).
// On a durable service the repository is durable from birth: its write-ahead
// log is opened and an initial snapshot written before the create is
// acknowledged, so a crash at any later point can restore it.
func (s *Service) CreateRepository(id string, opts RepositoryOptions) (*Repository, error) {
	// Reserve the id first (with the creation latch held), then build the
	// repository off the catalog lock: a concurrent Acquire of the same id
	// waits on the latch instead of finding half a repository.
	e := &repoEntry{id: id, loading: make(chan struct{})}
	s.mu.Lock()
	if _, ok := s.entries[id]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrRepoExists, id)
	}
	s.entries[id] = e
	s.repoGauge.Set(int64(len(s.entries)))
	s.mu.Unlock()

	r, err := NewRepository(id, opts)
	if err == nil && s.durable != nil {
		if derr := s.durable.initRepo(r); derr != nil {
			_ = r.Close()
			err = derr
		}
	}
	e.mu.Lock()
	if err != nil {
		e.dropped = true
		ch := e.loading
		e.loading = nil
		e.mu.Unlock()
		close(ch)
		s.mu.Lock()
		delete(s.entries, id)
		s.repoGauge.Set(int64(len(s.entries)))
		s.mu.Unlock()
		return nil, err
	}
	r.setGovernor(s.gov)
	if s.tap != nil {
		r.setTap(s.tap)
	}
	e.repo = r
	e.lastUsed = s.clock.Add(1)
	ch := e.loading
	e.loading = nil
	e.mu.Unlock()
	close(ch)
	if s.tap != nil {
		s.tap.RepoCreated(id, r.Options())
	}
	s.markActive(e)
	s.maybeEvict(e)
	return r, nil
}

// Repository returns the engine for a repository id, activating it first if
// it is cold — without pinning it. Under a memory budget the engine may be
// evicted at any later point; request-scoped callers should use Acquire,
// which pins the repository for the span of the request.
func (s *Service) Repository(id string) (*Repository, error) {
	r, release, err := s.Acquire(id)
	if err != nil {
		return nil, err
	}
	release()
	return r, nil
}

// Repositories lists hosted repository ids, cold and active alike.
func (s *Service) Repositories() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.entries))
	for id := range s.entries {
		out = append(out, id)
	}
	return out
}

// LeakageSummaries returns the per-repository leakage profiles of the
// *active* repositories, keyed by repository id — the payload of the
// server's /debug/leakage endpoint. Cold repositories have no in-memory
// leakage state to report.
func (s *Service) LeakageSummaries() map[string]LeakageSummary {
	out := make(map[string]LeakageSummary)
	for _, e := range s.activeEntries() {
		e.mu.Lock()
		if e.repo != nil {
			out[e.id] = e.repo.leak.Summary()
		}
		e.mu.Unlock()
	}
	return out
}

// DropRepository removes a repository and releases its resources. On a
// durable service its on-disk snapshot and log are deleted too — snapshot
// first, so a crash mid-drop can at worst leave an orphaned log (pruned on
// the next load), never a snapshot that would resurrect the repository.
func (s *Service) DropRepository(id string) error {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrRepoNotFound, id)
	}
	delete(s.entries, id)
	s.repoGauge.Set(int64(len(s.entries)))
	s.mu.Unlock()

	// Wait out any in-flight activation, then tear down whatever is
	// resident. The dropped mark makes a racing Acquire fail instead of
	// resurrecting the repository from its (about to be deleted) files.
	e.mu.Lock()
	for e.loading != nil {
		ch := e.loading
		e.mu.Unlock()
		<-ch
		e.mu.Lock()
	}
	e.dropped = true
	var err error
	if e.repo != nil {
		s.gov.removeRepo(e.repo)
		err = e.repo.Close()
		e.repo = nil
	}
	e.mu.Unlock()
	s.markInactive(e)
	if s.durable != nil {
		if derr := s.durable.removeRepoFiles(id); derr != nil && err == nil {
			err = derr
		}
	}
	if s.tap != nil {
		s.tap.RepoDropped(id)
	}
	return err
}

// Close releases every hosted repository.
func (s *Service) Close() error {
	s.mu.Lock()
	entries := s.entries
	s.entries = make(map[string]*repoEntry)
	s.repoGauge.Set(0)
	s.mu.Unlock()
	var firstErr error
	for id, e := range entries {
		e.mu.Lock()
		for e.loading != nil {
			ch := e.loading
			e.mu.Unlock()
			<-ch
			e.mu.Lock()
		}
		e.dropped = true
		if e.repo != nil {
			if err := e.repo.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("close %s: %w", id, err)
			}
			e.repo = nil
		}
		e.mu.Unlock()
		s.markInactive(e)
	}
	return firstErr
}
