package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"mie/internal/ann"
	"mie/internal/cluster"
	"mie/internal/dpe"
	"mie/internal/fusion"
	"mie/internal/index"
	"mie/internal/obs"
	"mie/internal/store"
	"mie/internal/vec"
	"mie/internal/wal"
)

// repoMetrics holds a repository's observability handles. Phase timings
// (train, index build, per-modality search, fusion) land in the process
// registry as phase_seconds{phase=repo/...} histograms — the cloud-side half
// of the paper's latency breakdowns — the gauges track repository and
// codebook sizes, and the leak* counters surface the paper's leakage profile
// (ID(d) access pattern, ID(w) search-pattern repeats, freq(w) update
// leakage) as live per-repository telemetry.
type repoMetrics struct {
	reg             *obs.Registry
	objects         *obs.Gauge
	vocabWords      *obs.Gauge
	audioVocabWords *obs.Gauge

	leakAccessReveals  *obs.Counter
	leakSearchRepeats  *obs.Counter
	leakUpdateTokens   *obs.Counter
	leakSearchDistinct *obs.Gauge
	leakUpdateDistinct *obs.Gauge

	// Segment/compaction telemetry: sealed-segment and memtable sizes across
	// the per-modality indexes, background-compaction outcomes, and how every
	// Train resolved (full rebuild vs incremental refinement vs forced back
	// to full by codebook drift; last drift in permille of bits shifted).
	indexSegments    *obs.Gauge
	memtableDocs     *obs.Gauge
	deadDocs         *obs.Gauge
	compactions      *obs.Counter
	compactErrors    *obs.Counter
	trainFull        *obs.Counter
	trainIncremental *obs.Counter
	driftFallbacks   *obs.Counter
	driftPermille    *obs.Gauge

	// ANN telemetry: bucket probes and candidates scored by approximate
	// dense searches, and the live code count across the candidate indexes.
	annProbes     *obs.Counter
	annCandidates *obs.Counter
	annCodes      *obs.Gauge
}

func newRepoMetrics(reg *obs.Registry, id string) *repoMetrics {
	return &repoMetrics{
		reg:             reg,
		objects:         reg.Gauge(obs.L("repo_objects", "repo", id)),
		vocabWords:      reg.Gauge(obs.L("repo_vocab_words", "repo", id)),
		audioVocabWords: reg.Gauge(obs.L("repo_audio_vocab_words", "repo", id)),

		leakAccessReveals:  reg.Counter(obs.L("repo_leak_access_reveals_total", "repo", id)),
		leakSearchRepeats:  reg.Counter(obs.L("repo_leak_search_repeats_total", "repo", id)),
		leakUpdateTokens:   reg.Counter(obs.L("repo_leak_update_token_mass_total", "repo", id)),
		leakSearchDistinct: reg.Gauge(obs.L("repo_leak_distinct_search_tokens", "repo", id)),
		leakUpdateDistinct: reg.Gauge(obs.L("repo_leak_distinct_update_tokens", "repo", id)),

		indexSegments:    reg.Gauge(obs.L("repo_index_segments", "repo", id)),
		memtableDocs:     reg.Gauge(obs.L("repo_index_memtable_docs", "repo", id)),
		deadDocs:         reg.Gauge(obs.L("repo_index_dead_docs", "repo", id)),
		compactions:      reg.Counter(obs.L("repo_index_compactions_total", "repo", id)),
		compactErrors:    reg.Counter(obs.L("repo_index_compact_errors_total", "repo", id)),
		trainFull:        reg.Counter(obs.L("repo_train_full_total", "repo", id)),
		trainIncremental: reg.Counter(obs.L("repo_train_incremental_total", "repo", id)),
		driftFallbacks:   reg.Counter(obs.L("repo_train_drift_fallback_total", "repo", id)),
		driftPermille:    reg.Gauge(obs.L("repo_train_drift_permille", "repo", id)),

		annProbes:     reg.Counter(obs.L("repo_ann_probes_total", "repo", id)),
		annCandidates: reg.Counter(obs.L("repo_ann_candidates_total", "repo", id)),
		annCodes:      reg.Gauge(obs.L("repo_ann_codes", "repo", id)),
	}
}

// Common repository errors.
var (
	// ErrNotTrained is never returned by Search (which falls back to linear
	// scan) but is exposed for callers that want to require an index.
	ErrNotTrained = errors.New("core: repository not trained")
	// ErrNoObjects is returned by Train on an empty repository when the
	// image modality needs a codebook.
	ErrNoObjects = errors.New("core: nothing to train on")
	// ErrUnknownObject is returned by Get for absent ids.
	ErrUnknownObject = errors.New("core: unknown object")
)

// RepositoryOptions configures the server-side engine of one repository.
type RepositoryOptions struct {
	// Modalities the repository accepts; empty means both.
	Modalities []Modality
	// Vocab configures visual-word training: a flat k-means selects
	// Vocab.Words visual words (paper: 1000) and a lookup tree (paper:
	// branch 10, height 3) is built over them. Zero values take the
	// paper's shape.
	Vocab cluster.VocabParams
	// Index configures the per-modality inverted indexes (champion lists,
	// spill directory).
	Index index.Options
	// TrainingSampleCap bounds how many encodings feed k-means; 0 means
	// 20000. Training cost is the cloud's to pay, but tests want it tunable.
	TrainingSampleCap int
	// FusionCandidates is the per-modality candidate depth fed to rank
	// fusion before truncating to k; 0 means 10*k.
	FusionCandidates int
	// StoreShards is the shard count of the object store; 0 means
	// store.DefaultShards.
	StoreShards int
	// Incremental tunes incremental training and the segmented index.
	Incremental IncrementalOptions
	// ANN tunes the approximate dense-search candidate indexes.
	ANN ANNOptions
}

// ANNOptions governs the multi-probe LSH candidate indexes that make the
// dense linear-scan fallback and large-codebook quantization sublinear. One
// candidate index per dense modality tracks every stored encoding; linear
// searches route through it once the live code count crosses MinCorpus, and
// codebook quantization routes through a word index once the vocabulary
// crosses MinWords. Below the thresholds every path stays exact, so small
// repositories (and existing tests and golden fixtures) are unaffected.
type ANNOptions struct {
	// Disable turns approximate candidate generation off entirely; every
	// dense search and quantization stays exact.
	Disable bool
	// Tables is L, the number of independent hash tables; 0 means 8.
	Tables int
	// Bits is K, the sampled bit positions per table; 0 means 16.
	Bits int
	// Probes is the per-table bucket-probe budget (capped at 2^Bits, where
	// probing is exhaustive and ANN rankings match the exact scan
	// bit-for-bit); 0 means 12.
	Probes int
	// MinCorpus is the live encoding count at which dense linear searches
	// route through the candidate index; 0 means 4096.
	MinCorpus int
	// MinWords is the codebook size at which quantization routes through a
	// word index instead of the vocabulary's exact lookup; 0 means 4096.
	MinWords int
	// Seed drives the per-table bit sampling; 0 means 1.
	Seed int64
}

// IncrementalOptions governs the incremental train/index pipeline: how large
// the mutable memtable segment may grow, when background compaction merges
// sealed segments, and how much codebook drift a warm-started refinement may
// accumulate before Train falls back to a full re-cluster + index rebuild.
type IncrementalOptions struct {
	// Disable forces every Train through the full rebuild path (the
	// pre-incremental behavior). The segmented index layout is kept.
	Disable bool
	// DriftThreshold is the normalized mean centroid Hamming shift above
	// which a refined codebook is rejected and Train re-clusters from
	// scratch. 0 means 0.15; negative disables the check.
	DriftThreshold float64
	// ReassignThreshold is the fraction of delta samples whose nearest word
	// changed during refinement above which Train re-clusters from scratch.
	// 0 means 0.5; negative disables the check.
	ReassignThreshold float64
	// MemtableCap is the per-index memtable size at which it auto-seals into
	// an immutable segment; 0 means index.DefaultMemtableCap.
	MemtableCap int
	// CompactSegments is the sealed-segment count that triggers background
	// compaction; 0 means index.DefaultCompactSegments.
	CompactSegments int
}

func (o *RepositoryOptions) setDefaults() {
	if len(o.Modalities) == 0 {
		o.Modalities = []Modality{ModalityText, ModalityImage, ModalityAudio}
	}
	if o.Vocab.Words == 0 {
		o.Vocab.Words = 1000
	}
	if o.Vocab.Tree.Branch == 0 {
		o.Vocab.Tree.Branch = 10
	}
	if o.Vocab.Tree.Height == 0 {
		o.Vocab.Tree.Height = 3
	}
	if o.TrainingSampleCap == 0 {
		o.TrainingSampleCap = 20000
	}
	if o.Incremental.DriftThreshold == 0 {
		o.Incremental.DriftThreshold = 0.15
	}
	if o.Incremental.ReassignThreshold == 0 {
		o.Incremental.ReassignThreshold = 0.5
	}
	if o.Incremental.MemtableCap == 0 {
		o.Incremental.MemtableCap = index.DefaultMemtableCap
	}
	if o.Incremental.CompactSegments == 0 {
		o.Incremental.CompactSegments = index.DefaultCompactSegments
	}
	if o.ANN.Tables == 0 {
		o.ANN.Tables = 8
	}
	if o.ANN.Bits == 0 {
		o.ANN.Bits = 16
	}
	if o.ANN.Probes == 0 {
		o.ANN.Probes = 12
	}
	if o.ANN.MinCorpus == 0 {
		o.ANN.MinCorpus = 4096
	}
	if o.ANN.MinWords == 0 {
		o.ANN.MinWords = 4096
	}
	if o.ANN.Seed == 0 {
		o.ANN.Seed = 1
	}
}

// WithDefaults returns a copy of o with zero fields replaced by the values
// NewRepository would apply — the normalized form callers compare against
// Repository.Options to detect a configuration mismatch on re-open.
func (o RepositoryOptions) WithDefaults() RepositoryOptions {
	o.setDefaults()
	return o
}

// SearchHit is one ranked result returned to the querying user: the
// encrypted object, its deterministic id and owner (the metadata pair of
// §III-A) and the fused relevance score.
type SearchHit struct {
	ObjectID   string
	Owner      string
	Score      float64
	Ciphertext []byte
}

// storedObject is the server-side record of one data object. It is
// immutable once stored: Update replaces the whole record, so readers may
// hold one without locking.
type storedObject struct {
	owner      string
	ciphertext []byte
	textTokens map[dpe.Token]uint64
	imageEncs  []vec.BitVec
	audioEncs  []vec.BitVec
}

// repoState is one epoch of derived state: the engine set (codebooks
// included) and the per-engine inverted indexes built by the last Train.
// States are immutable; Train builds the next one off-lock and installs it
// with a single atomic pointer swap, so readers never block on training.
type repoState struct {
	epoch   uint64
	trained bool
	// engines is the per-modality retrieval logic, in fusion order
	// (text, image, audio).
	engines []ModalityEngine
	// indexes is parallel to engines; nil before the first Train. An
	// incremental Train carries these pointers forward into the next epoch
	// (only the engines change), so retiring an epoch must only close its
	// indexes when the successor actually replaced them.
	indexes []*index.Segmented
	// spillDirs is parallel to indexes: the per-epoch spill directory of
	// each index ("" when spilling is off), removed when the epoch retires.
	spillDirs []string
}

// changeRec is one generation-stamped entry of the train-time changelog.
type changeRec struct {
	// epoch stamps the generation the change was applied under.
	epoch  uint64
	remove bool
	id     string
	obj    *storedObject // nil for removes
}

// changelog captures writes that land while a Train is building the next
// epoch off-lock; they are replayed against the fresh indexes just before
// the swap so the new epoch reflects every write the old one served.
type changelog struct {
	epoch uint64 // the epoch being built
	recs  []changeRec
}

// Repository is the untrusted server-side engine for one shared repository:
// it stores ciphertexts and DPE encodings, trains the visual-word codebook,
// maintains one inverted index per modality, and answers ranked multimodal
// queries. All methods are safe for concurrent use by multiple users, which
// is the multi-writer capability Figure 4 exercises.
//
// The engine is layered: a sharded object store (internal/store) underneath,
// one ModalityEngine per media type above it, and an epoch-swapped index set
// on top. Reads (Get/Search) take no repository-wide lock — they load the
// current epoch atomically and go through the store's shard locks only.
// Train never blocks them: it snapshots the store, builds codebooks and
// fresh indexes off-lock, replays the concurrent-write changelog, and swaps
// the new epoch in atomically.
type Repository struct {
	id   string
	opts RepositoryOptions
	met  *repoMetrics
	leak *Leakage

	// resident approximates the repository's heap footprint — ciphertexts,
	// encodings and a per-object indexing overhead — maintained
	// incrementally by Update/Remove and recomputed at snapshot load. The
	// service lifecycle manager sums it across active repositories against
	// the configured MemoryBudget.
	resident atomic.Int64
	// gov (nil without quotas; written under writeMu before the repository
	// serves requests) charges per-tenant footprint to the owner of every
	// mutation and rejects over-quota updates before they reach the WAL.
	gov *TenantGovernor

	// objects is the storage layer: ciphertext + encodings per object id.
	objects store.Store[*storedObject]

	// ann holds the per-dense-modality candidate indexes (nil when disabled
	// or no dense modality is enabled). Assigned once at construction and
	// never replaced; the indexes are internally locked, so searches probe
	// them lock-free while mutators maintain them under writeMu.
	ann *annSet

	// state is the current epoch (engines + indexes); swapped by Train.
	state atomic.Pointer[repoState]

	// writeMu serializes mutators (Update/Remove), index maintenance and
	// epoch installs with each other. Readers never take it.
	writeMu sync.Mutex
	// tap (nil unless replication is enabled, guarded by writeMu like gov)
	// observes every durably logged mutation and epoch install.
	tap ReplicationTap
	// wal (nil for non-durable repositories, guarded by writeMu) is the
	// repository's write-ahead log: every mutation is appended before it is
	// applied, so an acknowledged write is replayable after a crash.
	wal *wal.Log
	// changelog is non-nil while a Train is in flight (guarded by writeMu).
	changelog *changelog
	// deltaIDs (guarded by writeMu) accumulates the object ids touched by
	// Update/Remove since the last Train install — the changelog the
	// incremental train path refines codebooks from and re-indexes.
	deltaIDs map[string]struct{}
	// trainMu serializes Train calls; searches and writes proceed under it.
	trainMu sync.Mutex
	// jobs tracks asynchronous training runs (TrainStart/TrainWait).
	jobs jobTable
	// lastTrain records how the most recent Train resolved (for telemetry
	// and the incremental-vs-rebuild experiment).
	lastTrain atomic.Pointer[TrainInfo]

	// Background-compaction control: compacting is a single-flight latch,
	// compactMu guards the remaining fields against the WaitGroup add/wait
	// race on Close, and compactWG tracks the in-flight compactor goroutine.
	// A request arriving while a pass is in flight is not dropped: it sets
	// compactPending (carrying the start hook active at request time) and the
	// compactor runs one more pass before exiting.
	compacting     atomic.Bool
	compactMu      sync.Mutex
	compactClosed  bool
	compactPending bool
	pendingHook    func()
	compactWG      sync.WaitGroup
}

// TrainInfo describes how one Train call resolved.
type TrainInfo struct {
	// Epoch is the generation the train installed.
	Epoch uint64
	// Mode is "full" (re-cluster + index rebuild) or "incremental"
	// (warm-started codebook refinement over the delta, indexes carried).
	Mode string
	// DriftFallback is true when an incremental attempt measured drift over
	// threshold and the run was forced through the full path.
	DriftFallback bool
	// Drift is the refinement drift report (incremental attempts only).
	Drift cluster.DriftReport
	// DeltaDocs is the number of changed objects the incremental path
	// refined from and re-indexed.
	DeltaDocs int
}

// LastTrain returns how the most recent Train resolved (nil before any).
func (r *Repository) LastTrain() *TrainInfo { return r.lastTrain.Load() }

// Test hooks (nil outside tests): updateIndexHook injects an index failure
// for one modality inside Update's index step, so the rollback path is
// testable; trainInstallHook runs off-lock after the next epoch's indexes
// are built, just before the install, so tests can hold a Train in flight
// deterministically.
var (
	updateIndexHook  func(Modality) error
	trainInstallHook func()
	searchStartHook  func()
	// compactStartHook runs inside the background compactor goroutine before
	// it touches any index, so tests can freeze a compaction mid-flight (the
	// crash-matrix case) or serialize against it.
	compactStartHook func()
)

// SetTrainInstallHookForTest installs (or, with nil, clears) the off-lock
// pre-install training hook. Test support for packages outside core — e.g.
// the server tests hold a Train RPC in flight with it to prove searches
// keep being served over the wire. Never set in production code.
func SetTrainInstallHookForTest(f func()) { trainInstallHook = f }

// SetSearchStartHookForTest installs (or, with nil, clears) a hook that runs
// at the top of every Search. Server tests use it to hold a Search RPC in
// flight so cancellation mid-search is observable deterministically. Never
// set in production code.
func SetSearchStartHookForTest(f func()) { searchStartHook = f }

// NewRepository creates the server-side representation of a repository
// (CLOUD.CreateRepository of Algorithm 5).
func NewRepository(id string, opts RepositoryOptions) (*Repository, error) {
	if id == "" {
		return nil, errors.New("core: repository needs an id")
	}
	opts.setDefaults()
	r := &Repository{
		id:       id,
		opts:     opts,
		met:      newRepoMetrics(obs.Default(), id),
		objects:  store.New[*storedObject](opts.StoreShards),
		leak:     newLeakage(),
		deltaIDs: make(map[string]struct{}),
	}
	engines := newEngines(opts)
	r.state.Store(&repoState{engines: engines})
	r.ann = newANNSet(engines, opts.ANN)
	return r, nil
}

// annSet is one candidate index per engine slot (nil for engines whose
// linear fallback cannot route through ANN, i.e. sparse modalities).
type annSet struct {
	idx []*ann.Index
}

func newANNSet(engines []ModalityEngine, o ANNOptions) *annSet {
	if o.Disable {
		return nil
	}
	s := &annSet{idx: make([]*ann.Index, len(engines))}
	any := false
	for i, eng := range engines {
		if _, ok := eng.(annSearcher); ok {
			s.idx[i] = ann.New(ann.Options{Tables: o.Tables, Bits: o.Bits, Probes: o.Probes, Seed: o.Seed})
			any = true
		}
	}
	if !any {
		return nil
	}
	return s
}

// annSearcher is the optional engine capability searchModality routes dense
// linear scans through once the candidate index covers enough of the corpus.
type annSearcher interface {
	annSearch(q *Query, idx *ann.Index, depth int) ([]index.Result, ann.ProbeStats)
}

// maintainANN mirrors one object mutation into the candidate indexes: obj's
// encodings replace the previous set under its id, nil obj is a removal.
// Callers hold writeMu. An encoding-length mismatch means the corpus is not
// ANN-indexable; that modality's index disables itself and searches fall
// back to the exact scan for good.
func (r *Repository) maintainANN(st *repoState, id string, obj *storedObject) {
	if r.ann == nil {
		return
	}
	for i, a := range r.ann.idx {
		if a == nil {
			continue
		}
		if obj == nil {
			a.Remove(id)
			continue
		}
		if err := a.AddAll(id, st.engines[i].TrainingSample(obj)); err != nil {
			a.Disable()
		}
	}
	r.updateANNGauge()
}

// refreshANN compacts the candidate indexes — always after a full Train,
// and past a tombstone threshold after an incremental one, mirroring the
// segmented indexes' compaction policy.
func (r *Repository) refreshANN(force bool) {
	if r.ann == nil {
		return
	}
	for _, a := range r.ann.idx {
		if a == nil {
			continue
		}
		if force || a.DeadFraction() >= 0.25 {
			a.Compact()
		}
	}
	r.updateANNGauge()
}

// rebuildANN reconstructs the candidate indexes from the store after a
// snapshot restore, in sorted id order. Construction is seeded, so a rebuilt
// index probes identically to the one the snapshotted repository held.
func (r *Repository) rebuildANN() {
	if r.ann == nil {
		return
	}
	st := r.state.Load()
	snap := r.objects.Items()
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r.maintainANN(st, id, snap[id])
	}
}

func (r *Repository) updateANNGauge() {
	var live int
	for _, a := range r.ann.idx {
		if a != nil {
			live += a.Live()
		}
	}
	r.met.annCodes.Set(int64(live))
}

// setGovernor hands the repository its service's admission governor.
// Called before the repository serves requests (creation, activation,
// recovery); mutators read it under writeMu.
func (r *Repository) setGovernor(g *TenantGovernor) {
	r.writeMu.Lock()
	r.gov = g
	r.writeMu.Unlock()
}

// repoBaseBytes approximates the fixed overhead of one resident repository:
// metric handles, engines, empty indexes and store shards.
const repoBaseBytes = 64 << 10

// ResidentBytes approximates the repository's in-memory footprint. It is
// deliberately an estimate — good to sizing order, cheap to read — which is
// all LRU eviction under a memory budget needs.
func (r *Repository) ResidentBytes() int64 { return repoBaseBytes + r.resident.Load() }

// approxObjectBytes estimates the resident cost of one stored object:
// ciphertext, text tokens (32-byte tokens plus map and posting overhead),
// and packed encoding words counted twice — once stored, once mirrored into
// candidate indexes and postings.
func approxObjectBytes(obj *storedObject) int64 {
	n := int64(len(obj.ciphertext)) + 96
	n += int64(len(obj.textTokens)) * 80
	for _, v := range obj.imageEncs {
		n += int64((v.Len()+63)/64)*16 + 48
	}
	for _, v := range obj.audioEncs {
		n += int64((v.Len()+63)/64)*16 + 48
	}
	return n
}

// ID returns the repository's deterministic identifier (setup leakage).
func (r *Repository) ID() string { return r.id }

// Options returns the engine parameters the repository was created with
// (defaults applied). Callers re-opening an existing repository compare
// against it to detect a configuration mismatch.
func (r *Repository) Options() RepositoryOptions { return r.opts }

// Leakage exposes the record of information patterns the server observed;
// tests assert against it and the bench harness reports it.
func (r *Repository) Leakage() *Leakage { return r.leak }

// Size returns the number of stored objects.
func (r *Repository) Size() int { return r.objects.Len() }

// IsTrained reports whether Train has completed.
func (r *Repository) IsTrained() bool { return r.state.Load().trained }

// VocabularySize returns the number of visual words after training (0
// before).
func (r *Repository) VocabularySize() int { return r.codebookSize(ModalityImage) }

// AudioVocabularySize returns the number of audio words after training.
func (r *Repository) AudioVocabularySize() int { return r.codebookSize(ModalityAudio) }

func (r *Repository) codebookSize(m Modality) int {
	for _, eng := range r.state.Load().engines {
		if eng.Modality() == m {
			return eng.CodebookSize()
		}
	}
	return 0
}

// Update stores (or replaces) an encrypted object and its encodings
// (CLOUD.Update, Algorithm 7). If the repository is trained the object is
// indexed immediately; otherwise indexing happens at Train time. Update is
// atomic: either the object is stored and fully indexed across every
// modality, or (on an index error) the previous state — prior object and
// postings, or absence — is restored and the error returned.
func (r *Repository) Update(up *Update) error {
	return r.UpdateContext(context.Background(), up)
}

// UpdateContext is Update carrying the caller's context, so the update's
// phase spans (index, wal_append) join the request's distributed trace.
func (r *Repository) UpdateContext(ctx context.Context, up *Update) error {
	if up.ObjectID == "" {
		return errors.New("core: update needs an object id")
	}
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/update")
	defer sp.End()
	obj := &storedObject{
		owner:      up.Owner,
		ciphertext: up.Ciphertext,
		textTokens: up.TextTokens,
		imageEncs:  up.ImageEncodings,
		audioEncs:  up.AudioEncodings,
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	newBytes := approxObjectBytes(obj)
	var prevBytes int64
	var prevOwner string
	prevObj, hadPrev := r.objects.Get(up.ObjectID)
	if hadPrev {
		prevBytes = approxObjectBytes(prevObj)
		prevOwner = prevObj.owner
	}
	// Admission: the owner's quota is checked-and-charged before the WAL
	// sees the mutation, so a rejected update leaves no trace anywhere.
	if err := r.gov.chargeUpdate(up.Owner, newBytes, prevOwner, prevBytes, hadPrev); err != nil {
		return err
	}
	// Write-ahead: the mutation reaches the log before it touches memory,
	// so success is only ever reported for a replayable write.
	if err := r.walAppend(sp, &walRecord{ObjectID: up.ObjectID, Update: up}); err != nil {
		r.gov.undoUpdate(up.Owner, newBytes, prevOwner, prevBytes, hadPrev)
		return err
	}
	st := r.state.Load()
	doc := index.DocID(up.ObjectID)
	prev, replaced := r.objects.Put(up.ObjectID, obj)
	if replaced {
		for _, idx := range st.indexes {
			if idx != nil {
				idx.Remove(doc)
			}
		}
	}
	if st.trained {
		isp := sp.Child("index")
		err := indexObject(st, up.ObjectID, obj)
		isp.End()
		if err != nil {
			// Roll back: indexObject already unwound its partial postings;
			// restore the previous object and its postings, or erase the
			// insert entirely, so no stored-but-partially-indexed object
			// survives.
			if replaced {
				r.objects.Put(up.ObjectID, prev)
				_ = indexObject(st, up.ObjectID, prev) // best-effort reinstate
			} else {
				r.objects.Delete(up.ObjectID)
			}
			// The mutation is already in the log but was rolled back in
			// memory; log the inverse so replay converges to the same
			// rolled-back state.
			r.walCompensate(up.ObjectID, prev, replaced)
			r.gov.undoUpdate(up.Owner, newBytes, prevOwner, prevBytes, hadPrev)
			return err
		}
	}
	if replaced {
		r.resident.Add(newBytes - prevBytes)
	} else {
		r.resident.Add(newBytes)
	}
	r.maintainANN(st, up.ObjectID, obj)
	if cl := r.changelog; cl != nil {
		cl.recs = append(cl.recs, changeRec{epoch: st.epoch, id: up.ObjectID, obj: obj})
	}
	r.deltaIDs[up.ObjectID] = struct{}{}
	r.met.objects.Set(int64(r.objects.Len()))
	r.met.leakUpdateTokens.Add(int64(r.leak.recordUpdate(up)))
	r.met.leakUpdateDistinct.Set(int64(r.leak.DistinctUpdateTokens()))
	return nil
}

// indexObject inserts one object into the epoch's per-modality indexes.
// On failure it unwinds the postings already added for earlier modalities,
// so a partially indexed object never escapes.
func indexObject(st *repoState, id string, obj *storedObject) error {
	doc := index.DocID(id)
	for i, eng := range st.engines {
		idx := st.indexes[i]
		if idx == nil {
			continue
		}
		terms := eng.ExtractTerms(obj)
		if len(terms) == 0 {
			continue
		}
		var err error
		if updateIndexHook != nil {
			err = updateIndexHook(eng.Modality())
		}
		if err == nil {
			err = idx.Add(doc, terms)
		}
		if err != nil {
			for j := 0; j < i; j++ {
				if st.indexes[j] != nil {
					st.indexes[j].Remove(doc)
				}
			}
			return err
		}
	}
	return nil
}

// Remove deletes an object and its index entries (CLOUD.Remove,
// Algorithm 8). Unknown ids are a no-op. On a durable repository the
// removal is logged before it is applied; a WAL error leaves the object in
// place and is returned.
func (r *Repository) Remove(objectID string) error {
	return r.RemoveContext(context.Background(), objectID)
}

// RemoveContext is Remove carrying the caller's context for tracing.
func (r *Repository) RemoveContext(ctx context.Context, objectID string) error {
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/remove")
	defer sp.End()
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	st := r.state.Load()
	if _, exists := r.objects.Get(objectID); exists {
		if err := r.walAppend(sp, &walRecord{Remove: true, ObjectID: objectID}); err != nil {
			return err
		}
	}
	if prev, existed := r.objects.Delete(objectID); existed {
		doc := index.DocID(objectID)
		for _, idx := range st.indexes {
			if idx != nil {
				idx.Remove(doc)
			}
		}
		r.maintainANN(st, objectID, nil)
		r.deltaIDs[objectID] = struct{}{}
		bytes := approxObjectBytes(prev)
		r.resident.Add(-bytes)
		r.gov.creditRemove(prev.owner, bytes)
	}
	if cl := r.changelog; cl != nil {
		cl.recs = append(cl.recs, changeRec{epoch: st.epoch, remove: true, id: objectID})
	}
	r.met.objects.Set(int64(r.objects.Len()))
	r.leak.recordRemove(objectID)
	return nil
}

// walAppend logs one mutation if the repository is durable. Callers hold
// writeMu. sp (optional) receives a wal_append child span.
func (r *Repository) walAppend(sp *obs.Span, rec *walRecord) error {
	if r.wal == nil {
		return nil
	}
	payload, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if sp != nil {
		wsp := sp.Child("wal_append")
		defer wsp.End()
	}
	if err := r.wal.Append(payload); err != nil {
		return fmt.Errorf("core: wal append for %s: %w", r.id, err)
	}
	if r.tap != nil {
		r.tap.MutationLogged(r.id, payload)
	}
	return nil
}

// walCompensate logs the inverse of a mutation that was appended but then
// rolled back in memory: the previous object (a replace) or a removal (an
// insert). Best effort — if even the compensation cannot be logged, replay
// may resurrect the rolled-back write, which the caller was told failed;
// the log is by then poisoned or the disk gone, so a louder failure is
// already on its way.
func (r *Repository) walCompensate(id string, prev *storedObject, replaced bool) {
	if r.wal == nil {
		return
	}
	rec := &walRecord{Remove: true, ObjectID: id}
	if replaced {
		rec = &walRecord{ObjectID: id, Update: updateFromStored(id, prev)}
	}
	if payload, err := encodeWALRecord(rec); err == nil {
		if err := r.wal.Append(payload); err == nil && r.tap != nil {
			// Followers replay the compensation too, converging on the same
			// rolled-back state the leader settled on.
			r.tap.MutationLogged(r.id, payload)
		}
	}
}

// updateFromStored reconstructs the Update that produced a stored object,
// for compensation records.
func updateFromStored(id string, obj *storedObject) *Update {
	return &Update{
		ObjectID:       id,
		Owner:          obj.owner,
		Ciphertext:     obj.ciphertext,
		TextTokens:     obj.textTokens,
		ImageEncodings: obj.imageEncs,
		AudioEncodings: obj.audioEncs,
	}
}

// attachWAL hands the repository its write-ahead log. Called once, after
// recovery replay, so replayed records are not re-appended.
func (r *Repository) attachWAL(l *wal.Log) {
	r.writeMu.Lock()
	r.wal = l
	r.writeMu.Unlock()
}

// Get returns the stored ciphertext and owner of an object (the read path
// of the system model). Lock-free: it goes straight to the store.
func (r *Repository) Get(objectID string) (ciphertext []byte, owner string, err error) {
	return r.GetContext(context.Background(), objectID)
}

// GetContext is Get carrying the caller's context for tracing.
func (r *Repository) GetContext(ctx context.Context, objectID string) (ciphertext []byte, owner string, err error) {
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/get")
	defer sp.End()
	obj, ok := r.objects.Get(objectID)
	if !ok {
		err = fmt.Errorf("%w: %s", ErrUnknownObject, objectID)
		sp.SetError(err)
		return nil, "", err
	}
	r.leak.recordAccess(objectID)
	r.met.leakAccessReveals.Inc()
	return obj.ciphertext, obj.owner, nil
}

// Train runs the machine-learning step in the cloud (CLOUD.Train,
// Algorithm 6). On the first call — or whenever refinement is impossible or
// drifted too far — it is a full rebuild: flat k-means over the stored
// Dense-DPE encodings of each dense modality — in Hamming space, since that
// is what the encodings preserve — selects the codebook words, a lookup tree
// is built over them, and every stored object is (re)indexed. Sparse
// modalities need no training; their index is simply (re)built.
//
// On a trained repository Train is incremental: a compaction policy, not a
// rebuild. The codebooks are warm-start refined from only the encodings of
// objects changed since the last Train (mini-batch k-means seeded with the
// previous centroids), those delta objects are re-indexed in place, the
// memtable segments are sealed and background compaction is requested —
// cost proportional to the churn, not the corpus. A quantization-drift
// metric guards the shortcut: past Incremental.DriftThreshold (or
// ReassignThreshold) the refined codebook is rejected and the run falls
// back to the full rebuild above.
//
// Train never blocks readers or writers for its duration: the full path
// opens a generation-stamped changelog, snapshots the store, builds the
// codebooks and a fresh index set entirely off-lock, then replays the
// changelog and installs the new epoch with one atomic swap; the
// incremental path refines off-lock and only takes the write lock to
// re-index the delta. A Search issued mid-training is served by the
// previous epoch throughout.
func (r *Repository) Train() error { return r.TrainContext(context.Background()) }

// TrainContext is Train with cooperative cancellation: the context is
// checked between training phases (after acquiring the train lock, between
// per-modality codebook runs, and before the epoch install), so an aborted
// run releases its partially built indexes and leaves the current epoch
// serving, untouched. It is the engine half of the wire protocol's
// deadline-aware Train.
func (r *Repository) TrainContext(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/train")
	defer sp.End()
	r.trainMu.Lock()
	defer r.trainMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Incremental fast path: on a trained repository with an intact codebook
	// lineage, refine from the delta instead of rebuilding. Falls through to
	// the full rebuild when disabled, untrained, refinement is impossible,
	// or drift exceeded the threshold.
	if handled, err := r.tryTrainIncremental(ctx, sp); handled {
		return err
	}

	// Phase 1 — open the changelog, then snapshot the store. Order matters:
	// with the log installed first, a write racing the snapshot copy is also
	// logged, and replay (remove-then-add) is idempotent, so nothing is
	// lost either way.
	r.writeMu.Lock()
	cur := r.state.Load()
	cl := &changelog{epoch: cur.epoch + 1}
	r.changelog = cl
	r.writeMu.Unlock()
	defer func() { // retire the changelog on every exit path
		r.writeMu.Lock()
		r.changelog = nil
		r.writeMu.Unlock()
	}()
	snap := r.objects.Items()
	// Deterministic sample order (sorted object ids) so retraining a given
	// repository always yields the same codebooks.
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Phase 2 — train the engines off-lock. Dense engines run k-means over
	// up to TrainingSampleCap encodings; sparse engines and dense engines
	// with no data yet pass through unchanged (their codebook, if any, is
	// kept, so a later Train can pick up data that arrived since).
	engines := make([]ModalityEngine, len(cur.engines))
	for i, eng := range cur.engines {
		if err := ctx.Err(); err != nil {
			return err
		}
		sample := trainingSample(eng, snap, ids, r.opts.TrainingSampleCap)
		if len(sample) == 0 {
			engines[i] = eng
			continue
		}
		csp := sp.Child(string(eng.Modality()) + "_codebook")
		trained, err := eng.Train(sample)
		csp.End()
		if err != nil {
			return fmt.Errorf("core: train %s codebook: %w", eng.Modality(), err)
		}
		engines[i] = trained
	}

	// Phase 3 — build the next epoch's indexes off-lock from the snapshot,
	// through the bulk path.
	bsp := sp.Child("build_indexes")
	indexes, spillDirs, err := r.buildIndexes(engines, cl.epoch, snap, ids)
	bsp.End()
	if err != nil {
		return err
	}
	if hook := trainInstallHook; hook != nil {
		hook()
	}
	if err := ctx.Err(); err != nil {
		// Aborted after the expensive build: drop the fresh indexes, keep
		// the current epoch serving.
		closeIndexes(indexes, spillDirs)
		return err
	}

	// Phase 4 — replay the writes that landed during training against the
	// fresh indexes, then swap the epoch in. Both happen under writeMu so
	// no write can slip between replay and install.
	r.writeMu.Lock()
	rsp := sp.Child("replay")
	err = replayChangelog(engines, indexes, cl)
	rsp.End()
	if err != nil {
		r.writeMu.Unlock()
		closeIndexes(indexes, spillDirs)
		return err
	}
	r.state.Store(&repoState{
		epoch:     cl.epoch,
		trained:   true,
		engines:   engines,
		indexes:   indexes,
		spillDirs: spillDirs,
	})
	if r.tap != nil {
		r.tap.EpochInstalled(r.id, cl.epoch)
	}
	r.changelog = nil
	// A full rebuild re-indexed everything; the accumulated delta is spent.
	r.deltaIDs = make(map[string]struct{})
	// Phase 5 — retire the previous epoch's indexes: close spill logs and
	// drop their now-unreferenced spill directories. In-flight searches
	// that loaded the old state only read its in-memory postings, so
	// closing the spill log under them is safe.
	closeIndexes(cur.indexes, cur.spillDirs)
	r.writeMu.Unlock()

	for _, eng := range engines {
		switch eng.Modality() {
		case ModalityImage:
			r.met.vocabWords.Set(int64(eng.CodebookSize()))
		case ModalityAudio:
			r.met.audioVocabWords.Set(int64(eng.CodebookSize()))
		}
	}
	asp := sp.Child("ann_refresh")
	r.refreshANN(true)
	asp.End()
	r.met.trainFull.Inc()
	info := &TrainInfo{Epoch: cl.epoch, Mode: "full"}
	if prev := r.lastTrain.Load(); prev != nil && prev.DriftFallback && prev.Epoch == cl.epoch {
		// tryTrainIncremental pre-recorded the fallback for this epoch; keep
		// its drift report on the final record.
		info.DriftFallback = true
		info.Drift = prev.Drift
	}
	r.lastTrain.Store(info)
	r.updateIndexGauges()
	r.leak.recordTrain(r.id)
	return nil
}

// trainingSample gathers up to capN encodings for one engine from the
// snapshot, in sorted id order for determinism.
func trainingSample(eng ModalityEngine, snap map[string]*storedObject, ids []string, capN int) []vec.BitVec {
	var sample []vec.BitVec
	for _, id := range ids {
		for _, e := range eng.TrainingSample(snap[id]) {
			if len(sample) >= capN {
				return sample
			}
			sample = append(sample, e)
		}
	}
	return sample
}

// tryTrainIncremental attempts the incremental train path: refine the
// codebooks from only the delta sample (warm-started from the previous
// epoch), re-index just the delta objects against the refined engines, seal
// the memtables and hand merging to the background compactor. Returns
// handled=false when the run must go through the full rebuild instead —
// incremental training disabled, repository untrained, a modality has delta
// data but no prior codebook, or measured drift exceeded the thresholds.
func (r *Repository) tryTrainIncremental(ctx context.Context, sp *obs.Span) (handled bool, err error) {
	if r.opts.Incremental.Disable {
		return false, nil
	}
	r.writeMu.Lock()
	cur := r.state.Load()
	if !cur.trained {
		r.writeMu.Unlock()
		return false, nil
	}
	deltaIDs := make([]string, 0, len(r.deltaIDs))
	for id := range r.deltaIDs {
		deltaIDs = append(deltaIDs, id)
	}
	r.writeMu.Unlock()
	// Deterministic sample order, mirroring the full path's sorted snapshot.
	sort.Strings(deltaIDs)

	// Refine each engine off-lock from the delta sample. Removed objects
	// contribute no encodings; they are handled at the re-index step.
	isp := sp.Child("incremental_refine")
	defer isp.End()
	deltaObjs := make(map[string]*storedObject, len(deltaIDs))
	liveIDs := make([]string, 0, len(deltaIDs))
	for _, id := range deltaIDs {
		if obj, ok := r.objects.Get(id); ok {
			deltaObjs[id] = obj
			liveIDs = append(liveIDs, id)
		}
	}
	engines := make([]ModalityEngine, len(cur.engines))
	var worst cluster.DriftReport
	for i, eng := range cur.engines {
		if err := ctx.Err(); err != nil {
			return true, err
		}
		sample := trainingSample(eng, deltaObjs, liveIDs, r.opts.TrainingSampleCap)
		refined, drift, ok, err := eng.Refine(sample)
		if err != nil {
			return true, fmt.Errorf("core: refine %s codebook: %w", eng.Modality(), err)
		}
		if !ok {
			// Data arrived for a modality that never trained: only a full
			// re-cluster can give it a codebook.
			return false, nil
		}
		if drift.MeanShift > worst.MeanShift {
			worst.MeanShift = drift.MeanShift
		}
		if drift.MaxShift > worst.MaxShift {
			worst.MaxShift = drift.MaxShift
		}
		if drift.ReassignedFraction > worst.ReassignedFraction {
			worst.ReassignedFraction = drift.ReassignedFraction
		}
		engines[i] = refined
	}
	r.met.driftPermille.Set(int64(worst.MeanShift * 1000))
	if worst.Exceeds(r.opts.Incremental.DriftThreshold, r.opts.Incremental.ReassignThreshold) {
		// The delta pulled the codebook too far from the epoch the standing
		// postings were quantized under: re-cluster from scratch. Record the
		// decision so the full path can attribute its run to drift.
		r.met.driftFallbacks.Inc()
		r.lastTrain.Store(&TrainInfo{
			Epoch:         cur.epoch + 1,
			Mode:          "full",
			DriftFallback: true,
			Drift:         worst,
			DeltaDocs:     len(deltaIDs),
		})
		return false, nil
	}
	if hook := trainInstallHook; hook != nil {
		hook()
	}
	if err := ctx.Err(); err != nil {
		return true, err
	}

	// Install: under the write lock, re-index every object in the (possibly
	// grown) delta set against the refined engines and swap the epoch. The
	// index pointers carry over — updates already landed in the live
	// segmented indexes; only the delta's quantization changes. Objects not
	// in the delta keep their previous-epoch quantization, which is exactly
	// the bounded staleness the drift threshold guards.
	r.writeMu.Lock()
	rsp := sp.Child("incremental_reindex")
	reindexed := 0
	for id := range r.deltaIDs {
		doc := index.DocID(id)
		obj, live := r.objects.Get(id)
		for i := range engines {
			idx := cur.indexes[i]
			if idx == nil {
				continue
			}
			idx.Remove(doc)
			if !live {
				continue
			}
			terms := engines[i].ExtractTerms(obj)
			if len(terms) == 0 {
				continue
			}
			if err := idx.Add(doc, terms); err != nil {
				rsp.End()
				r.writeMu.Unlock()
				return true, fmt.Errorf("core: incremental reindex %s: %w", id, err)
			}
		}
		reindexed++
	}
	rsp.End()
	r.deltaIDs = make(map[string]struct{})
	r.state.Store(&repoState{
		epoch:     cur.epoch + 1,
		trained:   true,
		engines:   engines,
		indexes:   cur.indexes,
		spillDirs: cur.spillDirs,
	})
	if r.tap != nil {
		r.tap.EpochInstalled(r.id, cur.epoch+1)
	}
	r.writeMu.Unlock()
	// NOTE: cur's indexes are shared with the new epoch — do not close them.

	// Train as compaction policy: freeze the memtables into sealed segments
	// and let the background compactor merge. Sealing is O(1); the merge is
	// off the Train critical path.
	for _, idx := range cur.indexes {
		if idx != nil {
			if err := idx.Seal(); err != nil {
				return true, err
			}
		}
	}
	r.requestCompaction()

	for _, eng := range engines {
		switch eng.Modality() {
		case ModalityImage:
			r.met.vocabWords.Set(int64(eng.CodebookSize()))
		case ModalityAudio:
			r.met.audioVocabWords.Set(int64(eng.CodebookSize()))
		}
	}
	r.refreshANN(false)
	r.met.trainIncremental.Inc()
	r.lastTrain.Store(&TrainInfo{
		Epoch:     cur.epoch + 1,
		Mode:      "incremental",
		Drift:     worst,
		DeltaDocs: reindexed,
	})
	r.updateIndexGauges()
	r.leak.recordTrain(r.id)
	return true, nil
}

// requestCompaction spawns (at most one at a time) a background goroutine
// that compacts every index of the current epoch that needs it. Wired as the
// segmented indexes' OnSeal hook and called after every incremental Train,
// so sealed segments are merged shortly after they accumulate. Safe to call
// from any goroutine; never blocks; a no-op after Close.
func (r *Repository) requestCompaction() {
	r.compactMu.Lock()
	defer r.compactMu.Unlock()
	if r.compactClosed {
		return
	}
	// Capture the test hook in the requesting goroutine: requests happen on
	// mutator/train paths, so a test installing the hook before triggering a
	// seal is ordered before this read.
	hook := compactStartHook
	if !r.compacting.CompareAndSwap(false, true) {
		// A pass is already in flight (possibly requested before this
		// request's segments were sealed). Dropping the request here would
		// leave those segments unmerged until the next seal happens to land
		// in a quiet window, so record it — hook included — and the running
		// compactor reruns once more before exiting.
		r.compactPending = true
		r.pendingHook = hook
		return
	}
	r.compactWG.Add(1)
	go func() {
		defer r.compactWG.Done()
		for {
			r.compactPass(hook)
			r.compactMu.Lock()
			if r.compactClosed || !r.compactPending {
				r.compacting.Store(false)
				r.compactMu.Unlock()
				return
			}
			r.compactPending = false
			hook = r.pendingHook
			r.pendingHook = nil
			r.compactMu.Unlock()
		}
	}()
}

// compactPass is one background-compactor sweep over the current epoch's
// indexes.
func (r *Repository) compactPass(hook func()) {
	if hook != nil {
		hook()
	}
	_, csp := obs.StartSpan(context.Background(), r.met.reg, "repo/compact")
	defer csp.End()
	st := r.state.Load()
	for _, idx := range st.indexes {
		if idx == nil || !idx.NeedsCompaction() {
			continue
		}
		if err := idx.Compact(); err != nil {
			// The epoch may have been retired (spill dirs removed) while
			// we merged; the next compaction of the live epoch catches up.
			r.met.compactErrors.Inc()
			csp.SetError(err)
			continue
		}
		r.met.compactions.Inc()
	}
	r.updateIndexGauges()
}

// CompactNow synchronously compacts every index of the current epoch,
// regardless of thresholds — the deterministic variant of the background
// compactor for tests, benchmarks and operational tooling.
func (r *Repository) CompactNow() error {
	st := r.state.Load()
	for _, idx := range st.indexes {
		if idx == nil {
			continue
		}
		if err := idx.Compact(); err != nil {
			return err
		}
		r.met.compactions.Inc()
	}
	r.updateIndexGauges()
	return nil
}

// IndexStats returns per-modality segment statistics for the current epoch,
// keyed by modality.
func (r *Repository) IndexStats() map[Modality]index.SegmentStats {
	st := r.state.Load()
	out := make(map[Modality]index.SegmentStats, len(st.engines))
	for i, eng := range st.engines {
		if i < len(st.indexes) && st.indexes[i] != nil {
			out[eng.Modality()] = st.indexes[i].Stats()
		}
	}
	return out
}

// updateIndexGauges refreshes the segment/memtable/garbage gauges from the
// current epoch's indexes.
func (r *Repository) updateIndexGauges() {
	st := r.state.Load()
	var segs, memDocs, dead int
	for _, idx := range st.indexes {
		if idx == nil {
			continue
		}
		s := idx.Stats()
		segs += s.SealedSegments
		memDocs += s.MemtableDocs
		dead += s.DeadDocs
	}
	r.met.indexSegments.Set(int64(segs))
	r.met.memtableDocs.Set(int64(memDocs))
	r.met.deadDocs.Set(int64(dead))
}

// buildIndexes creates one inverted index per engine for the given epoch and
// bulk-loads the snapshot into it. Shared between Train and snapshot
// restore. On error, indexes already built are closed.
func (r *Repository) buildIndexes(engines []ModalityEngine, epoch uint64, snap map[string]*storedObject, ids []string) ([]*index.Segmented, []string, error) {
	indexes := make([]*index.Segmented, len(engines))
	spillDirs := make([]string, len(engines))
	fail := func(err error) ([]*index.Segmented, []string, error) {
		closeIndexes(indexes, spillDirs)
		return nil, nil, err
	}
	for i, eng := range engines {
		opts := r.indexOptions(string(eng.Modality()), epoch)
		idx, err := index.NewSegmented(r.segmentedOptions(opts))
		if err != nil {
			return fail(err)
		}
		indexes[i] = idx
		spillDirs[i] = opts.SpillDir
		batch := make([]index.BatchDoc, 0, len(ids))
		for _, id := range ids {
			if terms := eng.ExtractTerms(snap[id]); len(terms) > 0 {
				batch = append(batch, index.BatchDoc{Doc: index.DocID(id), Terms: terms})
			}
		}
		if err := idx.AddBatch(batch); err != nil {
			return fail(err)
		}
		// Freeze the bulk load into one sealed segment, so the epoch starts
		// with an empty memtable and post-train updates accumulate separately.
		if err := idx.Seal(); err != nil {
			return fail(err)
		}
	}
	return indexes, spillDirs, nil
}

// segmentedOptions wraps one modality's index options in the repository's
// segmentation knobs, wiring auto-seal to the background compactor.
func (r *Repository) segmentedOptions(opts index.Options) index.SegmentedOptions {
	return index.SegmentedOptions{
		Index:           opts,
		MemtableCap:     r.opts.Incremental.MemtableCap,
		CompactSegments: r.opts.Incremental.CompactSegments,
		OnSeal:          r.requestCompaction,
	}
}

// replayChangelog applies the writes captured during off-lock training to
// the next epoch's indexes. Replay is idempotent (remove-then-add), so an
// object both present in the snapshot and logged converges to its logged
// version.
func replayChangelog(engines []ModalityEngine, indexes []*index.Segmented, cl *changelog) error {
	for _, rec := range cl.recs {
		if rec.epoch >= cl.epoch {
			// Stamped by a later generation than the one being built; can
			// only happen if install ordering is broken — skip defensively.
			continue
		}
		doc := index.DocID(rec.id)
		for _, idx := range indexes {
			if idx != nil {
				idx.Remove(doc)
			}
		}
		if rec.remove {
			continue
		}
		for i, eng := range engines {
			idx := indexes[i]
			if idx == nil {
				continue
			}
			terms := eng.ExtractTerms(rec.obj)
			if len(terms) == 0 {
				continue
			}
			if err := idx.Add(doc, terms); err != nil {
				return err
			}
		}
	}
	return nil
}

// closeIndexes closes an epoch's indexes and removes their per-epoch spill
// directories (best effort).
func closeIndexes(indexes []*index.Segmented, spillDirs []string) {
	for i, idx := range indexes {
		if idx == nil {
			continue
		}
		_ = idx.Close()
		if i < len(spillDirs) && spillDirs[i] != "" {
			_ = os.RemoveAll(spillDirs[i])
		}
	}
}

// indexOptions derives one index's options for an epoch. The spill
// directory is suffixed with the epoch so the next epoch's index never
// shares a spill log with the one still serving searches.
func (r *Repository) indexOptions(modality string, epoch uint64) index.Options {
	opts := r.opts.Index
	if opts.SpillDir != "" {
		opts.SpillDir = opts.SpillDir + "/" + r.id + "-" + modality + "-e" + strconv.FormatUint(epoch, 10)
	}
	return opts
}

// Search answers a multimodal query (CLOUD.Search, Algorithm 9): per
// modality, either a sub-linear index lookup (after training) or a linear
// ranked scan over stored encodings (before), then logarithmic ISR rank
// fusion across modalities and truncation to the top k.
func (r *Repository) Search(q *Query) ([]SearchHit, error) {
	return r.SearchWithFusionContext(context.Background(), q, fusion.LogISR)
}

// SearchContext is Search carrying the caller's context, so the fan-out
// lookup, fusion and collect spans join the request's distributed trace.
func (r *Repository) SearchContext(ctx context.Context, q *Query) ([]SearchHit, error) {
	return r.SearchWithFusionContext(ctx, q, fusion.LogISR)
}

// SearchWithFusion is Search with an explicit rank-fusion formula; the
// default (and the paper's choice) is logarithmic ISR. Exposed for the
// fusion ablation.
//
// The per-modality lookups fan out in parallel goroutines and join before
// fusion, so the search phase costs max(modality lookups), not their sum;
// the whole path is lock-free against the repository (epoch load + store
// shard reads only) and therefore never blocks on a concurrent Train.
func (r *Repository) SearchWithFusion(q *Query, method fusion.Method) ([]SearchHit, error) {
	return r.SearchWithFusionContext(context.Background(), q, method)
}

// SearchWithFusionContext is SearchWithFusion carrying the caller's context.
func (r *Repository) SearchWithFusionContext(ctx context.Context, q *Query, method fusion.Method) ([]SearchHit, error) {
	if q.K <= 0 {
		return nil, errors.New("core: query k must be positive")
	}
	if hook := searchStartHook; hook != nil {
		hook()
	}
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/search")
	defer sp.End()
	st := r.state.Load()

	depth := r.opts.FusionCandidates
	if depth <= 0 {
		depth = 10 * q.K
	}
	lists := make([][]index.Result, len(st.engines))
	active := make([]bool, len(st.engines))
	var wg sync.WaitGroup
	for i, eng := range st.engines {
		if !eng.InQuery(q) {
			continue
		}
		active[i] = true
		wg.Add(1)
		go func(i int, eng ModalityEngine) {
			defer wg.Done()
			csp := sp.Child(string(eng.Modality()) + "_lookup")
			defer csp.End()
			lists[i] = r.searchModality(st, i, eng, q, depth)
		}(i, eng)
	}
	wg.Wait()
	joined := make([][]index.Result, 0, len(lists))
	for i, l := range lists {
		if active[i] {
			joined = append(joined, l)
		}
	}
	fsp := sp.Child("fusion")
	fused := fusion.Fuse(method, joined, q.K)
	fsp.End()
	csp := sp.Child("collect")
	hits := make([]SearchHit, 0, len(fused))
	for _, res := range fused {
		obj, ok := r.objects.Get(string(res.Doc))
		if !ok {
			// Raced a remove against a not-yet-retired index entry: the hit
			// is dropped, and — deliberately — NOT recorded as an ID(d)
			// access, since nothing about it is returned to the caller.
			continue
		}
		r.leak.recordAccess(string(res.Doc))
		r.met.leakAccessReveals.Inc()
		hits = append(hits, SearchHit{
			ObjectID:   string(res.Doc),
			Owner:      obj.owner,
			Score:      res.Score,
			Ciphertext: obj.ciphertext,
		})
	}
	csp.End()
	r.met.leakSearchRepeats.Add(int64(r.leak.recordSearch(q)))
	r.met.leakSearchDistinct.Set(int64(r.leak.distinctSearchTokens()))
	return hits, nil
}

// searchModality runs one modality's lookup for the given epoch: the
// inverted index when the epoch is trained and the engine has its codebook;
// before training, a dense scan routes through the ANN candidate index once
// the live code count crosses ANNOptions.MinCorpus, and falls back to the
// engine's exact linear scan below it (or when the index disabled itself).
func (r *Repository) searchModality(st *repoState, i int, eng ModalityEngine, q *Query, depth int) []index.Result {
	if st.trained && st.indexes[i] != nil && eng.Ready() {
		return st.indexes[i].Search(eng.QueryTerms(q), depth)
	}
	if r.ann != nil && i < len(r.ann.idx) {
		if a := r.ann.idx[i]; a != nil && a.Live() >= r.opts.ANN.MinCorpus {
			if as, ok := eng.(annSearcher); ok {
				res, stats := as.annSearch(q, a, depth)
				r.met.annProbes.Add(int64(stats.Probes))
				r.met.annCandidates.Add(int64(stats.Candidates))
				return res
			}
		}
	}
	return eng.LinearSearch(q, r.objects, depth)
}

// MergeIndexes merges the per-modality indexes' sealed segments (and their
// disk-spilled champion lists) into one — the background merge of §VI, run
// synchronously on demand.
func (r *Repository) MergeIndexes() error { return r.CompactNow() }

// Close releases index resources (spill logs) and the write-ahead log. Any
// in-flight background compaction is waited out first, so no merge races the
// teardown.
func (r *Repository) Close() error {
	r.compactMu.Lock()
	r.compactClosed = true
	r.compactMu.Unlock()
	r.compactWG.Wait()
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	st := r.state.Load()
	var firstErr error
	for _, idx := range st.indexes {
		if idx == nil {
			continue
		}
		if err := idx.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if r.wal != nil {
		if err := r.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		r.wal = nil
	}
	return firstErr
}
