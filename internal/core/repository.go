package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"mie/internal/cluster"
	"mie/internal/dpe"
	"mie/internal/fusion"
	"mie/internal/index"
	"mie/internal/obs"
	"mie/internal/store"
	"mie/internal/vec"
	"mie/internal/wal"
)

// repoMetrics holds a repository's observability handles. Phase timings
// (train, index build, per-modality search, fusion) land in the process
// registry as phase_seconds{phase=repo/...} histograms — the cloud-side half
// of the paper's latency breakdowns — the gauges track repository and
// codebook sizes, and the leak* counters surface the paper's leakage profile
// (ID(d) access pattern, ID(w) search-pattern repeats, freq(w) update
// leakage) as live per-repository telemetry.
type repoMetrics struct {
	reg             *obs.Registry
	objects         *obs.Gauge
	vocabWords      *obs.Gauge
	audioVocabWords *obs.Gauge

	leakAccessReveals  *obs.Counter
	leakSearchRepeats  *obs.Counter
	leakUpdateTokens   *obs.Counter
	leakSearchDistinct *obs.Gauge
	leakUpdateDistinct *obs.Gauge
}

func newRepoMetrics(reg *obs.Registry, id string) *repoMetrics {
	return &repoMetrics{
		reg:             reg,
		objects:         reg.Gauge(obs.L("repo_objects", "repo", id)),
		vocabWords:      reg.Gauge(obs.L("repo_vocab_words", "repo", id)),
		audioVocabWords: reg.Gauge(obs.L("repo_audio_vocab_words", "repo", id)),

		leakAccessReveals:  reg.Counter(obs.L("repo_leak_access_reveals_total", "repo", id)),
		leakSearchRepeats:  reg.Counter(obs.L("repo_leak_search_repeats_total", "repo", id)),
		leakUpdateTokens:   reg.Counter(obs.L("repo_leak_update_token_mass_total", "repo", id)),
		leakSearchDistinct: reg.Gauge(obs.L("repo_leak_distinct_search_tokens", "repo", id)),
		leakUpdateDistinct: reg.Gauge(obs.L("repo_leak_distinct_update_tokens", "repo", id)),
	}
}

// Common repository errors.
var (
	// ErrNotTrained is never returned by Search (which falls back to linear
	// scan) but is exposed for callers that want to require an index.
	ErrNotTrained = errors.New("core: repository not trained")
	// ErrNoObjects is returned by Train on an empty repository when the
	// image modality needs a codebook.
	ErrNoObjects = errors.New("core: nothing to train on")
	// ErrUnknownObject is returned by Get for absent ids.
	ErrUnknownObject = errors.New("core: unknown object")
)

// RepositoryOptions configures the server-side engine of one repository.
type RepositoryOptions struct {
	// Modalities the repository accepts; empty means both.
	Modalities []Modality
	// Vocab configures visual-word training: a flat k-means selects
	// Vocab.Words visual words (paper: 1000) and a lookup tree (paper:
	// branch 10, height 3) is built over them. Zero values take the
	// paper's shape.
	Vocab cluster.VocabParams
	// Index configures the per-modality inverted indexes (champion lists,
	// spill directory).
	Index index.Options
	// TrainingSampleCap bounds how many encodings feed k-means; 0 means
	// 20000. Training cost is the cloud's to pay, but tests want it tunable.
	TrainingSampleCap int
	// FusionCandidates is the per-modality candidate depth fed to rank
	// fusion before truncating to k; 0 means 10*k.
	FusionCandidates int
	// StoreShards is the shard count of the object store; 0 means
	// store.DefaultShards.
	StoreShards int
}

func (o *RepositoryOptions) setDefaults() {
	if len(o.Modalities) == 0 {
		o.Modalities = []Modality{ModalityText, ModalityImage, ModalityAudio}
	}
	if o.Vocab.Words == 0 {
		o.Vocab.Words = 1000
	}
	if o.Vocab.Tree.Branch == 0 {
		o.Vocab.Tree.Branch = 10
	}
	if o.Vocab.Tree.Height == 0 {
		o.Vocab.Tree.Height = 3
	}
	if o.TrainingSampleCap == 0 {
		o.TrainingSampleCap = 20000
	}
}

// WithDefaults returns a copy of o with zero fields replaced by the values
// NewRepository would apply — the normalized form callers compare against
// Repository.Options to detect a configuration mismatch on re-open.
func (o RepositoryOptions) WithDefaults() RepositoryOptions {
	o.setDefaults()
	return o
}

// SearchHit is one ranked result returned to the querying user: the
// encrypted object, its deterministic id and owner (the metadata pair of
// §III-A) and the fused relevance score.
type SearchHit struct {
	ObjectID   string
	Owner      string
	Score      float64
	Ciphertext []byte
}

// storedObject is the server-side record of one data object. It is
// immutable once stored: Update replaces the whole record, so readers may
// hold one without locking.
type storedObject struct {
	owner      string
	ciphertext []byte
	textTokens map[dpe.Token]uint64
	imageEncs  []vec.BitVec
	audioEncs  []vec.BitVec
}

// repoState is one epoch of derived state: the engine set (codebooks
// included) and the per-engine inverted indexes built by the last Train.
// States are immutable; Train builds the next one off-lock and installs it
// with a single atomic pointer swap, so readers never block on training.
type repoState struct {
	epoch   uint64
	trained bool
	// engines is the per-modality retrieval logic, in fusion order
	// (text, image, audio).
	engines []ModalityEngine
	// indexes is parallel to engines; nil before the first Train.
	indexes []*index.Inverted
	// spillDirs is parallel to indexes: the per-epoch spill directory of
	// each index ("" when spilling is off), removed when the epoch retires.
	spillDirs []string
}

// changeRec is one generation-stamped entry of the train-time changelog.
type changeRec struct {
	// epoch stamps the generation the change was applied under.
	epoch  uint64
	remove bool
	id     string
	obj    *storedObject // nil for removes
}

// changelog captures writes that land while a Train is building the next
// epoch off-lock; they are replayed against the fresh indexes just before
// the swap so the new epoch reflects every write the old one served.
type changelog struct {
	epoch uint64 // the epoch being built
	recs  []changeRec
}

// Repository is the untrusted server-side engine for one shared repository:
// it stores ciphertexts and DPE encodings, trains the visual-word codebook,
// maintains one inverted index per modality, and answers ranked multimodal
// queries. All methods are safe for concurrent use by multiple users, which
// is the multi-writer capability Figure 4 exercises.
//
// The engine is layered: a sharded object store (internal/store) underneath,
// one ModalityEngine per media type above it, and an epoch-swapped index set
// on top. Reads (Get/Search) take no repository-wide lock — they load the
// current epoch atomically and go through the store's shard locks only.
// Train never blocks them: it snapshots the store, builds codebooks and
// fresh indexes off-lock, replays the concurrent-write changelog, and swaps
// the new epoch in atomically.
type Repository struct {
	id   string
	opts RepositoryOptions
	met  *repoMetrics
	leak *Leakage

	// objects is the storage layer: ciphertext + encodings per object id.
	objects store.Store[*storedObject]

	// state is the current epoch (engines + indexes); swapped by Train.
	state atomic.Pointer[repoState]

	// writeMu serializes mutators (Update/Remove), index maintenance and
	// epoch installs with each other. Readers never take it.
	writeMu sync.Mutex
	// wal (nil for non-durable repositories, guarded by writeMu) is the
	// repository's write-ahead log: every mutation is appended before it is
	// applied, so an acknowledged write is replayable after a crash.
	wal *wal.Log
	// changelog is non-nil while a Train is in flight (guarded by writeMu).
	changelog *changelog
	// trainMu serializes Train calls; searches and writes proceed under it.
	trainMu sync.Mutex
	// jobs tracks asynchronous training runs (TrainStart/TrainWait).
	jobs jobTable
}

// Test hooks (nil outside tests): updateIndexHook injects an index failure
// for one modality inside Update's index step, so the rollback path is
// testable; trainInstallHook runs off-lock after the next epoch's indexes
// are built, just before the install, so tests can hold a Train in flight
// deterministically.
var (
	updateIndexHook  func(Modality) error
	trainInstallHook func()
	searchStartHook  func()
)

// SetTrainInstallHookForTest installs (or, with nil, clears) the off-lock
// pre-install training hook. Test support for packages outside core — e.g.
// the server tests hold a Train RPC in flight with it to prove searches
// keep being served over the wire. Never set in production code.
func SetTrainInstallHookForTest(f func()) { trainInstallHook = f }

// SetSearchStartHookForTest installs (or, with nil, clears) a hook that runs
// at the top of every Search. Server tests use it to hold a Search RPC in
// flight so cancellation mid-search is observable deterministically. Never
// set in production code.
func SetSearchStartHookForTest(f func()) { searchStartHook = f }

// NewRepository creates the server-side representation of a repository
// (CLOUD.CreateRepository of Algorithm 5).
func NewRepository(id string, opts RepositoryOptions) (*Repository, error) {
	if id == "" {
		return nil, errors.New("core: repository needs an id")
	}
	opts.setDefaults()
	r := &Repository{
		id:      id,
		opts:    opts,
		met:     newRepoMetrics(obs.Default(), id),
		objects: store.New[*storedObject](opts.StoreShards),
		leak:    newLeakage(),
	}
	r.state.Store(&repoState{engines: newEngines(opts)})
	return r, nil
}

// ID returns the repository's deterministic identifier (setup leakage).
func (r *Repository) ID() string { return r.id }

// Options returns the engine parameters the repository was created with
// (defaults applied). Callers re-opening an existing repository compare
// against it to detect a configuration mismatch.
func (r *Repository) Options() RepositoryOptions { return r.opts }

// Leakage exposes the record of information patterns the server observed;
// tests assert against it and the bench harness reports it.
func (r *Repository) Leakage() *Leakage { return r.leak }

// Size returns the number of stored objects.
func (r *Repository) Size() int { return r.objects.Len() }

// IsTrained reports whether Train has completed.
func (r *Repository) IsTrained() bool { return r.state.Load().trained }

// VocabularySize returns the number of visual words after training (0
// before).
func (r *Repository) VocabularySize() int { return r.codebookSize(ModalityImage) }

// AudioVocabularySize returns the number of audio words after training.
func (r *Repository) AudioVocabularySize() int { return r.codebookSize(ModalityAudio) }

func (r *Repository) codebookSize(m Modality) int {
	for _, eng := range r.state.Load().engines {
		if eng.Modality() == m {
			return eng.CodebookSize()
		}
	}
	return 0
}

// Update stores (or replaces) an encrypted object and its encodings
// (CLOUD.Update, Algorithm 7). If the repository is trained the object is
// indexed immediately; otherwise indexing happens at Train time. Update is
// atomic: either the object is stored and fully indexed across every
// modality, or (on an index error) the previous state — prior object and
// postings, or absence — is restored and the error returned.
func (r *Repository) Update(up *Update) error {
	return r.UpdateContext(context.Background(), up)
}

// UpdateContext is Update carrying the caller's context, so the update's
// phase spans (index, wal_append) join the request's distributed trace.
func (r *Repository) UpdateContext(ctx context.Context, up *Update) error {
	if up.ObjectID == "" {
		return errors.New("core: update needs an object id")
	}
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/update")
	defer sp.End()
	obj := &storedObject{
		owner:      up.Owner,
		ciphertext: up.Ciphertext,
		textTokens: up.TextTokens,
		imageEncs:  up.ImageEncodings,
		audioEncs:  up.AudioEncodings,
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	// Write-ahead: the mutation reaches the log before it touches memory,
	// so success is only ever reported for a replayable write.
	if err := r.walAppend(sp, &walRecord{ObjectID: up.ObjectID, Update: up}); err != nil {
		return err
	}
	st := r.state.Load()
	doc := index.DocID(up.ObjectID)
	prev, replaced := r.objects.Put(up.ObjectID, obj)
	if replaced {
		for _, idx := range st.indexes {
			if idx != nil {
				idx.Remove(doc)
			}
		}
	}
	if st.trained {
		isp := sp.Child("index")
		err := indexObject(st, up.ObjectID, obj)
		isp.End()
		if err != nil {
			// Roll back: indexObject already unwound its partial postings;
			// restore the previous object and its postings, or erase the
			// insert entirely, so no stored-but-partially-indexed object
			// survives.
			if replaced {
				r.objects.Put(up.ObjectID, prev)
				_ = indexObject(st, up.ObjectID, prev) // best-effort reinstate
			} else {
				r.objects.Delete(up.ObjectID)
			}
			// The mutation is already in the log but was rolled back in
			// memory; log the inverse so replay converges to the same
			// rolled-back state.
			r.walCompensate(up.ObjectID, prev, replaced)
			return err
		}
	}
	if cl := r.changelog; cl != nil {
		cl.recs = append(cl.recs, changeRec{epoch: st.epoch, id: up.ObjectID, obj: obj})
	}
	r.met.objects.Set(int64(r.objects.Len()))
	r.met.leakUpdateTokens.Add(int64(r.leak.recordUpdate(up)))
	r.met.leakUpdateDistinct.Set(int64(r.leak.DistinctUpdateTokens()))
	return nil
}

// indexObject inserts one object into the epoch's per-modality indexes.
// On failure it unwinds the postings already added for earlier modalities,
// so a partially indexed object never escapes.
func indexObject(st *repoState, id string, obj *storedObject) error {
	doc := index.DocID(id)
	for i, eng := range st.engines {
		idx := st.indexes[i]
		if idx == nil {
			continue
		}
		terms := eng.ExtractTerms(obj)
		if len(terms) == 0 {
			continue
		}
		var err error
		if updateIndexHook != nil {
			err = updateIndexHook(eng.Modality())
		}
		if err == nil {
			err = idx.Add(doc, terms)
		}
		if err != nil {
			for j := 0; j < i; j++ {
				if st.indexes[j] != nil {
					st.indexes[j].Remove(doc)
				}
			}
			return err
		}
	}
	return nil
}

// Remove deletes an object and its index entries (CLOUD.Remove,
// Algorithm 8). Unknown ids are a no-op. On a durable repository the
// removal is logged before it is applied; a WAL error leaves the object in
// place and is returned.
func (r *Repository) Remove(objectID string) error {
	return r.RemoveContext(context.Background(), objectID)
}

// RemoveContext is Remove carrying the caller's context for tracing.
func (r *Repository) RemoveContext(ctx context.Context, objectID string) error {
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/remove")
	defer sp.End()
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	st := r.state.Load()
	if _, exists := r.objects.Get(objectID); exists {
		if err := r.walAppend(sp, &walRecord{Remove: true, ObjectID: objectID}); err != nil {
			return err
		}
	}
	if _, existed := r.objects.Delete(objectID); existed {
		doc := index.DocID(objectID)
		for _, idx := range st.indexes {
			if idx != nil {
				idx.Remove(doc)
			}
		}
	}
	if cl := r.changelog; cl != nil {
		cl.recs = append(cl.recs, changeRec{epoch: st.epoch, remove: true, id: objectID})
	}
	r.met.objects.Set(int64(r.objects.Len()))
	r.leak.recordRemove(objectID)
	return nil
}

// walAppend logs one mutation if the repository is durable. Callers hold
// writeMu. sp (optional) receives a wal_append child span.
func (r *Repository) walAppend(sp *obs.Span, rec *walRecord) error {
	if r.wal == nil {
		return nil
	}
	payload, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if sp != nil {
		wsp := sp.Child("wal_append")
		defer wsp.End()
	}
	if err := r.wal.Append(payload); err != nil {
		return fmt.Errorf("core: wal append for %s: %w", r.id, err)
	}
	return nil
}

// walCompensate logs the inverse of a mutation that was appended but then
// rolled back in memory: the previous object (a replace) or a removal (an
// insert). Best effort — if even the compensation cannot be logged, replay
// may resurrect the rolled-back write, which the caller was told failed;
// the log is by then poisoned or the disk gone, so a louder failure is
// already on its way.
func (r *Repository) walCompensate(id string, prev *storedObject, replaced bool) {
	if r.wal == nil {
		return
	}
	rec := &walRecord{Remove: true, ObjectID: id}
	if replaced {
		rec = &walRecord{ObjectID: id, Update: updateFromStored(id, prev)}
	}
	if payload, err := encodeWALRecord(rec); err == nil {
		_ = r.wal.Append(payload)
	}
}

// updateFromStored reconstructs the Update that produced a stored object,
// for compensation records.
func updateFromStored(id string, obj *storedObject) *Update {
	return &Update{
		ObjectID:       id,
		Owner:          obj.owner,
		Ciphertext:     obj.ciphertext,
		TextTokens:     obj.textTokens,
		ImageEncodings: obj.imageEncs,
		AudioEncodings: obj.audioEncs,
	}
}

// attachWAL hands the repository its write-ahead log. Called once, after
// recovery replay, so replayed records are not re-appended.
func (r *Repository) attachWAL(l *wal.Log) {
	r.writeMu.Lock()
	r.wal = l
	r.writeMu.Unlock()
}

// Get returns the stored ciphertext and owner of an object (the read path
// of the system model). Lock-free: it goes straight to the store.
func (r *Repository) Get(objectID string) (ciphertext []byte, owner string, err error) {
	return r.GetContext(context.Background(), objectID)
}

// GetContext is Get carrying the caller's context for tracing.
func (r *Repository) GetContext(ctx context.Context, objectID string) (ciphertext []byte, owner string, err error) {
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/get")
	defer sp.End()
	obj, ok := r.objects.Get(objectID)
	if !ok {
		err = fmt.Errorf("%w: %s", ErrUnknownObject, objectID)
		sp.SetError(err)
		return nil, "", err
	}
	r.leak.recordAccess(objectID)
	r.met.leakAccessReveals.Inc()
	return obj.ciphertext, obj.owner, nil
}

// Train runs the machine-learning step in the cloud (CLOUD.Train,
// Algorithm 6): flat k-means over the stored Dense-DPE encodings of each
// dense modality — in Hamming space, since that is what the encodings
// preserve — selects the codebook words, a lookup tree is built over them,
// and every stored object is (re)indexed. Sparse modalities need no
// training; their index is simply (re)built. Train may be invoked again
// later to retrain with different parameters.
//
// Train never blocks readers or writers for its duration: it opens a
// generation-stamped changelog, snapshots the store, builds the codebooks
// and a fresh index set entirely off-lock, then replays the changelog and
// installs the new epoch with one atomic swap. A Search issued mid-training
// is served by the previous epoch throughout.
func (r *Repository) Train() error { return r.TrainContext(context.Background()) }

// TrainContext is Train with cooperative cancellation: the context is
// checked between training phases (after acquiring the train lock, between
// per-modality codebook runs, and before the epoch install), so an aborted
// run releases its partially built indexes and leaves the current epoch
// serving, untouched. It is the engine half of the wire protocol's
// deadline-aware Train.
func (r *Repository) TrainContext(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/train")
	defer sp.End()
	r.trainMu.Lock()
	defer r.trainMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 1 — open the changelog, then snapshot the store. Order matters:
	// with the log installed first, a write racing the snapshot copy is also
	// logged, and replay (remove-then-add) is idempotent, so nothing is
	// lost either way.
	r.writeMu.Lock()
	cur := r.state.Load()
	cl := &changelog{epoch: cur.epoch + 1}
	r.changelog = cl
	r.writeMu.Unlock()
	defer func() { // retire the changelog on every exit path
		r.writeMu.Lock()
		r.changelog = nil
		r.writeMu.Unlock()
	}()
	snap := r.objects.Items()
	// Deterministic sample order (sorted object ids) so retraining a given
	// repository always yields the same codebooks.
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Phase 2 — train the engines off-lock. Dense engines run k-means over
	// up to TrainingSampleCap encodings; sparse engines and dense engines
	// with no data yet pass through unchanged (their codebook, if any, is
	// kept, so a later Train can pick up data that arrived since).
	engines := make([]ModalityEngine, len(cur.engines))
	for i, eng := range cur.engines {
		if err := ctx.Err(); err != nil {
			return err
		}
		sample := trainingSample(eng, snap, ids, r.opts.TrainingSampleCap)
		if len(sample) == 0 {
			engines[i] = eng
			continue
		}
		csp := sp.Child(string(eng.Modality()) + "_codebook")
		trained, err := eng.Train(sample)
		csp.End()
		if err != nil {
			return fmt.Errorf("core: train %s codebook: %w", eng.Modality(), err)
		}
		engines[i] = trained
	}

	// Phase 3 — build the next epoch's indexes off-lock from the snapshot,
	// through the bulk path.
	bsp := sp.Child("build_indexes")
	indexes, spillDirs, err := r.buildIndexes(engines, cl.epoch, snap, ids)
	bsp.End()
	if err != nil {
		return err
	}
	if hook := trainInstallHook; hook != nil {
		hook()
	}
	if err := ctx.Err(); err != nil {
		// Aborted after the expensive build: drop the fresh indexes, keep
		// the current epoch serving.
		closeIndexes(indexes, spillDirs)
		return err
	}

	// Phase 4 — replay the writes that landed during training against the
	// fresh indexes, then swap the epoch in. Both happen under writeMu so
	// no write can slip between replay and install.
	r.writeMu.Lock()
	rsp := sp.Child("replay")
	err = replayChangelog(engines, indexes, cl)
	rsp.End()
	if err != nil {
		r.writeMu.Unlock()
		closeIndexes(indexes, spillDirs)
		return err
	}
	r.state.Store(&repoState{
		epoch:     cl.epoch,
		trained:   true,
		engines:   engines,
		indexes:   indexes,
		spillDirs: spillDirs,
	})
	r.changelog = nil
	// Phase 5 — retire the previous epoch's indexes: close spill logs and
	// drop their now-unreferenced spill directories. In-flight searches
	// that loaded the old state only read its in-memory postings, so
	// closing the spill log under them is safe.
	closeIndexes(cur.indexes, cur.spillDirs)
	r.writeMu.Unlock()

	for _, eng := range engines {
		switch eng.Modality() {
		case ModalityImage:
			r.met.vocabWords.Set(int64(eng.CodebookSize()))
		case ModalityAudio:
			r.met.audioVocabWords.Set(int64(eng.CodebookSize()))
		}
	}
	r.leak.recordTrain(r.id)
	return nil
}

// trainingSample gathers up to capN encodings for one engine from the
// snapshot, in sorted id order for determinism.
func trainingSample(eng ModalityEngine, snap map[string]*storedObject, ids []string, capN int) []vec.BitVec {
	var sample []vec.BitVec
	for _, id := range ids {
		for _, e := range eng.TrainingSample(snap[id]) {
			if len(sample) >= capN {
				return sample
			}
			sample = append(sample, e)
		}
	}
	return sample
}

// buildIndexes creates one inverted index per engine for the given epoch and
// bulk-loads the snapshot into it. Shared between Train and snapshot
// restore. On error, indexes already built are closed.
func (r *Repository) buildIndexes(engines []ModalityEngine, epoch uint64, snap map[string]*storedObject, ids []string) ([]*index.Inverted, []string, error) {
	indexes := make([]*index.Inverted, len(engines))
	spillDirs := make([]string, len(engines))
	fail := func(err error) ([]*index.Inverted, []string, error) {
		closeIndexes(indexes, spillDirs)
		return nil, nil, err
	}
	for i, eng := range engines {
		opts := r.indexOptions(string(eng.Modality()), epoch)
		idx, err := index.New(opts)
		if err != nil {
			return fail(err)
		}
		indexes[i] = idx
		spillDirs[i] = opts.SpillDir
		batch := make([]index.BatchDoc, 0, len(ids))
		for _, id := range ids {
			if terms := eng.ExtractTerms(snap[id]); len(terms) > 0 {
				batch = append(batch, index.BatchDoc{Doc: index.DocID(id), Terms: terms})
			}
		}
		if err := idx.AddBatch(batch); err != nil {
			return fail(err)
		}
	}
	return indexes, spillDirs, nil
}

// replayChangelog applies the writes captured during off-lock training to
// the next epoch's indexes. Replay is idempotent (remove-then-add), so an
// object both present in the snapshot and logged converges to its logged
// version.
func replayChangelog(engines []ModalityEngine, indexes []*index.Inverted, cl *changelog) error {
	for _, rec := range cl.recs {
		if rec.epoch >= cl.epoch {
			// Stamped by a later generation than the one being built; can
			// only happen if install ordering is broken — skip defensively.
			continue
		}
		doc := index.DocID(rec.id)
		for _, idx := range indexes {
			if idx != nil {
				idx.Remove(doc)
			}
		}
		if rec.remove {
			continue
		}
		for i, eng := range engines {
			idx := indexes[i]
			if idx == nil {
				continue
			}
			terms := eng.ExtractTerms(rec.obj)
			if len(terms) == 0 {
				continue
			}
			if err := idx.Add(doc, terms); err != nil {
				return err
			}
		}
	}
	return nil
}

// closeIndexes closes an epoch's indexes and removes their per-epoch spill
// directories (best effort).
func closeIndexes(indexes []*index.Inverted, spillDirs []string) {
	for i, idx := range indexes {
		if idx == nil {
			continue
		}
		_ = idx.Close()
		if i < len(spillDirs) && spillDirs[i] != "" {
			_ = os.RemoveAll(spillDirs[i])
		}
	}
}

// indexOptions derives one index's options for an epoch. The spill
// directory is suffixed with the epoch so the next epoch's index never
// shares a spill log with the one still serving searches.
func (r *Repository) indexOptions(modality string, epoch uint64) index.Options {
	opts := r.opts.Index
	if opts.SpillDir != "" {
		opts.SpillDir = opts.SpillDir + "/" + r.id + "-" + modality + "-e" + strconv.FormatUint(epoch, 10)
	}
	return opts
}

// Search answers a multimodal query (CLOUD.Search, Algorithm 9): per
// modality, either a sub-linear index lookup (after training) or a linear
// ranked scan over stored encodings (before), then logarithmic ISR rank
// fusion across modalities and truncation to the top k.
func (r *Repository) Search(q *Query) ([]SearchHit, error) {
	return r.SearchWithFusionContext(context.Background(), q, fusion.LogISR)
}

// SearchContext is Search carrying the caller's context, so the fan-out
// lookup, fusion and collect spans join the request's distributed trace.
func (r *Repository) SearchContext(ctx context.Context, q *Query) ([]SearchHit, error) {
	return r.SearchWithFusionContext(ctx, q, fusion.LogISR)
}

// SearchWithFusion is Search with an explicit rank-fusion formula; the
// default (and the paper's choice) is logarithmic ISR. Exposed for the
// fusion ablation.
//
// The per-modality lookups fan out in parallel goroutines and join before
// fusion, so the search phase costs max(modality lookups), not their sum;
// the whole path is lock-free against the repository (epoch load + store
// shard reads only) and therefore never blocks on a concurrent Train.
func (r *Repository) SearchWithFusion(q *Query, method fusion.Method) ([]SearchHit, error) {
	return r.SearchWithFusionContext(context.Background(), q, method)
}

// SearchWithFusionContext is SearchWithFusion carrying the caller's context.
func (r *Repository) SearchWithFusionContext(ctx context.Context, q *Query, method fusion.Method) ([]SearchHit, error) {
	if q.K <= 0 {
		return nil, errors.New("core: query k must be positive")
	}
	if hook := searchStartHook; hook != nil {
		hook()
	}
	_, sp := obs.StartSpan(ctx, r.met.reg, "repo/search")
	defer sp.End()
	st := r.state.Load()

	depth := r.opts.FusionCandidates
	if depth <= 0 {
		depth = 10 * q.K
	}
	lists := make([][]index.Result, len(st.engines))
	active := make([]bool, len(st.engines))
	var wg sync.WaitGroup
	for i, eng := range st.engines {
		if !eng.InQuery(q) {
			continue
		}
		active[i] = true
		wg.Add(1)
		go func(i int, eng ModalityEngine) {
			defer wg.Done()
			csp := sp.Child(string(eng.Modality()) + "_lookup")
			defer csp.End()
			lists[i] = r.searchModality(st, i, eng, q, depth)
		}(i, eng)
	}
	wg.Wait()
	joined := make([][]index.Result, 0, len(lists))
	for i, l := range lists {
		if active[i] {
			joined = append(joined, l)
		}
	}
	fsp := sp.Child("fusion")
	fused := fusion.Fuse(method, joined, q.K)
	fsp.End()
	csp := sp.Child("collect")
	hits := make([]SearchHit, 0, len(fused))
	for _, res := range fused {
		obj, ok := r.objects.Get(string(res.Doc))
		if !ok {
			// Raced a remove against a not-yet-retired index entry: the hit
			// is dropped, and — deliberately — NOT recorded as an ID(d)
			// access, since nothing about it is returned to the caller.
			continue
		}
		r.leak.recordAccess(string(res.Doc))
		r.met.leakAccessReveals.Inc()
		hits = append(hits, SearchHit{
			ObjectID:   string(res.Doc),
			Owner:      obj.owner,
			Score:      res.Score,
			Ciphertext: obj.ciphertext,
		})
	}
	csp.End()
	r.met.leakSearchRepeats.Add(int64(r.leak.recordSearch(q)))
	r.met.leakSearchDistinct.Set(int64(r.leak.distinctSearchTokens()))
	return hits, nil
}

// searchModality runs one modality's lookup for the given epoch: the
// inverted index when the epoch is trained and the engine has its codebook,
// else the engine's linear ranked scan over the store.
func (r *Repository) searchModality(st *repoState, i int, eng ModalityEngine, q *Query, depth int) []index.Result {
	if st.trained && st.indexes[i] != nil && eng.Ready() {
		return st.indexes[i].Search(eng.QueryTerms(q), depth)
	}
	return eng.LinearSearch(q, r.objects, depth)
}

// MergeIndexes compacts the disk-spilled portions of the per-modality
// indexes (the background merge of §VI).
func (r *Repository) MergeIndexes() error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	st := r.state.Load()
	for _, idx := range st.indexes {
		if idx == nil {
			continue
		}
		if err := idx.Merge(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases index resources (spill logs) and the write-ahead log.
func (r *Repository) Close() error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	st := r.state.Load()
	var firstErr error
	for _, idx := range st.indexes {
		if idx == nil {
			continue
		}
		if err := idx.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if r.wal != nil {
		if err := r.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		r.wal = nil
	}
	return firstErr
}
