package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"mie/internal/cluster"
	"mie/internal/dpe"
	"mie/internal/fusion"
	"mie/internal/index"
	"mie/internal/obs"
	"mie/internal/vec"
)

// repoMetrics holds a repository's observability handles. Phase timings
// (train, index build, per-modality search, fusion) land in the process
// registry as phase_seconds{phase=repo/...} histograms — the cloud-side half
// of the paper's latency breakdowns — and the gauges track repository and
// codebook sizes.
type repoMetrics struct {
	reg             *obs.Registry
	objects         *obs.Gauge
	vocabWords      *obs.Gauge
	audioVocabWords *obs.Gauge
}

func newRepoMetrics(reg *obs.Registry, id string) *repoMetrics {
	return &repoMetrics{
		reg:             reg,
		objects:         reg.Gauge(obs.L("repo_objects", "repo", id)),
		vocabWords:      reg.Gauge(obs.L("repo_vocab_words", "repo", id)),
		audioVocabWords: reg.Gauge(obs.L("repo_audio_vocab_words", "repo", id)),
	}
}

// Common repository errors.
var (
	// ErrNotTrained is never returned by Search (which falls back to linear
	// scan) but is exposed for callers that want to require an index.
	ErrNotTrained = errors.New("core: repository not trained")
	// ErrNoObjects is returned by Train on an empty repository when the
	// image modality needs a codebook.
	ErrNoObjects = errors.New("core: nothing to train on")
	// ErrUnknownObject is returned by Get for absent ids.
	ErrUnknownObject = errors.New("core: unknown object")
)

// RepositoryOptions configures the server-side engine of one repository.
type RepositoryOptions struct {
	// Modalities the repository accepts; empty means both.
	Modalities []Modality
	// Vocab configures visual-word training: a flat k-means selects
	// Vocab.Words visual words (paper: 1000) and a lookup tree (paper:
	// branch 10, height 3) is built over them. Zero values take the
	// paper's shape.
	Vocab cluster.VocabParams
	// Index configures the per-modality inverted indexes (champion lists,
	// spill directory).
	Index index.Options
	// TrainingSampleCap bounds how many encodings feed k-means; 0 means
	// 20000. Training cost is the cloud's to pay, but tests want it tunable.
	TrainingSampleCap int
	// FusionCandidates is the per-modality candidate depth fed to rank
	// fusion before truncating to k; 0 means 10*k.
	FusionCandidates int
}

func (o *RepositoryOptions) setDefaults() {
	if len(o.Modalities) == 0 {
		o.Modalities = []Modality{ModalityText, ModalityImage, ModalityAudio}
	}
	if o.Vocab.Words == 0 {
		o.Vocab.Words = 1000
	}
	if o.Vocab.Tree.Branch == 0 {
		o.Vocab.Tree.Branch = 10
	}
	if o.Vocab.Tree.Height == 0 {
		o.Vocab.Tree.Height = 3
	}
	if o.TrainingSampleCap == 0 {
		o.TrainingSampleCap = 20000
	}
}

// SearchHit is one ranked result returned to the querying user: the
// encrypted object, its deterministic id and owner (the metadata pair of
// §III-A) and the fused relevance score.
type SearchHit struct {
	ObjectID   string
	Owner      string
	Score      float64
	Ciphertext []byte
}

// storedObject is the server-side record of one data object.
type storedObject struct {
	owner      string
	ciphertext []byte
	textTokens map[dpe.Token]uint64
	imageEncs  []vec.BitVec
	audioEncs  []vec.BitVec
}

// Repository is the untrusted server-side engine for one shared repository:
// it stores ciphertexts and DPE encodings, trains the visual-word codebook,
// maintains one inverted index per modality, and answers ranked multimodal
// queries. All methods are safe for concurrent use by multiple users, which
// is the multi-writer capability Figure 4 exercises.
type Repository struct {
	id   string
	opts RepositoryOptions
	met  *repoMetrics

	mu         sync.RWMutex
	objects    map[string]*storedObject
	trained    bool
	vocab      *cluster.Vocabulary[vec.BitVec]
	audioVocab *cluster.Vocabulary[vec.BitVec]
	textIdx    *index.Inverted
	imgIdx     *index.Inverted
	audioIdx   *index.Inverted
	leak       *Leakage
}

// NewRepository creates the server-side representation of a repository
// (CLOUD.CreateRepository of Algorithm 5).
func NewRepository(id string, opts RepositoryOptions) (*Repository, error) {
	if id == "" {
		return nil, errors.New("core: repository needs an id")
	}
	opts.setDefaults()
	r := &Repository{
		id:      id,
		opts:    opts,
		met:     newRepoMetrics(obs.Default(), id),
		objects: make(map[string]*storedObject),
		leak:    newLeakage(),
	}
	return r, nil
}

// ID returns the repository's deterministic identifier (setup leakage).
func (r *Repository) ID() string { return r.id }

// Leakage exposes the record of information patterns the server observed;
// tests assert against it and the bench harness reports it.
func (r *Repository) Leakage() *Leakage { return r.leak }

// Size returns the number of stored objects.
func (r *Repository) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.objects)
}

// IsTrained reports whether Train has completed.
func (r *Repository) IsTrained() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.trained
}

// VocabularySize returns the number of visual words after training (0
// before).
func (r *Repository) VocabularySize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.vocab == nil {
		return 0
	}
	return r.vocab.Size()
}

// AudioVocabularySize returns the number of audio words after training.
func (r *Repository) AudioVocabularySize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.audioVocab == nil {
		return 0
	}
	return r.audioVocab.Size()
}

// Update stores (or replaces) an encrypted object and its encodings
// (CLOUD.Update, Algorithm 7). If the repository is trained the object is
// indexed immediately; otherwise indexing happens at Train time.
func (r *Repository) Update(up *Update) error {
	if up.ObjectID == "" {
		return errors.New("core: update needs an object id")
	}
	sp := obs.StartSpan(r.met.reg, "repo/update")
	defer sp.End()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.objects[up.ObjectID]; exists {
		r.removeLocked(up.ObjectID)
	}
	obj := &storedObject{
		owner:      up.Owner,
		ciphertext: up.Ciphertext,
		textTokens: up.TextTokens,
		imageEncs:  up.ImageEncodings,
		audioEncs:  up.AudioEncodings,
	}
	r.objects[up.ObjectID] = obj
	r.met.objects.Set(int64(len(r.objects)))
	r.leak.recordUpdate(up)
	if r.trained {
		isp := sp.Child("index")
		err := r.indexLocked(up.ObjectID, obj)
		isp.End()
		return err
	}
	return nil
}

// Remove deletes an object and its index entries (CLOUD.Remove,
// Algorithm 8). Unknown ids are a no-op.
func (r *Repository) Remove(objectID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removeLocked(objectID)
	r.met.objects.Set(int64(len(r.objects)))
	r.leak.recordRemove(objectID)
}

func (r *Repository) removeLocked(objectID string) {
	if _, ok := r.objects[objectID]; !ok {
		return
	}
	delete(r.objects, objectID)
	if r.textIdx != nil {
		r.textIdx.Remove(index.DocID(objectID))
	}
	if r.imgIdx != nil {
		r.imgIdx.Remove(index.DocID(objectID))
	}
	if r.audioIdx != nil {
		r.audioIdx.Remove(index.DocID(objectID))
	}
}

// Get returns the stored ciphertext and owner of an object (the read path
// of the system model).
func (r *Repository) Get(objectID string) (ciphertext []byte, owner string, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	obj, ok := r.objects[objectID]
	if !ok {
		return nil, "", fmt.Errorf("%w: %s", ErrUnknownObject, objectID)
	}
	r.leak.recordAccess(objectID)
	return obj.ciphertext, obj.owner, nil
}

// Train runs the machine-learning step in the cloud (CLOUD.Train,
// Algorithm 6): flat k-means over the stored Dense-DPE encodings of each
// dense modality — in Hamming space, since that is what the encodings
// preserve — selects the codebook words, a lookup tree is built over them,
// and every stored object is (re)indexed. Sparse modalities need no
// training; their index is simply (re)built. Train may be invoked again
// later to retrain with different parameters.
func (r *Repository) Train() error {
	sp := obs.StartSpan(r.met.reg, "repo/train")
	defer sp.End()
	r.mu.Lock()
	defer r.mu.Unlock()

	// Deterministic sample order (sorted object ids) so retraining a given
	// repository always yields the same codebooks.
	ids := make([]string, 0, len(r.objects))
	for id := range r.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	sampleOf := func(pick func(*storedObject) []vec.BitVec) []vec.BitVec {
		var sample []vec.BitVec
		for _, id := range ids {
			for _, e := range pick(r.objects[id]) {
				if len(sample) >= r.opts.TrainingSampleCap {
					return sample
				}
				sample = append(sample, e)
			}
		}
		return sample
	}
	// Training is only *required* for dense media (paper §V); with no
	// encodings stored yet for a modality we skip its codebook and leave
	// its index dormant — a later Train call can build it once data exists.
	if r.hasModality(ModalityImage) {
		if sample := sampleOf(func(o *storedObject) []vec.BitVec { return o.imageEncs }); len(sample) > 0 {
			csp := sp.Child("image_codebook")
			vocab, err := r.trainDenseVocab(sample)
			csp.End()
			if err != nil {
				return fmt.Errorf("core: train image codebook: %w", err)
			}
			r.vocab = vocab
			r.met.vocabWords.Set(int64(vocab.Size()))
		}
	}
	if r.hasModality(ModalityAudio) {
		if sample := sampleOf(func(o *storedObject) []vec.BitVec { return o.audioEncs }); len(sample) > 0 {
			csp := sp.Child("audio_codebook")
			vocab, err := r.trainDenseVocab(sample)
			csp.End()
			if err != nil {
				return fmt.Errorf("core: train audio codebook: %w", err)
			}
			r.audioVocab = vocab
			r.met.audioVocabWords.Set(int64(vocab.Size()))
		}
	}

	bsp := sp.Child("build_indexes")
	err := r.buildIndexesLocked()
	bsp.End()
	if err != nil {
		return err
	}
	r.trained = true
	r.leak.recordTrain(r.id)
	return nil
}

// trainDenseVocab runs the Hamming-space flat clustering + lookup tree for
// one dense modality's encoding sample.
func (r *Repository) trainDenseVocab(sample []vec.BitVec) (*cluster.Vocabulary[vec.BitVec], error) {
	hamCluster := func(ps []vec.BitVec, k int, seed int64) ([]vec.BitVec, []int, error) {
		res, err := cluster.HammingKMeans(ps, k, cluster.Options{Seed: seed, MaxIter: r.opts.Vocab.MaxIter})
		if err != nil {
			return nil, nil, err
		}
		return res.Centroids, res.Assignments, nil
	}
	dist := func(a, b vec.BitVec) float64 { return float64(vec.Hamming(a, b)) }
	return cluster.TrainVocabulary(sample, r.opts.Vocab, hamCluster, dist)
}

// buildIndexesLocked (re)creates the per-modality inverted indexes and
// indexes every stored object; shared between Train and snapshot restore.
func (r *Repository) buildIndexesLocked() error {
	var err error
	if r.hasModality(ModalityText) {
		if r.textIdx, err = index.New(r.indexOptions("text")); err != nil {
			return err
		}
	}
	if r.hasModality(ModalityImage) {
		if r.imgIdx, err = index.New(r.indexOptions("image")); err != nil {
			return err
		}
	}
	if r.hasModality(ModalityAudio) {
		if r.audioIdx, err = index.New(r.indexOptions("audio")); err != nil {
			return err
		}
	}
	for id, obj := range r.objects {
		if err := r.indexLocked(id, obj); err != nil {
			return err
		}
	}
	return nil
}

func (r *Repository) indexOptions(modality string) index.Options {
	opts := r.opts.Index
	if opts.SpillDir != "" {
		opts.SpillDir = opts.SpillDir + "/" + r.id + "-" + modality
	}
	return opts
}

func (r *Repository) hasModality(m Modality) bool {
	for _, mm := range r.opts.Modalities {
		if mm == m {
			return true
		}
	}
	return false
}

// indexLocked inserts one object into the per-modality indexes.
func (r *Repository) indexLocked(id string, obj *storedObject) error {
	doc := index.DocID(id)
	if r.textIdx != nil && len(obj.textTokens) > 0 {
		terms := make(map[index.Term]uint64, len(obj.textTokens))
		for tok, freq := range obj.textTokens {
			terms[index.Term(tok.String())] = freq
		}
		if err := r.textIdx.Add(doc, terms); err != nil {
			return err
		}
	}
	if r.imgIdx != nil && len(obj.imageEncs) > 0 && r.vocab != nil {
		hist := r.vocab.QuantizeAll(obj.imageEncs)
		terms := make(map[index.Term]uint64, len(hist))
		for word, freq := range hist {
			terms[visualTerm(word)] = freq
		}
		if err := r.imgIdx.Add(doc, terms); err != nil {
			return err
		}
	}
	if r.audioIdx != nil && len(obj.audioEncs) > 0 && r.audioVocab != nil {
		hist := r.audioVocab.QuantizeAll(obj.audioEncs)
		terms := make(map[index.Term]uint64, len(hist))
		for word, freq := range hist {
			terms[audioTerm(word)] = freq
		}
		if err := r.audioIdx.Add(doc, terms); err != nil {
			return err
		}
	}
	return nil
}

func visualTerm(word int) index.Term {
	return index.Term("vw:" + strconv.Itoa(word))
}

func audioTerm(word int) index.Term {
	return index.Term("aw:" + strconv.Itoa(word))
}

// Search answers a multimodal query (CLOUD.Search, Algorithm 9): per
// modality, either a sub-linear index lookup (after training) or a linear
// ranked scan over stored encodings (before), then logarithmic ISR rank
// fusion across modalities and truncation to the top k.
func (r *Repository) Search(q *Query) ([]SearchHit, error) {
	return r.SearchWithFusion(q, fusion.LogISR)
}

// SearchWithFusion is Search with an explicit rank-fusion formula; the
// default (and the paper's choice) is logarithmic ISR. Exposed for the
// fusion ablation.
func (r *Repository) SearchWithFusion(q *Query, method fusion.Method) ([]SearchHit, error) {
	if q.K <= 0 {
		return nil, errors.New("core: query k must be positive")
	}
	sp := obs.StartSpan(r.met.reg, "repo/search")
	defer sp.End()
	r.mu.RLock()
	defer r.mu.RUnlock()

	depth := r.opts.FusionCandidates
	if depth <= 0 {
		depth = 10 * q.K
	}
	var lists [][]index.Result
	if len(q.TextTokens) > 0 && r.hasModality(ModalityText) {
		sp.Time("text_lookup", func() {
			lists = append(lists, r.searchTextLocked(q, depth))
		})
	}
	if len(q.ImageEncodings) > 0 && r.hasModality(ModalityImage) {
		sp.Time("image_lookup", func() {
			lists = append(lists, r.searchImageLocked(q, depth))
		})
	}
	if len(q.AudioEncodings) > 0 && r.hasModality(ModalityAudio) {
		sp.Time("audio_lookup", func() {
			lists = append(lists, r.searchAudioLocked(q, depth))
		})
	}
	fsp := sp.Child("fusion")
	fused := fusion.Fuse(method, lists, q.K)
	fsp.End()
	csp := sp.Child("collect")
	hits := make([]SearchHit, 0, len(fused))
	for _, res := range fused {
		obj, ok := r.objects[string(res.Doc)]
		if !ok {
			continue // racing remove; the snapshot index may be slightly stale
		}
		r.leak.recordAccess(string(res.Doc))
		hits = append(hits, SearchHit{
			ObjectID:   string(res.Doc),
			Owner:      obj.owner,
			Score:      res.Score,
			Ciphertext: obj.ciphertext,
		})
	}
	csp.End()
	r.leak.recordSearch(q)
	return hits, nil
}

func (r *Repository) searchTextLocked(q *Query, depth int) []index.Result {
	if r.trained && r.textIdx != nil {
		terms := make(map[index.Term]uint64, len(q.TextTokens))
		for tok, freq := range q.TextTokens {
			terms[index.Term(tok.String())] = freq
		}
		return r.textIdx.Search(terms, depth)
	}
	// Linear ranked scan: token-overlap TF scoring across all objects.
	scores := make(map[index.DocID]float64)
	for id, obj := range r.objects {
		var s float64
		for tok, qf := range q.TextTokens {
			if tf, ok := obj.textTokens[tok]; ok {
				s += float64(qf) * float64(tf)
			}
		}
		if s > 0 {
			scores[index.DocID(id)] = s
		}
	}
	return rankMap(scores, depth)
}

func (r *Repository) searchImageLocked(q *Query, depth int) []index.Result {
	if r.trained && r.imgIdx != nil && r.vocab != nil {
		hist := r.vocab.QuantizeAll(q.ImageEncodings)
		terms := make(map[index.Term]uint64, len(hist))
		for word, freq := range hist {
			terms[visualTerm(word)] = freq
		}
		return r.imgIdx.Search(terms, depth)
	}
	// Linear ranked scan over encodings: each query encoding votes for the
	// object holding its nearest stored encoding (by Hamming distance),
	// weighted by similarity.
	scores := make(map[index.DocID]float64)
	for id, obj := range r.objects {
		if len(obj.imageEncs) == 0 {
			continue
		}
		var s float64
		for _, qe := range q.ImageEncodings {
			best := 1.0
			for _, oe := range obj.imageEncs {
				if d := vec.NormHamming(qe, oe); d < best {
					best = d
				}
			}
			s += 1 - best
		}
		if s > 0 {
			scores[index.DocID(id)] = s
		}
	}
	return rankMap(scores, depth)
}

func (r *Repository) searchAudioLocked(q *Query, depth int) []index.Result {
	if r.trained && r.audioIdx != nil && r.audioVocab != nil {
		hist := r.audioVocab.QuantizeAll(q.AudioEncodings)
		terms := make(map[index.Term]uint64, len(hist))
		for word, freq := range hist {
			terms[audioTerm(word)] = freq
		}
		return r.audioIdx.Search(terms, depth)
	}
	// Linear fallback: nearest-encoding voting, as for images.
	scores := make(map[index.DocID]float64)
	for id, obj := range r.objects {
		if len(obj.audioEncs) == 0 {
			continue
		}
		var s float64
		for _, qe := range q.AudioEncodings {
			best := 1.0
			for _, oe := range obj.audioEncs {
				if d := vec.NormHamming(qe, oe); d < best {
					best = d
				}
			}
			s += 1 - best
		}
		if s > 0 {
			scores[index.DocID(id)] = s
		}
	}
	return rankMap(scores, depth)
}

func rankMap(scores map[index.DocID]float64, depth int) []index.Result {
	out := make([]index.Result, 0, len(scores))
	for d, s := range scores {
		out = append(out, index.Result{Doc: d, Score: s})
	}
	index.SortResults(out)
	if len(out) > depth {
		out = out[:depth]
	}
	return out
}

// MergeIndexes compacts the disk-spilled portions of the per-modality
// indexes (the background merge of §VI).
func (r *Repository) MergeIndexes() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.textIdx != nil {
		if err := r.textIdx.Merge(); err != nil {
			return err
		}
	}
	if r.imgIdx != nil {
		if err := r.imgIdx.Merge(); err != nil {
			return err
		}
	}
	if r.audioIdx != nil {
		return r.audioIdx.Merge()
	}
	return nil
}

// Close releases index resources (spill logs).
func (r *Repository) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.textIdx != nil {
		if err := r.textIdx.Close(); err != nil {
			return err
		}
	}
	if r.imgIdx != nil {
		if err := r.imgIdx.Close(); err != nil {
			return err
		}
	}
	if r.audioIdx != nil {
		return r.audioIdx.Close()
	}
	return nil
}
