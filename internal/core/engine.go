package core

import (
	"strconv"

	"mie/internal/ann"
	"mie/internal/cluster"
	"mie/internal/index"
	"mie/internal/store"
	"mie/internal/vec"
)

// ModalityEngine is the per-modality retrieval logic behind the repository:
// everything the engine needs to know about ONE media type — how its
// encodings become opaque index terms, what (if anything) must be trained,
// and how to answer a query without an index. The repository drives all
// modalities through this one interface, so adding a fourth media type means
// writing one engine, not another copy of the index/search/train plumbing.
//
// Engines are immutable: Train and Restore return NEW engines rather than
// mutating the receiver. That is what lets the repository train codebooks
// off-lock against a store snapshot while the previous engine generation
// keeps serving searches, then install the new generation with one atomic
// pointer swap.
type ModalityEngine interface {
	// Modality names the media type this engine serves.
	Modality() Modality
	// Ready reports whether ExtractTerms/QueryTerms are usable — always for
	// sparse modalities, only after a codebook exists for dense ones.
	Ready() bool
	// InQuery reports whether the query carries data for this modality.
	InQuery(q *Query) bool
	// TrainingSample returns the encodings one stored object contributes to
	// codebook training; nil for modalities that need no training.
	TrainingSample(obj *storedObject) []vec.BitVec
	// Train returns a new engine trained on sample. Engines with nothing to
	// train — sparse modalities, or a dense modality with an empty sample —
	// return themselves unchanged (a dense engine keeps any existing
	// codebook, so a later retrain can pick up data that arrived since).
	Train(sample []vec.BitVec) (ModalityEngine, error)
	// Refine returns a new engine whose trained state is warm-start refined
	// from only the delta sample (the incremental half of Train). ok=false
	// means the engine cannot refine — it has data to learn from but no
	// prior codebook — and the caller must fall back to a full Train.
	// Engines with nothing to refine (sparse modalities, empty delta) return
	// themselves unchanged with ok=true and zero drift.
	Refine(delta []vec.BitVec) (eng ModalityEngine, drift cluster.DriftReport, ok bool, err error)
	// ExtractTerms maps one stored object's encodings for this modality into
	// index terms; nil when the object carries nothing for this modality or
	// the engine is not Ready.
	ExtractTerms(obj *storedObject) map[index.Term]uint64
	// QueryTerms maps a query into index terms, mirroring ExtractTerms.
	QueryTerms(q *Query) map[index.Term]uint64
	// LinearSearch is the pre-training fallback: a ranked scan over the
	// whole store (Algorithm 9's linear branch).
	LinearSearch(q *Query, objects store.Store[*storedObject], depth int) []index.Result
	// SnapshotState returns the trained codebook words for serialization;
	// nil when the engine holds no trained state.
	SnapshotState() []vec.BitVec
	// Restore returns a new engine whose trained state is rebuilt from
	// snapshot words (the lookup tree is re-derived deterministically).
	Restore(words []vec.BitVec) (ModalityEngine, error)
	// CodebookSize returns the number of trained words (0 when untrained or
	// the modality needs no codebook).
	CodebookSize() int
}

// newEngines builds the engine set for the enabled modalities, in the fixed
// text, image, audio order (which is also the rank-fusion list order).
func newEngines(opts RepositoryOptions) []ModalityEngine {
	var engines []ModalityEngine
	for _, m := range []Modality{ModalityText, ModalityImage, ModalityAudio} {
		if !optsHaveModality(opts, m) {
			continue
		}
		switch m {
		case ModalityText:
			engines = append(engines, textEngine{})
		case ModalityImage:
			engines = append(engines, &denseEngine{
				modality:  ModalityImage,
				prefix:    "vw:",
				encs:      func(o *storedObject) []vec.BitVec { return o.imageEncs },
				queryEncs: func(q *Query) []vec.BitVec { return q.ImageEncodings },
				params:    opts.Vocab,
				annOpts:   opts.ANN,
			})
		case ModalityAudio:
			engines = append(engines, &denseEngine{
				modality:  ModalityAudio,
				prefix:    "aw:",
				encs:      func(o *storedObject) []vec.BitVec { return o.audioEncs },
				queryEncs: func(q *Query) []vec.BitVec { return q.AudioEncodings },
				params:    opts.Vocab,
				annOpts:   opts.ANN,
			})
		}
	}
	return engines
}

func optsHaveModality(opts RepositoryOptions, m Modality) bool {
	for _, mm := range opts.Modalities {
		if mm == m {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Sparse (text) engine: Sparse-DPE tokens ARE the index terms; nothing to
// train (threshold t = 0, equality only).

type textEngine struct{}

func (textEngine) Modality() Modality                           { return ModalityText }
func (textEngine) Ready() bool                                  { return true }
func (textEngine) InQuery(q *Query) bool                        { return len(q.TextTokens) > 0 }
func (textEngine) TrainingSample(*storedObject) []vec.BitVec    { return nil }
func (e textEngine) Train([]vec.BitVec) (ModalityEngine, error) { return e, nil }
func (textEngine) SnapshotState() []vec.BitVec                  { return nil }
func (e textEngine) Refine([]vec.BitVec) (ModalityEngine, cluster.DriftReport, bool, error) {
	return e, cluster.DriftReport{}, true, nil
}
func (e textEngine) Restore([]vec.BitVec) (ModalityEngine, error) { return e, nil }
func (textEngine) CodebookSize() int                              { return 0 }

func (textEngine) ExtractTerms(obj *storedObject) map[index.Term]uint64 {
	if len(obj.textTokens) == 0 {
		return nil
	}
	terms := make(map[index.Term]uint64, len(obj.textTokens))
	for tok, freq := range obj.textTokens {
		terms[index.Term(tok.String())] = freq
	}
	return terms
}

func (textEngine) QueryTerms(q *Query) map[index.Term]uint64 {
	if len(q.TextTokens) == 0 {
		return nil
	}
	terms := make(map[index.Term]uint64, len(q.TextTokens))
	for tok, freq := range q.TextTokens {
		terms[index.Term(tok.String())] = freq
	}
	return terms
}

// LinearSearch is the pre-training fallback: token-overlap TF scoring.
func (textEngine) LinearSearch(q *Query, objects store.Store[*storedObject], depth int) []index.Result {
	scores := make(map[index.DocID]float64)
	objects.Range(func(id string, obj *storedObject) bool {
		var s float64
		for tok, qf := range q.TextTokens {
			if tf, ok := obj.textTokens[tok]; ok {
				s += float64(qf) * float64(tf)
			}
		}
		if s > 0 {
			scores[index.DocID(id)] = s
		}
		return true
	})
	return rankMap(scores, depth)
}

// ---------------------------------------------------------------------------
// Dense engine: one implementation serves every dense modality (image,
// audio, and any future media type), parameterized by its term prefix and
// encoding accessors. This is the code that used to exist three times over.

type denseEngine struct {
	modality  Modality
	prefix    string
	encs      func(*storedObject) []vec.BitVec
	queryEncs func(*Query) []vec.BitVec
	params    cluster.VocabParams
	annOpts   ANNOptions
	vocab     *cluster.Vocabulary[vec.BitVec] // nil until trained
	wordANN   *ann.Index                      // nil unless the codebook crosses MinWords
}

func (e *denseEngine) Modality() Modality { return e.modality }
func (e *denseEngine) Ready() bool        { return e.vocab != nil }
func (e *denseEngine) InQuery(q *Query) bool {
	return len(e.queryEncs(q)) > 0
}
func (e *denseEngine) TrainingSample(obj *storedObject) []vec.BitVec {
	return e.encs(obj)
}
func (e *denseEngine) CodebookSize() int {
	if e.vocab == nil {
		return 0
	}
	return e.vocab.Size()
}

// clusterFns returns the Hamming-space clustering and distance functions the
// vocabulary construction runs over — DPE encodings preserve plaintext
// distance as Hamming distance, so that is the space k-means must work in.
func (e *denseEngine) clusterFns() (cluster.Clusterer[vec.BitVec], func(a, b vec.BitVec) float64) {
	hamCluster := func(ps []vec.BitVec, k int, seed int64) ([]vec.BitVec, []int, error) {
		res, err := cluster.HammingKMeans(ps, k, cluster.Options{Seed: seed, MaxIter: e.params.MaxIter})
		if err != nil {
			return nil, nil, err
		}
		return res.Centroids, res.Assignments, nil
	}
	dist := func(a, b vec.BitVec) float64 { return float64(vec.Hamming(a, b)) }
	return hamCluster, dist
}

// Train runs flat k-means over the sample and builds the lookup tree. An
// empty sample keeps the engine as-is (existing codebook included) so the
// modality stays dormant until data exists — the retrain path of Train.
func (e *denseEngine) Train(sample []vec.BitVec) (ModalityEngine, error) {
	if len(sample) == 0 {
		return e, nil
	}
	hamCluster, dist := e.clusterFns()
	vocab, err := cluster.TrainVocabulary(sample, e.params, hamCluster, dist)
	if err != nil {
		return nil, err
	}
	out := *e
	out.vocab = vocab
	out.wordANN = out.buildWordANN()
	return &out, nil
}

// Refine warm-starts mini-batch k-means from the current codebook words and
// refines them against only the delta sample; the lookup tree is re-derived
// deterministically from the refined words, exactly as Restore does. Without
// a prior codebook refinement is impossible (ok=false): the caller falls
// back to a full Train. An empty delta keeps the engine unchanged.
func (e *denseEngine) Refine(delta []vec.BitVec) (ModalityEngine, cluster.DriftReport, bool, error) {
	if len(delta) == 0 {
		return e, cluster.DriftReport{}, true, nil
	}
	if e.vocab == nil {
		return e, cluster.DriftReport{}, false, nil
	}
	res, err := cluster.RefineHammingKMeans(e.vocab.Words(), delta, cluster.RefineOptions{})
	if err != nil {
		return nil, cluster.DriftReport{}, false, err
	}
	hamCluster, dist := e.clusterFns()
	vocab, err := cluster.NewVocabularyFromWords(res.Centroids, e.params.Tree, hamCluster, dist)
	if err != nil {
		return nil, cluster.DriftReport{}, false, err
	}
	out := *e
	out.vocab = vocab
	out.wordANN = out.buildWordANN()
	return &out, res.Drift, true, nil
}

func (e *denseEngine) term(word int) index.Term {
	return index.Term(e.prefix + strconv.Itoa(word))
}

func (e *denseEngine) histTerms(encs []vec.BitVec) map[index.Term]uint64 {
	if e.vocab == nil || len(encs) == 0 {
		return nil
	}
	if e.wordANN == nil {
		hist := e.vocab.QuantizeAll(encs)
		terms := make(map[index.Term]uint64, len(hist))
		for word, freq := range hist {
			terms[e.term(word)] = freq
		}
		return terms
	}
	terms := make(map[index.Term]uint64)
	for _, enc := range encs {
		terms[e.term(e.quantize(enc))]++
	}
	return terms
}

// buildWordANN indexes the codebook words for approximate quantization, one
// word per key so candidate slots double as word indexes. Small codebooks
// (below ANNOptions.MinWords) quantize exactly through the vocabulary's own
// lookup tree; only corpora large enough for tree descent or scanning to
// matter pay the approximation.
func (e *denseEngine) buildWordANN() *ann.Index {
	if e.vocab == nil || e.annOpts.Disable || e.vocab.Size() < e.annOpts.MinWords {
		return nil
	}
	ix := ann.New(ann.Options{
		Tables: e.annOpts.Tables,
		Bits:   e.annOpts.Bits,
		Probes: e.annOpts.Probes,
		Seed:   e.annOpts.Seed,
	})
	for i, w := range e.vocab.Words() {
		if err := ix.AddAll(strconv.Itoa(i), []vec.BitVec{w}); err != nil {
			return nil
		}
	}
	return ix
}

// quantize maps one encoding to its (approximately) nearest codebook word.
// With a word ANN the candidates arrive in ascending slot order and the
// strict < keeps the lowest word on distance ties — the same tie-break the
// vocabulary's exact scan uses.
func (e *denseEngine) quantize(enc vec.BitVec) int {
	if e.wordANN != nil {
		if cands, _ := e.wordANN.Probe(enc); len(cands) > 0 {
			best := cands[0]
			for _, c := range cands[1:] {
				if c.Dist < best.Dist {
					best = c
				}
			}
			return best.Slot
		}
	}
	return e.vocab.Quantize(enc)
}

func (e *denseEngine) ExtractTerms(obj *storedObject) map[index.Term]uint64 {
	return e.histTerms(e.encs(obj))
}

func (e *denseEngine) QueryTerms(q *Query) map[index.Term]uint64 {
	return e.histTerms(e.queryEncs(q))
}

// LinearSearch is the pre-codebook fallback: each query encoding votes for
// the object holding its nearest stored encoding (by Hamming distance),
// weighted by similarity.
func (e *denseEngine) LinearSearch(q *Query, objects store.Store[*storedObject], depth int) []index.Result {
	qEncs := e.queryEncs(q)
	scores := make(map[index.DocID]float64)
	objects.Range(func(id string, obj *storedObject) bool {
		oEncs := e.encs(obj)
		if len(oEncs) == 0 {
			return true
		}
		var s float64
		for _, qe := range qEncs {
			best := 1.0
			for _, oe := range oEncs {
				if d := vec.NormHamming(qe, oe); d < best {
					best = d
				}
			}
			s += 1 - best
		}
		if s > 0 {
			scores[index.DocID(id)] = s
		}
		return true
	})
	return rankMap(scores, depth)
}

// rankMap turns a linear-scan score map into a sorted, depth-truncated
// result list through the shared bounded-heap selection — O(n log depth)
// instead of materializing and sorting the whole map.
func rankMap(scores map[index.DocID]float64, depth int) []index.Result {
	return index.TopK(scores, depth)
}

// annSearch is LinearSearch routed through an ANN candidate index: each query
// encoding probes for candidates, the per-object minimum distance becomes the
// same 1 - d/n similarity vote the exact scan computes, and the votes
// accumulate in query-encoding order. Under an exhaustive probe budget the
// candidate set covers every live code, so the scores — and the TopK ranking
// built from them — are bit-identical to LinearSearch.
func (e *denseEngine) annSearch(q *Query, idx *ann.Index, depth int) ([]index.Result, ann.ProbeStats) {
	n := idx.CodeBits()
	if n == 0 {
		return nil, ann.ProbeStats{}
	}
	scores := make(map[index.DocID]float64)
	var total ann.ProbeStats
	for _, qe := range e.queryEncs(q) {
		cands, st := idx.Probe(qe)
		total.Probes += st.Probes
		total.Candidates += st.Candidates
		best := make(map[index.DocID]int, len(cands))
		for _, c := range cands {
			id := index.DocID(c.Key)
			if d, ok := best[id]; !ok || c.Dist < d {
				best[id] = c.Dist
			}
		}
		for id, d := range best {
			scores[id] += 1 - float64(d)/float64(n)
		}
	}
	return index.TopK(scores, depth), total
}

func (e *denseEngine) SnapshotState() []vec.BitVec {
	if e.vocab == nil {
		return nil
	}
	return e.vocab.Words()
}

// Restore rebuilds the codebook from serialized words; the lookup tree is
// re-derived deterministically, so post-restore quantization matches the
// pre-snapshot engine exactly.
func (e *denseEngine) Restore(words []vec.BitVec) (ModalityEngine, error) {
	if len(words) == 0 {
		return e, nil
	}
	hamCluster, dist := e.clusterFns()
	vocab, err := cluster.NewVocabularyFromWords(words, e.params.Tree, hamCluster, dist)
	if err != nil {
		return nil, err
	}
	out := *e
	out.vocab = vocab
	out.wordANN = out.buildWordANN()
	return &out, nil
}
