package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mie/internal/cluster"
	"mie/internal/crypto"
	"mie/internal/dpe"
	"mie/internal/imaging"
	"mie/internal/index"
)

func testRepoKey(b byte) RepositoryKey {
	var k crypto.Key
	for i := range k {
		k[i] = b
	}
	return RepositoryKey{Master: k}
}

func testDataKey(b byte) crypto.Key {
	var k crypto.Key
	for i := range k {
		k[i] = b + 100
	}
	return k
}

// testClient uses a small Dense-DPE and a single 16px pyramid scale so tests
// stay fast.
func testClient(t *testing.T) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		Key:     testRepoKey(1),
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 256, Threshold: 0.5},
		Pyramid: imaging.PyramidParams{Scales: []int{16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// classImage produces a 32x32 image from one of nClasses base patterns with
// small per-instance noise, so images of a class are mutually similar.
func classImage(class int, instance int64) *imaging.Image {
	base := rand.New(rand.NewSource(int64(class) * 1000))
	noise := rand.New(rand.NewSource(instance + int64(class)*7919 + 1))
	im, err := imaging.NewImage(32, 32)
	if err != nil {
		panic(err) // impossible: fixed valid dimensions
	}
	for i := range im.Pix {
		im.Pix[i] = base.Float64()*0.9 + noise.Float64()*0.1
	}
	return im
}

func testObject(class int, n int) *Object {
	topics := []string{
		"beach sand ocean waves sunny holiday",
		"mountain snow hiking trail peaks climbing",
		"city skyline buildings night lights urban",
	}
	return &Object{
		ID:    fmt.Sprintf("obj-c%d-%d", class, n),
		Owner: "user1",
		Text:  topics[class%len(topics)],
		Image: classImage(class, int64(n)),
	}
}

func smallRepoOptions(string) RepositoryOptions {
	return RepositoryOptions{
		Vocab: cluster.VocabParams{
			Words:   20,
			Tree:    cluster.TreeParams{Branch: 3, Height: 2, Seed: 1},
			Seed:    1,
			MaxIter: 10,
		},
	}
}

func TestPrepareUpdateValidation(t *testing.T) {
	c := testClient(t)
	if _, err := c.PrepareUpdate(&Object{Text: "x"}, testDataKey(1)); err == nil {
		t.Error("expected error for missing ID")
	}
	if _, err := c.PrepareUpdate(&Object{ID: "a"}, testDataKey(1)); !errors.Is(err, ErrEmptyObject) {
		t.Errorf("err = %v, want ErrEmptyObject", err)
	}
}

func TestPrepareQueryValidation(t *testing.T) {
	c := testClient(t)
	if _, err := c.PrepareQuery(&Object{Text: "x"}, 0); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := c.PrepareQuery(&Object{}, 3); !errors.Is(err, ErrEmptyObject) {
		t.Errorf("err = %v, want ErrEmptyObject", err)
	}
}

func TestPrepareUpdateShape(t *testing.T) {
	c := testClient(t)
	obj := testObject(0, 1)
	up, err := c.PrepareUpdate(obj, testDataKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if up.ObjectID != obj.ID || up.Owner != obj.Owner {
		t.Error("identity fields not propagated")
	}
	if len(up.Ciphertext) == 0 {
		t.Error("missing ciphertext")
	}
	if len(up.TextTokens) == 0 {
		t.Error("missing text tokens")
	}
	wantDescs := len(imaging.DensePyramid(32, 32, imaging.PyramidParams{Scales: []int{16}}))
	if len(up.ImageEncodings) != wantDescs {
		t.Errorf("got %d encodings, want %d", len(up.ImageEncodings), wantDescs)
	}
}

func TestUpdateTokensDeterministicAcrossClients(t *testing.T) {
	// Two clients sharing the repository key must produce identical tokens
	// — that is what lets multiple users write to one shared index.
	c1 := testClient(t)
	c2, err := NewClient(ClientConfig{
		Key:     testRepoKey(1),
		Dense:   dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 256, Threshold: 0.5},
		Pyramid: imaging.PyramidParams{Scales: []int{16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := testObject(1, 2)
	u1, err := c1.PrepareUpdate(obj, testDataKey(1))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := c2.PrepareUpdate(obj, testDataKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(u1.TextTokens) != len(u2.TextTokens) {
		t.Fatal("token sets differ in size")
	}
	for tok, f := range u1.TextTokens {
		if u2.TextTokens[tok] != f {
			t.Fatalf("token %s freq %d vs %d", tok, f, u2.TextTokens[tok])
		}
	}
	for i := range u1.ImageEncodings {
		if !u1.ImageEncodings[i].Equal(u2.ImageEncodings[i]) {
			t.Fatalf("encoding %d differs across clients", i)
		}
	}
}

func TestObjectRoundTrip(t *testing.T) {
	c := testClient(t)
	obj := testObject(2, 3)
	dk := testDataKey(2)
	up, err := c.PrepareUpdate(obj, dk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptObject(up.Ciphertext, dk)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != obj.ID || got.Text != obj.Text {
		t.Error("decrypted object differs")
	}
	if got.Image == nil || got.Image.W != obj.Image.W {
		t.Error("decrypted image differs")
	}
	// Wrong key must not decrypt.
	if _, err := DecryptObject(up.Ciphertext, testDataKey(9)); err == nil {
		t.Error("wrong data key decrypted the object")
	}
}

func TestModalities(t *testing.T) {
	o := &Object{ID: "x", Text: "hi"}
	if ms := o.Modalities(); len(ms) != 1 || ms[0] != ModalityText {
		t.Errorf("Modalities = %v", ms)
	}
	o.Image = classImage(0, 1)
	if ms := o.Modalities(); len(ms) != 2 {
		t.Errorf("Modalities = %v", ms)
	}
}

// fillRepo uploads n objects per class.
func fillRepo(t *testing.T, c *Client, r *Repository, perClass, classes int) {
	t.Helper()
	for cls := 0; cls < classes; cls++ {
		for i := 0; i < perClass; i++ {
			up, err := c.PrepareUpdate(testObject(cls, i), testDataKey(3))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Update(up); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRepositoryLinearSearchBeforeTraining(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("repo1", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 5, 3)
	if r.IsTrained() {
		t.Fatal("repository claims trained before Train")
	}
	q, err := c.PrepareQuery(testObject(1, 99), 5)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("linear search returned nothing")
	}
	// Majority of top hits should be class 1.
	sameClass := 0
	for _, h := range hits {
		var cls, n int
		if _, err := fmt.Sscanf(h.ObjectID, "obj-c%d-%d", &cls, &n); err == nil && cls == 1 {
			sameClass++
		}
	}
	if sameClass < 3 {
		t.Errorf("only %d/%d top hits from the query's class: %+v", sameClass, len(hits), hits)
	}
}

func TestRepositoryTrainedSearch(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("repo2", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 6, 3)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if !r.IsTrained() {
		t.Fatal("not trained after Train")
	}
	if r.VocabularySize() == 0 {
		t.Fatal("empty vocabulary after training")
	}
	q, err := c.PrepareQuery(testObject(2, 50), 5)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("trained search returned nothing")
	}
	sameClass := 0
	for _, h := range hits {
		var cls, n int
		if _, err := fmt.Sscanf(h.ObjectID, "obj-c%d-%d", &cls, &n); err == nil && cls == 2 {
			sameClass++
		}
	}
	if sameClass < 3 {
		t.Errorf("only %d/%d trained-search hits from the query's class: %+v", sameClass, len(hits), hits)
	}
}

func TestUpdateAfterTrainingIsIndexed(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("repo3", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 4, 2)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	// A brand-new object with a distinctive keyword arrives post-training.
	novel := &Object{ID: "late", Owner: "user2", Text: "zanzibar spice festival unique"}
	up, err := c.PrepareUpdate(novel, testDataKey(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); err != nil {
		t.Fatal(err)
	}
	q, err := c.PrepareQuery(&Object{ID: "q", Text: "zanzibar festival"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ObjectID != "late" {
		t.Errorf("dynamically added object not retrievable: %+v", hits)
	}
	if hits[0].Owner != "user2" {
		t.Errorf("owner metadata = %q, want user2", hits[0].Owner)
	}
}

func TestRemove(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("repo4", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 3, 2)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	victim := "obj-c0-1"
	r.Remove(victim)
	if r.Size() != 5 {
		t.Errorf("Size = %d, want 5", r.Size())
	}
	if _, _, err := r.Get(victim); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("Get removed: err = %v", err)
	}
	q, err := c.PrepareQuery(testObject(0, 77), 10)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.ObjectID == victim {
			t.Error("removed object surfaced in search")
		}
	}
	r.Remove("no-such-object") // no-op
}

func TestUpdateReplacesExisting(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("repo5", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 3, 2)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	// Replace obj-c0-0's content entirely.
	newVersion := &Object{ID: "obj-c0-0", Owner: "user1", Text: "quetzal rainforest bird"}
	up, err := c.PrepareUpdate(newVersion, testDataKey(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 6 {
		t.Errorf("Size = %d, want 6 after in-place update", r.Size())
	}
	q, err := c.PrepareQuery(&Object{ID: "q", Text: "quetzal"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ObjectID != "obj-c0-0" {
		t.Errorf("updated content not searchable: %+v", hits)
	}
}

func TestTrainEmptyRepository(t *testing.T) {
	// Training with no dense data is legal (sparse modalities need none);
	// the codebook stays dormant until a later Train finds image encodings.
	r, err := NewRepository("empty", RepositoryOptions{Vocab: cluster.VocabParams{Words: 8, Tree: cluster.TreeParams{Branch: 2, Height: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Errorf("empty train: %v", err)
	}
	if r.VocabularySize() != 0 {
		t.Errorf("vocabulary = %d without any image data", r.VocabularySize())
	}
	// A text-only repository trains fine when empty (no codebook needed).
	rt, err := NewRepository("textonly", RepositoryOptions{Modalities: []Modality{ModalityText}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Train(); err != nil {
		t.Errorf("text-only train: %v", err)
	}
}

func TestRetrainBuildsCodebookOnceImagesArrive(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("retrain", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	// Train with text only.
	up, err := c.PrepareUpdate(&Object{ID: "t1", Text: "text only start"}, testDataKey(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); err != nil {
		t.Fatal(err)
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if r.VocabularySize() != 0 {
		t.Fatalf("unexpected vocabulary %d", r.VocabularySize())
	}
	// Images arrive; a second Train builds the codebook (the paper allows
	// invoking Train repeatedly with different parameters).
	fillRepo(t, c, r, 3, 2)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if r.VocabularySize() == 0 {
		t.Error("retrain did not build a codebook")
	}
	q, err := c.PrepareQuery(&Object{ID: "q", Image: classImage(0, 44)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("image search found nothing after retrain")
	}
}

func TestSearchSingleModalityQueries(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("repo6", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 4, 3)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	// Text-only query.
	qt, err := c.PrepareQuery(&Object{ID: "q", Text: "mountain snow hiking"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(qt)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("text-only query found nothing")
	}
	// Image-only query.
	qi, err := c.PrepareQuery(&Object{ID: "q2", Image: classImage(0, 123)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits, err = r.Search(qi)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("image-only query found nothing")
	}
}

func TestLeakageProfile(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("repo7", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	obj := &Object{ID: "o1", Owner: "u", Text: "sunset sunset sunset beach"}
	up, err := c.PrepareUpdate(obj, testDataKey(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); err != nil {
		t.Fatal(err)
	}
	// Table I: MIE leaks ID(w) and freq(w) at *update* time.
	sparse := dpe.NewSparse(crypto.DeriveKey(testRepoKey(1).Master, "rk2"))
	sunsetTok := sparse.Encode("sunset")
	if got := r.Leakage().UpdateTokenFreq(sunsetTok); got != 3 {
		t.Errorf("update leaked freq %d for 'sunset' token, want 3", got)
	}
	if r.Leakage().DistinctUpdateTokens() == 0 {
		t.Error("no update tokens recorded")
	}
	// Search leaks ID(w) and ID(d).
	q, err := c.PrepareQuery(&Object{ID: "q", Text: "sunset"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Search(q); err != nil {
		t.Fatal(err)
	}
	if got := r.Leakage().SearchTokenCount(sunsetTok); got != 1 {
		t.Errorf("search token count = %d, want 1", got)
	}
	if got := r.Leakage().AccessCount("o1"); got != 1 {
		t.Errorf("access count = %d, want 1", got)
	}
	u, rm, s, tr := r.Leakage().Ops()
	if u != 1 || rm != 0 || s != 1 || tr != 0 {
		t.Errorf("ops = (%d,%d,%d,%d)", u, rm, s, tr)
	}
}

func TestConcurrentMultiUserUpdates(t *testing.T) {
	// The Figure 4 scenario: multiple writers make independent progress on
	// one repository with no client-side shared state.
	c := testClient(t)
	r, err := NewRepository("repo8", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 3, 2)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for u := 0; u < 4; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				obj := &Object{
					ID:    fmt.Sprintf("user%d-obj%d", u, i),
					Owner: fmt.Sprintf("user%d", u),
					Text:  fmt.Sprintf("document number %d from writer %d about topic%d", i, u, i%3),
				}
				up, err := c.PrepareUpdate(obj, testDataKey(6))
				if err != nil {
					errs <- err
					return
				}
				if err := r.Update(up); err != nil {
					errs <- err
					return
				}
				q, err := c.PrepareQuery(&Object{ID: "q", Text: "document topic1"}, 3)
				if err != nil {
					errs <- err
					return
				}
				if _, err := r.Search(q); err != nil {
					errs <- err
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.Size() != 46 {
		t.Errorf("Size = %d, want 46", r.Size())
	}
}

func TestServiceLifecycle(t *testing.T) {
	s := openMem(t)
	if _, err := s.CreateRepository("r1", RepositoryOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRepository("r1", RepositoryOptions{}); !errors.Is(err, ErrRepoExists) {
		t.Errorf("duplicate create: err = %v", err)
	}
	if _, err := s.Repository("r1"); err != nil {
		t.Errorf("lookup: %v", err)
	}
	if _, err := s.Repository("nope"); !errors.Is(err, ErrRepoNotFound) {
		t.Errorf("missing lookup: err = %v", err)
	}
	if got := s.Repositories(); len(got) != 1 || got[0] != "r1" {
		t.Errorf("Repositories = %v", got)
	}
	if err := s.DropRepository("r1"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropRepository("r1"); !errors.Is(err, ErrRepoNotFound) {
		t.Errorf("double drop: err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchValidation(t *testing.T) {
	r, err := NewRepository("repo9", RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Search(&Query{K: 0}); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestRepositoryValidation(t *testing.T) {
	if _, err := NewRepository("", RepositoryOptions{}); err == nil {
		t.Error("expected error for empty id")
	}
	if _, err := NewRepository("x", RepositoryOptions{}); err != nil {
		t.Errorf("valid repo: %v", err)
	}
}

func TestRepositoryWithChampionSpill(t *testing.T) {
	// Exercise the §VI scalability path end-to-end: champion-bounded
	// indexes with disk spill, search correctness, and background merge.
	c := testClient(t)
	opts := smallRepoOptions("")
	opts.Index = index.Options{ChampionSize: 3, SpillDir: t.TempDir()}
	r, err := NewRepository("spilled", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := r.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	// Many docs share a hot keyword with increasing frequency, plus decoys
	// without it (so the hot keyword's idf stays positive).
	for i := 0; i < 12; i++ {
		textBody := "hotword"
		for j := 0; j < i; j++ {
			textBody += " hotword"
		}
		obj := &Object{ID: fmt.Sprintf("hot-%02d", i), Owner: "u", Text: textBody + " filler" + fmt.Sprint(i)}
		up, err := c.PrepareUpdate(obj, testDataKey(11))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		obj := &Object{ID: fmt.Sprintf("cold-%d", i), Owner: "u", Text: "unrelated quiet content " + fmt.Sprint(i)}
		up, err := c.PrepareUpdate(obj, testDataKey(11))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	q, err := c.PrepareQuery(&Object{ID: "q", Text: "hotword"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("got %d hits", len(hits))
	}
	// Champions must be the highest-frequency docs.
	if hits[0].ObjectID != "hot-11" || hits[1].ObjectID != "hot-10" {
		t.Errorf("champion order wrong: %+v", hits)
	}
	// Remove a spilled doc and merge: no stale postings resurface.
	r.Remove("hot-00")
	if err := r.MergeIndexes(); err != nil {
		t.Fatal(err)
	}
	q2, err := c.PrepareQuery(&Object{ID: "q2", Text: "hotword"}, 20)
	if err != nil {
		t.Fatal(err)
	}
	hits, err = r.Search(q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.ObjectID == "hot-00" {
			t.Error("removed doc resurfaced after merge")
		}
	}
}
