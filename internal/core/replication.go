package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mie/internal/wal"
)

// ReplicationTap observes a service's durable mutation stream so a
// replication layer (internal/replica) can ship acknowledged WAL records to
// follower nodes. Every callback fires on the mutating goroutine with the
// repository's write lock held — implementations must be fast and must not
// call back into the repository.
//
// MutationLogged delivers the exact payload that was appended to the
// write-ahead log, after the append succeeded: the stream of MutationLogged
// calls for one repository is byte-identical to its durable log, in order,
// so a follower that applies them through the recovery path converges on
// the leader's state.
type ReplicationTap interface {
	// RepoCreated fires when a repository enters the catalog (creation, or
	// existing repositories at SetReplicationTap time).
	RepoCreated(id string, opts RepositoryOptions)
	// RepoDropped fires when a repository leaves the catalog.
	RepoDropped(id string)
	// MutationLogged fires after one WAL record was durably appended.
	MutationLogged(repoID string, payload []byte)
	// EpochInstalled fires after a Train installed a new epoch. Trained
	// state (codebooks, re-quantized postings) is not in the WAL, so the
	// replication layer must re-transfer a snapshot past this point.
	EpochInstalled(repoID string, epoch uint64)
}

// SetReplicationTap attaches tap to the service and to every repository it
// currently hosts, replaying the existing catalog through RepoCreated so
// the tap discovers repositories that predate it. Call it once, before the
// service starts serving requests; passing nil is a no-op.
func (s *Service) SetReplicationTap(tap ReplicationTap) {
	if tap == nil {
		return
	}
	s.tap = tap
	for _, id := range s.Repositories() {
		repo, release, err := s.Acquire(id)
		if err != nil {
			continue // dropped concurrently
		}
		repo.setTap(tap)
		tap.RepoCreated(id, repo.Options())
		release()
	}
}

// Durable reports whether the service persists to disk. Followers require a
// durable service: replicated records are re-appended to the follower's own
// WAL, so its acknowledged cursor survives restarts.
func (s *Service) Durable() bool { return s.durable != nil }

// setTap hands the repository its service's replication tap. Like
// setGovernor it is called before the repository serves requests; mutators
// read it under writeMu.
func (r *Repository) setTap(tap ReplicationTap) {
	r.writeMu.Lock()
	r.tap = tap
	r.writeMu.Unlock()
}

// SnapshotBytes serializes the repository's durable state and, while the
// write lock is still held, invokes cut — the replication layer's chance to
// capture the stream cursor that corresponds exactly to the image: every
// mutation below the cursor is inside it, every mutation at or above it is
// not. That atomicity is what lets a follower resume the record stream from
// the snapshot's cursor without loss or double-apply.
func (r *Repository) SnapshotBytes(cut func()) ([]byte, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if cut != nil {
		cut()
	}
	var buf bytes.Buffer
	if err := r.snapshotLocked(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ApplyReplicated applies one replicated WAL record through the same public
// mutation path recovery replay uses. It is idempotent under duplicate
// delivery: re-applying an update overwrites the object with identical
// state, and removing an already-removed object is absorbed rather than
// erred — exactly the at-least-once semantics a resumed replication stream
// needs. On a durable follower the record is re-appended to the local WAL
// by the mutation itself, so applied records survive follower restarts.
func (r *Repository) ApplyReplicated(payload []byte) error {
	m, err := decodeWALRecord(payload)
	if err != nil {
		return err
	}
	if err := r.applyWALRecord(m); err != nil {
		if m.Remove && errors.Is(err, ErrUnknownObject) {
			return nil
		}
		return err
	}
	return nil
}

// InstallSnapshot replaces the repository id with the given snapshot image —
// the follower half of a replication state transfer (initial sync, resumed
// cursor past the leader's buffer, or a new epoch after a train install).
// The image is validated by loading it before anything is torn down; the
// on-disk snapshot is replaced atomically and the repository's WAL reset, so
// a follower crash at any point recovers either the old state or the new.
// Concurrent readers of the previous incarnation finish against its epoch;
// new Acquires see the installed state. The entry is claimed through the
// same single-flight latch activation uses, so an in-flight activation and
// an install never interleave.
func (s *Service) InstallSnapshot(id string, image []byte) error {
	if s.durable == nil {
		return fmt.Errorf("core: install snapshot of %s: service is not durable", id)
	}
	repo, err := LoadRepository(bytes.NewReader(image), s.repoOpts)
	if err != nil {
		return fmt.Errorf("core: install snapshot of %s: %w", id, err)
	}
	if repo.ID() != id {
		_ = repo.Close()
		return fmt.Errorf("core: install snapshot of %s: image holds repository %q", id, repo.ID())
	}

	// Claim the entry: create it if unknown (a snapshot can precede the
	// catalog create on a resumed stream), wait out any in-flight
	// activation, then hold the loading latch for the span of the install.
	var e *repoEntry
	for {
		s.mu.Lock()
		e = s.entries[id]
		if e == nil {
			e = &repoEntry{id: id}
			s.entries[id] = e
			s.repoGauge.Set(int64(len(s.entries)))
		}
		s.mu.Unlock()
		e.mu.Lock()
		if e.dropped {
			// Dropped concurrently and already out of the catalog; retry
			// against a fresh entry.
			e.mu.Unlock()
			continue
		}
		if ch := e.loading; ch != nil {
			e.mu.Unlock()
			<-ch
			continue
		}
		break
	}
	ch := make(chan struct{})
	e.loading = ch
	old := e.repo
	e.repo = nil
	e.mu.Unlock()
	if old != nil {
		s.gov.removeRepo(old)
		_ = old.Close()
		s.markInactive(e)
	}

	err = s.durable.installImage(id, image, repo)

	e.mu.Lock()
	e.loading = nil
	dropped := e.dropped
	if err == nil && !dropped {
		e.repo = repo
		e.lastUsed = s.clock.Add(1)
	}
	e.mu.Unlock()
	close(ch)
	if err != nil {
		_ = repo.Close()
		return fmt.Errorf("core: install snapshot of %s: %w", id, err)
	}
	if dropped {
		_ = repo.Close()
		return fmt.Errorf("%w: %s", ErrRepoNotFound, id)
	}
	repo.setGovernor(s.gov)
	if s.tap != nil {
		repo.setTap(s.tap)
	}
	s.gov.addRepo(repo)
	s.markActive(e)
	s.maybeEvict(e)
	return nil
}

// installImage writes the snapshot image durably (tmp + fsync + rename, the
// same discipline saveTo uses), resets the repository's WAL — the image is
// the consistent cut; everything in the old log is inside it — and attaches
// the fresh log to repo so subsequent mutations (replicated applies) append.
func (d *durability) installImage(id string, image []byte, repo *Repository) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return fmt.Errorf("core: create data dir: %w", err)
	}
	path := filepath.Join(d.dir, snapshotFileName(id))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(image)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := syncDir(d.dir); err != nil {
		return err
	}
	l, _, err := wal.Open(filepath.Join(d.dir, walFileName(id)), d.opts, nil)
	if err != nil {
		return err
	}
	if err := l.Reset(); err != nil {
		_ = l.Close()
		return err
	}
	repo.attachWAL(l)
	return nil
}

// SetWALFileOpenerForTest overrides how WAL backing files are opened — the
// seam fault-injection tests (internal/wal/walfault) use to script crashes
// on a real service. It applies to services opened after the call; pass nil
// to restore real files. Never call it in production code.
func SetWALFileOpenerForTest(open func(path string) (wal.File, error)) {
	walFileOpener = open
}
