package core

import (
	"context"
	"errors"
	"sync"

	"mie/internal/obs"
)

// TrainJobState is the lifecycle state of an asynchronous training job.
type TrainJobState string

// Training job states. A job moves running -> done | failed exactly once.
const (
	TrainRunning TrainJobState = "running"
	TrainDone    TrainJobState = "done"
	TrainFailed  TrainJobState = "failed"
)

// TrainJobStatus is a point-in-time view of one training job. Epoch is the
// index generation installed by the job (meaningful once State is TrainDone;
// see Repository.Epoch for the live generation).
type TrainJobStatus struct {
	JobID uint64
	State TrainJobState
	Err   string
	Epoch uint64
}

// ErrUnknownJob is returned for job ids that never existed or were evicted
// from the finished-job history.
var ErrUnknownJob = errors.New("core: unknown train job")

// maxFinishedJobs bounds the finished-job history kept for status queries;
// older entries are evicted FIFO. Clients that care about a job's outcome
// query it promptly (TrainWait does so built-in), so a short history
// suffices.
const maxFinishedJobs = 32

// trainJob is one asynchronous training run. done is closed exactly once,
// after the final status is published.
type trainJob struct {
	id   uint64
	done chan struct{}

	mu     sync.Mutex
	status TrainJobStatus
}

func (j *trainJob) currentStatus() TrainJobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *trainJob) setStatus(st TrainJobStatus) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}

// jobTable tracks a repository's training jobs: at most one running at a
// time (Train is globally serialized by trainMu anyway) plus a bounded
// history of finished ones.
type jobTable struct {
	mu       sync.Mutex
	next     uint64
	running  *trainJob
	finished map[uint64]*trainJob
	order    []uint64 // eviction order of finished jobs
}

// TrainStart launches training as a background job and returns its id
// immediately. If a job is already running, its id is returned instead of
// starting a second one: training is idempotent while in flight, and the
// epoch swap makes back-to-back retrains pointless.
func (r *Repository) TrainStart() uint64 {
	r.jobs.mu.Lock()
	defer r.jobs.mu.Unlock()
	if j := r.jobs.running; j != nil {
		return j.id
	}
	r.jobs.next++
	j := &trainJob{id: r.jobs.next, done: make(chan struct{})}
	j.status = TrainJobStatus{JobID: j.id, State: TrainRunning}
	r.jobs.running = j
	obs.Default().Counter("repo_train_jobs_total").Inc()
	go r.runTrainJob(j)
	return j.id
}

// runTrainJob executes one training run to completion and publishes its
// outcome. The job deliberately runs under a background context: it belongs
// to the repository, not to the RPC (or caller) that started it — a phone
// disconnecting must not abort the multi-minute k-means run it outsourced.
func (r *Repository) runTrainJob(j *trainJob) {
	err := r.Train()
	st := TrainJobStatus{JobID: j.id, Epoch: r.Epoch()}
	if err != nil {
		st.State = TrainFailed
		st.Err = err.Error()
	} else {
		st.State = TrainDone
	}
	j.setStatus(st)

	r.jobs.mu.Lock()
	r.jobs.running = nil
	if r.jobs.finished == nil {
		r.jobs.finished = make(map[uint64]*trainJob)
	}
	r.jobs.finished[j.id] = j
	r.jobs.order = append(r.jobs.order, j.id)
	for len(r.jobs.order) > maxFinishedJobs {
		delete(r.jobs.finished, r.jobs.order[0])
		r.jobs.order = r.jobs.order[1:]
	}
	r.jobs.mu.Unlock()
	close(j.done)
}

// job looks a live or finished job up by id.
func (r *Repository) job(id uint64) (*trainJob, error) {
	r.jobs.mu.Lock()
	defer r.jobs.mu.Unlock()
	if j := r.jobs.running; j != nil && j.id == id {
		return j, nil
	}
	if j, ok := r.jobs.finished[id]; ok {
		return j, nil
	}
	return nil, ErrUnknownJob
}

// TrainJob returns the current status of a training job.
func (r *Repository) TrainJob(id uint64) (TrainJobStatus, error) {
	j, err := r.job(id)
	if err != nil {
		return TrainJobStatus{}, err
	}
	return j.currentStatus(), nil
}

// TrainWait blocks until the job finishes or ctx expires. On ctx expiry it
// returns the job's latest (still-running) status alongside ctx's error, so
// callers can distinguish "not done yet" from "unknown job".
func (r *Repository) TrainWait(ctx context.Context, id uint64) (TrainJobStatus, error) {
	j, err := r.job(id)
	if err != nil {
		return TrainJobStatus{}, err
	}
	select {
	case <-j.done:
		return j.currentStatus(), nil
	case <-ctx.Done():
		return j.currentStatus(), ctx.Err()
	}
}

// Epoch returns the current index generation: 0 before the first Train,
// incremented by each successful epoch swap. Lock-free.
func (r *Repository) Epoch() uint64 { return r.state.Load().epoch }
