package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"mie/internal/obs"
	"mie/internal/wal"
)

// ServiceOptions is the single configuration surface of OpenService: where
// the service keeps durable state, how hard it syncs, how much memory
// resident repositories may use, and which per-tenant quotas admission
// control enforces. The zero value opens an empty in-memory service.
type ServiceOptions struct {
	// Dir is the data directory (snapshots and write-ahead logs side by
	// side). Empty means in-memory: nothing survives the process.
	Dir string
	// Sync is the WAL fsync policy; the zero value is wal.SyncAlways, under
	// which every acknowledged mutation survives kill -9 and power loss.
	Sync wal.SyncPolicy
	// SyncInterval bounds the loss window under wal.SyncInterval; 0 means
	// the wal package default (100ms).
	SyncInterval time.Duration
	// MemoryBudget caps the approximate resident bytes across active
	// repositories; beyond it the least-recently-used unpinned repository
	// is evicted back to disk. 0 means unlimited. Requires Dir.
	MemoryBudget int64
	// Quotas configures per-tenant admission control; the zero value
	// disables it.
	Quotas Quotas
	// LazyActivation makes discovered repositories start cold — registered
	// from their on-disk snapshots without loading — and activate on first
	// touch via the snapshot+WAL-replay path. Requires Dir.
	LazyActivation bool
	// Repo, when non-nil, overrides load-time engine knobs (currently the
	// inverted-index options) of every repository restored from disk.
	Repo *RepositoryOptions
}

// repoEntry is the lifecycle record of one hosted repository. It exists for
// every repository the service knows — resident or cold — and carries the
// state machine cold → activating → active (→ cold again on eviction).
type repoEntry struct {
	id string

	mu sync.Mutex
	// repo is non-nil while the repository is resident (active).
	repo *Repository
	// pins counts in-flight requests holding the repository via Acquire; a
	// pinned repository is never evicted.
	pins int
	// lastUsed is the service's logical LRU clock at the last Acquire.
	lastUsed uint64
	// loading, while non-nil, is the single-flight activation (or creation)
	// latch: concurrent acquirers wait on it instead of loading twice.
	loading chan struct{}
	// dropped marks an entry removed from the catalog, so a racing
	// activation discards its result instead of resurrecting it.
	dropped bool
}

// OpenService opens a service. It unifies what used to be NewService (in
// memory) and LoadService (durable): with a Dir every snapshot in it is
// restored — eagerly, or merely discovered when LazyActivation is set — and
// new mutations keep appending to the per-repository write-ahead logs.
//
// The returned RecoveryReport says what was reconstructed. Like LoadService
// before it, a durable open that fails to restore some repositories still
// returns the service (partial availability beats none after a crash)
// alongside the error.
func OpenService(opts ServiceOptions) (*Service, *RecoveryReport, error) {
	if opts.Dir == "" {
		if opts.MemoryBudget > 0 {
			return nil, nil, errors.New("core: MemoryBudget needs a data directory to evict to")
		}
		if opts.LazyActivation {
			return nil, nil, errors.New("core: LazyActivation needs a data directory to activate from")
		}
		s := newServiceShell()
		s.gov = newTenantGovernor(opts.Quotas)
		return s, &RecoveryReport{}, nil
	}
	if opts.MemoryBudget < 0 {
		return nil, nil, errors.New("core: negative MemoryBudget")
	}
	s := newServiceShell()
	s.durable = newDurability(DurableOptions{Dir: opts.Dir, Sync: opts.Sync, SyncInterval: opts.SyncInterval})
	s.lazy = opts.LazyActivation
	s.budget = opts.MemoryBudget
	s.repoOpts = opts.Repo
	s.gov = newTenantGovernor(opts.Quotas)
	report, err := s.openDir()
	if report != nil {
		// An eager open may have restored more than the budget allows.
		s.maybeEvict(nil)
	}
	return s, report, err
}

// Acquire returns the repository engine for id, activating it first if it
// is cold, and pins it resident until the returned release is called.
// Every request-scoped caller (the server, embedded handles) should hold a
// pin for exactly the span of one request: pinned repositories are immune
// to eviction, and releasing re-arms the memory-budget check. release is
// idempotent.
//
// Activation is single-flight: one loader runs the snapshot+WAL-replay
// path while concurrent acquirers of the same repository wait for it.
func (s *Service) Acquire(id string) (*Repository, func(), error) {
	for {
		s.mu.RLock()
		e := s.entries[id]
		s.mu.RUnlock()
		if e == nil {
			return nil, nil, fmt.Errorf("%w: %s", ErrRepoNotFound, id)
		}
		e.mu.Lock()
		if e.dropped {
			e.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: %s", ErrRepoNotFound, id)
		}
		if e.repo != nil {
			e.pins++
			e.lastUsed = s.clock.Add(1)
			r := e.repo
			e.mu.Unlock()
			return r, s.releaseFunc(e), nil
		}
		if ch := e.loading; ch != nil {
			e.mu.Unlock()
			<-ch
			continue
		}
		// Cold, and this caller won the activation: latch, load off-lock,
		// install.
		ch := make(chan struct{})
		e.loading = ch
		e.mu.Unlock()

		repo, err := s.activate(e)

		e.mu.Lock()
		e.loading = nil
		if err == nil && e.dropped {
			// Dropped while loading: discard the resurrected state.
			e.mu.Unlock()
			close(ch)
			s.gov.removeRepo(repo)
			_ = repo.Close()
			return nil, nil, fmt.Errorf("%w: %s", ErrRepoNotFound, id)
		}
		if err == nil {
			e.repo = repo
			e.pins++
			e.lastUsed = s.clock.Add(1)
		}
		e.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, nil, err
		}
		s.markActive(e)
		s.maybeEvict(e)
		return repo, s.releaseFunc(e), nil
	}
}

// activate loads one cold repository from disk: snapshot, then WAL replay,
// then the governor recount — all before any request sees it.
func (s *Service) activate(e *repoEntry) (*Repository, error) {
	if s.durable == nil {
		// Cold entries only exist on durable services; an in-memory entry is
		// always resident.
		return nil, fmt.Errorf("%w: %s", ErrRepoNotFound, e.id)
	}
	start := time.Now()
	_, sp := obs.StartSpan(context.Background(), obs.Default(), "repo/activate")
	repo, _, err := s.durable.loadRepo(sp, e.id, s.repoOpts)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: activate %s: %w", e.id, err)
	}
	repo.setGovernor(s.gov)
	if s.tap != nil {
		repo.setTap(s.tap)
	}
	s.gov.addRepo(repo)
	s.activations.Add(1)
	s.activationsC.Inc()
	s.activationH.Observe(time.Since(start).Seconds())
	return repo, nil
}

// releaseFunc builds the idempotent pin release for one Acquire.
func (s *Service) releaseFunc(e *repoEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			e.mu.Lock()
			e.pins--
			e.mu.Unlock()
			// A release is where growth accumulated during the request (and
			// the pin that blocked eviction) becomes actionable.
			s.maybeEvict(nil)
		})
	}
}

// markActive adds e to the resident set and refreshes the repo_active
// gauge.
func (s *Service) markActive(e *repoEntry) {
	s.activeMu.Lock()
	s.active[e] = struct{}{}
	s.activeGauge.Set(int64(len(s.active)))
	s.activeMu.Unlock()
}

// markInactive removes e from the resident set.
func (s *Service) markInactive(e *repoEntry) {
	s.activeMu.Lock()
	delete(s.active, e)
	s.activeGauge.Set(int64(len(s.active)))
	s.activeMu.Unlock()
}

// activeEntries snapshots the resident set.
func (s *Service) activeEntries() []*repoEntry {
	s.activeMu.Lock()
	out := make([]*repoEntry, 0, len(s.active))
	for e := range s.active {
		out = append(out, e)
	}
	s.activeMu.Unlock()
	return out
}

// maybeEvict brings the resident footprint back under the memory budget by
// evicting least-recently-used unpinned repositories. Single-flight: if an
// eviction pass is already running the caller returns immediately — the
// running pass re-scans until the budget holds. exclude (may be nil) is
// never chosen, so the repository an acquirer just activated survives at
// least until its own release.
func (s *Service) maybeEvict(exclude *repoEntry) {
	if s.budget <= 0 {
		return
	}
	if !s.evictMu.TryLock() {
		return
	}
	defer s.evictMu.Unlock()
	for {
		var total int64
		var victim *repoEntry
		var victimUsed uint64
		for _, e := range s.activeEntries() {
			e.mu.Lock()
			if e.repo == nil {
				e.mu.Unlock()
				continue
			}
			total += e.repo.ResidentBytes()
			if e != exclude && e.pins == 0 && (victim == nil || e.lastUsed < victimUsed) {
				victim = e
				victimUsed = e.lastUsed
			}
			e.mu.Unlock()
		}
		if total <= s.budget || victim == nil {
			return
		}
		s.evictEntry(victim)
	}
}

// evictEntry moves one active entry back to cold: the governor is credited,
// the repository closed — which seals its write-ahead log; the on-disk
// snapshot+WAL image already holds every acknowledged mutation — and the
// in-memory state dropped. Returns false if the entry was pinned, dropped
// or already cold by the time the lock was taken.
func (s *Service) evictEntry(e *repoEntry) bool {
	e.mu.Lock()
	if e.repo == nil || e.pins > 0 || e.dropped {
		e.mu.Unlock()
		return false
	}
	repo := e.repo
	s.gov.removeRepo(repo)
	// A close error cannot lose acknowledged data — the WAL sync policy
	// already governed what an ack meant — so eviction proceeds and the
	// error is only counted.
	if err := repo.Close(); err != nil {
		s.evictErrorsC.Inc()
	}
	e.repo = nil
	e.mu.Unlock()
	s.markInactive(e)
	s.evictions.Add(1)
	s.evictionsC.Inc()
	return true
}

// EvictRepository forces one repository cold, regardless of the memory
// budget — an operational tool (and the test seam for crash-during-eviction
// scenarios). It fails if the repository is pinned by in-flight requests;
// evicting an already-cold repository is a no-op.
func (s *Service) EvictRepository(id string) error {
	if s.durable == nil {
		return errors.New("core: eviction needs a durable service")
	}
	s.mu.RLock()
	e := s.entries[id]
	s.mu.RUnlock()
	if e == nil {
		return fmt.Errorf("%w: %s", ErrRepoNotFound, id)
	}
	e.mu.Lock()
	cold := e.repo == nil
	pinned := e.pins > 0
	e.mu.Unlock()
	if cold {
		return nil
	}
	if pinned {
		return fmt.Errorf("core: repository %s is pinned by in-flight requests", id)
	}
	if !s.evictEntry(e) {
		e.mu.Lock()
		cold = e.repo == nil
		e.mu.Unlock()
		if cold {
			return nil
		}
		return fmt.Errorf("core: repository %s is pinned by in-flight requests", id)
	}
	return nil
}

// LifecycleStats is a point-in-time summary of the service's repository
// lifecycle.
type LifecycleStats struct {
	// Repositories is every hosted repository, resident or cold.
	Repositories int
	// Active is the resident subset.
	Active int
	// ResidentBytes is the approximate memory footprint of the resident
	// repositories — the quantity the MemoryBudget bounds.
	ResidentBytes int64
	// Activations and Evictions are lifetime totals.
	Activations, Evictions uint64
}

// Lifecycle reports the service's current lifecycle counters.
func (s *Service) Lifecycle() LifecycleStats {
	st := LifecycleStats{
		Activations: s.activations.Load(),
		Evictions:   s.evictions.Load(),
	}
	s.mu.RLock()
	st.Repositories = len(s.entries)
	s.mu.RUnlock()
	for _, e := range s.activeEntries() {
		e.mu.Lock()
		if e.repo != nil {
			st.Active++
			st.ResidentBytes += e.repo.ResidentBytes()
		}
		e.mu.Unlock()
	}
	return st
}

// MemoryBudget returns the configured resident-bytes budget (0 =
// unlimited).
func (s *Service) MemoryBudget() int64 { return s.budget }

// Tenants returns the service's admission governor, nil when no quotas are
// configured. The governor is safe to use as nil.
func (s *Service) Tenants() *TenantGovernor { return s.gov }

// repoIDFromStem inverts repoFileStem: %xxxx escapes become runes again.
// Escapes are zero-padded to four hex digits but runes beyond the BMP print
// five or six, so the parse tries the shortest escape first and accepts the
// first decoding that re-escapes to exactly the input stem — a verified
// round trip, so the derived id always resolves back to the same files. A
// stem the writer could have produced from two different ids (an astral
// rune whose escape is continued by literal hex digits) decodes to the BMP
// interpretation; activation then reports the snapshot-id mismatch as a
// load error, never serving the wrong repository.
func repoIDFromStem(stem string) (string, error) {
	if !strings.Contains(stem, "%") {
		return stem, nil
	}
	isHex := func(c byte) bool {
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
	}
	var b strings.Builder
	for i := 0; i < len(stem); {
		c := stem[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		j := i + 1
		for j < len(stem) && j < i+1+6 && isHex(stem[j]) {
			j++
		}
		if j < i+5 {
			return "", fmt.Errorf("core: truncated escape in file stem %q", stem)
		}
		written := false
		for k := i + 5; k <= j; k++ {
			v, err := strconv.ParseUint(stem[i+1:k], 16, 32)
			if err == nil && v <= 0x10FFFF && repoFileStem(string(rune(v))) == "%"+stem[i+1:k] {
				b.WriteRune(rune(v))
				i = k
				written = true
				break
			}
		}
		if !written {
			return "", fmt.Errorf("core: bad escape in file stem %q", stem)
		}
	}
	id := b.String()
	if repoFileStem(id) != stem {
		return "", fmt.Errorf("core: file stem %q does not round-trip", stem)
	}
	return id, nil
}
