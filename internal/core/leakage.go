package core

import (
	"sync"

	"mie/internal/dpe"
)

// Leakage records the information patterns the honest-but-curious server
// observes, mirroring the per-operation leakage functions of the ideal
// functionality F_MIE (Algorithm 4). It exists so tests can assert the
// leakage profile of Table I — MIE reveals ID(w), freq(w) at update time and
// ID(w), ID(d) at search time — and so the bench harness can report what
// each scheme exposed.
// UpdateObservation is what the server sees for one update: the object's
// deterministic id and its token ids with frequencies — the raw material of
// leakage-abuse attacks (see internal/attack).
type UpdateObservation struct {
	ObjectID string
	Tokens   map[dpe.Token]uint64
}

type Leakage struct {
	mu sync.Mutex
	// observations is the per-update log (ID(d), ID(w), freq(w)).
	observations []UpdateObservation
	// updateTokens counts how often each deterministic token id was seen in
	// updates (ID(w) + freq(w) update leakage).
	updateTokens map[dpe.Token]uint64
	// searchTokens counts tokens observed in queries (ID(w) search leakage).
	searchTokens map[dpe.Token]uint64
	// accessed counts object-id accesses (ID(d) access pattern).
	accessed map[string]int
	// counters
	updates, removes, searches, trains int
}

func newLeakage() *Leakage {
	return &Leakage{
		updateTokens: make(map[dpe.Token]uint64),
		searchTokens: make(map[dpe.Token]uint64),
		accessed:     make(map[string]int),
	}
}

// recordUpdate logs one update's leakage and returns the revealed token-
// frequency mass (the freq(w) update leakage), for the telemetry counters.
func (l *Leakage) recordUpdate(up *Update) (tokenMass uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.updates++
	obs := UpdateObservation{ObjectID: up.ObjectID, Tokens: make(map[dpe.Token]uint64, len(up.TextTokens))}
	for tok, freq := range up.TextTokens {
		l.updateTokens[tok] += freq
		obs.Tokens[tok] = freq
		tokenMass += freq
	}
	l.observations = append(l.observations, obs)
	return tokenMass
}

// UpdateObservations returns a copy of the per-update leakage log, in
// arrival order.
func (l *Leakage) UpdateObservations() []UpdateObservation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]UpdateObservation, len(l.observations))
	copy(out, l.observations)
	return out
}

// recordSearch logs one query's leakage and returns how many of its tokens
// the server had already seen in earlier queries — the search-pattern
// repeats that make queries linkable.
func (l *Leakage) recordSearch(q *Query) (repeats int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.searches++
	for tok := range q.TextTokens {
		if l.searchTokens[tok] > 0 {
			repeats++
		}
		l.searchTokens[tok]++
	}
	return repeats
}

// recordAccess logs one ID(d) access-pattern reveal.
func (l *Leakage) recordAccess(objectID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.accessed[objectID]++
}

func (l *Leakage) recordRemove(string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removes++
}

func (l *Leakage) recordTrain(string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trains++
}

// UpdateTokenFreq returns the total frequency the server learned for a
// token through updates — the freq(w) update leakage that distinguishes MIE
// in Table I.
func (l *Leakage) UpdateTokenFreq(tok dpe.Token) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updateTokens[tok]
}

// DistinctUpdateTokens returns how many deterministic token ids updates have
// revealed.
func (l *Leakage) DistinctUpdateTokens() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.updateTokens)
}

// distinctSearchTokens returns how many distinct token ids queries revealed.
func (l *Leakage) distinctSearchTokens() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.searchTokens)
}

// SearchTokenCount returns how many times a token id appeared in queries.
func (l *Leakage) SearchTokenCount(tok dpe.Token) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.searchTokens[tok]
}

// AccessCount returns how many times an object id was returned/read.
func (l *Leakage) AccessCount(objectID string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accessed[objectID]
}

// Ops returns the operation counters (updates, removes, searches, trains).
func (l *Leakage) Ops() (updates, removes, searches, trains int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updates, l.removes, l.searches, l.trains
}

// LeakageSummary is the aggregate leakage profile of one repository — the
// quantities Table I says MIE reveals, counted rather than assumed, in the
// spirit of arXiv 1909.11624's "measure the leakage" position.
type LeakageSummary struct {
	// Operation counts.
	Updates  int `json:"updates"`
	Removes  int `json:"removes"`
	Searches int `json:"searches"`
	Trains   int `json:"trains"`
	// Update leakage: distinct deterministic token ids revealed by updates
	// (ID(w)) and their total revealed frequency mass (freq(w)).
	DistinctUpdateTokens int    `json:"distinct_update_tokens"`
	UpdateTokenMass      uint64 `json:"update_token_mass"`
	// Search-pattern leakage: distinct token ids queried (ID(w)) and total
	// repeat observations — queries whose tokens the server had seen before
	// and can therefore link.
	DistinctSearchTokens int    `json:"distinct_search_tokens"`
	SearchTokenRepeats   uint64 `json:"search_token_repeats"`
	// Access-pattern leakage: distinct object ids revealed (ID(d)) and
	// total reveals across searches and gets.
	DistinctObjectsAccessed int    `json:"distinct_objects_accessed"`
	AccessReveals           uint64 `json:"access_reveals"`
}

// Summary aggregates the leakage log into its per-repository profile.
func (l *Leakage) Summary() LeakageSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LeakageSummary{
		Updates:                 l.updates,
		Removes:                 l.removes,
		Searches:                l.searches,
		Trains:                  l.trains,
		DistinctUpdateTokens:    len(l.updateTokens),
		DistinctSearchTokens:    len(l.searchTokens),
		DistinctObjectsAccessed: len(l.accessed),
	}
	for _, freq := range l.updateTokens {
		s.UpdateTokenMass += freq
	}
	for _, n := range l.searchTokens {
		if n > 1 {
			s.SearchTokenRepeats += n - 1
		}
	}
	for _, n := range l.accessed {
		s.AccessReveals += uint64(n)
	}
	return s
}
