package core

import (
	"sync"

	"mie/internal/dpe"
)

// Leakage records the information patterns the honest-but-curious server
// observes, mirroring the per-operation leakage functions of the ideal
// functionality F_MIE (Algorithm 4). It exists so tests can assert the
// leakage profile of Table I — MIE reveals ID(w), freq(w) at update time and
// ID(w), ID(d) at search time — and so the bench harness can report what
// each scheme exposed.
// UpdateObservation is what the server sees for one update: the object's
// deterministic id and its token ids with frequencies — the raw material of
// leakage-abuse attacks (see internal/attack).
type UpdateObservation struct {
	ObjectID string
	Tokens   map[dpe.Token]uint64
}

type Leakage struct {
	mu sync.Mutex
	// observations is the per-update log (ID(d), ID(w), freq(w)).
	observations []UpdateObservation
	// updateTokens counts how often each deterministic token id was seen in
	// updates (ID(w) + freq(w) update leakage).
	updateTokens map[dpe.Token]uint64
	// searchTokens counts tokens observed in queries (ID(w) search leakage).
	searchTokens map[dpe.Token]uint64
	// accessed counts object-id accesses (ID(d) access pattern).
	accessed map[string]int
	// counters
	updates, removes, searches, trains int
}

func newLeakage() *Leakage {
	return &Leakage{
		updateTokens: make(map[dpe.Token]uint64),
		searchTokens: make(map[dpe.Token]uint64),
		accessed:     make(map[string]int),
	}
}

func (l *Leakage) recordUpdate(up *Update) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.updates++
	obs := UpdateObservation{ObjectID: up.ObjectID, Tokens: make(map[dpe.Token]uint64, len(up.TextTokens))}
	for tok, freq := range up.TextTokens {
		l.updateTokens[tok] += freq
		obs.Tokens[tok] = freq
	}
	l.observations = append(l.observations, obs)
}

// UpdateObservations returns a copy of the per-update leakage log, in
// arrival order.
func (l *Leakage) UpdateObservations() []UpdateObservation {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]UpdateObservation, len(l.observations))
	copy(out, l.observations)
	return out
}

func (l *Leakage) recordSearch(q *Query) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.searches++
	for tok := range q.TextTokens {
		l.searchTokens[tok]++
	}
}

func (l *Leakage) recordAccess(objectID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.accessed[objectID]++
}

func (l *Leakage) recordRemove(string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.removes++
}

func (l *Leakage) recordTrain(string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.trains++
}

// UpdateTokenFreq returns the total frequency the server learned for a
// token through updates — the freq(w) update leakage that distinguishes MIE
// in Table I.
func (l *Leakage) UpdateTokenFreq(tok dpe.Token) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updateTokens[tok]
}

// DistinctUpdateTokens returns how many deterministic token ids updates have
// revealed.
func (l *Leakage) DistinctUpdateTokens() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.updateTokens)
}

// SearchTokenCount returns how many times a token id appeared in queries.
func (l *Leakage) SearchTokenCount(tok dpe.Token) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.searchTokens[tok]
}

// AccessCount returns how many times an object id was returned/read.
func (l *Leakage) AccessCount(objectID string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accessed[objectID]
}

// Ops returns the operation counters (updates, removes, searches, trains).
func (l *Leakage) Ops() (updates, removes, searches, trains int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updates, l.removes, l.searches, l.trains
}
