package core

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mie/internal/dpe"
	"mie/internal/index"
	"mie/internal/obs"
	"mie/internal/vec"
)

// snapshotMagic guards against loading unrelated files as repositories.
const snapshotMagic = "MIE-REPO-SNAPSHOT-v1"

// snapshotObject is the serialized form of one stored object.
type snapshotObject struct {
	ID         string
	Owner      string
	Ciphertext []byte
	TextTokens map[dpe.Token]uint64
	ImageEncs  []vec.BitVec
	AudioEncs  []vec.BitVec
}

// snapshot is the on-disk form of a Repository. Early versions did not
// serialize the inverted indexes — they were derived state, rebuilt from the
// stored encodings and vocabulary at load time. With incremental training
// that stopped being true: objects not touched since an incremental Train
// keep the quantization of the epoch that indexed them, so a rebuild under
// the current codebook could shift rankings. IndexSegments therefore pins
// the live postings of every segment (gob encodes a nil slice as absent, so
// old snapshots still decode; the loader falls back to the legacy rebuild
// when the field is missing).
type snapshot struct {
	Magic      string
	ID         string
	Opts       RepositoryOptions
	Objects    []snapshotObject
	Trained    bool
	VocabWords []vec.BitVec
	AudioWords []vec.BitVec
	// IndexSegments is parallel to the engine set: per modality, the live
	// postings grouped by segment (memtable last). Nil in pre-segmented
	// snapshots.
	IndexSegments [][][]index.BatchDoc
}

// Snapshot serializes the repository's durable state to w. Safe to call
// concurrently with reads; writers are blocked for the duration so the
// object set and the trained state land as one consistent cut.
func (r *Repository) Snapshot(w io.Writer) error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	return r.snapshotLocked(w)
}

// snapshotLocked is Snapshot with writeMu already held, so saveTo can take
// the snapshot and rotate the write-ahead log as one consistent cut.
func (r *Repository) snapshotLocked(w io.Writer) error {
	_, sp := obs.StartSpan(context.Background(), r.met.reg, "repo/snapshot")
	defer sp.End()
	st := r.state.Load()
	snap := snapshot{
		Magic:   snapshotMagic,
		ID:      r.id,
		Opts:    r.opts,
		Trained: st.trained,
	}
	// Index options carry host paths that may not apply on restore; the
	// loader re-derives them from its own options, so drop them here.
	snap.Opts.Index.SpillDir = ""
	snap.Opts.Index.ChampionSize = 0
	r.objects.Range(func(id string, obj *storedObject) bool {
		snap.Objects = append(snap.Objects, snapshotObject{
			ID:         id,
			Owner:      obj.owner,
			Ciphertext: obj.ciphertext,
			TextTokens: obj.textTokens,
			ImageEncs:  obj.imageEncs,
			AudioEncs:  obj.audioEncs,
		})
		return true
	})
	for _, eng := range st.engines {
		switch eng.Modality() {
		case ModalityImage:
			snap.VocabWords = eng.SnapshotState()
		case ModalityAudio:
			snap.AudioWords = eng.SnapshotState()
		}
	}
	if st.trained {
		snap.IndexSegments = make([][][]index.BatchDoc, len(st.indexes))
		for i, idx := range st.indexes {
			if idx == nil {
				continue
			}
			groups, err := idx.SegmentBatches()
			if err != nil {
				return fmt.Errorf("core: snapshot %s index segments: %w", r.id, err)
			}
			snap.IndexSegments[i] = groups
		}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode snapshot of %s: %w", r.id, err)
	}
	return nil
}

// ErrBadSnapshot is returned when restoring from data that is not a valid
// repository snapshot.
var ErrBadSnapshot = errors.New("core: invalid repository snapshot")

// LoadRepository restores a repository from a snapshot. The vocabulary's
// lookup tree and the inverted indexes are rebuilt; search results after a
// restore are identical to before it. Index options (champion lists, spill
// dir) may be overridden for the new host via opts.
func LoadRepository(rd io.Reader, indexOpts *RepositoryOptions) (*Repository, error) {
	var snap snapshot
	if err := gob.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if snap.Magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, snap.Magic)
	}
	opts := snap.Opts
	if indexOpts != nil {
		opts.Index = indexOpts.Index
	}
	r, err := NewRepository(snap.ID, opts)
	if err != nil {
		return nil, err
	}
	var resident int64
	for _, so := range snap.Objects {
		obj := &storedObject{
			owner:      so.Owner,
			ciphertext: so.Ciphertext,
			textTokens: so.TextTokens,
			imageEncs:  so.ImageEncs,
			audioEncs:  so.AudioEncs,
		}
		r.objects.Put(so.ID, obj)
		resident += approxObjectBytes(obj)
	}
	r.resident.Store(resident)
	r.met.objects.Set(int64(r.objects.Len()))
	// The ANN candidate indexes are derived state: rebuild them from the
	// stored encodings in sorted id order. Construction is seeded, so the
	// rebuilt indexes are deterministic across restores.
	_, asp := obs.StartSpan(context.Background(), r.met.reg, "repo/ann_build")
	r.rebuildANN()
	asp.End()
	if !snap.Trained {
		return r, nil
	}
	// Restore the engines' trained state from the serialized codebooks,
	// then rebuild the first trained epoch through the same bulk path
	// Train uses.
	cur := r.state.Load()
	engines := make([]ModalityEngine, len(cur.engines))
	for i, eng := range cur.engines {
		var words []vec.BitVec
		switch eng.Modality() {
		case ModalityImage:
			words = snap.VocabWords
		case ModalityAudio:
			words = snap.AudioWords
		}
		restored, err := eng.Restore(words)
		if err != nil {
			return nil, fmt.Errorf("core: restore %s vocabulary: %w", eng.Modality(), err)
		}
		engines[i] = restored
	}
	epoch := cur.epoch + 1
	var indexes []*index.Segmented
	var spillDirs []string
	if len(snap.IndexSegments) == len(engines) {
		// Segmented layout: restore the exact segment structure and postings
		// the snapshot pinned, preserving per-epoch quantization.
		indexes = make([]*index.Segmented, len(engines))
		spillDirs = make([]string, len(engines))
		for i, eng := range engines {
			iopts := r.indexOptions(string(eng.Modality()), epoch)
			idx, err := index.NewSegmented(r.segmentedOptions(iopts))
			if err != nil {
				closeIndexes(indexes, spillDirs)
				return nil, err
			}
			indexes[i] = idx
			spillDirs[i] = iopts.SpillDir
			if err := idx.LoadSegments(snap.IndexSegments[i]); err != nil {
				closeIndexes(indexes, spillDirs)
				return nil, fmt.Errorf("core: restore %s index segments: %w", eng.Modality(), err)
			}
		}
	} else {
		// Legacy layout (no serialized segments): rebuild through the same
		// bulk path Train uses.
		objs := r.objects.Items()
		ids := make([]string, 0, len(objs))
		for id := range objs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var err error
		indexes, spillDirs, err = r.buildIndexes(engines, epoch, objs, ids)
		if err != nil {
			return nil, err
		}
	}
	r.state.Store(&repoState{
		epoch:     epoch,
		trained:   true,
		engines:   engines,
		indexes:   indexes,
		spillDirs: spillDirs,
	})
	for _, eng := range engines {
		switch eng.Modality() {
		case ModalityImage:
			r.met.vocabWords.Set(int64(eng.CodebookSize()))
		case ModalityAudio:
			r.met.audioVocabWords.Set(int64(eng.CodebookSize()))
		}
	}
	return r, nil
}

// saveTo writes the repository's snapshot into dir — write to temp, fsync
// the file, rename over the target, fsync the directory — and then rotates
// the repository's write-ahead log empty. The whole sequence runs under
// writeMu, so the snapshot and the log rotation are one consistent cut: no
// mutation can land between "folded into the snapshot" and "dropped from
// the log". The log is only rotated after the snapshot is durable on disk;
// if the process dies in between, replaying the (now stale) log over the
// newer snapshot converges, because records carry full object state and
// replay preserves their order.
func (r *Repository) saveTo(dir string) error {
	path := filepath.Join(dir, snapshotFileName(r.id))
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("core: temp snapshot: %w", err)
	}
	abort := func() { _ = tmp.Close(); _ = os.Remove(tmp.Name()) }
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if err := r.snapshotLocked(tmp); err != nil {
		abort()
		return err
	}
	// fsync before rename: the rename must never expose a snapshot whose
	// bytes could still be lost to a power cut.
	if err := tmp.Sync(); err != nil {
		abort()
		return fmt.Errorf("core: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: commit snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	if r.wal != nil {
		if err := r.wal.Reset(); err != nil {
			return fmt.Errorf("core: rotate wal of %s: %w", r.id, err)
		}
	}
	return nil
}

// repoFileStem escapes a repository id into a safe file-name stem, shared
// by the snapshot and WAL naming so the two always sit side by side.
func repoFileStem(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			fmt.Fprintf(&b, "%%%04x", r)
		}
	}
	return b.String()
}

// snapshotFileName escapes a repository id into its snapshot file name.
func snapshotFileName(id string) string {
	return repoFileStem(id) + ".snap"
}
