package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mie/internal/dpe"
	"mie/internal/obs"
	"mie/internal/vec"
)

// snapshotMagic guards against loading unrelated files as repositories.
const snapshotMagic = "MIE-REPO-SNAPSHOT-v1"

// snapshotObject is the serialized form of one stored object.
type snapshotObject struct {
	ID         string
	Owner      string
	Ciphertext []byte
	TextTokens map[dpe.Token]uint64
	ImageEncs  []vec.BitVec
	AudioEncs  []vec.BitVec
}

// snapshot is the on-disk form of a Repository. The inverted indexes are
// NOT serialized: they are derived state, rebuilt deterministically from the
// stored encodings and vocabulary at load time — simpler, robust against
// index format evolution, and it exercises the same code path as Train.
// The format predates the layered engine and is kept unchanged, so
// snapshots written by the old flat layout restore cleanly.
type snapshot struct {
	Magic      string
	ID         string
	Opts       RepositoryOptions
	Objects    []snapshotObject
	Trained    bool
	VocabWords []vec.BitVec
	AudioWords []vec.BitVec
}

// Snapshot serializes the repository's durable state to w. Safe to call
// concurrently with reads; writers are blocked for the duration so the
// object set and the trained state land as one consistent cut.
func (r *Repository) Snapshot(w io.Writer) error {
	sp := obs.StartSpan(r.met.reg, "repo/snapshot")
	defer sp.End()
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	st := r.state.Load()
	snap := snapshot{
		Magic:   snapshotMagic,
		ID:      r.id,
		Opts:    r.opts,
		Trained: st.trained,
	}
	// Index options carry host paths that may not apply on restore; the
	// loader re-derives them from its own options, so drop them here.
	snap.Opts.Index.SpillDir = ""
	snap.Opts.Index.ChampionSize = 0
	r.objects.Range(func(id string, obj *storedObject) bool {
		snap.Objects = append(snap.Objects, snapshotObject{
			ID:         id,
			Owner:      obj.owner,
			Ciphertext: obj.ciphertext,
			TextTokens: obj.textTokens,
			ImageEncs:  obj.imageEncs,
			AudioEncs:  obj.audioEncs,
		})
		return true
	})
	for _, eng := range st.engines {
		switch eng.Modality() {
		case ModalityImage:
			snap.VocabWords = eng.SnapshotState()
		case ModalityAudio:
			snap.AudioWords = eng.SnapshotState()
		}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode snapshot of %s: %w", r.id, err)
	}
	return nil
}

// ErrBadSnapshot is returned when restoring from data that is not a valid
// repository snapshot.
var ErrBadSnapshot = errors.New("core: invalid repository snapshot")

// LoadRepository restores a repository from a snapshot. The vocabulary's
// lookup tree and the inverted indexes are rebuilt; search results after a
// restore are identical to before it. Index options (champion lists, spill
// dir) may be overridden for the new host via opts.
func LoadRepository(rd io.Reader, indexOpts *RepositoryOptions) (*Repository, error) {
	var snap snapshot
	if err := gob.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if snap.Magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, snap.Magic)
	}
	opts := snap.Opts
	if indexOpts != nil {
		opts.Index = indexOpts.Index
	}
	r, err := NewRepository(snap.ID, opts)
	if err != nil {
		return nil, err
	}
	for _, so := range snap.Objects {
		r.objects.Put(so.ID, &storedObject{
			owner:      so.Owner,
			ciphertext: so.Ciphertext,
			textTokens: so.TextTokens,
			imageEncs:  so.ImageEncs,
			audioEncs:  so.AudioEncs,
		})
	}
	r.met.objects.Set(int64(r.objects.Len()))
	if !snap.Trained {
		return r, nil
	}
	// Restore the engines' trained state from the serialized codebooks,
	// then rebuild the first trained epoch through the same bulk path
	// Train uses.
	cur := r.state.Load()
	engines := make([]ModalityEngine, len(cur.engines))
	for i, eng := range cur.engines {
		var words []vec.BitVec
		switch eng.Modality() {
		case ModalityImage:
			words = snap.VocabWords
		case ModalityAudio:
			words = snap.AudioWords
		}
		restored, err := eng.Restore(words)
		if err != nil {
			return nil, fmt.Errorf("core: restore %s vocabulary: %w", eng.Modality(), err)
		}
		engines[i] = restored
	}
	objs := r.objects.Items()
	ids := make([]string, 0, len(objs))
	for id := range objs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	indexes, spillDirs, err := r.buildIndexes(engines, cur.epoch+1, objs, ids)
	if err != nil {
		return nil, err
	}
	r.state.Store(&repoState{
		epoch:     cur.epoch + 1,
		trained:   true,
		engines:   engines,
		indexes:   indexes,
		spillDirs: spillDirs,
	})
	for _, eng := range engines {
		switch eng.Modality() {
		case ModalityImage:
			r.met.vocabWords.Set(int64(eng.CodebookSize()))
		case ModalityAudio:
			r.met.audioVocabWords.Set(int64(eng.CodebookSize()))
		}
	}
	return r, nil
}

// SaveService writes every repository hosted by the service into dir, one
// snapshot file per repository. Existing snapshots are replaced atomically
// (write to temp, rename).
func SaveService(s *Service, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create snapshot dir: %w", err)
	}
	for _, id := range s.Repositories() {
		repo, err := s.Repository(id)
		if err != nil {
			continue // dropped concurrently
		}
		path := filepath.Join(dir, snapshotFileName(id))
		tmp, err := os.CreateTemp(dir, ".snap-*")
		if err != nil {
			return fmt.Errorf("core: temp snapshot: %w", err)
		}
		if err := repo.Snapshot(tmp); err != nil {
			_ = tmp.Close()           // best effort; the write error wins
			_ = os.Remove(tmp.Name()) // don't leave partial temp files
			return err
		}
		if err := tmp.Close(); err != nil {
			_ = os.Remove(tmp.Name())
			return fmt.Errorf("core: close snapshot: %w", err)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			_ = os.Remove(tmp.Name())
			return fmt.Errorf("core: commit snapshot: %w", err)
		}
	}
	return nil
}

// LoadService restores a service from a snapshot directory written by
// SaveService. Files that fail to load are reported together; valid
// repositories still come up (partial availability beats none after a
// crash).
func LoadService(dir string, indexOpts *RepositoryOptions) (*Service, error) {
	s := NewService()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil // fresh install
		}
		return nil, fmt.Errorf("core: read snapshot dir: %w", err)
	}
	var loadErrs []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %v", e.Name(), err))
			continue
		}
		repo, err := LoadRepository(f, indexOpts)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %v", e.Name(), err))
			continue
		}
		s.mu.Lock()
		s.repos[repo.ID()] = repo
		s.repoGauge.Set(int64(len(s.repos)))
		s.mu.Unlock()
	}
	if len(loadErrs) > 0 {
		return s, fmt.Errorf("core: %d snapshot(s) failed to load: %s", len(loadErrs), strings.Join(loadErrs, "; "))
	}
	return s, nil
}

// snapshotFileName escapes a repository id into a safe file name.
func snapshotFileName(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			fmt.Fprintf(&b, "%%%04x", r)
		}
	}
	return b.String() + ".snap"
}
