package core

import (
	"context"
	"errors"
	"fmt"

	"mie/internal/audio"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/dpe"
	"mie/internal/imaging"
	"mie/internal/obs"
	"mie/internal/text"
	"mie/internal/vec"
)

// RepositoryKey is rk_R: the secret shared among a repository's authorized
// users. It fans out (by PRF derivation) into the Dense-DPE key rk1 and the
// Sparse-DPE key rk2 of Algorithm 5.
type RepositoryKey struct {
	Master crypto.Key
}

// NewRepositoryKey draws a fresh repository key.
func NewRepositoryKey() (RepositoryKey, error) {
	k, err := crypto.NewRandomKey()
	if err != nil {
		return RepositoryKey{}, err
	}
	return RepositoryKey{Master: k}, nil
}

// ClientConfig configures a client-side MIE component.
type ClientConfig struct {
	// Key is the repository key shared among authorized users.
	Key RepositoryKey
	// Dense configures Dense-DPE for the image modality; zero values
	// default to 64 input dims (SURF-like), 512-bit encodings and
	// threshold 0.5, the prototype's instantiation.
	Dense dpe.DenseParams
	// AudioDense configures Dense-DPE for the audio modality (32-dim
	// spectral descriptors by default). Each dense modality gets its own
	// DPE instance because descriptor dimensionalities differ; both derive
	// from the same repository key.
	AudioDense dpe.DenseParams
	// Pyramid configures the dense-pyramid image detector.
	Pyramid imaging.PyramidParams
	// Meter, when non-nil, attributes client CPU work to the figure
	// categories (feature extraction -> Index, DPE+AES -> Encrypt).
	Meter *device.Meter
}

// Client is the trusted, client-side MIE component. It holds the repository
// key material but no per-keyword state: MIE clients are stateless (O(1)
// client storage in Table I), which is what makes multi-user concurrent
// writes trivial.
type Client struct {
	dense      *dpe.Dense
	audioDense *dpe.Dense
	sparse     *dpe.Sparse
	meter      *device.Meter
	pyr        imaging.PyramidParams
}

// NewClient builds a client component for one repository.
func NewClient(cfg ClientConfig) (*Client, error) {
	dp := cfg.Dense
	if dp.InDim == 0 {
		dp.InDim = imaging.DescriptorDim
	}
	if dp.Threshold == 0 {
		dp.Threshold = 0.5
	}
	dense, err := dpe.NewDense(crypto.DeriveKey(cfg.Key.Master, "rk1"), dp)
	if err != nil {
		return nil, fmt.Errorf("core: dense dpe: %w", err)
	}
	ap := cfg.AudioDense
	if ap.InDim == 0 {
		ap.InDim = audio.DescriptorDim
	}
	if ap.Threshold == 0 {
		ap.Threshold = 0.5
	}
	audioDense, err := dpe.NewDense(crypto.DeriveKey(cfg.Key.Master, "rk1-audio"), ap)
	if err != nil {
		return nil, fmt.Errorf("core: audio dense dpe: %w", err)
	}
	return &Client{
		dense:      dense,
		audioDense: audioDense,
		sparse:     dpe.NewSparse(crypto.DeriveKey(cfg.Key.Master, "rk2")),
		meter:      cfg.Meter,
		pyr:        cfg.Pyramid,
	}, nil
}

// Dense exposes the client's Dense-DPE instance (for diagnostics and the
// Table II experiment).
func (c *Client) Dense() *dpe.Dense { return c.dense }

// Update is the encrypted payload of Algorithm 7's USER.Update: the
// AES-encrypted object plus its DPE-encoded feature vectors per modality.
// Everything here is safe to hand to the honest-but-curious cloud.
type Update struct {
	ObjectID   string
	Owner      string
	Ciphertext []byte
	// TextTokens maps each Sparse-DPE keyword token to its frequency in
	// the object's text modality.
	TextTokens map[dpe.Token]uint64
	// ImageEncodings holds one Dense-DPE encoding per extracted descriptor.
	ImageEncodings []vec.BitVec
	// AudioEncodings holds one Dense-DPE encoding per audio frame
	// descriptor.
	AudioEncodings []vec.BitVec
}

// Query is the encrypted payload of Algorithm 9's USER.Search: the query
// object's encoded feature vectors.
type Query struct {
	TextTokens     map[dpe.Token]uint64
	ImageEncodings []vec.BitVec
	AudioEncodings []vec.BitVec
	K              int
}

// ErrEmptyObject is returned when an object carries no supported modality.
var ErrEmptyObject = errors.New("core: object has no modalities")

// PrepareUpdate runs the client half of Update: extract feature vectors
// from each modality (Index cost), encode them with DPE and encrypt the
// object under its data key (Encrypt cost). The server never sees the
// plaintext object or features.
func (c *Client) PrepareUpdate(obj *Object, dataKey crypto.Key) (*Update, error) {
	return c.PrepareUpdateContext(context.Background(), obj, dataKey)
}

// PrepareUpdateContext is PrepareUpdate carrying the caller's context, so
// the extract/encode spans join the request's distributed trace.
func (c *Client) PrepareUpdateContext(ctx context.Context, obj *Object, dataKey crypto.Key) (*Update, error) {
	if obj.ID == "" {
		return nil, errors.New("core: object needs an ID")
	}
	if obj.Text == "" && obj.Image == nil && obj.Audio == nil {
		return nil, ErrEmptyObject
	}
	_, sp := obs.StartSpan(ctx, obs.Default(), "client/prepare_update")
	defer sp.End()
	esp := sp.Child("extract")
	hist, descs, audioDescs := c.extractFeatures(obj)
	esp.End()
	up := &Update{ObjectID: obj.ID, Owner: obj.Owner}
	var encodeErr error
	csp := sp.Child("encode")
	c.timeCPU(device.Encrypt, func() {
		up.TextTokens = c.encodeText(hist)
		up.ImageEncodings, encodeErr = c.encodeDense(c.dense, descs)
		if encodeErr != nil {
			return
		}
		up.AudioEncodings, encodeErr = c.encodeDense(c.audioDense, audioDescs)
		if encodeErr != nil {
			return
		}
		plain, err := obj.Marshal()
		if err != nil {
			encodeErr = err
			return
		}
		up.Ciphertext, encodeErr = crypto.NewCipher(dataKey).Encrypt(plain)
	})
	csp.End()
	if encodeErr != nil {
		return nil, encodeErr
	}
	return up, nil
}

// PrepareQuery runs the client half of Search: the query object is
// processed exactly like an update — extract, encode — but nothing is
// encrypted or stored.
func (c *Client) PrepareQuery(obj *Object, k int) (*Query, error) {
	return c.PrepareQueryContext(context.Background(), obj, k)
}

// PrepareQueryContext is PrepareQuery carrying the caller's context.
func (c *Client) PrepareQueryContext(ctx context.Context, obj *Object, k int) (*Query, error) {
	if k <= 0 {
		return nil, errors.New("core: k must be positive")
	}
	if obj.Text == "" && obj.Image == nil && obj.Audio == nil {
		return nil, ErrEmptyObject
	}
	_, sp := obs.StartSpan(ctx, obs.Default(), "client/prepare_query")
	defer sp.End()
	esp := sp.Child("extract")
	hist, descs, audioDescs := c.extractFeatures(obj)
	esp.End()
	q := &Query{K: k}
	var encodeErr error
	csp := sp.Child("encode")
	c.timeCPU(device.Encrypt, func() {
		q.TextTokens = c.encodeText(hist)
		q.ImageEncodings, encodeErr = c.encodeDense(c.dense, descs)
		if encodeErr != nil {
			return
		}
		q.AudioEncodings, encodeErr = c.encodeDense(c.audioDense, audioDescs)
	})
	csp.End()
	if encodeErr != nil {
		return nil, encodeErr
	}
	return q, nil
}

// DecryptObject recovers a plaintext object from a search/read result using
// its data key (requested from the owner out of band, per the system model).
func DecryptObject(ciphertext []byte, dataKey crypto.Key) (*Object, error) {
	plain, err := crypto.NewCipher(dataKey).Decrypt(ciphertext)
	if err != nil {
		return nil, err
	}
	return UnmarshalObject(plain)
}

// extractFeatures performs the plaintext feature extraction (Index cost).
func (c *Client) extractFeatures(obj *Object) (text.Histogram, [][]float64, [][]float64) {
	var hist text.Histogram
	var descs, audioDescs [][]float64
	c.timeCPU(device.Index, func() {
		if obj.Text != "" {
			hist = text.Extract(obj.Text)
		}
		if obj.Image != nil {
			descs = imaging.Extract(obj.Image, c.pyr)
		}
		if obj.Audio != nil {
			audioDescs = audio.Extract(obj.Audio)
		}
	})
	return hist, descs, audioDescs
}

func (c *Client) encodeText(hist text.Histogram) map[dpe.Token]uint64 {
	if len(hist) == 0 {
		return nil
	}
	out := make(map[dpe.Token]uint64, len(hist))
	for _, term := range hist {
		out[c.sparse.Encode(term.Word)] = term.Freq
	}
	return out
}

func (c *Client) encodeDense(enc *dpe.Dense, descs [][]float64) ([]vec.BitVec, error) {
	if len(descs) == 0 {
		return nil, nil
	}
	out := make([]vec.BitVec, len(descs))
	for i, d := range descs {
		e, err := enc.Encode(d)
		if err != nil {
			return nil, fmt.Errorf("core: encode descriptor %d: %w", i, err)
		}
		out[i] = e
	}
	return out, nil
}

func (c *Client) timeCPU(cat device.Category, fn func()) {
	if c.meter == nil {
		fn()
		return
	}
	c.meter.TimeCPU(cat, fn)
}
