package core_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEngineLayersDoNotImportTransport pins the import boundary of the
// engine: internal/core, internal/index and internal/cluster are the
// server-side retrieval stack and must stay free of the transport layers
// (internal/server, internal/client, internal/wire). A violation here means
// engine code grew a dependency on RPC plumbing — the layering the segmented
// index refactor relies on (index and cluster are swappable below core)
// would quietly erode.
func TestEngineLayersDoNotImportTransport(t *testing.T) {
	forbidden := map[string]string{
		"mie/internal/server":  "transport (server)",
		"mie/internal/client":  "transport (client)",
		"mie/internal/wire":    "wire protocol",
		"mie/internal/replica": "replication tier",
		"mie/internal/router":  "routing tier",
	}
	// Directories relative to this test file (internal/core).
	layers := map[string]string{
		"core":    ".",
		"index":   filepath.Join("..", "index"),
		"cluster": filepath.Join("..", "cluster"),
		"ann":     filepath.Join("..", "ann"),
	}
	fset := token.NewFileSet()
	for layer, dir := range layers {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s directory: %v", layer, err)
		}
		for _, entry := range entries {
			name := entry.Name()
			if entry.IsDir() || !strings.HasSuffix(name, ".go") {
				continue
			}
			// Test files may import anything (oracles, harnesses).
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Errorf("parse %s: %v", path, err)
				continue
			}
			for _, imp := range f.Imports {
				importPath := strings.Trim(imp.Path.Value, `"`)
				if why, bad := forbidden[importPath]; bad {
					t.Errorf("%s/%s imports %s (%s): engine layers must not depend on transport",
						layer, name, importPath, why)
				}
			}
		}
	}
}

// TestReplicationTierImportBoundaries pins the scale-out tier's layering:
// the replica package plugs into the server through interfaces
// (server.ReplicationSource, server.Forwarder), so it must never import the
// server itself — and the router is a pure frame proxy that must know
// nothing of the server, the replication internals, or the engine. Core
// stays below both: it may be imported, never import them (covered by
// TestEngineLayersDoNotImportTransport above).
func TestReplicationTierImportBoundaries(t *testing.T) {
	forbidden := map[string]map[string]bool{
		filepath.Join("..", "replica"): {
			"mie/internal/server": true,
			"mie/internal/router": true,
		},
		filepath.Join("..", "router"): {
			"mie/internal/server":  true,
			"mie/internal/replica": true,
			"mie/internal/core":    true,
		},
	}
	fset := token.NewFileSet()
	for dir, banned := range forbidden {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, entry := range entries {
			name := entry.Name()
			if entry.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Errorf("parse %s: %v", path, err)
				continue
			}
			for _, imp := range f.Imports {
				importPath := strings.Trim(imp.Path.Value, `"`)
				if banned[importPath] {
					t.Errorf("%s imports %s: replication-tier layering violation", path, importPath)
				}
			}
		}
	}
}

// TestIndexAndClusterDoNotImportCore checks direction within the engine:
// the index and cluster layers sit below core and must not import it (or
// each other's sibling, for cluster -> index).
func TestIndexAndClusterDoNotImportCore(t *testing.T) {
	forbidden := map[string]map[string]bool{
		filepath.Join("..", "index"):   {"mie/internal/core": true},
		filepath.Join("..", "cluster"): {"mie/internal/core": true, "mie/internal/index": true},
		filepath.Join("..", "ann"):     {"mie/internal/core": true, "mie/internal/index": true},
	}
	fset := token.NewFileSet()
	for dir, banned := range forbidden {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, entry := range entries {
			name := entry.Name()
			if entry.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Errorf("parse %s: %v", path, err)
				continue
			}
			for _, imp := range f.Imports {
				importPath := strings.Trim(imp.Path.Value, `"`)
				if banned[importPath] {
					t.Errorf("%s imports %s: upward dependency inside the engine", path, importPath)
				}
			}
		}
	}
}
