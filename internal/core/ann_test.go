package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// annRepoOptions routes every dense linear scan through the candidate index
// (MinCorpus 1) with an exhaustive probe budget (Probes = 2^Bits), the
// setting where the ANN ranking is provably identical to the exact scan.
func annRepoOptions(dir string) RepositoryOptions {
	opts := smallRepoOptions(dir)
	opts.ANN = ANNOptions{Tables: 2, Bits: 6, Probes: 1 << 6, MinCorpus: 1}
	return opts
}

// TestANNExhaustiveParity pins the correctness contract of the ANN path:
// with an exhaustive probe budget the candidate set covers every live code,
// the per-object minimum distances match the exact scan's, and the float
// accumulation runs in the same order — so an untrained repository routed
// through ANN returns byte-identical hits (ids AND scores) to one with ANN
// disabled.
func TestANNExhaustiveParity(t *testing.T) {
	c := testClient(t)
	optsANN := annRepoOptions(t.TempDir())
	optsExact := smallRepoOptions(t.TempDir())
	optsExact.ANN.Disable = true
	ra, err := NewRepository("parity-ann", optsANN)
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewRepository("parity-exact", optsExact)
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, ra, 6, 3)
	fillRepo(t, c, re, 6, 3)

	for _, query := range []*Object{
		{Image: classImage(0, 500)},
		{Image: classImage(1, 501)},
		{Image: classImage(2, 502)},
		testObject(1, 503), // text + image, exercising fusion over the ANN list
	} {
		q, err := c.PrepareQuery(query, 8)
		if err != nil {
			t.Fatal(err)
		}
		hitsANN, err := ra.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		hitsExact, err := re.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(hitsANN) != len(hitsExact) {
			t.Fatalf("ANN returned %d hits, exact %d", len(hitsANN), len(hitsExact))
		}
		for i := range hitsANN {
			if hitsANN[i].ObjectID != hitsExact[i].ObjectID || hitsANN[i].Score != hitsExact[i].Score {
				t.Fatalf("rank %d diverges: ANN (%s, %v) vs exact (%s, %v)",
					i, hitsANN[i].ObjectID, hitsANN[i].Score, hitsExact[i].ObjectID, hitsExact[i].Score)
			}
		}
	}
	if ra.met.annProbes.Value() == 0 {
		t.Error("ANN repository never probed its candidate index — searches took the exact path")
	}
	if re.met.annProbes.Value() != 0 {
		t.Error("disabled-ANN repository probed a candidate index")
	}
}

// TestANNMaintenanceFollowsMutations: updates, replacements and removes keep
// the candidate index in lockstep with the store, so ANN-routed searches
// never surface a removed object and always see a replaced one.
func TestANNMaintenanceFollowsMutations(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("ann-maint", annRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 4, 2)
	if got := r.met.annCodes.Value(); got == 0 {
		t.Fatal("candidate index empty after updates")
	}
	before := r.met.annCodes.Value()
	// Replace: code count must not grow.
	up, err := c.PrepareUpdate(testObject(0, 1), testDataKey(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update(up); err != nil {
		t.Fatal(err)
	}
	if got := r.met.annCodes.Value(); got != before {
		t.Errorf("replace changed live codes %d -> %d", before, got)
	}
	// Remove: the object must vanish from ANN-routed results.
	if err := r.Remove("obj-c0-1"); err != nil {
		t.Fatal(err)
	}
	for _, id := range searchIDs(t, c, r, &Object{Image: classImage(0, 990)}, 8) {
		if id == "obj-c0-1" {
			t.Fatal("removed object surfaced through the candidate index")
		}
	}
	if got := r.met.annCodes.Value(); got >= before {
		t.Errorf("remove did not shrink live codes: %d -> %d", before, got)
	}
}

// TestANNSearchDuringTrainAndChurn races ANN-routed searches against
// training (which compacts the candidate indexes) and update/remove churn,
// under -race.
func TestANNSearchDuringTrainAndChurn(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("ann-stress", annRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 5, 3)
	q, err := c.PrepareQuery(&Object{Image: classImage(1, 700)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // churn: replace and remove/re-add objects
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := i % 5
			if i%3 == 0 {
				_ = r.Remove(fmt.Sprintf("obj-c%d-%d", i%3, id))
				continue
			}
			up, err := c.PrepareUpdate(testObject(i%3, id), testDataKey(3))
			if err == nil {
				_ = r.Update(up)
			}
		}
	}()
	wg.Add(1)
	go func() { // trains: full then incremental, compacting the ANN set
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := r.Train(); err != nil {
				t.Errorf("train: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := r.Search(q); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// annGoldenExpect pins the ANN-routed ranking a fixed pre-training query
// returned when the golden fixture was written.
type annGoldenExpect struct {
	Objects   int      `json:"objects"`
	ANNCodes  int      `json:"ann_codes"`
	RankedIDs []string `json:"ranked_ids"`
}

// TestGoldenANNRestore pins that a restored repository rebuilds its ANN
// candidate indexes deterministically: testdata holds an untrained snapshot
// written with ANN routing active plus the ranked ids its fixed query
// returned; today's LoadRepository must reproduce that exact ranking through
// the rebuilt index. Regenerate deliberately with
//
//	go test ./internal/core -run GoldenANNRestore -update
func TestGoldenANNRestore(t *testing.T) {
	snapPath := filepath.Join("testdata", "golden-ann.snap")
	expectPath := filepath.Join("testdata", "golden-ann.json")
	c := testClient(t)
	query := &Object{Image: classImage(1, 77)}

	if *updateGolden {
		r, err := NewRepository("golden-ann", annRepoOptions(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		fillRepo(t, c, r, 4, 3)
		f, err := os.Create(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Snapshot(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		exp := annGoldenExpect{
			Objects:   r.Size(),
			ANNCodes:  int(r.met.annCodes.Value()),
			RankedIDs: searchIDs(t, c, r, query, 6),
		}
		blob, err := json.MarshalIndent(exp, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(expectPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s and %s", snapPath, expectPath)
	}

	blob, err := os.ReadFile(expectPath)
	if err != nil {
		t.Fatalf("read golden expectations (run with -update to regenerate): %v", err)
	}
	var want annGoldenExpect
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("open golden snapshot (run with -update to regenerate): %v", err)
	}
	defer func() { _ = f.Close() }()
	r, err := LoadRepository(f, nil)
	if err != nil {
		t.Fatalf("golden ANN snapshot no longer loads: %v", err)
	}
	if r.IsTrained() {
		t.Fatal("golden ANN fixture restored trained; it must exercise the pre-training ANN path")
	}
	if r.Size() != want.Objects {
		t.Errorf("restored %d objects, want %d", r.Size(), want.Objects)
	}
	if got := int(r.met.annCodes.Value()); got != want.ANNCodes {
		t.Errorf("rebuilt candidate index holds %d codes, want %d", got, want.ANNCodes)
	}
	got := searchIDs(t, c, r, query, 6)
	if len(got) != len(want.RankedIDs) {
		t.Fatalf("search returned %v, want %v", got, want.RankedIDs)
	}
	for i := range got {
		if got[i] != want.RankedIDs[i] {
			t.Fatalf("rank %d: %s, want %s (full: %v vs %v)", i, got[i], want.RankedIDs[i], got, want.RankedIDs)
		}
	}
	if r.met.annProbes.Value() == 0 {
		t.Error("restored repository did not route the query through the rebuilt candidate index")
	}
}

// TestANNSnapshotRoundTripUntrained: a snapshot/restore cycle of an
// ANN-routed repository preserves search results exactly (the non-golden
// half of the restore guarantee).
func TestANNSnapshotRoundTripUntrained(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("ann-snap", annRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 5, 3)
	query := &Object{Image: classImage(2, 88)}
	before := searchIDs(t, c, r, query, 6)

	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRepository(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := searchIDs(t, c, restored, query, 6)
	if len(before) != len(after) {
		t.Fatalf("before %v, after %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rank %d: %s before, %s after restore", i, before[i], after[i])
		}
	}
}
