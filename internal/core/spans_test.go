package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"mie/internal/dpe"
	"mie/internal/obs"
	"mie/internal/vec"
)

// phaseSum reads the accumulated phase_seconds histogram for a span path.
func phaseSum(path string) float64 {
	return obs.Default().Histogram(obs.L("phase_seconds", "phase", path)).Sum()
}

// TestModalityLookupsRunInParallel verifies — via the recorded span timings
// the server path exports — that per-modality lookups fan out concurrently:
// the repo/search phase must cost about max(text_lookup, image_lookup), not
// their sum. The corpus is sized so both linear scans take measurable time,
// and the best of several runs is compared so scheduler noise cannot fail a
// genuinely parallel implementation.
func TestModalityLookupsRunInParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 CPU to observe lookup parallelism")
	}
	r, err := NewRepository("spans", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	// Untrained: both modalities take the linear-scan path, whose cost we
	// control directly through corpus and query sizes.
	rng := rand.New(rand.NewSource(42))
	randVec := func() vec.BitVec {
		words := []uint64{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
		v, err := vec.BitVecFromWords(words, 256)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	const objects = 1500
	tokens := make([]dpe.Token, 64)
	for i := range tokens {
		rng.Read(tokens[i][:])
	}
	for i := 0; i < objects; i++ {
		toks := make(map[dpe.Token]uint64, len(tokens))
		for _, tok := range tokens {
			toks[tok] = uint64(i%7 + 1)
		}
		encs := make([]vec.BitVec, 16)
		for j := range encs {
			encs[j] = randVec()
		}
		r.objects.Put(fmt.Sprintf("sp-%d", i), &storedObject{
			owner:      "spans",
			textTokens: toks,
			imageEncs:  encs,
		})
	}
	q := &Query{K: 10}
	q.TextTokens = make(map[dpe.Token]uint64, len(tokens))
	for _, tok := range tokens {
		q.TextTokens[tok] = 1
	}
	for j := 0; j < 16; j++ {
		q.ImageEncodings = append(q.ImageEncodings, randVec())
	}

	best := 10.0
	var bestSearch, bestText, bestImage float64
	for iter := 0; iter < 6; iter++ {
		s0, t0, i0 := phaseSum("repo/search"), phaseSum("repo/search/text_lookup"), phaseSum("repo/search/image_lookup")
		if _, err := r.Search(q); err != nil {
			t.Fatal(err)
		}
		dS := phaseSum("repo/search") - s0
		dT := phaseSum("repo/search/text_lookup") - t0
		dI := phaseSum("repo/search/image_lookup") - i0
		if dT+dI <= 0 {
			t.Fatalf("iter %d: lookup spans recorded no time (dT=%g dI=%g)", iter, dT, dI)
		}
		if ratio := dS / (dT + dI); ratio < best {
			best, bestSearch, bestText, bestImage = ratio, dS, dT, dI
		}
	}
	t.Logf("best run: search=%.4fs text=%.4fs image=%.4fs ratio=%.2f", bestSearch, bestText, bestImage, best)
	// Sequential lookups would give ratio >= 1 (search ≈ sum + fusion);
	// parallel ones give ratio ≈ max/(sum) plus overhead. 0.95 cleanly
	// separates the two even when one modality dominates.
	if best >= 0.95 {
		t.Errorf("search span = %.2fx the summed lookup spans; lookups do not appear to run in parallel", best)
	}
}
