package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildTrainedRepo creates a trained repository with multimodal content.
func buildTrainedRepo(t *testing.T, id string) (*Client, *Repository) {
	t.Helper()
	c := testClient(t)
	r, err := NewRepository(id, smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 4, 3)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	return c, r
}

// searchIDs runs a query and returns the ordered result ids.
func searchIDs(t *testing.T, c *Client, r *Repository, obj *Object, k int) []string {
	t.Helper()
	q, err := c.PrepareQuery(obj, k)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(hits))
	for i, h := range hits {
		ids[i] = h.ObjectID
	}
	return ids
}

func TestSnapshotRoundTrip(t *testing.T) {
	c, r := buildTrainedRepo(t, "snap1")
	query := testObject(1, 77)
	before := searchIDs(t, c, r, query, 6)

	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRepository(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != "snap1" {
		t.Errorf("restored id = %q", restored.ID())
	}
	if restored.Size() != r.Size() {
		t.Errorf("restored size %d != %d", restored.Size(), r.Size())
	}
	if !restored.IsTrained() {
		t.Fatal("restored repository lost trained state")
	}
	if restored.VocabularySize() != r.VocabularySize() {
		t.Errorf("vocabulary size %d != %d", restored.VocabularySize(), r.VocabularySize())
	}
	after := searchIDs(t, c, restored, query, 6)
	if len(before) != len(after) {
		t.Fatalf("result counts differ: %v vs %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("result %d: %s != %s (restore must preserve ranking)", i, before[i], after[i])
		}
	}
	// Restored repository stays writable and searchable dynamically.
	up, err := c.PrepareUpdate(&Object{ID: "post-restore", Owner: "u", Text: "quokka island wildlife"}, testDataKey(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Update(up); err != nil {
		t.Fatal(err)
	}
	got := searchIDs(t, c, restored, &Object{ID: "q", Text: "quokka"}, 2)
	if len(got) == 0 || got[0] != "post-restore" {
		t.Errorf("post-restore update not searchable: %v", got)
	}
}

func TestSnapshotUntrainedRepo(t *testing.T) {
	c := testClient(t)
	r, err := NewRepository("snap-untrained", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, r, 2, 2)
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRepository(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.IsTrained() {
		t.Error("untrained snapshot restored as trained")
	}
	if restored.Size() != 4 {
		t.Errorf("size = %d", restored.Size())
	}
	// Linear search still works, then training works post-restore.
	if got := searchIDs(t, c, restored, testObject(0, 9), 2); len(got) == 0 {
		t.Error("linear search on restored repo found nothing")
	}
	if err := restored.Train(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRepositoryRejectsGarbage(t *testing.T) {
	if _, err := LoadRepository(bytes.NewReader([]byte("not a snapshot")), nil); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("err = %v, want ErrBadSnapshot", err)
	}
	// Valid gob of the wrong shape must also fail cleanly.
	if _, err := LoadRepository(bytes.NewReader([]byte{}), nil); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("empty: err = %v, want ErrBadSnapshot", err)
	}
}

func TestLoadRepositoryRejectsTruncated(t *testing.T) {
	_, r := buildTrainedRepo(t, "snap-trunc")
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadRepository(bytes.NewReader(trunc), nil); err == nil {
		t.Error("truncated snapshot loaded without error")
	}
}

func TestSaveLoadService(t *testing.T) {
	dir := t.TempDir()
	svc := openMem(t)
	c := testClient(t)
	for _, id := range []string{"alpha", "beta/with:odd chars"} {
		repo, err := svc.CreateRepository(id, smallRepoOptions(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		up, err := c.PrepareUpdate(&Object{ID: "o1", Owner: "u", Text: "persistent content " + id}, testDataKey(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := SaveService(svc, dir); err != nil {
		t.Fatal(err)
	}

	loaded, _, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Repositories(); len(got) != 2 {
		t.Fatalf("loaded %d repositories: %v", len(got), got)
	}
	repo, err := loaded.Repository("beta/with:odd chars")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := repo.Get("o1"); err != nil {
		t.Errorf("restored object missing: %v", err)
	}
}

func TestSaveServiceOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	svc := openMem(t)
	c := testClient(t)
	repo, err := svc.CreateRepository("r", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.PrepareUpdate(&Object{ID: "v1", Owner: "u", Text: "first version"}, testDataKey(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Update(up); err != nil {
		t.Fatal(err)
	}
	if err := SaveService(svc, dir); err != nil {
		t.Fatal(err)
	}
	up2, err := c.PrepareUpdate(&Object{ID: "v2", Owner: "u", Text: "second version"}, testDataKey(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Update(up2); err != nil {
		t.Fatal(err)
	}
	if err := SaveService(svc, dir); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := loaded.Repository("r")
	if err != nil {
		t.Fatal(err)
	}
	if lr.Size() != 2 {
		t.Errorf("size = %d, want 2", lr.Size())
	}
	// No stray temp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".snap-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadServicePartialFailure(t *testing.T) {
	dir := t.TempDir()
	svc := openMem(t)
	c := testClient(t)
	repo, err := svc.CreateRepository("good", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.PrepareUpdate(&Object{ID: "o", Owner: "u", Text: "survives"}, testDataKey(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Update(up); err != nil {
		t.Fatal(err)
	}
	if err := SaveService(svc, dir); err != nil {
		t.Fatal(err)
	}
	// Inject a corrupt snapshot alongside the good one.
	if err := os.WriteFile(filepath.Join(dir, "corrupt.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := OpenService(ServiceOptions{Dir: dir})
	if err == nil {
		t.Error("expected an aggregate error for the corrupt snapshot")
	}
	if got := loaded.Repositories(); len(got) != 1 || got[0] != "good" {
		t.Errorf("partial load = %v, want just [good]", got)
	}
}

func TestLoadServiceFreshDirectory(t *testing.T) {
	svc, report, err := OpenService(ServiceOptions{Dir: filepath.Join(t.TempDir(), "does-not-exist")})
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.Repositories()) != 0 {
		t.Error("fresh service not empty")
	}
	if report.Repositories != 0 || report.ReplayedRecords != 0 {
		t.Errorf("fresh directory reported recovery work: %+v", report)
	}
	// The fresh service is durable: a repository created now survives.
	if _, err := svc.CreateRepository("born-fresh", RepositoryOptions{}); err != nil {
		t.Fatal(err)
	}
}
