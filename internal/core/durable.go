package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mie/internal/obs"
	"mie/internal/wal"
)

// DurableOptions configures a service's snapshot+WAL persistence: each
// hosted repository gets one snapshot file plus one write-ahead log in Dir.
// Every acknowledged Update/Remove is appended to the log before the caller
// sees success; a periodic snapshot folds the log back into the snapshot
// and rotates it empty. Startup is the inverse: load snapshot, replay log.
type DurableOptions struct {
	// Dir is the data directory (snapshots and logs side by side).
	Dir string
	// Sync is the WAL fsync policy; the zero value is wal.SyncAlways, under
	// which every acknowledged mutation survives kill -9 and power loss.
	Sync wal.SyncPolicy
	// SyncInterval bounds the loss window under wal.SyncInterval; 0 means
	// the wal package default (100ms).
	SyncInterval time.Duration
}

// RecoveryReport summarizes what OpenService reconstructed.
type RecoveryReport struct {
	// Repositories successfully restored (snapshot loaded, WAL replayed).
	Repositories int
	// ColdRepositories were discovered on disk but, under LazyActivation,
	// registered cold rather than loaded; they activate on first touch.
	ColdRepositories int
	// ReplayedRecords is the total number of WAL mutations applied on top
	// of snapshots.
	ReplayedRecords int
	// ReplayedBytes is the payload volume of those mutations.
	ReplayedBytes int64
	// TornBytes is how much torn or corrupt WAL tail was discarded — the
	// footprint of dying mid-write, cut off rather than erred on.
	TornBytes int64
	// OrphansRemoved counts dead files cleaned up (a .wal with no snapshot:
	// a creation or drop that crashed halfway).
	OrphansRemoved int
}

// walMetrics: the persistence counters of the process registry.
var (
	walAppendsC  = obs.Default().Counter("wal_appends")
	walFsyncsC   = obs.Default().Counter("wal_fsyncs")
	walBytesC    = obs.Default().Counter("wal_bytes")
	walReplayedC = obs.Default().Counter("recovery_replayed_records")
)

// walObserver feeds the process registry from the log's event hooks.
type walObserver struct{}

func (walObserver) Appended(n int) { walAppendsC.Inc(); walBytesC.Add(int64(n)) }
func (walObserver) Synced()        { walFsyncsC.Inc() }

// walFileOpener (nil outside tests) overrides how WAL backing files are
// opened, so fault-injection tests can substitute scripted walfault files
// for the real disk. Never set in production code.
var walFileOpener func(path string) (wal.File, error)

// durability is a service's persistence configuration.
type durability struct {
	dir  string
	opts wal.Options
}

func newDurability(o DurableOptions) *durability {
	wo := wal.Options{
		Sync:         o.Sync,
		SyncInterval: o.SyncInterval,
		Observer:     walObserver{},
		OpenFile:     walFileOpener, // nil outside tests = real files
	}
	return &durability{dir: o.Dir, opts: wo}
}

// walRecord is the payload of one WAL record: exactly one acknowledged
// mutation, gob-encoded standalone so any record decodes without the ones
// before it.
type walRecord struct {
	// Remove marks a removal of ObjectID; otherwise Update is set.
	Remove   bool
	ObjectID string
	Update   *Update
}

func encodeWALRecord(rec *walRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("core: encode wal record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeWALRecord(b []byte) (*walRecord, error) {
	var rec walRecord
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("core: decode wal record: %w", err)
	}
	if !rec.Remove && rec.Update == nil {
		return nil, errors.New("core: wal record carries neither update nor remove")
	}
	return &rec, nil
}

// applyWALRecord replays one recovered mutation. Called before the log is
// attached, so the replay does not re-append what it reads.
func (r *Repository) applyWALRecord(m *walRecord) error {
	if m.Remove {
		return r.Remove(m.ObjectID)
	}
	return r.Update(m.Update)
}

// initRepo makes a freshly created repository durable from birth: it opens
// the repository's (empty) log and writes an initial snapshot, so a restart
// before the first periodic snapshot still knows the repository exists and
// has a snapshot to replay the WAL onto.
func (d *durability) initRepo(r *Repository) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return fmt.Errorf("core: create data dir: %w", err)
	}
	l, _, err := wal.Open(filepath.Join(d.dir, walFileName(r.ID())), d.opts, nil)
	if err != nil {
		return err
	}
	// A pre-existing log at this path belongs to a previous incarnation (a
	// drop that crashed before deleting it); the new repository starts empty.
	if err := l.Reset(); err != nil {
		_ = l.Close()
		return err
	}
	r.attachWAL(l)
	if err := r.saveTo(d.dir); err != nil {
		_ = l.Close()
		return err
	}
	return nil
}

// removeRepoFiles deletes a dropped repository's on-disk state. The
// snapshot goes first: if the process dies between the two removals, what
// remains is an orphaned .wal (cleaned up on the next load or save), never
// a resurrectable snapshot.
func (d *durability) removeRepoFiles(id string) error {
	if err := os.Remove(filepath.Join(d.dir, snapshotFileName(id))); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: remove snapshot of %s: %w", id, err)
	}
	if err := os.Remove(filepath.Join(d.dir, walFileName(id))); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: remove wal of %s: %w", id, err)
	}
	return nil
}

// walReplay is what replaying one repository's log recovered.
type walReplay struct {
	Records int
	Bytes   int64
	Torn    int64
}

// loadRepo restores one repository from its on-disk image: snapshot load,
// WAL replay on top (remove-then-add, the same idempotent discipline as the
// train-time changelog), then the log stays attached so new mutations keep
// appending. It is the shared path of eager recovery and cold activation.
func (d *durability) loadRepo(sp *obs.Span, id string, indexOpts *RepositoryOptions) (*Repository, walReplay, error) {
	var st walReplay
	repo, err := loadSnapshotFile(sp, filepath.Join(d.dir, snapshotFileName(id)), indexOpts)
	if err != nil {
		return nil, st, err
	}
	if repo.ID() != id {
		_ = repo.Close()
		return nil, st, fmt.Errorf("core: snapshot %s holds repository %q", snapshotFileName(id), repo.ID())
	}
	wsp := sp.Child("wal_replay")
	l, rec, err := wal.Open(filepath.Join(d.dir, walFileName(id)), d.opts, func(b []byte) error {
		m, derr := decodeWALRecord(b)
		if derr != nil {
			return derr
		}
		st.Bytes += int64(len(b))
		return repo.applyWALRecord(m)
	})
	wsp.End()
	if err != nil {
		// A log that opens but cannot replay leaves the repository in a
		// half-recovered state; keep it down and surface the error.
		_ = repo.Close()
		return nil, st, fmt.Errorf("%s: %w", walFileName(id), err)
	}
	repo.attachWAL(l)
	walReplayedC.Add(int64(rec.Records))
	st.Records = rec.Records
	st.Torn = rec.DroppedBytes
	return repo, st, nil
}

// openDir populates a durable service from its data directory: every
// snapshot is restored — or, under LazyActivation, registered cold — and
// orphaned logs are pruned. Files that fail to load are reported together;
// valid repositories still come up (partial availability beats none after a
// crash). A fresh or missing directory yields an empty — but durable —
// service.
func (s *Service) openDir() (*RecoveryReport, error) {
	d := s.durable
	report := &RecoveryReport{}
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create data dir: %w", err)
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("core: read data dir: %w", err)
	}
	_, sp := obs.StartSpan(context.Background(), obs.Default(), "service/recovery")
	defer sp.End()
	var loadErrs []string
	snapStems := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		stem := strings.TrimSuffix(e.Name(), ".snap")
		snapStems[stem] = true
		id, err := repoIDFromStem(stem)
		if err != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %v", e.Name(), err))
			continue
		}
		if s.lazy {
			// Discover, don't load: the entry starts cold and activates on
			// first Acquire.
			s.mu.Lock()
			s.entries[id] = &repoEntry{id: id}
			s.repoGauge.Set(int64(len(s.entries)))
			s.mu.Unlock()
			report.ColdRepositories++
			continue
		}
		repo, rec, err := d.loadRepo(sp, id, s.repoOpts)
		if err != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %v", e.Name(), err))
			continue
		}
		repo.setGovernor(s.gov)
		if s.tap != nil {
			repo.setTap(s.tap)
		}
		s.gov.addRepo(repo)
		report.Repositories++
		report.ReplayedRecords += rec.Records
		report.ReplayedBytes += rec.Bytes
		report.TornBytes += rec.Torn
		entry := &repoEntry{id: id, repo: repo, lastUsed: s.clock.Add(1)}
		s.mu.Lock()
		s.entries[id] = entry
		s.repoGauge.Set(int64(len(s.entries)))
		s.mu.Unlock()
		s.markActive(entry)
	}
	// A .wal with no snapshot is dead: either a creation that crashed before
	// its initial snapshot (never acknowledged) or a drop that crashed
	// between deleting the snapshot and the log.
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") || snapStems[strings.TrimSuffix(e.Name(), ".wal")] {
			continue
		}
		if err := os.Remove(filepath.Join(d.dir, e.Name())); err == nil {
			report.OrphansRemoved++
		}
	}
	if len(loadErrs) > 0 {
		return report, fmt.Errorf("core: %d snapshot(s) failed to load: %s", len(loadErrs), strings.Join(loadErrs, "; "))
	}
	return report, nil
}

// loadSnapshotFile restores one repository from its snapshot file.
func loadSnapshotFile(sp *obs.Span, path string, indexOpts *RepositoryOptions) (*Repository, error) {
	ssp := sp.Child("snapshot_load")
	defer ssp.End()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	repo, err := LoadRepository(f, indexOpts)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return repo, err
}

// SaveService writes every *active* repository hosted by the service into
// dir, one snapshot file per repository, each replaced atomically and
// fsynced through to the directory entry, with the repository's WAL rotated
// empty in the same consistent cut. Cold repositories need no save — their
// on-disk snapshot+WAL image is already their only state. Snapshot and log
// files belonging to repositories the service no longer hosts (cold or
// active) are removed — without that, a repository dropped at runtime would
// resurrect from its stale snapshot on the next restart.
func SaveService(s *Service, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create snapshot dir: %w", err)
	}
	for _, e := range s.activeEntries() {
		// Pin the repository for the span of its save so eviction (which
		// would close the WAL mid-rotation) cannot race it.
		repo, release, err := s.Acquire(e.id)
		if err != nil {
			continue // dropped concurrently
		}
		err = repo.saveTo(dir)
		release()
		if err != nil {
			return err
		}
	}
	return pruneOrphanFiles(s, dir)
}

// pruneOrphanFiles removes .snap and .wal files with no hosted repository.
// It holds the service lock so the scan is atomic against a concurrent
// durable CreateRepository writing its initial snapshot.
func pruneOrphanFiles(s *Service, dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keep := make(map[string]bool, 2*len(s.entries))
	for id := range s.entries {
		keep[snapshotFileName(id)] = true
		keep[walFileName(id)] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("core: read snapshot dir: %w", err)
	}
	removed := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || keep[name] {
			continue
		}
		if !strings.HasSuffix(name, ".snap") && !strings.HasSuffix(name, ".wal") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("core: prune %s: %w", name, err)
		}
		removed = true
	}
	if removed {
		return syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed (or just-removed) entry
// survives power loss. Filesystems that cannot sync directories are
// tolerated: the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: sync dir: %w", err)
	}
	return nil
}

// walFileName escapes a repository id into its log file name; it shares the
// snapshot's escaping so the two always sit side by side.
func walFileName(id string) string {
	return repoFileStem(id) + ".wal"
}
