package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mie/internal/obs"
)

// ErrOverQuota is the sentinel wrapped by every quota rejection, so callers
// can test with errors.Is regardless of which resource ran out.
var ErrOverQuota = errors.New("core: tenant over quota")

// Quotas bounds what one tenant (an internal/auth principal, which for
// stored objects is the object's Owner) may hold resident and have in
// flight. A zero field means that resource is unlimited; the zero value
// disables admission control entirely.
//
// Objects and bytes quotas bound the tenant's footprint across the
// *resident* (active) repositories of a service: activation charges the
// tenant for every object it owns in the loaded repository, eviction
// credits them back. That is the resource admission control protects — the
// memory of this server — and it keeps accounting exact without a durable
// per-tenant ledger. In-flight quotas bound concurrent requests admitted on
// behalf of one principal.
type Quotas struct {
	// MaxObjects caps the stored objects owned by one tenant across active
	// repositories.
	MaxObjects int64
	// MaxBytes caps the approximate resident bytes owned by one tenant
	// across active repositories.
	MaxBytes int64
	// MaxInflight caps concurrent in-flight requests per tenant.
	MaxInflight int
}

// zero reports whether no quota is configured.
func (q Quotas) zero() bool { return q == Quotas{} }

// inflightRetryAfter is the retry hint attached to in-flight rejections: a
// slot frees as soon as any of the tenant's admitted requests completes.
const inflightRetryAfter = 50 * time.Millisecond

// QuotaError is the typed rejection carried to the client (wire v2 encodes
// its code and retry-after hint). It wraps ErrOverQuota.
type QuotaError struct {
	// Tenant is the principal that exceeded its quota.
	Tenant string
	// Resource is "objects", "bytes" or "inflight".
	Resource string
	// Limit is the configured cap, Used the tenant's level at rejection
	// time (both in the resource's unit).
	Limit, Used int64
	// RetryAfter is the server's hint for when a retry may be admitted.
	// Zero means retrying will not help until the tenant frees capacity
	// (removes objects); in-flight rejections carry a short positive hint.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("core: tenant %q over %s quota (%d of %d)", e.Tenant, e.Resource, e.Used, e.Limit)
}

// Unwrap makes errors.Is(err, ErrOverQuota) hold for every quota rejection.
func (e *QuotaError) Unwrap() error { return ErrOverQuota }

// TenantUsage is one tenant's current footprint as the governor sees it.
type TenantUsage struct {
	// Objects and Bytes are the tenant's stored objects and approximate
	// resident bytes across the service's active repositories.
	Objects, Bytes int64
	// Inflight is the number of currently admitted requests.
	Inflight int
}

func (u TenantUsage) empty() bool { return u == TenantUsage{} }

// TenantGovernor enforces per-tenant admission quotas for one service. All
// methods are safe for concurrent use; nil receivers are inert, so callers
// can hold a nil governor when no quotas are configured.
type TenantGovernor struct {
	quotas Quotas

	mu    sync.Mutex
	usage map[string]TenantUsage

	rejections *obs.Counter
}

func newTenantGovernor(q Quotas) *TenantGovernor {
	if q.zero() {
		return nil
	}
	return &TenantGovernor{
		quotas:     q,
		usage:      make(map[string]TenantUsage),
		rejections: obs.Default().Counter("tenant_rejections_total"),
	}
}

// Limits returns the configured quotas.
func (g *TenantGovernor) Limits() Quotas {
	if g == nil {
		return Quotas{}
	}
	return g.quotas
}

// Usage returns tenant's current footprint (zero for unknown tenants).
func (g *TenantGovernor) Usage(tenant string) TenantUsage {
	if g == nil {
		return TenantUsage{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.usage[tenant]
}

// reject records a rejection in the process registry (total plus a
// per-resource breakdown) and builds the typed error.
func (g *TenantGovernor) reject(tenant, resource string, limit, used int64, retry time.Duration) *QuotaError {
	g.rejections.Inc()
	obs.Default().Counter(obs.L("tenant_rejections_total", "resource", resource)).Inc()
	return &QuotaError{Tenant: tenant, Resource: resource, Limit: limit, Used: used, RetryAfter: retry}
}

// set stores u under tenant, deleting empty entries so the map does not
// accumulate one key per tenant ever seen. Callers hold g.mu.
func (g *TenantGovernor) set(tenant string, u TenantUsage) {
	if u.empty() {
		delete(g.usage, tenant)
		return
	}
	g.usage[tenant] = u
}

// Admit reserves an in-flight slot for tenant, returning the release that
// frees it. The server calls it once per request before dispatch.
func (g *TenantGovernor) Admit(tenant string) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	g.mu.Lock()
	u := g.usage[tenant]
	if max := g.quotas.MaxInflight; max > 0 && u.Inflight >= max {
		g.mu.Unlock()
		return nil, g.reject(tenant, "inflight", int64(max), int64(u.Inflight), inflightRetryAfter)
	}
	u.Inflight++
	g.set(tenant, u)
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			u := g.usage[tenant]
			u.Inflight--
			g.set(tenant, u)
			g.mu.Unlock()
		})
	}, nil
}

// chargeUpdate atomically checks and applies the footprint delta of one
// Update: the new owner is charged for the incoming object, and — on a
// replace — the previous owner is credited for the object going away.
// Credits are always applied; only the charge can be rejected. The caller
// undoes a successful charge with undoUpdate if the mutation later fails.
func (g *TenantGovernor) chargeUpdate(owner string, newBytes int64, prevOwner string, prevBytes int64, replaced bool) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usage[owner]
	projObjects, projBytes := u.Objects+1, u.Bytes+newBytes
	if replaced && prevOwner == owner {
		projObjects--
		projBytes -= prevBytes
	}
	if max := g.quotas.MaxObjects; max > 0 && projObjects > max {
		return g.reject(owner, "objects", max, u.Objects, 0)
	}
	if max := g.quotas.MaxBytes; max > 0 && projBytes > max {
		return g.reject(owner, "bytes", max, u.Bytes, 0)
	}
	u.Objects, u.Bytes = projObjects, projBytes
	g.set(owner, u)
	if replaced && prevOwner != owner {
		pu := g.usage[prevOwner]
		pu.Objects--
		pu.Bytes -= prevBytes
		g.set(prevOwner, pu)
	}
	return nil
}

// undoUpdate reverses a successful chargeUpdate after the mutation it
// admitted was rolled back.
func (g *TenantGovernor) undoUpdate(owner string, newBytes int64, prevOwner string, prevBytes int64, replaced bool) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usage[owner]
	u.Objects--
	u.Bytes -= newBytes
	if replaced && prevOwner == owner {
		u.Objects++
		u.Bytes += prevBytes
	}
	g.set(owner, u)
	if replaced && prevOwner != owner {
		pu := g.usage[prevOwner]
		pu.Objects++
		pu.Bytes += prevBytes
		g.set(prevOwner, pu)
	}
}

// creditRemove releases one removed object's footprint.
func (g *TenantGovernor) creditRemove(owner string, bytes int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usage[owner]
	u.Objects--
	u.Bytes -= bytes
	g.set(owner, u)
}

// addRepo charges every object of a repository that just became resident
// (activation or eager load). Called before the repository serves requests,
// so no mutation races the recount.
func (g *TenantGovernor) addRepo(r *Repository) {
	g.applyRepo(r, 1)
}

// removeRepo credits every object of a repository leaving memory (eviction
// or drop).
func (g *TenantGovernor) removeRepo(r *Repository) {
	g.applyRepo(r, -1)
}

func (g *TenantGovernor) applyRepo(r *Repository, sign int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	r.objects.Range(func(_ string, obj *storedObject) bool {
		u := g.usage[obj.owner]
		u.Objects += sign
		u.Bytes += sign * approxObjectBytes(obj)
		g.set(obj.owner, u)
		return true
	})
}
