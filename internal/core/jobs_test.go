package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// jobTestRepo builds a tiny text-only repository with a few objects so Train
// has something to do.
func jobTestRepo(t *testing.T, n int) (*Repository, *Client) {
	t.Helper()
	key, err := NewRepositoryKey()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewRepository("jobs", RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dk := key.Master
	for i := 0; i < n; i++ {
		up, err := client.PrepareUpdate(&Object{
			ID:    fmt.Sprintf("d%d", i),
			Owner: "u",
			Text:  fmt.Sprintf("document number %d about topic %d", i, i%3),
		}, dk)
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	return repo, client
}

func TestTrainStartWaitLifecycle(t *testing.T) {
	repo, _ := jobTestRepo(t, 6)
	if repo.Epoch() != 0 {
		t.Fatalf("epoch before train = %d", repo.Epoch())
	}
	id := repo.TrainStart()
	if id == 0 {
		t.Fatal("job id must be nonzero")
	}
	st, err := repo.TrainWait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != TrainDone || st.JobID != id {
		t.Fatalf("status = %+v", st)
	}
	if st.Epoch != 1 || repo.Epoch() != 1 {
		t.Errorf("epoch = %d (status %d), want 1", repo.Epoch(), st.Epoch)
	}
	if !repo.IsTrained() {
		t.Error("repository not trained after job completed")
	}
	// Status stays queryable after completion.
	again, err := repo.TrainJob(id)
	if err != nil || again.State != TrainDone {
		t.Errorf("TrainJob after done: %+v, %v", again, err)
	}
}

func TestTrainStartDeduplicatesRunningJob(t *testing.T) {
	repo, _ := jobTestRepo(t, 6)
	release := make(chan struct{})
	entered := make(chan struct{}, 2)
	SetTrainInstallHookForTest(func() {
		entered <- struct{}{}
		<-release // closed after the first run; later runs pass through
	})
	defer SetTrainInstallHookForTest(nil)

	id1 := repo.TrainStart()
	<-entered
	id2 := repo.TrainStart()
	if id1 != id2 {
		t.Errorf("second TrainStart launched a new job: %d != %d", id1, id2)
	}
	st, err := repo.TrainJob(id1)
	if err != nil || st.State != TrainRunning {
		t.Errorf("mid-flight status = %+v, %v", st, err)
	}
	close(release)
	if st, err := repo.TrainWait(context.Background(), id1); err != nil || st.State != TrainDone {
		t.Fatalf("wait: %+v, %v", st, err)
	}
	// After completion a new TrainStart creates a distinct job.
	id3 := repo.TrainStart()
	if id3 == id1 {
		t.Error("TrainStart reused a finished job id")
	}
	if _, err := repo.TrainWait(context.Background(), id3); err != nil {
		t.Fatal(err)
	}
}

func TestTrainWaitHonorsContext(t *testing.T) {
	repo, _ := jobTestRepo(t, 6)
	release := make(chan struct{})
	entered := make(chan struct{})
	SetTrainInstallHookForTest(func() {
		close(entered)
		<-release
	})
	defer SetTrainInstallHookForTest(nil)
	id := repo.TrainStart()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	st, err := repo.TrainWait(ctx, id)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if st.State != TrainRunning {
		t.Errorf("interrupted wait reported state %q", st.State)
	}
	close(release)
	if st, err := repo.TrainWait(context.Background(), id); err != nil || st.State != TrainDone {
		t.Fatalf("final wait: %+v, %v", st, err)
	}
}

func TestTrainJobUnknownID(t *testing.T) {
	repo, _ := jobTestRepo(t, 2)
	if _, err := repo.TrainJob(999); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("err = %v, want ErrUnknownJob", err)
	}
	if _, err := repo.TrainWait(context.Background(), 999); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("wait err = %v, want ErrUnknownJob", err)
	}
}

func TestTrainContextCancelledBeforeInstall(t *testing.T) {
	repo, _ := jobTestRepo(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	SetTrainInstallHookForTest(func() { cancel() })
	defer SetTrainInstallHookForTest(nil)
	if err := repo.TrainContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abort must leave the untrained epoch serving.
	if repo.IsTrained() || repo.Epoch() != 0 {
		t.Errorf("aborted train installed an epoch: trained=%v epoch=%d", repo.IsTrained(), repo.Epoch())
	}
	// And a later un-cancelled Train succeeds.
	if err := repo.Train(); err != nil {
		t.Fatal(err)
	}
	if !repo.IsTrained() || repo.Epoch() != 1 {
		t.Errorf("follow-up train: trained=%v epoch=%d", repo.IsTrained(), repo.Epoch())
	}
}

func TestTrainContextExpiredUpFront(t *testing.T) {
	repo, _ := jobTestRepo(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := repo.TrainContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRepositoryOptionsAccessor(t *testing.T) {
	repo, _ := jobTestRepo(t, 1)
	opts := repo.Options()
	if opts.Vocab.Words == 0 || opts.TrainingSampleCap == 0 {
		t.Errorf("Options() missing defaults: %+v", opts)
	}
}
