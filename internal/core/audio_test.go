package core

import (
	"bytes"
	"fmt"
	"testing"

	"mie/internal/audio"
	"mie/internal/dpe"
	"mie/internal/imaging"
)

// voiceClip synthesizes a clip of a given "speaker" class: shared partials
// with per-instance noise, so same-class clips are spectrally similar.
func voiceClip(t *testing.T, class int, instance int64) *audio.Clip {
	t.Helper()
	bases := [][]float64{
		{220, 440, 660},
		{1200, 2400, 3100},
		{500, 3500, 5200},
	}
	amps := []float64{1, 0.6, 0.3}
	c, err := audio.Tone(0.08, bases[class%len(bases)], amps, 0.08, instance+int64(class)*991)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func audioTestClient(t *testing.T) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		Key:        testRepoKey(1),
		Dense:      dpe.DenseParams{InDim: imaging.DescriptorDim, OutDim: 256, Threshold: 0.5},
		AudioDense: dpe.DenseParams{InDim: audio.DescriptorDim, OutDim: 256, Threshold: 0.5},
		Pyramid:    imaging.PyramidParams{Scales: []int{16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAudioOnlyObjectAccepted(t *testing.T) {
	c := audioTestClient(t)
	obj := &Object{ID: "clip1", Owner: "u", Audio: voiceClip(t, 0, 1)}
	if got := obj.Modalities(); len(got) != 1 || got[0] != ModalityAudio {
		t.Fatalf("Modalities = %v", got)
	}
	up, err := c.PrepareUpdate(obj, testDataKey(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(up.AudioEncodings) == 0 {
		t.Fatal("no audio encodings")
	}
	if len(up.ImageEncodings) != 0 || len(up.TextTokens) != 0 {
		t.Error("phantom modalities encoded")
	}
}

func TestAudioSearchUntrainedAndTrained(t *testing.T) {
	c := audioTestClient(t)
	r, err := NewRepository("audio-repo", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < 4; i++ {
			obj := &Object{
				ID:    fmt.Sprintf("clip-c%d-%d", cls, i),
				Owner: "u",
				Audio: voiceClip(t, cls, int64(i)),
			}
			up, err := c.PrepareUpdate(obj, testDataKey(3))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Update(up); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(stage string) {
		t.Helper()
		q, err := c.PrepareQuery(&Object{ID: "q", Audio: voiceClip(t, 1, 99)}, 4)
		if err != nil {
			t.Fatal(err)
		}
		hits, err := r.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 {
			t.Fatalf("%s: no hits", stage)
		}
		same := 0
		for _, h := range hits {
			var cls, n int
			if _, err := fmt.Sscanf(h.ObjectID, "clip-c%d-%d", &cls, &n); err == nil && cls == 1 {
				same++
			}
		}
		if same < 3 {
			t.Errorf("%s: only %d/%d hits from the query's class: %+v", stage, same, len(hits), hits)
		}
	}
	check("untrained (linear scan)")
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	if r.AudioVocabularySize() == 0 {
		t.Fatal("no audio vocabulary after training")
	}
	check("trained (indexed)")
}

func TestTrimodalObjectFusion(t *testing.T) {
	// An object carrying all three modalities: a query matching on all
	// three must outrank single-modality matches via fusion.
	c := audioTestClient(t)
	r, err := NewRepository("trimodal", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	add := func(id, txt string, imgClass int, audClass int) {
		t.Helper()
		obj := &Object{ID: id, Owner: "u", Text: txt}
		if imgClass >= 0 {
			obj.Image = classImage(imgClass, int64(len(id)))
		}
		if audClass >= 0 {
			obj.Audio = voiceClip(t, audClass, int64(len(id)))
		}
		up, err := c.PrepareUpdate(obj, testDataKey(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	add("full-match", "concert recording music live", 0, 0)
	add("text-only-match", "concert recording music live", 1, 2)
	add("unrelated", "gardening tips spring flowers", 2, 1)
	add("decoy-a", "random filler words here", 1, 2)
	add("decoy-b", "more filler text content", 2, 1)
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	q, err := c.PrepareQuery(&Object{
		ID:    "q",
		Text:  "concert music",
		Image: classImage(0, 777),
		Audio: voiceClip(t, 0, 777),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.AudioEncodings) == 0 || len(q.ImageEncodings) == 0 || len(q.TextTokens) == 0 {
		t.Fatal("query missing a modality")
	}
	hits, err := r.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ObjectID != "full-match" {
		t.Errorf("tri-modal agreement should win: %+v", hits)
	}
}

func TestAudioSnapshotRoundTrip(t *testing.T) {
	c := audioTestClient(t)
	r, err := NewRepository("audio-snap", smallRepoOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		obj := &Object{ID: fmt.Sprintf("a%d", i), Owner: "u", Audio: voiceClip(t, i%2, int64(i))}
		up, err := c.PrepareUpdate(obj, testDataKey(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Update(up); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Train(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadRepository(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.AudioVocabularySize() != r.AudioVocabularySize() {
		t.Errorf("audio vocabulary lost: %d vs %d", restored.AudioVocabularySize(), r.AudioVocabularySize())
	}
	q, err := c.PrepareQuery(&Object{ID: "q", Audio: voiceClip(t, 0, 50)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := restored.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("restored audio repository unsearchable")
	}
}
