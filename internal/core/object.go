// Package core implements the MIE framework itself (paper §V): the
// client-side component that extracts multimodal feature vectors, encodes
// them with DPE and encrypts the objects, and the (untrusted) server-side
// component that trains, indexes and searches repositories over the
// encodings — realizing the five operations of Definition 2:
// CreateRepository, Train, Update, Remove, Search.
//
// The split is the paper's central design move: because DPE encodings
// preserve sub-threshold distances, the two heaviest computations — k-means
// training over image features and index maintenance — run in the cloud on
// encodings instead of on the mobile client on plaintexts, at the price of
// revealing (only) the information patterns itemized in the ideal
// functionality F_MIE (Algorithm 4), at update time rather than query time.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"mie/internal/audio"
	"mie/internal/imaging"
)

// Modality identifies a media format a repository supports.
type Modality string

// Supported modalities. The framework is agnostic to the retrieval
// techniques per modality; text and image match the paper's prototype, and
// audio demonstrates the "any dense media" claim through the same pipeline.
const (
	ModalityText  Modality = "text"
	ModalityImage Modality = "image"
	ModalityAudio Modality = "audio"
)

// Object is a multimodal data object as held by a client: an aggregation of
// media under one deterministic identifier. Any subset of modalities may be
// present.
type Object struct {
	ID    string
	Owner string
	Text  string
	Image *imaging.Image
	Audio *audio.Clip
}

// Modalities lists the modalities present in the object.
func (o *Object) Modalities() []Modality {
	var ms []Modality
	if o.Text != "" {
		ms = append(ms, ModalityText)
	}
	if o.Image != nil {
		ms = append(ms, ModalityImage)
	}
	if o.Audio != nil {
		ms = append(ms, ModalityAudio)
	}
	return ms
}

// Marshal serializes the object for encryption under its data key.
func (o *Object) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(o); err != nil {
		return nil, fmt.Errorf("core: marshal object %q: %w", o.ID, err)
	}
	return buf.Bytes(), nil
}

// UnmarshalObject reverses Object.Marshal.
func UnmarshalObject(data []byte) (*Object, error) {
	var o Object
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&o); err != nil {
		return nil, fmt.Errorf("core: unmarshal object: %w", err)
	}
	return &o, nil
}
