package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"mie/internal/wal"
	"mie/internal/wal/walfault"
)

// mutation is one scripted step of a crash scenario.
type mutation struct {
	remove bool
	id     string
	up     *Update
}

// crashMutations prepares a fixed text-only mutation sequence: four inserts,
// one replace, one remove. Text-only keeps WAL records small so the byte
// matrix stays fast.
func crashMutations(t *testing.T, c *Client) []mutation {
	t.Helper()
	mk := func(id, text string, key byte) *Update {
		up, err := c.PrepareUpdate(&Object{ID: id, Owner: "u", Text: text}, testDataKey(key))
		if err != nil {
			t.Fatal(err)
		}
		return up
	}
	return []mutation{
		{id: "a", up: mk("a", "alpha crashes are survivable", 1)},
		{id: "b", up: mk("b", "beta write ahead logging", 2)},
		{id: "c", up: mk("c", "gamma torn tail truncation", 3)},
		{id: "d", up: mk("d", "delta fsync discipline", 4)},
		{id: "b", up: mk("b", "beta second version replaces", 5)},
		{remove: true, id: "c"},
	}
}

// crashOutcome is what one scenario run left behind.
type crashOutcome struct {
	dir     string
	disk    *walfault.Disk
	walPath string
	// created reports whether CreateRepository was acknowledged.
	created bool
	// acked marks which mutations were acknowledged (err == nil).
	acked []bool
	// oracle is an in-memory repository holding exactly the acknowledged
	// mutations — the state recovery must land on.
	oracle *Repository
	// sizes[i] is the durable WAL size after mutation i (clean runs only).
	sizes []int64
}

// runCrashScenario drives the mutation sequence against a durable service
// whose WAL backing file is a scripted walfault.File, maintaining the
// acknowledged-set oracle alongside.
func runCrashScenario(t *testing.T, script walfault.Script, muts []mutation) *crashOutcome {
	t.Helper()
	out := &crashOutcome{dir: t.TempDir(), disk: walfault.NewDisk()}
	out.walPath = filepath.Join(out.dir, walFileName("cm"))
	out.disk.Script(out.walPath, script)
	walFileOpener = func(p string) (wal.File, error) { return out.disk.Open(p) }
	t.Cleanup(func() { walFileOpener = nil })

	svc, _, err := OpenService(ServiceOptions{Dir: out.dir}) // SyncAlways
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewRepository("cm", RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out.oracle = oracle
	repo, err := svc.CreateRepository("cm", RepositoryOptions{})
	if err != nil {
		return out // create itself crashed: nothing is acknowledged
	}
	out.created = true
	out.acked = make([]bool, len(muts))
	for i, m := range muts {
		var err error
		if m.remove {
			err = repo.Remove(m.id)
		} else {
			err = repo.Update(m.up)
		}
		if err == nil {
			out.acked[i] = true
			if m.remove {
				if err := oracle.Remove(m.id); err != nil {
					t.Fatal(err)
				}
			} else if err := oracle.Update(m.up); err != nil {
				t.Fatal(err)
			}
		}
		if f := out.disk.File(out.walPath); f != nil {
			out.sizes = append(out.sizes, int64(len(f.Durable())))
		}
	}
	return out
}

// recoverService reloads the scenario's data directory through the same
// fault disk — the post-reboot view.
func recoverService(t *testing.T, out *crashOutcome) (*Service, *RecoveryReport) {
	t.Helper()
	svc, report, err := OpenService(ServiceOptions{Dir: out.dir})
	if err != nil {
		t.Fatalf("recovery must never error on a crashed log: %v", err)
	}
	return svc, report
}

// assertSameObjects compares two repositories' stored object sets and
// ciphertexts.
func assertSameObjects(t *testing.T, label string, got, want *Repository) {
	t.Helper()
	g, w := got.objects.Items(), want.objects.Items()
	if len(g) != len(w) {
		t.Fatalf("%s: recovered %d objects, want %d (%v vs %v)", label, len(g), len(w), sortedKeys(g), sortedKeys(w))
	}
	for id, wo := range w {
		go_, ok := g[id]
		if !ok {
			t.Fatalf("%s: acknowledged object %q lost", label, id)
		}
		if !bytes.Equal(go_.ciphertext, wo.ciphertext) {
			t.Fatalf("%s: object %q recovered with wrong ciphertext", label, id)
		}
	}
}

func sortedKeys(m map[string]*storedObject) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// verifyCrashPoint asserts the core crash-safety contract for one outcome:
// recovery never errors, and the recovered repository holds exactly the
// acknowledged mutation set.
func verifyCrashPoint(t *testing.T, label string, out *crashOutcome) {
	t.Helper()
	svc, _ := recoverService(t, out)
	defer func() { _ = svc.Close() }()
	repo, err := svc.Repository("cm")
	if !out.created {
		// The create was never acknowledged; it must not resurrect.
		if err == nil {
			t.Fatalf("%s: unacknowledged repository resurrected", label)
		}
		return
	}
	if err != nil {
		t.Fatalf("%s: acknowledged repository lost: %v", label, err)
	}
	assertSameObjects(t, label, repo, out.oracle)
}

// TestCrashMatrixEveryByteOffset is the fault-injection matrix of the crash
// contract: with -wal-sync always, kill the log at every byte offset of the
// tail record (plus the boundaries of every earlier record and inside the
// file header), and assert that recovery (a) never errors and (b) lands on
// exactly the acknowledged mutation set — nothing acknowledged lost, nothing
// unacknowledged resurrected.
func TestCrashMatrixEveryByteOffset(t *testing.T) {
	c := testClient(t)
	muts := crashMutations(t, c)

	// Clean run: learn the full log size and each record's end offset.
	clean := runCrashScenario(t, walfault.Script{}, muts)
	for i, ok := range clean.acked {
		if !ok {
			t.Fatalf("clean run: mutation %d not acknowledged", i)
		}
	}
	verifyCrashPoint(t, "clean", clean)
	full := clean.sizes[len(clean.sizes)-1]
	if full <= int64(wal.HeaderSize) {
		t.Fatalf("clean log holds no records (size %d)", full)
	}

	// Offsets: every byte of the tail record, each earlier record's
	// boundary +/-1, and a cut inside the log header.
	offsets := map[int64]bool{int64(wal.HeaderSize) - 3: true}
	tailStart := int64(wal.HeaderSize)
	if n := len(clean.sizes); n >= 2 {
		tailStart = clean.sizes[n-2]
	}
	for x := tailStart + 1; x <= full; x++ {
		offsets[x] = true
	}
	for _, b := range clean.sizes[:len(clean.sizes)-1] {
		offsets[b-1] = true
		offsets[b] = true
		offsets[b+1] = true
	}
	points := make([]int64, 0, len(offsets))
	for x := range offsets {
		if x > 0 {
			points = append(points, x)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })

	for _, x := range points {
		out := runCrashScenario(t, walfault.Script{CrashAtByte: x}, muts)
		verifyCrashPoint(t, fmt.Sprintf("crash@byte=%d", x), out)
	}
}

// TestCrashAfterFsyncFailure: a failed fsync means the ack must be withheld
// and the log poisoned; if the machine then loses power, recovery lands on
// the acknowledged set — the record whose fsync failed is gone, exactly as
// the withheld ack promised.
func TestCrashAfterFsyncFailure(t *testing.T) {
	c := testClient(t)
	muts := crashMutations(t, c)
	// Syncs 1..3 happen before the first mutation (header init + the two
	// Resets of repository creation); sync 6 is the third mutation's.
	out := runCrashScenario(t, walfault.Script{FailSyncAt: 6}, muts)
	if !out.created {
		t.Fatal("create failed before the scripted fsync fault")
	}
	if out.acked[2] {
		t.Fatal("mutation acknowledged despite failed fsync")
	}
	// The later updates hit the poisoned log and must be refused. (The
	// final remove targets the object whose insert just failed, so it is a
	// legitimate no-op ack needing no log entry.)
	if out.acked[3] || out.acked[4] {
		t.Fatalf("updates acknowledged on a poisoned log: %v", out.acked)
	}
	out.disk.File(out.walPath).Crash()
	verifyCrashPoint(t, "fsync-fail+power-cut", out)
}

// TestFailedAndShortWritesRepaired: a failed or torn append is repaired in
// place (the log truncates back to the record boundary), the mutation is
// not acknowledged, and later mutations succeed; a reload then recovers
// exactly the acknowledged set.
func TestFailedAndShortWritesRepaired(t *testing.T) {
	c := testClient(t)
	muts := crashMutations(t, c)
	for name, script := range map[string]walfault.Script{
		// Write 1 is the header; writes 2.. are one per append.
		"fail":  {FailWriteAt: 3},
		"short": {ShortWriteAt: 3},
	} {
		out := runCrashScenario(t, script, muts)
		if !out.created {
			t.Fatalf("%s: create failed before the scripted write fault", name)
		}
		if out.acked[1] {
			t.Fatalf("%s: mutation acknowledged despite write fault", name)
		}
		for i := 2; i < len(out.acked); i++ {
			if !out.acked[i] {
				t.Fatalf("%s: mutation %d failed after the log should have repaired itself", name, i)
			}
		}
		verifyCrashPoint(t, name, out)
	}
}

// TestCrashUnderSyncNever: with -wal-sync never nothing is promised beyond
// the last snapshot; a power cut loses the unsynced mutations but recovery
// still comes up clean on the snapshot state.
func TestCrashUnderSyncNever(t *testing.T) {
	dir := t.TempDir()
	disk := walfault.NewDisk()
	walFileOpener = func(p string) (wal.File, error) { return disk.Open(p) }
	t.Cleanup(func() { walFileOpener = nil })
	opts := ServiceOptions{Dir: dir, Sync: wal.SyncNever}
	svc, _, err := OpenService(opts)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := svc.CreateRepository("nv", RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := testClient(t)
	for _, m := range crashMutations(t, c) {
		if m.remove {
			err = repo.Remove(m.id)
		} else {
			err = repo.Update(m.up)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	disk.File(filepath.Join(dir, walFileName("nv"))).Crash()
	svc2, report, err := OpenService(opts)
	if err != nil {
		t.Fatalf("recovery errored: %v", err)
	}
	r2, err := svc2.Repository("nv")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size() != 0 {
		t.Errorf("unsynced mutations survived a crash under never: %d objects", r2.Size())
	}
	if report.ReplayedRecords != 0 {
		t.Errorf("replayed %d records from an unsynced log", report.ReplayedRecords)
	}
}

// TestTrainedSnapshotPlusWALReplay composes the two halves of persistence:
// a snapshot carries the trained state, the WAL carries the mutations that
// followed it, and recovery replays the latter onto the former — search
// results afterwards include both, with ranking preserved.
func TestTrainedSnapshotPlusWALReplay(t *testing.T) {
	dir := t.TempDir()
	c := testClient(t)
	svc, _, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := svc.CreateRepository("tr", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, repo, 4, 3)
	if err := repo.Train(); err != nil {
		t.Fatal(err)
	}
	if err := SaveService(svc, dir); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations live only in the WAL.
	up, err := c.PrepareUpdate(&Object{ID: "wal-only", Owner: "u", Text: "quokka island wildlife"}, testDataKey(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Update(up); err != nil {
		t.Fatal(err)
	}
	if err := repo.Remove("obj-c0-0"); err != nil {
		t.Fatal(err)
	}
	query := testObject(1, 77)
	before := searchIDs(t, c, repo, query, 6)

	// No clean shutdown: reload straight from disk, as after kill -9.
	svc2, report, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if report.ReplayedRecords != 2 {
		t.Errorf("replayed %d records, want 2", report.ReplayedRecords)
	}
	r2, err := svc2.Repository("tr")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.IsTrained() {
		t.Fatal("trained state lost across snapshot+WAL recovery")
	}
	assertSameObjects(t, "trained", r2, repo)
	if _, _, err := r2.Get("obj-c0-0"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("WAL-logged remove not replayed: %v", err)
	}
	after := searchIDs(t, c, r2, query, 6)
	if strings.Join(before, ",") != strings.Join(after, ",") {
		t.Errorf("ranking changed across recovery: %v vs %v", before, after)
	}
	got := searchIDs(t, c, r2, &Object{ID: "q", Text: "quokka"}, 2)
	if len(got) == 0 || got[0] != "wal-only" {
		t.Errorf("WAL-only object not searchable after recovery: %v", got)
	}
}

// TestWALCompensation: an Update that fails mid-index is rolled back in
// memory AND compensated in the log, so replaying the log after a crash
// converges to the rolled-back state instead of resurrecting the failed
// write.
func TestWALCompensation(t *testing.T) {
	dir := t.TempDir()
	disk := walfault.NewDisk()
	walFileOpener = func(p string) (wal.File, error) { return disk.Open(p) }
	t.Cleanup(func() { walFileOpener = nil })
	c := testClient(t)
	svc, _, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := svc.CreateRepository("cp", smallRepoOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, repo, 2, 2)
	if err := repo.Train(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := repo.Size()

	failErr := errors.New("injected index failure")
	updateIndexHook = func(m Modality) error {
		if m == ModalityText {
			return failErr
		}
		return nil
	}
	up, err := c.PrepareUpdate(&Object{ID: "doomed", Owner: "u", Text: "never lands"}, testDataKey(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Update(up); !errors.Is(err, failErr) {
		t.Fatalf("update err = %v, want injected failure", err)
	}
	updateIndexHook = nil
	if repo.Size() != sizeBefore {
		t.Fatalf("rolled-back update changed size: %d != %d", repo.Size(), sizeBefore)
	}

	disk.File(filepath.Join(dir, walFileName("cp"))).Crash()
	svc2, _, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc2.Repository("cp")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r2.Get("doomed"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("failed update resurrected by replay: %v", err)
	}
	assertSameObjects(t, "compensation", r2, repo)
}

// TestDropRepositoryDoesNotResurrect is the stale-snapshot regression test:
// a repository dropped at runtime must not come back on the next restart,
// whether the drop happened on a durable service (files deleted at drop
// time) or between two SaveService calls on an in-memory one (orphan
// snapshots pruned during save).
func TestDropRepositoryDoesNotResurrect(t *testing.T) {
	t.Run("durable", func(t *testing.T) {
		dir := t.TempDir()
		svc, _, err := OpenService(ServiceOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"keep", "drop"} {
			if _, err := svc.CreateRepository(id, RepositoryOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := SaveService(svc, dir); err != nil {
			t.Fatal(err)
		}
		if err := svc.DropRepository("drop"); err != nil {
			t.Fatal(err)
		}
		svc2, _, err := OpenService(ServiceOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if got := svc2.Repositories(); len(got) != 1 || got[0] != "keep" {
			t.Errorf("restart sees %v, want just [keep]", got)
		}
	})
	t.Run("in-memory save prunes orphans", func(t *testing.T) {
		dir := t.TempDir()
		svc := openMem(t)
		for _, id := range []string{"keep", "drop"} {
			if _, err := svc.CreateRepository(id, RepositoryOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := SaveService(svc, dir); err != nil {
			t.Fatal(err)
		}
		if err := svc.DropRepository("drop"); err != nil {
			t.Fatal(err)
		}
		if err := SaveService(svc, dir); err != nil {
			t.Fatal(err)
		}
		svc2, _, err := OpenService(ServiceOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if got := svc2.Repositories(); len(got) != 1 || got[0] != "keep" {
			t.Errorf("restart sees %v, want just [keep]", got)
		}
	})
}

// TestCrashMidCompaction extends the crash matrix to the segmented index:
// the power cut lands while a background compaction is provably in flight
// (held at its start hook). Compaction only reorganizes derived state, so
// recovery must still land on exactly the acknowledged mutation set — the
// snapshot's trained epoch plus the WAL-logged churn — with ranking intact.
func TestCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	disk := walfault.NewDisk()
	walFileOpener = func(p string) (wal.File, error) { return disk.Open(p) }
	t.Cleanup(func() { walFileOpener = nil })
	c := testClient(t)
	svc, _, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opts := smallRepoOptions("")
	opts.Incremental.MemtableCap = 4
	opts.Incremental.CompactSegments = 2
	repo, err := svc.CreateRepository("mc", opts)
	if err != nil {
		t.Fatal(err)
	}
	fillRepo(t, c, repo, 3, 3)
	if err := repo.Train(); err != nil {
		t.Fatal(err)
	}
	if err := SaveService(svc, dir); err != nil {
		t.Fatal(err)
	}

	// Park the next background compaction at its start hook.
	started := make(chan struct{})
	gate := make(chan struct{})
	var startOnce, releaseOnce sync.Once
	compactStartHook = func() {
		startOnce.Do(func() { close(started) })
		<-gate
	}
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	t.Cleanup(func() {
		release()
		compactStartHook = nil
	})

	// Post-snapshot churn lives only in the WAL; the incremental Train seals
	// the memtables and fires the compactor, which parks at the hook.
	for i, m := range crashMutations(t, c) {
		if m.remove {
			err = repo.Remove(m.id)
		} else {
			err = repo.Update(m.up)
		}
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	if err := repo.Train(); err != nil {
		t.Fatal(err)
	}
	if got := repo.LastTrain().Mode; got != "incremental" {
		t.Fatalf("retrain mode = %q, want incremental", got)
	}
	<-started // compaction is now provably mid-flight

	// Power cut while the compactor holds segments mid-merge.
	disk.File(filepath.Join(dir, walFileName("mc"))).Crash()
	release()

	svc2, _, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recovery errored after mid-compaction crash: %v", err)
	}
	r2, err := svc2.Repository("mc")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.IsTrained() {
		t.Fatal("trained state lost across mid-compaction crash")
	}
	// Every mutation above was acknowledged: the live repository IS the
	// acknowledged-set oracle.
	assertSameObjects(t, "mid-compaction", r2, repo)
	if _, _, err := r2.Get("c"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("acknowledged remove lost: %v", err)
	}
	got := searchIDs(t, c, r2, &Object{ID: "q", Text: "beta write ahead"}, 2)
	if len(got) == 0 || got[0] != "b" {
		t.Errorf("recovered search = %v, want b first", got)
	}
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOrphanWALPruned: a .wal with no matching snapshot (a create or drop
// that crashed halfway) is removed at load time and reported.
func TestOrphanWALPruned(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ghost.wal"), []byte("MIEWAL1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, report, err := OpenService(ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.Repositories()) != 0 {
		t.Errorf("orphan wal produced repositories: %v", svc.Repositories())
	}
	if report.OrphansRemoved != 1 {
		t.Errorf("OrphansRemoved = %d, want 1", report.OrphansRemoved)
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost.wal")); !os.IsNotExist(err) {
		t.Error("orphan wal still on disk")
	}
}
