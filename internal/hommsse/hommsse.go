// Package hommsse implements Hom-MSSE, the paper's second baseline
// (Appendix, Figure 8): MSSE with partially homomorphic (Paillier)
// cryptography in two roles:
//
//   - per-keyword counters are Paillier ciphertexts the *server* increments
//     homomorphically, removing MSSE's client coordination lock (writers
//     send encrypted increments of 1, padded with encrypted 0s);
//   - keyword frequencies are Paillier ciphertexts, so the server
//     accumulates TF-IDF scores without ever learning frequency patterns —
//     the Table I row where search leakage shrinks to ID(w), ID(d).
//
// The price is heavy client cryptography (the tallest bars of Figures 2/3/6)
// and client-side sorting: the server returns encrypted per-document scores
// for every candidate, and the client decrypts, sorts and rank-fuses.
package hommsse

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"
	"strconv"
	"sync"
	"time"

	"mie/internal/cluster"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/dpe"
	"mie/internal/fusion"
	"mie/internal/imaging"
	"mie/internal/index"
	"mie/internal/paillier"
	"mie/internal/text"
)

// Modality labels.
const (
	ModText  = "text"
	ModImage = "image"
)

// scoreScale converts the float weight freqq*idf into the integer domain
// Paillier works in; the client divides it back out after decryption.
const scoreScale = 1000

// Keys is the Hom-MSSE client key material: the symmetric keys of MSSE plus
// the Paillier keypair (rk2R = {HomPub, HomPriv} in Figure 8).
type Keys struct {
	RK1  crypto.Key
	RKID crypto.Key
	Hom  *paillier.PrivateKey
}

// NewKeys derives symmetric keys from the master key and generates a fresh
// Paillier pair of the given modulus size.
func NewKeys(master crypto.Key, paillierBits int) (Keys, error) {
	hom, err := paillier.GenerateKey(nil, paillierBits)
	if err != nil {
		return Keys{}, err
	}
	return Keys{
		RK1:  crypto.DeriveKey(master, "hommsse-rk1"),
		RKID: crypto.DeriveKey(master, "hommsse-rkid"),
		Hom:  hom,
	}, nil
}

// featureBlob matches msse's encrypted feature upload.
type featureBlob struct {
	Terms []text.Term
	Descs [][]float64
}

// Posting is one index entry: position, plaintext doc id, Paillier-encrypted
// frequency.
type Posting struct {
	L       string
	Doc     string
	EncFreq []byte // big.Int bytes
}

// ModalityUpdate carries one modality's postings.
type ModalityUpdate struct {
	Modality string
	Postings []Posting
}

// CtrIncrement asks the server to homomorphically add EncInc (an encryption
// of 1 for real terms, 0 for padding) to the counter of TermID.
type CtrIncrement struct {
	TermID string
	EncInc []byte
}

// SearchTerm carries one query term's candidate positions and the public
// integer weight the server multiplies into the encrypted frequencies.
type SearchTerm struct {
	Positions []string
	QueryFreq uint64
}

// ModalityQuery is one modality's trapdoors.
type ModalityQuery struct {
	Modality string
	Terms    []SearchTerm
}

// DocScore is the server's per-document encrypted score.
type DocScore struct {
	Doc      string
	Owner    string
	EncScore []byte
	Cipher   []byte
}

// Hit is a decrypted, ranked result.
type Hit struct {
	Doc        string
	Owner      string
	Score      float64
	Ciphertext []byte
}

// Server errors.
var (
	ErrRepoExists   = errors.New("hommsse: repository exists")
	ErrRepoNotFound = errors.New("hommsse: repository not found")
)

type objRecord struct {
	owner      string
	ciphertext []byte
}

type entry struct {
	doc     string
	encFreq []byte
}

type repo struct {
	mu      sync.Mutex
	pub     *paillier.PublicKey
	objects map[string]objRecord
	fvs     map[string][]byte
	ctrs    map[string]map[string][]byte // modality -> termID -> Paillier ct
	idx     map[string]map[string]entry
}

// Server is the untrusted Hom-MSSE cloud component. It holds the Paillier
// public key so it can initialize counters to E(0) and operate on them.
type Server struct {
	mu    sync.RWMutex
	repos map[string]*repo
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{repos: make(map[string]*repo)}
}

// CreateRepository initializes a repository bound to a Paillier public key.
func (s *Server) CreateRepository(id string, pub *paillier.PublicKey) error {
	if pub == nil {
		return errors.New("hommsse: repository needs a Paillier public key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.repos[id]; ok {
		return fmt.Errorf("%w: %s", ErrRepoExists, id)
	}
	s.repos[id] = &repo{
		pub:     pub,
		objects: make(map[string]objRecord),
		fvs:     make(map[string][]byte),
		ctrs:    make(map[string]map[string][]byte),
		idx:     make(map[string]map[string]entry),
	}
	return nil
}

func (s *Server) repo(id string) (*repo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrRepoNotFound, id)
	}
	return r, nil
}

// GetAndIncCtrs returns each requested counter's current encrypted value
// and then increments it homomorphically by the supplied encrypted amount
// (CLOUD.GetAndIncCtrs). Absent counters are initialized to E(0). Because
// the read-and-increment is atomic per call, concurrent writers never see
// the same counter value: no lock round trip, unlike MSSE.
func (s *Server) GetAndIncCtrs(repoID string, incs map[string][]CtrIncrement) (map[string]map[string][]byte, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[string][]byte, len(incs))
	for modality, list := range incs {
		mc := r.ctrs[modality]
		if mc == nil {
			mc = make(map[string][]byte)
			r.ctrs[modality] = mc
		}
		om := make(map[string][]byte, len(list))
		for _, inc := range list {
			cur, ok := mc[inc.TermID]
			if !ok {
				zero, err := r.pub.EncryptUint64(nil, 0)
				if err != nil {
					return nil, fmt.Errorf("hommsse: init counter: %w", err)
				}
				cur = zero.Bytes()
				mc[inc.TermID] = cur
			}
			om[inc.TermID] = cur
			sum, err := r.pub.Add(new(big.Int).SetBytes(cur), new(big.Int).SetBytes(inc.EncInc))
			if err != nil {
				return nil, fmt.Errorf("hommsse: increment counter %s: %w", inc.TermID, err)
			}
			mc[inc.TermID] = sum.Bytes()
		}
		out[modality] = om
	}
	return out, nil
}

// GetCtrs is the read-only counter fetch used by Search.
func (s *Server) GetCtrs(repoID string, terms map[string][]string) (map[string]map[string][]byte, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[string][]byte, len(terms))
	for modality, ids := range terms {
		om := make(map[string][]byte, len(ids))
		for _, id := range ids {
			if ct, ok := r.ctrs[modality][id]; ok {
				om[id] = ct
			}
		}
		out[modality] = om
	}
	return out, nil
}

// Update stores an object with its postings (no lock protocol needed).
func (s *Server) Update(repoID, docID, owner string, ciphertext, encFvs []byte, updates []ModalityUpdate) error {
	r, err := s.repo(repoID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removeLocked(docID)
	r.objects[docID] = objRecord{owner: owner, ciphertext: ciphertext}
	r.fvs[docID] = encFvs
	for _, mu := range updates {
		im := r.idx[mu.Modality]
		if im == nil {
			im = make(map[string]entry)
			r.idx[mu.Modality] = im
		}
		for _, p := range mu.Postings {
			im[p.L] = entry{doc: p.Doc, encFreq: p.EncFreq}
		}
	}
	return nil
}

// UntrainedUpdate stores ciphertext and features before training.
func (s *Server) UntrainedUpdate(repoID, docID, owner string, ciphertext, encFvs []byte) error {
	return s.Update(repoID, docID, owner, ciphertext, encFvs, nil)
}

// Remove deletes an object and its postings (plaintext ids in values).
func (s *Server) Remove(repoID, docID string) error {
	r, err := s.repo(repoID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removeLocked(docID)
	return nil
}

func (r *repo) removeLocked(docID string) {
	delete(r.objects, docID)
	delete(r.fvs, docID)
	for _, im := range r.idx {
		for l, e := range im {
			if e.doc == docID {
				delete(im, l)
			}
		}
	}
}

// GetFeatures returns all encrypted feature blobs for client-side training.
func (s *Server) GetFeatures(repoID string) (map[string][]byte, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]byte, len(r.fvs))
	for id, b := range r.fvs {
		out[id] = b
	}
	return out, nil
}

// ObjectCount reports |Rep|.
func (s *Server) ObjectCount(repoID string) (int, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.objects), nil
}

// Search runs the homomorphic scoring of Figure 8: for each query term the
// server gathers the candidate postings, derives the public weight
// round(scoreScale·freqq·idf), multiplies it into each encrypted frequency
// (HomMult) and accumulates per-document encrypted scores (HomAdd). It
// returns every candidate with its encrypted score and ciphertext; ranking
// happens client-side.
func (s *Server) Search(repoID string, queries []ModalityQuery) (map[string][]DocScore, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.objects)
	out := make(map[string][]DocScore, len(queries))
	for _, mq := range queries {
		im := r.idx[mq.Modality]
		scores := make(map[string]*big.Int)
		for _, st := range mq.Terms {
			var found []entry
			for _, l := range st.Positions {
				if e, ok := im[l]; ok {
					found = append(found, e)
				}
			}
			if len(found) == 0 || n == 0 {
				continue
			}
			idf := math.Log(float64(n) / float64(len(found)))
			if idf < 0 {
				idf = 0
			}
			weight := int64(math.Round(scoreScale * float64(st.QueryFreq) * idf))
			if weight == 0 {
				continue
			}
			for _, e := range found {
				scaled, err := r.pub.ScalarMul(new(big.Int).SetBytes(e.encFreq), big.NewInt(weight))
				if err != nil {
					return nil, fmt.Errorf("hommsse: HomMult: %w", err)
				}
				if acc, ok := scores[e.doc]; ok {
					sum, err := r.pub.Add(acc, scaled)
					if err != nil {
						return nil, fmt.Errorf("hommsse: HomAdd: %w", err)
					}
					scores[e.doc] = sum
				} else {
					scores[e.doc] = scaled
				}
			}
		}
		list := make([]DocScore, 0, len(scores))
		for doc, enc := range scores {
			o, ok := r.objects[doc]
			if !ok {
				continue
			}
			list = append(list, DocScore{Doc: doc, Owner: o.owner, EncScore: enc.Bytes(), Cipher: o.ciphertext})
		}
		out[mq.Modality] = list
	}
	return out, nil
}

// GetObjects supports the untrained linear search.
func (s *Server) GetObjects(repoID string) (map[string]Hit, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Hit, len(r.objects))
	for id, o := range r.objects {
		out[id] = Hit{Doc: id, Owner: o.owner, Ciphertext: o.ciphertext}
	}
	return out, nil
}

// ClientConfig configures a Hom-MSSE client.
type ClientConfig struct {
	Keys    Keys
	Pyramid imaging.PyramidParams
	// Vocab shapes visual-word training: flat k-means to Vocab.Words words
	// (paper: 1000) plus a lookup tree over the words.
	Vocab cluster.VocabParams
	// Padding is the number of dummy (encrypted-zero) counter increments
	// added per update; the appendix cites 1.6x padding as sufficient
	// against keyword-retrieval attacks. Expressed as extra increments per
	// real term, rounded up. Zero disables padding.
	Padding float64
	Meter   *device.Meter
}

// Client is the trusted Hom-MSSE client.
type Client struct {
	keys    Keys
	pyr     imaging.PyramidParams
	vocab   cluster.VocabParams
	padding float64
	meter   *device.Meter

	mu       sync.Mutex
	codebook *cluster.Vocabulary[[]float64]
}

// NewClient builds a client component.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Vocab.Words == 0 {
		cfg.Vocab.Words = 1000
	}
	if cfg.Vocab.Tree.Branch == 0 {
		cfg.Vocab.Tree.Branch = 10
	}
	if cfg.Vocab.Tree.Height == 0 {
		cfg.Vocab.Tree.Height = 3
	}
	return &Client{
		keys:    cfg.Keys,
		pyr:     cfg.Pyramid,
		vocab:   cfg.Vocab,
		padding: cfg.Padding,
		meter:   cfg.Meter,
	}
}

// SetCodebook installs a codebook trained by another user.
func (c *Client) SetCodebook(cb *cluster.Vocabulary[[]float64]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.codebook = cb
}

// Codebook returns the trained codebook (nil before training).
func (c *Client) Codebook() *cluster.Vocabulary[[]float64] {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.codebook
}

// IsTrained reports whether the client holds a codebook.
func (c *Client) IsTrained() bool { return c.Codebook() != nil }

func (c *Client) timeCPU(cat device.Category, fn func()) {
	if c.meter == nil {
		fn()
		return
	}
	c.meter.TimeCPU(cat, fn)
}

func (c *Client) addTransfer(cat device.Category, up, down int64) {
	if c.meter == nil {
		return
	}
	c.meter.AddTransfer(cat, up, down)
}

// Doc mirrors msse.Doc.
type Doc struct {
	ID    string
	Owner string
	Text  string
	Image *imaging.Image
}

func (d *Doc) marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("hommsse: marshal doc: %w", err)
	}
	return buf.Bytes(), nil
}

func (c *Client) extract(obj *Doc) ([]text.Term, [][]float64) {
	var terms []text.Term
	var descs [][]float64
	c.timeCPU(device.Index, func() {
		if obj.Text != "" {
			terms = text.Extract(obj.Text)
		}
		if obj.Image != nil {
			descs = imaging.Extract(obj.Image, c.pyr)
		}
	})
	return terms, descs
}

func (c *Client) encryptBlob(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("hommsse: encode blob: %w", err)
	}
	return crypto.NewCipher(c.keys.RK1).Encrypt(buf.Bytes())
}

func (c *Client) decryptBlob(ct []byte, v interface{}) error {
	if len(ct) == 0 {
		return nil
	}
	pt, err := crypto.NewCipher(c.keys.RK1).Decrypt(ct)
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(pt)).Decode(v)
}

// termID is the deterministic per-term id the server keys counters by.
func (c *Client) termID(term string) string {
	var t dpe.Token
	copy(t[:], crypto.PRFString(c.keys.RKID, term+"|id"))
	return t.String()
}

// termPosKey derives k1 for index positions.
func (c *Client) termPosKey(term string) crypto.Key {
	return crypto.DeriveKey(c.keys.RKID, term+"|pos")
}

func position(k1 crypto.Key, ctr uint64) string {
	var t dpe.Token
	copy(t[:], crypto.PRFUint64(k1, ctr))
	return t.String()
}

func (c *Client) histograms(terms []text.Term, descs [][]float64) map[string]map[string]uint64 {
	out := make(map[string]map[string]uint64, 2)
	if len(terms) > 0 {
		h := make(map[string]uint64, len(terms))
		for _, t := range terms {
			h[t.Word] = t.Freq
		}
		out[ModText] = h
	}
	cb := c.Codebook()
	if len(descs) > 0 && cb != nil {
		h := make(map[string]uint64)
		for _, d := range descs {
			h["vw:"+strconv.Itoa(cb.Quantize(d))]++
		}
		out[ModImage] = h
	}
	return out
}

// Update adds or replaces an object. After training: build encrypted
// increments (1 per real term plus encrypted-zero padding), let the server
// get-and-increment the counters, then compute positions from the decrypted
// previous counter values and upload Paillier-encrypted frequencies.
func (c *Client) Update(s *Server, repoID string, doc *Doc, dataKey crypto.Key) error {
	terms, descs := c.extract(doc)
	var ciphertext, encFvs []byte
	var encErr error
	c.timeCPU(device.Encrypt, func() {
		plain, err := doc.marshal()
		if err != nil {
			encErr = err
			return
		}
		if ciphertext, encErr = crypto.NewCipher(dataKey).Encrypt(plain); encErr != nil {
			return
		}
		encFvs, encErr = c.encryptBlob(featureBlob{Terms: terms, Descs: descs})
	})
	if encErr != nil {
		return encErr
	}
	if !c.IsTrained() {
		c.addTransfer(device.Network, int64(len(ciphertext)+len(encFvs)), 0)
		return s.UntrainedUpdate(repoID, doc.ID, doc.Owner, ciphertext, encFvs)
	}

	var hists map[string]map[string]uint64
	c.timeCPU(device.Index, func() { hists = c.histograms(terms, descs) })

	pub := &c.keys.Hom.PublicKey
	incs := make(map[string][]CtrIncrement, len(hists))
	var buildErr error
	c.timeCPU(device.Encrypt, func() {
		for m, hist := range hists {
			var list []CtrIncrement
			for term := range hist {
				encOne, err := pub.EncryptUint64(nil, 1)
				if err != nil {
					buildErr = err
					return
				}
				list = append(list, CtrIncrement{TermID: c.termID(term), EncInc: encOne.Bytes()})
			}
			// Padding: encrypted zeros on dummy term ids so the server
			// cannot tell which counters really advanced.
			pad := int(math.Ceil(c.padding * float64(len(hist))))
			for i := 0; i < pad; i++ {
				encZero, err := pub.EncryptUint64(nil, 0)
				if err != nil {
					buildErr = err
					return
				}
				list = append(list, CtrIncrement{
					TermID: c.termID(fmt.Sprintf("pad|%s|%s|%d", doc.ID, m, i)),
					EncInc: encZero.Bytes(),
				})
			}
			incs[m] = list
		}
	})
	if buildErr != nil {
		return buildErr
	}
	var upB int64
	for _, list := range incs {
		for _, inc := range list {
			upB += int64(len(inc.TermID) + len(inc.EncInc))
		}
	}
	ectrs, err := s.GetAndIncCtrs(repoID, incs)
	if err != nil {
		return err
	}
	var downB int64
	for _, om := range ectrs {
		for _, ct := range om {
			downB += int64(len(ct))
		}
	}
	c.addTransfer(device.Network, upB, downB)

	var updates []ModalityUpdate
	c.timeCPU(device.Encrypt, func() {
		for m, hist := range hists {
			var postings []Posting
			for term, freq := range hist {
				id := c.termID(term)
				ctBytes, ok := ectrs[m][id]
				if !ok {
					buildErr = fmt.Errorf("hommsse: server did not return counter for %s", id)
					return
				}
				ctr, err := c.keys.Hom.DecryptUint64(new(big.Int).SetBytes(ctBytes))
				if err != nil {
					buildErr = fmt.Errorf("hommsse: decrypt counter: %w", err)
					return
				}
				encFreq, err := pub.EncryptUint64(nil, freq)
				if err != nil {
					buildErr = err
					return
				}
				postings = append(postings, Posting{
					L:       position(c.termPosKey(term), ctr),
					Doc:     doc.ID,
					EncFreq: encFreq.Bytes(),
				})
			}
			updates = append(updates, ModalityUpdate{Modality: m, Postings: postings})
		}
	})
	if buildErr != nil {
		return buildErr
	}
	var up2 int64 = int64(len(ciphertext) + len(encFvs))
	for _, mu := range updates {
		for _, p := range mu.Postings {
			up2 += int64(len(p.L) + len(p.Doc) + len(p.EncFreq))
		}
	}
	c.addTransfer(device.Network, up2, 0)
	return s.Update(repoID, doc.ID, doc.Owner, ciphertext, encFvs, updates)
}

// Train mirrors MSSE: download features, decrypt, Euclidean k-means on the
// client, then index everything with Paillier-encrypted frequencies and
// counters advanced through the server.
func (c *Client) Train(s *Server, repoID string) error {
	encFvs, err := s.GetFeatures(repoID)
	if err != nil {
		return err
	}
	var down int64
	for _, b := range encFvs {
		down += int64(len(b))
	}
	c.addTransfer(device.Network, 0, down)

	blobs := make(map[string]featureBlob, len(encFvs))
	var decErr error
	c.timeCPU(device.Encrypt, func() {
		for id, ct := range encFvs {
			var fb featureBlob
			if err := c.decryptBlob(ct, &fb); err != nil {
				decErr = fmt.Errorf("hommsse: decrypt features of %s: %w", id, err)
				return
			}
			blobs[id] = fb
		}
	})
	if decErr != nil {
		return decErr
	}

	var trainErr error
	c.timeCPU(device.Train, func() {
		// Sorted ids keep the trained codebook deterministic across runs.
		ids := make([]string, 0, len(blobs))
		for id := range blobs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var sample [][]float64
		for _, id := range ids {
			sample = append(sample, blobs[id].Descs...)
		}
		if len(sample) == 0 {
			return
		}
		euclid := func(ps [][]float64, k int, seed int64) ([][]float64, []int, error) {
			res, err := cluster.KMeans(ps, k, cluster.Options{Seed: seed, MaxIter: c.vocab.MaxIter})
			if err != nil {
				return nil, nil, err
			}
			return res.Centroids, res.Assignments, nil
		}
		vocab, err := cluster.TrainVocabulary(sample, c.vocab, euclid, func(a, b []float64) float64 {
			var sum float64
			for i := range a {
				d := a[i] - b[i]
				sum += d * d
			}
			return math.Sqrt(sum)
		})
		if err != nil {
			trainErr = fmt.Errorf("hommsse: train codebook: %w", err)
			return
		}
		c.SetCodebook(vocab)
	})
	if trainErr != nil {
		return trainErr
	}

	// Index every stored object through the normal update path (their
	// ciphertexts and features are already server-side; only postings and
	// counters are new). We re-upload postings per object.
	for id, fb := range blobs {
		if err := c.indexExisting(s, repoID, id, fb); err != nil {
			return err
		}
	}
	return nil
}

// indexExisting uploads postings for an object whose ciphertext is already
// stored (used by Train).
func (c *Client) indexExisting(s *Server, repoID, docID string, fb featureBlob) error {
	var hists map[string]map[string]uint64
	c.timeCPU(device.Index, func() { hists = c.histograms(fb.Terms, fb.Descs) })
	pub := &c.keys.Hom.PublicKey
	incs := make(map[string][]CtrIncrement, len(hists))
	var buildErr error
	c.timeCPU(device.Encrypt, func() {
		for m, hist := range hists {
			var list []CtrIncrement
			for term := range hist {
				encOne, err := pub.EncryptUint64(nil, 1)
				if err != nil {
					buildErr = err
					return
				}
				list = append(list, CtrIncrement{TermID: c.termID(term), EncInc: encOne.Bytes()})
			}
			incs[m] = list
		}
	})
	if buildErr != nil {
		return buildErr
	}
	ectrs, err := s.GetAndIncCtrs(repoID, incs)
	if err != nil {
		return err
	}
	var updates []ModalityUpdate
	c.timeCPU(device.Encrypt, func() {
		for m, hist := range hists {
			var postings []Posting
			for term, freq := range hist {
				ctBytes := ectrs[m][c.termID(term)]
				ctr, err := c.keys.Hom.DecryptUint64(new(big.Int).SetBytes(ctBytes))
				if err != nil {
					buildErr = err
					return
				}
				encFreq, err := pub.EncryptUint64(nil, freq)
				if err != nil {
					buildErr = err
					return
				}
				postings = append(postings, Posting{L: position(c.termPosKey(term), ctr), Doc: docID, EncFreq: encFreq.Bytes()})
			}
			updates = append(updates, ModalityUpdate{Modality: m, Postings: postings})
		}
	})
	if buildErr != nil {
		return buildErr
	}
	r, err := s.repo(repoID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, mu := range updates {
		im := r.idx[mu.Modality]
		if im == nil {
			im = make(map[string]entry)
			r.idx[mu.Modality] = im
		}
		for _, p := range mu.Postings {
			im[p.L] = entry{doc: p.Doc, encFreq: p.EncFreq}
		}
	}
	return nil
}

// Search implements Figure 8's query flow: fetch counters, enumerate
// positions, let the server score homomorphically, then decrypt, sort and
// fuse locally.
func (c *Client) Search(s *Server, repoID string, query *Doc, k int) ([]Hit, error) {
	if k <= 0 {
		return nil, errors.New("hommsse: k must be positive")
	}
	terms, descs := c.extract(query)
	if !c.IsTrained() {
		return c.linearSearch(s, repoID, terms, descs, k)
	}
	var hists map[string]map[string]uint64
	c.timeCPU(device.Index, func() { hists = c.histograms(terms, descs) })

	want := make(map[string][]string, len(hists))
	termOf := make(map[string]string)
	for m, hist := range hists {
		for term := range hist {
			id := c.termID(term)
			want[m] = append(want[m], id)
			termOf[id] = term
		}
	}
	ectrs, err := s.GetCtrs(repoID, want)
	if err != nil {
		return nil, err
	}
	var down int64
	for _, om := range ectrs {
		for _, ct := range om {
			down += int64(len(ct))
		}
	}
	c.addTransfer(device.Network, 0, down)

	var queries []ModalityQuery
	var buildErr error
	c.timeCPU(device.Encrypt, func() {
		for m, hist := range hists {
			mq := ModalityQuery{Modality: m}
			for id, ctBytes := range ectrs[m] {
				term := termOf[id]
				cnt, err := c.keys.Hom.DecryptUint64(new(big.Int).SetBytes(ctBytes))
				if err != nil {
					buildErr = err
					return
				}
				if cnt == 0 {
					continue
				}
				st := SearchTerm{QueryFreq: hist[term]}
				k1 := c.termPosKey(term)
				for ctr := uint64(0); ctr < cnt; ctr++ {
					st.Positions = append(st.Positions, position(k1, ctr))
				}
				mq.Terms = append(mq.Terms, st)
			}
			queries = append(queries, mq)
		}
	})
	if buildErr != nil {
		return nil, buildErr
	}

	start := time.Now()
	scored, err := s.Search(repoID, queries)
	if err != nil {
		return nil, err
	}
	if c.meter != nil {
		// The homomorphic scoring happens server-side but inside the
		// synchronous query; Figure 5 charges it to Network.
		c.meter.AddServerTime(device.Network, time.Since(start))
	}
	var dn int64
	for _, list := range scored {
		for _, ds := range list {
			dn += int64(len(ds.EncScore) + len(ds.Cipher))
		}
	}
	c.addTransfer(device.Network, 0, dn)

	// Client-side decrypt + per-modality sort + fusion (the extra client
	// work Figure 5 charges to Hom-MSSE).
	var lists [][]index.Result
	meta := make(map[string]Hit)
	var decErr error
	c.timeCPU(device.Encrypt, func() {
		for _, list := range scored {
			var rs []index.Result
			for _, ds := range list {
				raw, err := c.keys.Hom.Decrypt(new(big.Int).SetBytes(ds.EncScore))
				if err != nil {
					decErr = err
					return
				}
				score := float64(raw.Int64()) / scoreScale
				if score <= 0 {
					continue
				}
				rs = append(rs, index.Result{Doc: index.DocID(ds.Doc), Score: score})
				meta[ds.Doc] = Hit{Doc: ds.Doc, Owner: ds.Owner, Ciphertext: ds.Cipher}
			}
			index.SortResults(rs)
			lists = append(lists, rs)
		}
	})
	if decErr != nil {
		return nil, decErr
	}
	fused := fusion.Fuse(fusion.LogISR, lists, k)
	hits := make([]Hit, 0, len(fused))
	for _, r := range fused {
		h := meta[string(r.Doc)]
		h.Score = r.Score
		hits = append(hits, h)
	}
	return hits, nil
}

// linearSearch mirrors msse's untrained path.
func (c *Client) linearSearch(s *Server, repoID string, qTerms []text.Term, qDescs [][]float64, k int) ([]Hit, error) {
	encFvs, err := s.GetFeatures(repoID)
	if err != nil {
		return nil, err
	}
	objs, err := s.GetObjects(repoID)
	if err != nil {
		return nil, err
	}
	qtf := make(map[string]uint64, len(qTerms))
	for _, t := range qTerms {
		qtf[t.Word] = t.Freq
	}
	var scored []index.Result
	var scanErr error
	c.timeCPU(device.Index, func() {
		scores := make(map[index.DocID]float64)
		for id, ct := range encFvs {
			var fb featureBlob
			if err := c.decryptBlob(ct, &fb); err != nil {
				scanErr = err
				return
			}
			var sc float64
			for _, t := range fb.Terms {
				if qf, ok := qtf[t.Word]; ok {
					sc += float64(qf) * float64(t.Freq)
				}
			}
			if len(qDescs) > 0 && len(fb.Descs) > 0 {
				for _, qd := range qDescs {
					best := 1.0
					for _, od := range fb.Descs {
						var sum float64
						for i := range qd {
							d := qd[i] - od[i]
							sum += d * d
						}
						if d := math.Sqrt(sum); d < best {
							best = d
						}
					}
					sc += 1 - best
				}
			}
			if sc > 0 {
				scores[index.DocID(id)] = sc
			}
		}
		for d, s := range scores {
			scored = append(scored, index.Result{Doc: d, Score: s})
		}
		index.SortResults(scored)
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if len(scored) > k {
		scored = scored[:k]
	}
	hits := make([]Hit, 0, len(scored))
	for _, r := range scored {
		o := objs[string(r.Doc)]
		hits = append(hits, Hit{Doc: string(r.Doc), Owner: o.Owner, Score: r.Score, Ciphertext: o.Ciphertext})
	}
	return hits, nil
}
