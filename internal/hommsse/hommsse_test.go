package hommsse

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mie/internal/cluster"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/imaging"
)

var (
	keysOnce sync.Once
	keysVal  Keys
	keysErr  error
)

// sharedKeys generates one (slow) Paillier pair for the whole test package.
func sharedKeys(t *testing.T) Keys {
	t.Helper()
	keysOnce.Do(func() {
		var master crypto.Key
		master[0] = 9
		keysVal, keysErr = NewKeys(master, 512)
	})
	if keysErr != nil {
		t.Fatal(keysErr)
	}
	return keysVal
}

func testConfig(t *testing.T) ClientConfig {
	return ClientConfig{
		Keys:    sharedKeys(t),
		Pyramid: imaging.PyramidParams{Scales: []int{16}},
		Vocab:   cluster.VocabParams{Words: 20, Tree: cluster.TreeParams{Branch: 3, Height: 2, Seed: 1}, Seed: 1, MaxIter: 10},
		Padding: 0.6,
	}
}

func classImage(class int, instance int64) *imaging.Image {
	base := rand.New(rand.NewSource(int64(class) * 1000))
	noise := rand.New(rand.NewSource(instance + int64(class)*7919 + 1))
	im, err := imaging.NewImage(32, 32)
	if err != nil {
		panic(err) // impossible: fixed valid dimensions
	}
	for i := range im.Pix {
		im.Pix[i] = base.Float64()*0.9 + noise.Float64()*0.1
	}
	return im
}

func testDoc(class, n int) *Doc {
	topics := []string{
		"beach sand ocean waves sunny holiday",
		"mountain snow hiking trail peaks climbing",
		"city skyline buildings night lights urban",
	}
	return &Doc{
		ID:    fmt.Sprintf("doc-c%d-%d", class, n),
		Owner: "owner1",
		Text:  topics[class%len(topics)],
		Image: classImage(class, int64(n)),
	}
}

func dataKey() crypto.Key {
	var k crypto.Key
	k[0] = 0x42
	return k
}

func setupTrained(t *testing.T, perClass int) (*Client, *Server, string) {
	t.Helper()
	keys := sharedKeys(t)
	s := NewServer()
	const repoID = "r1"
	if err := s.CreateRepository(repoID, &keys.Hom.PublicKey); err != nil {
		t.Fatal(err)
	}
	c := NewClient(testConfig(t))
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < perClass; i++ {
			if err := c.Update(s, repoID, testDoc(cls, i), dataKey()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Train(s, repoID); err != nil {
		t.Fatal(err)
	}
	return c, s, repoID
}

func TestCreateRepositoryValidation(t *testing.T) {
	keys := sharedKeys(t)
	s := NewServer()
	if err := s.CreateRepository("a", nil); err == nil {
		t.Error("expected error for nil public key")
	}
	if err := s.CreateRepository("a", &keys.Hom.PublicKey); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRepository("a", &keys.Hom.PublicKey); !errors.Is(err, ErrRepoExists) {
		t.Errorf("err = %v, want ErrRepoExists", err)
	}
	if _, err := s.GetFeatures("missing"); !errors.Is(err, ErrRepoNotFound) {
		t.Errorf("err = %v, want ErrRepoNotFound", err)
	}
}

func TestUntrainedLinearSearch(t *testing.T) {
	keys := sharedKeys(t)
	s := NewServer()
	if err := s.CreateRepository("r", &keys.Hom.PublicKey); err != nil {
		t.Fatal(err)
	}
	c := NewClient(testConfig(t))
	for cls := 0; cls < 2; cls++ {
		for i := 0; i < 3; i++ {
			if err := c.Update(s, "r", testDoc(cls, i), dataKey()); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, err := c.Search(s, "r", testDoc(1, 50), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("untrained search found nothing")
	}
}

func TestTrainedSearchRanksQueryClassFirst(t *testing.T) {
	c, s, repoID := setupTrained(t, 4)
	hits, err := c.Search(s, repoID, testDoc(0, 77), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	same := 0
	for _, h := range hits {
		var cls, n int
		if _, err := fmt.Sscanf(h.Doc, "doc-c%d-%d", &cls, &n); err == nil && cls == 0 {
			same++
		}
	}
	if same < 2 {
		t.Errorf("only %d/%d hits from query class: %+v", same, len(hits), hits)
	}
}

func TestServerNeverSeesPlaintextFrequencies(t *testing.T) {
	// Structural check of the Table I claim: every stored frequency and
	// counter must be a Paillier ciphertext (indistinguishable across equal
	// plaintexts), not a deterministic value.
	c, s, repoID := setupTrained(t, 2)
	d1 := &Doc{ID: "fa", Owner: "o", Text: "zebra zebra zebra"}
	d2 := &Doc{ID: "fb", Owner: "o", Text: "zebra zebra zebra"}
	if err := c.Update(s, repoID, d1, dataKey()); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(s, repoID, d2, dataKey()); err != nil {
		t.Fatal(err)
	}
	r, err := s.repo(repoID)
	if err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var freqs [][]byte
	for _, e := range r.idx[ModText] {
		if e.doc == "fa" || e.doc == "fb" {
			freqs = append(freqs, e.encFreq)
		}
	}
	if len(freqs) != 2 {
		t.Fatalf("expected 2 postings for fa/fb, got %d", len(freqs))
	}
	if string(freqs[0]) == string(freqs[1]) {
		t.Error("equal frequencies encrypted to identical ciphertexts (frequency pattern leaked)")
	}
}

func TestRepeatedSharedKeywordRetrievable(t *testing.T) {
	c, s, repoID := setupTrained(t, 2)
	for i := 0; i < 3; i++ {
		d := &Doc{ID: fmt.Sprintf("shared-%d", i), Owner: "o", Text: "nebula galaxy astrophotography"}
		if err := c.Update(s, repoID, d, dataKey()); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := c.Search(s, repoID, &Doc{ID: "q", Text: "nebula galaxy"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Errorf("got %d hits, want 3 (homomorphic counters must advance): %+v", len(hits), hits)
	}
}

func TestRemove(t *testing.T) {
	c, s, repoID := setupTrained(t, 2)
	if err := s.Remove(repoID, "doc-c1-0"); err != nil {
		t.Fatal(err)
	}
	hits, err := c.Search(s, repoID, testDoc(1, 9), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc == "doc-c1-0" {
			t.Error("removed doc surfaced")
		}
	}
}

func TestConcurrentUpdatesNoLockNeeded(t *testing.T) {
	// The Hom-MSSE improvement over MSSE: writers proceed without a
	// client-visible lock because the server increments counters itself.
	c, s, repoID := setupTrained(t, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := &Doc{ID: fmt.Sprintf("conc-%d", w), Owner: "o", Text: "concurrent homomorphic writer"}
			if err := c.Update(s, repoID, d, dataKey()); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, err := c.Search(s, repoID, &Doc{ID: "q", Text: "concurrent homomorphic writer"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 6 {
		t.Errorf("got %d concurrent docs, want 6", len(hits))
	}
}

func TestSearchValidation(t *testing.T) {
	c, s, repoID := setupTrained(t, 2)
	if _, err := c.Search(s, repoID, testDoc(0, 0), 0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestMeterShowsHomomorphicOverhead(t *testing.T) {
	keys := sharedKeys(t)
	s := NewServer()
	if err := s.CreateRepository("r", &keys.Hom.PublicKey); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	meter := device.NewMeter(device.Desktop)
	cfg.Meter = meter
	c := NewClient(cfg)
	for i := 0; i < 3; i++ {
		if err := c.Update(s, "r", testDoc(0, i), dataKey()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Train(s, "r"); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(s, "r", testDoc(1, 9), dataKey()); err != nil {
		t.Fatal(err)
	}
	if meter.Time(device.Encrypt) == 0 {
		t.Error("no Encrypt cost recorded")
	}
	if meter.Time(device.Train) == 0 {
		t.Error("no Train cost recorded")
	}
}
