package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"mie/internal/core"
	"mie/internal/crypto"
	"mie/internal/leakcheck"
	"mie/internal/obs"
	"mie/internal/server"
	"mie/internal/wire"
)

func testKey(b byte) crypto.Key {
	var k crypto.Key
	for i := range k {
		k[i] = b
	}
	return k
}

// testClient is a text-only client: replication ships opaque engine records,
// so the cheapest modality exercises every path.
func testClient(t *testing.T) *core.Client {
	t.Helper()
	c, err := core.NewClient(core.ClientConfig{Key: core.RepositoryKey{Master: testKey(1)}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func openSvc(t *testing.T, dir string) *core.Service {
	t.Helper()
	svc, _, err := core.OpenService(core.ServiceOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func mustUpdate(t *testing.T, c *core.Client, repo *core.Repository, id, text string) {
	t.Helper()
	up, err := c.PrepareUpdate(&core.Object{ID: id, Owner: "u", Text: text}, testKey(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Update(up); err != nil {
		t.Fatal(err)
	}
}

// searchIDs runs a text query and returns the hit ids, for parity checks.
func searchIDs(t *testing.T, c *core.Client, repo *core.Repository, text string) []core.SearchHit {
	t.Helper()
	q, err := c.PrepareQuery(&core.Object{ID: "q", Text: text}, 10)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := repo.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	return hits
}

// collector subscribes to one hub stream on a goroutine and accumulates
// records until stopped.
type collector struct {
	mu     sync.Mutex
	recs   []wire.ReplRecord
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

func collect(h *Hub, repoID string, cur Cursor) *collector {
	ctx, cancel := context.WithCancel(context.Background())
	c := &collector{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(c.done)
		c.err = h.Subscribe(ctx, wire.ReplSubscribeReq{RepoID: repoID, Gen: cur.Gen, Seq: cur.Seq}, func(b *wire.ReplRecords) error {
			c.mu.Lock()
			c.recs = append(c.recs, b.Records...)
			c.mu.Unlock()
			return nil
		})
	}()
	return c
}

func (c *collector) records() []wire.ReplRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wire.ReplRecord(nil), c.recs...)
}

// waitRecords polls until the collector has seen a record at cursor head.
func (c *collector) waitHead(t *testing.T, head Cursor) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, r := range c.records() {
			if r.Gen == head.Gen && r.Seq == head.Seq {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no record at head %+v; have %d records", head, len(c.records()))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (c *collector) stop(t *testing.T) {
	t.Helper()
	c.cancel()
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber did not stop")
	}
	if c.err != nil && !errors.Is(c.err, context.Canceled) {
		t.Fatalf("subscribe ended with %v", c.err)
	}
}

// TestHubSnapshotThenLive: a zero-cursor subscriber first receives a
// snapshot stamped with the cut cursor, then live mutation records one by
// one.
func TestHubSnapshotThenLive(t *testing.T) {
	leakcheck.Check(t)
	svc := openSvc(t, t.TempDir())
	defer func() { _ = svc.Close() }()
	hub := NewHub(svc, obs.NewRegistry())
	c := testClient(t)
	repo, err := svc.CreateRepository("r", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustUpdate(t, c, repo, fmt.Sprintf("o%d", i), fmt.Sprintf("document %d alpha", i))
	}

	head := hub.Head("r")
	col := collect(hub, "r", Cursor{})
	col.waitHead(t, head)
	recs := col.records()
	if recs[0].Kind != wire.ReplSnapshot {
		t.Fatalf("first record kind %d, want snapshot", recs[0].Kind)
	}
	if got := (Cursor{Gen: recs[0].Gen, Seq: recs[0].Seq}); got != head {
		t.Fatalf("snapshot cursor %+v, want head %+v", got, head)
	}

	mustUpdate(t, c, repo, "o3", "document 3 alpha")
	newHead := hub.Head("r")
	if newHead.Seq != head.Seq+1 || newHead.Gen != head.Gen {
		t.Fatalf("head advanced %+v -> %+v, want seq+1 same gen", head, newHead)
	}
	col.waitHead(t, newHead)
	recs = col.records()
	last := recs[len(recs)-1]
	if last.Kind != wire.ReplMutation || last.Seq != newHead.Seq {
		t.Fatalf("live record kind %d seq %d, want mutation at %d", last.Kind, last.Seq, newHead.Seq)
	}
	col.stop(t)
}

// TestHubResumeFromCursor: a cursor inside the buffer resumes record by
// record — no snapshot retransfer.
func TestHubResumeFromCursor(t *testing.T) {
	leakcheck.Check(t)
	svc := openSvc(t, t.TempDir())
	defer func() { _ = svc.Close() }()
	hub := NewHub(svc, obs.NewRegistry())
	c := testClient(t)
	repo, err := svc.CreateRepository("r", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustUpdate(t, c, repo, fmt.Sprintf("o%d", i), fmt.Sprintf("resume doc %d", i))
	}
	head := hub.Head("r")
	col := collect(hub, "r", Cursor{Gen: head.Gen, Seq: head.Seq - 2})
	col.waitHead(t, head)
	recs := col.records()
	if len(recs) != 2 {
		t.Fatalf("resumed %d records, want 2", len(recs))
	}
	for i, r := range recs {
		if r.Kind != wire.ReplMutation {
			t.Fatalf("record %d kind %d, want mutation", i, r.Kind)
		}
		if want := head.Seq - 1 + uint64(i); r.Seq != want {
			t.Fatalf("record %d seq %d, want %d", i, r.Seq, want)
		}
		if err := r.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	col.stop(t)
}

// TestHubTrimFallsBackToSnapshot: a cursor trimmed out of the shrunken
// buffer is served a snapshot instead of a gap.
func TestHubTrimFallsBackToSnapshot(t *testing.T) {
	leakcheck.Check(t)
	oldRecs := maxBufferedRecords
	maxBufferedRecords = 4
	defer func() { maxBufferedRecords = oldRecs }()

	svc := openSvc(t, t.TempDir())
	defer func() { _ = svc.Close() }()
	hub := NewHub(svc, obs.NewRegistry())
	c := testClient(t)
	repo, err := svc.CreateRepository("r", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustUpdate(t, c, repo, fmt.Sprintf("o%d", i), fmt.Sprintf("trim doc %d", i))
	}
	head := hub.Head("r")
	// Seq 1 was trimmed long ago (only the last 4 records remain).
	col := collect(hub, "r", Cursor{Gen: head.Gen, Seq: 1})
	col.waitHead(t, head)
	recs := col.records()
	if recs[0].Kind != wire.ReplSnapshot {
		t.Fatalf("trimmed cursor served kind %d, want snapshot", recs[0].Kind)
	}
	if got := (Cursor{Gen: recs[0].Gen, Seq: recs[0].Seq}); got != head {
		t.Fatalf("snapshot cursor %+v, want %+v", got, head)
	}
	col.stop(t)
}

// TestHubRotationOnEpochInstalled: a train install rotates the generation,
// so an old-generation cursor is forced through a snapshot that carries the
// new generation.
func TestHubRotationOnEpochInstalled(t *testing.T) {
	leakcheck.Check(t)
	svc := openSvc(t, t.TempDir())
	defer func() { _ = svc.Close() }()
	hub := NewHub(svc, obs.NewRegistry())
	c := testClient(t)
	repo, err := svc.CreateRepository("r", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, c, repo, "o0", "rotation doc")
	old := hub.Head("r")
	hub.EpochInstalled("r", 1)
	head := hub.Head("r")
	if head.Gen == old.Gen {
		t.Fatal("generation did not rotate on epoch install")
	}
	col := collect(hub, "r", old)
	col.waitHead(t, head)
	recs := col.records()
	if recs[0].Kind != wire.ReplSnapshot || recs[0].Gen != head.Gen {
		t.Fatalf("post-rotation record kind %d gen %d, want snapshot in gen %d", recs[0].Kind, recs[0].Gen, head.Gen)
	}
	col.stop(t)
}

// startLeader boots a replicating leader server over a fresh durable
// service.
func startLeader(t *testing.T, dir string) (*core.Service, *Hub, *server.Server) {
	t.Helper()
	svc := openSvc(t, dir)
	hub := NewHub(svc, obs.NewRegistry())
	srv, err := server.New("127.0.0.1:0", svc, nil, server.WithReplication(hub))
	if err != nil {
		_ = svc.Close()
		t.Fatal(err)
	}
	return svc, hub, srv
}

// waitFollowerCaughtUp polls until the follower's cursors match the hub's
// heads for the catalog and every given repo.
func waitFollowerCaughtUp(t *testing.T, fol *Follower, hub *Hub, repos []string) {
	t.Helper()
	streams := append([]string{CatalogStream}, repos...)
	deadline := time.Now().Add(10 * time.Second)
	for {
		behind := false
		for _, id := range streams {
			if fol.Cursor(id) != hub.Head(id) {
				behind = true
				break
			}
		}
		if !behind {
			return
		}
		if time.Now().After(deadline) {
			for _, id := range streams {
				t.Logf("stream %q: follower %+v leader %+v", id, fol.Cursor(id), hub.Head(id))
			}
			t.Fatal("follower never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFollowerReplicatesEndToEnd: catalog discovery, snapshot + live
// replication over the real wire, search/get parity, and drop convergence.
func TestFollowerReplicatesEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	svc, hub, srv := startLeader(t, t.TempDir())
	defer func() { _ = svc.Close() }()
	defer func() { _ = srv.Close() }()
	c := testClient(t)

	// One repo exists before the follower connects (exercises the catalog
	// listing path), one is created while it is live (the event path).
	r1, err := svc.CreateRepository("pre", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustUpdate(t, c, r1, fmt.Sprintf("o%d", i), fmt.Sprintf("pre-existing doc %d", i))
	}

	folSvc := openSvc(t, t.TempDir())
	defer func() { _ = folSvc.Close() }()
	fol, err := StartFollower(folSvc, srv.Addr(), obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	r2, err := svc.CreateRepository("live", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustUpdate(t, c, r2, fmt.Sprintf("o%d", i), fmt.Sprintf("live doc %d", i))
	}

	waitFollowerCaughtUp(t, fol, hub, []string{"pre", "live"})
	for _, id := range []string{"pre", "live"} {
		lr, err := svc.Repository(id)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := folSvc.Repository(id)
		if err != nil {
			t.Fatalf("follower missing %q: %v", id, err)
		}
		lh := searchIDs(t, c, lr, "doc 2")
		fh := searchIDs(t, c, fr, "doc 2")
		if !reflect.DeepEqual(lh, fh) {
			t.Fatalf("%s: search parity broken: leader %v follower %v", id, lh, fh)
		}
		lc, lo, err := lr.Get("o1")
		if err != nil {
			t.Fatal(err)
		}
		fc, fo, err := fr.Get("o1")
		if err != nil {
			t.Fatal(err)
		}
		if lo != fo || !reflect.DeepEqual(lc, fc) {
			t.Fatalf("%s: get parity broken", id)
		}
	}
	st := fol.Status()
	if !st.Connected || !st.CaughtUp {
		t.Fatalf("caught-up follower reports %+v", st)
	}

	// Drop converges.
	if err := svc.DropRepository("pre"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := folSvc.Repository("pre"); errors.Is(err, core.ErrRepoNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never dropped the repository")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// idleFollower builds a Follower without its session loop, for driving the
// apply path by hand.
func idleFollower(svc *core.Service) *Follower {
	reg := obs.NewRegistry()
	return &Follower{
		svc:         svc,
		reg:         reg,
		cursors:     map[string]Cursor{CatalogStream: {}},
		appliedC:    reg.Counter("repl_follower_applied_total"),
		duplicatesC: reg.Counter("repl_follower_duplicates_total"),
		snapshotsC:  reg.Counter("repl_follower_snapshots_total"),
		reconnectsC: reg.Counter("repl_follower_reconnects_total"),
		done:        make(chan struct{}),
	}
}

// TestDuplicateDeliveryIdempotent: applying the same record sequence twice
// leaves the cursor and the state exactly where the first pass put them —
// the at-least-once wire can never double-apply.
func TestDuplicateDeliveryIdempotent(t *testing.T) {
	leakcheck.Check(t)
	svc := openSvc(t, t.TempDir())
	defer func() { _ = svc.Close() }()
	hub := NewHub(svc, obs.NewRegistry())
	c := testClient(t)
	repo, err := svc.CreateRepository("r", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, c, repo, "o0", "idempotent base doc")
	head0 := hub.Head("r")
	col := collect(hub, "r", Cursor{})
	col.waitHead(t, head0)
	for i := 1; i < 5; i++ {
		mustUpdate(t, c, repo, fmt.Sprintf("o%d", i), fmt.Sprintf("idempotent doc %d", i))
	}
	head := hub.Head("r")
	col.waitHead(t, head)
	col.stop(t)
	recs := col.records() // snapshot + 4 mutations

	folSvc := openSvc(t, t.TempDir())
	defer func() { _ = folSvc.Close() }()
	fol := idleFollower(folSvc)
	p1, p2 := net.Pipe()
	defer func() { _ = p1.Close() }()
	defer func() { _ = p2.Close() }()
	go func() { _, _ = io.Copy(io.Discard, p2) }()
	s := &session{f: fol, conn: p1, subs: map[uint64]string{}, byRepo: map[string]uint64{}}
	if _, err := folSvc.CreateRepository("r", core.RepositoryOptions{}); err != nil {
		t.Fatal(err)
	}

	apply := func(label string) {
		for i := range recs {
			if err := s.apply("r", &recs[i]); err != nil {
				t.Fatalf("%s: record %d: %v", label, i, err)
			}
		}
	}
	apply("first pass")
	if got := fol.Cursor("r"); got != head {
		t.Fatalf("cursor %+v after first pass, want %+v", got, head)
	}
	applied := fol.appliedC.Value()

	apply("duplicate pass")
	if got := fol.Cursor("r"); got != head {
		t.Fatalf("cursor moved to %+v on duplicates", got)
	}
	if fol.appliedC.Value() != applied {
		t.Fatalf("duplicates were applied: %d -> %d", applied, fol.appliedC.Value())
	}
	if got := fol.duplicatesC.Value(); got != int64(len(recs)) {
		t.Fatalf("dropped %d duplicates, want %d", got, len(recs))
	}

	fr, err := folSvc.Repository("r")
	if err != nil {
		t.Fatal(err)
	}
	lh := searchIDs(t, c, repo, "idempotent doc")
	fh := searchIDs(t, c, fr, "idempotent doc")
	if !reflect.DeepEqual(lh, fh) {
		t.Fatalf("post-duplicate parity broken: leader %v follower %v", lh, fh)
	}
}

// TestApplyRejectsCorruptRecord: a flipped payload byte must fail the CRC
// check before it can reach the engine.
func TestApplyRejectsCorruptRecord(t *testing.T) {
	leakcheck.Check(t)
	svc := openSvc(t, t.TempDir())
	defer func() { _ = svc.Close() }()
	hub := NewHub(svc, obs.NewRegistry())
	c := testClient(t)
	repo, err := svc.CreateRepository("r", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustUpdate(t, c, repo, "o0", "corrupt me")
	head := hub.Head("r")
	col := collect(hub, "r", Cursor{})
	col.waitHead(t, head)
	col.stop(t)
	recs := col.records()

	folSvc := openSvc(t, t.TempDir())
	defer func() { _ = folSvc.Close() }()
	fol := idleFollower(folSvc)
	s := &session{f: fol, subs: map[uint64]string{}, byRepo: map[string]uint64{}}
	bad := recs[0]
	bad.Payload = append([]byte(nil), bad.Payload...)
	bad.Payload[0] ^= 0xff
	if err := s.apply("r", &bad); !errors.Is(err, wire.ErrReplCRC) {
		t.Fatalf("corrupt record applied with err=%v, want CRC mismatch", err)
	}
	if got := fol.Cursor("r"); got != (Cursor{}) {
		t.Fatalf("cursor advanced to %+v on a corrupt record", got)
	}
}

// cutProxy forwards one leader connection but tears it down after limit
// server->client bytes — mid-frame, mid-record. Later connections pass
// through untouched.
type cutProxy struct {
	ln     net.Listener
	target string
	limit  int64

	mu    sync.Mutex
	first bool
	conns []net.Conn
	wg    sync.WaitGroup
}

func newCutProxy(t *testing.T, target string, limit int64) *cutProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &cutProxy{ln: ln, target: target, limit: limit, first: true}
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

func (p *cutProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = conn.Close()
			continue
		}
		p.mu.Lock()
		cut := p.first
		p.first = false
		p.conns = append(p.conns, conn, up)
		p.mu.Unlock()
		p.wg.Add(2)
		go func() { defer p.wg.Done(); _, _ = io.Copy(up, conn); _ = up.Close() }()
		go func() {
			defer p.wg.Done()
			if cut {
				_, _ = io.CopyN(conn, up, p.limit)
				_ = up.Close()
			} else {
				_, _ = io.Copy(conn, up)
			}
			_ = conn.Close()
		}()
	}
}

func (p *cutProxy) Close() {
	_ = p.ln.Close()
	p.mu.Lock()
	for _, c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// TestFollowerTornMidRecordResume: the session is torn mid-frame at several
// byte offsets; the follower must reconnect, resume from its cursor, and end
// byte-identical to the leader — the torn partial frame never corrupts
// anything.
func TestFollowerTornMidRecordResume(t *testing.T) {
	leakcheck.Check(t)
	svc, hub, srv := startLeader(t, t.TempDir())
	defer func() { _ = svc.Close() }()
	defer func() { _ = srv.Close() }()
	c := testClient(t)
	repo, err := svc.CreateRepository("r", core.RepositoryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustUpdate(t, c, repo, fmt.Sprintf("o%d", i), fmt.Sprintf("torn resume doc %d", i))
	}

	for _, limit := range []int64{40, 150, 600} {
		t.Run(fmt.Sprintf("cut@%d", limit), func(t *testing.T) {
			proxy := newCutProxy(t, srv.Addr(), limit)
			defer proxy.Close()
			folSvc := openSvc(t, t.TempDir())
			defer func() { _ = folSvc.Close() }()
			fol, err := StartFollower(folSvc, proxy.Addr(), obs.NewRegistry(), nil)
			if err != nil {
				t.Fatal(err)
			}
			defer fol.Close()
			waitFollowerCaughtUp(t, fol, hub, []string{"r"})
			fr, err := folSvc.Repository("r")
			if err != nil {
				t.Fatal(err)
			}
			lh := searchIDs(t, c, repo, "torn resume doc")
			fh := searchIDs(t, c, fr, "torn resume doc")
			if !reflect.DeepEqual(lh, fh) {
				t.Fatalf("parity after torn resume: leader %v follower %v", lh, fh)
			}
		})
	}
}

func (p *cutProxy) Addr() string { return p.ln.Addr().String() }
