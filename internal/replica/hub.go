// Package replica implements WAL-shipping replication for MIE services: a
// leader's Hub taps the service's durable mutation stream (core's
// ReplicationTap) and streams acknowledged records to follower nodes over
// wire v2; a Follower applies them idempotently into its own durable
// service and serves reads, forwarding mutations back to the leader.
//
// # Streams and cursors
//
// Every repository has one record stream, plus one catalog stream (repo id
// "") carrying create/drop events. A stream position is a (generation,
// sequence) cursor: sequences increase by one per record; the generation is
// a random value regenerated whenever the stream's history stops being
// replayable record-by-record — at a train install (trained state lives in
// the snapshot, not the WAL) and implicitly at leader restart (a fresh Hub
// draws fresh generations). A subscriber whose cursor cannot be resumed —
// wrong generation, or trimmed past the in-memory buffer — receives a full
// snapshot stamped with the exact cursor of its cut and resumes from there;
// SnapshotBytes captures that cursor under the repository's write lock, so
// the image and the cursor can never disagree. A cursor (g, s) always means
// "every record of generation g up to and including s is applied"; records
// at or below it are duplicates the follower drops.
//
// Replication endpoints assume the trusted interior of a deployment (the
// same trust domain as the leader's disk); run them inside the TLS/VPN
// perimeter, not on the client-facing edge.
package replica

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"mie/internal/core"
	"mie/internal/obs"
	"mie/internal/wire"
)

// Stream buffer and batch bounds. The buffer absorbs follower lag without
// unbounded memory: beyond the caps the oldest records are trimmed and a
// too-slow follower falls back to a snapshot transfer. Variables, not
// constants, so tests can shrink the buffer to exercise the trim path.
var (
	maxBufferedRecords = 16384
	maxBufferedBytes   = 32 << 20
)

const (
	maxBatchRecords = 256
	maxBatchBytes   = 4 << 20
)

// CatalogStream is the reserved stream id of the repository create/drop
// stream.
const CatalogStream = ""

// Cursor is a replication stream position: Seq is the last applied
// sequence of generation Gen (zero value = nothing applied).
type Cursor struct {
	Gen uint64
	Seq uint64
}

// stream is the in-memory record buffer of one repository (or the catalog).
type stream struct {
	mu sync.Mutex
	// gen is the current generation; regenerated on epoch installs.
	gen uint64
	// next is the last assigned sequence (monotonic across generations).
	next uint64
	// recs holds the contiguous tail of the stream: recs[len-1].Seq == next.
	recs  []wire.ReplRecord
	bytes int
	// notify is closed and replaced whenever the stream advances.
	notify  chan struct{}
	dropped bool
}

// newGen draws a fresh nonzero generation.
func newGen() uint64 {
	var b [8]byte
	for {
		if _, err := cryptorand.Read(b[:]); err != nil {
			panic("replica: no entropy for generation: " + err.Error())
		}
		if g := binary.LittleEndian.Uint64(b[:]); g != 0 {
			return g
		}
	}
}

// appendLocked seals payload into the next record and wakes subscribers.
func (st *stream) appendLocked(kind int, payload []byte) {
	st.next++
	st.recs = append(st.recs, wire.NewReplRecord(st.gen, st.next, kind, time.Now().UnixNano(), payload))
	st.bytes += len(payload)
	for len(st.recs) > maxBufferedRecords || st.bytes > maxBufferedBytes {
		st.bytes -= len(st.recs[0].Payload)
		st.recs = st.recs[1:]
	}
	st.wakeLocked()
}

// rotateLocked starts a fresh generation: buffered history is unreplayable
// across the boundary, so it is dropped and subscribers fall back to a
// snapshot.
func (st *stream) rotateLocked() {
	st.gen = newGen()
	st.recs = nil
	st.bytes = 0
	st.wakeLocked()
}

func (st *stream) wakeLocked() {
	close(st.notify)
	st.notify = make(chan struct{})
}

// resumableLocked reports whether cursor c can be served record-by-record
// from the buffer.
func (st *stream) resumableLocked(c Cursor) bool {
	if c.Gen != st.gen || c.Seq > st.next {
		return false
	}
	oldest := st.next - uint64(len(st.recs)) // seq before the oldest buffered record
	return c.Seq >= oldest
}

// Hub is the leader side: it implements core.ReplicationTap to observe the
// service and server.ReplicationSource to stream to followers.
type Hub struct {
	svc *core.Service
	reg *obs.Registry

	mu      sync.Mutex
	streams map[string]*stream
	acked   map[string]Cursor // last follower-reported cursor per stream

	recordsC   *obs.Counter
	snapshotsC *obs.Counter
	batchesC   *obs.Counter
}

// NewHub attaches a replication hub to svc (wiring itself in as the
// service's ReplicationTap, which replays the existing catalog through
// RepoCreated). Attach before the service starts serving requests.
func NewHub(svc *core.Service, reg *obs.Registry) *Hub {
	if reg == nil {
		reg = obs.Default()
	}
	h := &Hub{
		svc:        svc,
		reg:        reg,
		streams:    map[string]*stream{CatalogStream: newStream()},
		acked:      make(map[string]Cursor),
		recordsC:   reg.Counter("repl_records_total"),
		snapshotsC: reg.Counter("repl_snapshots_total"),
		batchesC:   reg.Counter("repl_batches_total"),
	}
	svc.SetReplicationTap(h)
	return h
}

func newStream() *stream {
	return &stream{gen: newGen(), notify: make(chan struct{})}
}

// stream returns the record stream for id, creating it if needed.
func (h *Hub) stream(id string) *stream {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.streams[id]
	if st == nil {
		st = newStream()
		h.streams[id] = st
	}
	return st
}

// RepoCreated (core.ReplicationTap) announces a repository on the catalog
// stream and materializes its record stream.
func (h *Hub) RepoCreated(id string, opts core.RepositoryOptions) {
	h.stream(id) // materialize
	payload, err := encodeCatalogEvent(wire.ReplCatalogEvent{RepoID: id, Opts: wire.FromCore(opts)})
	if err != nil {
		return
	}
	cat := h.stream(CatalogStream)
	cat.mu.Lock()
	cat.appendLocked(wire.ReplCreate, payload)
	cat.mu.Unlock()
	h.recordsC.Inc()
}

// RepoDropped (core.ReplicationTap) ends the repository's stream and
// announces the drop on the catalog.
func (h *Hub) RepoDropped(id string) {
	h.mu.Lock()
	st := h.streams[id]
	delete(h.streams, id)
	h.mu.Unlock()
	if st != nil {
		st.mu.Lock()
		st.dropped = true
		st.wakeLocked()
		st.mu.Unlock()
	}
	payload, err := encodeCatalogEvent(wire.ReplCatalogEvent{RepoID: id})
	if err != nil {
		return
	}
	cat := h.stream(CatalogStream)
	cat.mu.Lock()
	cat.appendLocked(wire.ReplDrop, payload)
	cat.mu.Unlock()
	h.recordsC.Inc()
}

// MutationLogged (core.ReplicationTap) appends one acknowledged WAL record
// to the repository's stream. Called with the repository's write lock held,
// which is what makes the stream order and the log order identical.
func (h *Hub) MutationLogged(repoID string, payload []byte) {
	st := h.stream(repoID)
	st.mu.Lock()
	if !st.dropped {
		st.appendLocked(wire.ReplMutation, payload)
	}
	st.mu.Unlock()
	h.recordsC.Inc()
}

// EpochInstalled (core.ReplicationTap) rotates the stream's generation:
// trained state is not in the WAL, so followers must re-sync through a
// snapshot that contains the new epoch.
func (h *Hub) EpochInstalled(repoID string, epoch uint64) {
	st := h.stream(repoID)
	st.mu.Lock()
	if !st.dropped {
		st.rotateLocked()
	}
	st.mu.Unlock()
}

// Ack (server.ReplicationSource) records a follower's applied cursor.
func (h *Hub) Ack(ack wire.ReplAck) {
	h.mu.Lock()
	h.acked[ack.RepoID] = Cursor{Gen: ack.Gen, Seq: ack.Seq}
	h.mu.Unlock()
}

// Acked returns the last follower-reported cursor for a stream (zero if
// none) — observability for tests and operators.
func (h *Hub) Acked(repoID string) Cursor {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acked[repoID]
}

// Head returns a stream's current head cursor: its generation and last
// assigned sequence. A follower whose cursor equals the head has applied
// everything the leader has acknowledged — the caught-up predicate the
// cluster harness waits on.
func (h *Hub) Head(repoID string) Cursor {
	h.mu.Lock()
	st := h.streams[repoID]
	h.mu.Unlock()
	if st == nil {
		return Cursor{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Cursor{Gen: st.gen, Seq: st.next}
}

// Status reports the leader's node status for the handshake.
func (h *Hub) Status() (role string, caughtUp bool, lagNanos int64) {
	return "leader", true, 0
}

// Subscribe (server.ReplicationSource) streams records for one stream to
// send until ctx ends. See the package comment for cursor semantics.
func (h *Hub) Subscribe(ctx context.Context, req wire.ReplSubscribeReq, send func(*wire.ReplRecords) error) error {
	if req.RepoID == CatalogStream {
		return h.subscribeCatalog(ctx, req, send)
	}
	cursor := Cursor{Gen: req.Gen, Seq: req.Seq}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		h.mu.Lock()
		st := h.streams[req.RepoID]
		h.mu.Unlock()
		if st == nil {
			return fmt.Errorf("%w: %s", core.ErrRepoNotFound, req.RepoID)
		}
		st.mu.Lock()
		if st.dropped {
			st.mu.Unlock()
			return fmt.Errorf("%w: %s", core.ErrRepoNotFound, req.RepoID)
		}
		if !st.resumableLocked(cursor) {
			st.mu.Unlock()
			rec, err := h.snapshotRecord(req.RepoID, st)
			if err != nil {
				return err
			}
			if err := send(&wire.ReplRecords{RepoID: req.RepoID, Records: []wire.ReplRecord{*rec}}); err != nil {
				return err
			}
			h.snapshotsC.Inc()
			h.batchesC.Inc()
			cursor = Cursor{Gen: rec.Gen, Seq: rec.Seq}
			continue
		}
		batch := batchAfterLocked(st, cursor.Seq)
		if len(batch) == 0 {
			ch := st.notify
			st.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		st.mu.Unlock()
		if err := send(&wire.ReplRecords{RepoID: req.RepoID, Records: batch}); err != nil {
			return err
		}
		h.batchesC.Inc()
		cursor = Cursor{Gen: batch[len(batch)-1].Gen, Seq: batch[len(batch)-1].Seq}
	}
}

// subscribeCatalog streams the catalog: a non-resumable cursor first
// receives the full current listing as create records stamped with the
// capture cursor, then live events.
func (h *Hub) subscribeCatalog(ctx context.Context, req wire.ReplSubscribeReq, send func(*wire.ReplRecords) error) error {
	st := h.stream(CatalogStream)
	cursor := Cursor{Gen: req.Gen, Seq: req.Seq}
	st.mu.Lock()
	if !st.resumableLocked(cursor) {
		// Capture the cursor before listing: a drop racing the listing is
		// replayed as a live event at a higher sequence, so the follower
		// converges either way.
		cut := Cursor{Gen: st.gen, Seq: st.next}
		st.mu.Unlock()
		batch := wire.ReplRecords{RepoID: CatalogStream}
		now := time.Now().UnixNano()
		for _, id := range h.svc.Repositories() {
			repo, release, err := h.svc.Acquire(id)
			if err != nil {
				continue // dropped concurrently; a live event covers it
			}
			opts := repo.Options()
			release()
			payload, err := encodeCatalogEvent(wire.ReplCatalogEvent{RepoID: id, Opts: wire.FromCore(opts)})
			if err != nil {
				return err
			}
			batch.Records = append(batch.Records, wire.NewReplRecord(cut.Gen, cut.Seq, wire.ReplCreate, now, payload))
		}
		if err := send(&batch); err != nil {
			return err
		}
		h.batchesC.Inc()
		cursor = cut
	} else {
		st.mu.Unlock()
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		st.mu.Lock()
		if !st.resumableLocked(cursor) {
			// Trimmed past the buffer mid-session: restart with a listing.
			st.mu.Unlock()
			return h.subscribeCatalog(ctx, wire.ReplSubscribeReq{RepoID: CatalogStream}, send)
		}
		batch := batchAfterLocked(st, cursor.Seq)
		if len(batch) == 0 {
			ch := st.notify
			st.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		st.mu.Unlock()
		if err := send(&wire.ReplRecords{RepoID: CatalogStream, Records: batch}); err != nil {
			return err
		}
		h.batchesC.Inc()
		cursor = Cursor{Gen: batch[len(batch)-1].Gen, Seq: batch[len(batch)-1].Seq}
	}
}

// batchAfterLocked copies the records after seq, bounded by the batch caps.
func batchAfterLocked(st *stream, seq uint64) []wire.ReplRecord {
	oldest := st.next - uint64(len(st.recs))
	if seq < oldest {
		seq = oldest // caller verified resumable; defensive
	}
	start := int(seq - oldest)
	if start >= len(st.recs) {
		return nil
	}
	var out []wire.ReplRecord
	size := 0
	for _, rec := range st.recs[start:] {
		if len(out) >= maxBatchRecords || (len(out) > 0 && size+len(rec.Payload) > maxBatchBytes) {
			break
		}
		out = append(out, rec)
		size += len(rec.Payload)
	}
	return out
}

// snapshotRecord produces a ReplSnapshot record for one repository: the
// image and the cursor of its cut, captured atomically under the
// repository's write lock.
func (h *Hub) snapshotRecord(repoID string, st *stream) (*wire.ReplRecord, error) {
	repo, release, err := h.svc.Acquire(repoID)
	if err != nil {
		return nil, err
	}
	defer release()
	var cut Cursor
	image, err := repo.SnapshotBytes(func() {
		st.mu.Lock()
		cut = Cursor{Gen: st.gen, Seq: st.next}
		st.mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	rec := wire.NewReplRecord(cut.Gen, cut.Seq, wire.ReplSnapshot, time.Now().UnixNano(), image)
	return &rec, nil
}

func encodeCatalogEvent(ev wire.ReplCatalogEvent) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ev); err != nil {
		return nil, fmt.Errorf("replica: encode catalog event: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCatalogEvent(b []byte) (wire.ReplCatalogEvent, error) {
	var ev wire.ReplCatalogEvent
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ev); err != nil {
		return ev, fmt.Errorf("replica: decode catalog event: %w", err)
	}
	return ev, nil
}
