package replica

import (
	"context"
	"sync"

	"mie/internal/client"
	"mie/internal/wire"
)

// Forwarder relays request envelopes from a follower to the leader over a
// lazily-dialed pooled client connection. It implements the server's
// Forwarder seam structurally. The dial is lazy so a follower can boot
// before its leader is reachable; a failed dial is not cached, so the next
// forwarded request re-attempts it.
type Forwarder struct {
	addr string

	mu   sync.Mutex
	conn *client.Conn
}

// NewForwarder returns a forwarder targeting the leader at addr.
func NewForwarder(addr string) *Forwarder {
	return &Forwarder{addr: addr}
}

// Forward relays env to the leader and returns the leader's raw response
// envelope. Only training status/wait polls are retried on transport
// errors; mutations surface the error so the origin client decides.
func (f *Forwarder) Forward(ctx context.Context, env *wire.Envelope) (*wire.Envelope, error) {
	c, err := f.get()
	if err != nil {
		return nil, err
	}
	idempotent := env.Kind == wire.KindTrainStatus || env.Kind == wire.KindTrainWait
	return c.Forward(ctx, env, idempotent)
}

func (f *Forwarder) get() (*client.Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conn != nil {
		return f.conn, nil
	}
	c, err := client.Dial(f.addr, nil)
	if err != nil {
		return nil, err
	}
	f.conn = c
	return c, nil
}

// Close tears down the leader connection, if one was dialed.
func (f *Forwarder) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conn == nil {
		return nil
	}
	err := f.conn.Close()
	f.conn = nil
	return err
}
