package replica

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mie/internal/core"
	"mie/internal/obs"
	"mie/internal/wire"
)

// Follower reconnect backoff bounds.
const (
	followerBackoffMin = 25 * time.Millisecond
	followerBackoffMax = 2 * time.Second
)

// lagSampleCap bounds the retained lag samples (newest-wins ring).
const lagSampleCap = 4096

// Status is a follower's replication health, adapted into the server's
// NodeStatus by whoever wires the two together (cmd/mie-server, the cluster
// harness) so this package never imports the transport layer.
type Status struct {
	// Connected reports a live session to the leader.
	Connected bool
	// CaughtUp reports a connected follower with no received-but-unapplied
	// records.
	CaughtUp bool
	// LagNanos is the last observed apply lag (record timestamp to local
	// apply), in nanoseconds.
	LagNanos int64
}

// Follower replicates a leader's repositories into its own durable service:
// it subscribes to the catalog and every repository stream, applies records
// idempotently (duplicates below the cursor are dropped), acknowledges its
// cursor after each batch, and reconnects with capped backoff — resuming
// every stream from its cursor — whenever the session breaks.
type Follower struct {
	svc  *core.Service
	addr string
	reg  *obs.Registry
	log  *obs.Logger

	mu      sync.Mutex
	cursors map[string]Cursor // last applied cursor per stream ("" = catalog)

	connected atomic.Bool
	applying  atomic.Int64 // records received but not yet applied
	lagNanos  atomic.Int64

	lagMu      sync.Mutex
	lagSamples []time.Duration

	appliedC    *obs.Counter
	duplicatesC *obs.Counter
	snapshotsC  *obs.Counter
	reconnectsC *obs.Counter

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// StartFollower connects svc to the leader at addr and begins replicating.
// The service must be durable: applied mutations are re-logged to the
// follower's own WAL, so a restarted follower keeps serving its replicated
// state from local disk while it re-syncs. Cursors live in memory only —
// within one process they resume streams record-by-record across
// reconnects; a restarted process re-syncs through a snapshot transfer.
func StartFollower(svc *core.Service, addr string, reg *obs.Registry, log *obs.Logger) (*Follower, error) {
	if !svc.Durable() {
		return nil, errors.New("replica: follower requires a durable service")
	}
	if reg == nil {
		reg = obs.Default()
	}
	f := &Follower{
		svc:         svc,
		addr:        addr,
		reg:         reg,
		log:         log,
		cursors:     map[string]Cursor{CatalogStream: {}},
		appliedC:    reg.Counter("repl_follower_applied_total"),
		duplicatesC: reg.Counter("repl_follower_duplicates_total"),
		snapshotsC:  reg.Counter("repl_follower_snapshots_total"),
		reconnectsC: reg.Counter("repl_follower_reconnects_total"),
		done:        make(chan struct{}),
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Close stops replication. The follower's service is untouched: it keeps
// serving whatever state it has replicated so far.
func (f *Follower) Close() {
	f.closeOnce.Do(func() { close(f.done) })
	f.wg.Wait()
}

// Status reports the follower's current replication health.
func (f *Follower) Status() Status {
	conn := f.connected.Load()
	return Status{
		Connected: conn,
		CaughtUp:  conn && f.applying.Load() == 0,
		LagNanos:  f.lagNanos.Load(),
	}
}

// Cursor returns the follower's applied cursor for a stream.
func (f *Follower) Cursor(repoID string) Cursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursors[repoID]
}

// LagQuantile returns the q-quantile (0..1) of observed apply lag, or zero
// if no samples were taken yet.
func (f *Follower) LagQuantile(q float64) time.Duration {
	f.lagMu.Lock()
	samples := append([]time.Duration(nil), f.lagSamples...)
	f.lagMu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(len(samples)-1))
	return samples[idx]
}

// run is the session loop: dial, replicate until the session breaks, back
// off, repeat. Backoff resets after any session that made progress.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := followerBackoffMin
	for {
		select {
		case <-f.done:
			return
		default:
		}
		progressed, err := f.session()
		f.connected.Store(false)
		select {
		case <-f.done:
			return
		default:
		}
		if err != nil && f.log != nil {
			f.log.Warn("replica: follower session ended", "leader", f.addr, "err", err.Error())
		}
		f.reconnectsC.Inc()
		if progressed {
			backoff = followerBackoffMin
		}
		select {
		case <-time.After(backoff):
		case <-f.done:
			return
		}
		if backoff *= 2; backoff > followerBackoffMax {
			backoff = followerBackoffMax
		}
	}
}

// session runs one connection to the leader: handshake, subscribe to the
// catalog plus every known repository stream from its cursor, then apply
// records as they arrive. It returns when the connection breaks or the
// follower is closed; progressed reports whether any record was applied.
func (f *Follower) session() (progressed bool, err error) {
	conn, err := net.DialTimeout("tcp", f.addr, 5*time.Second)
	if err != nil {
		return false, err
	}
	// Unblock the read loop on Close by tearing down the socket.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-f.done:
		case <-stop:
		}
		_ = conn.Close()
	}()

	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.WriteFrame(conn, wire.KindHello, wire.Hello{MaxVersion: wire.ProtocolV2}); err != nil {
		return false, fmt.Errorf("hello: %w", err)
	}
	env, _, err := wire.ReadFrame(conn)
	if err != nil {
		return false, fmt.Errorf("hello response: %w", err)
	}
	var hr wire.HelloResp
	if env.Kind != wire.KindHelloResp || env.Decode(&hr) != nil || hr.Version < wire.ProtocolV2 {
		return false, fmt.Errorf("leader %s does not speak protocol v2", f.addr)
	}
	_ = conn.SetDeadline(time.Time{})

	s := &session{f: f, conn: conn, subs: make(map[uint64]string), byRepo: make(map[string]uint64)}
	// Catalog first: it materializes repo subscriptions for anything new.
	if err := s.subscribe(CatalogStream); err != nil {
		return false, err
	}
	f.mu.Lock()
	ids := make([]string, 0, len(f.cursors))
	for id := range f.cursors {
		if id != CatalogStream {
			ids = append(ids, id)
		}
	}
	f.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		if err := s.subscribe(id); err != nil {
			return false, err
		}
	}
	f.connected.Store(true)

	for {
		env, _, err := wire.ReadFrame(conn)
		if err != nil {
			return s.progressed, err
		}
		switch env.Kind {
		case wire.KindReplRecords:
			if err := s.handleBatch(env); err != nil {
				return s.progressed, err
			}
		case wire.KindError:
			var ack wire.Ack
			_ = env.Decode(&ack)
			return s.progressed, fmt.Errorf("leader error: %s", ack.Err)
		default:
			// Ignore unknown frames: forward-compatible with new kinds.
		}
	}
}

// session is the per-connection state: the stream-id assignments of this
// connection and the socket write path (single goroutine, no lock needed).
type session struct {
	f          *Follower
	conn       net.Conn
	nextID     uint64
	subs       map[uint64]string // envelope ID -> stream
	byRepo     map[string]uint64 // stream -> envelope ID
	progressed bool
}

// subscribe opens one stream from the follower's cursor.
func (s *session) subscribe(repoID string) error {
	if _, ok := s.byRepo[repoID]; ok {
		return nil
	}
	cur := s.f.Cursor(repoID)
	s.nextID++
	id := s.nextID
	s.subs[id] = repoID
	s.byRepo[repoID] = id
	env, err := wire.NewEnvelope(wire.KindReplSubscribe, "", id, 0, wire.ReplSubscribeReq{RepoID: repoID, Gen: cur.Gen, Seq: cur.Seq})
	if err == nil {
		_, err = wire.WriteEnvelope(s.conn, env)
	}
	if err != nil {
		return fmt.Errorf("subscribe %q: %w", repoID, err)
	}
	return nil
}

// unsubscribeLocal forgets a stream's assignment (the leader side already
// ended it).
func (s *session) unsubscribeLocal(repoID string) {
	if id, ok := s.byRepo[repoID]; ok {
		delete(s.subs, id)
		delete(s.byRepo, repoID)
	}
}

// handleBatch applies one repl-records frame.
func (s *session) handleBatch(env *wire.Envelope) error {
	repoID, ok := s.subs[env.ID]
	if !ok {
		return nil // stale stream (already dropped locally)
	}
	var batch wire.ReplRecords
	if err := env.Decode(&batch); err != nil {
		return err
	}
	if batch.Err != "" {
		if batch.Code == wire.ErrCodeRepoNotFound {
			// The repository is gone on the leader; the catalog drop event
			// converges us, so just end this stream.
			s.unsubscribeLocal(repoID)
			return nil
		}
		return fmt.Errorf("stream %q: %s", repoID, batch.Err)
	}
	if len(batch.Records) == 0 {
		return nil
	}
	s.f.applying.Add(int64(len(batch.Records)))
	defer func() { s.f.applying.Store(0) }()
	for i := range batch.Records {
		if err := s.apply(repoID, &batch.Records[i]); err != nil {
			return err
		}
		s.f.applying.Add(-1)
	}
	last := batch.Records[len(batch.Records)-1]
	lag := time.Since(time.Unix(0, last.UnixNano))
	if lag < 0 {
		lag = 0
	}
	s.f.lagNanos.Store(int64(lag))
	s.f.lagMu.Lock()
	if len(s.f.lagSamples) < lagSampleCap {
		s.f.lagSamples = append(s.f.lagSamples, lag)
	} else {
		s.f.lagSamples[int(last.Seq)%lagSampleCap] = lag
	}
	s.f.lagMu.Unlock()
	cur := s.f.Cursor(repoID)
	ack, err := wire.NewEnvelope(wire.KindReplAck, "", 0, 0, wire.ReplAck{RepoID: repoID, Gen: cur.Gen, Seq: cur.Seq})
	if err == nil {
		_, err = wire.WriteEnvelope(s.conn, ack)
	}
	if err != nil {
		return fmt.Errorf("ack %q: %w", repoID, err)
	}
	return nil
}

// apply applies one record to the local service, enforcing cursor
// discipline: duplicates (at or below the cursor in the same generation)
// are skipped, gaps and generation mismatches tear the session so the
// resubscribe path can heal them.
func (s *session) apply(repoID string, rec *wire.ReplRecord) error {
	if err := rec.Verify(); err != nil {
		return fmt.Errorf("stream %q seq %d: %w", repoID, rec.Seq, err)
	}
	cur := s.f.Cursor(repoID)
	switch rec.Kind {
	case wire.ReplSnapshot:
		if rec.Gen == cur.Gen && rec.Seq <= cur.Seq {
			s.f.duplicatesC.Inc()
			return nil
		}
		if err := s.f.svc.InstallSnapshot(repoID, rec.Payload); err != nil {
			return fmt.Errorf("install snapshot %q: %w", repoID, err)
		}
		s.f.snapshotsC.Inc()
		s.f.appliedC.Inc()
		s.progressed = true
		s.f.setCursor(repoID, Cursor{Gen: rec.Gen, Seq: rec.Seq})
		return nil
	case wire.ReplMutation:
		if rec.Gen == cur.Gen && rec.Seq <= cur.Seq {
			s.f.duplicatesC.Inc()
			return nil
		}
		if rec.Gen != cur.Gen || rec.Seq != cur.Seq+1 {
			return fmt.Errorf("stream %q: gap at (%d,%d), cursor (%d,%d)", repoID, rec.Gen, rec.Seq, cur.Gen, cur.Seq)
		}
		repo, release, err := s.f.svc.Acquire(repoID)
		if err != nil {
			return fmt.Errorf("acquire %q: %w", repoID, err)
		}
		err = repo.ApplyReplicated(rec.Payload)
		release()
		if err != nil {
			return fmt.Errorf("apply %q seq %d: %w", repoID, rec.Seq, err)
		}
		s.f.appliedC.Inc()
		s.progressed = true
		s.f.setCursor(repoID, Cursor{Gen: rec.Gen, Seq: rec.Seq})
		return nil
	case wire.ReplCreate, wire.ReplDrop:
		if repoID != CatalogStream {
			return fmt.Errorf("stream %q: catalog record on repo stream", repoID)
		}
		if rec.Gen == cur.Gen && rec.Seq < cur.Seq {
			s.f.duplicatesC.Inc()
			return nil
		}
		if err := s.applyCatalog(rec); err != nil {
			return err
		}
		s.f.appliedC.Inc()
		s.progressed = true
		s.f.setCursor(CatalogStream, Cursor{Gen: rec.Gen, Seq: rec.Seq})
		return nil
	default:
		return fmt.Errorf("stream %q: unknown record kind %d", repoID, rec.Kind)
	}
}

// applyCatalog converges the local catalog on a create/drop event. Creates
// tolerate an existing repository and drops a missing one: catalog listings
// are replayed on every re-sync, so both directions must be idempotent.
func (s *session) applyCatalog(rec *wire.ReplRecord) error {
	ev, err := decodeCatalogEvent(rec.Payload)
	if err != nil {
		return err
	}
	switch rec.Kind {
	case wire.ReplCreate:
		_, err := s.f.svc.CreateRepository(ev.RepoID, ev.Opts.ToCore())
		if err != nil && !errors.Is(err, core.ErrRepoExists) {
			return fmt.Errorf("create %q: %w", ev.RepoID, err)
		}
		return s.subscribe(ev.RepoID)
	case wire.ReplDrop:
		s.unsubscribeLocal(ev.RepoID)
		s.f.dropCursor(ev.RepoID)
		if err := s.f.svc.DropRepository(ev.RepoID); err != nil && !errors.Is(err, core.ErrRepoNotFound) {
			return fmt.Errorf("drop %q: %w", ev.RepoID, err)
		}
		return nil
	}
	return nil
}

func (f *Follower) setCursor(repoID string, c Cursor) {
	f.mu.Lock()
	f.cursors[repoID] = c
	f.mu.Unlock()
}

func (f *Follower) dropCursor(repoID string) {
	f.mu.Lock()
	delete(f.cursors, repoID)
	f.mu.Unlock()
}
