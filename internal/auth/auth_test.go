package auth

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mie/internal/crypto"
)

func testAuthority(b byte) *Authority {
	var k crypto.Key
	k[0] = b
	return NewAuthority(k)
}

func TestIssueVerify(t *testing.T) {
	a := testAuthority(1)
	tok, err := a.Issue("alice", "photos", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(tok, "photos"); err != nil {
		t.Errorf("fresh token rejected: %v", err)
	}
}

func TestIssueValidation(t *testing.T) {
	a := testAuthority(1)
	if _, err := a.Issue("", "r", 0); err == nil {
		t.Error("expected error for empty user")
	}
	if _, err := a.Issue("u", "", 0); err == nil {
		t.Error("expected error for empty repo")
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	a := testAuthority(2)
	tok, err := a.Issue("bob with spaces", "repo/with:chars", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(tok.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != tok {
		t.Errorf("round trip mismatch:\n%+v\n%+v", parsed, tok)
	}
	if err := a.VerifyString(tok.Encode(), "repo/with:chars"); err != nil {
		t.Errorf("VerifyString: %v", err)
	}
}

func TestParseGarbage(t *testing.T) {
	for _, s := range []string{"", "!!!", "aGVsbG8", strings.Repeat("A", 200)} {
		if _, err := Parse(s); !errors.Is(err, ErrMalformed) {
			t.Errorf("Parse(%q) err = %v, want ErrMalformed", s, err)
		}
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForgedTokenRejected(t *testing.T) {
	a := testAuthority(3)
	other := testAuthority(4)
	tok, err := other.Issue("mallory", "photos", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(tok, "photos"); !errors.Is(err, ErrBadMAC) {
		t.Errorf("foreign token: err = %v, want ErrBadMAC", err)
	}
	// Tampering with any field breaks the MAC.
	mine, err := a.Issue("alice", "photos", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	tampered := mine
	tampered.User = "mallory"
	if err := a.Verify(tampered, "photos"); !errors.Is(err, ErrBadMAC) {
		t.Errorf("tampered user: err = %v, want ErrBadMAC", err)
	}
	tampered = mine
	tampered.ExpiresAt += 100000
	if err := a.Verify(tampered, "photos"); !errors.Is(err, ErrBadMAC) {
		t.Errorf("tampered expiry: err = %v, want ErrBadMAC", err)
	}
}

func TestWrongRepo(t *testing.T) {
	a := testAuthority(5)
	tok, err := a.Issue("alice", "photos", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(tok, "medical"); !errors.Is(err, ErrWrongRepo) {
		t.Errorf("err = %v, want ErrWrongRepo", err)
	}
}

func TestExpiry(t *testing.T) {
	a := testAuthority(6)
	now := time.Unix(1000000, 0)
	a.SetClock(func() time.Time { return now })
	tok, err := a.Issue("alice", "r", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(tok, "r"); err != nil {
		t.Fatalf("fresh: %v", err)
	}
	now = now.Add(2 * time.Minute)
	if err := a.Verify(tok, "r"); !errors.Is(err, ErrExpired) {
		t.Errorf("err = %v, want ErrExpired", err)
	}
	// A no-expiry token survives.
	forever, err := a.Issue("alice", "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(1000 * time.Hour)
	if err := a.Verify(forever, "r"); err != nil {
		t.Errorf("no-expiry token rejected: %v", err)
	}
}

func TestRevokeToken(t *testing.T) {
	a := testAuthority(7)
	t1, err := a.Issue("alice", "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Issue("alice", "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Revoke(t1)
	if err := a.Verify(t1, "r"); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked token: err = %v", err)
	}
	if err := a.Verify(t2, "r"); err != nil {
		t.Errorf("sibling token caught in revocation: %v", err)
	}
}

func TestRevokeUser(t *testing.T) {
	a := testAuthority(8)
	now := time.Unix(2000000, 0)
	a.SetClock(func() time.Time { return now })
	old, err := a.Issue("mallory", "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	aliceTok, err := a.Issue("alice", "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	a.RevokeUser("mallory")
	if err := a.Verify(old, "r"); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked user's token: err = %v", err)
	}
	if err := a.Verify(aliceTok, "r"); err != nil {
		t.Errorf("other user affected: %v", err)
	}
	// Re-issuing after the cutoff re-admits the user.
	now = now.Add(time.Second)
	fresh, err := a.Issue("mallory", "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(fresh, "r"); err != nil {
		t.Errorf("re-issued token rejected: %v", err)
	}
}

func TestTokenIDsDistinct(t *testing.T) {
	a := testAuthority(9)
	t1, err := a.Issue("u", "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Issue("u", "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID() == t2.ID() {
		t.Error("two tokens share an id")
	}
}
