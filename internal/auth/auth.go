// Package auth implements the user access-control mechanism the paper's
// system model delegates to "sharing authorization tokens between trusted
// users" (§III-A, after Curtmola et al.) with the revocation support §III-B
// requires against malicious users.
//
// The repository owner holds an authority key and mints bearer tokens that
// bind (user, repository, validity window). The cloud server receives the
// *verification* capability and enforces access before executing requests.
// The server is honest-but-curious, so giving it the MAC key is consistent
// with the trust model: access control defends against other users, not
// against the server itself (data confidentiality is DPE+AES's job).
//
// Revocation is immediate and two-grained: individual tokens by id, or all
// of a user's tokens issued before a cutoff (the "periodic key refreshment"
// pattern: re-issue after revoking the user).
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"mie/internal/crypto"
)

// Verification errors.
var (
	// ErrMalformed is returned for tokens that fail to parse.
	ErrMalformed = errors.New("auth: malformed token")
	// ErrBadMAC is returned for tokens not minted by this authority.
	ErrBadMAC = errors.New("auth: invalid token signature")
	// ErrExpired is returned for tokens past their validity window.
	ErrExpired = errors.New("auth: token expired")
	// ErrWrongRepo is returned when a token is used on another repository.
	ErrWrongRepo = errors.New("auth: token bound to a different repository")
	// ErrRevoked is returned for revoked tokens or users.
	ErrRevoked = errors.New("auth: token revoked")
)

// Token is a bearer credential for one user on one repository.
type Token struct {
	User      string
	Repo      string
	IssuedAt  int64 // unix seconds
	ExpiresAt int64 // unix seconds; 0 = no expiry
	Nonce     [16]byte
	MAC       [32]byte
}

// ID identifies the token for revocation (the nonce in hex).
func (t Token) ID() string {
	return fmt.Sprintf("%x", t.Nonce)
}

// Encode renders the token as a URL-safe string for transport.
func (t Token) Encode() string {
	payload := t.payload()
	buf := make([]byte, 0, len(payload)+32)
	buf = append(buf, payload...)
	buf = append(buf, t.MAC[:]...)
	return base64.RawURLEncoding.EncodeToString(buf)
}

// payload serializes the MAC'd fields: lengths make the encoding injective.
func (t Token) payload() []byte {
	var buf []byte
	appendStr := func(s string) {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(s)))
		buf = append(buf, l[:]...)
		buf = append(buf, s...)
	}
	appendStr(t.User)
	appendStr(t.Repo)
	var ts [16]byte
	binary.BigEndian.PutUint64(ts[:8], uint64(t.IssuedAt))
	binary.BigEndian.PutUint64(ts[8:], uint64(t.ExpiresAt))
	buf = append(buf, ts[:]...)
	buf = append(buf, t.Nonce[:]...)
	return buf
}

// Parse decodes a token string. The signature is NOT checked here; call
// Authority.Verify.
func Parse(s string) (Token, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Token{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if len(raw) < 4+4+16+16+32 {
		return Token{}, fmt.Errorf("%w: too short", ErrMalformed)
	}
	var t Token
	off := 0
	readStr := func() (string, bool) {
		if off+4 > len(raw) {
			return "", false
		}
		l := int(binary.BigEndian.Uint32(raw[off:]))
		off += 4
		if l < 0 || off+l > len(raw) {
			return "", false
		}
		s := string(raw[off : off+l])
		off += l
		return s, true
	}
	var ok bool
	if t.User, ok = readStr(); !ok {
		return Token{}, fmt.Errorf("%w: user field", ErrMalformed)
	}
	if t.Repo, ok = readStr(); !ok {
		return Token{}, fmt.Errorf("%w: repo field", ErrMalformed)
	}
	if off+16+16+32 != len(raw) {
		return Token{}, fmt.Errorf("%w: bad length", ErrMalformed)
	}
	t.IssuedAt = int64(binary.BigEndian.Uint64(raw[off:]))
	t.ExpiresAt = int64(binary.BigEndian.Uint64(raw[off+8:]))
	off += 16
	copy(t.Nonce[:], raw[off:off+16])
	off += 16
	copy(t.MAC[:], raw[off:])
	return t, nil
}

// Authority mints and verifies tokens for the repositories of one owner.
// It is safe for concurrent use.
type Authority struct {
	key crypto.Key
	now func() time.Time

	mu            sync.Mutex
	revokedTokens map[string]struct{}
	revokedUsers  map[string]int64 // user -> cutoff unix seconds
}

// NewAuthority creates an authority from its secret key. The same key must
// back the verifying side (typically handed to the server at repository
// creation).
func NewAuthority(key crypto.Key) *Authority {
	return &Authority{
		key:           crypto.DeriveKey(key, "auth-authority"),
		now:           time.Now,
		revokedTokens: make(map[string]struct{}),
		revokedUsers:  make(map[string]int64),
	}
}

// SetClock overrides the time source (tests).
func (a *Authority) SetClock(now func() time.Time) { a.now = now }

// Issue mints a token for user on repo, valid for ttl (0 = no expiry).
func (a *Authority) Issue(user, repo string, ttl time.Duration) (Token, error) {
	if user == "" || repo == "" {
		return Token{}, errors.New("auth: user and repo required")
	}
	t := Token{User: user, Repo: repo, IssuedAt: a.now().Unix()}
	if ttl > 0 {
		t.ExpiresAt = a.now().Add(ttl).Unix()
	}
	if _, err := rand.Read(t.Nonce[:]); err != nil {
		return Token{}, fmt.Errorf("auth: nonce: %w", err)
	}
	copy(t.MAC[:], crypto.PRF(a.key, t.payload()))
	return t, nil
}

// Verify checks a token for use on repo: signature, binding, expiry and
// revocation state.
func (a *Authority) Verify(t Token, repo string) error {
	var want [32]byte
	copy(want[:], crypto.PRF(a.key, t.payload()))
	if !hmac.Equal(want[:], t.MAC[:]) {
		return ErrBadMAC
	}
	if t.Repo != repo {
		return ErrWrongRepo
	}
	if t.ExpiresAt != 0 && a.now().Unix() > t.ExpiresAt {
		return ErrExpired
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dead := a.revokedTokens[t.ID()]; dead {
		return ErrRevoked
	}
	if cutoff, ok := a.revokedUsers[t.User]; ok && t.IssuedAt <= cutoff {
		return ErrRevoked
	}
	return nil
}

// VerifyString parses and verifies an encoded token.
func (a *Authority) VerifyString(s, repo string) error {
	t, err := Parse(s)
	if err != nil {
		return err
	}
	return a.Verify(t, repo)
}

// Revoke invalidates a single token immediately.
func (a *Authority) Revoke(t Token) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revokedTokens[t.ID()] = struct{}{}
}

// RevokeUser invalidates every token the user holds that was issued up to
// now; tokens re-issued afterwards (post key-refresh vetting) work again.
func (a *Authority) RevokeUser(user string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revokedUsers[user] = a.now().Unix()
}
