package msse

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mie/internal/cluster"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/imaging"
)

func testMaster(b byte) crypto.Key {
	var k crypto.Key
	for i := range k {
		k[i] = b
	}
	return k
}

func testClientConfig() ClientConfig {
	return ClientConfig{
		Keys:    NewKeys(testMaster(1)),
		Pyramid: imaging.PyramidParams{Scales: []int{16}},
		Vocab:   cluster.VocabParams{Words: 20, Tree: cluster.TreeParams{Branch: 3, Height: 2, Seed: 1}, Seed: 1, MaxIter: 10},
	}
}

func classImage(class int, instance int64) *imaging.Image {
	base := rand.New(rand.NewSource(int64(class) * 1000))
	noise := rand.New(rand.NewSource(instance + int64(class)*7919 + 1))
	im, err := imaging.NewImage(32, 32)
	if err != nil {
		panic(err) // impossible: fixed valid dimensions
	}
	for i := range im.Pix {
		im.Pix[i] = base.Float64()*0.9 + noise.Float64()*0.1
	}
	return im
}

func testDoc(class, n int) *Doc {
	topics := []string{
		"beach sand ocean waves sunny holiday",
		"mountain snow hiking trail peaks climbing",
		"city skyline buildings night lights urban",
	}
	return &Doc{
		ID:    fmt.Sprintf("doc-c%d-%d", class, n),
		Owner: "owner1",
		Text:  topics[class%len(topics)],
		Image: classImage(class, int64(n)),
	}
}

func dataKey() crypto.Key { return testMaster(77) }

func setupTrained(t *testing.T, perClass int) (*Client, *Server, string) {
	t.Helper()
	s := NewServer()
	const repoID = "r1"
	if err := s.CreateRepository(repoID); err != nil {
		t.Fatal(err)
	}
	c := NewClient(testClientConfig())
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < perClass; i++ {
			if err := c.Update(s, repoID, testDoc(cls, i), dataKey()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Train(s, repoID); err != nil {
		t.Fatal(err)
	}
	return c, s, repoID
}

func TestCreateRepositoryDuplicate(t *testing.T) {
	s := NewServer()
	if err := s.CreateRepository("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRepository("a"); !errors.Is(err, ErrRepoExists) {
		t.Errorf("err = %v, want ErrRepoExists", err)
	}
	if _, err := s.GetFeatures("missing"); !errors.Is(err, ErrRepoNotFound) {
		t.Errorf("err = %v, want ErrRepoNotFound", err)
	}
}

func TestUntrainedLinearSearch(t *testing.T) {
	s := NewServer()
	if err := s.CreateRepository("r"); err != nil {
		t.Fatal(err)
	}
	c := NewClient(testClientConfig())
	for cls := 0; cls < 3; cls++ {
		for i := 0; i < 4; i++ {
			if err := c.Update(s, "r", testDoc(cls, i), dataKey()); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, err := c.Search(s, "r", testDoc(1, 99), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("untrained search found nothing")
	}
	same := 0
	for _, h := range hits {
		var cls, n int
		if _, err := fmt.Sscanf(h.Doc, "doc-c%d-%d", &cls, &n); err == nil && cls == 1 {
			same++
		}
	}
	if same < 3 {
		t.Errorf("only %d/%d hits from query class: %+v", same, len(hits), hits)
	}
}

func TestTrainedSearch(t *testing.T) {
	c, s, repoID := setupTrained(t, 5)
	if !c.IsTrained() {
		t.Fatal("client not trained")
	}
	hits, err := c.Search(s, repoID, testDoc(2, 50), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("trained search found nothing")
	}
	same := 0
	for _, h := range hits {
		var cls, n int
		if _, err := fmt.Sscanf(h.Doc, "doc-c%d-%d", &cls, &n); err == nil && cls == 2 {
			same++
		}
	}
	if same < 3 {
		t.Errorf("only %d/%d hits from query class: %+v", same, len(hits), hits)
	}
}

func TestTrainedUpdateThenSearch(t *testing.T) {
	c, s, repoID := setupTrained(t, 3)
	novel := &Doc{ID: "late", Owner: "owner2", Text: "xylophone orchestra concert rare"}
	if err := c.Update(s, repoID, novel, dataKey()); err != nil {
		t.Fatal(err)
	}
	hits, err := c.Search(s, repoID, &Doc{ID: "q", Text: "xylophone concert"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Doc != "late" {
		t.Errorf("post-training update not searchable: %+v", hits)
	}
	if hits[0].Owner != "owner2" {
		t.Errorf("owner = %q", hits[0].Owner)
	}
}

func TestRepeatedUpdatesIncrementCounters(t *testing.T) {
	c, s, repoID := setupTrained(t, 3)
	// Add three docs sharing a keyword; all three must be retrievable, which
	// requires the counters to have advanced per update.
	for i := 0; i < 3; i++ {
		d := &Doc{ID: fmt.Sprintf("shared-%d", i), Owner: "o", Text: "quasar astronomy telescope"}
		if err := c.Update(s, repoID, d, dataKey()); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := c.Search(s, repoID, &Doc{ID: "q", Text: "quasar"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Errorf("got %d hits, want 3 (counter-derived positions must not collide): %+v", len(hits), hits)
	}
}

func TestRemove(t *testing.T) {
	c, s, repoID := setupTrained(t, 3)
	victim := "doc-c0-1"
	if err := s.Remove(repoID, victim); err != nil {
		t.Fatal(err)
	}
	hits, err := c.Search(s, repoID, testDoc(0, 88), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc == victim {
			t.Error("removed doc surfaced")
		}
	}
	n, err := s.ObjectCount(repoID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("ObjectCount = %d, want 8", n)
	}
}

func TestUpdateReplacesDoc(t *testing.T) {
	c, s, repoID := setupTrained(t, 3)
	replacement := &Doc{ID: "doc-c0-0", Owner: "owner1", Text: "volcano eruption lava"}
	if err := c.Update(s, repoID, replacement, dataKey()); err != nil {
		t.Fatal(err)
	}
	hits, err := c.Search(s, repoID, &Doc{ID: "q", Text: "volcano"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Doc != "doc-c0-0" {
		t.Errorf("replacement not searchable: %+v", hits)
	}
	// Old content must be gone.
	hits, err = c.Search(s, repoID, &Doc{ID: "q2", Text: "beach ocean waves sunny"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc == "doc-c0-0" {
			t.Error("stale postings for replaced doc")
		}
	}
}

func TestCounterLockSerializesWriters(t *testing.T) {
	c, s, repoID := setupTrained(t, 2)
	// Hold the lock manually, then check a concurrent trained update blocks
	// until release.
	if _, err := s.GetCtrs(repoID, []string{ModText}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- c.Update(s, repoID, &Doc{ID: "blocked", Owner: "o", Text: "waiting writer"}, dataKey())
	}()
	select {
	case err := <-done:
		t.Fatalf("update completed while counters were locked: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := s.UnlockCtrs(repoID); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("update never completed after unlock")
	}
}

func TestTrainedUpdateWithoutLockFails(t *testing.T) {
	_, s, repoID := setupTrained(t, 2)
	err := s.TrainedUpdate(repoID, "x", "o", nil, nil, nil)
	if !errors.Is(err, ErrNotLocked) {
		t.Errorf("err = %v, want ErrNotLocked", err)
	}
	if err := s.UnlockCtrs(repoID); !errors.Is(err, ErrNotLocked) {
		t.Errorf("unlock err = %v, want ErrNotLocked", err)
	}
}

func TestConcurrentTrainedUpdates(t *testing.T) {
	c, s, repoID := setupTrained(t, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := &Doc{ID: fmt.Sprintf("conc-%d", w), Owner: "o", Text: fmt.Sprintf("parallel writer %d payload", w)}
			if err := c.Update(s, repoID, d, dataKey()); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, err := c.Search(s, repoID, &Doc{ID: "q", Text: "parallel writer payload"}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 8 {
		t.Errorf("got %d concurrent docs back, want 8", len(hits))
	}
}

func TestCodebookSharing(t *testing.T) {
	c1, s, repoID := setupTrained(t, 3)
	// Second user receives the codebook out of band and can search.
	c2 := NewClient(testClientConfig())
	c2.SetCodebook(c1.Codebook())
	hits, err := c2.Search(s, repoID, testDoc(0, 42), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("second user with shared codebook found nothing")
	}
}

func TestSearchValidation(t *testing.T) {
	c, s, repoID := setupTrained(t, 2)
	if _, err := c.Search(s, repoID, testDoc(0, 1), 0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestMeterAttribution(t *testing.T) {
	s := NewServer()
	if err := s.CreateRepository("r"); err != nil {
		t.Fatal(err)
	}
	cfg := testClientConfig()
	meter := device.NewMeter(device.Desktop)
	cfg.Meter = meter
	c := NewClient(cfg)
	for cls := 0; cls < 2; cls++ {
		for i := 0; i < 3; i++ {
			if err := c.Update(s, "r", testDoc(cls, i), dataKey()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Train(s, "r"); err != nil {
		t.Fatal(err)
	}
	if meter.Time(device.Train) == 0 {
		t.Error("training cost not attributed to Train")
	}
	if meter.Time(device.Encrypt) == 0 {
		t.Error("no Encrypt cost recorded")
	}
	if meter.Time(device.Index) == 0 {
		t.Error("no Index cost recorded")
	}
	if meter.RoundTrips(device.Network) == 0 {
		t.Error("no network transfers recorded")
	}
}

func TestIndexPaddingHidesDocLengthsInvisibly(t *testing.T) {
	// A padded client must produce identical search results to an unpadded
	// one, while the server-side index carries extra (dummy) postings that
	// blur per-document lengths.
	run := func(padding float64, repoID string) (*Client, *Server, int) {
		s := NewServer()
		if err := s.CreateRepository(repoID); err != nil {
			t.Fatal(err)
		}
		cfg := testClientConfig()
		cfg.Padding = padding
		c := NewClient(cfg)
		for cls := 0; cls < 2; cls++ {
			for i := 0; i < 3; i++ {
				if err := c.Update(s, repoID, testDoc(cls, i), dataKey()); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := c.Train(s, repoID); err != nil {
			t.Fatal(err)
		}
		// Post-training update exercises the padded trained path.
		if err := c.Update(s, repoID, &Doc{ID: "late", Owner: "o", Text: "falcon heavy rocket launch"}, dataKey()); err != nil {
			t.Fatal(err)
		}
		r, err := s.repo(repoID)
		if err != nil {
			t.Fatal(err)
		}
		r.mu.Lock()
		entries := 0
		for _, im := range r.idx {
			entries += len(im)
		}
		r.mu.Unlock()
		return c, s, entries
	}
	cPlain, sPlain, plainEntries := run(0, "plain")
	cPad, sPad, padEntries := run(1.6, "padded")
	if padEntries <= plainEntries {
		t.Errorf("padding added no index entries: %d vs %d", padEntries, plainEntries)
	}
	// Same query, same results.
	hp, err := cPlain.Search(sPlain, "plain", &Doc{ID: "q", Text: "falcon rocket"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	hq, err := cPad.Search(sPad, "padded", &Doc{ID: "q", Text: "falcon rocket"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hp) != len(hq) {
		t.Fatalf("result counts differ: %d vs %d", len(hp), len(hq))
	}
	for i := range hp {
		if hp[i].Doc != hq[i].Doc {
			t.Errorf("rank %d differs: %s vs %s", i, hp[i].Doc, hq[i].Doc)
		}
	}
	for _, h := range hq {
		if len(h.Doc) > 0 && h.Doc[0] == 0 {
			t.Error("dummy doc surfaced in results")
		}
	}
}
