// Package msse implements MSSE, the first baseline of the paper's
// evaluation (Appendix A): a multimodal, ranked extension of the dynamic SSE
// scheme of Cash et al. (NDSS'14), without Random Oracles.
//
// Contrast with MIE: here the *client* performs training (Euclidean k-means
// over plaintext descriptors) and indexing. Index positions are PRF values
// l = PRF(k1, ctr) of per-keyword counters; index values are the plaintext
// document id concatenated with an IND-CPA encryption of the keyword
// frequency. The per-keyword counters are themselves stored encrypted at the
// server and must be fetched, incremented and re-uploaded around every
// update under a server-side write lock — the multi-user coordination cost
// Figure 4 calls out. At search time the client hands the server the
// positions plus k2, so the server learns frequency patterns then (Table I:
// MSSE search leakage = ID(w), ID(d), freq(w)).
package msse

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"mie/internal/cluster"
	"mie/internal/crypto"
	"mie/internal/device"
	"mie/internal/dpe"
	"mie/internal/fusion"
	"mie/internal/imaging"
	"mie/internal/index"
	"mie/internal/text"
)

// Modality labels for the two indexed media types.
const (
	ModText  = "text"
	ModImage = "image"
)

// Keys is the MSSE client key material: rk1 encrypts feature vectors and
// counter dictionaries (IND-CPA), rk2 derives the per-keyword PRF keys.
type Keys struct {
	RK1 crypto.Key
	RK2 crypto.Key
}

// NewKeys derives the MSSE keys from one master repository key.
func NewKeys(master crypto.Key) Keys {
	return Keys{
		RK1: crypto.DeriveKey(master, "msse-rk1"),
		RK2: crypto.DeriveKey(master, "msse-rk2"),
	}
}

// featureBlob is the plaintext content of an encrypted feature-vector
// upload: everything the client needs later to train and (re)index.
type featureBlob struct {
	Terms []text.Term
	Descs [][]float64
}

// entry is one index value: the plaintext doc id plus the encrypted
// frequency (d = IDp || ENC(k2, freq)).
type entry struct {
	Doc     string
	EncFreq []byte
}

// Posting is one (position, value) pair uploaded by a client.
type Posting struct {
	L       string // PRF(k1, ctr), hex
	Doc     string
	EncFreq []byte
}

// ModalityUpdate carries one modality's postings and the re-encrypted
// counter dictionary.
type ModalityUpdate struct {
	Modality string
	Postings []Posting
	ECtrs    []byte
}

// SearchTerm is the client-side trapdoor for one query term: all candidate
// index positions, the frequency-decryption key k2, and the query-side
// frequency.
type SearchTerm struct {
	Positions []string
	K2        []byte
	QueryFreq uint64
}

// ModalityQuery is one modality's search trapdoors.
type ModalityQuery struct {
	Modality string
	Terms    []SearchTerm
}

// Hit is a ranked search result.
type Hit struct {
	Doc        string
	Owner      string
	Score      float64
	Ciphertext []byte
}

// Server errors.
var (
	ErrRepoExists   = errors.New("msse: repository exists")
	ErrRepoNotFound = errors.New("msse: repository not found")
	ErrNotLocked    = errors.New("msse: counters not locked by caller")
)

// repo is the server-side state of one MSSE repository.
type repo struct {
	mu      sync.Mutex
	objects map[string]objRecord
	fvs     map[string][]byte           // encrypted feature blobs
	ctrs    map[string][]byte           // modality -> encrypted counter dict
	idx     map[string]map[string]entry // modality -> position -> value
	lock    chan struct{}               // counter write lock (cap 1)
	locked  bool
}

type objRecord struct {
	owner      string
	ciphertext []byte
}

// Server is the untrusted MSSE cloud component.
type Server struct {
	mu    sync.RWMutex
	repos map[string]*repo
}

// NewServer creates an empty MSSE server.
func NewServer() *Server {
	return &Server{repos: make(map[string]*repo)}
}

// CreateRepository initializes server-side state.
func (s *Server) CreateRepository(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.repos[id]; ok {
		return fmt.Errorf("%w: %s", ErrRepoExists, id)
	}
	s.repos[id] = &repo{
		objects: make(map[string]objRecord),
		fvs:     make(map[string][]byte),
		ctrs:    make(map[string][]byte),
		idx:     make(map[string]map[string]entry),
		lock:    make(chan struct{}, 1),
	}
	return nil
}

func (s *Server) repo(id string) (*repo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrRepoNotFound, id)
	}
	return r, nil
}

// GetCtrs returns the encrypted counter dictionaries and acquires the
// repository's counter write lock (CLOUD.GetCtrs): concurrent writers block
// here, the serialization point that MIE avoids.
func (s *Server) GetCtrs(repoID string, modalities []string) (map[string][]byte, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.lock <- struct{}{} // acquire
	r.mu.Lock()
	defer r.mu.Unlock()
	r.locked = true
	out := make(map[string][]byte, len(modalities))
	for _, m := range modalities {
		out[m] = r.ctrs[m]
	}
	return out, nil
}

// UnlockCtrs releases the counter lock without an update (error paths).
func (s *Server) UnlockCtrs(repoID string) error {
	r, err := s.repo(repoID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.locked {
		return ErrNotLocked
	}
	r.locked = false
	<-r.lock
	return nil
}

// UntrainedUpdate stores an object before training: just the ciphertext and
// the encrypted feature vectors (CLOUD.UntrainedUpdate).
func (s *Server) UntrainedUpdate(repoID, docID, owner string, ciphertext, encFvs []byte) error {
	r, err := s.repo(repoID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.objects[docID] = objRecord{owner: owner, ciphertext: ciphertext}
	r.fvs[docID] = encFvs
	return nil
}

// TrainedUpdate stores an object after training: ciphertext, encrypted
// features, new index postings and the re-encrypted counters; it releases
// the counter lock taken by GetCtrs (CLOUD.TrainedUpdate).
func (s *Server) TrainedUpdate(repoID, docID, owner string, ciphertext, encFvs []byte, updates []ModalityUpdate) error {
	r, err := s.repo(repoID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.locked {
		return ErrNotLocked
	}
	r.removeLocked(docID)
	r.objects[docID] = objRecord{owner: owner, ciphertext: ciphertext}
	r.fvs[docID] = encFvs
	for _, mu := range updates {
		r.ctrs[mu.Modality] = mu.ECtrs
		im := r.idx[mu.Modality]
		if im == nil {
			im = make(map[string]entry)
			r.idx[mu.Modality] = im
		}
		for _, p := range mu.Postings {
			im[p.L] = entry{Doc: p.Doc, EncFreq: p.EncFreq}
		}
	}
	r.locked = false
	<-r.lock
	return nil
}

// StoreIndex replaces a modality's entire index and counters — the upload
// at the end of USER.Train, which indexes all pre-training objects.
func (s *Server) StoreIndex(repoID string, updates []ModalityUpdate) error {
	r, err := s.repo(repoID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, mu := range updates {
		im := make(map[string]entry, len(mu.Postings))
		for _, p := range mu.Postings {
			im[p.L] = entry{Doc: p.Doc, EncFreq: p.EncFreq}
		}
		r.idx[mu.Modality] = im
		r.ctrs[mu.Modality] = mu.ECtrs
	}
	return nil
}

// Remove deletes an object: the server scans index values for the plaintext
// doc id (the design trade discussed in the appendix — doc ids in values
// make removal server-side and storage-free, revealing document lengths).
func (s *Server) Remove(repoID, docID string) error {
	r, err := s.repo(repoID)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removeLocked(docID)
	return nil
}

func (r *repo) removeLocked(docID string) {
	delete(r.objects, docID)
	delete(r.fvs, docID)
	for _, im := range r.idx {
		for l, e := range im {
			if e.Doc == docID {
				delete(im, l)
			}
		}
	}
}

// GetFeatures returns every encrypted feature blob (USER.Train's download).
func (s *Server) GetFeatures(repoID string) (map[string][]byte, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]byte, len(r.fvs))
	for id, b := range r.fvs {
		out[id] = b
	}
	return out, nil
}

// GetObjects returns all ciphertexts+owners (the untrained linear-search
// download).
func (s *Server) GetObjects(repoID string) (map[string]Hit, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Hit, len(r.objects))
	for id, o := range r.objects {
		out[id] = Hit{Doc: id, Owner: o.owner, Ciphertext: o.ciphertext}
	}
	return out, nil
}

// ObjectCount reports |Rep|, needed for idf.
func (s *Server) ObjectCount(repoID string) (int, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.objects), nil
}

// Search executes CLOUD.Search: look up every candidate position, decrypt
// frequencies with the provided k2 (the frequency-pattern leak), score with
// TF-IDF, sort per modality, rank-fuse and return the top k with
// ciphertexts.
func (s *Server) Search(repoID string, queries []ModalityQuery, k int) ([]Hit, error) {
	r, err := s.repo(repoID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.objects)
	var lists [][]index.Result
	for _, mq := range queries {
		im := r.idx[mq.Modality]
		scores := make(map[index.DocID]float64)
		for _, st := range mq.Terms {
			k2, err := crypto.KeyFromBytes(st.K2)
			if err != nil {
				return nil, fmt.Errorf("msse: bad k2: %w", err)
			}
			ciph := crypto.NewCipher(k2)
			type tfHit struct {
				doc  string
				freq uint64
			}
			var tfs []tfHit
			for _, l := range st.Positions {
				e, ok := im[l]
				if !ok {
					continue
				}
				freq, err := ciph.DecryptUint64(e.EncFreq)
				if err != nil {
					return nil, fmt.Errorf("msse: decrypt freq at %s: %w", l, err)
				}
				tfs = append(tfs, tfHit{doc: e.Doc, freq: freq})
			}
			if len(tfs) == 0 || n == 0 {
				continue
			}
			idf := math.Log(float64(n) / float64(len(tfs)))
			if idf < 0 {
				idf = 0
			}
			for _, tf := range tfs {
				scores[index.DocID(tf.doc)] += float64(st.QueryFreq) * float64(tf.freq) * idf
			}
		}
		list := make([]index.Result, 0, len(scores))
		for d, sc := range scores {
			if sc > 0 {
				list = append(list, index.Result{Doc: d, Score: sc})
			}
		}
		index.SortResults(list)
		lists = append(lists, list)
	}
	fused := fusion.Fuse(fusion.LogISR, lists, k)
	hits := make([]Hit, 0, len(fused))
	for _, res := range fused {
		o, ok := r.objects[string(res.Doc)]
		if !ok {
			continue
		}
		hits = append(hits, Hit{Doc: string(res.Doc), Owner: o.owner, Score: res.Score, Ciphertext: o.ciphertext})
	}
	return hits, nil
}

// Client is the trusted MSSE client. Unlike MIE's stateless client it holds
// the trained codebook (shared between users out of band) and must fetch
// counter state from the server around every trained update — the O(n)
// client storage row of Table I.
type Client struct {
	keys    Keys
	pyr     imaging.PyramidParams
	vocab   cluster.VocabParams
	padding float64
	meter   *device.Meter

	mu       sync.Mutex
	codebook *cluster.Vocabulary[[]float64]
}

// ClientConfig configures an MSSE client.
type ClientConfig struct {
	Keys    Keys
	Pyramid imaging.PyramidParams
	// Vocab shapes visual-word training: flat k-means to Vocab.Words words
	// (paper: 1000) plus a lookup tree over the words.
	Vocab cluster.VocabParams
	// Padding, when positive, adds ceil(Padding · |terms|) dummy postings
	// per update — the appendix's index-padding mitigation (after Cash et
	// al.) for the document-length leak of keeping plaintext doc ids in
	// index values. Dummy postings live at positions derived from a
	// reserved term space, so no real query ever touches them; they only
	// inflate (and thereby blur) per-document posting counts.
	Padding float64
	Meter   *device.Meter
}

// NewClient builds an MSSE client component.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Vocab.Words == 0 {
		cfg.Vocab.Words = 1000
	}
	if cfg.Vocab.Tree.Branch == 0 {
		cfg.Vocab.Tree.Branch = 10
	}
	if cfg.Vocab.Tree.Height == 0 {
		cfg.Vocab.Tree.Height = 3
	}
	return &Client{keys: cfg.Keys, pyr: cfg.Pyramid, vocab: cfg.Vocab, padding: cfg.Padding, meter: cfg.Meter}
}

// SetCodebook installs a codebook trained by another user (the
// ShareCodebook step of USER.Train).
func (c *Client) SetCodebook(cb *cluster.Vocabulary[[]float64]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.codebook = cb
}

// Codebook returns the trained codebook (nil before training).
func (c *Client) Codebook() *cluster.Vocabulary[[]float64] {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.codebook
}

// IsTrained reports whether the client holds a codebook.
func (c *Client) IsTrained() bool { return c.Codebook() != nil }

func (c *Client) timeCPU(cat device.Category, fn func()) {
	if c.meter == nil {
		fn()
		return
	}
	c.meter.TimeCPU(cat, fn)
}

func (c *Client) addTransfer(cat device.Category, up, down int64) {
	if c.meter == nil {
		return
	}
	c.meter.AddTransfer(cat, up, down)
}

// extract runs plaintext feature extraction (same pipeline as MIE).
func (c *Client) extract(obj *Doc) ([]text.Term, [][]float64) {
	var terms []text.Term
	var descs [][]float64
	c.timeCPU(device.Index, func() {
		if obj.Text != "" {
			terms = text.Extract(obj.Text)
		}
		if obj.Image != nil {
			descs = imaging.Extract(obj.Image, c.pyr)
		}
	})
	return terms, descs
}

// Doc is the client-side plaintext object (mirror of core.Object, kept
// separate so the baselines do not depend on the MIE package).
type Doc struct {
	ID    string
	Owner string
	Text  string
	Image *imaging.Image
}

func (d *Doc) marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("msse: marshal doc: %w", err)
	}
	return buf.Bytes(), nil
}

// encryptBlob gob-encodes and IND-CPA encrypts v under rk1.
func (c *Client) encryptBlob(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("msse: encode blob: %w", err)
	}
	return crypto.NewCipher(c.keys.RK1).Encrypt(buf.Bytes())
}

func (c *Client) decryptBlob(ct []byte, v interface{}) error {
	if len(ct) == 0 {
		return nil // absent dictionary decodes to the zero value
	}
	pt, err := crypto.NewCipher(c.keys.RK1).Decrypt(ct)
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(pt)).Decode(v)
}

// termKeys derives (k1, k2) for a term.
func (c *Client) termKeys(term string) (crypto.Key, crypto.Key) {
	k1 := crypto.DeriveKey(c.keys.RK2, term+"|1")
	k2 := crypto.DeriveKey(c.keys.RK2, term+"|2")
	return k1, k2
}

// position computes l = PRF(k1, ctr) in hex.
func position(k1 crypto.Key, ctr uint64) string {
	tok := crypto.PRFUint64(k1, ctr)
	var t dpe.Token
	copy(t[:], tok)
	return t.String()
}

// histograms computes the per-modality term->freq maps of an object; the
// image modality requires the codebook.
func (c *Client) histograms(terms []text.Term, descs [][]float64) map[string]map[string]uint64 {
	out := make(map[string]map[string]uint64, 2)
	if len(terms) > 0 {
		h := make(map[string]uint64, len(terms))
		for _, t := range terms {
			h[t.Word] = t.Freq
		}
		out[ModText] = h
	}
	cb := c.Codebook()
	if len(descs) > 0 && cb != nil {
		h := make(map[string]uint64)
		for _, d := range descs {
			h["vw:"+strconv.Itoa(cb.Quantize(d))]++
		}
		out[ModImage] = h
	}
	return out
}

// Update adds or replaces an object. Before training this only ships the
// encrypted object and features; after training the client does the full
// counter fetch -> clusterize -> index-position dance of Figure 7.
func (c *Client) Update(s *Server, repoID string, doc *Doc, dataKey crypto.Key) error {
	terms, descs := c.extract(doc)
	var ciphertext, encFvs []byte
	var encErr error
	c.timeCPU(device.Encrypt, func() {
		plain, err := doc.marshal()
		if err != nil {
			encErr = err
			return
		}
		if ciphertext, encErr = crypto.NewCipher(dataKey).Encrypt(plain); encErr != nil {
			return
		}
		encFvs, encErr = c.encryptBlob(featureBlob{Terms: terms, Descs: descs})
	})
	if encErr != nil {
		return encErr
	}

	if !c.IsTrained() {
		c.addTransfer(device.Network, int64(len(ciphertext)+len(encFvs)), 0)
		return s.UntrainedUpdate(repoID, doc.ID, doc.Owner, ciphertext, encFvs)
	}

	// Trained path: fetch + lock counters.
	modalities := modalityList(terms, descs)
	ectrs, err := s.GetCtrs(repoID, modalities)
	if err != nil {
		return err
	}
	var down int64
	for _, b := range ectrs {
		down += int64(len(b))
	}
	c.addTransfer(device.Network, 0, down)

	var hists map[string]map[string]uint64
	c.timeCPU(device.Index, func() {
		hists = c.histograms(terms, descs)
	})

	var updates []ModalityUpdate
	var buildErr error
	c.timeCPU(device.Encrypt, func() {
		for _, m := range modalities {
			ctrs := make(map[string]uint64)
			if err := c.decryptBlob(ectrs[m], &ctrs); err != nil {
				buildErr = fmt.Errorf("msse: decrypt ctrs: %w", err)
				return
			}
			var postings []Posting
			for term, freq := range hists[m] {
				k1, k2 := c.termKeys(term)
				l := position(k1, ctrs[term])
				ctrs[term]++
				encFreq, err := crypto.NewCipher(k2).EncryptUint64(freq)
				if err != nil {
					buildErr = err
					return
				}
				postings = append(postings, Posting{L: l, Doc: doc.ID, EncFreq: encFreq})
			}
			pad, err := c.dummyPostings(doc.ID, m, len(hists[m]), ctrs)
			if err != nil {
				buildErr = err
				return
			}
			postings = append(postings, pad...)
			blob, err := c.encryptBlob(ctrs)
			if err != nil {
				buildErr = err
				return
			}
			updates = append(updates, ModalityUpdate{Modality: m, Postings: postings, ECtrs: blob})
		}
	})
	if buildErr != nil {
		if uerr := s.UnlockCtrs(repoID); uerr != nil {
			return fmt.Errorf("msse: %v (unlock failed: %w)", buildErr, uerr)
		}
		return buildErr
	}
	var up int64 = int64(len(ciphertext) + len(encFvs))
	for _, mu := range updates {
		up += int64(len(mu.ECtrs))
		for _, p := range mu.Postings {
			up += int64(len(p.L) + len(p.Doc) + len(p.EncFreq))
		}
	}
	c.addTransfer(device.Network, up, 0)
	return s.TrainedUpdate(repoID, doc.ID, doc.Owner, ciphertext, encFvs, updates)
}

func modalityList(terms []text.Term, descs [][]float64) []string {
	var ms []string
	if len(terms) > 0 {
		ms = append(ms, ModText)
	}
	if len(descs) > 0 {
		ms = append(ms, ModImage)
	}
	return ms
}

// dummyPostings mints the index-padding entries: positions in a reserved
// per-document dummy term space (counted through the same encrypted counter
// dictionary so padded updates stay consistent), dummy doc ids, encrypted
// zero frequencies. Queries never derive these positions, so padding is
// retrieval-invisible.
func (c *Client) dummyPostings(docID, modality string, realTerms int, ctrs map[string]uint64) ([]Posting, error) {
	if c.padding <= 0 || realTerms == 0 {
		return nil, nil
	}
	n := int(math.Ceil(c.padding * float64(realTerms)))
	out := make([]Posting, 0, n)
	for i := 0; i < n; i++ {
		term := fmt.Sprintf("\x00pad|%s|%d", modality, i)
		k1, k2 := c.termKeys(term)
		l := position(k1, ctrs[term])
		ctrs[term]++
		encFreq, err := crypto.NewCipher(k2).EncryptUint64(0)
		if err != nil {
			return nil, err
		}
		// The dummy doc id is deterministic per (doc, slot) but never
		// collides with real ids (NUL prefix).
		out = append(out, Posting{L: l, Doc: "\x00dummy|" + docID, EncFreq: encFreq})
	}
	return out, nil
}

// Train downloads every encrypted feature blob, decrypts, runs Euclidean
// hierarchical k-means *on the client* (the Train cost bar of Figures 2/3),
// indexes every stored object and uploads the index and counters.
func (c *Client) Train(s *Server, repoID string) error {
	encFvs, err := s.GetFeatures(repoID)
	if err != nil {
		return err
	}
	var down int64
	for _, b := range encFvs {
		down += int64(len(b))
	}
	c.addTransfer(device.Network, 0, down)

	blobs := make(map[string]featureBlob, len(encFvs))
	var decErr error
	c.timeCPU(device.Encrypt, func() {
		for id, ct := range encFvs {
			var fb featureBlob
			if err := c.decryptBlob(ct, &fb); err != nil {
				decErr = fmt.Errorf("msse: decrypt features of %s: %w", id, err)
				return
			}
			blobs[id] = fb
		}
	})
	if decErr != nil {
		return decErr
	}

	var trainErr error
	c.timeCPU(device.Train, func() {
		// Sorted ids keep the k-means sample order — and thus the trained
		// codebook — deterministic across runs.
		ids := make([]string, 0, len(blobs))
		for id := range blobs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var sample [][]float64
		for _, id := range ids {
			sample = append(sample, blobs[id].Descs...)
		}
		if len(sample) == 0 {
			return // text-only repository: no codebook needed
		}
		euclid := func(ps [][]float64, k int, seed int64) ([][]float64, []int, error) {
			res, err := cluster.KMeans(ps, k, cluster.Options{Seed: seed, MaxIter: c.vocab.MaxIter})
			if err != nil {
				return nil, nil, err
			}
			return res.Centroids, res.Assignments, nil
		}
		vocab, err := cluster.TrainVocabulary(sample, c.vocab, euclid, func(a, b []float64) float64 {
			return vecEuclid(a, b)
		})
		if err != nil {
			trainErr = fmt.Errorf("msse: train codebook: %w", err)
			return
		}
		c.SetCodebook(vocab)
	})
	if trainErr != nil {
		return trainErr
	}

	// Index all existing objects client-side (IndexData of Figure 7).
	ctrs := map[string]map[string]uint64{
		ModText:  make(map[string]uint64),
		ModImage: make(map[string]uint64),
	}
	postings := map[string][]Posting{}
	var buildErr error
	c.timeCPU(device.Index, func() {
		for id, fb := range blobs {
			for m, hist := range c.histograms(fb.Terms, fb.Descs) {
				for term, freq := range hist {
					k1, k2 := c.termKeys(term)
					l := position(k1, ctrs[m][term])
					ctrs[m][term]++
					encFreq, err := crypto.NewCipher(k2).EncryptUint64(freq)
					if err != nil {
						buildErr = err
						return
					}
					postings[m] = append(postings[m], Posting{L: l, Doc: id, EncFreq: encFreq})
				}
			}
		}
	})
	if buildErr != nil {
		return buildErr
	}

	var updates []ModalityUpdate
	var encErr error
	c.timeCPU(device.Encrypt, func() {
		for _, m := range []string{ModText, ModImage} {
			blob, err := c.encryptBlob(ctrs[m])
			if err != nil {
				encErr = err
				return
			}
			updates = append(updates, ModalityUpdate{Modality: m, Postings: postings[m], ECtrs: blob})
		}
	})
	if encErr != nil {
		return encErr
	}
	var up int64
	for _, mu := range updates {
		up += int64(len(mu.ECtrs))
		for _, p := range mu.Postings {
			up += int64(len(p.L) + len(p.Doc) + len(p.EncFreq))
		}
	}
	c.addTransfer(device.Network, up, 0)
	return s.StoreIndex(repoID, updates)
}

// Search runs the query flow: trained repositories use the PRF trapdoors
// and server-side scoring; untrained ones fall back to downloading
// everything and scanning locally (USER.Search's untrained branch).
func (c *Client) Search(s *Server, repoID string, query *Doc, k int) ([]Hit, error) {
	if k <= 0 {
		return nil, errors.New("msse: k must be positive")
	}
	terms, descs := c.extract(query)
	if !c.IsTrained() {
		return c.linearSearch(s, repoID, terms, descs, k)
	}

	ectrs, err := s.GetCtrs(repoID, modalityList(terms, descs))
	if err != nil {
		return nil, err
	}
	// Search only reads counters; release the write lock immediately (the
	// paper: searches proceed on a snapshot).
	if err := s.UnlockCtrs(repoID); err != nil {
		return nil, err
	}
	var down int64
	for _, b := range ectrs {
		down += int64(len(b))
	}
	c.addTransfer(device.Network, 0, down)

	var hists map[string]map[string]uint64
	c.timeCPU(device.Index, func() {
		hists = c.histograms(terms, descs)
	})
	var queries []ModalityQuery
	var buildErr error
	c.timeCPU(device.Encrypt, func() {
		for m, hist := range hists {
			ctrs := make(map[string]uint64)
			if err := c.decryptBlob(ectrs[m], &ctrs); err != nil {
				buildErr = err
				return
			}
			mq := ModalityQuery{Modality: m}
			for term, qf := range hist {
				cnt := ctrs[term]
				if cnt == 0 {
					continue // never indexed
				}
				k1, k2 := c.termKeys(term)
				st := SearchTerm{K2: k2[:], QueryFreq: qf}
				for ctr := uint64(0); ctr < cnt; ctr++ {
					st.Positions = append(st.Positions, position(k1, ctr))
				}
				mq.Terms = append(mq.Terms, st)
			}
			queries = append(queries, mq)
		}
	})
	if buildErr != nil {
		return nil, buildErr
	}
	var upBytes int64
	for _, mq := range queries {
		for _, st := range mq.Terms {
			upBytes += int64(len(st.K2) + 8)
			for _, p := range st.Positions {
				upBytes += int64(len(p))
			}
		}
	}
	start := time.Now()
	hits, err := s.Search(repoID, queries, k)
	if err != nil {
		return nil, err
	}
	if c.meter != nil {
		// Figure 5's Network bar includes the server's processing time.
		c.meter.AddServerTime(device.Network, time.Since(start))
	}
	var dn int64
	for _, h := range hits {
		dn += int64(len(h.Ciphertext))
	}
	c.addTransfer(device.Network, upBytes, dn)
	return hits, nil
}

// linearSearch downloads features and objects and ranks locally.
func (c *Client) linearSearch(s *Server, repoID string, qTerms []text.Term, qDescs [][]float64, k int) ([]Hit, error) {
	encFvs, err := s.GetFeatures(repoID)
	if err != nil {
		return nil, err
	}
	objs, err := s.GetObjects(repoID)
	if err != nil {
		return nil, err
	}
	var down int64
	for _, b := range encFvs {
		down += int64(len(b))
	}
	for _, o := range objs {
		down += int64(len(o.Ciphertext))
	}
	c.addTransfer(device.Network, 0, down)

	qtf := make(map[string]uint64, len(qTerms))
	for _, t := range qTerms {
		qtf[t.Word] = t.Freq
	}
	var scored []index.Result
	var scanErr error
	c.timeCPU(device.Index, func() {
		scores := make(map[index.DocID]float64)
		for id, ct := range encFvs {
			var fb featureBlob
			if err := c.decryptBlob(ct, &fb); err != nil {
				scanErr = err
				return
			}
			var s float64
			for _, t := range fb.Terms {
				if qf, ok := qtf[t.Word]; ok {
					s += float64(qf) * float64(t.Freq)
				}
			}
			if len(qDescs) > 0 && len(fb.Descs) > 0 {
				for _, qd := range qDescs {
					best := 1.0
					for _, od := range fb.Descs {
						if d := vecEuclid(qd, od); d < best {
							best = d
						}
					}
					s += 1 - best
				}
			}
			if s > 0 {
				scores[index.DocID(id)] = s
			}
		}
		for d, sc := range scores {
			scored = append(scored, index.Result{Doc: d, Score: sc})
		}
		index.SortResults(scored)
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if len(scored) > k {
		scored = scored[:k]
	}
	hits := make([]Hit, 0, len(scored))
	for _, r := range scored {
		o := objs[string(r.Doc)]
		hits = append(hits, Hit{Doc: string(r.Doc), Owner: o.Owner, Score: r.Score, Ciphertext: o.Ciphertext})
	}
	return hits, nil
}

// vecEuclid avoids importing vec just for one helper in hot paths.
func vecEuclid(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
