// Package vec provides the small linear-algebra and bit-vector kernel used
// throughout the MIE framework: dense float feature vectors, Euclidean
// geometry, and packed binary vectors with Hamming distances.
//
// Feature vectors in this codebase are always []float64. Distance-preserving
// encodings (package dpe) map them to packed BitVec values whose normalized
// Hamming distance mirrors the Euclidean distance between the plaintexts.
package vec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrDimensionMismatch is returned when two vectors of different lengths are
// combined in an operation that requires equal dimensionality.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// Euclidean returns the Euclidean (L2) distance between a and b.
// It panics if the dimensions differ; use CheckedEuclidean when the inputs
// come from an untrusted source.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Euclidean dimension mismatch %d != %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// CheckedEuclidean is Euclidean with an error instead of a panic on
// mismatched dimensions.
func CheckedEuclidean(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrDimensionMismatch
	}
	return Euclidean(a, b), nil
}

// SquaredEuclidean returns the squared L2 distance, avoiding the final sqrt.
// Useful in k-means inner loops where only the ordering matters.
func SquaredEuclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SquaredEuclidean dimension mismatch %d != %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot dimension mismatch %d != %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Norm returns the L2 norm of v.
func Norm(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Normalize scales v in place to unit L2 norm and returns it. A zero vector
// is returned unchanged.
func Normalize(v []float64) []float64 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Scale multiplies every component of v by s, in place, and returns v.
func Scale(v []float64, s float64) []float64 {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Add accumulates src into dst in place. Panics on dimension mismatch.
func Add(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: Add dimension mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Clone returns a fresh copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Mean returns the component-wise mean of the given vectors. All vectors
// must share a dimension; an empty input yields nil.
func Mean(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		Add(out, v)
	}
	return Scale(out, 1/float64(len(vs)))
}

// BitVec is a packed vector of bits, the output domain of Dense-DPE.
// Bits beyond Len in the final word are always zero.
type BitVec struct {
	words []uint64
	n     int
}

// NewBitVec returns an all-zero bit vector of n bits.
func NewBitVec(n int) BitVec {
	return BitVec{words: make([]uint64, (n+63)/64), n: n}
}

// BitVecFromWords reconstructs a BitVec from its raw words (e.g. after
// deserialization). Trailing bits beyond n are masked off.
func BitVecFromWords(words []uint64, n int) (BitVec, error) {
	need := (n + 63) / 64
	if len(words) != need {
		return BitVec{}, fmt.Errorf("vec: BitVecFromWords: got %d words, need %d for %d bits", len(words), need, n)
	}
	w := make([]uint64, need)
	copy(w, words)
	if n%64 != 0 && need > 0 {
		w[need-1] &= (uint64(1) << uint(n%64)) - 1
	}
	return BitVec{words: w, n: n}, nil
}

// Len returns the number of bits.
func (b BitVec) Len() int { return b.n }

// Words exposes a copy of the packed words for serialization.
func (b BitVec) Words() []uint64 {
	out := make([]uint64, len(b.words))
	copy(out, b.words)
	return out
}

// Set sets bit i to v.
func (b BitVec) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("vec: BitVec.Set index %d out of range [0,%d)", i, b.n))
	}
	if v {
		b.words[i/64] |= 1 << uint(i%64)
	} else {
		b.words[i/64] &^= 1 << uint(i%64)
	}
}

// Get reports bit i.
func (b BitVec) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("vec: BitVec.Get index %d out of range [0,%d)", i, b.n))
	}
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// OnesCount returns the number of set bits.
func (b BitVec) OnesCount() int {
	var c int
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether a and b have the same length and bits.
func (b BitVec) Equal(o BitVec) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (b BitVec) Clone() BitVec {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return BitVec{words: w, n: b.n}
}

// GobEncode serializes the bit vector (length + packed words) so encodings
// can cross the wire protocol.
func (b BitVec) GobEncode() ([]byte, error) {
	out := make([]byte, 8+8*len(b.words))
	binary.BigEndian.PutUint64(out[:8], uint64(b.n))
	for i, w := range b.words {
		binary.BigEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// GobDecode reverses GobEncode.
func (b *BitVec) GobDecode(data []byte) error {
	if len(data) < 8 {
		return errors.New("vec: BitVec gob data too short")
	}
	n := int(binary.BigEndian.Uint64(data[:8]))
	if n < 0 {
		return errors.New("vec: BitVec gob negative length")
	}
	need := (n + 63) / 64
	if len(data) != 8+8*need {
		return fmt.Errorf("vec: BitVec gob data has %d bytes, want %d for %d bits", len(data), 8+8*need, n)
	}
	words := make([]uint64, need)
	for i := range words {
		words[i] = binary.BigEndian.Uint64(data[8+8*i:])
	}
	decoded, err := BitVecFromWords(words, n)
	if err != nil {
		return err
	}
	*b = decoded
	return nil
}

// Hamming returns the number of differing bits between a and b.
func Hamming(a, b BitVec) int {
	if a.n != b.n {
		panic(fmt.Sprintf("vec: Hamming length mismatch %d != %d", a.n, b.n))
	}
	return HammingWords(a.words, b.words)
}

// HammingWords returns the number of differing bits between two packed word
// blocks — the one popcount loop every Hamming-distance path shares. The ANN
// re-rank stage calls it directly on flat []uint64 code blocks, scoring
// candidates without materializing BitVec values. Callers must uphold the
// BitVec invariant that bits beyond the logical length are zero; panics on
// mismatched word counts.
func HammingWords(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: HammingWords length mismatch %d != %d", len(a), len(b)))
	}
	var c int
	for i := range a {
		c += bits.OnesCount64(a[i] ^ b[i])
	}
	return c
}

// NormHamming returns the Hamming distance normalized to [0,1].
func NormHamming(a, b BitVec) float64 {
	if a.n == 0 {
		return 0
	}
	return float64(Hamming(a, b)) / float64(a.n)
}
