package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEuclidean(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{name: "zero", a: []float64{0, 0}, b: []float64{0, 0}, want: 0},
		{name: "unit axis", a: []float64{0, 0}, b: []float64{1, 0}, want: 1},
		{name: "pythagorean", a: []float64{0, 0}, b: []float64{3, 4}, want: 5},
		{name: "negative", a: []float64{-1, -1}, b: []float64{1, 1}, want: 2 * math.Sqrt2},
		{name: "empty", a: nil, b: nil, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Euclidean(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Euclidean(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestEuclideanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestCheckedEuclidean(t *testing.T) {
	if _, err := CheckedEuclidean([]float64{1}, []float64{1, 2}); err != ErrDimensionMismatch {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
	d, err := CheckedEuclidean([]float64{0}, []float64{2})
	if err != nil || d != 2 {
		t.Errorf("got (%v,%v), want (2,nil)", d, err)
	}
}

func TestSquaredEuclideanMatchesEuclidean(t *testing.T) {
	f := func(a, b [8]int16) bool {
		av, bv := make([]float64, 8), make([]float64, 8)
		for i := range a {
			av[i] = float64(a[i]) / 100
			bv[i] = float64(b[i]) / 100
		}
		d := Euclidean(av, bv)
		s := SquaredEuclidean(av, bv)
		return math.Abs(d*d-s) < 1e-6*(1+s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	Normalize(v)
	if math.Abs(Norm(v)-1) > 1e-12 {
		t.Errorf("norm after Normalize = %v, want 1", Norm(v))
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector changed: %v", z)
	}
}

func TestMean(t *testing.T) {
	got := Mean([][]float64{{1, 2}, {3, 4}})
	want := []float64{2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Mean = %v, want %v", got, want)
		}
	}
	if Mean(nil) != nil {
		t.Error("Mean(nil) should be nil")
	}
}

func TestAddClone(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	Add(a, []float64{10, 20})
	if a[0] != 11 || a[1] != 22 {
		t.Errorf("Add result %v", a)
	}
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("Clone aliased original: %v", c)
	}
}

func TestBitVecSetGet(t *testing.T) {
	b := NewBitVec(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i, true)
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
		b.Set(i, false)
		if b.Get(i) {
			t.Errorf("bit %d not cleared", i)
		}
	}
}

func TestBitVecOutOfRange(t *testing.T) {
	b := NewBitVec(8)
	for _, i := range []int{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %d", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestHamming(t *testing.T) {
	a := NewBitVec(100)
	b := NewBitVec(100)
	if Hamming(a, b) != 0 {
		t.Error("identical vectors should have distance 0")
	}
	for i := 0; i < 100; i += 2 {
		a.Set(i, true)
	}
	if got := Hamming(a, b); got != 50 {
		t.Errorf("Hamming = %d, want 50", got)
	}
	if got := NormHamming(a, b); got != 0.5 {
		t.Errorf("NormHamming = %v, want 0.5", got)
	}
}

func TestBitVecRoundTripWords(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 200} {
		b := NewBitVec(n)
		for i := 0; i < n; i++ {
			b.Set(i, rng.Intn(2) == 1)
		}
		r, err := BitVecFromWords(b.Words(), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !r.Equal(b) {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
}

func TestBitVecFromWordsValidation(t *testing.T) {
	if _, err := BitVecFromWords([]uint64{1, 2}, 64); err == nil {
		t.Error("expected error for wrong word count")
	}
	// Trailing garbage bits must be masked.
	bv, err := BitVecFromWords([]uint64{^uint64(0)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bv.OnesCount() != 4 {
		t.Errorf("OnesCount = %d, want 4 (trailing bits masked)", bv.OnesCount())
	}
}

func TestHammingSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewBitVec(96), NewBitVec(96)
		for i := 0; i < 96; i++ {
			a.Set(i, rng.Intn(2) == 1)
			b.Set(i, rng.Intn(2) == 1)
		}
		return Hamming(a, b) == Hamming(b, a) && Hamming(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitVecClone(t *testing.T) {
	a := NewBitVec(10)
	a.Set(3, true)
	c := a.Clone()
	c.Set(3, false)
	if !a.Get(3) {
		t.Error("Clone aliased original storage")
	}
}

func TestBitVecGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 64, 65, 200} {
		b := NewBitVec(n)
		for i := 0; i < n; i++ {
			b.Set(i, rng.Intn(2) == 1)
		}
		data, err := b.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		var r BitVec
		if err := r.GobDecode(data); err != nil {
			t.Fatal(err)
		}
		if !r.Equal(b) {
			t.Errorf("n=%d: gob round trip mismatch", n)
		}
	}
}

func TestBitVecGobDecodeValidation(t *testing.T) {
	var b BitVec
	if err := b.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for short data")
	}
	// length says 64 bits but only header present
	data := make([]byte, 8)
	data[7] = 64
	if err := b.GobDecode(data); err == nil {
		t.Error("expected error for missing words")
	}
}

func TestScale(t *testing.T) {
	v := []float64{1, -2, 3}
	Scale(v, 2)
	if v[0] != 2 || v[1] != -4 || v[2] != 6 {
		t.Errorf("Scale result %v", v)
	}
}

func TestOnesCount(t *testing.T) {
	b := NewBitVec(70)
	for _, i := range []int{0, 63, 64, 69} {
		b.Set(i, true)
	}
	if got := b.OnesCount(); got != 4 {
		t.Errorf("OnesCount = %d, want 4", got)
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if NewBitVec(10).Equal(NewBitVec(11)) {
		t.Error("different lengths reported equal")
	}
}

func TestHammingWords(t *testing.T) {
	a := []uint64{0xFFFF, 0, 1}
	b := []uint64{0x0FFF, 0, 0}
	if got := HammingWords(a, b); got != 5 {
		t.Errorf("HammingWords = %d, want 5", got)
	}
	if got := HammingWords(nil, nil); got != 0 {
		t.Errorf("HammingWords(nil, nil) = %d, want 0", got)
	}
	if got := HammingWords(a, a); got != 0 {
		t.Errorf("HammingWords(a, a) = %d, want 0", got)
	}
}

func TestHammingWordsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched word counts")
		}
	}()
	HammingWords([]uint64{1, 2}, []uint64{1})
}

// TestHammingWordsTailMasking pins the division of labor around tail bits:
// BitVecFromWords masks bits beyond the logical length, so HammingWords over
// Words() of two vectors that differ only in (pre-mask) tail garbage reports
// zero, and always agrees with Hamming.
func TestHammingWordsTailMasking(t *testing.T) {
	// 70 bits -> 2 words; bits 70..63 of the second word are tail garbage
	// that BitVecFromWords masks away. The live low 6 bits (0x2A) agree.
	a, err := BitVecFromWords([]uint64{42, 0xFFFFFFFFFFFFFF2A}, 70)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BitVecFromWords([]uint64{42, 0xDEADBEEF0000002A}, 70)
	if err != nil {
		t.Fatal(err)
	}
	if got := HammingWords(a.Words(), b.Words()); got != 0 {
		t.Errorf("tail garbage leaked into distance: %d != 0", got)
	}
	b.Set(69, false)
	b.Set(0, true)
	want := Hamming(a, b)
	if got := HammingWords(a.Words(), b.Words()); got != want || want != 2 {
		t.Errorf("HammingWords = %d, Hamming = %d, want 2", got, want)
	}
}
