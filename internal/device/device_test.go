package device

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCategoryString(t *testing.T) {
	if Encrypt.String() != "Encrypt" || Train.String() != "Train" {
		t.Error("category names wrong")
	}
	if Category(99).String() != "Category(99)" {
		t.Errorf("unknown category: %s", Category(99).String())
	}
	if len(Categories()) != 4 {
		t.Errorf("Categories() = %v", Categories())
	}
}

func TestCPUFactorScaling(t *testing.T) {
	mm := NewMeter(Mobile)
	dm := NewMeter(Desktop)
	mm.AddCPU(Encrypt, time.Second)
	dm.AddCPU(Encrypt, time.Second)
	if got := mm.Time(Encrypt); got != 10*time.Second {
		t.Errorf("mobile CPU time = %v, want 10s", got)
	}
	if got := dm.Time(Encrypt); got != time.Second {
		t.Errorf("desktop CPU time = %v, want 1s", got)
	}
}

func TestTimeCPUAttributes(t *testing.T) {
	m := NewMeter(Desktop)
	m.TimeCPU(Index, func() { time.Sleep(5 * time.Millisecond) })
	if got := m.Time(Index); got < 5*time.Millisecond {
		t.Errorf("TimeCPU recorded %v, want >= 5ms", got)
	}
	if m.Time(Encrypt) != 0 {
		t.Error("work leaked into another category")
	}
}

func TestAddTransfer(t *testing.T) {
	m := NewMeter(Desktop) // 100 Mb/s both ways, RTT 52.16ms
	m.AddTransfer(Network, 100e6/8, 0)
	// 100 Mb at 100 Mb/s = 1s + RTT
	want := time.Second + Desktop.RTT
	if got := m.Time(Network); got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("transfer time = %v, want ~%v", got, want)
	}
	up, down := m.Bytes(Network)
	if up != 100e6/8 || down != 0 {
		t.Errorf("bytes = (%d,%d)", up, down)
	}
	if m.RoundTrips(Network) != 1 {
		t.Errorf("trips = %d", m.RoundTrips(Network))
	}
}

func TestMobileSlowerLink(t *testing.T) {
	mm := NewMeter(Mobile)
	dm := NewMeter(Desktop)
	mm.AddTransfer(Network, 1e6, 0)
	dm.AddTransfer(Network, 1e6, 0)
	if mm.Time(Network) <= dm.Time(Network) {
		t.Errorf("mobile (%v) should be slower than desktop (%v) for the same upload",
			mm.Time(Network), dm.Time(Network))
	}
}

func TestTotalSumsCategories(t *testing.T) {
	m := NewMeter(Desktop)
	m.AddCPU(Encrypt, time.Second)
	m.AddCPU(Index, 2*time.Second)
	m.AddTransfer(Network, 0, 0) // just one RTT
	want := 3*time.Second + Desktop.RTT
	if got := m.Total(); got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

func TestEnergyModel(t *testing.T) {
	m := NewMeter(Mobile)
	m.AddCPU(Train, 6*time.Minute) // scaled -> 60 min of device CPU
	// 1h at 2.2W = 2.2Wh; at 3.8V = 578.9 mAh
	want := 2.2 / 3.8 * 1000
	if got := m.EnergyMAh(); math.Abs(got-want) > 1 {
		t.Errorf("energy = %v mAh, want ~%v", got, want)
	}
	if m.ExceedsBattery() {
		t.Error("579 mAh should not exceed 3448 mAh battery")
	}
}

func TestExceedsBattery(t *testing.T) {
	m := NewMeter(Mobile)
	// 10h of measured CPU -> 100h device CPU at 2.2W = 220 Wh >> battery.
	m.AddCPU(Train, 10*time.Hour)
	if !m.ExceedsBattery() {
		t.Errorf("%v mAh should exceed the 3448 mAh battery", m.EnergyMAh())
	}
}

func TestDesktopHasNoBattery(t *testing.T) {
	m := NewMeter(Desktop)
	m.AddCPU(Encrypt, time.Hour)
	if m.EnergyMAh() != 0 {
		t.Errorf("mains-powered energy = %v, want 0", m.EnergyMAh())
	}
	if m.ExceedsBattery() {
		t.Error("mains-powered device cannot exceed battery")
	}
}

func TestBreakdownStableOrder(t *testing.T) {
	m := NewMeter(Desktop)
	m.AddCPU(Train, time.Second)
	m.AddCPU(Encrypt, time.Second)
	rows := m.Breakdown()
	if len(rows) != 4 {
		t.Fatalf("breakdown rows = %d", len(rows))
	}
	for i, want := range Categories() {
		if rows[i].Category != want {
			t.Errorf("row %d = %v, want %v", i, rows[i].Category, want)
		}
	}
	if rows[0].Total() != time.Second {
		t.Errorf("Encrypt row total = %v", rows[0].Total())
	}
}

func TestMeterConcurrency(t *testing.T) {
	m := NewMeter(Desktop)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.AddCPU(Encrypt, time.Millisecond)
				m.AddTransfer(Network, 10, 10)
				m.Total()
				m.EnergyMAh()
			}
		}()
	}
	wg.Wait()
	if got := m.Time(Encrypt); got != 1600*time.Millisecond {
		t.Errorf("concurrent CPU sum = %v, want 1.6s", got)
	}
	if got := m.RoundTrips(Network); got != 1600 {
		t.Errorf("trips = %d, want 1600", got)
	}
}
