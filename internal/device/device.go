// Package device models the client devices and link characteristics of the
// paper's test bench (§VII): a 2013 Nexus 7 tablet on WiFi, a MacBook Pro on
// 100 Mb/s ethernet, and an EC2 m3.large server 52.16 ms away. The
// experiments in the paper report wall-clock time and battery drain on real
// hardware; this reproduction runs the same computations on one machine and
// converts measured work into per-device time and energy through these
// profiles. Relative orderings and ratios across schemes — what the figures
// actually demonstrate — are preserved by construction.
//
// A Meter accumulates cost per sub-operation category (Encrypt, Network,
// Index, Train), the exact breakdown of Figures 2–5, and integrates energy
// the way Android's power-profile framework does for Figure 6:
// mAh = Σ (P_rail · t_rail) / V.
package device

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Category labels a sub-operation in the figures' cost breakdown.
type Category int

// Sub-operation categories, matching the figure legends.
const (
	Encrypt Category = iota + 1
	Network
	Index
	Train
)

var categoryNames = map[Category]string{
	Encrypt: "Encrypt",
	Network: "Network",
	Index:   "Index",
	Train:   "Train",
}

// String returns the figure-legend name of the category.
func (c Category) String() string {
	if n, ok := categoryNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Categories lists all categories in presentation order.
func Categories() []Category { return []Category{Encrypt, Network, Index, Train} }

// Profile describes one device.
type Profile struct {
	Name string
	// CPUFactor scales CPU time measured on the reference (benchmark)
	// machine to this device. The desktop profile is the 1.0 reference;
	// the paper observes mobile CPU work ~1 order of magnitude slower.
	CPUFactor float64
	// UplinkMbps / DownlinkMbps model the access link.
	UplinkMbps   float64
	DownlinkMbps float64
	// RTT is the client<->cloud round-trip time.
	RTT time.Duration
	// BatteryCapacityMAh is the device battery (0 for mains-powered).
	BatteryCapacityMAh float64
	// CPUPowerW / RadioPowerW are the active power draws of the SoC and
	// radio rails; VoltageV converts watt-hours into mAh.
	CPUPowerW   float64
	RadioPowerW float64
	VoltageV    float64
}

// The paper's three machines.
var (
	// Mobile models the 2013 Nexus 7 (Snapdragon S4 Pro, WiFi 802.11g,
	// 3448 mAh battery measured in §VII-E, 3.8 V pack).
	Mobile = Profile{
		Name:               "mobile-nexus7",
		CPUFactor:          10,
		UplinkMbps:         20,
		DownlinkMbps:       20,
		RTT:                52160 * time.Microsecond,
		BatteryCapacityMAh: 3448,
		CPUPowerW:          2.2,
		RadioPowerW:        0.8,
		VoltageV:           3.8,
	}
	// Desktop models the MacBook Pro client on 100 Mb/s ethernet.
	Desktop = Profile{
		Name:         "desktop-macbook",
		CPUFactor:    1,
		UplinkMbps:   100,
		DownlinkMbps: 100,
		RTT:          52160 * time.Microsecond,
		CPUPowerW:    35,
		VoltageV:     12,
	}
	// Cloud models the EC2 m3.large server side.
	Cloud = Profile{
		Name:         "cloud-m3large",
		CPUFactor:    1,
		UplinkMbps:   1000,
		DownlinkMbps: 1000,
		VoltageV:     12,
	}
)

// Meter accumulates per-category device time. CPU time is scaled by the
// profile's CPUFactor; network time is derived from bytes moved and round
// trips taken. Meters are safe for concurrent use.
type Meter struct {
	profile Profile

	mu      sync.Mutex
	cpu     map[Category]time.Duration // already scaled to the device
	net     map[Category]time.Duration
	bytesUp map[Category]int64
	bytesDn map[Category]int64
	trips   map[Category]int
}

// NewMeter creates a Meter for the given device profile.
func NewMeter(p Profile) *Meter {
	return &Meter{
		profile: p,
		cpu:     make(map[Category]time.Duration),
		net:     make(map[Category]time.Duration),
		bytesUp: make(map[Category]int64),
		bytesDn: make(map[Category]int64),
		trips:   make(map[Category]int),
	}
}

// Profile returns the meter's device profile.
func (m *Meter) Profile() Profile { return m.profile }

// AddCPU records CPU work measured on the reference machine; it is scaled
// to the device by CPUFactor.
func (m *Meter) AddCPU(cat Category, measured time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cpu[cat] += time.Duration(float64(measured) * m.profile.CPUFactor)
}

// TimeCPU runs fn, measuring its duration as device CPU work in cat.
func (m *Meter) TimeCPU(cat Category, fn func()) {
	start := time.Now()
	fn()
	m.AddCPU(cat, time.Since(start))
}

// AddTransfer records an upload/download of the given sizes plus one round
// trip, converting to link time through the profile.
func (m *Meter) AddTransfer(cat Category, upBytes, downBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var d time.Duration
	if m.profile.UplinkMbps > 0 {
		d += time.Duration(float64(upBytes) * 8 / (m.profile.UplinkMbps * 1e6) * float64(time.Second))
	}
	if m.profile.DownlinkMbps > 0 {
		d += time.Duration(float64(downBytes) * 8 / (m.profile.DownlinkMbps * 1e6) * float64(time.Second))
	}
	m.net[cat] += d + m.profile.RTT
	m.bytesUp[cat] += upBytes
	m.bytesDn[cat] += downBytes
	m.trips[cat]++
}

// AddServerTime records time spent waiting on the cloud (server-side
// processing within a synchronous call). It lands in the network bucket and
// is NOT scaled by CPUFactor — the server is the same machine regardless of
// which client device is measuring (Figure 5's Network sub-operation
// includes server response time).
func (m *Meter) AddServerTime(cat Category, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.net[cat] += d
}

// CategoryEnergyMAh integrates battery drain for a single category, letting
// Figure 6 separate the training drain from the add-N drain.
func (m *Meter) CategoryEnergyMAh(cat Category) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.profile.VoltageV == 0 || m.profile.BatteryCapacityMAh == 0 {
		return 0
	}
	wh := m.cpu[cat].Hours()*m.profile.CPUPowerW + m.net[cat].Hours()*m.profile.RadioPowerW
	return wh / m.profile.VoltageV * 1000
}

// Time returns the device time attributed to a category (CPU + network).
func (m *Meter) Time(cat Category) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cpu[cat] + m.net[cat]
}

// Total returns the summed device time across all categories.
func (m *Meter) Total() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t time.Duration
	for _, d := range m.cpu {
		t += d
	}
	for _, d := range m.net {
		t += d
	}
	return t
}

// Bytes returns total bytes moved (up, down) for a category.
func (m *Meter) Bytes(cat Category) (up, down int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesUp[cat], m.bytesDn[cat]
}

// RoundTrips returns the number of client-server exchanges in a category.
func (m *Meter) RoundTrips(cat Category) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trips[cat]
}

// EnergyMAh integrates battery drain: CPU time on the CPU rail plus network
// time on the radio rail, converted to milliamp-hours at pack voltage.
// Mains-powered profiles (VoltageV or rails zero) return 0.
func (m *Meter) EnergyMAh() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.profile.VoltageV == 0 || m.profile.BatteryCapacityMAh == 0 {
		return 0
	}
	var cpuH, netH float64
	for _, d := range m.cpu {
		cpuH += d.Hours()
	}
	for _, d := range m.net {
		netH += d.Hours()
	}
	wh := cpuH*m.profile.CPUPowerW + netH*m.profile.RadioPowerW
	return wh / m.profile.VoltageV * 1000
}

// ExceedsBattery reports whether accumulated drain surpasses the device's
// battery capacity (the Hom-MSSE shutdown condition of Figure 6).
func (m *Meter) ExceedsBattery() bool {
	if m.profile.BatteryCapacityMAh == 0 {
		return false
	}
	return m.EnergyMAh() > m.profile.BatteryCapacityMAh
}

// Breakdown returns a stable, human-readable per-category cost summary.
func (m *Meter) Breakdown() []CategoryCost {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]CategoryCost, 0, 4)
	for _, cat := range Categories() {
		out = append(out, CategoryCost{
			Category: cat,
			CPU:      m.cpu[cat],
			Network:  m.net[cat],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}

// CategoryCost is one row of a Meter breakdown.
type CategoryCost struct {
	Category Category
	CPU      time.Duration
	Network  time.Duration
}

// Total returns CPU+network time of the row.
func (c CategoryCost) Total() time.Duration { return c.CPU + c.Network }
