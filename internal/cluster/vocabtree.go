package cluster

import (
	"fmt"
)

// VocabTree is a hierarchical-k-means vocabulary tree (Nistér–Stewénius):
// descriptors are clustered into Branch groups, each group recursively into
// Branch sub-groups, Height levels deep. The leaves are the visual words;
// quantizing a descriptor is a greedy root-to-leaf descent costing
// Branch*Height distance computations instead of a linear scan over all
// words. The paper's prototype uses height 3, width 10 (≈1000 words).
//
// The tree is generic over the point type so the same structure serves both
// MIE (Hamming space over DPE encodings, trained in the cloud) and the MSSE
// baselines (Euclidean space over plaintext descriptors, trained on the
// client).
type VocabTree[P any] struct {
	branch  int
	height  int
	dist    func(P, P) float64
	root    *vnode[P]
	numLeaf int
}

type vnode[P any] struct {
	centroid P
	children []*vnode[P]
	leafID   int // valid when children is empty
}

// Clusterer groups points into at most k clusters and returns the centroids
// and the per-point assignment (an index into centroids). Implementations
// wrap KMeans or HammingKMeans.
type Clusterer[P any] func(points []P, k int, seed int64) (centroids []P, assignments []int, err error)

// TreeParams configures vocabulary-tree construction.
type TreeParams struct {
	// Branch is the fan-out at each level (paper: 10).
	Branch int
	// Height is the number of clustering levels (paper: 3).
	Height int
	// Seed drives deterministic clustering.
	Seed int64
}

// BuildVocabTree trains a tree over the given points. The distance function
// must match the clusterer's space.
func BuildVocabTree[P any](points []P, params TreeParams, clusterFn Clusterer[P], dist func(P, P) float64) (*VocabTree[P], error) {
	if params.Branch < 2 {
		return nil, fmt.Errorf("cluster: tree branch must be >= 2, got %d", params.Branch)
	}
	if params.Height < 1 {
		return nil, fmt.Errorf("cluster: tree height must be >= 1, got %d", params.Height)
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	t := &VocabTree[P]{branch: params.Branch, height: params.Height, dist: dist}
	root, err := t.build(points, params.Height, params.Seed, clusterFn)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.assignLeafIDs(t.root)
	return t, nil
}

func (t *VocabTree[P]) build(points []P, levels int, seed int64, clusterFn Clusterer[P]) (*vnode[P], error) {
	centroids, assignments, err := clusterFn(points, t.branch, seed)
	if err != nil {
		return nil, fmt.Errorf("cluster: vocab tree level %d: %w", levels, err)
	}
	node := &vnode[P]{}
	if levels == 1 || len(centroids) == 1 {
		// Leaf level: each centroid is a visual word.
		node.children = make([]*vnode[P], len(centroids))
		for i, c := range centroids {
			node.children[i] = &vnode[P]{centroid: c}
		}
		return node, nil
	}
	groups := make([][]P, len(centroids))
	for i, a := range assignments {
		groups[a] = append(groups[a], points[i])
	}
	node.children = make([]*vnode[P], 0, len(centroids))
	for i, c := range centroids {
		if len(groups[i]) == 0 {
			// Degenerate cluster: keep the centroid as a leaf word.
			node.children = append(node.children, &vnode[P]{centroid: c})
			continue
		}
		child, err := t.build(groups[i], levels-1, seed+int64(i)+1, clusterFn)
		if err != nil {
			return nil, err
		}
		child.centroid = c
		node.children = append(node.children, child)
	}
	return node, nil
}

func (t *VocabTree[P]) assignLeafIDs(n *vnode[P]) {
	if len(n.children) == 0 {
		n.leafID = t.numLeaf
		t.numLeaf++
		return
	}
	for _, c := range n.children {
		t.assignLeafIDs(c)
	}
}

// NumWords returns the vocabulary size (number of leaves).
func (t *VocabTree[P]) NumWords() int { return t.numLeaf }

// Quantize maps a descriptor to its visual-word id by greedy descent.
func (t *VocabTree[P]) Quantize(p P) int {
	n := t.root
	for len(n.children) > 0 {
		best, bestD := 0, t.dist(p, n.children[0].centroid)
		for i := 1; i < len(n.children); i++ {
			if d := t.dist(p, n.children[i].centroid); d < bestD {
				best, bestD = i, d
			}
		}
		n = n.children[best]
	}
	return n.leafID
}

// QuantizeAll maps a set of descriptors to a visual-word frequency
// histogram: word id -> occurrence count. This is the Bag-Of-Visual-Words
// representation of one image.
func (t *VocabTree[P]) QuantizeAll(points []P) map[int]uint64 {
	h := make(map[int]uint64, len(points))
	for _, p := range points {
		h[t.Quantize(p)]++
	}
	return h
}

// Walk calls fn for every leaf centroid with its word id; used for
// serialization of trained codebooks.
func (t *VocabTree[P]) Walk(fn func(id int, centroid P)) {
	var rec func(n *vnode[P])
	rec = func(n *vnode[P]) {
		if len(n.children) == 0 {
			fn(n.leafID, n.centroid)
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}
