// Package cluster implements the training substrate of MIE: k-means
// clustering (Lloyd's algorithm with k-means++ seeding) in both Euclidean
// space — used client-side by the MSSE baselines over plaintext features —
// and Hamming space — used server-side by MIE over Dense-DPE encodings
// ("applying k-means over normalized Hamming distances", paper §VI) — plus
// the hierarchical-k-means vocabulary tree (Nistér–Stewénius) that turns
// descriptors into Bag-Of-Visual-Words terms.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"mie/internal/vec"
)

// Common errors.
var (
	// ErrNoPoints is returned when clustering is asked for an empty dataset.
	ErrNoPoints = errors.New("cluster: no points")
	// ErrBadK is returned for non-positive k.
	ErrBadK = errors.New("cluster: k must be positive")
)

// Options tunes the k-means loop.
type Options struct {
	// MaxIter bounds Lloyd iterations; defaults to 50.
	MaxIter int
	// Seed drives the deterministic PRNG used for k-means++ seeding.
	Seed int64
	// Tolerance stops iterating when total centroid movement (in the
	// space's own metric) falls below it; defaults to 1e-6.
	Tolerance float64
}

func (o *Options) setDefaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
}

// Result carries the outcome of Euclidean k-means.
type Result struct {
	Centroids   [][]float64
	Assignments []int
	Inertia     float64 // sum of squared distances to assigned centroids
	Iterations  int
}

// KMeans clusters points into k groups with Lloyd's algorithm and k-means++
// seeding. If k >= len(points) every point becomes its own centroid.
func KMeans(points [][]float64, k int, opts Options) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	opts.setDefaults()
	if k > len(points) {
		k = len(points)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		var inertia float64
		for i, p := range points {
			best, bestD := 0, vec.SquaredEuclidean(p, centroids[0])
			for c := 1; c < k; c++ {
				if d := vec.SquaredEuclidean(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			inertia += bestD
		}
		res.Inertia = inertia
		// Update step.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			vec.Add(sums[assign[i]], p)
			counts[assign[i]]++
		}
		var moved float64
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Empty cluster: re-seed on the point farthest from its
				// centroid, a standard repair that keeps k clusters alive.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := vec.SquaredEuclidean(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				moved += vec.Euclidean(centroids[c], points[far])
				centroids[c] = vec.Clone(points[far])
				continue
			}
			vec.Scale(sums[c], 1/float64(counts[c]))
			moved += vec.Euclidean(centroids[c], sums[c])
			centroids[c] = sums[c]
		}
		if moved < opts.Tolerance {
			break
		}
	}
	// Final assignment against the last centroid update.
	var inertia float64
	for i, p := range points {
		best, bestD := 0, vec.SquaredEuclidean(p, centroids[0])
		for c := 1; c < k; c++ {
			if d := vec.SquaredEuclidean(p, centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		inertia += bestD
	}
	res.Centroids = centroids
	res.Assignments = assign
	res.Inertia = inertia
	return res, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, vec.Clone(points[rng.Intn(len(points))]))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, p := range points {
			d := vec.SquaredEuclidean(p, last)
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, vec.Clone(points[rng.Intn(len(points))]))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, w := range d2 {
			r -= w
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, vec.Clone(points[idx]))
	}
	return centroids
}

// NearestEuclidean returns the index of the centroid closest to p.
func NearestEuclidean(centroids [][]float64, p []float64) int {
	best, bestD := 0, vec.SquaredEuclidean(p, centroids[0])
	for c := 1; c < len(centroids); c++ {
		if d := vec.SquaredEuclidean(p, centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
