package cluster

import (
	"fmt"
)

// Vocabulary is the paper's exact Bag-Of-Visual-Words construction (§VI):
// a *flat* k-means over all training descriptors selects the visual words
// (1000 in the paper's experiments) — this is the expensive "training"
// operation the schemes fight over — and a hierarchical-k-means tree is
// then built *over the words* purely to make word lookup fast (height 3,
// width 10). Quantization descends the tree to a leaf cell and scans only
// that cell's words.
//
// This differs from using the tree's own leaves as words (VocabTree): the
// word set comes from the full flat clustering, so retrieval quality is
// that of flat k-means while lookup costs Branch·Height + |cell| distance
// computations.
type Vocabulary[P any] struct {
	words   []P
	tree    *VocabTree[P]
	buckets [][]int // tree leaf id -> indices into words
	dist    func(P, P) float64
}

// VocabParams configures vocabulary training.
type VocabParams struct {
	// Words is the vocabulary size (paper: 1000).
	Words int
	// Tree shapes the lookup tree built over the words (paper: 10 wide,
	// 3 high).
	Tree TreeParams
	// Seed drives the flat clustering.
	Seed int64
	// MaxIter caps the flat k-means iterations (0 = the KMeans default).
	MaxIter int
}

// TrainVocabulary runs the training operation: flat clustering of the
// descriptors into Words visual words, then the lookup tree over the words.
func TrainVocabulary[P any](points []P, params VocabParams, clusterFn Clusterer[P], dist func(P, P) float64) (*Vocabulary[P], error) {
	if params.Words < 1 {
		return nil, fmt.Errorf("cluster: vocabulary needs at least 1 word, got %d", params.Words)
	}
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	words, _, err := clusterFn(points, params.Words, params.Seed)
	if err != nil {
		return nil, fmt.Errorf("cluster: train vocabulary: %w", err)
	}
	v := &Vocabulary[P]{words: words, dist: dist}
	if len(words) <= params.Tree.Branch || params.Tree.Branch < 2 {
		// Tiny vocabulary: a tree buys nothing, quantize by linear scan.
		return v, nil
	}
	tree, err := BuildVocabTree(words, params.Tree, clusterFn, dist)
	if err != nil {
		return nil, fmt.Errorf("cluster: vocabulary lookup tree: %w", err)
	}
	v.tree = tree
	v.buckets = make([][]int, tree.NumWords())
	for i, w := range words {
		leaf := tree.Quantize(w)
		v.buckets[leaf] = append(v.buckets[leaf], i)
	}
	return v, nil
}

// NewVocabularyFromWords reconstructs a Vocabulary from an already-trained
// word set (e.g. loaded from a snapshot): the expensive flat clustering is
// skipped and only the lookup tree over the words is rebuilt, which is
// deterministic given the tree parameters.
func NewVocabularyFromWords[P any](words []P, tree TreeParams, clusterFn Clusterer[P], dist func(P, P) float64) (*Vocabulary[P], error) {
	if len(words) == 0 {
		return nil, ErrNoPoints
	}
	v := &Vocabulary[P]{words: words, dist: dist}
	if len(words) <= tree.Branch || tree.Branch < 2 {
		return v, nil
	}
	t, err := BuildVocabTree(words, tree, clusterFn, dist)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebuild lookup tree: %w", err)
	}
	v.tree = t
	v.buckets = make([][]int, t.NumWords())
	for i, w := range words {
		leaf := t.Quantize(w)
		v.buckets[leaf] = append(v.buckets[leaf], i)
	}
	return v, nil
}

// Words returns the word centroids (for snapshotting a trained vocabulary).
func (v *Vocabulary[P]) Words() []P {
	out := make([]P, len(v.words))
	copy(out, v.words)
	return out
}

// Size returns the number of visual words.
func (v *Vocabulary[P]) Size() int { return len(v.words) }

// Word returns word i's centroid.
func (v *Vocabulary[P]) Word(i int) P { return v.words[i] }

// Quantize maps a descriptor to its (approximately) nearest visual word id.
func (v *Vocabulary[P]) Quantize(p P) int {
	if v.tree == nil {
		return v.scan(p, nil)
	}
	leaf := v.tree.Quantize(p)
	bucket := v.buckets[leaf]
	if len(bucket) == 0 {
		// The leaf cell captured no words (possible when tree cells split
		// word-free regions); fall back to a global scan.
		return v.scan(p, nil)
	}
	return v.scan(p, bucket)
}

// scan linear-searches the given word indices (or all words when nil).
func (v *Vocabulary[P]) scan(p P, indices []int) int {
	best, bestD := -1, 0.0
	if indices == nil {
		for i, w := range v.words {
			if d := v.dist(p, w); best == -1 || d < bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	for _, i := range indices {
		if d := v.dist(p, v.words[i]); best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// QuantizeAll maps a descriptor set to its word-frequency histogram.
func (v *Vocabulary[P]) QuantizeAll(points []P) map[int]uint64 {
	h := make(map[int]uint64, len(points))
	for _, p := range points {
		h[v.Quantize(p)]++
	}
	return h
}
