package cluster

import (
	"fmt"

	"mie/internal/vec"
)

// RefineOptions tunes warm-started mini-batch refinement.
type RefineOptions struct {
	// MaxIter bounds refinement sweeps over the delta sample; defaults to 4.
	// Refinement converges much faster than cold k-means because it starts
	// from the previous epoch's solution.
	MaxIter int
	// PriorWeight is the pseudo-count mass each previous centroid carries
	// into the majority vote, anchoring refined centroids to the previous
	// epoch so a small delta cannot yank the whole codebook around.
	// Defaults to 4 (each old centroid counts as four delta samples).
	PriorWeight int
}

func (o *RefineOptions) setDefaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 4
	}
	if o.PriorWeight <= 0 {
		o.PriorWeight = 4
	}
}

// DriftReport quantifies how far refinement moved the codebook away from the
// previous epoch. Callers compare it against a threshold to decide whether
// the warm-started result is trustworthy or a full re-cluster is warranted.
type DriftReport struct {
	// MeanShift is the mean Hamming distance between each previous centroid
	// and its refined version, normalized by the bit width (0 = unchanged,
	// 1 = every bit of every centroid flipped).
	MeanShift float64
	// MaxShift is the largest single-centroid normalized shift.
	MaxShift float64
	// ReassignedFraction is the fraction of delta samples whose nearest
	// centroid index changed between the previous and refined codebooks — a
	// proxy for how much quantization of existing postings has drifted.
	ReassignedFraction float64
}

// Exceeds reports whether the drift crosses either limit. A non-positive
// limit disables that check.
func (d DriftReport) Exceeds(meanShift, reassigned float64) bool {
	if meanShift > 0 && d.MeanShift > meanShift {
		return true
	}
	if reassigned > 0 && d.ReassignedFraction > reassigned {
		return true
	}
	return false
}

// RefineResult carries the outcome of RefineHammingKMeans.
type RefineResult struct {
	Centroids  []vec.BitVec
	Drift      DriftReport
	Iterations int
}

// RefineHammingKMeans warm-starts from the previous epoch's centroids and
// refines them against only the delta sample (mini-batch k-means in Hamming
// space). Each previous centroid contributes PriorWeight pseudo-counts to
// the per-bit majority vote, so centroids drift toward the delta data in
// proportion to how much of it they attract. Centroids that attract no delta
// samples are returned unchanged — refinement never re-seeds or drops
// clusters, that is the full re-cluster's job. The returned DriftReport lets
// the caller decide when accumulated drift warrants a full HammingKMeans.
func RefineHammingKMeans(prev []vec.BitVec, delta []vec.BitVec, opts RefineOptions) (*RefineResult, error) {
	if len(prev) == 0 {
		return nil, ErrBadK
	}
	if len(delta) == 0 {
		return nil, ErrNoPoints
	}
	opts.setDefaults()
	n := prev[0].Len()
	for i, c := range prev {
		if c.Len() != n {
			return nil, fmt.Errorf("cluster: centroid %d has %d bits, want %d", i, c.Len(), n)
		}
	}
	for i, p := range delta {
		if p.Len() != n {
			return nil, fmt.Errorf("cluster: encoding %d has %d bits, want %d", i, p.Len(), n)
		}
	}
	k := len(prev)
	centroids := make([]vec.BitVec, k)
	for c := range prev {
		centroids[c] = prev[c].Clone()
	}
	prevAssign := make([]int, len(delta))
	for i, p := range delta {
		prevAssign[i], _ = nearestHamming(prev, p)
	}
	assign := make([]int, len(delta))
	res := &RefineResult{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		for i, p := range delta {
			assign[i], _ = nearestHamming(centroids, p)
		}
		ones := make([][]int, k)
		counts := make([]int, k)
		for c := range ones {
			ones[c] = make([]int, n)
		}
		for i, p := range delta {
			c := assign[i]
			counts[c]++
			for b := 0; b < n; b++ {
				if p.Get(b) {
					ones[c][b]++
				}
			}
		}
		moved := 0
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // no delta evidence: keep the previous centroid
			}
			total := counts[c] + opts.PriorWeight
			next := vec.NewBitVec(n)
			for b := 0; b < n; b++ {
				votes := ones[c][b]
				if prev[c].Get(b) {
					votes += opts.PriorWeight
				}
				switch {
				case 2*votes > total:
					next.Set(b, true)
				case 2*votes == total:
					// Tie: keep the current bit so the loop can converge.
					next.Set(b, centroids[c].Get(b))
				}
			}
			if !next.Equal(centroids[c]) {
				moved++
			}
			centroids[c] = next
		}
		if moved == 0 {
			break
		}
	}
	var shiftSum float64
	for c := 0; c < k; c++ {
		shift := float64(vec.Hamming(prev[c], centroids[c])) / float64(n)
		shiftSum += shift
		if shift > res.Drift.MaxShift {
			res.Drift.MaxShift = shift
		}
	}
	res.Drift.MeanShift = shiftSum / float64(k)
	reassigned := 0
	for i, p := range delta {
		now, _ := nearestHamming(centroids, p)
		assign[i] = now
		if now != prevAssign[i] {
			reassigned++
		}
	}
	res.Drift.ReassignedFraction = float64(reassigned) / float64(len(delta))
	res.Centroids = centroids
	return res, nil
}
