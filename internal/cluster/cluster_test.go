package cluster

import (
	"errors"
	"math/rand"
	"testing"

	"mie/internal/vec"
)

// gaussianBlobs generates n points around k well-separated centers.
func gaussianBlobs(n, k, dim int, seed int64) (points [][]float64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = float64(c*10) + rng.NormFloat64()
		}
	}
	points = make([][]float64, n)
	labels = make([]int, n)
	for i := range points {
		c := rng.Intn(k)
		labels[i] = c
		points[i] = make([]float64, dim)
		for d := range points[i] {
			points[i][d] = centers[c][d] + rng.NormFloat64()*0.3
		}
	}
	return points, labels
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 3, Options{}); !errors.Is(err, ErrNoPoints) {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
	if _, err := KMeans([][]float64{{1}}, 0, Options{}); !errors.Is(err, ErrBadK) {
		t.Errorf("err = %v, want ErrBadK", err)
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, 1, Options{}); err == nil {
		t.Error("expected error for ragged points")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	points, labels := gaussianBlobs(300, 3, 4, 1)
	res, err := KMeans(points, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Points with the same true label must share a cluster (purity 100% for
	// blobs this separated).
	for c := 0; c < 3; c++ {
		seen := -1
		for i, l := range labels {
			if l != c {
				continue
			}
			if seen == -1 {
				seen = res.Assignments[i]
			} else if res.Assignments[i] != seen {
				t.Fatalf("blob %d split across clusters", c)
			}
		}
	}
}

func TestKMeansAssignmentOptimality(t *testing.T) {
	points, _ := gaussianBlobs(200, 4, 8, 3)
	res, err := KMeans(points, 4, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		got := res.Assignments[i]
		for c := range res.Centroids {
			if vec.SquaredEuclidean(p, res.Centroids[c]) < vec.SquaredEuclidean(p, res.Centroids[got])-1e-9 {
				t.Fatalf("point %d assigned to %d but %d is closer", i, got, c)
			}
		}
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	res, err := KMeans(points, 10, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Errorf("k capped to n: got %d centroids, want 3", len(res.Centroids))
	}
	if res.Inertia > 1e-9 {
		t.Errorf("inertia = %v, want ~0 when every point is a centroid", res.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	points, _ := gaussianBlobs(100, 3, 4, 5)
	a, err := KMeans(points, 3, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 3, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := make([][]float64, 10)
	for i := range points {
		points[i] = []float64{1, 2, 3}
	}
	res, err := KMeans(points, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Errorf("identical points inertia = %v", res.Inertia)
	}
}

func randomBits(rng *rand.Rand, n int) vec.BitVec {
	b := vec.NewBitVec(n)
	for i := 0; i < n; i++ {
		b.Set(i, rng.Intn(2) == 1)
	}
	return b
}

// flipBits returns a copy of b with m random bits flipped.
func flipBits(rng *rand.Rand, b vec.BitVec, m int) vec.BitVec {
	c := b.Clone()
	for j := 0; j < m; j++ {
		i := rng.Intn(b.Len())
		c.Set(i, !c.Get(i))
	}
	return c
}

func TestHammingKMeansErrors(t *testing.T) {
	if _, err := HammingKMeans(nil, 2, Options{}); !errors.Is(err, ErrNoPoints) {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
	if _, err := HammingKMeans([]vec.BitVec{vec.NewBitVec(8)}, -1, Options{}); !errors.Is(err, ErrBadK) {
		t.Errorf("err = %v, want ErrBadK", err)
	}
	if _, err := HammingKMeans([]vec.BitVec{vec.NewBitVec(8), vec.NewBitVec(16)}, 1, Options{}); err == nil {
		t.Error("expected error for mixed encoding sizes")
	}
}

func TestHammingKMeansRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const bits = 256
	bases := []vec.BitVec{randomBits(rng, bits), randomBits(rng, bits), randomBits(rng, bits)}
	var points []vec.BitVec
	var labels []int
	for c, base := range bases {
		for i := 0; i < 60; i++ {
			points = append(points, flipBits(rng, base, 12))
			labels = append(labels, c)
		}
	}
	res, err := HammingKMeans(points, 3, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		votes := make(map[int]int)
		total := 0
		for i, l := range labels {
			if l == c {
				votes[res.Assignments[i]]++
				total++
			}
		}
		best := 0
		for _, v := range votes {
			if v > best {
				best = v
			}
		}
		if float64(best)/float64(total) < 0.95 {
			t.Errorf("cluster %d purity %v < 0.95", c, float64(best)/float64(total))
		}
	}
}

func TestHammingKMeansAssignmentOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	points := make([]vec.BitVec, 80)
	for i := range points {
		points[i] = randomBits(rng, 128)
	}
	res, err := HammingKMeans(points, 5, Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		got := res.Assignments[i]
		for c := range res.Centroids {
			if vec.Hamming(p, res.Centroids[c]) < vec.Hamming(p, res.Centroids[got]) {
				t.Fatalf("point %d assigned to %d but %d is closer", i, got, c)
			}
		}
	}
}

func euclideanClusterer(points [][]float64, k int, seed int64) ([][]float64, []int, error) {
	res, err := KMeans(points, k, Options{Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return res.Centroids, res.Assignments, nil
}

func TestVocabTreeBuildValidation(t *testing.T) {
	points, _ := gaussianBlobs(50, 3, 4, 20)
	if _, err := BuildVocabTree(points, TreeParams{Branch: 1, Height: 2}, euclideanClusterer, vec.Euclidean); err == nil {
		t.Error("expected error for branch < 2")
	}
	if _, err := BuildVocabTree(points, TreeParams{Branch: 4, Height: 0}, euclideanClusterer, vec.Euclidean); err == nil {
		t.Error("expected error for height < 1")
	}
	if _, err := BuildVocabTree(nil, TreeParams{Branch: 4, Height: 2}, euclideanClusterer, vec.Euclidean); !errors.Is(err, ErrNoPoints) {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
}

func TestVocabTreeQuantization(t *testing.T) {
	points, labels := gaussianBlobs(400, 4, 8, 21)
	tree, err := BuildVocabTree(points, TreeParams{Branch: 4, Height: 2, Seed: 22}, euclideanClusterer, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumWords() < 4 || tree.NumWords() > 16 {
		t.Errorf("NumWords = %d, want within [4,16] for branch 4 height 2", tree.NumWords())
	}
	// All ids in range.
	for _, p := range points {
		id := tree.Quantize(p)
		if id < 0 || id >= tree.NumWords() {
			t.Fatalf("word id %d out of range [0,%d)", id, tree.NumWords())
		}
	}
	// Leaves are finer-grained than blobs, so a blob's points may span
	// several words — but each *word* should contain points from a single
	// blob (leaf purity), since blobs are far apart relative to leaf size.
	leafBlobs := make(map[int]map[int]int)
	for i, p := range points {
		id := tree.Quantize(p)
		if leafBlobs[id] == nil {
			leafBlobs[id] = make(map[int]int)
		}
		leafBlobs[id][labels[i]]++
	}
	pure, total := 0, 0
	for _, blobs := range leafBlobs {
		best, n := 0, 0
		for _, v := range blobs {
			n += v
			if v > best {
				best = v
			}
		}
		pure += best
		total += n
	}
	if float64(pure)/float64(total) < 0.95 {
		t.Errorf("leaf purity %v < 0.95", float64(pure)/float64(total))
	}
}

func TestVocabTreeQuantizeAll(t *testing.T) {
	points, _ := gaussianBlobs(100, 3, 4, 23)
	tree, err := BuildVocabTree(points, TreeParams{Branch: 3, Height: 2, Seed: 24}, euclideanClusterer, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	h := tree.QuantizeAll(points)
	var total uint64
	for id, c := range h {
		if id < 0 || id >= tree.NumWords() {
			t.Errorf("word id %d out of range", id)
		}
		total += c
	}
	if total != uint64(len(points)) {
		t.Errorf("histogram total %d, want %d", total, len(points))
	}
}

func TestVocabTreeWalkCoversAllWords(t *testing.T) {
	points, _ := gaussianBlobs(100, 3, 4, 25)
	tree, err := BuildVocabTree(points, TreeParams{Branch: 3, Height: 2, Seed: 26}, euclideanClusterer, vec.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	tree.Walk(func(id int, _ []float64) { seen[id] = true })
	if len(seen) != tree.NumWords() {
		t.Errorf("Walk visited %d words, want %d", len(seen), tree.NumWords())
	}
	for i := 0; i < tree.NumWords(); i++ {
		if !seen[i] {
			t.Errorf("word %d never visited: ids must be dense", i)
		}
	}
}

func TestVocabTreeHammingSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	const bits = 128
	var points []vec.BitVec
	for c := 0; c < 4; c++ {
		base := randomBits(rng, bits)
		for i := 0; i < 40; i++ {
			points = append(points, flipBits(rng, base, 6))
		}
	}
	hamCluster := func(ps []vec.BitVec, k int, seed int64) ([]vec.BitVec, []int, error) {
		res, err := HammingKMeans(ps, k, Options{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return res.Centroids, res.Assignments, nil
	}
	dist := func(a, b vec.BitVec) float64 { return float64(vec.Hamming(a, b)) }
	tree, err := BuildVocabTree(points, TreeParams{Branch: 2, Height: 2, Seed: 28}, hamCluster, dist)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumWords() < 2 {
		t.Errorf("NumWords = %d", tree.NumWords())
	}
	for _, p := range points {
		if id := tree.Quantize(p); id < 0 || id >= tree.NumWords() {
			t.Fatalf("word id %d out of range", id)
		}
	}
}
